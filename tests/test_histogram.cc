/**
 * @file
 * Unit tests for SummaryStats, Histogram and Table.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/histogram.h"
#include "util/table.h"

namespace fasttts
{
namespace
{

TEST(SummaryStats, EmptyIsZero)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, SingleValue)
{
    SummaryStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, KnownMoments)
{
    SummaryStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, MergeMatchesSequential)
{
    SummaryStats a;
    SummaryStats b;
    SummaryStats all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.37 - 3.0;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, MergeWithEmpty)
{
    SummaryStats a;
    a.add(1.0);
    SummaryStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-3.0);  // clamped to bin 0
    h.add(42.0);  // clamped to bin 9
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    for (size_t b = 1; b < 9; ++b)
        EXPECT_EQ(h.binCount(b), 0u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 100.0, 4);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 25.0);
    EXPECT_DOUBLE_EQ(h.binLo(3), 75.0);
    EXPECT_DOUBLE_EQ(h.binHi(3), 100.0);
}

TEST(Histogram, QuantileMonotone)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add(i % 100);
    double prev = -1;
    for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        const double q = h.quantile(p);
        EXPECT_GE(q, prev);
        prev = q;
    }
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
}

TEST(Histogram, QuantileEmptyReturnsLo)
{
    Histogram h(5.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, SparklineHasOneCharPerBin)
{
    Histogram h(0.0, 1.0, 17);
    h.add(0.5);
    EXPECT_EQ(h.sparkline().size(), 17u);
}

TEST(Table, PrintsHeaderAndRows)
{
    Table t("title here");
    t.setHeader({"a", "b"});
    t.addRow({"x", "1"});
    t.addRow("row2", {2.5, 3.25}, 2);
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("title here"), std::string::npos);
    EXPECT_NE(out.find("| a"), std::string::npos);
    EXPECT_NE(out.find("row2"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
    EXPECT_NE(out.find("3.25"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(1.0, 0), "1");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(Table, WriteCsvRoundTrip)
{
    Table t("csv test");
    t.setHeader({"col_a", "col_b"});
    t.addRow({"x", "1"});
    t.addRow({"with,comma", "2"});
    const std::string path = ::testing::TempDir() + "/fasttts_table.csv";
    ASSERT_TRUE(t.writeCsv(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "col_a,col_b");
    std::getline(in, line);
    EXPECT_EQ(line, "x,1");
    std::getline(in, line);
    EXPECT_EQ(line, "\"with,comma\",2");
}

TEST(Table, WriteCsvFailsOnBadPath)
{
    Table t("csv test");
    t.addRow({"x"});
    EXPECT_FALSE(t.writeCsv("/nonexistent_dir_xyz/out.csv"));
}

} // namespace
} // namespace fasttts
