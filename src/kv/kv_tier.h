/**
 * @file
 * Host-tier KV store: the device->host memory hierarchy behind the
 * roofline-guided swap-vs-recompute decision.
 *
 * Preemption used to have exactly one tool: force-evict the victim's
 * KV and pay full prefill recompute when it runs again. A host tier
 * adds the second option real servers have (vLLM's swap space,
 * omniserve's _preempt_by_swap/_preempt_by_recompute split): copy the
 * bytes out over the host link now and copy them back later. Which
 * side wins is a pure cost comparison — transfer pays
 * bytes/bandwidth, recompute pays the roofline prefill of the same
 * tokens — and KvSession::suspend() makes that call per victim.
 *
 * Four axes of the design:
 *
 *  1. **Budgeted, LRU-evicting store.** Host memory is finite too. The
 *     tier holds at most `budgetBytes()` of swapped KV; admitting a
 *     new entry evicts the least-recently-swapped entries first, and
 *     an entry larger than the whole budget is simply refused (the
 *     victim falls back to lazy recompute — the tier is an
 *     accelerator, never a correctness dependency).
 *
 *  2. **Per-node granularity, byte-exact ledger interplay.** Entries
 *     are whole radix-tree nodes (owner id + node id + token count),
 *     the same granularity KvCacheManager evicts and restores at.
 *     Swap-out happens *before* forceEvictAll refunds the device
 *     bytes to the shared KvBudgetLedger; swap-in happens inside
 *     ensureResident *after* the device blocks are re-charged — so
 *     ledger occupancy stays exactly the resident device KV at every
 *     instant, tiered or not.
 *
 *  3. **Simulated time, not wall time.** Transfers are charged against
 *     the SimClock at a configurable host-link bandwidth
 *     (transferSeconds(bytes) = bytes / bandwidth); the store itself
 *     is instantaneous bookkeeping. Determinism rules apply: state is
 *     keyed by monotonic owner/sequence ids (never pointers), and all
 *     iteration is over ordered containers.
 *
 *  4. **Stale-entry safety.** A swapped node's token count is recorded
 *     at swap-out; take() only restores on an exact (owner, node,
 *     tokens) match, so a node that was truncated, regrown or
 *     re-created after its snapshot silently misses (and recomputes)
 *     instead of resurrecting wrong-length KV. Owner release drops
 *     every entry of a destroyed manager.
 */

#ifndef FASTTTS_KV_KV_TIER_H
#define FASTTTS_KV_KV_TIER_H

#include <cstdint>
#include <map>
#include <utility>

namespace fasttts
{

/** Aggregate statistics of one HostKvTier. */
struct HostKvTierStats
{
    uint64_t swappedOutNodes = 0;  //!< Entries admitted.
    uint64_t swappedOutTokens = 0; //!< Tokens admitted.
    double swappedOutBytes = 0;    //!< Bytes admitted.
    uint64_t swappedInNodes = 0;   //!< Entries restored via take().
    uint64_t swappedInTokens = 0;  //!< Tokens restored via take().
    double swappedInBytes = 0;     //!< Bytes restored via take().
    uint64_t rejectedNodes = 0;    //!< Offers refused (over budget).
    uint64_t evictedNodes = 0;     //!< Entries dropped by host LRU.
    double evictedBytes = 0;       //!< Bytes dropped by host LRU.
    uint64_t staleNodes = 0;       //!< take() misses on token mismatch.
};

/**
 * Byte-budgeted host-side store of swapped-out KV nodes.
 *
 * Not thread-safe; one tier is owned by one serving loop. Managers
 * register as owners (registerOwner/releaseOwner) so entries of
 * destroyed managers can never alias entries of later ones.
 */
class HostKvTier
{
  public:
    /**
     * @param budget_bytes Host bytes available for swapped KV (<= 0
     *        disables admission entirely).
     * @param bandwidth_bytes_per_s Host-link bandwidth the SimClock is
     *        charged at; must be > 0.
     */
    HostKvTier(double budget_bytes, double bandwidth_bytes_per_s);

    HostKvTier(const HostKvTier &) = delete;
    HostKvTier &operator=(const HostKvTier &) = delete;

    /** New monotonic owner id for one KvCacheManager. */
    [[nodiscard]] uint64_t registerOwner();

    /** Drop every entry of `owner` (manager destruction). */
    void releaseOwner(uint64_t owner);

    /**
     * Offer one node's KV for host storage. Evicts least-recently-
     * swapped entries until it fits; false (and nothing stored) when
     * `bytes` exceeds the whole budget. Re-offering a live (owner,
     * node) entry replaces it.
     */
    [[nodiscard]] bool swapOut(uint64_t owner, int node, int tokens,
                               double bytes);

    /**
     * Restore one node: true and the entry is consumed iff (owner,
     * node) is present with exactly `tokens` tokens. A token mismatch
     * drops the stale entry and misses.
     */
    [[nodiscard]] bool take(uint64_t owner, int node, int tokens);

    /** Whether (owner, node) currently has a live entry. */
    [[nodiscard]] bool contains(uint64_t owner, int node) const;

    /** Sim seconds one `bytes`-sized copy takes over the host link. */
    [[nodiscard]] double transferSeconds(double bytes) const;

    [[nodiscard]] double budgetBytes() const { return budget_; }
    [[nodiscard]] double bandwidthBytesPerSec() const
    {
        return bandwidth_;
    }

    /** Bytes currently held on the host. */
    [[nodiscard]] double residentBytes() const { return resident_; }

    /** Highest simultaneous host occupancy seen. */
    [[nodiscard]] double peakBytes() const { return peak_; }

    /** Live entries. */
    [[nodiscard]] int entryCount() const
    {
        return static_cast<int>(entries_.size());
    }

    [[nodiscard]] const HostKvTierStats &stats() const { return stats_; }

  private:
    /** (owner id, node id): the stable identity of a swapped node. */
    using Key = std::pair<uint64_t, int>;

    struct Entry
    {
        int tokens = 0;
        double bytes = 0;
        uint64_t seq = 0; //!< Swap-out recency (monotonic).
    };

    void erase(const Key &key, const Entry &entry);

    double budget_;
    double bandwidth_;
    double resident_ = 0;
    double peak_ = 0;
    uint64_t nextOwner_ = 1;
    uint64_t nextSeq_ = 1;
    // Ordered maps keep every sweep deterministic (fasttts_lint:
    // unordered iteration and pointer keys are both banned).
    std::map<Key, Entry> entries_;
    std::map<uint64_t, Key> lru_; //!< seq -> key, oldest first.
    HostKvTierStats stats_;
};

} // namespace fasttts

#endif // FASTTTS_KV_KV_TIER_H
