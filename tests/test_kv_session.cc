/**
 * @file
 * Tests for the shared KV budget ledger and KV session save/restore:
 * cross-manager budget enforcement, force-eviction, and the
 * randomized suspend -> evict -> resume round-trip property the
 * online server's preemption relies on.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kv/kv_cache.h"
#include "kv/kv_session.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace fasttts
{
namespace
{

// 1 byte per token, 16-token blocks: a budget of B bytes is B tokens.
constexpr double kTokenByte = 1.0;
constexpr int kBlockTokens = 16;

TEST(KvBudgetLedger, ChargeAndReleaseTrackOccupancy)
{
    KvBudgetLedger ledger(1000);
    EXPECT_EQ(ledger.totalBytes(), 1000);
    EXPECT_EQ(ledger.usedBytes(), 0);
    EXPECT_TRUE(ledger.charge(600));
    EXPECT_EQ(ledger.usedBytes(), 600);
    EXPECT_EQ(ledger.freeBytes(), 400);
    ledger.release(200);
    EXPECT_EQ(ledger.usedBytes(), 400);
    EXPECT_EQ(ledger.peakUsedBytes(), 600);
}

TEST(KvBudgetLedger, FailedChargeLeavesStateUnchanged)
{
    KvBudgetLedger ledger(100);
    EXPECT_TRUE(ledger.charge(80));
    EXPECT_FALSE(ledger.charge(30));
    EXPECT_EQ(ledger.usedBytes(), 80);
    EXPECT_EQ(ledger.failedCharges(), 1u);
    // Release clamps at zero occupancy.
    ledger.release(500);
    EXPECT_EQ(ledger.usedBytes(), 0);
}

TEST(KvBudgetLedger, ManagerChargesExactlyItsResidentBytes)
{
    KvBudgetLedger ledger(4096);
    KvCacheManager kv(2048, kTokenByte, kBlockTokens);
    kv.attachLedger(&ledger);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 100);
    const int b = kv.createChild(a, 2, 50);
    ASSERT_TRUE(kv.ensureResident(b, 1).ok);
    EXPECT_GT(ledger.usedBytes(), 0);
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), kv.residentBytes());
    ASSERT_TRUE(kv.appendTokens(b, 40, 2));
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), kv.residentBytes());
    kv.truncateTokens(b, 10);
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), kv.residentBytes());
}

TEST(KvBudgetLedger, ManagerDestructionRefundsItsCharge)
{
    KvBudgetLedger ledger(4096);
    {
        KvCacheManager kv(2048, kTokenByte, kBlockTokens);
        kv.attachLedger(&ledger);
        const int a = kv.createChild(KvCacheManager::kRoot, 1, 200);
        (void)kv.ensureResident(a, 1);
        EXPECT_GT(ledger.usedBytes(), 0);
    }
    EXPECT_EQ(ledger.usedBytes(), 0);
}

TEST(KvBudgetLedger, SharedBudgetBindsAcrossManagers)
{
    // Two managers with roomy local pools share a ledger that can
    // only hold one of their working sets: the second must evict its
    // own cache or fail, never exceed the shared budget.
    KvBudgetLedger ledger(256);
    KvCacheManager a(1024, kTokenByte, kBlockTokens);
    KvCacheManager b(1024, kTokenByte, kBlockTokens);
    a.attachLedger(&ledger);
    b.attachLedger(&ledger);

    const int leaf_a = a.createChild(KvCacheManager::kRoot, 1, 192);
    a.retain(leaf_a); // Pinned: b cannot steal it back.
    EXPECT_TRUE(a.ensureResident(leaf_a, 1).ok);

    const int leaf_b = b.createChild(KvCacheManager::kRoot, 1, 192);
    b.retain(leaf_b);
    // 192 + 192 > 256: the shared pool cannot hold both.
    EXPECT_FALSE(b.ensureResident(leaf_b, 2).ok);
    EXPECT_LE(ledger.usedBytes(), ledger.totalBytes());
    // b's local pool has plenty of room: only the shared ledger can
    // be what stopped it.
    EXPECT_GT(b.allocator().free(), b.blocksFor(192));
    EXPECT_EQ(b.freeBlocks(), 4u); // (256-192+0.5)/16 rounded down.

    // Releasing a's pin and force-evicting it frees the budget for b.
    a.release(leaf_a);
    KvSession(a).suspend(3);
    EXPECT_TRUE(b.ensureResident(leaf_b, 4).ok);
    EXPECT_LE(ledger.usedBytes(), ledger.totalBytes());
}

TEST(KvSession, SuspendDropsEverythingAndCountsIt)
{
    KvCacheManager kv(2048, kTokenByte, kBlockTokens);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 100);
    const int b = kv.createChild(a, 2, 60);
    kv.retain(b); // Pins survive suspension (logical references).
    ASSERT_TRUE(kv.ensureResident(b, 1).ok);
    ASSERT_TRUE(kv.isResident(b));

    KvSession session(kv);
    const long dropped = session.suspend(2);
    EXPECT_EQ(dropped, 160);
    EXPECT_TRUE(session.suspended());
    EXPECT_FALSE(kv.isResident(a));
    EXPECT_FALSE(kv.isResident(b));
    EXPECT_TRUE(kv.isResident(KvCacheManager::kRoot));
    EXPECT_EQ(kv.allocator().used(), 0u);
    EXPECT_EQ(kv.residentTokens(), 0);
    EXPECT_EQ(kv.stats().preemptEvictedTokens, 160u);
    EXPECT_EQ(kv.refCount(b), 1); // The pin is still logical.

    // Resume restores the frontier (and hence the whole path),
    // counted as recompute.
    const long restored = session.resume(3);
    EXPECT_EQ(restored, 160);
    EXPECT_TRUE(kv.isResident(a));
    EXPECT_TRUE(kv.isResident(b));
    EXPECT_EQ(session.stats().suspends, 1);
    EXPECT_EQ(session.stats().resumes, 1);
}

/**
 * Apply one pseudo-random tree operation to a manager. Determinism:
 * both twins run the identical op stream from identical seeds.
 */
void
applyRandomOp(KvCacheManager &kv, std::vector<int> &leaves,
              std::vector<int> &retained, Rng &rng, uint64_t &next_seg,
              uint64_t tick)
{
    const int op = rng.uniformInt(0, 5);
    const int pick = leaves.empty()
        ? -1
        : leaves[static_cast<size_t>(
              rng.uniformInt(0, static_cast<int>(leaves.size()) - 1))];
    switch (op) {
    case 0: { // Grow the tree.
        const int parent = pick < 0 ? KvCacheManager::kRoot : pick;
        const int child = kv.createChild(parent, next_seg++,
                                         rng.uniformInt(1, 40));
        leaves.push_back(child);
        break;
    }
    case 1: // Touch a path.
        if (pick >= 0)
            (void)kv.ensureResident(pick, tick);
        break;
    case 2: // Decode into a leaf.
        if (pick >= 0)
            (void)kv.appendTokens(pick, rng.uniformInt(1, 24), tick);
        break;
    case 3: // Truncate (speculative duplicate).
        if (pick >= 0 && kv.nodeTokens(pick) > 1)
            kv.truncateTokens(pick,
                              rng.uniformInt(0, kv.nodeTokens(pick) - 1));
        break;
    case 4: // Pin a beam.
        if (pick >= 0) {
            kv.retain(pick);
            retained.push_back(pick);
        }
        break;
    default: // Unpin.
        if (!retained.empty()) {
            const size_t at = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int>(retained.size()) - 1));
            kv.release(retained[at]);
            retained.erase(retained.begin() + static_cast<long>(at));
        }
        break;
    }
}

TEST(KvSession, RandomizedSuspendEvictResumeRoundTrip)
{
    // Property: running an op stream with interleaved
    // suspend -> (blocks evicted) -> resume cycles leaves every
    // observable — path tokens, unshared tokens, node count and
    // allocator occupancy — identical to the uninterrupted twin.
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        KvCacheManager plain(1 << 12, kTokenByte, kBlockTokens);
        KvCacheManager preempted(1 << 12, kTokenByte, kBlockTokens);
        KvSession session(preempted);
        Rng rng_a(seed);
        Rng rng_b(seed);
        std::vector<int> leaves_a, retained_a;
        std::vector<int> leaves_b, retained_b;
        uint64_t seg_a = 1, seg_b = 1;

        for (int step = 0; step < 200; ++step) {
            const uint64_t tick = static_cast<uint64_t>(step) + 1;
            applyRandomOp(plain, leaves_a, retained_a, rng_a, seg_a,
                          tick);
            applyRandomOp(preempted, leaves_b, retained_b, rng_b,
                          seg_b, tick);
            ASSERT_EQ(leaves_a.size(), leaves_b.size());
            if (step % 37 == 36) {
                session.suspend(tick);
                EXPECT_EQ(preempted.allocator().used(), 0u);
                session.resume(tick);
            }
        }
        // One final cycle so the comparison happens right after a
        // round trip too.
        session.suspend(999);
        session.resume(999);

        ASSERT_EQ(plain.nodeCount(), preempted.nodeCount());
        EXPECT_EQ(plain.unsharedTokens(), preempted.unsharedTokens());
        for (size_t i = 0; i < leaves_a.size(); ++i) {
            EXPECT_EQ(plain.pathTokens(leaves_a[i]),
                      preempted.pathTokens(leaves_b[i]));
            EXPECT_EQ(plain.nodeTokens(leaves_a[i]),
                      preempted.nodeTokens(leaves_b[i]));
            EXPECT_EQ(plain.refCount(leaves_a[i]),
                      preempted.refCount(leaves_b[i]));
        }
        // Resume restores exactly the frontier that was resident, so
        // block occupancy matches the uninterrupted run whenever the
        // budget was never the binding constraint — which a 4 KiB
        // pool over <= 200 small ops guarantees here.
        EXPECT_EQ(plain.allocator().used(),
                  preempted.allocator().used());
        EXPECT_EQ(plain.residentTokens(), preempted.residentTokens());
    }
}

// --- Partial resume under a near-full shared ledger ---

TEST(KvSession, PartialResumeUnderNearFullLedgerBalancesCharges)
{
    // resume() is best-effort: with the shared ledger nearly full it
    // restores paths in snapshot order until the budget refuses, and
    // every byte it does charge must equal the manager's resident
    // bytes exactly — no drift, no leak — with the unrestored paths
    // recomputing lazily once the pressure lifts.
    KvBudgetLedger ledger(512);
    KvCacheManager kv(2048, kTokenByte, kBlockTokens);
    kv.attachLedger(&ledger);
    std::vector<int> leaves;
    for (int i = 0; i < 4; ++i) {
        const int leaf = kv.createChild(KvCacheManager::kRoot,
                                        static_cast<uint64_t>(i + 1),
                                        96);
        kv.retain(leaf);
        ASSERT_TRUE(kv.ensureResident(leaf, 1).ok);
        leaves.push_back(leaf);
    }
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), kv.residentBytes());
    const double full_bytes = kv.residentBytes();

    KvSession session(kv);
    const long evicted = session.suspend(2);
    EXPECT_EQ(evicted, 4 * 96);
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), 0.0);

    // Another request hogs the pool: only ~2 of the 4 paths fit.
    const double squatter = 300;
    ASSERT_TRUE(ledger.charge(squatter));
    const long restored = session.resume(3);
    EXPECT_GT(restored, 0);
    EXPECT_LT(restored, evicted);
    // Byte-exact: the ledger holds the squatter plus exactly the
    // manager's resident KV, nothing more.
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), squatter + kv.residentBytes());
    EXPECT_LE(ledger.usedBytes(), ledger.totalBytes());

    // Pressure lifts; lazy recompute brings every path back, and the
    // books still balance byte for byte.
    ledger.release(squatter);
    for (const int leaf : leaves)
        ASSERT_TRUE(kv.ensureResident(leaf, 4).ok);
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), kv.residentBytes());
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), full_bytes);
    EXPECT_EQ(kv.residentTokens(), 4 * 96);
}

// --- Fault injection at the KV sites ---

TEST(KvBudgetLedger, InjectedAllocFaultRefusesChargeWithoutStateChange)
{
    KvBudgetLedger ledger(1000);
    FaultInjector injector(FaultPlan::uniform(1.0), 9);
    ledger.attachFaultInjector(&injector);
    EXPECT_FALSE(ledger.charge(100)); // Budget is free; fault refuses.
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), 0.0);
    EXPECT_EQ(ledger.failedCharges(), 1u);
    EXPECT_EQ(injector.stats(FaultSite::kKvAlloc).injected, 1);
    ledger.attachFaultInjector(nullptr);
    EXPECT_TRUE(ledger.charge(100));
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), 100.0);
}

TEST(KvSession, InjectedRestoreFaultLeavesLeavesColdAndBalanced)
{
    // A rate-1.0 kv_restore plan fails every frontier leaf: resume()
    // restores nothing, the session stays structurally intact, and
    // first touch recomputes each path with charges still balanced.
    KvBudgetLedger ledger(4096);
    KvCacheManager kv(2048, kTokenByte, kBlockTokens);
    kv.attachLedger(&ledger);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 100);
    const int b = kv.createChild(KvCacheManager::kRoot, 2, 60);
    kv.retain(a);
    kv.retain(b);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    ASSERT_TRUE(kv.ensureResident(b, 1).ok);

    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"kv_restore\", \"rate\": 1.0}]}");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(*plan, 9);
    KvSession session(kv);
    session.attachFaultInjector(&injector);

    ASSERT_EQ(session.suspend(2), 160);
    EXPECT_EQ(session.resume(3), 0);
    EXPECT_EQ(injector.stats(FaultSite::kKvRestore).probes, 2);
    EXPECT_EQ(injector.stats(FaultSite::kKvRestore).injected, 2);
    EXPECT_FALSE(kv.isResident(a));
    EXPECT_FALSE(kv.isResident(b));
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), 0.0);

    ASSERT_TRUE(kv.ensureResident(a, 4).ok);
    ASSERT_TRUE(kv.ensureResident(b, 4).ok);
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), kv.residentBytes());
    EXPECT_EQ(kv.residentTokens(), 160);
}

TEST(KvSession, FaultedResumeTwinMatchesUninterruptedSolutions)
{
    // The satellite-3 property: an op stream whose suspend/resume
    // cycles fail half their restores is still logically identical
    // to the uninterrupted twin — faulted leaves recompute lazily, so
    // only residency timing may differ, never tree content.
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        KvCacheManager plain(1 << 12, kTokenByte, kBlockTokens);
        KvCacheManager faulted(1 << 12, kTokenByte, kBlockTokens);
        KvSession session(faulted);
        const auto plan = FaultPlan::fromJsonText(
            "{\"rules\": [{\"site\": \"kv_restore\", "
            "\"rate\": 0.5}]}");
        ASSERT_TRUE(plan.ok());
        FaultInjector injector(*plan, seed);
        session.attachFaultInjector(&injector);
        Rng rng_a(seed);
        Rng rng_b(seed);
        std::vector<int> leaves_a, retained_a;
        std::vector<int> leaves_b, retained_b;
        uint64_t seg_a = 1, seg_b = 1;

        for (int step = 0; step < 200; ++step) {
            const uint64_t tick = static_cast<uint64_t>(step) + 1;
            applyRandomOp(plain, leaves_a, retained_a, rng_a, seg_a,
                          tick);
            applyRandomOp(faulted, leaves_b, retained_b, rng_b,
                          seg_b, tick);
            if (step % 37 == 36) {
                session.suspend(tick);
                session.resume(tick);
            }
        }
        EXPECT_GT(injector.stats(FaultSite::kKvRestore).probes, 0);

        ASSERT_EQ(plain.nodeCount(), faulted.nodeCount());
        EXPECT_EQ(plain.unsharedTokens(), faulted.unsharedTokens());
        ASSERT_EQ(leaves_a.size(), leaves_b.size());
        for (size_t i = 0; i < leaves_a.size(); ++i) {
            EXPECT_EQ(plain.pathTokens(leaves_a[i]),
                      faulted.pathTokens(leaves_b[i]));
            EXPECT_EQ(plain.nodeTokens(leaves_a[i]),
                      faulted.nodeTokens(leaves_b[i]));
            EXPECT_EQ(plain.refCount(leaves_a[i]),
                      faulted.refCount(leaves_b[i]));
        }
    }
}

} // namespace
} // namespace fasttts
