/**
 * @file
 * Online admission (queue) policies for the serving front-end.
 *
 * The paper's deployment model keeps one edge device responsive under
 * arrival pressure (Sec. 4.1.2: the speculative phase is fully
 * preemptible, so pending requests never wait behind speculation).
 * Which pending request should take the next free slot is a policy
 * decision, not an engine decision: this header makes it a first-class,
 * registry-backed axis so heuristic and learned admission policies can
 * be compared on identical arrival traces (see bench_fig18_scheduling).
 *
 * A QueuePolicy ranks the *request* queue of OnlineServer; it is
 * distinct from sched/scheduler.h's BeamScheduler, which orders the
 * *beams* of one in-flight request. Each policy also carries a
 * preemptive variant (shouldPreempt) used by the server's
 * --preempt policy mode to take the engine away from a running
 * victim when a strictly more urgent request is in flight. Built-ins:
 *
 *  - "fifo"     arrival order (the legacy OnlineServer behaviour),
 *  - "priority" highest priority first, with time-based aging so a
 *               low-priority request cannot starve,
 *  - "sjf"      shortest predicted job first, using the roofline cost
 *               model's service-time estimate (Sec. 4.3.1),
 *  - "edf"      earliest deadline first (SLO-aware).
 *
 * Custom policies plug in through queuePolicyRegistry() without core
 * edits (see the README's "Extending FastTTS"):
 *
 *   queuePolicyRegistry().add("lifo", [] {
 *       return std::make_unique<MyLifoPolicy>();
 *   });
 */

#ifndef FASTTTS_SCHED_QUEUE_POLICY_H
#define FASTTTS_SCHED_QUEUE_POLICY_H

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/status.h"
#include "model/model_spec.h"
#include "model/workload.h"
#include "sim/roofline.h"

namespace fasttts
{

/** What an admission policy knows about one queued request. */
struct QueuedRequest
{
    uint64_t id = 0;          //!< Submission sequence number.
    int problemId = 0;        //!< Problem the request serves.
    double arrival = 0;       //!< Arrival time (s).
    int priority = 0;         //!< Higher = more important.
    double deadline = std::numeric_limits<double>::infinity();
                              //!< Absolute SLO deadline (s); infinity
                              //!< when the request carries no SLO.
    double predictedCost = 0; //!< Roofline-predicted service time (s).
};

/**
 * Admission-ordering policy: given the pending queue, pick the request
 * that should take the next free serving slot.
 *
 * Implementations must be deterministic functions of (pending, now)
 * and any internal state seeded at construction, so traces replay
 * bit-for-bit. pick() is non-const to allow stateful custom policies.
 */
class QueuePolicy
{
  public:
    virtual ~QueuePolicy() = default;

    /** Policy name for reports. */
    [[nodiscard]] virtual std::string name() const = 0;

    /**
     * Index into `pending` of the request to admit next.
     * @param pending Non-empty queue of requests that have arrived.
     * @param now Current wall-clock time (s); every pending arrival
     *            is <= now.
     */
    [[nodiscard]] virtual size_t
    pick(const std::vector<QueuedRequest> &pending, double now) = 0;

    /**
     * Preemptive variant (OnlineServer's --preempt policy mode):
     * whether `challenger` is urgent enough to take the device away
     * from `running` mid-request. The server then suspends the
     * victim's engine state and runs the challenger; the victim keeps
     * its in-flight slot and continues later.
     *
     * The base implementation never preempts (every policy is usable
     * non-preemptively); built-ins override it with a strict version
     * of their pick() ordering — strict so equal-urgency requests
     * cannot thrash the engine with suspend/resume cycles.
     */
    [[nodiscard]] virtual bool
    shouldPreempt(const QueuedRequest &running,
                  const QueuedRequest &challenger, double now)
    {
        (void)running;
        (void)challenger;
        (void)now;
        return false;
    }
};

/** Arrival order — the legacy OnlineServer behaviour. */
[[nodiscard]] std::unique_ptr<QueuePolicy> makeFifoPolicy();

/**
 * Highest priority first with aging: a request's effective priority is
 * priority + aging_per_second * (now - arrival), so any positive aging
 * rate bounds how long a low-priority request can starve. Ties go to
 * the earlier arrival.
 */
[[nodiscard]] std::unique_ptr<QueuePolicy>
makePriorityPolicy(double aging_per_second = 0.05);

/**
 * Shortest predicted job first: minimises mean latency under load by
 * admitting the request with the smallest roofline-predicted service
 * time. Ties go to the earlier arrival.
 */
[[nodiscard]] std::unique_ptr<QueuePolicy> makeSjfPolicy();

/**
 * Earliest deadline first: classic SLO-aware admission. Requests
 * without a deadline (infinity) sort last; ties go to the earlier
 * arrival.
 */
[[nodiscard]] std::unique_ptr<QueuePolicy> makeEdfPolicy();

/**
 * The queue-policy registry. Ships with "fifo", "priority", "sjf" and
 * "edf"; register custom admission policies here to schedule new
 * workloads without touching core code.
 */
Registry<std::unique_ptr<QueuePolicy>> &queuePolicyRegistry();

/**
 * Construct a policy by registered name. Unknown names are a kNotFound
 * error listing the valid names — never a silent default.
 */
StatusOr<std::unique_ptr<QueuePolicy>>
makeQueuePolicy(const std::string &name);

/**
 * Roofline-based service-time prediction for one request (the cost
 * model "sjf" ranks by): prompt prefill plus the dataset's expected
 * reasoning depth worth of decode and verification. A ranking
 * heuristic — it sees only pre-serving observables (prompt length and
 * dataset statistics), never the request's sampled trajectory.
 */
[[nodiscard]] double predictServiceTime(const RooflineModel &roofline,
                          const ModelConfig &models,
                          const DatasetProfile &profile,
                          const Problem &problem, int num_beams);

/**
 * Rough prediction of one request's resident KV working set (bytes,
 * generator + verifier trees) for memory-aware admission: a shared
 * trunk of the expected reasoning depth plus a per-beam frontier of
 * one expected step, priced at each model's per-token KV cost. A
 * ranking/gating heuristic from pre-serving observables only — it
 * never sees the request's sampled trajectory.
 */
[[nodiscard]] double predictKvWorkingSetBytes(const ModelConfig &models,
                                const DatasetProfile &profile,
                                const Problem &problem, int num_beams);

} // namespace fasttts

#endif // FASTTTS_SCHED_QUEUE_POLICY_H
