/**
 * @file
 * Reproduces paper Fig. 13: end-to-end completion latency with the
 * generator/verifier breakdown, across three model configurations and
 * two datasets, n = 8..512.
 *
 * Expectation: FastTTS reduces latency by 38-68% on average; verifier
 * latency falls more (75-85%) than generator latency (36-66%); in the
 * 1.5B+7B configuration the verifier's share grows with n.
 */

#include <iostream>
#include <string>
#include <vector>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/histogram.h"
#include "util/table.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    EngineArgs defaults;
    defaults.numProblems = 4;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Fig.13 latency breakdown (datasets, model configs and n swept "
        "by the figure)",
        {"--problems", "--seed"});
    const int problems = args.numProblems;
    const std::vector<int> beam_counts = {8, 32, 128, 512};

    SummaryStats latency_reduction;
    SummaryStats gen_reduction;
    SummaryStats ver_reduction;

    for (const std::string dataset : {"AIME", "AMC"}) {
        for (const auto &models : allModelConfigs()) {
            Table table("Fig.13 completion latency (s) - " + dataset
                        + " " + models.label);
            table.setHeader({"n", "base total", "base gen", "base ver",
                             "fast total", "fast gen", "fast ver",
                             "reduction %"});
            for (int n : beam_counts) {
                BatchResult out[2];
                for (int pass = 0; pass < 2; ++pass) {
                    ServingOptions opts;
                    opts.config = pass ? FastTtsConfig::fastTts()
                                       : FastTtsConfig::baseline();
                    opts.models = models;
                    opts.datasetName = dataset;
                    opts.numBeams = n;
                    opts.seed = args.seed;
                    ServingSystem system =
                        ServingSystem::create(opts).value();
                    out[pass] = system.serveProblems(problems);
                }
                const double reduction = 100.0
                    * (out[0].meanLatency - out[1].meanLatency)
                    / out[0].meanLatency;
                latency_reduction.add(reduction);
                if (out[0].meanGeneratorTime > 0) {
                    gen_reduction.add(100.0
                                      * (out[0].meanGeneratorTime
                                         - out[1].meanGeneratorTime)
                                      / out[0].meanGeneratorTime);
                }
                if (out[0].meanVerifierTime > 0) {
                    ver_reduction.add(100.0
                                      * (out[0].meanVerifierTime
                                         - out[1].meanVerifierTime)
                                      / out[0].meanVerifierTime);
                }
                table.addRow(
                    std::to_string(n),
                    {out[0].meanLatency, out[0].meanGeneratorTime,
                     out[0].meanVerifierTime, out[1].meanLatency,
                     out[1].meanGeneratorTime, out[1].meanVerifierTime,
                     reduction},
                    1);
            }
            table.setCaption("Paper: latency reduced 38-68%; in "
                             "1.5B+7B the verifier share grows with n.");
            table.print(std::cout);
        }
    }

    std::cout << "\nMean latency reduction: "
              << formatDouble(latency_reduction.mean(), 1)
              << "%  (paper: 38-68%)\n"
              << "Mean generator-time reduction: "
              << formatDouble(gen_reduction.mean(), 1)
              << "%  (paper: 36-66%)\n"
              << "Mean verifier-time reduction: "
              << formatDouble(ver_reduction.mean(), 1)
              << "%  (paper: 75-85%)\n";
    return 0;
}
