#include "util/fault_injector.h"

#include <cmath>

#include "util/json.h"

namespace fasttts
{

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
    case FaultSite::kWaveStep:
        return "wave_step";
    case FaultSite::kKvAlloc:
        return "kv_alloc";
    case FaultSite::kKvRestore:
        return "kv_restore";
    case FaultSite::kPrefixAcquire:
        return "prefix_acquire";
    }
    return "unknown";
}

StatusOr<FaultSite>
faultSiteFromName(const std::string &name)
{
    if (name == "wave_step")
        return FaultSite::kWaveStep;
    if (name == "kv_alloc")
        return FaultSite::kKvAlloc;
    if (name == "kv_restore")
        return FaultSite::kKvRestore;
    if (name == "prefix_acquire")
        return FaultSite::kPrefixAcquire;
    return Status::notFound(
        "unknown fault site '" + name
        + "' (expected wave_step, kv_alloc, kv_restore or "
          "prefix_acquire)");
}

namespace
{

StatusOr<double>
ruleNumber(const Json &rule, const std::string &key, double fallback)
{
    if (!rule.has(key))
        return fallback;
    if (!rule[key].isNumber())
        return Status::invalidArgument("fault rule \"" + key
                                       + "\" must be a number");
    return rule[key].asNumber();
}

} // namespace

StatusOr<FaultPlan>
FaultPlan::fromJsonText(const std::string &text)
{
    std::string error;
    const Json doc = Json::parse(text, &error);
    if (!error.empty())
        return Status::invalidArgument("fault plan JSON parse error: "
                                       + error);
    if (!doc.isObject())
        return Status::invalidArgument(
            "fault plan must be a JSON object with a \"rules\" array");
    FaultPlan plan;
    for (const auto &[key, value] : doc.members()) {
        if (key != "rules")
            return Status::invalidArgument(
                "unknown fault plan key \"" + key
                + "\" (only \"rules\" is recognised)");
        if (!value.isArray())
            return Status::invalidArgument(
                "fault plan \"rules\" must be an array");
        for (size_t i = 0; i < value.size(); ++i) {
            const Json &entry = value.at(i);
            if (!entry.isObject())
                return Status::invalidArgument(
                    "fault rule " + std::to_string(i)
                    + " must be an object");
            if (!entry.has("site") || !entry["site"].isString())
                return Status::invalidArgument(
                    "fault rule " + std::to_string(i)
                    + " needs a string \"site\"");
            auto site = faultSiteFromName(entry["site"].asString());
            if (!site.ok())
                return site.status();
            FaultRule rule;
            rule.site = *site;
            if (!entry.has("rate"))
                return Status::invalidArgument(
                    "fault rule " + std::to_string(i)
                    + " needs a numeric \"rate\"");
            auto rate = ruleNumber(entry, "rate", 0.0);
            if (!rate.ok())
                return rate.status();
            if (!std::isfinite(*rate) || *rate < 0 || *rate > 1)
                return Status::invalidArgument(
                    "fault rule " + std::to_string(i)
                    + " rate must be in [0, 1]");
            rule.rate = *rate;
            auto start = ruleNumber(entry, "start", 0.0);
            if (!start.ok())
                return start.status();
            rule.windowStart = *start;
            auto end = ruleNumber(
                entry, "end", std::numeric_limits<double>::infinity());
            if (!end.ok())
                return end.status();
            rule.windowEnd = *end;
            if (rule.windowEnd <= rule.windowStart)
                return Status::invalidArgument(
                    "fault rule " + std::to_string(i)
                    + " window is empty (end <= start)");
            if (entry.has("request")) {
                if (!entry["request"].isNumber())
                    return Status::invalidArgument(
                        "fault rule \"request\" must be a number");
                rule.requestId =
                    static_cast<long>(entry["request"].asNumber());
            }
            for (const auto &[rule_key, ignored] : entry.members()) {
                (void)ignored;
                if (rule_key != "site" && rule_key != "rate"
                    && rule_key != "start" && rule_key != "end"
                    && rule_key != "request")
                    return Status::invalidArgument(
                        "unknown fault rule key \"" + rule_key + "\"");
            }
            plan.rules.push_back(rule);
        }
    }
    return plan;
}

FaultPlan
FaultPlan::uniform(double rate)
{
    FaultPlan plan;
    for (int site = 0; site < kNumFaultSites; ++site) {
        FaultRule rule;
        rule.site = static_cast<FaultSite>(site);
        rule.rate = rate;
        plan.rules.push_back(rule);
    }
    return plan;
}

bool
FaultInjector::shouldFault(FaultSite site, long request_id)
{
    FaultSiteStats &stats = stats_[static_cast<int>(site)];
    ++stats.probes;
    // Combine every armed rule as an independent failure source; no
    // armed rule means no RNG draw, keeping unfaulted spans
    // bit-identical to a run without the injector.
    double survive = 1.0;
    bool armed = false;
    for (const FaultRule &rule : plan_.rules) {
        if (rule.site != site)
            continue;
        if (now_ < rule.windowStart || now_ >= rule.windowEnd)
            continue;
        if (rule.requestId >= 0 && rule.requestId != request_id)
            continue;
        armed = true;
        survive *= 1.0 - rule.rate;
    }
    if (!armed)
        return false;
    const bool fault = rng_.bernoulli(1.0 - survive);
    if (fault)
        ++stats.injected;
    return fault;
}

long
FaultInjector::injectedCount() const
{
    long total = 0;
    for (const FaultSiteStats &stats : stats_)
        total += stats.injected;
    return total;
}

long
FaultInjector::probeCount() const
{
    long total = 0;
    for (const FaultSiteStats &stats : stats_)
        total += stats.probes;
    return total;
}

} // namespace fasttts
