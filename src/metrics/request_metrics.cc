#include "metrics/request_metrics.h"

#include <algorithm>
#include <cmath>

namespace fasttts
{

namespace
{

template <typename Getter>
double
meanOf(const std::vector<RequestResult> &results, Getter get)
{
    if (results.empty())
        return 0.0;
    double total = 0;
    for (const auto &r : results)
        total += get(r);
    return total / static_cast<double>(results.size());
}

} // namespace

double
meanGoodput(const std::vector<RequestResult> &results)
{
    return meanOf(results,
                  [](const RequestResult &r) { return r.preciseGoodput(); });
}

double
meanCompletionTime(const std::vector<RequestResult> &results)
{
    return meanOf(results,
                  [](const RequestResult &r) { return r.completionTime; });
}

double
meanGeneratorTime(const std::vector<RequestResult> &results)
{
    return meanOf(results,
                  [](const RequestResult &r) { return r.generatorTime; });
}

double
meanVerifierTime(const std::vector<RequestResult> &results)
{
    return meanOf(results,
                  [](const RequestResult &r) { return r.verifierTime; });
}

double
sampleQuantile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
ceilRankPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double n = static_cast<double>(sorted.size());
    return sorted[static_cast<size_t>(
        std::min(n - 1.0, std::ceil(p * n) - 1))];
}

} // namespace fasttts
