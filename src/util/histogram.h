/**
 * @file
 * Streaming summary statistics and a fixed-bin histogram.
 *
 * Used by the metrics layer and the bench harnesses to report the
 * step-length and utilization distributions the paper plots (Fig. 3
 * right, Fig. 4, Fig. 17).
 */

#ifndef FASTTTS_UTIL_HISTOGRAM_H
#define FASTTTS_UTIL_HISTOGRAM_H

#include <cstddef>
#include <string>
#include <vector>

namespace fasttts
{

/**
 * Online mean / variance / extrema accumulator (Welford's algorithm).
 */
class SummaryStats
{
  public:
    /** Add one observation. */
    void add(double value);

    /** Merge another accumulator into this one. */
    void merge(const SummaryStats &other);

    /** Number of observations. */
    size_t count() const { return count_; }

    /** Arithmetic mean, 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance, 0 when fewer than two samples. */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /** Minimum observed value, 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Maximum observed value, 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-width binned histogram over [lo, hi).
 *
 * Out-of-range samples are clamped into the terminal bins so that counts
 * are never lost; percentile queries interpolate within bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin; must exceed lo.
     * @param num_bins Number of equal-width bins (>= 1).
     */
    Histogram(double lo, double hi, size_t num_bins);

    /** Add one observation. */
    void add(double value);

    /** Count in a bin. */
    size_t binCount(size_t bin) const { return bins_[bin]; }

    /** Number of bins. */
    size_t numBins() const { return bins_.size(); }

    /** Total observations. */
    size_t total() const { return total_; }

    /** Approximate p-quantile (0 <= p <= 1) by linear interpolation. */
    double quantile(double p) const;

    /** Lower edge of a bin. */
    double binLo(size_t bin) const;

    /** Upper edge of a bin. */
    double binHi(size_t bin) const;

    /** Render a compact ASCII sparkline of bin densities. */
    std::string sparkline() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<size_t> bins_;
    size_t total_ = 0;
};

} // namespace fasttts

#endif // FASTTTS_UTIL_HISTOGRAM_H
