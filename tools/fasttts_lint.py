#!/usr/bin/env python3
"""Repo-specific determinism and hygiene linter.

The simulator's headline contract is bit-for-bit determinism: every
BENCH_*.json must be byte-identical across runs, job counts and
machines. clang-tidy cannot see that contract, so this linter encodes
the repo rules that protect it:

  wall-clock         No wall-clock time sources in src/ — simulated
                     time comes from SimClock only. (The bench harness
                     times itself with steady_clock; that is bench/,
                     not src/.)
  raw-rand           No rand()/srand()/std::random_device in src/ —
                     all randomness flows from the seeded
                     counter-based Rng so streams never perturb each
                     other.
  unordered-iter     No iteration over std::unordered_map/set in src/
                     or bench/ unless the site is marked: hash-order
                     iteration feeding output or JSON is the classic
                     nondeterminism bug. Order-independent reductions
                     (counts, sums) carry an explicit allow marker.
  pointer-keyed-map  No std::map/std::set keyed on a pointer type in
                     src/ or bench/: address order varies run to run,
                     so any iteration over such a container is
                     nondeterministic even though the container is
                     "ordered".
  naked-new          No naked `new` in src/ or bench/ outside
                     src/alloc/ — ownership lives in unique_ptr /
                     containers. Intentional leaky singletons (the
                     registries) carry an allow marker.
  library-cout       No std::cout in library code (src/) — the
                     library reports through Status and return
                     values; printing belongs to bench/, examples/
                     and tools.
  fault-rand         No rand()/std::random_device and no std::<random>
                     engines or distributions in fault-path files
                     (any file whose name contains "fault"): fault
                     decisions must come from the injector's dedicated
                     seeded Rng stream, or identical fault plans stop
                     replaying bit-for-bit.

A site that is deliberately exempt carries a marker on its own line
or the line above:

    // fasttts-lint: allow(<rule>) <reason>

Usage:
  tools/fasttts_lint.py [PATH...]          lint (default: src bench)
  tools/fasttts_lint.py --list-rules       print rule names and exit
  tools/fasttts_lint.py --treat-as src F   lint F with src/ scope
  tools/fasttts_lint.py --golden F GOLDEN  fixture mode: lint F
                                           (src/ scope), diff the
                                           report against GOLDEN

Exit status: 0 clean (or golden match), 1 findings (or golden
mismatch), 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

# Rule name -> (scope, description). Scope "src" applies to src/
# only; "src+bench" also covers bench/.
RULES = {
    "wall-clock": ("src", "wall-clock time source in library code"),
    "raw-rand": ("src", "unseeded/global randomness in library code"),
    "unordered-iter": (
        "src+bench",
        "iteration over an unordered container (hash order)",
    ),
    "pointer-keyed-map": (
        "src+bench",
        "ordered container keyed on a pointer (address order)",
    ),
    "naked-new": ("src+bench", "naked new outside src/alloc/"),
    "library-cout": ("src", "std::cout in library code"),
    "fault-rand": (
        "src+bench",
        "non-Rng randomness in fault-path code (breaks replay)",
    ),
}

ALLOW_RE = re.compile(r"fasttts-lint:\s*allow\(([a-z-]+)\)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(NULL|nullptr|0)\s*\)"
)
RAW_RAND_RE = re.compile(
    r"\bstd::random_device\b|\bstd::rand\b|(?<![_\w])s?rand\s*\("
)
STD_RANDOM_ENGINE_RE = re.compile(
    r"\bstd::(mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|knuth_b|ranlux\d+(?:_base)?|\w+_distribution)\b"
)
POINTER_MAP_RE = re.compile(r"std::(map|set)\s*<[^<>,]*\*")
NAKED_NEW_RE = re.compile(r"(?<![_\w])new\s+[A-Za-z_(]")
COUT_RE = re.compile(r"\bstd::cout\b")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{=]"
)

STRING_OR_CHAR_RE = re.compile(r'"(\\.|[^"\\])*"|' + r"'(\\.|[^'\\])*'")
LINE_COMMENT_RE = re.compile(r"//.*$")


def strip_code(line, in_block_comment):
    """Return (code-only text, still-in-block-comment) for one line."""
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        start = line.find("/*", i)
        rest = line[i:] if start < 0 else line[i:start]
        out.append(rest)
        if start < 0:
            break
        i = start + 2
        in_block_comment = True
    code = LINE_COMMENT_RE.sub("", "".join(out))
    return STRING_OR_CHAR_RE.sub('""', code), in_block_comment


def scope_of(path):
    parts = Path(path).parts
    if "src" in parts:
        return "src"
    if "bench" in parts:
        return "bench"
    return None


def collect_unordered_names(files):
    """Names declared with an unordered container type anywhere in the
    linted set (headers declare members that .cc files iterate)."""
    names = set()
    for path in files:
        try:
            text = Path(path).read_text()
        except OSError:
            continue
        for match in UNORDERED_DECL_RE.finditer(text):
            names.add(match.group(1))
    return names


def lint_file(path, scope, unordered_names, findings):
    try:
        lines = Path(path).read_text().splitlines()
    except OSError as err:
        print(f"fasttts_lint: cannot read {path}: {err}",
              file=sys.stderr)
        return
    iter_res = [
        re.compile(r"for\s*\([^;)]*:\s*" + re.escape(n) + r"\s*\)")
        for n in unordered_names
    ] + [
        re.compile(r"\b" + re.escape(n) + r"\s*\.\s*(begin|cbegin)\s*\(")
        for n in unordered_names
    ]

    allowed_prev = set()
    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        allowed_here = set(ALLOW_RE.findall(raw)) | allowed_prev
        allowed_prev = set(ALLOW_RE.findall(raw))
        code, in_block = strip_code(raw, in_block)

        def report(rule):
            if rule in allowed_here:
                return
            if scope == "bench" and RULES[rule][0] == "src":
                return
            findings.append(
                f"{path}:{lineno}: [{rule}] {RULES[rule][1]}")

        if WALL_CLOCK_RE.search(code):
            report("wall-clock")
        if RAW_RAND_RE.search(code):
            report("raw-rand")
        if "fault" in Path(path).name and (
                RAW_RAND_RE.search(code)
                or STD_RANDOM_ENGINE_RE.search(code)):
            report("fault-rand")
        if POINTER_MAP_RE.search(code):
            report("pointer-keyed-map")
        if COUT_RE.search(code):
            report("library-cout")
        if "alloc" not in Path(path).parts and NAKED_NEW_RE.search(code):
            report("naked-new")
        if any(r.search(code) for r in iter_res):
            report("unordered-iter")


def expand(paths):
    files = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(
                sorted(
                    str(f)
                    for f in path.rglob("*")
                    if f.suffix in (".cc", ".h")
                )
            )
        else:
            files.append(str(path))
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        description="FastTTS determinism/hygiene linter")
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument(
        "--treat-as", choices=["src", "bench"],
        help="override path-based scope (fixtures live under tests/)")
    parser.add_argument(
        "--golden", nargs=2, metavar=("FIXTURE", "GOLDEN"),
        help="lint FIXTURE with src scope and diff against GOLDEN")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, (scope, desc) in RULES.items():
            print(f"{rule:18} [{scope}] {desc}")
        return 0

    if args.golden:
        fixture, golden = args.golden
        findings = []
        names = collect_unordered_names([fixture])
        lint_file(fixture, "src", names, findings)
        # Golden files record fixture-relative lines: "LINE: [rule] ..."
        got = [f[len(fixture) + 1:] for f in findings]
        try:
            want = Path(golden).read_text().splitlines()
        except OSError as err:
            print(f"fasttts_lint: cannot read golden: {err}",
                  file=sys.stderr)
            return 2
        want = [w for w in want if w and not w.startswith("#")]
        if got != want:
            print(f"fasttts_lint: golden mismatch for {fixture}")
            print("--- expected")
            for w in want:
                print(w)
            print("--- got")
            for g in got:
                print(g)
            return 1
        print(f"fasttts_lint: golden OK ({fixture}, "
              f"{len(want)} findings)")
        return 0

    paths = args.paths or ["src", "bench"]
    files = expand(paths)
    if not files:
        print("fasttts_lint: no .cc/.h files found", file=sys.stderr)
        return 2

    unordered_names = collect_unordered_names(files)
    findings = []
    for path in files:
        scope = args.treat_as or scope_of(path)
        if scope is None:
            scope = "src"  # strictest for stray paths
        lint_file(path, scope, unordered_names, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"fasttts_lint: {len(findings)} finding"
              f"{'' if len(findings) == 1 else 's'}")
        return 1
    print(f"fasttts_lint: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
