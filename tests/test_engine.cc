/**
 * @file
 * Integration tests for the serving engine: request lifecycle, metric
 * sanity, optimization toggles, and the performance orderings the
 * paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "core/engine.h"

namespace fasttts
{
namespace
{

RequestResult
run(const FastTtsConfig &config, const ModelConfig &models, int n,
    const std::string &dataset = "AIME", const std::string &algo_name
    = "beam_search", int problem_index = 0)
{
    const DatasetProfile profile = *datasetByName(dataset);
    auto algo = *makeAlgorithm(algo_name, n, 4);
    FastTtsEngine engine(config, models, rtx4090(), profile, *algo);
    const auto problems = makeProblems(profile, problem_index + 1, 2026);
    return engine.runRequest(problems[static_cast<size_t>(problem_index)]);
}

TEST(Engine, RequestCompletesWithNSolutions)
{
    const auto r =
        run(FastTtsConfig::fastTts(), config1_5Bplus1_5B(), 16);
    EXPECT_EQ(r.completedBeams, 16);
    EXPECT_EQ(r.solutions.size(), 16u);
    EXPECT_GT(r.completionTime, 0);
    EXPECT_GT(r.verifiedTokens, 0);
    EXPECT_GT(r.preciseGoodput(), 0);
}

TEST(Engine, BaselineRequestCompletesToo)
{
    const auto r =
        run(FastTtsConfig::baseline(), config1_5Bplus1_5B(), 16);
    EXPECT_EQ(r.completedBeams, 16);
    EXPECT_EQ(r.speculativeTokens, 0);
    EXPECT_EQ(r.wastedSpecTokens, 0);
}

TEST(Engine, TimeDecomposesIntoComponents)
{
    const auto r =
        run(FastTtsConfig::fastTts(), config1_5Bplus1_5B(), 32);
    EXPECT_NEAR(r.completionTime,
                r.generatorTime + r.verifierTime + r.transferTime, 1e-6);
    EXPECT_GT(r.generatorTime, 0);
    EXPECT_GT(r.verifierTime, 0);
}

TEST(Engine, SolutionsHaveValidFields)
{
    const auto r =
        run(FastTtsConfig::fastTts(), config1_5Bplus1_5B(), 8);
    for (const auto &s : r.solutions) {
        EXPECT_GE(s.answer, 0);
        EXPECT_GT(s.score, 0);
        EXPECT_LT(s.score, 1);
        EXPECT_GT(s.tokens, 0);
        EXPECT_GT(s.finishTime, 0);
        EXPECT_LE(s.finishTime, r.completionTime);
    }
}

TEST(Engine, SpeculationGeneratesExtraTokens)
{
    const auto r =
        run(FastTtsConfig::fastTts(), config1_5Bplus1_5B(), 16);
    EXPECT_GT(r.speculativeTokens, 0);
    EXPECT_GE(r.generatedTokens,
              r.speculativeTokens); // Spec is a subset of generated.
    EXPECT_LE(r.wastedSpecTokens, r.speculativeTokens);
}

TEST(Engine, FastTtsNotSlowerThanBaseline)
{
    for (const auto &models : allModelConfigs()) {
        for (int n : {8, 32}) {
            const auto base =
                run(FastTtsConfig::baseline(), models, n);
            const auto fast =
                run(FastTtsConfig::fastTts(), models, n);
            EXPECT_LE(fast.completionTime, base.completionTime * 1.05)
                << models.label << " n=" << n;
        }
    }
}

TEST(Engine, DeterministicAcrossRuns)
{
    const auto a =
        run(FastTtsConfig::fastTts(), config1_5Bplus1_5B(), 16);
    const auto b =
        run(FastTtsConfig::fastTts(), config1_5Bplus1_5B(), 16);
    EXPECT_DOUBLE_EQ(a.completionTime, b.completionTime);
    ASSERT_EQ(a.solutions.size(), b.solutions.size());
    for (size_t i = 0; i < a.solutions.size(); ++i) {
        EXPECT_EQ(a.solutions[i].answer, b.solutions[i].answer);
        EXPECT_DOUBLE_EQ(a.solutions[i].score, b.solutions[i].score);
    }
}

TEST(Engine, IterationStatsPopulated)
{
    const DatasetProfile profile = aime2024();
    auto algo = makeBeamSearch(16, 4);
    FastTtsEngine engine(FastTtsConfig::fastTts(), config1_5Bplus1_5B(),
                         rtx4090(), profile, *algo);
    const auto problems = makeProblems(profile, 1, 2026);
    (void)engine.runRequest(problems[0]);
    const auto &stats = engine.iterationStats();
    ASSERT_FALSE(stats.empty());
    for (const auto &s : stats) {
        EXPECT_GT(s.activeBeams, 0);
        EXPECT_GE(s.decodeBatch, 1);
        EXPECT_GE(s.prefillBatch, 1);
        EXPECT_GE(s.unsharedTokens, s.residentTokens * 0);
    }
    // Iteration clocks are monotone.
    for (size_t i = 1; i < stats.size(); ++i)
        EXPECT_GE(stats[i].clock, stats[i - 1].clock);
}

TEST(Engine, PrefixSharingReducesFootprint)
{
    // Fig. 5: with prefix sharing, resident tokens are far below the
    // sum of per-beam path lengths once branching has occurred.
    const DatasetProfile profile = aime2024();
    auto algo = makeBeamSearch(64, 4);
    FastTtsEngine engine(FastTtsConfig::fastTts(), config1_5Bplus1_5B(),
                         rtx4090(), profile, *algo);
    const auto problems = makeProblems(profile, 1, 2026);
    (void)engine.runRequest(problems[0]);
    bool saw_sharing = false;
    for (const auto &s : engine.iterationStats()) {
        ASSERT_GE(s.unsharedTokens, s.uniqueTokens);
        if (s.iteration >= 2 && s.unsharedTokens > 0)
            saw_sharing |= s.unsharedTokens > 2 * s.uniqueTokens;
    }
    EXPECT_TRUE(saw_sharing);
}

TEST(Engine, UtilizationTraceRecordedWhenEnabled)
{
    FastTtsConfig config = FastTtsConfig::fastTts();
    config.recordTrace = true;
    const DatasetProfile profile = aime2024();
    auto algo = makeBeamSearch(8, 4);
    FastTtsEngine engine(config, config1_5Bplus1_5B(), rtx4090(),
                         profile, *algo);
    const auto problems = makeProblems(profile, 1, 2026);
    (void)engine.runRequest(problems[0]);
    EXPECT_FALSE(engine.clock().segments().empty());
    bool saw_generation = false;
    bool saw_verification = false;
    for (const auto &seg : engine.clock().segments()) {
        saw_generation |= seg.phase == Phase::Generation;
        saw_verification |= seg.phase == Phase::Verification;
        EXPECT_GE(seg.computeUtil, 0.0);
        EXPECT_LE(seg.computeUtil, 1.0);
    }
    EXPECT_TRUE(saw_generation);
    EXPECT_TRUE(saw_verification);
}

TEST(Engine, TraceDisabledByDefault)
{
    const DatasetProfile profile = aime2024();
    auto algo = makeBeamSearch(8, 4);
    FastTtsEngine engine(FastTtsConfig::fastTts(), config1_5Bplus1_5B(),
                         rtx4090(), profile, *algo);
    const auto problems = makeProblems(profile, 1, 2026);
    (void)engine.runRequest(problems[0]);
    EXPECT_TRUE(engine.clock().segments().empty());
    EXPECT_GT(engine.clock().now(), 0);
}

TEST(Engine, StepTokenSamplesRecorded)
{
    const DatasetProfile profile = aime2024();
    auto algo = makeBeamSearch(16, 4);
    FastTtsEngine engine(FastTtsConfig::baseline(), config1_5Bplus1_5B(),
                         rtx4090(), profile, *algo);
    const auto problems = makeProblems(profile, 1, 2026);
    (void)engine.runRequest(problems[0]);
    const auto &samples = engine.stepTokenSamples();
    ASSERT_FALSE(samples.empty());
    EXPECT_FALSE(samples[0].empty());
    for (int tokens : samples[0]) {
        EXPECT_GE(tokens, profile.minStepTokens);
        EXPECT_LE(tokens, profile.maxStepTokens);
    }
}

TEST(Engine, NoForcedTerminationsAtModerateScale)
{
    for (int n : {8, 64}) {
        const DatasetProfile profile = aime2024();
        auto algo = makeBeamSearch(n, 4);
        FastTtsEngine engine(FastTtsConfig::fastTts(),
                             config1_5Bplus1_5B(), rtx4090(), profile,
                             *algo);
        const auto problems = makeProblems(profile, 1, 2026);
        (void)engine.runRequest(problems[0]);
        EXPECT_EQ(engine.forcedTerminations(), 0) << "n=" << n;
    }
}

TEST(Engine, OffloadConfigRunsOnTinyDevice)
{
    FastTtsConfig config = FastTtsConfig::fastTts();
    config.offloadEnabled = true;
    const DatasetProfile profile = aime2024();
    auto algo = makeBeamSearch(16, 4);
    FastTtsEngine engine(config, config1_5Bplus1_5B(), rtx3070Ti(),
                         profile, *algo);
    const auto problems = makeProblems(profile, 1, 2026);
    const auto r = engine.runRequest(problems[0]);
    EXPECT_EQ(r.completedBeams, 16);
}

TEST(Engine, LargerVerifierCostsMoreVerifierTime)
{
    const auto small =
        run(FastTtsConfig::baseline(), config1_5Bplus1_5B(), 32);
    const auto large =
        run(FastTtsConfig::baseline(), config1_5Bplus7B(), 32);
    EXPECT_GT(large.verifierTime, small.verifierTime);
}

TEST(Engine, LargerGeneratorCostsMoreGeneratorTime)
{
    const auto small =
        run(FastTtsConfig::baseline(), config1_5Bplus1_5B(), 32);
    const auto large =
        run(FastTtsConfig::baseline(), config7Bplus1_5B(), 32);
    EXPECT_GT(large.generatorTime, small.generatorTime);
}

TEST(Engine, EveryAlgorithmRunsEndToEnd)
{
    for (const std::string name :
         {"best_of_n", "beam_search", "dvts", "dynamic_branching",
          "varying_granularity"}) {
        const auto r = run(FastTtsConfig::fastTts(),
                           config1_5Bplus1_5B(), 16, "AIME", name);
        EXPECT_GT(r.completedBeams, 0) << name;
        EXPECT_GT(r.preciseGoodput(), 0) << name;
    }
}

TEST(Engine, EveryDatasetRunsEndToEnd)
{
    for (const std::string ds :
         {"AIME", "AMC", "MATH500", "HumanEval"}) {
        const auto r = run(FastTtsConfig::fastTts(),
                           config1_5Bplus1_5B(), 8, ds);
        EXPECT_EQ(r.completedBeams, 8) << ds;
    }
}

TEST(Engine, VaryingGranularityCapsEarlySteps)
{
    const DatasetProfile profile = aime2024();
    auto algo = makeVaryingGranularity(16, 4);
    FastTtsEngine engine(FastTtsConfig::baseline(), config1_5Bplus1_5B(),
                         rtx4090(), profile, *algo);
    const auto problems = makeProblems(profile, 1, 2026);
    (void)engine.runRequest(problems[0]);
    const auto &samples = engine.stepTokenSamples();
    for (int step = 0; step < 3 && step < static_cast<int>(samples.size());
         ++step) {
        for (int tokens : samples[static_cast<size_t>(step)])
            EXPECT_LE(tokens, 64) << "step " << step;
    }
}

TEST(Engine, HigherTruncationRatioKeepsMoreSpecTokens)
{
    FastTtsConfig high = FastTtsConfig::fastTts();
    high.truncationRatio = 0.85;
    FastTtsConfig low = FastTtsConfig::fastTts();
    low.truncationRatio = 0.0;
    const auto rh = run(high, config1_5Bplus1_5B(), 32);
    const auto rl = run(low, config1_5Bplus1_5B(), 32);
    // R=0 discards nearly all duplicated speculative tokens.
    EXPECT_GT(rh.speculativeTokens - rh.wastedSpecTokens,
              rl.speculativeTokens - rl.wastedSpecTokens);
}

TEST(Engine, KvStatsReportedAndConsistent)
{
    const auto r =
        run(FastTtsConfig::baseline(), config1_5Bplus7B(), 64);
    EXPECT_GT(r.kvStats.missTokens, 0u);
    EXPECT_EQ(r.kvStats.recomputedTokens, r.kvStats.missTokens);
}

} // namespace
} // namespace fasttts
