/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fasttts
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect)
{
    Rng rng(13);
    double sum = 0;
    double sq = 0;
    const int count = 200000;
    for (int i = 0; i < count; ++i) {
        const double x = rng.normal(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / count;
    const double var = sq / count - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(1.0, 0.8), 0.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(19);
    double sum = 0;
    const int count = 100000;
    for (int i = 0; i < count; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / count, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int count = 100000;
    for (int i = 0; i < count; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / count, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(29);
    std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[static_cast<size_t>(rng.categorical(weights))];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / static_cast<double>(draws), 0.6, 0.01);
}

TEST(Rng, CategoricalAllZeroWeightsReturnsZero)
{
    Rng rng(31);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_EQ(rng.categorical(weights), 0);
}

TEST(Rng, ForkIsDeterministicAndIndependent)
{
    Rng parent(101);
    Rng a = parent.fork(5);
    Rng b = parent.fork(5);
    Rng c = parent.fork(6);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, MixIsPure)
{
    EXPECT_EQ(Rng::mix(7, 3), Rng::mix(7, 3));
    EXPECT_NE(Rng::mix(7, 3), Rng::mix(7, 4));
    EXPECT_NE(Rng::mix(8, 3), Rng::mix(7, 3));
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(37);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

} // namespace
} // namespace fasttts
