#include "kv/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fasttts
{

namespace
{

size_t
blocksForTokens(int tokens, int block_tokens)
{
    if (tokens <= 0)
        return 0;
    return (static_cast<size_t>(tokens) + block_tokens - 1) / block_tokens;
}

} // namespace

KvCacheManager::KvCacheManager(double budget_bytes,
                               double kv_bytes_per_token, int block_tokens)
    : kvBytesPerToken_(kv_bytes_per_token), blockTokens_(block_tokens),
      alloc_(static_cast<size_t>(
          std::max(0.0, budget_bytes / kv_bytes_per_token / block_tokens)))
{
    // Root: the shared question prompt anchor. Permanently resident and
    // referenced so it can never be evicted.
    Node root;
    root.resident = true;
    root.refCount = 1;
    nodes_.push_back(root);
}

KvCacheManager::NodeId
KvCacheManager::childOf(NodeId parent, uint64_t seg_id) const
{
    for (const auto &[seg, id] : node(parent).children) {
        if (seg == seg_id)
            return id;
    }
    return kInvalid;
}

KvCacheManager::NodeId
KvCacheManager::createChild(NodeId parent, uint64_t seg_id, int tokens)
{
    assert(parent >= 0 && parent < static_cast<NodeId>(nodes_.size()));
    NodeId id;
    if (!freeList_.empty()) {
        id = freeList_.back();
        freeList_.pop_back();
        node(id) = Node();
    } else {
        id = static_cast<NodeId>(nodes_.size());
        nodes_.emplace_back();
    }
    Node &n = node(id);
    n.segId = seg_id;
    n.parent = parent;
    n.tokens = tokens;
    node(parent).children.emplace_back(seg_id, id);
    return id;
}

int
KvCacheManager::nodeTokens(NodeId id) const
{
    return node(id).tokens;
}

int
KvCacheManager::pathTokens(NodeId leaf) const
{
    int total = 0;
    for (NodeId id = leaf; id != kInvalid; id = node(id).parent)
        total += node(id).tokens;
    return total;
}

KvCacheManager::NodeId
KvCacheManager::parentOf(NodeId id) const
{
    return node(id).parent;
}

bool
KvCacheManager::appendTokens(NodeId id, int delta, uint64_t tick,
                             bool allow_evict)
{
    assert(delta >= 0);
    Node &n = node(id);
    const int new_tokens = n.tokens + delta;
    if (n.resident) {
        const size_t need = blocksForTokens(new_tokens, blockTokens_)
            - n.blocksHeld;
        if (need > 0) {
            if (alloc_.free() < need
                && (!allow_evict || !reclaim(need))) {
                return false;
            }
            if (!alloc_.allocate(need))
                return false;
            n.blocksHeld += need;
        }
        n.lastUse = tick;
        residentTokens_ += delta;
    }
    n.tokens = new_tokens;
    return true;
}

void
KvCacheManager::truncateTokens(NodeId id, int new_tokens)
{
    Node &n = node(id);
    assert(new_tokens >= 0 && new_tokens <= n.tokens);
    if (n.resident) {
        const size_t keep = blocksForTokens(new_tokens, blockTokens_);
        if (keep < n.blocksHeld) {
            alloc_.release(n.blocksHeld - keep);
            n.blocksHeld = keep;
        }
        residentTokens_ -= n.tokens - new_tokens;
    }
    n.tokens = new_tokens;
}

void
KvCacheManager::retain(NodeId leaf)
{
    for (NodeId id = leaf; id != kInvalid; id = node(id).parent)
        ++node(id).refCount;
}

void
KvCacheManager::release(NodeId leaf)
{
    for (NodeId id = leaf; id != kInvalid; id = node(id).parent) {
        Node &n = node(id);
        assert(n.refCount > 0);
        --n.refCount;
        // Nodes are never erased while a request runs: beams keep
        // (unpinned) references to their leaves and may re-touch them.
        // Unreferenced resident nodes simply become eviction victims.
        if (n.refCount == 0 && n.resident)
            maybeEnqueueVictim(id);
    }
}

int
KvCacheManager::refCount(NodeId id) const
{
    return node(id).refCount;
}

bool
KvCacheManager::evictable(const Node &n) const
{
    return n.resident && !n.erased && n.refCount == 0
        && n.residentChildren == 0;
}

void
KvCacheManager::maybeEnqueueVictim(NodeId id)
{
    if (id == kRoot)
        return;
    const Node &n = node(id);
    if (evictable(n))
        victims_.emplace(n.lastUse, id);
}

bool
KvCacheManager::reclaim(size_t need_blocks)
{
    bool rescanned = false;
    while (alloc_.free() < need_blocks) {
        // Pop lazily-invalidated heap entries.
        while (!victims_.empty()) {
            auto [tick, id] = victims_.top();
            const Node &n = node(id);
            if (!n.erased && evictable(n) && n.lastUse == tick)
                break;
            victims_.pop();
        }
        if (victims_.empty()) {
            if (rescanned)
                return false;
            // Rebuild candidates from a full scan (heap may have missed
            // nodes whose evictability changed without an event).
            for (NodeId id = 1; id < static_cast<NodeId>(nodes_.size());
                 ++id) {
                if (!node(id).erased)
                    maybeEnqueueVictim(id);
            }
            rescanned = true;
            if (victims_.empty())
                return false;
            continue;
        }
        const NodeId id = victims_.top().second;
        victims_.pop();
        evictNode(id);
    }
    return true;
}

void
KvCacheManager::evictNode(NodeId id)
{
    Node &n = node(id);
    assert(evictable(n));
    alloc_.release(n.blocksHeld);
    n.blocksHeld = 0;
    n.resident = false;
    --residentCount_;
    residentTokens_ -= n.tokens;
    ++stats_.evictions;
    stats_.evictedTokens += static_cast<uint64_t>(n.tokens);
    const NodeId parent = n.parent;
    if (parent != kInvalid) {
        --node(parent).residentChildren;
        maybeEnqueueVictim(parent);
    }
}

void
KvCacheManager::markResident(NodeId id, uint64_t tick)
{
    Node &n = node(id);
    assert(!n.resident);
    n.resident = true;
    n.lastUse = tick;
    ++residentCount_;
    residentTokens_ += n.tokens;
    if (n.parent != kInvalid)
        ++node(n.parent).residentChildren;
}

KvCacheManager::TouchResult
KvCacheManager::ensureResident(NodeId leaf, uint64_t tick)
{
    // Collect root->leaf path.
    std::vector<NodeId> path;
    for (NodeId id = leaf; id != kInvalid; id = node(id).parent)
        path.push_back(id);
    std::reverse(path.begin(), path.end());

    // Pin the path so reclaim() cannot evict nodes we just placed.
    for (NodeId id : path)
        ++node(id).refCount;

    TouchResult result;
    result.ok = true;
    for (NodeId id : path) {
        Node &n = node(id);
        if (n.resident) {
            n.lastUse = tick;
            result.cachedTokens += n.tokens;
            continue;
        }
        const size_t need = blocksForTokens(n.tokens, blockTokens_);
        if (alloc_.free() < need && !reclaim(need)) {
            result.ok = false;
            break;
        }
        if (!alloc_.allocate(need)) {
            result.ok = false;
            break;
        }
        n.blocksHeld = need;
        markResident(id, tick);
        result.recomputeTokens += n.tokens;
    }

    for (NodeId id : path) {
        Node &n = node(id);
        --n.refCount;
        if (n.refCount == 0 && n.resident)
            maybeEnqueueVictim(id);
    }

    stats_.hitTokens += static_cast<uint64_t>(result.cachedTokens);
    stats_.missTokens += static_cast<uint64_t>(result.recomputeTokens);
    stats_.recomputedTokens
        += static_cast<uint64_t>(result.recomputeTokens);
    return result;
}

bool
KvCacheManager::isResident(NodeId id) const
{
    return node(id).resident;
}

int
KvCacheManager::residentPrefixTokens(NodeId leaf) const
{
    // Residency is top-closed (a resident node's ancestors are
    // resident), so the resident prefix is the path minus the trailing
    // non-resident suffix.
    int non_resident = 0;
    NodeId id = leaf;
    while (id != kInvalid && !node(id).resident) {
        non_resident += node(id).tokens;
        id = node(id).parent;
    }
    return pathTokens(leaf) - non_resident;
}

int
KvCacheManager::nodeCount() const
{
    int count = 0;
    for (size_t i = 1; i < nodes_.size(); ++i) {
        if (!nodes_[i].erased)
            ++count;
    }
    return count;
}

int
KvCacheManager::residentNodeCount() const
{
    return residentCount_;
}

long
KvCacheManager::residentTokens() const
{
    return residentTokens_;
}

long
KvCacheManager::unsharedTokens() const
{
    // Without prefix sharing every beam privately stores its whole
    // path: sum over nodes of tokens * refCount (each active reference
    // through a node implies a private copy of that segment).
    long total = 0;
    for (size_t i = 1; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        if (!n.erased)
            total += static_cast<long>(n.tokens) * n.refCount;
    }
    return total;
}

void
KvCacheManager::setBudgetBytes(double budget_bytes)
{
    alloc_.resize(static_cast<size_t>(
        std::max(0.0, budget_bytes / kvBytesPerToken_ / blockTokens_)));
}

double
KvCacheManager::budgetBytes() const
{
    return static_cast<double>(alloc_.total()) * blockTokens_
        * kvBytesPerToken_;
}

size_t
KvCacheManager::blocksFor(int tokens) const
{
    return blocksForTokens(tokens, blockTokens_);
}

} // namespace fasttts
