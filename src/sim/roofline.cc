#include "sim/roofline.h"

#include <algorithm>
#include <cassert>

namespace fasttts
{

RooflineModel::RooflineModel(const DeviceSpec &device, double compute_eff,
                             double bw_eff, double step_overhead)
    : device_(device), computeEff_(compute_eff), bwEff_(bw_eff),
      stepOverhead_(step_overhead)
{
    assert(compute_eff > 0 && compute_eff <= 1.0);
    assert(bw_eff > 0 && bw_eff <= 1.0);
}

double
RooflineModel::decodeFlops(const ModelSpec &m, int batch,
                           double avg_ctx) const
{
    // 2 FLOPs per parameter per token (GEMV) plus attention score and
    // value matmuls over the context: ~4 * ctx * hidden per layer.
    const double dense = 2.0 * m.numParams * batch;
    const double attn =
        4.0 * avg_ctx * m.hiddenSize * m.numLayers * batch;
    return dense + attn;
}

double
RooflineModel::decodeBytes(const ModelSpec &m, int batch,
                           double avg_ctx) const
{
    // Weights are streamed once per step regardless of batch size; the
    // KV cache of every sequence's context is read and one token's KV
    // is appended per sequence.
    const double weights = m.weightBytes();
    const double kv_read = batch * avg_ctx * m.kvBytesPerToken();
    const double kv_write = batch * m.kvBytesPerToken();
    return weights + kv_read + kv_write;
}

double
RooflineModel::decodeStepTime(const ModelSpec &m, int batch,
                              double avg_ctx) const
{
    if (batch <= 0)
        return 0.0;
    const double t_compute = decodeFlops(m, batch, avg_ctx)
        / effectiveFlops();
    const double t_memory = decodeBytes(m, batch, avg_ctx)
        / (effectiveBandwidth() * decodeOccupancy(batch));
    return std::max(t_compute, t_memory) + stepOverhead_;
}

double
RooflineModel::prefillFlops(const ModelSpec &m, int batch,
                            double seq_len) const
{
    const double dense = 2.0 * m.numParams * batch * seq_len;
    // Causal attention: ~2 * seq^2 * hidden per layer (halved for the
    // causal mask).
    const double attn =
        2.0 * seq_len * seq_len * m.hiddenSize * m.numLayers * batch;
    return dense + attn;
}

double
RooflineModel::prefillBytes(const ModelSpec &m, int batch,
                            double seq_len) const
{
    const double weights = m.weightBytes();
    const double kv_write = batch * seq_len * m.kvBytesPerToken();
    // Activations are re-materialised via FlashAttention-style kernels;
    // their traffic is dominated by the KV write at these sizes.
    return weights + kv_write;
}

double
RooflineModel::prefillTime(const ModelSpec &m, int batch,
                           double seq_len) const
{
    if (batch <= 0 || seq_len <= 0)
        return 0.0;
    const double t_compute = prefillFlops(m, batch, seq_len)
        / effectiveFlops();
    const double t_memory = prefillBytes(m, batch, seq_len)
        / effectiveBandwidth();
    return std::max(t_compute, t_memory) + stepOverhead_;
}

double
RooflineModel::chunkedRecomputeTime(const ModelSpec &m,
                                    double tokens) const
{
    if (tokens <= 0)
        return 0.0;
    const double t_compute =
        2.0 * m.numParams * tokens / effectiveFlops();
    const double t_memory =
        tokens * m.kvBytesPerToken() / effectiveBandwidth();
    return std::max(t_compute, t_memory) + stepOverhead_;
}

double
RooflineModel::decodeComputeUtil(const ModelSpec &m, int batch,
                                 double avg_ctx) const
{
    if (batch <= 0)
        return 0.0;
    const double t = decodeStepTime(m, batch, avg_ctx);
    return decodeFlops(m, batch, avg_ctx) / (device_.peakFlops * t);
}

double
RooflineModel::prefillComputeUtil(const ModelSpec &m, int batch,
                                  double seq_len) const
{
    if (batch <= 0)
        return 0.0;
    const double t = prefillTime(m, batch, seq_len);
    return prefillFlops(m, batch, seq_len) / (device_.peakFlops * t);
}

double
RooflineModel::transferTime(double bytes) const
{
    if (bytes <= 0)
        return 0.0;
    return bytes / device_.pcieBandwidth + 1e-4;
}

} // namespace fasttts
