/**
 * @file
 * The five TTS search methods of paper Fig. 2 / Fig. 11.
 *
 * Each is a small Verification-stage (and for VG-Search a
 * Generation-stage) policy plugged into the common verifier-guided
 * loop; see search_algorithm.h.
 */

#include "search/search_algorithm.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace fasttts
{

namespace
{

/** Sort candidate indices by (score desc, beamId asc) for determinism. */
std::vector<size_t>
rankCandidates(const std::vector<BeamCandidate> &candidates)
{
    std::vector<size_t> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (candidates[a].score != candidates[b].score)
            return candidates[a].score > candidates[b].score;
        return candidates[a].beamId < candidates[b].beamId;
    });
    return order;
}

/** Spread target children evenly over the chosen survivors. */
SelectionResult
distributeEvenly(const std::vector<size_t> &survivors,
                 const std::vector<BeamCandidate> &candidates, int target)
{
    SelectionResult result;
    if (survivors.empty() || target <= 0)
        return result;
    const int k = static_cast<int>(survivors.size());
    const int base = target / k;
    const int extra = target % k;
    for (int i = 0; i < k; ++i) {
        const int children = base + (i < extra ? 1 : 0);
        if (children > 0)
            result.expansions.emplace_back(candidates[survivors[i]].index,
                                           children);
    }
    return result;
}

/**
 * Classic verifier-guided beam search: keep the global top
 * ceil(target/B) candidates, replicate each ~B times.
 */
class BeamSearch : public SearchAlgorithm
{
  public:
    BeamSearch(int n, int branch_factor, std::string name)
        : n_(n), branch_(std::max(1, branch_factor)),
          name_(std::move(name))
    {}

    std::string name() const override { return name_; }
    int beamWidth() const override { return n_; }
    int branchFactor() const override { return branch_; }

    SelectionResult
    select(const std::vector<BeamCandidate> &candidates, int target_width,
           Rng &rng) const override
    {
        (void)rng;
        if (candidates.empty() || target_width <= 0)
            return {};
        const auto order = rankCandidates(candidates);
        const int keep = std::clamp(
            (target_width + branch_ - 1) / branch_, 1,
            static_cast<int>(order.size()));
        std::vector<size_t> survivors(order.begin(), order.begin() + keep);
        return distributeEvenly(survivors, candidates, target_width);
    }

  private:
    int n_;
    int branch_;
    std::string name_;
};

/**
 * DVTS (Diverse Verifier Tree Search): the width is split into
 * independent subtrees; the best candidate of each subtree survives
 * and replicates, preserving diversity across subtrees.
 */
class Dvts : public SearchAlgorithm
{
  public:
    Dvts(int n, int branch_factor)
        : n_(n), branch_(std::max(1, branch_factor))
    {}

    std::string name() const override { return "dvts"; }
    int beamWidth() const override { return n_; }
    int branchFactor() const override { return branch_; }

    SelectionResult
    select(const std::vector<BeamCandidate> &candidates, int target_width,
           Rng &rng) const override
    {
        (void)rng;
        if (candidates.empty() || target_width <= 0)
            return {};
        // Best candidate per subtree, subtrees in stable id order.
        std::map<int, size_t> best;
        for (size_t i = 0; i < candidates.size(); ++i) {
            auto it = best.find(candidates[i].rootIndex);
            if (it == best.end()) {
                best[candidates[i].rootIndex] = i;
                continue;
            }
            const BeamCandidate &cur = candidates[it->second];
            const BeamCandidate &cand = candidates[i];
            if (cand.score > cur.score
                || (cand.score == cur.score && cand.beamId < cur.beamId)) {
                it->second = i;
            }
        }
        std::vector<size_t> survivors;
        survivors.reserve(best.size());
        for (const auto &[root, idx] : best)
            survivors.push_back(idx);
        return distributeEvenly(survivors, candidates, target_width);
    }

  private:
    int n_;
    int branch_;
};

/**
 * Dynamic branching: per-candidate child counts proportional to a
 * softmax of verifier scores (paper Fig. 11: "each beam branches
 * proportionally to its verifier score").
 */
class DynamicBranching : public SearchAlgorithm
{
  public:
    DynamicBranching(int n, int max_branch)
        : n_(n), maxBranch_(std::max(1, max_branch))
    {}

    std::string name() const override { return "dynamic_branching"; }
    int beamWidth() const override { return n_; }
    int branchFactor() const override { return maxBranch_; }

    SelectionResult
    select(const std::vector<BeamCandidate> &candidates, int target_width,
           Rng &rng) const override
    {
        (void)rng;
        if (candidates.empty() || target_width <= 0)
            return {};
        const double temp = 0.25;
        std::vector<double> weights(candidates.size());
        double total = 0;
        for (size_t i = 0; i < candidates.size(); ++i) {
            weights[i] = std::exp(candidates[i].score / temp);
            total += weights[i];
        }
        // Largest-remainder apportionment of target_width children.
        std::vector<int> alloc(candidates.size(), 0);
        std::vector<std::pair<double, size_t>> remainders;
        int assigned = 0;
        for (size_t i = 0; i < candidates.size(); ++i) {
            const double exact = target_width * weights[i] / total;
            alloc[i] = static_cast<int>(exact);
            assigned += alloc[i];
            remainders.emplace_back(exact - alloc[i], i);
        }
        std::sort(remainders.begin(), remainders.end(),
                  [&](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return candidates[a.second].beamId
                          < candidates[b.second].beamId;
                  });
        for (size_t r = 0; assigned < target_width && r < remainders.size();
             ++r, ++assigned) {
            ++alloc[remainders[r].second];
        }
        SelectionResult result;
        for (size_t i = 0; i < candidates.size(); ++i) {
            if (alloc[i] > 0)
                result.expansions.emplace_back(candidates[i].index,
                                               alloc[i]);
        }
        // Degenerate softmax (all weight on pruned rows): keep the top
        // candidate so the search always progresses.
        if (result.expansions.empty()) {
            const auto order = rankCandidates(candidates);
            result.expansions.emplace_back(candidates[order[0]].index,
                                           target_width);
        }
        return result;
    }

  private:
    int n_;
    int maxBranch_;
};

/**
 * Best-of-N: n independent chains, no intermediate pruning; the ORM
 * (here: final PRM score) picks among completed solutions.
 */
class BestOfN : public SearchAlgorithm
{
  public:
    explicit BestOfN(int n) : n_(n) {}

    std::string name() const override { return "best_of_n"; }
    int beamWidth() const override { return n_; }
    int branchFactor() const override { return 1; }

    SelectionResult
    select(const std::vector<BeamCandidate> &candidates, int target_width,
           Rng &rng) const override
    {
        (void)rng;
        (void)target_width;
        SelectionResult result;
        // Every chain continues independently with one child.
        for (const auto &c : candidates)
            result.expansions.emplace_back(c.index, 1);
        return result;
    }

  private:
    int n_;
};

/**
 * VG-Search (varying granularity): beam-search selection with a
 * step-length cap that starts fine (64 tokens for the first 3 steps)
 * and relaxes to 2048 afterwards, per the Fig. 11 configuration.
 */
class VaryingGranularity : public BeamSearch
{
  public:
    VaryingGranularity(int n, int branch_factor)
        : BeamSearch(n, branch_factor, "varying_granularity")
    {}

    int
    stepTokenCap(int step_index) const override
    {
        return step_index < 3 ? 64 : 2048;
    }
};

} // namespace

std::unique_ptr<SearchAlgorithm>
makeBestOfN(int n)
{
    return std::make_unique<BestOfN>(n);
}

std::unique_ptr<SearchAlgorithm>
makeBeamSearch(int n, int branch_factor)
{
    return std::make_unique<BeamSearch>(n, branch_factor, "beam_search");
}

std::unique_ptr<SearchAlgorithm>
makeDvts(int n, int branch_factor)
{
    return std::make_unique<Dvts>(n, branch_factor);
}

std::unique_ptr<SearchAlgorithm>
makeDynamicBranching(int n, int max_branch)
{
    return std::make_unique<DynamicBranching>(n, max_branch);
}

std::unique_ptr<SearchAlgorithm>
makeVaryingGranularity(int n, int branch_factor)
{
    return std::make_unique<VaryingGranularity>(n, branch_factor);
}

Registry<std::unique_ptr<SearchAlgorithm>, int, int> &
algorithmRegistry()
{
    static Registry<std::unique_ptr<SearchAlgorithm>, int, int>
        *registry = [] {
            auto *r =
                // fasttts-lint: allow(naked-new) leaky singleton
                new Registry<std::unique_ptr<SearchAlgorithm>, int, int>(
                    "algorithm");
            checkOk(r->add("best_of_n", [](int n, int branch) {
                (void)branch;
                return makeBestOfN(n);
            }));
            checkOk(r->add("beam_search", makeBeamSearch));
            checkOk(r->add("dvts", makeDvts));
            checkOk(r->add("dynamic_branching", makeDynamicBranching));
            checkOk(r->add("varying_granularity", makeVaryingGranularity));
            return r;
        }();
    return *registry;
}

StatusOr<std::unique_ptr<SearchAlgorithm>>
makeAlgorithm(const std::string &name, int n, int branch_factor)
{
    return algorithmRegistry().create(name, n, branch_factor);
}

} // namespace fasttts
