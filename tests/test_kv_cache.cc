/**
 * @file
 * Tests for the radix-tree KV cache manager: structure, refcounting,
 * residency, LRU eviction and the invariants the engine relies on.
 */

#include <gtest/gtest.h>

#include "kv/kv_cache.h"
#include "util/rng.h"

namespace fasttts
{
namespace
{

// 1 byte per token, 16-token blocks: a budget of B bytes is B tokens.
constexpr double kTokenByte = 1.0;

KvCacheManager
makeCache(double budget_tokens, int block_tokens = 16)
{
    return KvCacheManager(budget_tokens, kTokenByte, block_tokens);
}

TEST(KvCache, RootExistsAndIsResident)
{
    auto kv = makeCache(1024);
    EXPECT_TRUE(kv.isResident(KvCacheManager::kRoot));
    EXPECT_EQ(kv.pathTokens(KvCacheManager::kRoot), 0);
    EXPECT_EQ(kv.nodeCount(), 0);
}

TEST(KvCache, CreateChildBuildsPath)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 100);
    const int b = kv.createChild(a, 2, 50);
    EXPECT_EQ(kv.pathTokens(b), 150);
    EXPECT_EQ(kv.nodeTokens(b), 50);
    EXPECT_EQ(kv.parentOf(b), a);
    EXPECT_EQ(kv.parentOf(a), KvCacheManager::kRoot);
    EXPECT_EQ(kv.childOf(KvCacheManager::kRoot, 1), a);
    EXPECT_EQ(kv.childOf(KvCacheManager::kRoot, 99),
              KvCacheManager::kInvalid);
    EXPECT_EQ(kv.nodeCount(), 2);
}

TEST(KvCache, NewNodesStartNonResident)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 100);
    EXPECT_FALSE(kv.isResident(a));
    EXPECT_EQ(kv.residentNodeCount(), 0);
}

TEST(KvCache, EnsureResidentMaterialisesWholePath)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 100);
    const int b = kv.createChild(a, 2, 60);
    const auto touch = kv.ensureResident(b, 1);
    EXPECT_TRUE(touch.ok);
    EXPECT_EQ(touch.cachedTokens, 0);
    EXPECT_EQ(touch.recomputeTokens, 160);
    EXPECT_TRUE(kv.isResident(a));
    EXPECT_TRUE(kv.isResident(b));
    EXPECT_EQ(kv.residentTokens(), 160);
    // 100 tokens -> 7 blocks, 60 tokens -> 4 blocks.
    EXPECT_EQ(kv.allocator().used(), 11u);
}

TEST(KvCache, SecondTouchIsAHit)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 100);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    const auto touch = kv.ensureResident(a, 2);
    EXPECT_TRUE(touch.ok);
    EXPECT_EQ(touch.cachedTokens, 100);
    EXPECT_EQ(touch.recomputeTokens, 0);
    EXPECT_EQ(kv.stats().hitTokens, 100u);
}

TEST(KvCache, SharedPrefixCountedOnce)
{
    auto kv = makeCache(4096);
    const int trunk = kv.createChild(KvCacheManager::kRoot, 1, 200);
    const int left = kv.createChild(trunk, 2, 50);
    const int right = kv.createChild(trunk, 3, 50);
    ASSERT_TRUE(kv.ensureResident(left, 1).ok);
    const auto touch = kv.ensureResident(right, 2);
    // The trunk is already resident: only the right leaf misses.
    EXPECT_EQ(touch.cachedTokens, 200);
    EXPECT_EQ(touch.recomputeTokens, 50);
    EXPECT_EQ(kv.residentTokens(), 300);
}

TEST(KvCache, RefCountingAlongPath)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 10);
    const int b = kv.createChild(a, 2, 10);
    kv.retain(b);
    EXPECT_EQ(kv.refCount(b), 1);
    EXPECT_EQ(kv.refCount(a), 1);
    kv.retain(a);
    EXPECT_EQ(kv.refCount(a), 2);
    kv.release(b);
    EXPECT_EQ(kv.refCount(a), 1);
    EXPECT_EQ(kv.refCount(b), 0);
    kv.release(a);
    EXPECT_EQ(kv.refCount(a), 0);
}

TEST(KvCache, EvictionFreesUnreferencedLru)
{
    // Pool of 8 blocks = 128 tokens.
    auto kv = makeCache(128);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 64);
    const int b = kv.createChild(KvCacheManager::kRoot, 2, 64);
    const int c = kv.createChild(KvCacheManager::kRoot, 3, 64);
    EXPECT_TRUE(kv.ensureResident(a, 1).ok);
    EXPECT_TRUE(kv.ensureResident(b, 2).ok);
    // Pool is full; touching c must evict a (the LRU victim).
    EXPECT_TRUE(kv.ensureResident(c, 3).ok);
    EXPECT_FALSE(kv.isResident(a));
    EXPECT_TRUE(kv.isResident(b));
    EXPECT_TRUE(kv.isResident(c));
    EXPECT_GE(kv.stats().evictions, 1u);
    EXPECT_EQ(kv.stats().evictedTokens, 64u);
}

TEST(KvCache, PinnedNodesAreNotEvicted)
{
    auto kv = makeCache(128);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 64);
    const int b = kv.createChild(KvCacheManager::kRoot, 2, 64);
    const int c = kv.createChild(KvCacheManager::kRoot, 3, 64);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    kv.retain(a); // Pin.
    ASSERT_TRUE(kv.ensureResident(b, 2).ok);
    EXPECT_TRUE(kv.ensureResident(c, 3).ok);
    EXPECT_TRUE(kv.isResident(a));  // Pinned survived.
    EXPECT_FALSE(kv.isResident(b)); // Unpinned LRU evicted.
}

TEST(KvCache, EnsureResidentFailsWhenEverythingPinned)
{
    auto kv = makeCache(128);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 128);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    kv.retain(a);
    const int b = kv.createChild(KvCacheManager::kRoot, 2, 64);
    const auto touch = kv.ensureResident(b, 2);
    EXPECT_FALSE(touch.ok);
}

TEST(KvCache, ParentsEvictOnlyAfterChildren)
{
    auto kv = makeCache(160);
    const int trunk = kv.createChild(KvCacheManager::kRoot, 1, 80);
    const int leaf = kv.createChild(trunk, 2, 80);
    ASSERT_TRUE(kv.ensureResident(leaf, 1).ok);
    // A new competing path forces eviction; the leaf must go before
    // the trunk (top-closed residency).
    const int other = kv.createChild(KvCacheManager::kRoot, 3, 80);
    EXPECT_TRUE(kv.ensureResident(other, 2).ok);
    if (kv.isResident(leaf)) {
        EXPECT_TRUE(kv.isResident(trunk));
    }
}

TEST(KvCache, ReTouchAfterEvictionRecomputes)
{
    auto kv = makeCache(128);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 64);
    const int b = kv.createChild(KvCacheManager::kRoot, 2, 64);
    const int c = kv.createChild(KvCacheManager::kRoot, 3, 64);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    ASSERT_TRUE(kv.ensureResident(b, 2).ok);
    ASSERT_TRUE(kv.ensureResident(c, 3).ok); // Evicts a.
    const auto touch = kv.ensureResident(a, 4);
    EXPECT_TRUE(touch.ok);
    EXPECT_EQ(touch.recomputeTokens, 64);
    EXPECT_EQ(kv.stats().recomputedTokens, 64u + 192u);
}

TEST(KvCache, AppendTokensGrowsBlocks)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 0);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    EXPECT_EQ(kv.allocator().used(), 0u);
    EXPECT_TRUE(kv.appendTokens(a, 16, 2));
    EXPECT_EQ(kv.allocator().used(), 1u);
    EXPECT_TRUE(kv.appendTokens(a, 1, 3));
    EXPECT_EQ(kv.allocator().used(), 2u);
    EXPECT_EQ(kv.nodeTokens(a), 17);
    EXPECT_EQ(kv.residentTokens(), 17);
}

TEST(KvCache, AppendToNonResidentNodeTracksTokensOnly)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 0);
    EXPECT_TRUE(kv.appendTokens(a, 100, 1));
    EXPECT_EQ(kv.nodeTokens(a), 100);
    EXPECT_EQ(kv.allocator().used(), 0u);
    EXPECT_EQ(kv.residentTokens(), 0);
}

TEST(KvCache, AppendNoEvictFailsInsteadOfEvicting)
{
    auto kv = makeCache(128);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 112);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    const int b = kv.createChild(KvCacheManager::kRoot, 2, 0);
    ASSERT_TRUE(kv.ensureResident(b, 2).ok);
    // One free block: a 16-token append fits, the next does not.
    EXPECT_TRUE(kv.appendTokens(b, 16, 3, /*allow_evict=*/false));
    EXPECT_FALSE(kv.appendTokens(b, 16, 4, /*allow_evict=*/false));
    EXPECT_TRUE(kv.isResident(a)); // Nothing was evicted.
    // With eviction allowed the same append succeeds by evicting a.
    EXPECT_TRUE(kv.appendTokens(b, 16, 5, /*allow_evict=*/true));
    EXPECT_FALSE(kv.isResident(a));
}

TEST(KvCache, TruncateReleasesBlocks)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 100);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    const size_t before = kv.allocator().used();
    kv.truncateTokens(a, 10);
    EXPECT_EQ(kv.nodeTokens(a), 10);
    EXPECT_LT(kv.allocator().used(), before);
    EXPECT_EQ(kv.residentTokens(), 10);
}

TEST(KvCache, TruncateToZeroKeepsNodeValid)
{
    auto kv = makeCache(1024);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 50);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    kv.truncateTokens(a, 0);
    EXPECT_EQ(kv.nodeTokens(a), 0);
    EXPECT_EQ(kv.allocator().used(), 0u);
    EXPECT_TRUE(kv.isResident(a));
    EXPECT_TRUE(kv.appendTokens(a, 5, 2));
}

TEST(KvCache, ResidentPrefixTokens)
{
    auto kv = makeCache(128);
    const int trunk = kv.createChild(KvCacheManager::kRoot, 1, 64);
    const int leaf = kv.createChild(trunk, 2, 64);
    EXPECT_EQ(kv.residentPrefixTokens(leaf), 0);
    ASSERT_TRUE(kv.ensureResident(trunk, 1).ok);
    EXPECT_EQ(kv.residentPrefixTokens(leaf), 64);
    ASSERT_TRUE(kv.ensureResident(leaf, 2).ok);
    EXPECT_EQ(kv.residentPrefixTokens(leaf), 128);
}

TEST(KvCache, BudgetResizeAffectsCapacity)
{
    auto kv = makeCache(160);
    EXPECT_EQ(kv.allocator().total(), 10u);
    kv.setBudgetBytes(320);
    EXPECT_EQ(kv.allocator().total(), 20u);
    EXPECT_NEAR(kv.budgetBytes(), 320, 1e-9);
}

TEST(KvCache, BlocksForRounding)
{
    auto kv = makeCache(1024, 16);
    EXPECT_EQ(kv.blocksFor(0), 0u);
    EXPECT_EQ(kv.blocksFor(1), 1u);
    EXPECT_EQ(kv.blocksFor(16), 1u);
    EXPECT_EQ(kv.blocksFor(17), 2u);
}

TEST(KvCache, UnsharedTokensCountsPerReference)
{
    auto kv = makeCache(4096);
    const int trunk = kv.createChild(KvCacheManager::kRoot, 1, 100);
    const int l1 = kv.createChild(trunk, 2, 10);
    const int l2 = kv.createChild(trunk, 3, 10);
    kv.retain(l1);
    kv.retain(l2);
    // Without sharing both beams would hold a private copy of the
    // trunk: 2 x 100 + 10 + 10.
    EXPECT_EQ(kv.unsharedTokens(), 220);
    kv.release(l2);
    EXPECT_EQ(kv.unsharedTokens(), 110);
}

TEST(KvCache, ReTouchedVictimKeepsLruOrderViaLazyRefresh)
{
    // Pool of 8 blocks = 128 tokens. a and b become eviction
    // candidates; re-touching a makes its queued heap entry stale. The
    // heap must still evict b (the true LRU), count the stale entry,
    // and keep exactly one entry per node.
    auto kv = makeCache(128);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 64);
    const int b = kv.createChild(KvCacheManager::kRoot, 2, 64);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    ASSERT_TRUE(kv.ensureResident(b, 2).ok);
    ASSERT_TRUE(kv.ensureResident(a, 3).ok); // Hit: refreshes a's lastUse past b's.
    const int c = kv.createChild(KvCacheManager::kRoot, 3, 64);
    EXPECT_TRUE(kv.ensureResident(c, 4).ok);
    EXPECT_TRUE(kv.isResident(a));
    EXPECT_FALSE(kv.isResident(b));
    EXPECT_GE(kv.stats().staleVictimEntries, 1u);
}

TEST(KvCache, StatsAccumulate)
{
    auto kv = makeCache(4096);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 32);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    ASSERT_TRUE(kv.ensureResident(a, 2).ok);
    EXPECT_EQ(kv.stats().missTokens, 32u);
    EXPECT_EQ(kv.stats().hitTokens, 32u);
}

// --- Prefix-cache mounts (setRootTokens) ---

TEST(KvCache, SetRootTokensMountsASharedPrefixWithoutBlocks)
{
    auto kv = makeCache(1024);
    kv.setRootTokens(96);
    // The mount lengthens every path but costs this manager nothing:
    // the bytes live in (and are charged by) the global PrefixIndex.
    EXPECT_EQ(kv.pathTokens(KvCacheManager::kRoot), 96);
    EXPECT_EQ(kv.residentTokens(), 0);
    EXPECT_EQ(kv.allocator().used(), 0u);

    const int a = kv.createChild(KvCacheManager::kRoot, 1, 50);
    EXPECT_EQ(kv.pathTokens(a), 146);
    const auto touch = kv.ensureResident(a, 1);
    EXPECT_TRUE(touch.ok);
    // Only the suffix is recomputed; the mounted prefix is neither a
    // recompute nor a per-touch hit (the serving layer accounts it
    // once as prefixHitTokens).
    EXPECT_EQ(touch.recomputeTokens, 50);
    EXPECT_EQ(touch.cachedTokens, 0);
    EXPECT_EQ(kv.residentTokens(), 50);
    EXPECT_EQ(kv.allocator().used(), kv.blocksFor(50));
}

TEST(KvCache, ForceEvictAllNeverDropsTheMountedRoot)
{
    auto kv = makeCache(1024);
    kv.setRootTokens(64);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 32);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);
    EXPECT_EQ(kv.forceEvictAll(), 32);
    EXPECT_TRUE(kv.isResident(KvCacheManager::kRoot));
    EXPECT_FALSE(kv.isResident(a));
    // The mount survives preemption: path lengths are unchanged and a
    // re-touch recomputes only the suffix.
    EXPECT_EQ(kv.pathTokens(a), 96);
    const auto touch = kv.ensureResident(a, 2);
    EXPECT_TRUE(touch.ok);
    EXPECT_EQ(touch.recomputeTokens, 32);
}

TEST(KvCache, MountedRootTokensCountTowardTheUnsharedCounterfactual)
{
    // unsharedTokens() is the footprint *without* prefix sharing:
    // each retained beam would privately re-store the whole path,
    // mounted prefix included — that gap is exactly the sharing win
    // fig05 reports. The root's permanent constructor-time reference
    // still contributes nothing on its own.
    auto kv = makeCache(1024);
    kv.setRootTokens(100);
    EXPECT_EQ(kv.unsharedTokens(), 0);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 10);
    kv.retain(a);
    EXPECT_EQ(kv.unsharedTokens(), 110);
    const int b = kv.createChild(KvCacheManager::kRoot, 2, 10);
    kv.retain(b);
    EXPECT_EQ(kv.unsharedTokens(), 220);
    kv.release(a);
    kv.release(b);
    EXPECT_EQ(kv.unsharedTokens(), 0);
}

// --- Reference implementations: fresh walks over the public API, used
// to validate the cached/counter-backed accounting. ---

int
freshPathTokens(const KvCacheManager &kv, int node)
{
    int total = 0;
    for (int id = node; id != KvCacheManager::kInvalid;
         id = kv.parentOf(id))
        total += kv.nodeTokens(id);
    return total;
}

int
freshResidentPrefixTokens(const KvCacheManager &kv, int node)
{
    int non_resident = 0;
    int id = node;
    while (id != KvCacheManager::kInvalid && !kv.isResident(id)) {
        non_resident += kv.nodeTokens(id);
        id = kv.parentOf(id);
    }
    return freshPathTokens(kv, node) - non_resident;
}

long
freshUnsharedTokens(const KvCacheManager &kv,
                    const std::vector<int> &nodes)
{
    long total = 0;
    for (int id : nodes) {
        if (id != KvCacheManager::kRoot)
            total += static_cast<long>(kv.nodeTokens(id))
                * kv.refCount(id);
    }
    return total;
}

/**
 * Cached path-token invariants: after randomized createChild / append /
 * truncate / evict / re-resident / retain / release sequences
 * (including appends and truncations on interior nodes, which must
 * propagate to every descendant's cached prefix), the O(1) accessors
 * must agree with a fresh walk of the public API. The small budget
 * keeps eviction and re-materialisation cycles frequent.
 */
class KvCachePathCacheProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(KvCachePathCacheProperty, CachedAccountingMatchesFreshWalk)
{
    Rng rng(0x9e3779b9ull
            + static_cast<uint64_t>(GetParam()) * 0x85ebca6bull);
    auto kv = makeCache(1024, 16);
    std::vector<int> nodes = {KvCacheManager::kRoot};
    std::vector<int> pinned;
    uint64_t seg = 1000;
    int created = 0;

    for (int op = 0; op < 800; ++op) {
        const int kind = rng.uniformInt(0, 6);
        const int node = nodes[static_cast<size_t>(
            rng.uniformInt(0, static_cast<int>(nodes.size()) - 1))];
        switch (kind) {
          case 0:
          case 1: // Bias toward growth so trees get deep and bushy.
            nodes.push_back(
                kv.createChild(node, seg++, rng.uniformInt(0, 70)));
            ++created;
            break;
          case 2:
            (void)kv.ensureResident(node, static_cast<uint64_t>(op));
            break;
          case 3:
            if (node != KvCacheManager::kRoot) {
                kv.retain(node);
                pinned.push_back(node);
            }
            break;
          case 4:
            if (!pinned.empty()) {
                const size_t pick = static_cast<size_t>(rng.uniformInt(
                    0, static_cast<int>(pinned.size()) - 1));
                kv.release(pinned[pick]);
                pinned.erase(pinned.begin()
                             + static_cast<long>(pick));
            }
            break;
          case 5: // Interior-node appends must shift descendants.
            if (node != KvCacheManager::kRoot)
                (void)kv.appendTokens(node, rng.uniformInt(0, 50),
                                      static_cast<uint64_t>(op));
            break;
          case 6:
            if (node != KvCacheManager::kRoot)
                kv.truncateTokens(node,
                                  rng.uniformInt(0, kv.nodeTokens(node)));
            break;
        }

        // Spot-check one random node every op; full sweep periodically.
        const int probe = nodes[static_cast<size_t>(
            rng.uniformInt(0, static_cast<int>(nodes.size()) - 1))];
        ASSERT_EQ(kv.pathTokens(probe), freshPathTokens(kv, probe));
        ASSERT_EQ(kv.residentPrefixTokens(probe),
                  freshResidentPrefixTokens(kv, probe));
        if (op % 50 == 0) {
            for (int id : nodes) {
                ASSERT_EQ(kv.pathTokens(id), freshPathTokens(kv, id))
                    << "node " << id << " after op " << op;
                ASSERT_EQ(kv.residentPrefixTokens(id),
                          freshResidentPrefixTokens(kv, id));
            }
            ASSERT_EQ(kv.nodeCount(), created);
            ASSERT_EQ(kv.unsharedTokens(),
                      freshUnsharedTokens(kv, nodes));
        }
    }
    for (int id : nodes) {
        ASSERT_EQ(kv.pathTokens(id), freshPathTokens(kv, id));
        ASSERT_EQ(kv.residentPrefixTokens(id),
                  freshResidentPrefixTokens(kv, id));
    }
    ASSERT_EQ(kv.nodeCount(), created);
    ASSERT_EQ(kv.unsharedTokens(), freshUnsharedTokens(kv, nodes));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvCachePathCacheProperty,
                         ::testing::Range(1, 9));

/** Property sweep: under random workloads, block accounting and the
 *  resident-token counter never diverge, and residency stays
 *  top-closed. */
class KvCacheProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(KvCacheProperty, InvariantsUnderRandomWorkload)
{
    const int seed = GetParam();
    Rng rng(static_cast<uint64_t>(seed));
    auto kv = makeCache(2048, 16);
    std::vector<int> leaves = {KvCacheManager::kRoot};
    std::vector<int> pinned;
    uint64_t seg = 100;
    long expected_resident = -1;

    for (int op = 0; op < 600; ++op) {
        const int kind = rng.uniformInt(0, 5);
        const int pick = rng.uniformInt(
            0, static_cast<int>(leaves.size()) - 1);
        const int node = leaves[static_cast<size_t>(pick)];
        switch (kind) {
          case 0:
            leaves.push_back(
                kv.createChild(node, seg++, rng.uniformInt(0, 90)));
            break;
          case 1:
            (void)kv.ensureResident(node, static_cast<uint64_t>(op));
            break;
          case 2:
            if (node != KvCacheManager::kRoot) {
                kv.retain(node);
                pinned.push_back(node);
            }
            break;
          case 3:
            if (!pinned.empty()) {
                kv.release(pinned.back());
                pinned.pop_back();
            }
            break;
          case 4:
            if (node != KvCacheManager::kRoot)
                (void)kv.appendTokens(node, rng.uniformInt(0, 40),
                                      static_cast<uint64_t>(op));
            break;
          case 5:
            if (node != KvCacheManager::kRoot && kv.isResident(node)) {
                const int keep =
                    rng.uniformInt(0, kv.nodeTokens(node));
                kv.truncateTokens(node, keep);
            }
            break;
        }
        // Invariant: used blocks never exceed the pool.
        ASSERT_LE(kv.allocator().used(), kv.allocator().total());
        // Invariant: resident tokens fit in the allocated blocks.
        ASSERT_LE(kv.residentTokens(),
                  static_cast<long>(kv.allocator().used()) * 16);
        // Invariant: residency is top-closed (resident node implies
        // resident parent).
        for (int leaf : leaves) {
            if (leaf == KvCacheManager::kRoot)
                continue;
            if (kv.isResident(leaf)) {
                const int parent = kv.parentOf(leaf);
                ASSERT_TRUE(parent == KvCacheManager::kRoot
                            || kv.isResident(parent));
            }
        }
        (void)expected_resident;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvCacheProperty,
                         ::testing::Range(1, 13));

/**
 * Victim-heap maintenance property: interleaving explicit
 * compactVictims() calls into a randomized create / evict /
 * re-resident / pin churn must never change what the cache does —
 * compaction is pure maintenance (drop stale entries, rebuild the
 * heap), so a compacted twin and an untouched twin running the
 * identical op stream stay observably identical, while the tight
 * budget keeps evictions (and therefore stale heap entries and the
 * reclaim()-side defensive rebuild) frequent.
 */
class KvCacheCompactionProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(KvCacheCompactionProperty, CompactVictimsIsObservablyInert)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    auto plain = makeCache(512, 16);
    auto compacted = makeCache(512, 16);
    Rng rng_a(seed);
    Rng rng_b(seed);
    std::vector<int> nodes_a = {KvCacheManager::kRoot};
    std::vector<int> nodes_b = {KvCacheManager::kRoot};
    std::vector<int> pinned_a;
    std::vector<int> pinned_b;
    uint64_t seg_a = 1;
    uint64_t seg_b = 1;

    auto step = [](KvCacheManager &kv, std::vector<int> &nodes,
                   std::vector<int> &pinned, Rng &rng, uint64_t &seg,
                   uint64_t tick) -> bool {
        const int op = rng.uniformInt(0, 5);
        const int node = nodes[static_cast<size_t>(
            rng.uniformInt(0, static_cast<int>(nodes.size()) - 1))];
        switch (op) {
        case 0: // Grow: new segments compete for the small pool.
            nodes.push_back(
                kv.createChild(node, seg++, rng.uniformInt(1, 60)));
            return true;
        case 1: // Re-resident: the evict/re-touch cycle under test.
        case 2:
            return kv.ensureResident(node, tick).ok;
        case 3: // Pin: turns queued victim entries stale.
            if (node != KvCacheManager::kRoot) {
                kv.retain(node);
                pinned.push_back(node);
            }
            return true;
        case 4: // Unpin: the node becomes evictable again.
            if (!pinned.empty()) {
                const size_t at = static_cast<size_t>(rng.uniformInt(
                    0, static_cast<int>(pinned.size()) - 1));
                kv.release(pinned[at]);
                pinned.erase(pinned.begin() + static_cast<long>(at));
            }
            return true;
        default: // Touch refresh: stales the old heap entry's key.
            return kv.ensureResident(node, tick).ok;
        }
    };

    for (int op = 0; op < 400; ++op) {
        const uint64_t tick = static_cast<uint64_t>(op) + 1;
        const bool ok_a =
            step(plain, nodes_a, pinned_a, rng_a, seg_a, tick);
        const bool ok_b =
            step(compacted, nodes_b, pinned_b, rng_b, seg_b, tick);
        // Only one twin gets maintenance calls.
        if (op % 23 == 22)
            compacted.compactVictims();

        ASSERT_EQ(ok_a, ok_b) << "op " << op;
        ASSERT_EQ(nodes_a.size(), nodes_b.size());
        ASSERT_EQ(plain.allocator().used(), compacted.allocator().used())
            << "op " << op;
        ASSERT_EQ(plain.residentTokens(), compacted.residentTokens());
        ASSERT_EQ(plain.residentNodeCount(),
                  compacted.residentNodeCount());
        for (size_t i = 0; i < nodes_a.size(); ++i)
            ASSERT_EQ(plain.isResident(nodes_a[i]),
                      compacted.isResident(nodes_b[i]))
                << "node " << i << " after op " << op;
    }

    // LRU outcomes matched step-for-step above; the maintenance
    // counters must show the machinery actually ran: the churn stales
    // entries on both twins, and the explicit calls are counted (on
    // top of any defensive rebuilds reclaim() triggered on its own).
    EXPECT_GT(plain.stats().evictions, 0u);
    EXPECT_GT(plain.stats().staleVictimEntries, 0u);
    EXPECT_GT(compacted.stats().staleVictimEntries, 0u);
    EXPECT_GE(compacted.stats().victimCompactions, 400u / 23u);

    // And compaction right before teardown is still inert.
    compacted.compactVictims();
    EXPECT_EQ(plain.allocator().used(), compacted.allocator().used());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvCacheCompactionProperty,
                         ::testing::Range(1, 9));

} // namespace
} // namespace fasttts
