#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace fasttts
{

/** One speculative child branch being extended (Sec. 4.1). */
struct FastTtsEngine::SpecBranch
{
    int childIdx = 0;    //!< Which child slot this branch speculates.
    int node = -1;       //!< Generator KV node holding its tokens.
    uint64_t segId = 0;  //!< Segment id of that node.
    int verNode = -1;    //!< Verifier KV node (LookAhead only).
    int decoded = 0;     //!< Tokens generated so far.
    int target = 0;      //!< Full step length (from the child's draw).
    bool complete = false;
    bool scored = false; //!< LookAhead-verified.
    double score = 0;    //!< Verifier score when scored.
    bool retained = false; //!< Holds a KV retention on `node`.
    StepDraw draw;       //!< The child step's content.
};

/** Engine-internal beam state. */
struct FastTtsEngine::ActiveBeam
{
    uint64_t id = 0;
    uint64_t seed = 0;     //!< Lineage stream seed.
    int rootIndex = 0;
    int steps = 0;         //!< Completed verified steps.
    double quality = 0;    //!< After last verified step.
    double score = 0.5;    //!< Last verified step's PRM score.
    double prevScore = 0.5;
    long totalTokens = 0;  //!< Verified tokens in the whole path.
    int prevPos = 0;       //!< Schedule position carry-over.
    double spawnTime = 0;

    int leaf = -1;     //!< Generator KV node of last verified segment.
    int verLeaf = -1;  //!< Verifier KV node of last verified segment.

    // --- Current-step state ---
    bool stepPrepared = false;
    StepDraw draw;
    int targetTokens = 0;
    int decoded = 0;
    int curSeg = -1;       //!< Generator KV node of the in-flight step.
    uint64_t curSegId = 0; //!< Segment id (mirrored in verifier tree).
    int headStart = 0;     //!< Tokens inherited from kept speculation.
    bool pinned = false;   //!< Holds a retention on curSeg.
    bool inDecode = false;
    bool finishedGen = false;
    bool forceKilled = false;

    // --- LookAhead-verified step (child adopted a scored branch) ---
    bool pendingStepDone = false;
    double pendingScore = 0;
    int pendingVerSeg = -1;

    // --- Verification scratch ---
    double newScore = 0;
    int newVerSeg = -1;

    // --- Speculation ---
    std::vector<SpecBranch> branches;
    int branchesStarted = 0;
};

namespace
{

/** Expected step length of a log-normal profile, for planning. */
double
expectedStepTokens(const DatasetProfile &p)
{
    const double mean =
        std::exp(p.stepLenMu + 0.5 * p.stepLenSigma * p.stepLenSigma);
    return std::clamp(mean, static_cast<double>(p.minStepTokens),
                      static_cast<double>(p.maxStepTokens));
}

} // namespace

FastTtsEngine::FastTtsEngine(const FastTtsConfig &config,
                             const ModelConfig &models,
                             const DeviceSpec &device,
                             const DatasetProfile &dataset,
                             const SearchAlgorithm &algorithm)
    : config_(config), models_(models), device_(device), dataset_(dataset),
      algorithm_(algorithm), roofline_(device),
      generator_(models.generator, dataset),
      verifier_(models.verifier),
      specPolicy_(algorithm.branchFactor(), config.truncationRatio)
{
    if (config_.asymmetricAllocation) {
        planner_ = config_.offloadEnabled
            ? makeOffloadPlanner(models_.generator, models_.verifier,
                                 roofline_)
            : makeRooflinePlanner(models_.generator, models_.verifier,
                                  roofline_);
    } else {
        planner_ = makeStaticPlanner(models_.generator, models_.verifier,
                                     roofline_);
    }
    scheduler_ = config_.prefixAwareScheduling
        ? makePrefixAwareScheduler()
        : makeScheduler(config_.baselineScheduler);
    // The dataset profile is fixed for the engine's lifetime; the
    // admission loop asks for this every queue pop, so pay the exp()
    // once.
    expectedStepTokens_ = expectedStepTokens(dataset_);

    const double usable = device_.usableBytes() * models_.memoryFraction;
    const double weights = models_.generator.weightBytes()
        + models_.verifier.weightBytes();
    kvBudget_ = std::max(64.0 * MiB,
                         usable - weights - config_.reservedBytes);
}

FastTtsEngine::~FastTtsEngine() = default;

void
FastTtsEngine::resetRequestState(const Problem &problem)
{
    problem_ = problem;
    clock_ = SimClock();
    clock_.setTraceEnabled(config_.recordTrace);
    systemRng_ = Rng(config_.systemSeed ^ problem.seed);
    active_.clear();
    completed_.clear();
    iterStats_.clear();
    queue_.clear();
    decodeSet_.clear();
    specRunning_.clear();
    stepTokens_.assign(static_cast<size_t>(dataset_.maxSteps) + 1, {});
    nextBeamId_ = 1;
    nextSegId_ = 1;
    iteration_ = 0;
    forcedTerminations_ = 0;
    generatedTokens_ = 0;
    speculativeTokens_ = 0;
    wastedSpecTokens_ = 0;
    meanVerifierSeq_ = 0;
    meanVerifierPath_ = 0;

    // Fresh KV managers; the plan resizes their budgets each iteration.
    kvGen_ = std::make_unique<KvCacheManager>(
        kvBudget_ * 0.5, models_.generator.kvBytesPerToken(),
        config_.blockTokens);
    kvVer_ = std::make_unique<KvCacheManager>(
        kvBudget_ * 0.5, models_.verifier.kvBytesPerToken(),
        config_.blockTokens);

    // Shared question prompt: prefilled once by the generator; the
    // verifier materialises it lazily at first verification.
    promptNodeGen_ = kvGen_->createChild(KvCacheManager::kRoot,
                                         nextSegId_, problem.promptTokens);
    promptNodeVer_ = kvVer_->createChild(KvCacheManager::kRoot,
                                         nextSegId_, problem.promptTokens);
    ++nextSegId_;
    kvGen_->retain(promptNodeGen_);
    kvVer_->retain(promptNodeVer_);
    kvGen_->ensureResident(promptNodeGen_, 0);
    clock_.advance(
        roofline_.prefillTime(models_.generator, 1, problem.promptTokens),
        Phase::Recompute,
        roofline_.prefillComputeUtil(models_.generator, 1,
                                     problem.promptTokens),
        1, 1);

    const int n = algorithm_.beamWidth();
    const int branch = std::max(1, algorithm_.branchFactor());
    active_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto beam = std::make_unique<ActiveBeam>();
        beam->id = nextBeamId_++;
        beam->seed = rootLineageSeed(problem, i);
        beam->rootIndex = i / branch;
        beam->quality = rootQuality(generator_, problem, i);
        beam->leaf = promptNodeGen_;
        beam->verLeaf = promptNodeVer_;
        beam->prevPos = i;
        beam->spawnTime = clock_.now();
        active_.push_back(std::move(beam));
    }
}

void
FastTtsEngine::replan()
{
    WorkloadShape shape;
    // Plan for the full search width n, not the momentarily active
    // count: the speculative phase keeps the execution batch full
    // (Sec. 4.1.2), so capacity must not shrink as paths complete.
    shape.numRequests = algorithm_.beamWidth();
    const int cap = algorithm_.stepTokenCap(iteration_);
    shape.decodeLen =
        std::min(expectedStepTokens_, static_cast<double>(cap));
    // The verifier's KV working set is the *full* reasoning path (a
    // discriminative PRM scores the whole path), not the incremental
    // request; plan memory for it.
    shape.verifierSeqLen = meanVerifierPath_ > 0
        ? meanVerifierPath_
        : problem_.promptTokens + (iteration_ + 1) * shape.decodeLen;
    shape.verifierReqLen =
        meanVerifierSeq_ > 0 ? meanVerifierSeq_ : shape.decodeLen;
    double ctx_total = 0;
    for (const auto &b : active_)
        ctx_total += kvGen_->pathTokens(b->leaf);
    shape.avgCacheLen = shape.decodeLen / 2
        + (active_.empty() ? problem_.promptTokens
                           : ctx_total / static_cast<double>(
                                 active_.size()));
    plan_ = planner_->plan(shape, kvBudget_);
    kvGen_->setBudgetBytes(plan_.generatorKvBytes);
    kvVer_->setBudgetBytes(plan_.verifierKvBytes);

    // Speculation pays only when memory is not the bottleneck
    // (Sec. 6.5.1): with the working set oversubscribed, speculative
    // KV would displace cache the standard beams still need.
    const double pool_tokens =
        plan_.generatorKvBytes / models_.generator.kvBytesPerToken();
    const double working_set =
        shape.numRequests * (shape.avgCacheLen + shape.decodeLen / 2);
    specAllowed_ = working_set <= 0.8 * pool_tokens;

    // LookAhead Verification pays when the verifier cache cannot hold
    // the beams' paths between iterations (pre-verifying avoids the
    // full-path re-prefill, Sec. 4.1.3); when the cache comfortably
    // retains prefixes, pre-verifying soon-pruned beams is pure waste.
    const double ver_pool_tokens =
        plan_.verifierKvBytes / models_.verifier.kvBytesPerToken();
    const double ver_working_set =
        shape.numRequests * shape.verifierSeqLen;
    lookaheadAllowed_ = ver_working_set > ver_pool_tokens;
}

double
FastTtsEngine::currentAvgContext() const
{
    // Path tokens are cached per node (O(1)) and the running branch
    // set is maintained incrementally, so this is O(batch members)
    // instead of O(beams x branches x depth). The accumulator stays
    // integral, so the mean is bit-identical to the full rescan.
    long total = 0;
    int count = 0;
    for (size_t idx : decodeSet_) {
        const ActiveBeam &b = *active_[idx];
        total += kvGen_->pathTokens(b.curSeg);
        ++count;
    }
    for (const auto &[beam_idx, branch_idx] : specRunning_) {
        const SpecBranch &br = active_[beam_idx]->branches[branch_idx];
        if (br.node >= 0 && !br.complete && br.retained) {
            total += kvGen_->pathTokens(br.node);
            ++count;
        }
    }
    if (count == 0)
        return problem_.promptTokens;
    return static_cast<double>(total) / count;
}

void
FastTtsEngine::chargeRecompute(int tokens)
{
    if (tokens <= 0)
        return;
    // Re-prefill of evicted prefixes piggybacks on the running decode
    // batch (chunked prefill): marginal compute + KV writes only.
    clock_.advance(
        roofline_.chunkedRecomputeTime(models_.generator, tokens),
        Phase::Recompute, 0.6, 1, 1);
}

bool
FastTtsEngine::admitBeam(size_t idx)
{
    ActiveBeam &b = *active_[idx];
    if (!b.stepPrepared) {
        b.draw = drawStep(generator_, problem_, b.seed, b.steps, b.quality,
                          algorithm_.stepTokenCap(b.steps));
        b.targetTokens = b.draw.tokens;
        b.decoded = 0;
        b.stepPrepared = true;
    }
    if (b.curSeg < 0) {
        b.curSegId = nextSegId_++;
        b.curSeg = kvGen_->createChild(b.leaf, b.curSegId, 0);
    }
    auto touch = kvGen_->ensureResident(
        b.curSeg, static_cast<uint64_t>(clock_.now() * 1e6));
    if (!touch.ok)
        return false;
    chargeRecompute(touch.recomputeTokens);
    kvGen_->retain(b.curSeg);
    b.pinned = true;
    if (b.pendingStepDone || b.decoded >= b.targetTokens) {
        // Step already materialised (kept speculation); nothing to
        // decode — straight to the finished set.
        b.finishedGen = true;
        b.pinned = false;
        kvGen_->release(b.curSeg);
        stepTokens_[static_cast<size_t>(
                        std::min(b.steps, dataset_.maxSteps))]
            .push_back(b.targetTokens);
    } else {
        b.inDecode = true;
        decodeSet_.push_back(idx);
    }
    return true;
}

void
FastTtsEngine::finishStandardBeam(size_t idx)
{
    ActiveBeam &b = *active_[idx];
    b.inDecode = false;
    b.finishedGen = true;
    if (b.pinned) {
        kvGen_->release(b.curSeg);
        b.pinned = false;
    }
    stepTokens_[static_cast<size_t>(std::min(b.steps, dataset_.maxSteps))]
        .push_back(b.targetTokens);
}

void
FastTtsEngine::releaseBranch(SpecBranch &branch)
{
    if (branch.retained && branch.node >= 0) {
        kvGen_->release(branch.node);
        branch.retained = false;
    }
    wastedSpecTokens_ += branch.decoded;
    branch.decoded = 0;
    branch.complete = false;
    branch.node = -1;
}

void
FastTtsEngine::killAllSpeculation()
{
    // Branches are only *marked* dead (node = -1); the vector is never
    // resized here because the event loop may hold pointers into it.
    // Only the tracked running set needs visiting: completed branches
    // stay alive for selection, dead ones are already node = -1.
    for (const auto &[beam_idx, branch_idx] : specRunning_) {
        SpecBranch &br = active_[beam_idx]->branches[branch_idx];
        if (br.node >= 0 && !br.complete)
            releaseBranch(br);
    }
    specRunning_.clear();
}

void
FastTtsEngine::fillSpeculativeSlots()
{
    const int capacity = std::max(1, plan_.decodeBatch);
    const int running = static_cast<int>(specRunning_.size());
    int free_slots =
        capacity - static_cast<int>(decodeSet_.size()) - running;
    if (free_slots <= 0)
        return;

    // Memory-headroom gate: speculation must never evict cache the
    // standard beams still need. Only speculate when the generator
    // pool has slack for a typical child step.
    const size_t slack_blocks = kvGen_->blocksFor(
        static_cast<int>(expectedStepTokens_) * 4);
    if (kvGen_->allocator().free() < slack_blocks)
        return;

    // Score bins over the active beams' previous-step scores: one
    // O(n) edge scan, then every potential query is O(1). The event
    // loop calls this every wave, so the per-beam potentials are
    // computed exactly once per call instead of per comparison.
    std::vector<double> scores;
    scores.reserve(active_.size());
    for (const auto &b : active_)
        scores.push_back(b->score);
    const SpeculativePolicy::ScoreBins bins =
        specPolicy_.scoreBins(scores);
    std::vector<int> potentials(active_.size(), 0);
    for (size_t i = 0; i < active_.size(); ++i) {
        potentials[i] = specPolicy_.binnedPotential(
            active_[i]->score, bins);
    }

    // Candidates: finished, non-terminal beams with branch capacity
    // left, highest speculative potential first.
    std::vector<size_t> candidates;
    for (size_t i = 0; i < active_.size(); ++i) {
        const ActiveBeam &b = *active_[i];
        if (!b.finishedGen || b.forceKilled || b.draw.terminal)
            continue;
        if (b.steps + 1 >= dataset_.maxSteps)
            continue;
        // Speculating from an evicted path would force a recompute
        // prefill — never worth it for speculative work.
        if (b.curSeg < 0
            || kvGen_->residentPrefixTokens(b.curSeg)
                != kvGen_->pathTokens(b.curSeg)) {
            continue;
        }
        if (b.branchesStarted >= potentials[i])
            continue;
        candidates.push_back(i);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](size_t a, size_t c) {
                  if (potentials[a] != potentials[c])
                      return potentials[a] > potentials[c];
                  if (active_[a]->score != active_[c]->score)
                      return active_[a]->score > active_[c]->score;
                  return active_[a]->id < active_[c]->id;
              });

    for (size_t i = 0; i < candidates.size() && free_slots > 0;) {
        ActiveBeam &b = *active_[candidates[i]];
        const int potential = potentials[candidates[i]];
        if (b.branchesStarted >= potential) {
            ++i;
            continue;
        }
        const int j = b.branchesStarted;
        SpecBranch br;
        br.childIdx = j;
        const uint64_t child_seed =
            childLineageSeed(b.seed, b.steps + 1, j);
        br.draw = drawStep(generator_, problem_, child_seed, b.steps + 1,
                           b.draw.quality,
                           algorithm_.stepTokenCap(b.steps + 1));
        br.target = br.draw.tokens;
        br.segId = nextSegId_++;
        br.node = kvGen_->createChild(b.curSeg, br.segId, 0);
        auto touch = kvGen_->ensureResident(
            br.node, static_cast<uint64_t>(clock_.now() * 1e6));
        if (!touch.ok)
            break; // Memory too tight to speculate at all.
        chargeRecompute(touch.recomputeTokens);
        kvGen_->retain(br.node);
        br.retained = true;
        b.branches.push_back(br);
        specRunning_.emplace_back(candidates[i], b.branches.size() - 1);
        ++b.branchesStarted;
        --free_slots;
    }
    // Keep the running set in (beam, branch) order: the event loop
    // applies tokens in this order, and allocation-failure behaviour
    // under memory pressure must match the original full rescan.
    std::sort(specRunning_.begin(), specRunning_.end());
}

void
FastTtsEngine::runGenerationPhase()
{
    if (plan_.offloadActive && plan_.offloadOverhead > 0)
        clock_.advance(plan_.offloadOverhead * 0.5, Phase::Transfer);

    // --- Scheduling (Sec. 4.2) ---
    std::vector<SchedEntry> entries;
    for (size_t i = 0; i < active_.size(); ++i) {
        const ActiveBeam &b = *active_[i];
        SchedEntry e;
        e.index = i;
        e.beamId = b.id;
        e.parentBeam = b.prevPos >= 0 ? static_cast<uint64_t>(b.prevPos)
                                      : b.id;
        e.leaf = b.leaf;
        e.pathTokens = kvGen_->pathTokens(b.leaf);
        e.prevPosition = b.prevPos;
        entries.push_back(e);
    }
    scheduler_->order(entries, *kvGen_, systemRng_);
    queue_.clear();
    for (size_t pos = 0; pos < entries.size(); ++pos) {
        active_[entries[pos].index]->prevPos = static_cast<int>(pos);
        queue_.push_back(entries[pos].index);
    }
    decodeSet_.clear();
    // Selection released every branch of the previous iteration; start
    // the running-set bookkeeping from a clean slate regardless.
    specRunning_.clear();

    const int capacity = std::max(1, plan_.decodeBatch);
    // Pinned working-set estimate (tokens) for admission control.
    double pinned_tokens = 0;
    const double budget_tokens =
        static_cast<double>(kvGen_->allocator().total())
        * config_.blockTokens;

    size_t q_head = 0;
    bool spec_disabled = false;
    int safety = 0;
    const int safety_cap = static_cast<int>(active_.size()) * 4096 + 4096;

    while (true) {
        if (++safety > safety_cap)
            break; // Defensive: never hang a simulation.

        // --- Phase 1: Continuous Beam Batching admission ---
        while (static_cast<int>(decodeSet_.size()) < capacity
               && q_head < queue_.size()) {
            const size_t idx = queue_[q_head];
            ActiveBeam &b = *active_[idx];
            if (b.forceKilled) {
                ++q_head;
                continue;
            }
            // Admission control. With Asymmetric Allocation (M) the
            // planner-informed watermark reserves room for the whole
            // step, preventing mid-decode preemption. The naive
            // baseline admits on *current* free memory only — vLLM's
            // behaviour — and pays preemption/recompute churn when
            // running beams outgrow the pool (Sec. 6.5.1).
            const int remaining = b.stepPrepared
                ? b.targetTokens - b.decoded
                : std::min(static_cast<int>(expectedStepTokens_),
                           algorithm_.stepTokenCap(b.steps));
            const double need = kvGen_->pathTokens(b.leaf) + b.decoded
                + remaining;
            if (config_.asymmetricAllocation
                && pinned_tokens + need > budget_tokens * 0.95
                && !decodeSet_.empty()) {
                break; // Wait for running beams to finish.
            }
            // Baseline (M off): admit whenever blocks can be found now
            // — evictable cache counts as allocatable, exactly vLLM's
            // policy — and eat mid-decode preemptions later.
            if (!admitBeam(idx)) {
                // Could not materialise the path.
                killAllSpeculation();
                spec_disabled = true;
                if (!admitBeam(idx)) {
                    if (decodeSet_.empty()) {
                        // Alone it still does not fit: the beam can
                        // never run under this budget.
                        b.forceKilled = true;
                        b.finishedGen = true;
                        ++forcedTerminations_;
                        ++q_head;
                    }
                    break;
                }
            }
            if (b.inDecode)
                pinned_tokens += need;
            ++q_head;
        }

        // --- Phase 2: speculative extension (preemptible) ---
        if (config_.speculativeExtension && specAllowed_
            && !spec_disabled && q_head >= queue_.size()) {
            fillSpeculativeSlots();
        }

        // Snapshot the running members for this wave. Branch vectors
        // may grow (invalidating pointers) only in fillSpeculativeSlots
        // above, so pointers are stable for the rest of the wave.
        specScratch_ = specRunning_;
        std::vector<SpecBranch *> spec_run;
        spec_run.reserve(specScratch_.size());
        for (const auto &[beam_idx, branch_idx] : specScratch_) {
            SpecBranch &br = active_[beam_idx]->branches[branch_idx];
            if (br.node >= 0 && !br.complete && br.retained)
                spec_run.push_back(&br);
        }
        if (decodeSet_.empty() && spec_run.empty()) {
            if (q_head >= queue_.size())
                break;
            continue; // More standard beams to admit.
        }

        // --- Next event: smallest remaining token count ---
        int dt = std::numeric_limits<int>::max();
        for (size_t idx : decodeSet_) {
            const ActiveBeam &b = *active_[idx];
            dt = std::min(dt, b.targetTokens - b.decoded);
        }
        for (SpecBranch *br : spec_run)
            dt = std::min(dt, br->target - br->decoded);
        dt = std::max(dt, 1);

        const int active_total = static_cast<int>(decodeSet_.size())
            + static_cast<int>(spec_run.size());
        const double ctx = currentAvgContext() + dt * 0.5;
        const double step_time = roofline_.decodeStepTime(
            models_.generator, active_total, ctx);
        clock_.advance(dt * step_time, Phase::Generation,
                       roofline_.decodeComputeUtil(models_.generator,
                                                   active_total, ctx),
                       active_total, capacity);

        const uint64_t tick =
            static_cast<uint64_t>(clock_.now() * 1e6);

        // Memory pressure from the standard beams preempts speculation
        // *before* any useful cache gets evicted (Sec. 4.1.2: the
        // speculative phase is fully preemptible).
        if (!spec_run.empty()) {
            const size_t wave_need = kvGen_->blocksFor(dt)
                * (decodeSet_.size() + spec_run.size());
            if (kvGen_->allocator().free() < wave_need) {
                killAllSpeculation();
                spec_disabled = true;
            }
        }

        // --- Apply dt tokens to every running member ---
        std::vector<size_t> still_running;
        for (size_t idx : decodeSet_) {
            ActiveBeam &b = *active_[idx];
            if (!kvGen_->appendTokens(b.curSeg, dt, tick)) {
                // Memory pressure: stop speculation, then preempt the
                // beam itself if still stuck (vLLM swap semantics).
                killAllSpeculation();
                spec_disabled = true;
                if (!kvGen_->appendTokens(b.curSeg, dt, tick)) {
                    kvGen_->release(b.curSeg);
                    b.pinned = false;
                    b.inDecode = false;
                    pinned_tokens = std::max(
                        0.0, pinned_tokens
                                 - (kvGen_->pathTokens(b.curSeg)
                                    + b.targetTokens - b.decoded));
                    queue_.push_back(idx);
                    continue;
                }
            }
            b.decoded += dt;
            generatedTokens_ += dt;
            if (b.decoded >= b.targetTokens) {
                pinned_tokens = std::max(
                    0.0, pinned_tokens - kvGen_->pathTokens(b.curSeg));
                finishStandardBeam(idx);
            } else {
                still_running.push_back(idx);
            }
        }
        decodeSet_ = std::move(still_running);

        for (SpecBranch *br : spec_run) {
            if (br->node < 0 || !br->retained)
                continue; // Killed above.
            // Speculative appends may only take free blocks; they must
            // never evict cache the standard beams will re-touch.
            if (!kvGen_->appendTokens(br->node, dt, tick,
                                      /*allow_evict=*/false)) {
                releaseBranch(*br);
                continue;
            }
            br->decoded += dt;
            generatedTokens_ += dt;
            speculativeTokens_ += dt;
            if (br->decoded >= br->target)
                br->complete = true;
        }

        // Refresh the running set from this wave's snapshot: branches
        // that completed, were preempted, or were killed above drop
        // out; order is preserved.
        specRunning_.clear();
        for (const auto &entry : specScratch_) {
            const SpecBranch &br =
                active_[entry.first]->branches[entry.second];
            if (br.node >= 0 && !br.complete && br.retained)
                specRunning_.push_back(entry);
        }

        // Iteration ends when every standard beam finished its step;
        // in-flight speculation is strictly terminated at that point
        // (partial tokens are kept as head starts).
        if (decodeSet_.empty() && q_head >= queue_.size())
            break;
    }
}

void
FastTtsEngine::runVerificationPhase()
{
    if (plan_.offloadActive && plan_.offloadOverhead > 0)
        clock_.advance(plan_.offloadOverhead * 0.5, Phase::Transfer);

    // Requests follow the generation schedule order (queue_), which is
    // what lets Prefix-Aware Scheduling help the verifier cache too.
    struct Request
    {
        size_t beamIdx;
        int tokens;
    };
    std::vector<Request> requests;
    const uint64_t tick = static_cast<uint64_t>(clock_.now() * 1e6);

    std::vector<size_t> order = queue_;
    // Beams that never entered the queue (pendingStepDone) need their
    // state updated but no verifier request. A membership bitmap makes
    // this O(n) instead of the former O(n^2) std::find sweep.
    std::vector<char> queued(active_.size(), 0);
    for (size_t idx : queue_) {
        if (idx < queued.size())
            queued[idx] = 1;
    }
    for (size_t i = 0; i < active_.size(); ++i) {
        if (!queued[i])
            order.push_back(i);
    }

    std::vector<double> lookaheadScores;
    lookaheadScores.reserve(active_.size());
    for (const auto &bp : active_)
        lookaheadScores.push_back(bp->score);
    const SpeculativePolicy::ScoreBins lookaheadBins =
        specPolicy_.scoreBins(lookaheadScores);

    std::vector<char> seen(active_.size(), 0);
    for (size_t idx : order) {
        if (seen[idx])
            continue; // Suspended beams appear twice in queue_.
        seen[idx] = 1;
        ActiveBeam &b = *active_[idx];
        if (b.forceKilled)
            continue;
        if (b.pendingStepDone) {
            b.newScore = b.pendingScore;
            b.newVerSeg = b.pendingVerSeg;
            continue;
        }
        // Mirror the new segment into the verifier tree.
        int ver_seg = kvVer_->childOf(b.verLeaf, b.curSegId);
        if (ver_seg < 0)
            ver_seg = kvVer_->createChild(b.verLeaf, b.curSegId,
                                          b.targetTokens);
        b.newVerSeg = ver_seg;
        int touch_leaf = ver_seg;

        // LookAhead Verification (Sec. 4.1.3): a completed speculative
        // step for child 0 is concatenated into this request. Gated to
        // beams in the top score bin — pre-verifying a beam the search
        // is about to prune wastes verifier compute.
        SpecBranch *ahead = nullptr;
        if (config_.lookaheadVerification && lookaheadAllowed_
            && specPolicy_.binnedPotential(b.score, lookaheadBins)
                >= specPolicy_.branchFactor()) {
            for (auto &br : b.branches) {
                if (br.childIdx == 0 && br.node >= 0 && br.complete) {
                    ahead = &br;
                    break;
                }
            }
        }
        if (ahead != nullptr) {
            ahead->verNode = kvVer_->createChild(
                ver_seg, static_cast<uint64_t>(ahead->node) | (1ULL << 62),
                ahead->decoded);
            touch_leaf = ahead->verNode;
        }
        auto touch = kvVer_->ensureResident(touch_leaf, tick);
        const int req_tokens = touch.ok
            ? touch.recomputeTokens
            : kvVer_->pathTokens(touch_leaf); // Budget too small to
                                              // cache: full re-prefill.
        requests.push_back({idx, std::max(req_tokens, 1)});

        b.newScore =
            drawScore(verifier_, b.seed, b.steps, b.draw.quality);
        if (ahead != nullptr) {
            const uint64_t child_seed =
                childLineageSeed(b.seed, b.steps + 1, 0);
            ahead->score = drawScore(verifier_, child_seed, b.steps + 1,
                                     ahead->draw.quality);
            ahead->scored = true;
        }
    }

    // Observed full-path length feeds the next re-plan (verifier
    // working-set estimate).
    double path_total = 0;
    int path_count = 0;
    for (const auto &bp : active_) {
        if (bp->newVerSeg >= 0) {
            path_total += kvVer_->pathTokens(bp->newVerSeg);
            ++path_count;
        }
    }
    if (path_count > 0)
        meanVerifierPath_ = path_total / path_count;

    // Batch the requests at the planned prefill batch size.
    const int b_pre = std::max(1, plan_.prefillBatch);
    double seq_total = 0;
    for (size_t i = 0; i < requests.size();) {
        const size_t count =
            std::min<size_t>(b_pre, requests.size() - i);
        double batch_tokens = 0;
        for (size_t k = 0; k < count; ++k)
            batch_tokens += requests[i + k].tokens;
        const double mean_len = batch_tokens / count;
        clock_.advance(
            roofline_.prefillTime(models_.verifier,
                                  static_cast<int>(count), mean_len),
            Phase::Verification,
            roofline_.prefillComputeUtil(models_.verifier,
                                         static_cast<int>(count),
                                         mean_len),
            static_cast<int>(count), b_pre);
        seq_total += batch_tokens;
        i += count;
    }
    if (!requests.empty())
        meanVerifierSeq_ = seq_total / requests.size();
}

void
FastTtsEngine::completeBeam(ActiveBeam &beam, double score)
{
    CompletedSolution sol;
    sol.answer = beam.draw.answer;
    sol.score = score;
    sol.tokens = beam.totalTokens;
    sol.finishTime = clock_.now();
    completed_.push_back(sol);
}

void
FastTtsEngine::pruneBeam(ActiveBeam &beam)
{
    for (auto &br : beam.branches) {
        if (br.node >= 0)
            releaseBranch(br);
    }
    beam.branches.clear();
}

void
FastTtsEngine::runSelectionPhase()
{
    // --- Commit step results ---
    for (auto &bp : active_) {
        ActiveBeam &b = *bp;
        if (b.forceKilled) {
            // Unverified forced completion: weak score.
            b.steps += 1;
            b.totalTokens += b.decoded;
            completeBeam(b, 0.05);
            pruneBeam(b);
            continue;
        }
        b.steps += 1;
        b.totalTokens += b.targetTokens;
        b.quality = b.draw.quality;
        b.leaf = b.curSeg;
        b.verLeaf = b.newVerSeg;
        b.prevScore = b.score;
        b.score = b.newScore;
    }

    // --- Collect terminal beams ---
    std::vector<size_t> live;
    for (size_t i = 0; i < active_.size(); ++i) {
        ActiveBeam &b = *active_[i];
        if (b.forceKilled)
            continue;
        if (b.draw.terminal) {
            completeBeam(b, b.score);
            pruneBeam(b);
        } else {
            live.push_back(i);
        }
    }

    const int target = algorithm_.beamWidth()
        - static_cast<int>(completed_.size());

    std::vector<BeamCandidate> candidates;
    for (size_t k = 0; k < live.size(); ++k) {
        const ActiveBeam &b = *active_[live[k]];
        BeamCandidate c;
        c.index = k;
        c.score = b.score;
        c.prevScore = b.prevScore;
        c.rootIndex = b.rootIndex;
        c.steps = b.steps;
        c.beamId = b.id;
        candidates.push_back(c);
    }

    std::vector<std::unique_ptr<ActiveBeam>> next;
    if (target > 0 && !candidates.empty()) {
        Rng sel_rng(Rng::mix(problem_.seed,
                             0x5e1ec7 + static_cast<uint64_t>(
                                 iteration_)));
        const SelectionResult result =
            algorithm_.select(candidates, target, sel_rng);

        std::vector<int> child_count(live.size(), 0);
        for (const auto &[cand_idx, k] : result.expansions)
            child_count[cand_idx] = k;

        for (size_t k = 0; k < live.size(); ++k) {
            ActiveBeam &parent = *active_[live[k]];
            const int num_children = child_count[k];
            for (int j = 0; j < num_children; ++j) {
                auto child = std::make_unique<ActiveBeam>();
                child->id = nextBeamId_++;
                child->seed =
                    childLineageSeed(parent.seed, parent.steps, j);
                child->rootIndex = parent.rootIndex;
                child->steps = parent.steps;
                child->quality = parent.quality;
                child->score = parent.score;
                child->prevScore = parent.score;
                child->totalTokens = parent.totalTokens;
                child->leaf = parent.leaf;
                child->verLeaf = parent.verLeaf;
                child->prevPos = parent.prevPos;
                child->spawnTime = clock_.now();

                // Adopt the matching speculative branch, if any
                // (Algorithm 1: DuplicateThenTruncate — the original,
                // j == 0, keeps everything; duplicates truncate).
                SpecBranch *branch = nullptr;
                for (auto &br : parent.branches) {
                    if (br.childIdx == j && br.node >= 0) {
                        branch = &br;
                        break;
                    }
                }
                if (branch != nullptr) {
                    int keep = branch->decoded;
                    if (j != 0) {
                        keep = specPolicy_.truncationKeep(
                            branch->decoded, systemRng_);
                        kvGen_->truncateTokens(branch->node, keep);
                        wastedSpecTokens_ += branch->decoded - keep;
                    }
                    child->curSeg = branch->node;
                    child->curSegId = branch->segId;
                    child->decoded = keep;
                    child->headStart = keep;
                    child->draw = branch->draw;
                    child->targetTokens = branch->target;
                    child->stepPrepared = true;
                    if (j == 0 && branch->complete && branch->scored) {
                        child->pendingStepDone = true;
                        child->pendingScore = branch->score;
                        child->pendingVerSeg = branch->verNode;
                    } else if (branch->verNode >= 0) {
                        branch->verNode = -1;
                    }
                    // Transfer the branch's KV retention to nobody:
                    // waiting beams hold no pins (evictable), matching
                    // vLLM semantics.
                    if (branch->retained) {
                        kvGen_->release(branch->node);
                        branch->retained = false;
                    }
                    branch->node = -1; // Consumed.
                } else {
                    child->curSeg = -1;
                    child->decoded = 0;
                }
                next.push_back(std::move(child));
            }
            // Unconsumed branches are wasted speculation.
            pruneBeam(parent);
        }
    } else {
        // Width exhausted: prune all remaining candidates.
        for (size_t k = 0; k < live.size(); ++k)
            pruneBeam(*active_[live[k]]);
    }

    active_ = std::move(next);
}

RequestResult
FastTtsEngine::runRequest(const Problem &problem)
{
    beginRequest(problem);
    while (stepRequest()) {
    }
    return finishRequest();
}

void
FastTtsEngine::beginRequest(const Problem &problem)
{
    resetRequestState(problem);
}

bool
FastTtsEngine::stepRequest()
{
    const int hard_cap = dataset_.maxSteps + 4;
    if (!active_.empty() && iteration_ < hard_cap) {
        replan();
        runGenerationPhase();
        runVerificationPhase();

        IterationStats stats;
        stats.iteration = iteration_;
        stats.activeBeams = static_cast<int>(active_.size());
        stats.residentNodes = kvGen_->residentNodeCount();
        stats.residentTokens = kvGen_->residentTokens();
        long unshared = 0;
        long unique = 0;
        std::unordered_set<int> visited;
        for (const auto &b : active_) {
            const int leaf = b->curSeg >= 0 ? b->curSeg : b->leaf;
            unshared += kvGen_->pathTokens(leaf);
            for (int id = leaf; id != KvCacheManager::kInvalid;
                 id = kvGen_->parentOf(id)) {
                if (!visited.insert(id).second)
                    break; // Shared ancestors already counted.
                unique += kvGen_->nodeTokens(id);
            }
        }
        stats.unsharedTokens = unshared;
        stats.uniqueTokens = unique;
        stats.evictions = kvGen_->stats().evictions;
        stats.recomputedTokens = kvGen_->stats().recomputedTokens;
        stats.decodeBatch = plan_.decodeBatch;
        stats.prefillBatch = plan_.prefillBatch;

        runSelectionPhase();
        stats.clock = clock_.now();
        iterStats_.push_back(stats);
        ++iteration_;
    }
    return !active_.empty() && iteration_ < hard_cap;
}

RequestResult
FastTtsEngine::finishRequest()
{
    // Any beams alive at the hard cap (or at cancellation) are
    // abandoned.
    for (auto &b : active_)
        pruneBeam(*b);
    active_.clear();

    RequestResult result;
    result.completionTime = clock_.now();
    result.generatorTime = clock_.phaseTime(Phase::Generation)
        + clock_.phaseTime(Phase::Recompute);
    result.verifierTime = clock_.phaseTime(Phase::Verification);
    result.transferTime = clock_.phaseTime(Phase::Transfer);
    result.generatedTokens = generatedTokens_;
    result.speculativeTokens = speculativeTokens_;
    result.wastedSpecTokens = wastedSpecTokens_;
    result.completedBeams = static_cast<int>(completed_.size());
    double token_total = 0;
    double time_total = 0;
    for (const auto &s : completed_) {
        token_total += static_cast<double>(s.tokens);
        time_total += s.finishTime;
        result.verifiedTokens += s.tokens;
    }
    if (!completed_.empty()) {
        result.avgBeamTokens =
            token_total / static_cast<double>(completed_.size());
        result.avgBeamCompletion =
            time_total / static_cast<double>(completed_.size());
    }
    result.solutions = completed_;
    result.kvStats = kvGen_->stats();
    const KvStats &ver = kvVer_->stats();
    result.kvStats.evictions += ver.evictions;
    result.kvStats.evictedTokens += ver.evictedTokens;
    result.kvStats.recomputedTokens += ver.recomputedTokens;
    result.kvStats.hitTokens += ver.hitTokens;
    result.kvStats.missTokens += ver.missTokens;
    return result;
}

} // namespace fasttts
