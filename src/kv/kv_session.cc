#include "kv/kv_session.h"

#include <algorithm>

#include "kv/kv_tier.h"
#include "util/fault_injector.h"

namespace fasttts
{

KvBudgetLedger::KvBudgetLedger(double total_bytes)
    : total_(std::max(0.0, total_bytes))
{
}

bool
KvBudgetLedger::charge(double bytes)
{
    // Half a byte of slack absorbs accumulated floating-point error in
    // the byte sums (charges are KB-scale block multiples, so genuine
    // overshoot is orders of magnitude larger).
    if (used_ + bytes > total_ + 0.5) {
        ++failed_;
        return false;
    }
    // An injected allocation brownout refuses exactly like budget
    // exhaustion; callers already handle refusal (eviction, deferral).
    if (faults_ != nullptr
        && faults_->shouldFault(FaultSite::kKvAlloc)) {
        ++failed_;
        return false;
    }
    used_ += bytes;
    peak_ = std::max(peak_, used_);
    return true;
}

void
KvBudgetLedger::release(double bytes)
{
    used_ = std::max(0.0, used_ - bytes);
}

long
KvSession::suspend(uint64_t tick, double recompute_seconds_per_token)
{
    (void)tick;
    frontier_ = kv_->residentFrontier();
    // Roofline-guided tier decision: park the resident KV on the host
    // iff copying it out (and later back) is strictly cheaper than
    // re-prefilling it. The transfer estimate uses token bytes (the
    // payload actually copied), the recompute estimate the caller's
    // per-token prefill rate; ties go to recompute, so an infinitely
    // slow link degenerates to the legacy behaviour exactly.
    lastSwapOutSeconds_ = 0;
    const HostKvTier *tier = kv_->hostTier();
    if (tier != nullptr && recompute_seconds_per_token >= 0) {
        const long tokens = kv_->residentTokens();
        const double bytes = tokens * kv_->kvBytesPerToken();
        if (tokens > 0
            && tier->transferSeconds(bytes)
                < recompute_seconds_per_token * tokens) {
            const long swapped = kv_->swapOutResident();
            if (swapped > 0) {
                stats_.swappedOutTokens += swapped;
                lastSwapOutSeconds_ = tier->transferSeconds(
                    swapped * kv_->kvBytesPerToken());
            }
        }
    }
    const long evicted = kv_->forceEvictAll();
    suspended_ = true;
    ++stats_.suspends;
    stats_.evictedTokens += evicted;
    return evicted;
}

long
KvSession::resume(uint64_t tick)
{
    long recomputed = 0;
    long restored = 0;
    for (const KvCacheManager::NodeId leaf : frontier_) {
        // An injected restore failure leaves this leaf cold; it
        // recomputes lazily on first touch, like a budget shortfall.
        if (faults_ != nullptr
            && faults_->shouldFault(FaultSite::kKvRestore))
            continue;
        const auto touch = kv_->ensureResident(leaf, tick);
        recomputed += touch.recomputeTokens;
        restored += touch.swappedInTokens;
        if (!touch.ok)
            break; // Budget exhausted: the rest recomputes lazily.
    }
    frontier_.clear();
    suspended_ = false;
    ++stats_.resumes;
    stats_.recomputedTokens += recomputed;
    stats_.restoredTokens += restored;
    return recomputed;
}

} // namespace fasttts
