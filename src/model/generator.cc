#include "model/generator.h"

#include <algorithm>
#include <cmath>

namespace fasttts
{

namespace
{

double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

} // namespace

SyntheticGenerator::SyntheticGenerator(const ModelSpec &spec,
                                       const DatasetProfile &profile)
    : spec_(spec), profile_(profile)
{
    // Larger models reason better; log-scale skill relative to 1.5B,
    // matching the qualitative 1.5B vs 7B gap the paper's Fig. 14
    // configurations exhibit.
    skill_ = 0.45 * std::log10(spec.numParams / 1.5e9);
}

int
SyntheticGenerator::sampleStepTokens(int step_index, Rng &rng) const
{
    // Later steps shorten slightly (wrap-up behaviour); the tail stays
    // heavy at every step, as in paper Fig. 3 (right).
    const double mu =
        profile_.stepLenMu - 0.02 * std::min(step_index, 10);
    const double len = rng.logNormal(mu, profile_.stepLenSigma);
    return std::clamp(static_cast<int>(len), profile_.minStepTokens,
                      profile_.maxStepTokens);
}

bool
SyntheticGenerator::sampleTerminal(int step_index, Rng &rng) const
{
    if (step_index + 1 >= profile_.maxSteps)
        return true;
    const double p = std::min(
        1.0, profile_.terminalBase + profile_.terminalGrowth * step_index);
    return rng.bernoulli(p);
}

double
SyntheticGenerator::initialQuality(const Problem &problem, Rng &rng) const
{
    (void)problem;
    return skill_ + rng.normal(0.0, 0.45);
}

double
SyntheticGenerator::evolveQuality(double parent_quality, Rng &rng) const
{
    // Mean-reverting walk around the model's skill level: verifier
    // guidance can select the upper tail of the stationary
    // distribution, but cannot push a small model's reasoning
    // arbitrarily far — which is why hard problems stay hard at any n.
    const double pull = 0.78;
    return skill_ + pull * (parent_quality - skill_)
        + rng.normal(-0.03, 0.28);
}

double
SyntheticGenerator::correctProbability(double quality,
                                       const Problem &problem) const
{
    // Steep in (quality - difficulty): problems are mostly either
    // within reach of the model+search or not, matching the strongly
    // problem-level accuracy structure of math benchmarks.
    return sigmoid(5.0 * (quality - problem.difficulty));
}

int
SyntheticGenerator::sampleAnswer(double quality, const Problem &problem,
                                 Rng &rng) const
{
    if (rng.bernoulli(correctProbability(quality, problem)))
        return 0;
    // Wrong answers follow a Zipf-like popularity skew: common mistakes
    // recur across paths, which is what makes majority voting
    // non-trivial.
    const int wrong_space = std::max(1, profile_.numAnswers - 1);
    std::vector<double> weights(static_cast<size_t>(wrong_space));
    for (int k = 0; k < wrong_space; ++k)
        weights[static_cast<size_t>(k)] = 1.0 / (1.0 + k);
    return 1 + rng.categorical(weights);
}

} // namespace fasttts
