#!/usr/bin/env bash
# Scheduler stress: the interleaved online server under ASan+UBSan.
#
# Usage:
#   scripts/stress_online.sh [--build-dir DIR] [--requests N]
#                            [--max-inflight K]
#
# Configures a sanitizer build (FASTTTS_SANITIZE=address), builds the
# online-responsiveness bench, and serves a heavy-tailed (bursty)
# 512-request trace with 8 requests interleaved under each of two
# admission policies — one queue-reordering policy (sjf) and the aging
# path (priority) — so scheduler races, lifetime bugs and leaks in the
# multi-request interleaving machinery cannot land silently. A third
# pass runs preemptive EDF with doomed-request shedding under a tight
# shared KV budget (--preempt policy --kv-budget), hammering the
# suspend/evict/resume path of the shared-engine server. A fourth pass
# runs continuous batching under the same tight budget (--batching
# continuous --kv-budget 0.5), fusing decode across requests while the
# ledger benches and lazily restores batch members. A fifth pass turns
# the cross-request prefix cache on (--prefix-cache on) under the same
# tight budget, so radix-index insert/split/evict and pin/release race
# against benching and forced eviction. A sixth pass injects
# deterministic wave-step faults at 5% with retries (--faults plan
# --retry-max 3), so the abort/refund/re-admit machinery — cancel
# mid-wave, prefix-pin release, ledger refund, backoff re-queue —
# churns under the sanitizers too. A seventh pass turns on the host KV
# tier with cost-aware victim selection under round-robin time slicing
# (--kv-tier host --victim-select cost --preempt slice), so every
# context switch runs the roofline swap-vs-recompute decision and the
# tier's swap-out/take/LRU-evict machinery races suspend, forced
# eviction and lazy restore.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-stress"
requests=512
max_inflight=8

while [[ $# -gt 0 ]]; do
    case "$1" in
    --build-dir)
        build_dir="$2"
        shift 2
        ;;
    --requests)
        requests="$2"
        shift 2
        ;;
    --max-inflight)
        max_inflight="$2"
        shift 2
        ;;
    --help | -h)
        sed -n '2,31p' "${BASH_SOURCE[0]}" | sed 's/^# \{0,1\}//'
        exit 0
        ;;
    *)
        echo "unknown option: $1 (see --help)" >&2
        exit 2
        ;;
    esac
done

echo "-- configuring sanitizer build in ${build_dir}"
cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Debug -DFASTTTS_SANITIZE=address >/dev/null
cmake --build "${build_dir}" --target bench_online_responsiveness \
    -j >/dev/null

export ASAN_OPTIONS="${ASAN_OPTIONS:-strict_string_checks=1:detect_stack_use_after_return=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

bench="${build_dir}/bench/bench_online_responsiveness"
for policy in sjf priority; do
    echo "-- stress: ${requests} bursty requests, K=${max_inflight}," \
        "policy=${policy} (beams shrunk for sanitizer wall time)"
    "${bench}" --problems "${requests}" --beams 4 --dataset AMC \
        --arrivals bursty --policy "${policy}" \
        --max-inflight "${max_inflight}" --slo 2000 >/dev/null
done

# Preemption storm: policy-driven preemption + doomed-request shedding
# under a deliberately tight shared KV budget, so every request is
# suspended, force-evicted and recomputed many times.
echo "-- stress: ${requests} bursty requests, K=${max_inflight}," \
    "policy=edf, preempt=policy, kv-budget=0.5 GiB, shed-doomed"
"${bench}" --problems "${requests}" --beams 4 --dataset AMC \
    --arrivals bursty --policy edf --preempt policy \
    --kv-budget 0.5 --shed-doomed \
    --max-inflight "${max_inflight}" --slo 2000 >/dev/null

# Continuous-batching storm: co-scheduled decode under the same tight
# shared budget, so batch members are benched (force-evicted) and
# lazily restored while other members keep decoding in fused waves.
echo "-- stress: ${requests} bursty requests, K=${max_inflight}," \
    "policy=edf, batching=continuous, kv-budget=0.5 GiB, shed-doomed"
"${bench}" --problems "${requests}" --beams 4 --dataset AMC \
    --arrivals bursty --policy edf --batching continuous \
    --kv-budget 0.5 --shed-doomed \
    --max-inflight "${max_inflight}" --slo 2000 >/dev/null

# Prefix-cache storm: cross-request prefix caching on top of the
# continuous-batching storm, so radix-index insert/split/LRU-evict and
# prefix pin/release race against benching and forced eviction under
# the same tight shared budget.
echo "-- stress: ${requests} bursty requests, K=${max_inflight}," \
    "policy=edf, batching=continuous, prefix-cache=on," \
    "kv-budget=0.5 GiB, shed-doomed"
"${bench}" --problems "${requests}" --beams 4 --dataset AMC \
    --arrivals bursty --policy edf --batching continuous \
    --prefix-cache on --kv-budget 0.5 --shed-doomed \
    --max-inflight "${max_inflight}" --slo 2000 >/dev/null

# Fault-injection storm: deterministic 5% wave-step faults with a
# retry budget on top of the continuous-batching storm, so injected
# aborts (cancel mid-wave, ledger refund, prefix-pin release) and
# backed-off re-admissions race the benching/restore machinery.
echo "-- stress: ${requests} bursty requests, K=${max_inflight}," \
    "policy=edf, batching=continuous, faults=plan (5% wave_step)," \
    "retry-max=3, kv-budget=0.5 GiB, shed-doomed"
"${bench}" --problems "${requests}" --beams 4 --dataset AMC \
    --arrivals bursty --policy edf --batching continuous \
    --faults plan \
    --fault-plan '{"rules": [{"site": "wave_step", "rate": 0.05}]}' \
    --retry-max 3 --kv-budget 0.5 --shed-doomed \
    --max-inflight "${max_inflight}" --slo 2000 >/dev/null

# Tiering storm: host KV tier + cost-aware victim selection under
# round-robin time slicing and a tight shared budget, so every context
# switch takes the roofline swap-vs-recompute decision and the host
# store's swap-out/take/LRU-evict bookkeeping churns against suspend,
# forced eviction and lazy restore.
echo "-- stress: ${requests} bursty requests, K=${max_inflight}," \
    "policy=edf, preempt=slice, kv-tier=host, victim-select=cost," \
    "kv-budget=0.25 GiB, shed-doomed"
"${bench}" --problems "${requests}" --beams 4 --dataset AMC \
    --arrivals bursty --policy edf --preempt slice \
    --kv-tier host --host-kv-budget 0.5 --host-bandwidth 16 \
    --victim-select cost --kv-budget 0.25 --shed-doomed \
    --max-inflight "${max_inflight}" --slo 2000 >/dev/null
echo "-- scheduler stress passed (ASan+UBSan clean)"
