/**
 * @file
 * Quickstart: serve a few math-reasoning requests with FastTTS and
 * compare against the vLLM-style baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 *   ./build/examples/example_quickstart --help   # full flag reference
 */

#include <iostream>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace fasttts;

    EngineArgs defaults;
    defaults.dataset = "AMC";
    defaults.numBeams = 32;
    defaults.numProblems = 8;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "FastTTS quickstart: baseline vs optimised serving");

    ServingOptions options = args.toServingOptions().value();

    // Baseline: the same engine with every optimization disabled.
    ServingOptions baseline_options = options;
    baseline_options.config = FastTtsConfig::baseline();

    std::cout << "FastTTS quickstart: " << options.models.label
              << " on " << options.deviceName << ", n=" << options.numBeams
              << ", " << options.datasetName << "\n";

    ServingSystem baseline =
        ServingSystem::create(baseline_options).value();
    ServingSystem fast = ServingSystem::create(options).value();

    BatchResult base = baseline.serveProblems(args.numProblems);
    BatchResult opt = fast.serveProblems(args.numProblems);

    Table table("Baseline (vLLM-style) vs FastTTS");
    table.setHeader({"system", "goodput tok/s", "latency s",
                     "generator s", "verifier s", "top-1 acc %"});
    table.addRow("baseline",
                 {base.meanGoodput, base.meanLatency,
                  base.meanGeneratorTime, base.meanVerifierTime,
                  base.top1Accuracy});
    table.addRow("fasttts",
                 {opt.meanGoodput, opt.meanLatency, opt.meanGeneratorTime,
                  opt.meanVerifierTime, opt.top1Accuracy});
    table.setCaption("FastTTS should show higher goodput and lower "
                     "latency at matching accuracy.");
    table.print(std::cout);

    const double speedup = base.meanLatency / opt.meanLatency;
    std::cout << "\nLatency speedup: " << formatDouble(speedup, 2)
              << "x\n";
    return 0;
}
