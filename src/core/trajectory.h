/**
 * @file
 * Deterministic per-step trajectory draws.
 *
 * A beam's step content — token length, evolved quality, terminal
 * decision, answer, verifier score — is a pure function of
 * (lineage stream seed, step index, parent quality). Both the
 * baseline and the FastTTS engine obtain step content through these
 * functions, so speculation and scheduling can never change *what* is
 * generated, only *when*: the paper's algorithmic-equivalence
 * guarantee by construction.
 *
 * Stream-lane convention: for a beam with lineage seed L at step s,
 *   lane 2s   -> generation draws (length, quality, terminal, answer)
 *   lane 2s+1 -> verifier observation noise
 * Child j of a beam that just finished step s inherits lineage seed
 * mix(L, kChildLane + j).
 */

#ifndef FASTTTS_CORE_TRAJECTORY_H
#define FASTTTS_CORE_TRAJECTORY_H

#include <cstdint>

#include "model/generator.h"
#include "model/verifier.h"
#include "model/workload.h"

namespace fasttts
{

/** Lane offset separating child-seed derivation from step lanes. */
constexpr uint64_t kChildLane = 0x10000;

/** Content of one thinking step. */
struct StepDraw
{
    int tokens = 0;      //!< Step length before any granularity cap.
    double quality = 0;  //!< Path quality after this step.
    bool terminal = false;
    int answer = -1;     //!< Valid when terminal (0 = correct).
};

/**
 * Draw the content of step step_index for the beam with the given
 * lineage seed.
 * @param parent_quality Quality after the previous step (the beam's
 *        initial quality for step 0).
 * @param cap Generation-stage token cap (varying granularity);
 *        pass INT_MAX for none.
 */
[[nodiscard]] StepDraw
drawStep(const SyntheticGenerator &gen, const Problem &problem,
         uint64_t lineage_seed, int step_index, double parent_quality,
         int cap);

/** Deterministic verifier score of the step. */
[[nodiscard]] double
drawScore(const SyntheticVerifier &ver, uint64_t lineage_seed,
          int step_index, double step_quality);

/** Lineage seed of child j spawned after the parent completed a step. */
[[nodiscard]] uint64_t
childLineageSeed(uint64_t parent_seed, int step_index,
                 int child_index);

/** Lineage seed of initial beam i of a problem. */
[[nodiscard]] uint64_t
rootLineageSeed(const Problem &problem, int beam_index);

/** Initial quality of a root beam (before step 0). */
[[nodiscard]] double
rootQuality(const SyntheticGenerator &gen, const Problem &problem,
            int beam_index);

} // namespace fasttts

#endif // FASTTTS_CORE_TRAJECTORY_H
