#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fasttts
{

void
SummaryStats::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
SummaryStats::merge(const SummaryStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
SummaryStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), bins_(std::max<size_t>(num_bins, 1), 0)
{
    assert(hi > lo);
    width_ = (hi_ - lo_) / static_cast<double>(bins_.size());
}

void
Histogram::add(double value)
{
    double idx = (value - lo_) / width_;
    long bin = static_cast<long>(std::floor(idx));
    bin = std::clamp<long>(bin, 0, static_cast<long>(bins_.size()) - 1);
    ++bins_[static_cast<size_t>(bin)];
    ++total_;
}

double
Histogram::quantile(double p) const
{
    if (total_ == 0)
        return lo_;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(total_);
    double cum = 0.0;
    for (size_t i = 0; i < bins_.size(); ++i) {
        const double next = cum + static_cast<double>(bins_[i]);
        if (next >= target && bins_[i] > 0) {
            const double frac =
                (target - cum) / static_cast<double>(bins_[i]);
            return binLo(i) + frac * width_;
        }
        cum = next;
    }
    return hi_;
}

double
Histogram::binLo(size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin);
}

double
Histogram::binHi(size_t bin) const
{
    return binLo(bin) + width_;
}

std::string
Histogram::sparkline() const
{
    static const char *levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    size_t peak = 0;
    for (size_t c : bins_)
        peak = std::max(peak, c);
    std::string out;
    for (size_t c : bins_) {
        size_t level = 0;
        if (peak > 0)
            level = (c * 7 + peak - 1) / peak;
        out += levels[std::min<size_t>(level, 7)];
    }
    return out;
}

} // namespace fasttts
