// Fixture: unordered-iter rule. Not compiled — linted against the
// golden report in tests/lint/expected/unordered_iter.txt.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::unordered_map<int, std::string> table;
std::unordered_set<int> seen;

std::vector<std::string>
bad_range_for()
{
    std::vector<std::string> out;
    for (const auto &[id, name] : table) // finding: hash order
        out.push_back(name);
    return out;
}

int
bad_iterator_loop()
{
    int first = 0;
    auto it = seen.begin(); // finding: hash order
    if (it != seen.end())
        first = *it;
    return first;
}

bool
good_lookup(int id)
{
    return seen.find(id) != seen.end(); // lookups are fine
}

int
allowed_reduction()
{
    int total = 0;
    // fasttts-lint: allow(unordered-iter) order-independent sum
    for (int id : seen)
        total += id;
    return total;
}
