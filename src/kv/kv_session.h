/**
 * @file
 * Shared KV memory budget and per-request KV session save/restore.
 *
 * A single edge device has one KV pool; when several requests are in
 * flight their caches must *contend* for it rather than each enjoying
 * a private device's worth of memory. Two pieces make that honest:
 *
 *  - KvBudgetLedger: one byte-denominated budget shared by any number
 *    of KvCacheManager instances (generator and verifier trees of
 *    every in-flight request). Attached managers charge the ledger for
 *    every block they allocate and release it on eviction, so the
 *    ledger's occupancy is exactly the total resident KV across all
 *    requests, and an exhausted ledger fails allocations even when a
 *    manager's own pool still has room — forcing local eviction, beam
 *    preemption, or (at the serving layer) preemption of a whole
 *    request.
 *
 *  - KvSession: the save/restore handle for one request's cache.
 *    suspend() snapshots the resident frontier (the deepest resident
 *    node of every cached path) and force-evicts every block back to
 *    the shared pool; resume() re-materialises the snapshot, counting
 *    the tokens that must be re-prefilled as recompute. A preempted
 *    request may also skip resume() entirely and let the engine's
 *    lazy ensureResident() path recompute paths as beams re-touch
 *    them — either way the recompute volume lands in KvStats.
 */

#ifndef FASTTTS_KV_KV_SESSION_H
#define FASTTTS_KV_KV_SESSION_H

#include <cstdint>
#include <vector>

#include "kv/kv_cache.h"

namespace fasttts
{

class FaultInjector;

/**
 * One device-wide KV byte budget shared by several KvCacheManagers.
 *
 * Pure accounting: charge() fails (without changing state) when the
 * request would exceed the budget. Charges are exact byte amounts
 * (block count x block bytes of the charging manager), so occupancy
 * equals the total resident KV bytes across every attached manager.
 */
class KvBudgetLedger
{
  public:
    explicit KvBudgetLedger(double total_bytes);

    /**
     * Probe `injector` at FaultSite::kKvAlloc on every charge; an
     * injected fault refuses the charge as if the budget were
     * exhausted (an allocation brownout). Pass nullptr to detach; the
     * injector must outlive the ledger while attached.
     */
    void attachFaultInjector(FaultInjector *injector)
    {
        faults_ = injector;
    }

    /** Try to charge `bytes`; false (no change) when over budget. */
    [[nodiscard]] bool charge(double bytes);

    /** Return `bytes` to the pool (clamped at zero occupancy). */
    void release(double bytes);

    [[nodiscard]] double totalBytes() const { return total_; }
    [[nodiscard]] double usedBytes() const { return used_; }
    [[nodiscard]] double freeBytes() const { return total_ - used_; }

    /** Highest simultaneous occupancy seen. */
    [[nodiscard]] double peakUsedBytes() const { return peak_; }

    /** Charges refused for lack of budget. */
    [[nodiscard]] uint64_t failedCharges() const { return failed_; }

  private:
    double total_;
    double used_ = 0;
    double peak_ = 0;
    uint64_t failed_ = 0;
    FaultInjector *faults_ = nullptr;
};

/** Counters of one session's suspend/resume history. */
struct KvSessionStats
{
    int suspends = 0;
    int resumes = 0;
    long evictedTokens = 0;    //!< Tokens force-evicted by suspend().
    long recomputedTokens = 0; //!< Tokens re-prefilled by resume().
    long restoredTokens = 0;   //!< Tokens restored from the host tier
                               //!< by resume() (no recompute paid).
    long swappedOutTokens = 0; //!< Tokens suspend() parked on the
                               //!< host tier instead of dropping.
};

/**
 * Save/restore handle over one KvCacheManager.
 *
 * Non-owning: the manager must outlive the session. A session is
 * either live (no snapshot) or suspended (snapshot taken, all device
 * blocks released); suspend() and resume() alternate.
 */
class KvSession
{
  public:
    explicit KvSession(KvCacheManager &kv) : kv_(&kv) {}

    /**
     * Probe `injector` at FaultSite::kKvRestore per frontier leaf on
     * resume(); a faulted leaf is skipped (stays cold) and recomputes
     * lazily on first touch. Pass nullptr to detach.
     */
    void attachFaultInjector(FaultInjector *injector)
    {
        faults_ = injector;
    }

    /**
     * Snapshot the resident frontier and force-evict every resident
     * node (the root stays), returning all blocks to the allocator
     * (and the shared ledger, if attached). Reference counts are
     * untouched: pins stay logical, so the tree structure survives
     * and any later touch recomputes.
     *
     * When the manager has a host tier attached and
     * `recompute_seconds_per_token` is non-negative, suspend first
     * makes the roofline swap-vs-recompute call: with T resident
     * tokens of B bytes, swapping costs transferSeconds(B) while
     * recomputing costs recompute_seconds_per_token * T. Iff the
     * transfer is strictly cheaper, the resident nodes are offered to
     * the tier (kv_tier.h) before eviction, and the caller should
     * charge lastSwapOutSeconds() of transfer time against its clock.
     * Negative (the default) or no tier keeps the pure
     * evict-and-recompute behaviour bit-identical.
     * @return Tokens whose KV was dropped.
     */
    long suspend(uint64_t tick,
                 double recompute_seconds_per_token = -1.0);

    /** Sim seconds of host-link copy incurred by the last suspend()
     *  (zero when it chose recompute or nothing was accepted). */
    [[nodiscard]] double lastSwapOutSeconds() const
    {
        return lastSwapOutSeconds_;
    }

    /**
     * Re-materialise the snapshot taken by suspend(), best-effort:
     * paths are restored in snapshot order until the budget runs out;
     * whatever could not be restored is recomputed lazily when next
     * touched. Re-prefilled tokens are counted in the manager's
     * KvStats (recomputedTokens) exactly as lazy recompute would;
     * nodes the last suspend() parked on the host tier copy back
     * instead and land in restoredTokens, not recomputedTokens.
     * @return Tokens that had to be re-prefilled.
     */
    long resume(uint64_t tick);

    /** Whether suspend() ran without a matching resume(). */
    [[nodiscard]] bool suspended() const { return suspended_; }

    [[nodiscard]] const KvSessionStats &stats() const { return stats_; }

  private:
    KvCacheManager *kv_;
    std::vector<KvCacheManager::NodeId> frontier_;
    bool suspended_ = false;
    double lastSwapOutSeconds_ = 0;
    KvSessionStats stats_;
    FaultInjector *faults_ = nullptr;
};

} // namespace fasttts

#endif // FASTTTS_KV_KV_SESSION_H
