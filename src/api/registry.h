/**
 * @file
 * Named-factory registries: the extension points of the library.
 *
 * Devices, datasets, model configurations and search algorithms are
 * each looked up through a Registry rather than a hard-coded if-chain,
 * so new entries can be registered by downstream code without touching
 * the core (see the "Extending FastTTS" section of the README).
 * Lookups of unknown names are hard errors that list the valid names —
 * never a silent fallback.
 *
 * The built-in entries are installed by each subsystem's registry
 * accessor (deviceRegistry(), datasetRegistry(), algorithmRegistry(),
 * modelConfigRegistry()) on first use. Registries are not synchronised;
 * register custom entries at startup, before serving.
 */

#ifndef FASTTTS_API_REGISTRY_H
#define FASTTTS_API_REGISTRY_H

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "api/status.h"

namespace fasttts
{

/**
 * An ordered map of name -> factory for one kind of pluggable entity.
 *
 * @tparam T    What a factory produces (a value or a unique_ptr).
 * @tparam Args Extra arguments every factory takes (e.g. the search
 *              width and branch factor for algorithms).
 */
template <typename T, typename... Args>
class Registry
{
  public:
    using Factory = std::function<T(Args...)>;

    /** @param kind Singular noun used in error messages ("device"). */
    explicit Registry(std::string kind) : kind_(std::move(kind)) {}

    /**
     * Register a factory under a unique, non-empty name.
     * @return kInvalidArgument for an empty name or null factory,
     *         kAlreadyExists for a duplicate.
     */
    Status
    add(const std::string &name, Factory factory)
    {
        if (name.empty())
            return Status::invalidArgument(kind_
                                           + " name must be non-empty");
        if (!factory)
            return Status::invalidArgument(
                kind_ + " factory for '" + name + "' must be callable");
        if (contains(name))
            return Status::alreadyExists(kind_ + " '" + name
                                         + "' is already registered");
        entries_.emplace_back(name, std::move(factory));
        return okStatus();
    }

    /** Remove an entry; kNotFound when absent. */
    Status
    remove(const std::string &name)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == name) {
                entries_.erase(it);
                return okStatus();
            }
        }
        return Status::notFound(unknownMessage(name));
    }

    [[nodiscard]] bool
    contains(const std::string &name) const
    {
        return find(name) != nullptr;
    }

    /** Registered names, in registration order. */
    [[nodiscard]] std::vector<std::string>
    list() const
    {
        std::vector<std::string> names;
        names.reserve(entries_.size());
        for (const auto &[name, factory] : entries_)
            names.push_back(name);
        return names;
    }

    [[nodiscard]] size_t size() const { return entries_.size(); }

    /** The kind noun this registry was constructed with. */
    [[nodiscard]] const std::string &kind() const { return kind_; }

    /**
     * Invoke the named factory. Unknown names are a kNotFound error
     * whose message lists every valid name.
     */
    StatusOr<T>
    create(const std::string &name, Args... args) const
    {
        const Factory *factory = find(name);
        if (factory == nullptr)
            return Status::notFound(unknownMessage(name));
        return (*factory)(std::forward<Args>(args)...);
    }

  private:
    const Factory *
    find(const std::string &name) const
    {
        for (const auto &entry : entries_)
            if (entry.first == name)
                return &entry.second;
        return nullptr;
    }

    std::string
    unknownMessage(const std::string &name) const
    {
        // "device" -> "devices", but "queue policy" -> "queue
        // policies".
        std::string plural = kind_;
        if (!plural.empty() && plural.back() == 'y')
            plural.replace(plural.size() - 1, 1, "ie");
        std::string message = "unknown " + kind_ + " '" + name
            + "'; valid " + plural + "s: ";
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (i > 0)
                message += ", ";
            message += entries_[i].first;
        }
        if (entries_.empty())
            message += "(none registered)";
        return message;
    }

    std::string kind_;
    std::vector<std::pair<std::string, Factory>> entries_;
};

} // namespace fasttts

#endif // FASTTTS_API_REGISTRY_H
