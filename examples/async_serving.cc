/**
 * @file
 * Request-level async serving: submit / step / callbacks / cancel,
 * plus true preemption (suspend / evict / resume).
 *
 * Shows the facade OnlineServer is built on. Three requests are
 * submitted up front; the caller pumps the engine one TTS iteration at
 * a time with step(), watching per-iteration progress through onStep
 * and collecting results through onComplete. A fourth request is
 * cancelled mid-flight from its own onStep callback — the engine
 * abandons its beams immediately and moves on to queued work.
 * Finally, a request is preempted mid-flight: suspend() parks its
 * entire engine state, evictSuspendedKv() drops its KV back to the
 * pool, and after an intervening request completes, resume()
 * continues it — the evicted paths come back as recompute, visible in
 * the request's own KvStats.
 *
 *   ./build/examples/example_async_serving [--problems N] [--help]
 */

#include <algorithm>
#include <iostream>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace fasttts;

    EngineArgs defaults;
    defaults.dataset = "AMC";
    defaults.numBeams = 16;
    defaults.numProblems = 3;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Async serving demo: submit / step / callbacks / cancel");

    ServingOptions opts = args.toServingOptions().value();
    // One extra problem beyond --problems: the cancellation demo.
    opts.problemCount = std::max(opts.problemCount, args.numProblems + 1);
    ServingSystem system = ServingSystem::create(opts).value();

    std::cout << "Async serving demo: " << args.dataset << ", n="
              << args.numBeams << ", " << args.numProblems
              << " requests + 1 cancelled\n\n";

    Table table("Completed requests (async submit/step)");
    table.setHeader({"request", "iterations", "latency s",
                     "goodput tok/s", "beams"});

    int iterations_seen = 0;
    for (int i = 0; i < args.numProblems; ++i) {
        RequestCallbacks callbacks;
        callbacks.onStep = [&iterations_seen](const StepEvent &event) {
            (void)event;
            ++iterations_seen;
        };
        callbacks.onComplete = [&table](RequestId id,
                                        const RequestResult &r) {
            table.addRow({"#" + std::to_string(id),
                          "-",
                          formatDouble(r.completionTime, 1),
                          formatDouble(r.preciseGoodput(), 1),
                          std::to_string(r.completedBeams)});
        };
        // Results are consumed through onComplete; the id is unused.
        (void)system.submit(system.problems()[static_cast<size_t>(i)],
                            callbacks);
    }

    // One more request that cancels itself after two iterations.
    RequestCallbacks cancelling;
    cancelling.onStep = [&system](const StepEvent &event) {
        if (event.iteration == 2)
            checkOk(system.cancel(event.id));
    };
    const RequestId doomed = system.submit(
        system.problems()[static_cast<size_t>(args.numProblems)],
        cancelling);

    // Pump the engine one iteration at a time. Each step() advances
    // the in-flight request and admits queued work as it drains.
    int steps = 0;
    while (system.step())
        ++steps;

    const bool cancelled =
        *system.requestState(doomed) == RequestState::Cancelled;
    table.setCaption("Request #" + std::to_string(doomed)
                     + " was cancelled after 2 iterations; state = "
                     + (cancelled ? "Cancelled" : "?"));
    table.print(std::cout);

    std::cout << "\nPumped " << steps << " engine steps, observed "
              << iterations_seen << " onStep events, "
              << system.pendingRequests() << " requests pending\n";

    // --- Preemption: one engine, two requests, zero extra devices ---
    // Start a victim, park it (KV evicted to the shared pool), serve
    // an "urgent" request on the same engine, then resume the victim.
    const RequestId victim =
        system.submit(system.problems()[0]);
    system.step();
    system.step();
    if (Status s = system.suspend(victim); !s.ok()) {
        std::cerr << s.toString() << "\n";
        return 1;
    }
    const long evicted = system.evictSuspendedKv(victim).value();

    const RequestId urgent = system.submit(system.problems()[1]);
    while (*system.requestState(urgent) != RequestState::Completed)
        system.step();

    if (Status s = system.resume(victim); !s.ok()) {
        std::cerr << s.toString() << "\n";
        return 1;
    }
    system.drain();
    const RequestResult after = *system.result(victim);
    std::cout << "\nPreemption demo: request #" << victim
              << " was suspended and " << evicted
              << " KV tokens force-evicted for #" << urgent
              << "; resumed, it recomputed "
              << after.kvStats.recomputedTokens
              << " tokens (prompt re-prefill included) and still "
              << "completed " << after.completedBeams << " beams in "
              << formatDouble(after.completionTime, 1) << " s\n";
    return 0;
}
