/**
 * @file
 * EngineArgs: flat, string-friendly serving configuration.
 *
 * The vLLM-style front door of the library: every knob a CLI flag or
 * JSON key away, with full validation against the registries and an
 * explicit conversion into ServingOptions. The bench binaries and
 * examples all parse their command line through fromArgv() (so they
 * share one flag vocabulary and a --help that prints the registry
 * contents), and services embedding the library can load the same
 * configuration from a JSON document via fromJson().
 *
 *   EngineArgs defaults;
 *   defaults.dataset = "AMC";
 *   const EngineArgs args =
 *       EngineArgs::parseOrExit(argc, argv, defaults, "my tool");
 *   auto system = ServingSystem::create(args.toServingOptions().value());
 */

#ifndef FASTTTS_API_ENGINE_ARGS_H
#define FASTTTS_API_ENGINE_ARGS_H

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.h"
#include "core/online_server.h"
#include "core/serving.h"

namespace fasttts
{

class Json;

/**
 * One serving configuration in string-friendly form. Every field maps
 * 1:1 to a CLI flag and a JSON key; names are resolved through the
 * registries only at validate()/toServingOptions() time, so custom
 * registrations made before parsing are honoured.
 */
struct EngineArgs
{
    std::string device = "RTX4090";       //!< --device / "device"
    std::string dataset = "AIME";         //!< --dataset / "dataset"
    std::string algorithm = "beam_search"; //!< --algorithm / "algorithm"
    std::string models = "1.5B+1.5B";     //!< --models / "models"
    std::string mode = "fasttts";  //!< --mode: "fasttts" | "baseline"
    int numBeams = 32;        //!< --beams / "num_beams"
    int branchFactor = 4;     //!< --branch-factor / "branch_factor"
    int numProblems = 8;      //!< --problems / "num_problems"
    uint64_t seed = 2026;     //!< --seed / "seed"
    bool offload = false;     //!< --offload / "offload" (Sec. 4.3.2)
    double memoryFraction = 0;  //!< --memory-fraction; 0 keeps the
                                //!< model configuration's default.
    double reservedGiB = -1;    //!< --reserved-gib; negative keeps the
                                //!< engine default.

    // --- Online serving (OnlineServer) ---
    std::string policy = "fifo";   //!< --policy / "policy": admission
                                   //!< order (queuePolicyRegistry()).
    int maxInflight = 1;  //!< --max-inflight / "max_inflight" (1-64).
    double slo = 0;       //!< --slo / "slo": per-request latency
                          //!< budget in seconds; 0 disables.
    std::string arrivals = "poisson"; //!< --arrivals / "arrivals":
                                      //!< 'poisson' or 'bursty'.
    std::string preempt = "slice"; //!< --preempt / "preempt": 'off'
                                   //!< (run-to-completion), 'slice'
                                   //!< (round-robin time slices) or
                                   //!< 'policy' (QueuePolicy-driven
                                   //!< preemption of the victim).
    double kvBudgetGiB = 0; //!< --kv-budget / "kv_budget_gib": shared
                            //!< KV budget (GiB) all in-flight requests
                            //!< contend for; 0 = legacy per-slot
                            //!< accounting.
    bool shedDoomed = false; //!< --shed-doomed / "shed_doomed": shed
                             //!< queued requests whose predicted
                             //!< finish already misses their deadline.
    std::string batching = "off"; //!< --batching / "batching": 'off'
                                  //!< (time-sliced waves) or
                                  //!< 'continuous' (co-scheduled
                                  //!< decode across requests).
    int maxBatchedTokens = 2048; //!< --max-batched-tokens /
                                 //!< "max_batched_tokens": per-wave
                                 //!< token budget under continuous
                                 //!< batching (>= 1).
    int prefillChunk = 512; //!< --prefill-chunk / "prefill_chunk":
                            //!< largest prompt slice per request per
                            //!< wave under continuous batching (>= 1).
    std::string prefixCache = "off"; //!< --prefix-cache /
                                     //!< "prefix_cache": 'off'
                                     //!< (bit-identical legacy
                                     //!< serving) or 'on' (global
                                     //!< cross-request prefix KV
                                     //!< reuse, kv/prefix_index.h).
    double prefixCacheBudgetGiB = 0; //!< --prefix-cache-budget /
                                     //!< "prefix_cache_budget_gib":
                                     //!< cache byte budget (GiB);
                                     //!< 0 = 1/8 of the shared KV
                                     //!< budget.
    std::string faults = "off"; //!< --faults / "faults": 'off'
                                //!< (bit-identical fault-free
                                //!< serving) or 'plan'
                                //!< (deterministic schedule-driven
                                //!< injection per --fault-plan).
    std::string faultPlan;  //!< --fault-plan / "fault_plan": fault
                            //!< schedule JSON (schema in
                            //!< util/fault_injector.h); required
                            //!< when faults == 'plan'.
    int retryMax = 0;       //!< --retry-max / "retry_max": retries
                            //!< per fault-killed request, [0, 16].
    double retryBackoff = 0.05; //!< --retry-backoff /
                                //!< "retry_backoff": base retry
                                //!< backoff in sim seconds (capped
                                //!< exponential growth per attempt).
    double requestTimeout = 0; //!< --request-timeout /
                               //!< "request_timeout": watchdog abort
                               //!< deadline in sim seconds; 0
                               //!< disables.
    std::string kvTier = "off"; //!< --kv-tier / "kv_tier": 'off'
                                //!< (device-only KV, bit-identical
                                //!< legacy serving) or 'host'
                                //!< (budgeted host tier behind a
                                //!< finite-bandwidth link;
                                //!< kv/kv_tier.h).
    double hostKvBudgetGiB = 0; //!< --host-kv-budget /
                                //!< "host_kv_budget_gib": host tier
                                //!< byte budget (GiB); 0 = twice the
                                //!< device KV budget.
    double hostBandwidthGBs = 16; //!< --host-bandwidth /
                                  //!< "host_bandwidth_gbs": host link
                                  //!< bandwidth in GB/s (> 0).
    std::string victimSelect = "admission"; //!< --victim-select /
                                            //!< "victim_select":
                                            //!< 'admission' (legacy
                                            //!< sweep order) or 'cost'
                                            //!< (cheapest-to-restore
                                            //!< first).

    bool helpRequested = false; //!< --help seen; see parseOrExit().

    /**
     * Canonical names of the flags the command line explicitly set
     * ("--problems", "--dataset", ...). Lets tools with figure-fixed
     * configurations reject flags they would otherwise silently
     * ignore.
     */
    std::vector<std::string> parsedFlags;

    /**
     * Parse a command line on top of the given defaults. Recognised
     * flags are listed by help(); "--flag value" and "--flag=value"
     * both work. Bare positional arguments (the pre-PR-2 bench CLI
     * form) are rejected with kInvalidArgument after their
     * one-release deprecation window. Syntax and number-format errors
     * are kInvalidArgument; names are NOT resolved here (call
     * validate()).
     */
    static StatusOr<EngineArgs> fromArgv(int argc, const char *const *argv,
                                         const EngineArgs &defaults);

    static StatusOr<EngineArgs> fromArgv(int argc,
                                         const char *const *argv);

    /**
     * Load from a JSON object on top of the given defaults. Keys are
     * the doc-comment names above ("device", ..., "reserved_gib");
     * unknown keys and type mismatches are kInvalidArgument.
     */
    static StatusOr<EngineArgs> fromJson(const Json &doc,
                                         const EngineArgs &defaults);

    /** Parse a JSON document text, then load as above. */
    static StatusOr<EngineArgs> fromJsonText(const std::string &text,
                                             const EngineArgs &defaults);

    static StatusOr<EngineArgs> fromJsonText(const std::string &text);

    /**
     * Full validation: every name must exist in its registry, numeric
     * fields must be in range, mode must be "fasttts" or "baseline".
     */
    Status validate() const;

    /** Validate, then build the equivalent ServingOptions. */
    StatusOr<ServingOptions> toServingOptions() const;

    /** The OnlineServer queueing configuration (policy, max-inflight,
     *  SLO) these arguments describe; pair with toServingOptions()
     *  for OnlineServer::create(). */
    [[nodiscard]] OnlineServerOptions toOnlineOptions() const;

    /**
     * kInvalidArgument when the command line explicitly set a flag
     * outside the supported set — for tools whose configuration is
     * (partly) fixed, so an ignored flag is an error rather than a
     * silently wrong run.
     */
    Status
    rejectUnsupportedFlags(const std::vector<std::string> &supported) const;

    /**
     * Whether the command line explicitly set
     * the given canonical flag ("--slo", "--problems", ...). Lets
     * tools distinguish "left at default" from "explicitly set to the
     * default value" (e.g. --slo 0 meaning "disable SLOs").
     */
    [[nodiscard]] bool wasSet(const std::string &flag) const;

    /**
     * The flag reference plus the current registry contents (devices,
     * datasets, algorithms, model configs) — the discoverability
     * surface of the CLI.
     */
    [[nodiscard]] static std::string help(const std::string &program);

    /** Just the registered-names block of help() (shared by tools
     *  with their own usage text, e.g. bench_runner). */
    [[nodiscard]] static std::string registryListing();

    /**
     * fromArgv + validate for command-line tools: prints help and
     * exits 0 on --help, prints the error and exits 2 on bad input,
     * otherwise returns the validated arguments.
     * @param description One-line tool description printed atop help.
     */
    [[nodiscard]] static EngineArgs
    parseOrExit(int argc, const char *const *argv,
                const EngineArgs &defaults,
                const std::string &description);

    /**
     * As above, but additionally rejects explicitly-set flags outside
     * `supported` (pass {} for a tool with a fully fixed
     * configuration that only takes --help).
     */
    [[nodiscard]] static EngineArgs
    parseOrExit(int argc, const char *const *argv,
                const EngineArgs &defaults,
                const std::string &description,
                const std::vector<std::string> &supported);
};

} // namespace fasttts

#endif // FASTTTS_API_ENGINE_ARGS_H
