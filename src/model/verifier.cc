#include "model/verifier.h"

#include <cmath>

namespace fasttts
{

SyntheticVerifier::SyntheticVerifier(const ModelSpec &spec) : spec_(spec)
{
    // Verifier reliability improves with scale: ~0.5 sd at 1.5B,
    // ~0.32 sd at 7B. This reproduces the accuracy edge of the
    // verifier-heavy (1.5B+7B) configuration.
    noiseSd_ =
        std::max(0.18, 0.50 - 0.25 * std::log10(spec.numParams / 1.5e9));
}

double
SyntheticVerifier::scoreStep(double quality, Rng &rng) const
{
    const double observed = quality + rng.normal(0.0, noiseSd_);
    return 1.0 / (1.0 + std::exp(-1.2 * observed));
}

} // namespace fasttts
