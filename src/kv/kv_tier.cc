#include "kv/kv_tier.h"

#include <algorithm>
#include <cassert>

namespace fasttts
{

HostKvTier::HostKvTier(double budget_bytes, double bandwidth_bytes_per_s)
    : budget_(std::max(0.0, budget_bytes)),
      bandwidth_(std::max(1.0, bandwidth_bytes_per_s))
{
}

uint64_t
HostKvTier::registerOwner()
{
    return nextOwner_++;
}

void
HostKvTier::releaseOwner(uint64_t owner)
{
    // Entries of one owner are contiguous under the (owner, node) key
    // order; erase the whole range and its LRU mirrors.
    const auto first = entries_.lower_bound(Key{owner, 0});
    auto it = first;
    while (it != entries_.end() && it->first.first == owner) {
        resident_ -= it->second.bytes;
        lru_.erase(it->second.seq);
        it = entries_.erase(it);
    }
    resident_ = std::max(0.0, resident_);
}

void
HostKvTier::erase(const Key &key, const Entry &entry)
{
    resident_ = std::max(0.0, resident_ - entry.bytes);
    lru_.erase(entry.seq);
    entries_.erase(key);
}

bool
HostKvTier::swapOut(uint64_t owner, int node, int tokens, double bytes)
{
    if (bytes <= 0 || bytes > budget_) {
        ++stats_.rejectedNodes;
        return false;
    }
    const Key key{owner, node};
    if (const auto it = entries_.find(key); it != entries_.end())
        erase(key, it->second); // Re-offer replaces the old snapshot.

    // Host LRU: drop the least-recently-swapped entries until the new
    // one fits (the same half-byte float slack as the device ledger).
    while (resident_ + bytes > budget_ + 0.5 && !lru_.empty()) {
        const Key victim = lru_.begin()->second;
        const Entry dropped = entries_.at(victim);
        ++stats_.evictedNodes;
        stats_.evictedBytes += dropped.bytes;
        erase(victim, dropped);
    }
    assert(resident_ + bytes <= budget_ + 0.5);

    Entry entry;
    entry.tokens = tokens;
    entry.bytes = bytes;
    entry.seq = nextSeq_++;
    lru_.emplace(entry.seq, key);
    entries_.emplace(key, entry);
    resident_ += bytes;
    peak_ = std::max(peak_, resident_);
    ++stats_.swappedOutNodes;
    stats_.swappedOutTokens += static_cast<uint64_t>(std::max(0, tokens));
    stats_.swappedOutBytes += bytes;
    return true;
}

bool
HostKvTier::take(uint64_t owner, int node, int tokens)
{
    const Key key{owner, node};
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    const Entry entry = it->second;
    if (entry.tokens != tokens) {
        // The node changed shape since its snapshot (truncated or
        // regrown): the stored KV is wrong-length, drop it and miss.
        ++stats_.staleNodes;
        erase(key, entry);
        return false;
    }
    erase(key, entry);
    ++stats_.swappedInNodes;
    stats_.swappedInTokens += static_cast<uint64_t>(std::max(0, tokens));
    stats_.swappedInBytes += entry.bytes;
    return true;
}

bool
HostKvTier::contains(uint64_t owner, int node) const
{
    return entries_.find(Key{owner, node}) != entries_.end();
}

double
HostKvTier::transferSeconds(double bytes) const
{
    if (bytes <= 0)
        return 0;
    return bytes / bandwidth_;
}

} // namespace fasttts
