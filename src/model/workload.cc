#include "model/workload.h"

#include <cmath>

#include "util/rng.h"

namespace fasttts
{

DatasetProfile
aime2024()
{
    DatasetProfile p;
    p.name = "AIME";
    // Calibrated to paper Fig. 3 (right): average step length in the
    // low hundreds with outliers above 1000 tokens at every step.
    p.stepLenMu = 4.85;
    p.stepLenSigma = 0.85;
    p.minStepTokens = 8;
    p.maxStepTokens = 1200;
    p.maxSteps = 12;
    p.terminalBase = 0.03;
    p.terminalGrowth = 0.09;
    p.difficultyMean = 1.5;
    p.difficultySd = 0.9;
    p.numAnswers = 100; // AIME answers are integers 0..999; model 100.
    p.promptTokens = 180;
    return p;
}

DatasetProfile
amc2023()
{
    DatasetProfile p;
    p.name = "AMC";
    p.stepLenMu = 4.55;
    p.stepLenSigma = 0.75;
    p.minStepTokens = 8;
    p.maxStepTokens = 900;
    p.maxSteps = 10;
    p.terminalBase = 0.06;
    p.terminalGrowth = 0.13;
    p.difficultyMean = 0.1;
    p.difficultySd = 0.8;
    p.numAnswers = 48;
    p.promptTokens = 140;
    return p;
}

DatasetProfile
math500()
{
    DatasetProfile p;
    p.name = "MATH500";
    p.stepLenMu = 4.6;
    p.stepLenSigma = 0.75;
    p.minStepTokens = 8;
    p.maxStepTokens = 1000;
    p.maxSteps = 10;
    p.terminalBase = 0.05;
    p.terminalGrowth = 0.12;
    p.difficultyMean = 0.6;
    p.difficultySd = 0.8;
    p.numAnswers = 64;
    p.promptTokens = 150;
    return p;
}

DatasetProfile
humanEval()
{
    DatasetProfile p;
    p.name = "HumanEval";
    // Code generation: moderately long steps (function bodies), fewer
    // but chunkier reasoning steps, binary-ish outcome space widened to
    // distinct program variants for voting.
    p.stepLenMu = 4.9;
    p.stepLenSigma = 0.65;
    p.minStepTokens = 16;
    p.maxStepTokens = 1000;
    p.maxSteps = 8;
    p.terminalBase = 0.10;
    p.terminalGrowth = 0.16;
    p.difficultyMean = 0.5;
    p.difficultySd = 0.8;
    p.numAnswers = 32;
    p.promptTokens = 220;
    return p;
}

Registry<DatasetProfile> &
datasetRegistry()
{
    static Registry<DatasetProfile> *registry = [] {
        // fasttts-lint: allow(naked-new) leaky registry singleton
        auto *r = new Registry<DatasetProfile>("dataset");
        checkOk(r->add("AIME", aime2024));
        checkOk(r->add("AMC", amc2023));
        checkOk(r->add("MATH500", math500));
        checkOk(r->add("HumanEval", humanEval));
        return r;
    }();
    return *registry;
}

StatusOr<DatasetProfile>
datasetByName(const std::string &name)
{
    return datasetRegistry().create(name);
}

std::vector<Problem>
makeProblems(const DatasetProfile &profile, int count, uint64_t seed)
{
    Rng rng = Rng(seed).fork(0x9a0b);
    std::vector<Problem> problems;
    problems.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        Problem p;
        p.id = i;
        p.difficulty =
            rng.normal(profile.difficultyMean, profile.difficultySd);
        p.seed = rng.next();
        p.promptTokens = std::max(
            16, static_cast<int>(rng.normal(profile.promptTokens,
                                            profile.promptTokens * 0.2)));
        problems.push_back(p);
    }
    return problems;
}

} // namespace fasttts
