#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fasttts
{

namespace
{

const Json kNullJson;
const std::string kEmptyString;

/** Recursive-descent parser over a bounded character range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    Json
    parseDocument()
    {
        Json value = parseValue();
        skipWhitespace();
        if (ok() && pos_ != text_.size())
            fail("trailing characters after document");
        return ok() ? value : Json();
    }

  private:
    bool ok() const { return !failed_; }

    void
    fail(const std::string &message)
    {
        if (failed_)
            return;
        failed_ = true;
        if (error_)
            *error_ = message + " at offset " + std::to_string(pos_);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeLiteral(const char *literal)
    {
        size_t len = 0;
        while (literal[len] != '\0')
            ++len;
        if (text_.compare(pos_, len, literal) != 0) {
            fail("invalid literal");
            return false;
        }
        pos_ += len;
        return true;
    }

    Json
    parseValue()
    {
        skipWhitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        switch (text_[pos_]) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return Json(parseString());
        case 't':
            return consumeLiteral("true") ? Json(true) : Json();
        case 'f':
            return consumeLiteral("false") ? Json(false) : Json();
        case 'n':
            return consumeLiteral("null") ? Json(nullptr) : Json();
        default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        Json object = Json::object();
        ++pos_; // '{'
        skipWhitespace();
        if (consume('}'))
            return object;
        while (ok()) {
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                break;
            }
            std::string key = parseString();
            skipWhitespace();
            if (!consume(':')) {
                fail("expected ':' after object key");
                break;
            }
            object.set(key, parseValue());
            skipWhitespace();
            if (consume('}'))
                break;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                break;
            }
        }
        return object;
    }

    Json
    parseArray()
    {
        Json array = Json::array();
        ++pos_; // '['
        skipWhitespace();
        if (consume(']'))
            return array;
        while (ok()) {
            array.push(parseValue());
            skipWhitespace();
            if (consume(']'))
                break;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                break;
            }
        }
        return array;
    }

    std::string
    parseString()
    {
        std::string out;
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char escape = text_[pos_++];
            switch (escape) {
            case '"':
            case '\\':
            case '/':
                out.push_back(escape);
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("invalid \\u escape");
                        return out;
                    }
                }
                // UTF-8 encode the BMP code point (the harness never
                // emits surrogate pairs).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                fail("invalid escape character");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    parseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("invalid value");
            return Json();
        }
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("invalid number");
            return Json();
        }
        return Json(value);
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

Json
Json::array()
{
    Json value;
    value.type_ = Type::Array;
    return value;
}

Json
Json::object()
{
    Json value;
    value.type_ = Type::Object;
    return value;
}

bool
Json::asBool(bool fallback) const
{
    return isBool() ? bool_ : fallback;
}

double
Json::asNumber(double fallback) const
{
    return isNumber() ? number_ : fallback;
}

const std::string &
Json::asString() const
{
    return isString() ? string_ : kEmptyString;
}

void
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ == Type::Array)
        array_.push_back(std::move(value));
}

size_t
Json::size() const
{
    if (isArray())
        return array_.size();
    if (isObject())
        return object_.size();
    return 0;
}

const Json &
Json::at(size_t index) const
{
    if (!isArray() || index >= array_.size())
        return kNullJson;
    return array_[index];
}

void
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        return;
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

bool
Json::has(const std::string &key) const
{
    for (const auto &member : object_)
        if (member.first == key)
            return true;
    return false;
}

const Json &
Json::operator[](const std::string &key) const
{
    for (const auto &member : object_)
        if (member.first == key)
            return member.second;
    return kNullJson;
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out.push_back('\n');
    return out;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                   : std::string();
    const std::string closePad =
        indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ')
                   : std::string();
    const char *eol = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (type_) {
    case Type::Null:
        out += "null";
        break;
    case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Type::Number: {
        if (!std::isfinite(number_)) {
            out += "null";
            break;
        }
        // Integers print without a fraction (%.0f is exact through
        // 2^53); %.12g round-trips metrics.
        if (number_ == std::floor(number_) &&
            std::fabs(number_) <= 9007199254740992.0) {
            char buffer[32];
            std::snprintf(buffer, sizeof(buffer), "%.0f", number_);
            out += buffer;
        } else {
            char buffer[40];
            std::snprintf(buffer, sizeof(buffer), "%.12g", number_);
            out += buffer;
        }
        break;
    }
    case Type::String:
        out += jsonEscape(string_);
        break;
    case Type::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += eol;
        for (size_t i = 0; i < array_.size(); ++i) {
            out += pad;
            array_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < array_.size())
                out += ',';
            out += eol;
        }
        out += closePad;
        out += ']';
        break;
    }
    case Type::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += eol;
        for (size_t i = 0; i < object_.size(); ++i) {
            out += pad;
            out += jsonEscape(object_[i].first);
            out += colon;
            object_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < object_.size())
                out += ',';
            out += eol;
        }
        out += closePad;
        out += '}';
        break;
    }
    }
}

Json
Json::parse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    Parser parser(text, error);
    return parser.parseDocument();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace fasttts
