/**
 * @file
 * Reproduces paper Fig. 17: the in-depth study of Speculative Beam
 * Extension.
 *
 * Left: compute utilization across time within one iteration, vLLM
 * baseline vs. FastTTS — the baseline decays as beams finish, FastTTS
 * stays high by filling slots with speculative work.
 *
 * Right: impact of the truncation ratio R on goodput (R = 0 discards
 * duplicates' speculative tokens; R = 0.85 aggressively retains them).
 */

#include <iostream>
#include <string>
#include <vector>

#include "api/engine_args.h"
#include "core/engine.h"
#include "core/serving.h"
#include "util/histogram.h"
#include "util/table.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    EngineArgs defaults;
    defaults.numProblems = 5;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Fig.17 speculative beam extension study (datasets and R swept "
        "by the figure)",
        {"--problems", "--seed"});
    const int problems = args.numProblems;

    // --- Left: utilization over one iteration. ---
    Table util_table("Fig.17 (left) generation-phase compute "
                     "utilization over time - AIME 1.5B+1.5B n=32");
    util_table.setHeader({"progress %", "vLLM util %", "FastTTS util %"});
    std::vector<std::vector<double>> samples(2);
    for (int pass = 0; pass < 2; ++pass) {
        FastTtsConfig config = pass ? FastTtsConfig::fastTts()
                                    : FastTtsConfig::baseline();
        config.recordTrace = true;
        const DatasetProfile profile = aime2024();
        auto algo = makeBeamSearch(32, 4);
        FastTtsEngine engine(config, config1_5Bplus1_5B(), rtx4090(),
                             profile, *algo);
        // Run for the utilization trace only; the result is unused.
        (void)engine.runRequest(makeProblems(profile, 2, args.seed)[1]);
        // Sample utilization during generation segments only.
        for (const auto &seg : engine.clock().segments()) {
            if (seg.phase == Phase::Generation) {
                const int reps = std::max(
                    1, static_cast<int>(seg.duration / 0.01));
                for (int r = 0; r < reps; ++r)
                    samples[pass].push_back(seg.computeUtil * 100);
            }
        }
    }
    for (int pct = 0; pct <= 100; pct += 10) {
        auto at = [&](int pass) {
            if (samples[pass].empty())
                return 0.0;
            const size_t i = std::min(
                samples[pass].size() - 1,
                static_cast<size_t>(pct / 100.0
                                    * samples[pass].size()));
            return samples[pass][i];
        };
        util_table.addRow({std::to_string(pct), formatDouble(at(0), 1),
                           formatDouble(at(1), 1)});
    }
    util_table.setCaption("Paper: baseline utilization decays over the "
                          "iteration; FastTTS stays higher and more "
                          "consistent.");
    util_table.print(std::cout);

    // --- Right: truncation ratio sweep. ---
    for (const std::string dataset : {"AIME", "AMC"}) {
        Table table("Fig.17 (right) goodput vs truncation ratio R - "
                    + dataset + " 1.5B+1.5B");
        table.setHeader({"n", "baseline", "R=0.0", "R=0.85"});
        for (int n : {64, 128, 256, 512}) {
            std::vector<double> row;
            for (int pass = 0; pass < 3; ++pass) {
                ServingOptions opts;
                opts.config = pass == 0 ? FastTtsConfig::baseline()
                                        : FastTtsConfig::fastTts();
                if (pass == 1)
                    opts.config.truncationRatio = 0.0;
                if (pass == 2)
                    opts.config.truncationRatio = 0.85;
                opts.models = config1_5Bplus1_5B();
                opts.datasetName = dataset;
                opts.numBeams = n;
                opts.seed = args.seed;
                ServingSystem system =
                    ServingSystem::create(opts).value();
                row.push_back(system.serveProblems(problems).meanGoodput);
            }
            table.addRow(std::to_string(n), row);
        }
        table.setCaption("Paper: R=0.85 (aggressive retention) yields "
                         "more goodput than R=0; both at or above "
                         "baseline.");
        table.print(std::cout);
    }
    return 0;
}
