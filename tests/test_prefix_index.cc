/**
 * @file
 * Tests for the global cross-request prefix index: radix matching,
 * split-on-partial-match refcount inheritance, byte-budget LRU
 * eviction, shared-ledger charge/refund symmetry and determinism.
 */

#include <gtest/gtest.h>

#include <vector>

#include "kv/kv_session.h"
#include "kv/prefix_index.h"
#include "util/fault_injector.h"

namespace fasttts
{
namespace
{

// 1 byte per cached token: a budget of B bytes is B tokens.
constexpr double kTokenByte = 1.0;

std::vector<int32_t>
ids(std::initializer_list<int32_t> tokens)
{
    return std::vector<int32_t>(tokens);
}

TEST(PrefixIndex, EmptyIndexMissesAndPinsOnlyTheRoot)
{
    PrefixIndex index(1024, kTokenByte);
    EXPECT_EQ(index.nodeCount(), 0);
    EXPECT_EQ(index.residentTokens(), 0);
    // The root carries a permanent self-reference so it can never be
    // picked as an eviction victim.
    EXPECT_EQ(index.refCount(PrefixIndex::kRoot), 1);

    const auto miss = index.acquire(ids({1, 2, 3}));
    EXPECT_EQ(miss.matchedTokens, 0);
    EXPECT_EQ(miss.node, PrefixIndex::kRoot);
    // Even a zero-token match pins the root until released.
    EXPECT_EQ(index.refCount(PrefixIndex::kRoot), 2);
    index.release(miss.node);
    EXPECT_EQ(index.refCount(PrefixIndex::kRoot), 1);

    EXPECT_EQ(index.stats().lookups, 1u);
    EXPECT_EQ(index.stats().hits, 0u);
    // kInvalid release is a safe no-op.
    index.release(PrefixIndex::kInvalid);
}

TEST(PrefixIndex, InsertThenAcquireMatchesWholeNodesOnly)
{
    PrefixIndex index(1024, kTokenByte);
    index.insert(ids({1, 2, 3, 4}));
    EXPECT_EQ(index.nodeCount(), 1);
    EXPECT_EQ(index.residentTokens(), 4);
    EXPECT_EQ(index.stats().insertedTokens, 4u);

    const auto exact = index.acquire(ids({1, 2, 3, 4}));
    EXPECT_EQ(exact.matchedTokens, 4);
    index.release(exact.node);

    // A longer prompt mounts the cached node and prefills the tail.
    const auto extended = index.acquire(ids({1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(extended.matchedTokens, 4);
    index.release(extended.node);

    // Matching is full-node only: a prompt ending mid-edge mounts
    // nothing (divergence points become boundaries at insert time).
    const auto partial = index.acquire(ids({1, 2, 3}));
    EXPECT_EQ(partial.matchedTokens, 0);
    index.release(partial.node);

    const auto divergent = index.acquire(ids({9, 9}));
    EXPECT_EQ(divergent.matchedTokens, 0);
    index.release(divergent.node);

    EXPECT_EQ(index.stats().lookups, 4u);
    EXPECT_EQ(index.stats().hits, 2u);
    EXPECT_EQ(index.stats().hitTokens, 8u);
}

TEST(PrefixIndex, PartialInsertSplitsAtTheDivergencePoint)
{
    PrefixIndex index(1024, kTokenByte);
    index.insert(ids({1, 2, 3, 4}));
    index.insert(ids({1, 2, 8, 9}));
    // {1,2} became a prefix node with children {3,4} and {8,9}.
    EXPECT_EQ(index.stats().splits, 1u);
    EXPECT_EQ(index.nodeCount(), 3);
    EXPECT_EQ(index.residentTokens(), 6);

    // The shared prefix is now a node boundary: repeat traffic that
    // diverged yesterday hits exactly today.
    const auto shared = index.acquire(ids({1, 2}));
    EXPECT_EQ(shared.matchedTokens, 2);
    index.release(shared.node);
    const auto left = index.acquire(ids({1, 2, 3, 4}));
    EXPECT_EQ(left.matchedTokens, 4);
    index.release(left.node);
    const auto right = index.acquire(ids({1, 2, 8, 9}));
    EXPECT_EQ(right.matchedTokens, 4);
    index.release(right.node);

    // Splitting re-nodes resident tokens; it never re-charges them.
    EXPECT_EQ(index.stats().insertedTokens, 6u);
}

TEST(PrefixIndex, SplitInheritsRefCountSoOutstandingPinsStayBalanced)
{
    PrefixIndex index(1024, kTokenByte);
    index.insert(ids({1, 2, 3, 4}));
    // Pin the whole path, then split the pinned node in place.
    const auto pin = index.acquire(ids({1, 2, 3, 4}));
    ASSERT_EQ(pin.matchedTokens, 4);
    index.insert(ids({1, 2, 8}));
    EXPECT_EQ(index.stats().splits, 1u);
    // The matched node kept its identity (it now holds {3,4}) and the
    // new prefix node inherited its refcount, so the release walk
    // passes through both and balances exactly.
    EXPECT_EQ(index.refCount(pin.node), 1);
    index.release(pin.node);
    EXPECT_EQ(index.refCount(pin.node), 0);
    EXPECT_EQ(index.refCount(PrefixIndex::kRoot), 1);
}

TEST(PrefixIndex, LruEvictionUnderByteBudget)
{
    // 8-byte budget = 8 cached tokens.
    PrefixIndex index(8, kTokenByte);
    index.insert(ids({1, 2, 3, 4}));
    index.insert(ids({11, 12, 13, 14}));
    EXPECT_EQ(index.residentTokens(), 8);

    // A third insert must evict the least recently used leaf (the
    // first insert) to fit.
    index.insert(ids({21, 22, 23, 24}));
    EXPECT_EQ(index.residentTokens(), 8);
    EXPECT_EQ(index.stats().evictions, 1u);
    EXPECT_EQ(index.stats().evictedTokens, 4u);

    const auto evicted = index.acquire(ids({1, 2, 3, 4}));
    EXPECT_EQ(evicted.matchedTokens, 0);
    index.release(evicted.node);
    const auto survivor = index.acquire(ids({11, 12, 13, 14}));
    EXPECT_EQ(survivor.matchedTokens, 4);
    index.release(survivor.node);
}

TEST(PrefixIndex, PinnedNodesAreNeverEvicted)
{
    PrefixIndex index(8, kTokenByte);
    index.insert(ids({1, 2, 3, 4}));
    const auto pin = index.acquire(ids({1, 2, 3, 4}));
    ASSERT_EQ(pin.matchedTokens, 4);

    index.insert(ids({11, 12, 13, 14}));
    // Budget full, the only unpinned leaf is the second insert: the
    // third insert evicts it, never the mounted path.
    index.insert(ids({21, 22, 23, 24}));
    index.release(pin.node);
    const auto still = index.acquire(ids({1, 2, 3, 4}));
    EXPECT_EQ(still.matchedTokens, 4);
    index.release(still.node);
}

TEST(PrefixIndex, InsertDegradesGracefullyWhenTheBudgetRunsDry)
{
    PrefixIndex index(4, kTokenByte);
    index.insert(ids({1, 2, 3, 4, 5, 6, 7, 8}));
    // Only a 4-token prefix fit; the tail was rejected, not the whole
    // insert.
    EXPECT_EQ(index.residentTokens(), 4);
    EXPECT_EQ(index.stats().insertedTokens, 4u);
    EXPECT_EQ(index.stats().rejectedTokens, 4u);
    const auto prefix = index.acquire(ids({1, 2, 3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(prefix.matchedTokens, 4);
    index.release(prefix.node);
}

TEST(PrefixIndex, LedgerChargeAndRefundStaySymmetric)
{
    KvBudgetLedger ledger(1000);
    {
        PrefixIndex index(8, kTokenByte);
        index.attachLedger(&ledger);
        EXPECT_EQ(index.ledger(), &ledger);

        index.insert(ids({1, 2, 3, 4}));
        EXPECT_DOUBLE_EQ(ledger.usedBytes(), index.residentBytes());
        index.insert(ids({11, 12, 13, 14}));
        EXPECT_DOUBLE_EQ(ledger.usedBytes(), index.residentBytes());
        // Eviction refunds byte-for-byte.
        index.insert(ids({21, 22, 23, 24}));
        EXPECT_GE(index.stats().evictions, 1u);
        EXPECT_DOUBLE_EQ(ledger.usedBytes(), index.residentBytes());
        EXPECT_LE(ledger.usedBytes(), 8.0 + 1e-9);
    }
    // Destruction releases the full remaining charge.
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), 0.0);
}

TEST(PrefixIndex, SharedLedgerCapsResidencyBelowTheLocalBudget)
{
    // The index's own budget is roomy; the shared ledger is the
    // binding constraint, exactly like in-flight KV contention.
    KvBudgetLedger ledger(6);
    PrefixIndex index(1024, kTokenByte);
    index.attachLedger(&ledger);
    index.insert(ids({1, 2, 3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(index.residentTokens(), 6);
    EXPECT_EQ(index.stats().rejectedTokens, 2u);
    EXPECT_DOUBLE_EQ(ledger.usedBytes(), 6.0);
    EXPECT_LE(ledger.usedBytes(), ledger.totalBytes());
}

TEST(PrefixIndex, IdenticalCallSequencesReproduceIdenticalTrees)
{
    auto drive = [](PrefixIndex &index) {
        index.insert(ids({1, 2, 3, 4}));
        index.insert(ids({1, 2, 8, 9}));
        const auto a = index.acquire(ids({1, 2, 3, 4, 5}));
        index.insert(ids({11, 12, 13, 14, 15, 16}));
        index.release(a.node);
        index.insert(ids({1, 2, 8, 9, 10}));
        const auto b = index.acquire(ids({11, 12}));
        index.release(b.node);
    };
    PrefixIndex first(32, kTokenByte);
    PrefixIndex second(32, kTokenByte);
    drive(first);
    drive(second);

    EXPECT_EQ(first.nodeCount(), second.nodeCount());
    EXPECT_EQ(first.residentTokens(), second.residentTokens());
    EXPECT_EQ(first.stats().lookups, second.stats().lookups);
    EXPECT_EQ(first.stats().hits, second.stats().hits);
    EXPECT_EQ(first.stats().hitTokens, second.stats().hitTokens);
    EXPECT_EQ(first.stats().insertedTokens,
              second.stats().insertedTokens);
    EXPECT_EQ(first.stats().rejectedTokens,
              second.stats().rejectedTokens);
    EXPECT_EQ(first.stats().splits, second.stats().splits);
    EXPECT_EQ(first.stats().evictions, second.stats().evictions);
    for (const auto &probe :
         {ids({1, 2}), ids({1, 2, 3, 4}), ids({1, 2, 8, 9, 10}),
          ids({11, 12, 13, 14, 15, 16}), ids({42})}) {
        const auto ma = first.acquire(probe);
        const auto mb = second.acquire(probe);
        EXPECT_EQ(ma.matchedTokens, mb.matchedTokens);
        first.release(ma.node);
        second.release(mb.node);
    }
}

TEST(PrefixIndex, InjectedAcquireFaultForcesMissButStillPinsRoot)
{
    // A prefix_acquire fault models cache corruption: the lookup
    // reports zero matched tokens (full prompt prefill) but follows
    // the normal pin protocol — the caller still holds, and must
    // release, a root pin — and the cached entry itself survives for
    // the next, un-faulted lookup.
    PrefixIndex index(1024, kTokenByte);
    index.insert(ids({1, 2, 3, 4}));

    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"prefix_acquire\", \"rate\": 1.0}]}");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(*plan, 13);
    index.attachFaultInjector(&injector);

    const auto corrupted = index.acquire(ids({1, 2, 3, 4}));
    EXPECT_EQ(corrupted.matchedTokens, 0);
    EXPECT_EQ(corrupted.node, PrefixIndex::kRoot);
    EXPECT_EQ(index.refCount(PrefixIndex::kRoot), 2);
    index.release(corrupted.node);
    EXPECT_EQ(index.refCount(PrefixIndex::kRoot), 1);
    EXPECT_EQ(injector.stats(FaultSite::kPrefixAcquire).injected, 1);

    index.attachFaultInjector(nullptr);
    const auto clean = index.acquire(ids({1, 2, 3, 4}));
    EXPECT_EQ(clean.matchedTokens, 4);
    index.release(clean.node);
}

} // namespace
} // namespace fasttts
