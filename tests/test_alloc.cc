/**
 * @file
 * Tests for the memory planners (Sec. 4.3): the roofline-guided linear
 * search, the budget-boundary property (Eq. 1), tie-breaking, and the
 * offloading dual strategy.
 */

#include <gtest/gtest.h>

#include "alloc/memory_planner.h"
#include "util/units.h"

namespace fasttts
{
namespace
{

class AllocTest : public ::testing::Test
{
  protected:
    AllocTest()
        : roofline_(rtx4090()), gen_(qwen25Math1_5B()),
          ver_(mathShepherd7B())
    {
        shape_.numRequests = 64;
        shape_.verifierSeqLen = 1200;
        shape_.verifierReqLen = 200;
        shape_.decodeLen = 180;
        shape_.avgCacheLen = 900;
    }

    RooflineModel roofline_;
    ModelSpec gen_;
    ModelSpec ver_;
    WorkloadShape shape_;
};

TEST_F(AllocTest, StaticSplitsEvenly)
{
    auto planner = makeStaticPlanner(gen_, ver_, roofline_);
    const auto plan = planner->plan(shape_, 4 * GiB);
    EXPECT_DOUBLE_EQ(plan.generatorKvBytes, 2 * GiB);
    EXPECT_DOUBLE_EQ(plan.verifierKvBytes, 2 * GiB);
    EXPECT_FALSE(plan.offloadActive);
    EXPECT_GE(plan.decodeBatch, 1);
    EXPECT_GE(plan.prefillBatch, 1);
}

TEST_F(AllocTest, RooflinePlanRespectsBudget)
{
    auto planner = makeRooflinePlanner(gen_, ver_, roofline_);
    for (double budget : {0.5 * GiB, 1.0 * GiB, 4.0 * GiB, 12.0 * GiB}) {
        const auto plan = planner->plan(shape_, budget);
        const double used = plan.prefillBatch
                * ver_.kvBytes(shape_.verifierSeqLen)
            + plan.decodeBatch * gen_.kvBytes(shape_.avgCacheLen);
        EXPECT_LE(used, budget * 1.001)
            << "plan exceeds budget at " << toGiB(budget) << " GiB";
        EXPECT_GE(plan.decodeBatch, 1);
        EXPECT_GE(plan.prefillBatch, 1);
    }
}

TEST_F(AllocTest, RooflineBeatsStatic)
{
    // The asymmetric plan never predicts worse total time than the
    // 50/50 split under the same cost model.
    auto roofline_planner = makeRooflinePlanner(gen_, ver_, roofline_);
    auto static_planner = makeStaticPlanner(gen_, ver_, roofline_);
    for (double budget : {1.0 * GiB, 2.0 * GiB, 6.0 * GiB}) {
        const auto a = roofline_planner->plan(shape_, budget);
        const auto s = static_planner->plan(shape_, budget);
        const double ta =
            predictedTotalTime(a, shape_, gen_, ver_, roofline_);
        const double ts =
            predictedTotalTime(s, shape_, gen_, ver_, roofline_);
        EXPECT_LE(ta, ts * 1.0001);
    }
}

TEST_F(AllocTest, MoreMemoryNeverHurts)
{
    auto planner = makeRooflinePlanner(gen_, ver_, roofline_);
    double prev = 1e100;
    for (double budget : {0.5 * GiB, 1.0 * GiB, 2.0 * GiB, 4.0 * GiB,
                          8.0 * GiB, 16.0 * GiB}) {
        const auto plan = planner->plan(shape_, budget);
        EXPECT_LE(plan.predictedTime, prev * 1.0001);
        prev = plan.predictedTime;
    }
}

TEST_F(AllocTest, DecodeBatchGrowsWithMemory)
{
    auto planner = makeRooflinePlanner(gen_, ver_, roofline_);
    const auto small = planner->plan(shape_, 1.0 * GiB);
    const auto large = planner->plan(shape_, 12.0 * GiB);
    EXPECT_GT(large.decodeBatch, small.decodeBatch);
}

TEST_F(AllocTest, BatchesCappedByRequests)
{
    auto planner = makeRooflinePlanner(gen_, ver_, roofline_);
    shape_.numRequests = 4;
    const auto plan = planner->plan(shape_, 16.0 * GiB);
    EXPECT_LE(plan.decodeBatch, 4);
    EXPECT_LE(plan.prefillBatch, 4);
}

TEST_F(AllocTest, PredictedTimeFormula)
{
    // ceil(N / B) structure of the paper's T_tot.
    AllocationPlan plan;
    plan.prefillBatch = 10;
    plan.decodeBatch = 16;
    plan.verifierKvBytes = 0; // Forces full-path re-prefill estimate.
    shape_.numRequests = 64;
    const double t =
        predictedTotalTime(plan, shape_, gen_, ver_, roofline_);
    const double expected = 7
            * roofline_.prefillTime(ver_, 10, shape_.verifierSeqLen)
        + 4 * shape_.decodeLen
            * roofline_.decodeStepTime(gen_, 16, shape_.avgCacheLen);
    EXPECT_NEAR(t, expected, 1e-9);
}

TEST_F(AllocTest, CachedVerifierUsesIncrementalLength)
{
    AllocationPlan plan;
    plan.prefillBatch = 8;
    plan.decodeBatch = 8;
    plan.verifierKvBytes = ver_.kvBytes(shape_.verifierSeqLen) * 8;
    const double cached =
        predictedTotalTime(plan, shape_, gen_, ver_, roofline_);
    plan.verifierKvBytes = 0;
    const double uncached =
        predictedTotalTime(plan, shape_, gen_, ver_, roofline_);
    EXPECT_LT(cached, uncached);
}

TEST_F(AllocTest, OffloadChosenWhenMemoryTiny)
{
    // With a budget that cannot hold both working sets, the dual
    // strategy should pick offloading (each phase gets everything).
    auto planner = makeOffloadPlanner(gen_, ver_, roofline_);
    const auto tight = planner->plan(shape_, 0.25 * GiB);
    auto shared_planner = makeRooflinePlanner(gen_, ver_, roofline_);
    const auto shared = shared_planner->plan(shape_, 0.25 * GiB);
    // Offload must never be worse than the shared-budget plan.
    EXPECT_LE(tight.predictedTime, shared.predictedTime * 1.0001);
    if (tight.offloadActive) {
        EXPECT_GT(tight.offloadOverhead, 0);
        EXPECT_DOUBLE_EQ(tight.generatorKvBytes, 0.25 * GiB);
        EXPECT_DOUBLE_EQ(tight.verifierKvBytes, 0.25 * GiB);
    }
}

TEST_F(AllocTest, OffloadNotChosenWhenMemoryAmple)
{
    auto planner = makeOffloadPlanner(gen_, ver_, roofline_);
    const auto plan = planner->plan(shape_, 16.0 * GiB);
    EXPECT_FALSE(plan.offloadActive);
}

TEST_F(AllocTest, PlannerNames)
{
    EXPECT_EQ(makeStaticPlanner(gen_, ver_, roofline_)->name(),
              "static_50_50");
    EXPECT_EQ(makeRooflinePlanner(gen_, ver_, roofline_)->name(),
              "roofline_guided");
    EXPECT_EQ(makeOffloadPlanner(gen_, ver_, roofline_)->name(),
              "roofline_offload");
}

/** Fig. 10 property sweep: as memory grows, the optimal decode batch
 *  dominates the allocation and throughput saturates. */
class RooflineAllocationSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RooflineAllocationSweep, LinearSearchMatchesBruteForce)
{
    const double budget = GetParam() * GiB;
    RooflineModel roofline(rtx4090());
    const ModelSpec gen = qwen25Math1_5B();
    const ModelSpec ver = skywork1_5B();
    WorkloadShape shape;
    shape.numRequests = 128;
    shape.verifierSeqLen = 1000;
    shape.verifierReqLen = 180;
    shape.decodeLen = 180;
    shape.avgCacheLen = 800;

    auto planner = makeRooflinePlanner(gen, ver, roofline);
    const auto plan = planner->plan(shape, budget);

    // Brute force over the same feasible grid (b_pre = 1 is always
    // admissible, as in the planner's search).
    double best = 1e100;
    for (int b_pre = 1; b_pre <= shape.numRequests; ++b_pre) {
        AllocationPlan p;
        p.prefillBatch = b_pre;
        p.verifierKvBytes = b_pre * ver.kvBytes(shape.verifierSeqLen);
        if (b_pre > 1
            && p.verifierKvBytes + gen.kvBytes(shape.avgCacheLen)
                > budget) {
            continue; // Infeasible: no room for even one decode seq.
        }
        p.generatorKvBytes =
            std::max(0.0, budget - p.verifierKvBytes);
        p.decodeBatch = std::min(
            shape.numRequests,
            std::max(1, static_cast<int>(p.generatorKvBytes
                                         / gen.kvBytes(
                                             shape.avgCacheLen))));
        best = std::min(
            best, predictedTotalTime(p, shape, gen, ver, roofline));
    }
    EXPECT_NEAR(plan.predictedTime, best, best * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, RooflineAllocationSweep,
                         ::testing::Values(0.0625, 0.125, 0.25, 0.5, 1.0,
                                           2.0, 4.0, 8.0, 16.0));

} // namespace
} // namespace fasttts
