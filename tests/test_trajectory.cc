/**
 * @file
 * Tests for the deterministic trajectory draws — the foundation of the
 * algorithmic-equivalence guarantee.
 */

#include <gtest/gtest.h>

#include <climits>

#include "core/trajectory.h"

namespace fasttts
{
namespace
{

class TrajectoryTest : public ::testing::Test
{
  protected:
    DatasetProfile profile_ = aime2024();
    SyntheticGenerator gen_{qwen25Math1_5B(), profile_};
    SyntheticVerifier ver_{skywork1_5B()};
    Problem problem_ = makeProblems(profile_, 1, 42)[0];
};

TEST_F(TrajectoryTest, DrawStepIsPure)
{
    const uint64_t seed = rootLineageSeed(problem_, 0);
    const StepDraw a = drawStep(gen_, problem_, seed, 3, 0.2, INT_MAX);
    const StepDraw b = drawStep(gen_, problem_, seed, 3, 0.2, INT_MAX);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_DOUBLE_EQ(a.quality, b.quality);
    EXPECT_EQ(a.terminal, b.terminal);
    EXPECT_EQ(a.answer, b.answer);
}

TEST_F(TrajectoryTest, DifferentStepsDiffer)
{
    const uint64_t seed = rootLineageSeed(problem_, 0);
    const StepDraw a = drawStep(gen_, problem_, seed, 3, 0.2, INT_MAX);
    const StepDraw b = drawStep(gen_, problem_, seed, 4, 0.2, INT_MAX);
    EXPECT_TRUE(a.tokens != b.tokens || a.quality != b.quality);
}

TEST_F(TrajectoryTest, CapTruncatesTokensOnly)
{
    const uint64_t seed = rootLineageSeed(problem_, 1);
    const StepDraw full = drawStep(gen_, problem_, seed, 0, 0.0, INT_MAX);
    const StepDraw capped = drawStep(gen_, problem_, seed, 0, 0.0, 64);
    EXPECT_LE(capped.tokens, 64);
    EXPECT_DOUBLE_EQ(full.quality, capped.quality);
    EXPECT_EQ(full.terminal, capped.terminal);
}

TEST_F(TrajectoryTest, ScoreIsPureAndIndependentOfGenerationLane)
{
    const uint64_t seed = rootLineageSeed(problem_, 2);
    const double s1 = drawScore(ver_, seed, 5, 0.3);
    const double s2 = drawScore(ver_, seed, 5, 0.3);
    EXPECT_DOUBLE_EQ(s1, s2);
    // Different step -> different observation noise (almost surely).
    const double s3 = drawScore(ver_, seed, 6, 0.3);
    EXPECT_NE(s1, s3);
}

TEST_F(TrajectoryTest, ChildSeedsAreDistinct)
{
    const uint64_t parent = rootLineageSeed(problem_, 0);
    const uint64_t c0 = childLineageSeed(parent, 2, 0);
    const uint64_t c1 = childLineageSeed(parent, 2, 1);
    const uint64_t other_step = childLineageSeed(parent, 3, 0);
    EXPECT_NE(c0, c1);
    EXPECT_NE(c0, other_step);
    EXPECT_EQ(c0, childLineageSeed(parent, 2, 0));
}

TEST_F(TrajectoryTest, RootSeedsPerBeamDistinct)
{
    EXPECT_NE(rootLineageSeed(problem_, 0), rootLineageSeed(problem_, 1));
    const Problem other = makeProblems(profile_, 2, 43)[1];
    EXPECT_NE(rootLineageSeed(problem_, 0), rootLineageSeed(other, 0));
}

TEST_F(TrajectoryTest, RootQualityDeterministic)
{
    EXPECT_DOUBLE_EQ(rootQuality(gen_, problem_, 4),
                     rootQuality(gen_, problem_, 4));
    EXPECT_NE(rootQuality(gen_, problem_, 4),
              rootQuality(gen_, problem_, 5));
}

TEST_F(TrajectoryTest, GenerationAndVerifierLanesAreSeparate)
{
    // Consuming the generation lane must not perturb the verifier
    // lane: draw order independence.
    const uint64_t seed = rootLineageSeed(problem_, 3);
    const double before = drawScore(ver_, seed, 2, 0.1);
    (void)drawStep(gen_, problem_, seed, 2, 0.1, INT_MAX);
    const double after = drawScore(ver_, seed, 2, 0.1);
    EXPECT_DOUBLE_EQ(before, after);
}

} // namespace
} // namespace fasttts
