/**
 * @file
 * Tests for the synthetic workload, generator and verifier models,
 * including the Fig. 3 (right) step-length calibration.
 */

#include <gtest/gtest.h>

#include "model/generator.h"
#include "model/verifier.h"
#include "model/workload.h"
#include "util/histogram.h"

namespace fasttts
{
namespace
{

TEST(Workload, DatasetRegistry)
{
    EXPECT_EQ(datasetByName("AIME")->name, "AIME");
    EXPECT_EQ(datasetByName("AMC")->name, "AMC");
    EXPECT_EQ(datasetByName("MATH500")->name, "MATH500");
    EXPECT_EQ(datasetByName("HumanEval")->name, "HumanEval");
    // Unknown names are a hard error that lists the valid names.
    const auto unknown = datasetByName("unknown");
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
    EXPECT_NE(unknown.status().message().find("MATH500"),
              std::string::npos);
}

TEST(Workload, ProblemsAreDeterministic)
{
    const auto a = makeProblems(aime2024(), 16, 7);
    const auto b = makeProblems(aime2024(), 16, 7);
    ASSERT_EQ(a.size(), 16u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_DOUBLE_EQ(a[i].difficulty, b[i].difficulty);
    }
}

TEST(Workload, DifferentSeedsGiveDifferentProblems)
{
    const auto a = makeProblems(aime2024(), 4, 7);
    const auto b = makeProblems(aime2024(), 4, 8);
    EXPECT_NE(a[0].seed, b[0].seed);
}

TEST(Workload, AimeHarderThanAmc)
{
    const auto aime = makeProblems(aime2024(), 200, 1);
    const auto amc = makeProblems(amc2023(), 200, 1);
    double aime_mean = 0;
    double amc_mean = 0;
    for (int i = 0; i < 200; ++i) {
        aime_mean += aime[static_cast<size_t>(i)].difficulty;
        amc_mean += amc[static_cast<size_t>(i)].difficulty;
    }
    EXPECT_GT(aime_mean / 200, amc_mean / 200 + 0.5);
}

TEST(Generator, StepLengthsRespectBounds)
{
    const auto profile = aime2024();
    SyntheticGenerator gen(qwen25Math1_5B(), profile);
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const int len = gen.sampleStepTokens(i % 10, rng);
        EXPECT_GE(len, profile.minStepTokens);
        EXPECT_LE(len, profile.maxStepTokens);
    }
}

TEST(Generator, Fig3StepLengthCalibration)
{
    // Paper Fig. 3 (right): on AIME the average step length is in the
    // low hundreds while outliers approach the per-step cap, at every
    // step index.
    SyntheticGenerator gen(qwen25Math1_5B(), aime2024());
    Rng rng(11);
    for (int step : {0, 3, 6, 9}) {
        SummaryStats stats;
        for (int i = 0; i < 20000; ++i)
            stats.add(gen.sampleStepTokens(step, rng));
        EXPECT_GT(stats.mean(), 80);
        EXPECT_LT(stats.mean(), 350);
        EXPECT_GT(stats.max(), 1000); // Heavy tail.
        EXPECT_GT(stats.max(), 4 * stats.mean());
    }
}

TEST(Generator, TerminalProbabilityIncreasesWithDepth)
{
    SyntheticGenerator gen(qwen25Math1_5B(), aime2024());
    Rng rng(5);
    auto terminal_rate = [&](int step) {
        int hits = 0;
        for (int i = 0; i < 20000; ++i)
            hits += gen.sampleTerminal(step, rng) ? 1 : 0;
        return hits / 20000.0;
    };
    EXPECT_LT(terminal_rate(0), terminal_rate(5));
    EXPECT_LT(terminal_rate(5), terminal_rate(9));
}

TEST(Generator, TerminalForcedAtMaxSteps)
{
    const auto profile = aime2024();
    SyntheticGenerator gen(qwen25Math1_5B(), profile);
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(gen.sampleTerminal(profile.maxSteps - 1, rng));
}

TEST(Generator, LargerModelHasHigherSkill)
{
    SyntheticGenerator small(qwen25Math1_5B(), aime2024());
    SyntheticGenerator large(qwen25Math7B(), aime2024());
    EXPECT_GT(large.skill(), small.skill());
    EXPECT_NEAR(small.skill(), 0.0, 0.02);
}

TEST(Generator, QualityIsMeanReverting)
{
    SyntheticGenerator gen(qwen25Math1_5B(), aime2024());
    Rng rng(9);
    // From a very high start, expected next quality moves down.
    double total = 0;
    for (int i = 0; i < 5000; ++i)
        total += gen.evolveQuality(5.0, rng);
    EXPECT_LT(total / 5000, 4.5);
    // From a very low start, it moves up.
    total = 0;
    for (int i = 0; i < 5000; ++i)
        total += gen.evolveQuality(-5.0, rng);
    EXPECT_GT(total / 5000, -4.5);
}

TEST(Generator, CorrectProbabilityMonotone)
{
    SyntheticGenerator gen(qwen25Math1_5B(), aime2024());
    Problem p;
    p.difficulty = 1.0;
    EXPECT_LT(gen.correctProbability(-1.0, p),
              gen.correctProbability(0.5, p));
    EXPECT_LT(gen.correctProbability(0.5, p),
              gen.correctProbability(2.0, p));
    EXPECT_GT(gen.correctProbability(1.0, p), 0.45);
    EXPECT_LT(gen.correctProbability(1.0, p), 0.55);
}

TEST(Generator, AnswerZeroIsCorrectAndMoreLikelyWhenEasy)
{
    SyntheticGenerator gen(qwen25Math1_5B(), aime2024());
    Problem easy;
    easy.difficulty = -3.0;
    Problem hard;
    hard.difficulty = 3.0;
    Rng rng(12);
    int easy_correct = 0;
    int hard_correct = 0;
    for (int i = 0; i < 2000; ++i) {
        easy_correct += gen.sampleAnswer(0.0, easy, rng) == 0 ? 1 : 0;
        hard_correct += gen.sampleAnswer(0.0, hard, rng) == 0 ? 1 : 0;
    }
    EXPECT_GT(easy_correct, 1900);
    EXPECT_LT(hard_correct, 100);
}

TEST(Generator, WrongAnswersCluster)
{
    // Zipf-skewed wrong answers: answer 1 more common than answer 5.
    SyntheticGenerator gen(qwen25Math1_5B(), aime2024());
    Problem hard;
    hard.difficulty = 10.0;
    Rng rng(13);
    std::vector<int> counts(gen.profile().numAnswers, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[static_cast<size_t>(gen.sampleAnswer(0.0, hard, rng))];
    EXPECT_EQ(counts[0], 0);
    EXPECT_GT(counts[1], counts[5]);
    EXPECT_GT(counts[1], counts[20]);
}

TEST(Verifier, ScoreInUnitInterval)
{
    SyntheticVerifier ver(skywork1_5B());
    Rng rng(21);
    for (double q : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
        for (int i = 0; i < 100; ++i) {
            const double s = ver.scoreStep(q, rng);
            EXPECT_GT(s, 0.0);
            EXPECT_LT(s, 1.0);
        }
    }
}

TEST(Verifier, ScoreTracksQuality)
{
    SyntheticVerifier ver(skywork1_5B());
    Rng rng(22);
    double low = 0;
    double high = 0;
    for (int i = 0; i < 5000; ++i) {
        low += ver.scoreStep(-1.0, rng);
        high += ver.scoreStep(1.0, rng);
    }
    EXPECT_GT(high / 5000, low / 5000 + 0.3);
}

TEST(Verifier, LargerVerifierIsLessNoisy)
{
    SyntheticVerifier small(skywork1_5B());
    SyntheticVerifier large(mathShepherd7B());
    EXPECT_LT(large.noiseSd(), small.noiseSd());
}

TEST(Verifier, RankingAccuracyImprovesWithScale)
{
    // A larger PRM orders a good and a bad path correctly more often.
    Rng rng(23);
    auto ranking_accuracy = [&](const ModelSpec &spec) {
        SyntheticVerifier ver(spec);
        int correct = 0;
        const int trials = 20000;
        for (int i = 0; i < trials; ++i) {
            const double good = ver.scoreStep(0.5, rng);
            const double bad = ver.scoreStep(-0.5, rng);
            correct += good > bad ? 1 : 0;
        }
        return correct / static_cast<double>(trials);
    };
    const double small = ranking_accuracy(skywork1_5B());
    const double large = ranking_accuracy(mathShepherd7B());
    EXPECT_GT(large, small);
    EXPECT_GT(small, 0.75);
}

} // namespace
} // namespace fasttts
