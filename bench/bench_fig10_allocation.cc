/**
 * @file
 * Reproduces paper Fig. 10: the Roofline-Guided KV Allocation policy.
 *
 * For each available KV budget, prints the optimal prefill and decode
 * batch sizes chosen by the Sec. 4.3.1 linear search, and the
 * normalized throughput of the resulting plan.
 *
 * Expectation: the optimal decode batch grows steadily with memory
 * (decode is memory-hungry), the prefill batch stays small, and
 * throughput saturates at large budgets.
 */

#include <iostream>
#include <vector>

#include "alloc/memory_planner.h"
#include "api/engine_args.h"
#include "util/table.h"
#include "util/units.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    // Fixed configuration: parsed only for --help and to reject
    // unsupported flags; the parsed values are deliberately unused.
    (void)EngineArgs::parseOrExit(
        argc, argv, EngineArgs(),
        "Fig.10 roofline-guided KV allocation (analytic planner sweep; "
        "the figure's configuration is fixed)",
        {});

    RooflineModel roofline(rtx4090());
    const ModelSpec gen = qwen25Math1_5B();
    const ModelSpec ver = skywork1_5B();

    WorkloadShape shape;
    shape.numRequests = 512;
    shape.verifierSeqLen = 1100;
    shape.verifierReqLen = 190;
    shape.decodeLen = 180;
    shape.avgCacheLen = 900;

    auto planner = makeRooflinePlanner(gen, ver, roofline);

    const std::vector<double> budgets = {0.06, 0.12, 0.25, 0.5, 1.0,
                                         2.0,  4.0,  8.0,  16.0};
    // Normalize against the plan at the largest budget.
    const double t_best =
        planner->plan(shape, budgets.back() * GiB).predictedTime;

    Table table("Fig.10 roofline-guided KV allocation (1.5B gen + 1.5B "
                "PRM, N=512)");
    table.setHeader({"KV GiB", "opt prefill batch", "opt decode batch",
                     "norm throughput %"});
    for (double gib : budgets) {
        const auto plan = planner->plan(shape, gib * GiB);
        table.addRow({formatDouble(gib, 2),
                      std::to_string(plan.prefillBatch),
                      std::to_string(plan.decodeBatch),
                      formatDouble(100.0 * t_best / plan.predictedTime,
                                   1)});
    }
    table.setCaption("Paper: decode batch dominates as memory grows; "
                     "throughput (line) rises steeply then saturates. "
                     "The search runs in <1 ms per invocation.");
    table.print(std::cout);
    return 0;
}
