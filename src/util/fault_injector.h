/**
 * @file
 * Deterministic, schedule-driven fault injection.
 *
 * The serving stack has four injection sites threaded through its
 * layers; a FaultInjector decides — reproducibly — whether each
 * probed operation fails. A fault plan is a list of rules, each
 * selecting along **four axes**:
 *
 *  1. **Site** — where in the stack the fault strikes:
 *     - `kWaveStep`: a transient device error during an engine wave
 *       step. The serving layer kills the affected in-flight request
 *       with `StatusCode::kUnavailable` (retryable).
 *     - `kKvAlloc`: a KV allocation brownout. The probed
 *       `KvBudgetLedger::charge` refuses as if the budget were
 *       exhausted; the engine's existing refusal path (deferred
 *       first-touch recompute) absorbs it.
 *     - `kKvRestore`: a restore failure during `KvSession::resume`.
 *       The affected frontier leaf stays cold and is recomputed on
 *       first touch instead of being restored.
 *     - `kPrefixAcquire`: prefix-cache corruption. The probed
 *       `PrefixIndex::acquire` reports a miss (zero matched tokens),
 *       forcing a full prompt prefill.
 *  2. **Sim-time window** — `[windowStart, windowEnd)` in simulated
 *     seconds; the ambient time is supplied via setNow() by whoever
 *     owns the clock (the online serve loop). Rules outside the
 *     window are dormant.
 *  3. **Request id** — a specific online request id, or -1 to match
 *     any. Deep sites (ledger, prefix index) probe without a request
 *     id and only any-request rules apply to them.
 *  4. **Rate** — per-probe fault probability in [0, 1]. When several
 *     rules arm the same probe the combined probability is
 *     1 - prod(1 - rate_i), i.e. independent failure sources.
 *
 * Determinism contract: all randomness comes from one dedicated RNG
 * stream forked off the serving seed, and a probe draws from it
 * *only* when at least one rule is armed for that probe. Replaying
 * the same plan against the same deterministic simulation therefore
 * reproduces the fault sequence bit-for-bit — the property the
 * online_fault_tolerance benchmark and the differential
 * `--faults off` byte-identity test both rely on. Fault paths must
 * never touch `rand()`/`std::random_device` (enforced by the
 * fault-rand lint rule).
 */

#ifndef FASTTTS_UTIL_FAULT_INJECTOR_H
#define FASTTTS_UTIL_FAULT_INJECTOR_H

#include <limits>
#include <string>
#include <vector>

#include "api/status.h"
#include "util/rng.h"

namespace fasttts
{

/** Where in the serving stack a fault rule strikes. */
enum class FaultSite {
    kWaveStep = 0,  //!< Engine wave step: transient device error.
    kKvAlloc = 1,   //!< KvBudgetLedger::charge: allocation refusal.
    kKvRestore = 2, //!< KvSession::resume: leaf restore failure.
    kPrefixAcquire = 3, //!< PrefixIndex::acquire: forced cache miss.
};

/** Number of distinct FaultSite values (for stats arrays). */
inline constexpr int kNumFaultSites = 4;

/** The plan-JSON name of a site ("wave_step", "kv_alloc", ...). */
const char *faultSiteName(FaultSite site);

/** Parse a plan-JSON site name; kNotFound for unknown names. */
StatusOr<FaultSite> faultSiteFromName(const std::string &name);

/**
 * One arming rule of a fault plan: at `site`, within the sim-time
 * window [windowStart, windowEnd), for `requestId` (-1 = any), fail
 * each probe with probability `rate`.
 */
struct FaultRule {
    FaultSite site = FaultSite::kWaveStep;
    double rate = 0.0;
    double windowStart = 0.0;
    double windowEnd = std::numeric_limits<double>::infinity();
    long requestId = -1; //!< -1 matches every request (and no-id probes).
};

/**
 * A deterministic fault schedule: the rule list a FaultInjector
 * evaluates on every probe.
 */
struct FaultPlan {
    std::vector<FaultRule> rules;

    /**
     * Parse the `--fault-plan` JSON text:
     *
     *   {"rules": [{"site": "wave_step", "rate": 0.05,
     *               "start": 0, "end": 1e9, "request": -1}, ...]}
     *
     * "site" and "rate" are required per rule; "start" (default 0),
     * "end" (default +inf) and "request" (default -1 = any) are
     * optional.
     */
    static StatusOr<FaultPlan> fromJsonText(const std::string &text);

    /** All four sites armed at `rate` for all time, any request. */
    static FaultPlan uniform(double rate);
};

/** Probe/injection counters for one site. */
struct FaultSiteStats {
    long probes = 0;   //!< shouldFault() calls at this site.
    long injected = 0; //!< Probes that came back faulted.
};

/**
 * Seeded, schedule-driven fault decision source. Constructed once
 * per online trace (only when `--faults plan`); the serve loop keeps
 * its ambient sim time current via setNow() and every instrumented
 * layer probes shouldFault() at its injection site.
 */
class FaultInjector
{
  public:
    /**
     * `seed` is the serving master seed; the injector forks its own
     * stream so fault draws never perturb problem-set or engine
     * randomness.
     */
    FaultInjector(FaultPlan plan, uint64_t seed)
        : plan_(std::move(plan)), rng_(Rng::mix(seed, 0xFA17))
    {}

    /** Advance the ambient sim time used for window matching. */
    void setNow(double now) { now_ = now; }

    [[nodiscard]] double now() const { return now_; }

    /**
     * Decide whether the probed operation faults. Draws from the
     * dedicated RNG only when at least one rule is armed (site
     * matches, now() inside the window, and the rule's requestId is
     * -1 or equals `request_id`); unarmed probes consume no
     * randomness, so `--faults off` runs and out-of-window spans are
     * bit-identical to a build without the injector.
     */
    [[nodiscard]] bool shouldFault(FaultSite site, long request_id = -1);

    /** Counters for one site. */
    [[nodiscard]] const FaultSiteStats &
    stats(FaultSite site) const
    {
        return stats_[static_cast<int>(site)];
    }

    /** Total faults injected across all sites. */
    [[nodiscard]] long injectedCount() const;

    /** Total probes across all sites. */
    [[nodiscard]] long probeCount() const;

  private:
    FaultPlan plan_;
    Rng rng_;
    double now_ = 0.0;
    FaultSiteStats stats_[kNumFaultSites];
};

} // namespace fasttts

#endif // FASTTTS_UTIL_FAULT_INJECTOR_H
