#include "sched/queue_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace fasttts
{

namespace
{

/**
 * Expected reasoning depth of a profile's termination process:
 * survival through step k requires not terminating after steps
 * 1..k-1. Shared by the service-time and working-set predictors so
 * the admission gate and the SJF/shedding cost estimate can never
 * desynchronize.
 */
double
expectedSteps(const DatasetProfile &profile)
{
    double survival = 1.0;
    double steps = 0.0;
    for (int k = 1; k <= profile.maxSteps; ++k) {
        steps += survival;
        const double p_terminal = std::min(
            1.0, profile.terminalBase + profile.terminalGrowth * (k - 1));
        survival *= 1.0 - p_terminal;
    }
    return steps;
}

/** Clamp a raw step-length estimate to the profile's support. */
double
clampStepTokens(const DatasetProfile &profile, double raw)
{
    return std::clamp(raw, static_cast<double>(profile.minStepTokens),
                      static_cast<double>(profile.maxStepTokens));
}

/**
 * Shared argmin scan: smallest key wins, ties broken by earlier
 * arrival, then by lower submission id so every policy is a total,
 * deterministic order.
 */
template <typename KeyFn>
size_t
pickByKey(const std::vector<QueuedRequest> &pending, KeyFn key)
{
    size_t best = 0;
    for (size_t i = 1; i < pending.size(); ++i) {
        const double a = key(pending[i]);
        const double b = key(pending[best]);
        if (a < b
            || (a == b
                && (pending[i].arrival < pending[best].arrival
                    || (pending[i].arrival == pending[best].arrival
                        && pending[i].id < pending[best].id))))
            best = i;
    }
    return best;
}

class FifoPolicy final : public QueuePolicy
{
  public:
    std::string name() const override { return "fifo"; }

    size_t
    pick(const std::vector<QueuedRequest> &pending, double) override
    {
        return pickByKey(pending,
                         [](const QueuedRequest &r) { return r.arrival; });
    }
};

class PriorityPolicy final : public QueuePolicy
{
  public:
    explicit PriorityPolicy(double aging_per_second)
        : agingPerSecond_(aging_per_second)
    {
    }

    std::string name() const override { return "priority"; }

    size_t
    pick(const std::vector<QueuedRequest> &pending, double now) override
    {
        // Negated effective priority so the shared argmin applies;
        // waiting time buys priority, bounding starvation.
        return pickByKey(pending, [&](const QueuedRequest &r) {
            return -(static_cast<double>(r.priority)
                     + agingPerSecond_ * (now - r.arrival));
        });
    }

    bool
    shouldPreempt(const QueuedRequest &running,
                  const QueuedRequest &challenger, double now) override
    {
        const auto effective = [&](const QueuedRequest &r) {
            return static_cast<double>(r.priority)
                + agingPerSecond_ * (now - r.arrival);
        };
        return effective(challenger) > effective(running);
    }

  private:
    double agingPerSecond_;
};

class SjfPolicy final : public QueuePolicy
{
  public:
    std::string name() const override { return "sjf"; }

    size_t
    pick(const std::vector<QueuedRequest> &pending, double) override
    {
        return pickByKey(
            pending,
            [](const QueuedRequest &r) { return r.predictedCost; });
    }

    bool
    shouldPreempt(const QueuedRequest &running,
                  const QueuedRequest &challenger, double) override
    {
        return challenger.predictedCost < running.predictedCost;
    }
};

class EdfPolicy final : public QueuePolicy
{
  public:
    std::string name() const override { return "edf"; }

    size_t
    pick(const std::vector<QueuedRequest> &pending, double) override
    {
        // Deadline-free requests carry +infinity and so sort last.
        return pickByKey(pending,
                         [](const QueuedRequest &r) { return r.deadline; });
    }

    bool
    shouldPreempt(const QueuedRequest &running,
                  const QueuedRequest &challenger, double) override
    {
        return challenger.deadline < running.deadline;
    }
};

} // namespace

std::unique_ptr<QueuePolicy>
makeFifoPolicy()
{
    return std::make_unique<FifoPolicy>();
}

std::unique_ptr<QueuePolicy>
makePriorityPolicy(double aging_per_second)
{
    return std::make_unique<PriorityPolicy>(aging_per_second);
}

std::unique_ptr<QueuePolicy>
makeSjfPolicy()
{
    return std::make_unique<SjfPolicy>();
}

std::unique_ptr<QueuePolicy>
makeEdfPolicy()
{
    return std::make_unique<EdfPolicy>();
}

Registry<std::unique_ptr<QueuePolicy>> &
queuePolicyRegistry()
{
    static Registry<std::unique_ptr<QueuePolicy>> *registry = [] {
        // fasttts-lint: allow(naked-new) leaky registry singleton
        auto *r = new Registry<std::unique_ptr<QueuePolicy>>(
            "queue policy");
        checkOk(r->add("fifo", [] { return makeFifoPolicy(); }));
        checkOk(r->add("priority", [] { return makePriorityPolicy(); }));
        checkOk(r->add("sjf", [] { return makeSjfPolicy(); }));
        checkOk(r->add("edf", [] { return makeEdfPolicy(); }));
        return r;
    }();
    return *registry;
}

StatusOr<std::unique_ptr<QueuePolicy>>
makeQueuePolicy(const std::string &name)
{
    return queuePolicyRegistry().create(name);
}

double
predictServiceTime(const RooflineModel &roofline,
                   const ModelConfig &models,
                   const DatasetProfile &profile, const Problem &problem,
                   int num_beams)
{
    const int beams = std::max(1, num_beams);

    // A TTS iteration decodes until its *longest* beam finishes
    // (stragglers, paper Fig. 3/4), so the per-iteration token count
    // is the expected maximum of `beams` log-normal step draws, not
    // the mean. Extreme-value approximation of the normal max
    // quantile: z_n ~ sqrt(2 ln n) - (ln ln n + ln 4pi) / (2 sqrt(2
    // ln n)).
    double z_max = 0;
    if (beams >= 2) {
        const double ln_n = std::log(static_cast<double>(beams));
        const double root = std::sqrt(2.0 * ln_n);
        z_max = root
            - (std::log(ln_n) + std::log(4.0 * 3.14159265358979))
                / (2.0 * root);
        z_max = std::max(0.0, z_max);
    }
    const double step_tokens = clampStepTokens(
        profile,
        std::exp(profile.stepLenMu + profile.stepLenSigma * z_max));

    const double steps = expectedSteps(profile);

    // Midpoint context: prompt plus half the expected reasoning tokens.
    const double ctx =
        problem.promptTokens + 0.5 * steps * step_tokens;

    const double prompt_prefill =
        roofline.prefillTime(models.generator, 1, problem.promptTokens);
    const double decode_per_step =
        step_tokens
        * roofline.decodeStepTime(models.generator, beams, ctx);
    const double verify_per_step =
        roofline.prefillTime(models.verifier, beams, step_tokens);
    return prompt_prefill + steps * (decode_per_step + verify_per_step);
}

double
predictKvWorkingSetBytes(const ModelConfig &models,
                         const DatasetProfile &profile,
                         const Problem &problem, int num_beams)
{
    const int beams = std::max(1, num_beams);

    // Expected (mean) step length of the log-normal profile, and the
    // same reasoning-depth process as the service-time predictor.
    const double step_tokens = clampStepTokens(
        profile,
        std::exp(profile.stepLenMu
                 + 0.5 * profile.stepLenSigma * profile.stepLenSigma));
    const double steps = expectedSteps(profile);

    // Prefix sharing keeps most of the tree a single trunk; the
    // per-beam unique suffix is about one step deep at any moment.
    const double tree_tokens = problem.promptTokens
        + steps * step_tokens + beams * step_tokens;
    return tree_tokens
        * (models.generator.kvBytesPerToken()
           + models.verifier.kvBytesPerToken());
}

} // namespace fasttts
