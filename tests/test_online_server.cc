/**
 * @file
 * Tests for the online (queued) serving front-end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/online_server.h"
#include "kv/prefix_index.h"

namespace fasttts
{
namespace
{

ServingOptions
smallOptions(bool fast)
{
    ServingOptions opts;
    opts.config =
        fast ? FastTtsConfig::fastTts() : FastTtsConfig::baseline();
    opts.numBeams = 8;
    return opts;
}

TEST(OnlineServer, EmptyTraceIsSafe)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    const auto out = server.serveArrivals({});
    EXPECT_TRUE(out.records.empty());
    EXPECT_EQ(out.meanLatency, 0);
}

TEST(OnlineServer, RecordsAreCausal)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    const auto out = server.serveTrace(6, 0.05, 7);
    ASSERT_EQ(out.records.size(), 6u);
    double prev_finish = 0;
    double prev_arrival = 0;
    for (const auto &rec : out.records) {
        EXPECT_GE(rec.arrival, prev_arrival);   // Sorted arrivals.
        EXPECT_GE(rec.start, rec.arrival);      // No time travel.
        EXPECT_GE(rec.start, prev_finish - 1e-9); // FIFO device.
        EXPECT_GT(rec.finish, rec.start);
        prev_finish = rec.finish;
        prev_arrival = rec.arrival;
    }
}

TEST(OnlineServer, QueueDelayGrowsWithArrivalRate)
{
    OnlineServer slow = OnlineServer::create(smallOptions(true)).value();
    OnlineServer fast_arrivals =
        OnlineServer::create(smallOptions(true)).value();
    const auto relaxed = slow.serveTrace(8, 0.01, 7);
    const auto saturated = fast_arrivals.serveTrace(8, 10.0, 7);
    EXPECT_GT(saturated.meanQueueDelay, relaxed.meanQueueDelay);
    EXPECT_GT(saturated.utilization, relaxed.utilization);
}

TEST(OnlineServer, FastTtsImprovesOnlineLatency)
{
    // Under the same saturated arrival trace, FastTTS's shorter
    // service times compound through the queue.
    OnlineServer baseline =
        OnlineServer::create(smallOptions(false)).value();
    OnlineServer fast = OnlineServer::create(smallOptions(true)).value();
    const auto b = baseline.serveTrace(6, 1.0, 11);
    const auto f = fast.serveTrace(6, 1.0, 11);
    EXPECT_LT(f.meanLatency, b.meanLatency);
    EXPECT_LE(f.p95Latency, b.p95Latency * 1.001);
    EXPECT_LE(f.makespan, b.makespan);
}

TEST(OnlineServer, DeterministicTraces)
{
    OnlineServer a = OnlineServer::create(smallOptions(true)).value();
    OnlineServer b = OnlineServer::create(smallOptions(true)).value();
    const auto ra = a.serveTrace(5, 0.5, 3);
    const auto rb = b.serveTrace(5, 0.5, 3);
    ASSERT_EQ(ra.records.size(), rb.records.size());
    for (size_t i = 0; i < ra.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(ra.records[i].arrival, rb.records[i].arrival);
        EXPECT_DOUBLE_EQ(ra.records[i].finish, rb.records[i].finish);
    }
}

TEST(OnlineServer, UtilizationInUnitRange)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    const auto out = server.serveTrace(5, 0.2, 9);
    EXPECT_GT(out.utilization, 0.0);
    EXPECT_LE(out.utilization, 1.0);
}

TEST(OnlineServer, P95AtLeastMean)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    const auto out = server.serveTrace(10, 0.5, 13);
    EXPECT_GE(out.p95Latency, out.meanLatency * 0.5);
    EXPECT_GE(out.p95Latency,
              out.records.front().latency() * 0.01);
}

TEST(OnlineServer, EmptyProblemSetIsSafe)
{
    // problemCount = 0 must not reach the modulo in serveArrivals.
    ServingOptions opts = smallOptions(true);
    opts.problemCount = 0;
    OnlineServer server = OnlineServer::create(opts).value();
    const auto out = server.serveTrace(3, 0.5, 7);
    EXPECT_TRUE(out.records.empty());
    EXPECT_EQ(out.meanLatency, 0);
}

TEST(OnlineServer, TracesDoNotAccumulateRequestRecords)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    (void)server.serveTrace(3, 0.5, 7);
    (void)server.serveTrace(3, 0.5, 7);
    EXPECT_EQ(server.system().pendingRequests(), 0u);
    // Records were released after each trace; early ids are gone.
    EXPECT_EQ(server.system().result(1).status().code(),
              StatusCode::kNotFound);
}

TEST(AggregateTrace, EmptyRecordSetIsAllZero)
{
    const auto out = aggregateTrace({}, 0.0);
    EXPECT_TRUE(out.records.empty());
    EXPECT_EQ(out.meanLatency, 0);
    EXPECT_EQ(out.p95Latency, 0);
    EXPECT_EQ(out.meanQueueDelay, 0);
    EXPECT_EQ(out.makespan, 0);
    EXPECT_EQ(out.utilization, 0);
}

TEST(AggregateTrace, ZeroMakespanDoesNotDivide)
{
    // A degenerate record finishing at t=0 must not produce NaN.
    OnlineRequestRecord rec;
    const auto out = aggregateTrace({rec}, 0.0);
    EXPECT_EQ(out.utilization, 0);
    EXPECT_EQ(out.meanLatency, 0);
}

TEST(OnlineServer, CreateRejectsUnknownDataset)
{
    ServingOptions opts;
    opts.datasetName = "nope";
    EXPECT_FALSE(OnlineServer::create(opts).ok());
}

// --- Differential: the policy-driven server at its defaults must
//     reproduce the legacy run-to-completion FIFO server exactly. ---

TEST(OnlineServer, FifoMaxInflightOneMatchesLegacyTraceExactly)
{
    // Independent reimplementation of the legacy OnlineServer: run
    // each problem to completion in arrival order on a fresh system
    // and chain start = max(arrival, device_free).
    const ServingOptions opts = smallOptions(true);
    const std::vector<double> arrivals =
        poissonArrivalTrace(7, 0.08, 21);

    ServingSystem reference = ServingSystem::create(opts).value();
    std::vector<OnlineRequestRecord> expected;
    double device_free = 0;
    double busy = 0;
    for (size_t i = 0; i < arrivals.size(); ++i) {
        const int problem_id = static_cast<int>(
            i % reference.problems().size());
        const RequestResult result = reference.serve(
            reference.problems()[static_cast<size_t>(problem_id)]);
        OnlineRequestRecord rec;
        rec.problemId = problem_id;
        rec.arrival = arrivals[i];
        rec.start = std::max(arrivals[i], device_free);
        rec.finish = rec.start + result.completionTime;
        device_free = rec.finish;
        busy += result.completionTime;
        expected.push_back(rec);
    }
    const OnlineTraceResult want = aggregateTrace(expected, busy);

    // All construction paths: legacy, explicit defaults, and the
    // documented legacy triple --policy fifo --max-inflight 1
    // --preempt off (run-to-completion equals time slicing at K=1).
    OnlineServerOptions defaults;
    ASSERT_EQ(defaults.policy, "fifo");
    ASSERT_EQ(defaults.maxInflight, 1);
    ASSERT_EQ(defaults.preempt, "slice");
    OnlineServerOptions preempt_off = defaults;
    preempt_off.preempt = "off";
    OnlineServer legacy = OnlineServer::create(opts).value();
    OnlineServer explicit_defaults =
        OnlineServer::create(opts, defaults).value();
    OnlineServer run_to_completion =
        OnlineServer::create(opts, preempt_off).value();
    for (OnlineServer *server :
         {&legacy, &explicit_defaults, &run_to_completion}) {
        const OnlineTraceResult got = server->serveTrace(7, 0.08, 21);
        ASSERT_EQ(got.records.size(), want.records.size());
        for (size_t i = 0; i < want.records.size(); ++i) {
            EXPECT_EQ(got.records[i].problemId,
                      want.records[i].problemId);
            EXPECT_DOUBLE_EQ(got.records[i].arrival,
                             want.records[i].arrival);
            EXPECT_DOUBLE_EQ(got.records[i].start,
                             want.records[i].start);
            EXPECT_DOUBLE_EQ(got.records[i].finish,
                             want.records[i].finish);
        }
        EXPECT_DOUBLE_EQ(got.meanLatency, want.meanLatency);
        EXPECT_DOUBLE_EQ(got.p95Latency, want.p95Latency);
        EXPECT_DOUBLE_EQ(got.meanQueueDelay, want.meanQueueDelay);
        EXPECT_DOUBLE_EQ(got.makespan, want.makespan);
        EXPECT_DOUBLE_EQ(got.utilization, want.utilization);
    }
}

TEST(OnlineServer, ServeTraceMatchesPoissonArrivalTrace)
{
    // serveTrace() is exactly serveArrivals() of the Poisson stream.
    OnlineServer a = OnlineServer::create(smallOptions(true)).value();
    OnlineServer b = OnlineServer::create(smallOptions(true)).value();
    const auto via_trace = a.serveTrace(5, 0.5, 3);
    const auto via_arrivals =
        b.serveArrivals(poissonArrivalTrace(5, 0.5, 3));
    ASSERT_EQ(via_trace.records.size(), via_arrivals.records.size());
    for (size_t i = 0; i < via_trace.records.size(); ++i)
        EXPECT_DOUBLE_EQ(via_trace.records[i].finish,
                         via_arrivals.records[i].finish);
}

// --- New aggregate statistics ---

TEST(AggregateTrace, SingleRecordPercentiles)
{
    OnlineRequestRecord rec;
    rec.arrival = 1.0;
    rec.start = 2.0;
    rec.finish = 5.0;
    const auto out = aggregateTrace({rec}, 3.0);
    EXPECT_DOUBLE_EQ(out.meanLatency, 4.0);
    EXPECT_DOUBLE_EQ(out.p50Latency, 4.0);
    EXPECT_DOUBLE_EQ(out.p95Latency, 4.0);
    EXPECT_DOUBLE_EQ(out.p99Latency, 4.0);
    EXPECT_DOUBLE_EQ(out.makespan, 5.0);
}

TEST(AggregateTrace, TwoRecordPercentiles)
{
    OnlineRequestRecord fast;
    fast.arrival = 0.0;
    fast.start = 0.0;
    fast.finish = 2.0; // Latency 2.
    OnlineRequestRecord slow;
    slow.arrival = 0.0;
    slow.start = 2.0;
    slow.finish = 10.0; // Latency 10.
    const auto out = aggregateTrace({fast, slow}, 10.0);
    // Ceil-rank: p50 of two samples is the lower one, p95/p99 the
    // upper.
    EXPECT_DOUBLE_EQ(out.p50Latency, 2.0);
    EXPECT_DOUBLE_EQ(out.p95Latency, 10.0);
    EXPECT_DOUBLE_EQ(out.p99Latency, 10.0);
    EXPECT_DOUBLE_EQ(out.meanLatency, 6.0);
}

TEST(AggregateTrace, EmptyRecordSetNewFieldsAreNeutral)
{
    const auto out = aggregateTrace({}, 0.0);
    EXPECT_EQ(out.p50Latency, 0);
    EXPECT_EQ(out.p99Latency, 0);
    EXPECT_EQ(out.deadlineMisses, 0);
    EXPECT_EQ(out.cancelled, 0);
    EXPECT_DOUBLE_EQ(out.sloAttainment, 1.0);
}

TEST(AggregateTrace, SloAttainmentCountsOnlyDeadlineBearers)
{
    OnlineRequestRecord met;
    met.finish = 5.0;
    met.deadline = 10.0;
    OnlineRequestRecord missed;
    missed.finish = 12.0;
    missed.deadline = 10.0;
    OnlineRequestRecord no_slo; // Infinite deadline: excluded.
    no_slo.finish = 100.0;
    const auto out = aggregateTrace({met, missed, no_slo}, 1.0);
    EXPECT_DOUBLE_EQ(out.sloAttainment, 0.5);
    EXPECT_EQ(out.deadlineMisses, 1);
}

TEST(OnlineServer, SloBudgetSetsDeadlinesAndAttainment)
{
    ServingOptions opts = smallOptions(true);
    OnlineServerOptions tight;
    tight.slo = 1e-3; // Impossible budget: everything misses.
    OnlineServer tight_server =
        OnlineServer::create(opts, tight).value();
    const auto missed = tight_server.serveTrace(4, 0.5, 7);
    EXPECT_DOUBLE_EQ(missed.sloAttainment, 0.0);
    EXPECT_EQ(missed.deadlineMisses, 4);

    OnlineServerOptions loose;
    loose.slo = 1e9; // Unmissable budget.
    OnlineServer loose_server =
        OnlineServer::create(opts, loose).value();
    const auto met = loose_server.serveTrace(4, 0.5, 7);
    EXPECT_DOUBLE_EQ(met.sloAttainment, 1.0);
    EXPECT_EQ(met.deadlineMisses, 0);
    for (const auto &rec : met.records)
        EXPECT_TRUE(rec.hasDeadline());

    // No SLO configured: records carry no deadline, attainment is
    // vacuously 1.
    OnlineServer none = OnlineServer::create(opts).value();
    const auto out = none.serveTrace(4, 0.5, 7);
    EXPECT_DOUBLE_EQ(out.sloAttainment, 1.0);
    for (const auto &rec : out.records)
        EXPECT_FALSE(rec.hasDeadline());
}

// --- Option and request validation ---

TEST(OnlineServer, CreateRejectsBadOnlineOptions)
{
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions bad_policy;
    bad_policy.policy = "round_robin";
    const auto unknown = OnlineServer::create(opts, bad_policy);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
    EXPECT_NE(unknown.status().message().find("fifo"),
              std::string::npos);

    OnlineServerOptions zero_inflight;
    zero_inflight.maxInflight = 0;
    EXPECT_EQ(OnlineServer::create(opts, zero_inflight).status().code(),
              StatusCode::kInvalidArgument);

    OnlineServerOptions negative_slo;
    negative_slo.slo = -1;
    EXPECT_EQ(OnlineServer::create(opts, negative_slo).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(OnlineServer, ServeRequestsValidatesInput)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    OnlineRequest nan_arrival;
    nan_arrival.arrival = std::nan("");
    EXPECT_EQ(server.serveRequests({nan_arrival}).status().code(),
              StatusCode::kInvalidArgument);

    OnlineRequest out_of_range;
    out_of_range.problemId = 1 << 20;
    EXPECT_EQ(server.serveRequests({out_of_range}).status().code(),
              StatusCode::kInvalidArgument);

    // Legacy tolerance: negative finite arrivals queue from the trace
    // start (start = max(arrival, 0)), and serveArrivals never
    // crashes on them.
    OnlineRequest early;
    early.arrival = -1.0;
    early.problemId = 0;
    const auto served = server.serveRequests({early});
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served->records.size(), 1u);
    EXPECT_DOUBLE_EQ(served->records[0].arrival, -1.0);
    EXPECT_DOUBLE_EQ(served->records[0].start, 0.0);

    // Non-finite input through the legacy entry point degrades to the
    // empty trace instead of aborting.
    const auto empty =
        server.serveArrivals({std::nan(""), 1.0});
    EXPECT_TRUE(empty.records.empty());
}

TEST(OnlineServer, ServeRequestsAcceptsUnsortedArrivals)
{
    OnlineServer sorted_server =
        OnlineServer::create(smallOptions(true)).value();
    OnlineServer shuffled_server =
        OnlineServer::create(smallOptions(true)).value();
    std::vector<OnlineRequest> sorted_requests;
    std::vector<OnlineRequest> shuffled;
    for (int i = 0; i < 4; ++i) {
        OnlineRequest r;
        r.problemId = i;
        r.arrival = 3.0 * i;
        sorted_requests.push_back(r);
    }
    shuffled = {sorted_requests[2], sorted_requests[0],
                sorted_requests[3], sorted_requests[1]};
    const auto a = sorted_server.serveRequests(sorted_requests).value();
    const auto b = shuffled_server.serveRequests(shuffled).value();
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].problemId, b.records[i].problemId);
        EXPECT_DOUBLE_EQ(a.records[i].finish, b.records[i].finish);
    }
}

// --- Arrival traces ---

TEST(ArrivalTraces, GeneratorsAreDeterministicAndSorted)
{
    for (const char *mode : {"poisson", "bursty"}) {
        const auto a = makeArrivalTrace(mode, 32, 0.5, 11).value();
        const auto b = makeArrivalTrace(mode, 32, 0.5, 11).value();
        ASSERT_EQ(a.size(), 32u) << mode;
        EXPECT_EQ(a, b) << mode;
        for (size_t i = 1; i < a.size(); ++i)
            EXPECT_GT(a[i], a[i - 1]) << mode;
        EXPECT_GT(a.front(), 0.0) << mode;
    }
    // Different modes produce different streams.
    EXPECT_NE(makeArrivalTrace("poisson", 8, 0.5, 11).value(),
              makeArrivalTrace("bursty", 8, 0.5, 11).value());
}

TEST(ArrivalTraces, BurstyIsHeavierTailedThanPoisson)
{
    // Same mean rate, but the Pareto gaps' maximum dominates: the
    // largest inter-arrival gap is a much bigger multiple of the
    // median gap than under the exponential.
    auto gap_spread = [](const std::vector<double> &arrivals) {
        std::vector<double> gaps;
        for (size_t i = 1; i < arrivals.size(); ++i)
            gaps.push_back(arrivals[i] - arrivals[i - 1]);
        std::sort(gaps.begin(), gaps.end());
        return gaps.back() / gaps[gaps.size() / 2];
    };
    const double poisson =
        gap_spread(poissonArrivalTrace(256, 1.0, 5));
    const double bursty = gap_spread(burstyArrivalTrace(256, 1.0, 5));
    EXPECT_GT(bursty, poisson);
}

TEST(ArrivalTraces, RejectsBadModesAndRates)
{
    EXPECT_EQ(makeArrivalTrace("uniform", 4, 1.0, 0).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(makeArrivalTrace("poisson", -1, 1.0, 0).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(makeArrivalTrace("poisson", 4, 0.0, 0).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_TRUE(makeArrivalTrace("poisson", 0, 1.0, 0)->empty());
}

TEST(OnlineServer, InterleavedTracesDoNotAccumulateRecords)
{
    OnlineServerOptions online;
    online.maxInflight = 3;
    OnlineServer server =
        OnlineServer::create(smallOptions(true), online).value();
    (void)server.serveTrace(5, 2.0, 7);
    (void)server.serveTrace(5, 2.0, 7);
    EXPECT_EQ(server.system().pendingRequests(), 0u);
    EXPECT_EQ(server.system().result(1).status().code(),
              StatusCode::kNotFound);
}

// --- Shared engine, preemption and the one-device memory budget ---

TEST(OnlineServer, CreateRejectsBadPreemptAndKvBudget)
{
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions bad_preempt;
    bad_preempt.preempt = "sometimes";
    const auto unknown = OnlineServer::create(opts, bad_preempt);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(unknown.status().message().find("slice"),
              std::string::npos);

    OnlineServerOptions negative_budget;
    negative_budget.kvBudgetGiB = -1;
    EXPECT_EQ(
        OnlineServer::create(opts, negative_budget).status().code(),
        StatusCode::kInvalidArgument);
}

TEST(OnlineServer, SharedLedgerBoundsResidentKvAcrossInflight)
{
    // Whatever the interleaving does, total resident KV across every
    // in-flight request can never exceed the one shared budget.
    ServingOptions opts = smallOptions(true);
    OnlineServerOptions online;
    online.maxInflight = 4;
    online.kvBudgetGiB = 1.0;
    OnlineServer server = OnlineServer::create(opts, online).value();

    // Overlapping burst: everything arrives at once.
    const auto out = server.serveArrivals({0, 0, 0, 0, 0, 0});
    EXPECT_EQ(out.records.size(), 6u);
    const KvBudgetLedger &ledger = server.kvLedger();
    EXPECT_DOUBLE_EQ(ledger.totalBytes(), 1.0 * (1ull << 30));
    EXPECT_GT(ledger.peakUsedBytes(), 0.0);
    EXPECT_LE(ledger.peakUsedBytes(), ledger.totalBytes() + 1.0);
}

TEST(OnlineServer, TightSharedBudgetForcesPreemptionEviction)
{
    // A budget far below the combined working sets makes the server
    // evict suspended victims; their paths come back as recompute.
    // ~0.75 GiB admits four predicted working sets (~136 MiB each)
    // but cannot hold four opportunistically filled caches (~370 MiB
    // each): the suspended victims get force-evicted.
    ServingOptions opts = smallOptions(true);
    OnlineServerOptions online;
    online.maxInflight = 4;
    online.kvBudgetGiB = 0.75;
    OnlineServer server = OnlineServer::create(opts, online).value();
    const auto out = server.serveArrivals({0, 0, 0, 0, 0, 0, 0, 0});
    EXPECT_EQ(out.records.size(), 8u);
    EXPECT_GT(out.preemptEvictedTokens, 0);
    EXPECT_GT(out.recomputedTokens, 0);
    EXPECT_LE(server.kvLedger().peakUsedBytes(),
              server.kvLedger().totalBytes() + 1.0);
}

TEST(OnlineServer, PolicyModePreemptsForUrgentArrival)
{
    // A deadline-free long request is on the device when an urgent
    // SLO-bearing request arrives: preemptive EDF takes the engine
    // away mid-request; the victim still completes.
    ServingOptions opts = smallOptions(true);
    OnlineServerOptions online;
    online.policy = "edf";
    online.maxInflight = 2;
    online.preempt = "policy";
    OnlineServer server = OnlineServer::create(opts, online).value();

    OnlineRequest relaxed;
    relaxed.problemId = 0;
    relaxed.arrival = 0;
    relaxed.slo = 0; // No deadline.
    OnlineRequest urgent;
    urgent.problemId = 1;
    urgent.arrival = 1.0; // Arrives while `relaxed` runs.
    urgent.slo = 30.0;
    const auto out =
        server.serveRequests({relaxed, urgent}).value();
    ASSERT_EQ(out.records.size(), 2u);
    EXPECT_GE(out.preemptions, 1);
    // The victim is the deadline-free request.
    for (const auto &rec : out.records) {
        if (!rec.hasDeadline()) {
            EXPECT_GE(rec.preemptions, 1);
        }
    }

    // The same trace under non-preemptive slicing treats both
    // equally; preemptive EDF must serve the urgent one no slower.
    OnlineServerOptions sliced = online;
    sliced.preempt = "slice";
    OnlineServer slice_server =
        OnlineServer::create(opts, sliced).value();
    const auto slice_out =
        slice_server.serveRequests({relaxed, urgent}).value();
    double policy_urgent = 0, slice_urgent = 0;
    for (const auto &rec : out.records)
        if (rec.hasDeadline())
            policy_urgent = rec.latency();
    for (const auto &rec : slice_out.records)
        if (rec.hasDeadline())
            slice_urgent = rec.latency();
    EXPECT_LE(policy_urgent, slice_urgent + 1e-9);
}

TEST(OnlineServer, ShedDoomedShedsOnlyDoomedRequests)
{
    ServingOptions opts = smallOptions(true);

    // Impossible SLO + shedding: everything is shed at admission.
    OnlineServerOptions doomed;
    doomed.slo = 1e-3;
    doomed.shedDoomed = true;
    OnlineServer shedding =
        OnlineServer::create(opts, doomed).value();
    const auto shed_out = shedding.serveTrace(4, 0.5, 7);
    EXPECT_EQ(shed_out.shedRequests, 4);
    EXPECT_TRUE(shed_out.records.empty());

    // Same SLO without the flag: served doomed (legacy behaviour).
    OnlineServerOptions served;
    served.slo = 1e-3;
    OnlineServer serving = OnlineServer::create(opts, served).value();
    const auto served_out = serving.serveTrace(4, 0.5, 7);
    EXPECT_EQ(served_out.shedRequests, 0);
    EXPECT_EQ(served_out.records.size(), 4u);
    EXPECT_EQ(served_out.deadlineMisses, 4);

    // Generous SLO with the flag: nothing to shed.
    OnlineServerOptions generous;
    generous.slo = 1e9;
    generous.shedDoomed = true;
    OnlineServer relaxed =
        OnlineServer::create(opts, generous).value();
    const auto relaxed_out = relaxed.serveTrace(4, 0.5, 7);
    EXPECT_EQ(relaxed_out.shedRequests, 0);
    EXPECT_EQ(relaxed_out.records.size(), 4u);
}

TEST(OnlineServer, ActiveTimeIsDeviceTimeNotWallTime)
{
    // Under interleaving, wall service time includes other requests'
    // slices; activeTime never does, and it is exactly what the
    // utilization accounting sums.
    ServingOptions opts = smallOptions(true);
    OnlineServerOptions online;
    online.maxInflight = 3;
    OnlineServer server = OnlineServer::create(opts, online).value();
    const auto out = server.serveArrivals({0, 0, 0, 0, 0});
    ASSERT_EQ(out.records.size(), 5u);
    double active_total = 0;
    bool any_interleaved = false;
    for (const auto &rec : out.records) {
        EXPECT_GT(rec.activeTime, 0.0);
        EXPECT_LE(rec.activeTime, rec.serviceTime() + 1e-9);
        if (rec.activeTime < rec.serviceTime() - 1e-9)
            any_interleaved = true;
        active_total += rec.activeTime;
    }
    EXPECT_TRUE(any_interleaved);
    EXPECT_GT(out.contextSwitches, 0); // Slicing rotates mid-request.
    EXPECT_EQ(out.preemptions, 0); // ...but that is not preemption.
    EXPECT_NEAR(out.utilization, active_total / out.makespan, 1e-12);
    EXPECT_LE(out.utilization, 1.0 + 1e-9);
}

TEST(OnlineServer, PreemptionStormHoldsInvariants)
{
    // Storm: tight shared budget, preemptive policy, shedding and
    // client cancellations all at once (also exercised under
    // ASan+UBSan by the sanitizer CI job).
    ServingOptions opts = smallOptions(true);
    opts.numBeams = 4;
    OnlineServerOptions online;
    online.policy = "edf";
    online.maxInflight = 8;
    online.preempt = "policy";
    online.kvBudgetGiB = 0.5;
    online.shedDoomed = true;
    OnlineServer server = OnlineServer::create(opts, online).value();

    const auto arrivals = burstyArrivalTrace(24, 0.5, 11);
    std::vector<OnlineRequest> requests;
    for (size_t i = 0; i < arrivals.size(); ++i) {
        OnlineRequest r;
        r.arrival = arrivals[i];
        r.priority = static_cast<int>(i % 3) - 1;
        const double tiers[] = {20.0, 60.0, 240.0, 0.0};
        r.slo = tiers[i % 4];
        if (i % 7 == 6)
            r.cancelAt = arrivals[i] + 1.0;
        requests.push_back(r);
    }
    const auto out = server.serveRequests(requests).value();
    EXPECT_EQ(static_cast<int>(out.records.size()) + out.shedRequests
                  + out.cancelled,
              24);
    EXPECT_LE(server.kvLedger().peakUsedBytes(),
              server.kvLedger().totalBytes() + 1.0);
    EXPECT_LE(out.utilization, 1.0 + 1e-9);
    for (const auto &rec : out.records) {
        EXPECT_GE(rec.start, rec.arrival);
        EXPECT_GT(rec.finish, rec.start);
        EXPECT_GT(rec.activeTime, 0.0);
        EXPECT_LE(rec.activeTime, rec.serviceTime() + 1e-9);
    }
}

TEST(OnlineServer, CreateRejectsBadBatchingOptions)
{
    const ServingOptions opts = smallOptions(true);

    OnlineServerOptions bad_mode;
    bad_mode.batching = "dynamic";
    const auto unknown = OnlineServer::create(opts, bad_mode);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(unknown.status().message().find("continuous"),
              std::string::npos);

    OnlineServerOptions zero_budget;
    zero_budget.batching = "continuous";
    zero_budget.maxBatchedTokens = 0;
    EXPECT_EQ(OnlineServer::create(opts, zero_budget).status().code(),
              StatusCode::kInvalidArgument);

    OnlineServerOptions zero_chunk;
    zero_chunk.batching = "continuous";
    zero_chunk.prefillChunk = 0;
    EXPECT_EQ(OnlineServer::create(opts, zero_chunk).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(OnlineServer, BatchingOffReproducesLegacyTraceBitForBit)
{
    // --batching off must keep the pre-batching serve loop untouched:
    // the batching knobs are inert, and every record field matches a
    // default-configured server exactly (no epsilon).
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions legacy;
    legacy.maxInflight = 3;
    legacy.preempt = "slice";
    OnlineServerOptions off = legacy;
    off.batching = "off";
    off.maxBatchedTokens = 7;  // Must not matter when off.
    off.prefillChunk = 3;

    OnlineServer a = OnlineServer::create(opts, legacy).value();
    OnlineServer b = OnlineServer::create(opts, off).value();
    const auto want = a.serveTrace(6, 0.5, 7);
    const auto got = b.serveTrace(6, 0.5, 7);

    ASSERT_EQ(got.records.size(), want.records.size());
    for (size_t i = 0; i < got.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(got.records[i].arrival,
                         want.records[i].arrival);
        EXPECT_DOUBLE_EQ(got.records[i].start, want.records[i].start);
        EXPECT_DOUBLE_EQ(got.records[i].finish,
                         want.records[i].finish);
        EXPECT_DOUBLE_EQ(got.records[i].activeTime,
                         want.records[i].activeTime);
    }
    EXPECT_DOUBLE_EQ(got.makespan, want.makespan);
    EXPECT_DOUBLE_EQ(got.utilization, want.utilization);
    EXPECT_EQ(got.contextSwitches, want.contextSwitches);
    EXPECT_EQ(got.verifiedTokens, want.verifiedTokens);
}

TEST(OnlineServer, ContinuousMatchesTimeSlicedContent)
{
    // Content determinism: batching changes device-time attribution,
    // never what each request computes. The same trace produces the
    // same verified-token total under both modes, and the off mode
    // reports occupancy exactly 1 (every wave is a solo slice).
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions sliced;
    sliced.maxInflight = 3;
    sliced.preempt = "slice";
    OnlineServerOptions continuous = sliced;
    continuous.batching = "continuous";

    OnlineServer a = OnlineServer::create(opts, sliced).value();
    OnlineServer b = OnlineServer::create(opts, continuous).value();
    const auto sliced_out = a.serveTrace(6, 0.2, 11);
    const auto continuous_out = b.serveTrace(6, 0.2, 11);

    ASSERT_EQ(sliced_out.records.size(), 6u);
    ASSERT_EQ(continuous_out.records.size(), 6u);
    EXPECT_GT(continuous_out.verifiedTokens, 0);
    EXPECT_EQ(continuous_out.verifiedTokens, sliced_out.verifiedTokens);
    EXPECT_DOUBLE_EQ(sliced_out.batchOccupancy, 1.0);
    // Continuous batching never rotates or preempts mid-request.
    EXPECT_EQ(continuous_out.contextSwitches, 0);
    EXPECT_EQ(continuous_out.preemptions, 0);
}

TEST(OnlineServer, ContinuousBeatsTimeSlicingOnBurstyTrace)
{
    // The headline claim: on a saturating bursty trace, fusing decode
    // across in-flight requests finishes the trace sooner and cuts
    // tail latency versus round-robin time slicing.
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions sliced;
    sliced.maxInflight = 4;
    sliced.preempt = "slice";
    OnlineServerOptions continuous = sliced;
    continuous.batching = "continuous";

    const auto arrivals = burstyArrivalTrace(12, 0.2, 11);
    std::vector<OnlineRequest> requests;
    for (const double arrival : arrivals) {
        OnlineRequest r;
        r.arrival = arrival;
        requests.push_back(r);
    }

    OnlineServer a = OnlineServer::create(opts, sliced).value();
    OnlineServer b = OnlineServer::create(opts, continuous).value();
    const auto sliced_out = a.serveRequests(requests).value();
    const auto continuous_out = b.serveRequests(requests).value();

    ASSERT_EQ(continuous_out.records.size(), arrivals.size());
    EXPECT_GT(continuous_out.batchOccupancy, 1.0);
    EXPECT_LT(continuous_out.makespan, sliced_out.makespan);
    EXPECT_LT(continuous_out.p99Latency, sliced_out.p99Latency);
    EXPECT_GT(
        static_cast<double>(continuous_out.verifiedTokens)
            / continuous_out.makespan,
        static_cast<double>(sliced_out.verifiedTokens) / sliced_out.makespan);
}

TEST(OnlineServer, ContinuousBatchingStormHoldsInvariants)
{
    // The preemption-storm workload rerun under continuous batching:
    // tight shared KV budget, shedding and client cancellations, with
    // memory pressure resolved by benching batch members instead of
    // slice-rotation (also an ASan+UBSan CI pass).
    ServingOptions opts = smallOptions(true);
    opts.numBeams = 4;
    OnlineServerOptions online;
    online.policy = "edf";
    online.maxInflight = 8;
    online.batching = "continuous";
    online.kvBudgetGiB = 0.5;
    online.shedDoomed = true;
    OnlineServer server = OnlineServer::create(opts, online).value();

    const auto arrivals = burstyArrivalTrace(24, 0.5, 11);
    std::vector<OnlineRequest> requests;
    for (size_t i = 0; i < arrivals.size(); ++i) {
        OnlineRequest r;
        r.arrival = arrivals[i];
        r.priority = static_cast<int>(i % 3) - 1;
        const double tiers[] = {20.0, 60.0, 240.0, 0.0};
        r.slo = tiers[i % 4];
        if (i % 7 == 6)
            r.cancelAt = arrivals[i] + 1.0;
        requests.push_back(r);
    }
    const auto out = server.serveRequests(requests).value();
    EXPECT_EQ(static_cast<int>(out.records.size()) + out.shedRequests
                  + out.cancelled,
              24);
    EXPECT_LE(server.kvLedger().peakUsedBytes(),
              server.kvLedger().totalBytes() + 1.0);
    EXPECT_LE(out.utilization, 1.0 + 1e-9);
    EXPECT_EQ(out.contextSwitches, 0);
    EXPECT_EQ(out.preemptions, 0);
    for (const auto &rec : out.records) {
        EXPECT_GE(rec.start, rec.arrival);
        EXPECT_GT(rec.finish, rec.start);
        EXPECT_GT(rec.activeTime, 0.0);
        EXPECT_LE(rec.activeTime, rec.serviceTime() + 1e-9);
    }
}

// --- Benching hysteresis: the "at most one return per wave" rule ---

TEST(PickBenchReturn, NoBenchedMembersMeansNoReturn)
{
    EXPECT_EQ(pickBenchReturn({}, 1000, 10, false), -1);
    EXPECT_EQ(pickBenchReturn({{false, 50}, {false, 70}}, 1000, 10,
                              false),
              -1);
}

TEST(PickBenchReturn, OldestBenchedReturnsWithHysteresisHeadroom)
{
    // Eligibility gate: kv demand + 2x headroom must be free, the
    // hysteresis gap that stops bench/unbench thrash.
    const std::vector<std::pair<bool, double>> wave = {
        {false, 40}, {true, 100}, {true, 10}};
    EXPECT_EQ(pickBenchReturn(wave, 120.0, 10.0, false), 1);
    // Exactly at the threshold still qualifies...
    EXPECT_EQ(pickBenchReturn(wave, 100.0 + 2 * 10.0, 10.0, false), 1);
    // ...one byte under does not.
    EXPECT_EQ(pickBenchReturn(wave, 119.0, 10.0, false), -1);
}

TEST(PickBenchReturn, IneligibleOldestBlocksYoungerMembers)
{
    // The younger benched member (10 bytes) would fit easily, but the
    // oldest benched one gates the wave: skipping ahead of it would
    // starve the old request whenever memory stays tight.
    const std::vector<std::pair<bool, double>> wave = {
        {false, 40}, {true, 1000}, {true, 10}};
    EXPECT_EQ(pickBenchReturn(wave, 200.0, 10.0, false), -1);
}

TEST(PickBenchReturn, FrontForcedReturnIsNotAHysteresisReturn)
{
    // The front entered the wave benched (the oldest member completed
    // and promoted it) and was force-returned — the progress
    // guarantee. Its flag was already cleared exactly once, so the
    // hysteresis rule must never pick index 0 again, but the next
    // benched member is still eligible on its own merits.
    const std::vector<std::pair<bool, double>> wave = {
        {true, 40}, {true, 60}, {true, 10}};
    EXPECT_EQ(pickBenchReturn(wave, 1000.0, 10.0, true), 1);
    // Without the forced return the same wave unbenches the front.
    EXPECT_EQ(pickBenchReturn(wave, 1000.0, 10.0, false), 0);
    // A front-only wave yields no hysteresis return at all.
    EXPECT_EQ(pickBenchReturn({{true, 40}}, 1000.0, 10.0, true), -1);
}

TEST(PickBenchReturn, AtMostOneReturnPerWave)
{
    // Every member benched and every member eligible: still exactly
    // one comes back (the oldest), never a mass return.
    const std::vector<std::pair<bool, double>> wave = {
        {false, 5}, {true, 5}, {true, 5}, {true, 5}};
    EXPECT_EQ(pickBenchReturn(wave, 1e9, 10.0, false), 1);
    EXPECT_EQ(pickBenchReturn(wave, 1e9, 10.0, true), 1);
}

// --- Cross-request prefix cache ---

TEST(OnlineServer, CreateRejectsBadPrefixCacheOptions)
{
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions bad_mode;
    bad_mode.prefixCache = "maybe";
    const auto unknown = OnlineServer::create(opts, bad_mode);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(unknown.status().message().find("off"),
              std::string::npos);

    OnlineServerOptions negative_budget;
    negative_budget.prefixCache = "on";
    negative_budget.prefixCacheBudgetGiB = -0.5;
    EXPECT_EQ(
        OnlineServer::create(opts, negative_budget).status().code(),
        StatusCode::kInvalidArgument);
}

/** The multi-turn session trace the prefix-cache tests serve: each
 *  turn's prompt exactly prefix-extends the previous turn's. */
std::vector<OnlineRequest>
multiTurnTrace(int turns, int base_tokens, int growth_tokens)
{
    std::vector<OnlineRequest> requests;
    for (int turn = 0; turn < turns; ++turn) {
        OnlineRequest r;
        r.arrival = 5.0 * turn;
        const int prompt = base_tokens + turn * growth_tokens;
        for (int j = 0; j < prompt; ++j)
            r.promptIds.push_back(static_cast<int32_t>(1000003 + j));
        requests.push_back(r);
    }
    return requests;
}

TEST(OnlineServer, PrefixCacheOffIsFieldForFieldIdenticalToDefault)
{
    // The differential the whole feature hangs on: --prefix-cache off
    // (even with a budget set, which must be inert) reproduces a
    // default-configured server exactly — every record field and
    // every aggregate, no epsilon — in both batching modes.
    const ServingOptions opts = smallOptions(true);
    for (const std::string batching : {"off", "continuous"}) {
        OnlineServerOptions legacy;
        legacy.maxInflight = 3;
        legacy.batching = batching;
        OnlineServerOptions off = legacy;
        off.prefixCache = "off";
        off.prefixCacheBudgetGiB = 2.0; // Must not matter when off.

        const auto trace = multiTurnTrace(6, 96, 48);
        OnlineServer a = OnlineServer::create(opts, legacy).value();
        OnlineServer b = OnlineServer::create(opts, off).value();
        const auto want = a.serveRequests(trace).value();
        const auto got = b.serveRequests(trace).value();

        ASSERT_EQ(got.records.size(), want.records.size()) << batching;
        for (size_t i = 0; i < got.records.size(); ++i) {
            EXPECT_EQ(got.records[i].problemId,
                      want.records[i].problemId);
            EXPECT_DOUBLE_EQ(got.records[i].arrival,
                             want.records[i].arrival);
            EXPECT_DOUBLE_EQ(got.records[i].start,
                             want.records[i].start);
            EXPECT_DOUBLE_EQ(got.records[i].finish,
                             want.records[i].finish);
            EXPECT_DOUBLE_EQ(got.records[i].activeTime,
                             want.records[i].activeTime);
            EXPECT_EQ(got.records[i].preemptions,
                      want.records[i].preemptions);
        }
        EXPECT_DOUBLE_EQ(got.meanLatency, want.meanLatency);
        EXPECT_DOUBLE_EQ(got.p50Latency, want.p50Latency);
        EXPECT_DOUBLE_EQ(got.p99Latency, want.p99Latency);
        EXPECT_DOUBLE_EQ(got.makespan, want.makespan);
        EXPECT_DOUBLE_EQ(got.utilization, want.utilization);
        EXPECT_DOUBLE_EQ(got.batchOccupancy, want.batchOccupancy);
        EXPECT_EQ(got.verifiedTokens, want.verifiedTokens);
        EXPECT_EQ(got.recomputedTokens, want.recomputedTokens);
        EXPECT_EQ(got.contextSwitches, want.contextSwitches);
        EXPECT_EQ(got.prefixHitTokens, 0);
        EXPECT_EQ(want.prefixHitTokens, 0);
        EXPECT_EQ(b.system().prefixIndex(), nullptr);
    }
}

TEST(OnlineServer, PrefixCacheMountsMultiTurnSessionPrompts)
{
    // Turn k's prompt prefix-extends turn k-1's, and the turns are
    // spaced out so each completes (and publishes) before the next
    // arrives: with an ample cache every turn mounts the whole
    // previous prompt, so the trace's saved volume is exactly the sum
    // of prompts 1..n-1.
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions online;
    online.prefixCache = "on";
    const auto trace = multiTurnTrace(3, 96, 48);

    OnlineServer server = OnlineServer::create(opts, online).value();
    const auto out = server.serveRequests(trace).value();
    ASSERT_EQ(out.records.size(), 3u);
    EXPECT_EQ(out.prefixHitTokens, 96 + 144);

    const PrefixIndex *index = server.system().prefixIndex();
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->stats().hitTokens, 96u + 144u);
    EXPECT_GE(index->stats().lookups, 3u);
    // Completed prompts were published back: the longest prompt is
    // fully cached for the session's next turn.
    EXPECT_GE(index->residentTokens(), 96 + 48 + 48);

    // The identical trace with the cache off saves nothing.
    OnlineServer off = OnlineServer::create(opts).value();
    const auto off_out = off.serveRequests(trace).value();
    EXPECT_EQ(off_out.records.size(), 3u);
    EXPECT_EQ(off_out.prefixHitTokens, 0);
}

// --- Ledger charge/refund symmetry under refused lazy re-prefill ---

TEST(OnlineServer, LedgerOccupancyReturnsToBaselineAfterTightStorm)
{
    // The satellite-1 regression: under a deliberately tight shared
    // budget, benched members' lazy re-prefills are refused and fall
    // back to pay-at-first-touch recompute. Whatever path each
    // request took, every charge must be matched by a refund —
    // allocateBlocks/releaseBlocks are all-or-nothing, so a refused
    // charge reserves nothing to leak — and the ledger drains to
    // exactly zero once the storm completes.
    ServingOptions opts = smallOptions(true);
    opts.numBeams = 4;
    OnlineServerOptions online;
    online.policy = "edf";
    online.maxInflight = 8;
    online.batching = "continuous";
    online.kvBudgetGiB = 0.5;
    online.shedDoomed = true;
    OnlineServer server = OnlineServer::create(opts, online).value();

    const auto arrivals = burstyArrivalTrace(16, 0.5, 11);
    std::vector<OnlineRequest> requests;
    for (size_t i = 0; i < arrivals.size(); ++i) {
        OnlineRequest r;
        r.arrival = arrivals[i];
        const double tiers[] = {20.0, 60.0, 240.0, 0.0};
        r.slo = tiers[i % 4];
        requests.push_back(r);
    }
    const auto out = server.serveRequests(requests).value();
    EXPECT_GT(out.records.size(), 0u);
    EXPECT_GT(server.kvLedger().peakUsedBytes(), 0.0);
    EXPECT_DOUBLE_EQ(server.kvLedger().usedBytes(), 0.0);

    // With the prefix cache on, the only residual charge is the
    // cache's own resident bytes — in-flight KV still drains fully.
    OnlineServerOptions cached = online;
    cached.prefixCache = "on";
    OnlineServer cached_server =
        OnlineServer::create(opts, cached).value();
    const auto cached_out =
        cached_server.serveRequests(requests).value();
    EXPECT_GT(cached_out.records.size(), 0u);
    ASSERT_NE(cached_server.system().prefixIndex(), nullptr);
    EXPECT_DOUBLE_EQ(
        cached_server.kvLedger().usedBytes(),
        cached_server.system().prefixIndex()->residentBytes());
}

// --- Percentile population contract on shedding traces ---

/** Ceil-rank percentile over completed-record latencies, the
 *  reference aggregateTrace() must agree with. */
double
latencyPercentile(const std::vector<OnlineRequestRecord> &records,
                  double p)
{
    std::vector<double> latencies;
    for (const auto &rec : records)
        latencies.push_back(rec.latency());
    std::sort(latencies.begin(), latencies.end());
    const size_t rank = static_cast<size_t>(std::ceil(
        p * static_cast<double>(latencies.size())));
    return latencies[std::max<size_t>(rank, 1) - 1];
}

TEST(OnlineServer, PercentilesCoverCompletedRequestsOnlyWhenShedding)
{
    // A trace that sheds and cancels must not let the missing
    // requests skew its latency statistics: in BOTH batching modes
    // the percentiles are exactly the ceil-rank statistics of the
    // completed records — no phantom zero-latency entries for shed or
    // cancelled requests, and the three populations partition the
    // trace.
    const ServingOptions opts = smallOptions(true);
    for (const std::string batching : {"off", "continuous"}) {
        OnlineServerOptions online;
        online.maxInflight = 2;
        online.batching = batching;
        online.shedDoomed = true;
        OnlineServer server = OnlineServer::create(opts, online).value();

        std::vector<OnlineRequest> requests;
        for (int i = 0; i < 9; ++i) {
            OnlineRequest r;
            r.arrival = 0.0;
            if (i % 3 == 1)
                r.slo = 1e-3; // Doomed: shed at admission.
            if (i % 3 == 2)
                r.cancelAt = 0.5; // Abandoned while queued.
            requests.push_back(r);
        }
        const auto out = server.serveRequests(requests).value();

        EXPECT_GT(out.shedRequests, 0) << batching;
        EXPECT_GT(out.cancelled, 0) << batching;
        ASSERT_GT(out.records.size(), 0u) << batching;
        EXPECT_EQ(static_cast<int>(out.records.size())
                      + out.shedRequests + out.cancelled,
                  9)
            << batching;

        EXPECT_DOUBLE_EQ(out.p50Latency,
                         latencyPercentile(out.records, 0.50))
            << batching;
        EXPECT_DOUBLE_EQ(out.p95Latency,
                         latencyPercentile(out.records, 0.95))
            << batching;
        EXPECT_DOUBLE_EQ(out.p99Latency,
                         latencyPercentile(out.records, 0.99))
            << batching;
        double mean = 0;
        for (const auto &rec : out.records)
            mean += rec.latency();
        mean /= static_cast<double>(out.records.size());
        EXPECT_DOUBLE_EQ(out.meanLatency, mean) << batching;
    }
}

TEST(OnlineServer, ServeProblemsAdapterMatchesServingSystem)
{
    // serveProblems() is a thin adapter over the request loop: at
    // arrival 0 / fifo / max-inflight 1 it degenerates to the batch
    // path and must reproduce ServingSystem::serveProblems exactly.
    const ServingOptions opts = smallOptions(true);
    ServingSystem batch = ServingSystem::create(opts).value();
    const BatchResult want = batch.serveProblems(4);

    OnlineServer server = OnlineServer::create(opts).value();
    const BatchResult got = server.serveProblems(4);

    ASSERT_EQ(got.requests.size(), want.requests.size());
    EXPECT_DOUBLE_EQ(got.meanGoodput, want.meanGoodput);
    EXPECT_DOUBLE_EQ(got.top1Accuracy, want.top1Accuracy);
    for (size_t i = 0; i < got.requests.size(); ++i) {
        EXPECT_EQ(got.requests[i].verifiedTokens,
                  want.requests[i].verifiedTokens);
        EXPECT_DOUBLE_EQ(got.requests[i].completionTime,
                         want.requests[i].completionTime);
    }
}

// --- Fault injection, retry, timeout and degradation ---

/** A small burst of arrival-0ish requests with generous deadlines. */
std::vector<OnlineRequest>
faultTrace(int n)
{
    std::vector<OnlineRequest> requests;
    for (int i = 0; i < n; ++i) {
        OnlineRequest r;
        r.arrival = 0.5 * i;
        r.slo = 1e6; // Generous: only terminal failures miss.
        requests.push_back(r);
    }
    return requests;
}

TEST(OnlineServer, CreateRejectsBadFaultOptions)
{
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions bad_mode;
    bad_mode.faults = "chaos";
    EXPECT_EQ(OnlineServer::create(opts, bad_mode).status().code(),
              StatusCode::kInvalidArgument);

    OnlineServerOptions no_plan;
    no_plan.faults = "plan";
    EXPECT_EQ(OnlineServer::create(opts, no_plan).status().code(),
              StatusCode::kInvalidArgument);

    OnlineServerOptions bad_plan;
    bad_plan.faults = "plan";
    bad_plan.faultPlan = "{\"rules\": [{\"rate\": 0.1}]}";
    EXPECT_EQ(OnlineServer::create(opts, bad_plan).status().code(),
              StatusCode::kInvalidArgument);

    OnlineServerOptions bad_retry;
    bad_retry.retryMax = 17;
    EXPECT_EQ(OnlineServer::create(opts, bad_retry).status().code(),
              StatusCode::kInvalidArgument);
    bad_retry.retryMax = -1;
    EXPECT_EQ(OnlineServer::create(opts, bad_retry).status().code(),
              StatusCode::kInvalidArgument);

    OnlineServerOptions bad_backoff;
    bad_backoff.retryBackoff = -0.5;
    EXPECT_EQ(OnlineServer::create(opts, bad_backoff).status().code(),
              StatusCode::kInvalidArgument);

    OnlineServerOptions bad_timeout;
    bad_timeout.requestTimeout = -1.0;
    EXPECT_EQ(OnlineServer::create(opts, bad_timeout).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(OnlineServer, ZeroRateFaultPlanMatchesFaultFreeTrace)
{
    // The in-process differential: a plan whose rules arm every probe
    // at rate 0 draws from the injector's dedicated stream but never
    // fires — the trace must be field-for-field identical to a
    // fault-free server, proving injector draws cannot perturb the
    // simulation. Covers both batching modes.
    const ServingOptions opts = smallOptions(true);
    for (const std::string batching : {"off", "continuous"}) {
        OnlineServerOptions plain;
        plain.maxInflight = 3;
        plain.batching = batching;
        OnlineServerOptions armed = plain;
        armed.faults = "plan";
        armed.faultPlan =
            "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.0}]}";
        armed.retryMax = 3;

        const auto trace = faultTrace(6);
        OnlineServer a = OnlineServer::create(opts, plain).value();
        OnlineServer b = OnlineServer::create(opts, armed).value();
        const auto want = a.serveRequests(trace).value();
        const auto got = b.serveRequests(trace).value();

        ASSERT_EQ(got.records.size(), want.records.size()) << batching;
        for (size_t i = 0; i < got.records.size(); ++i) {
            EXPECT_DOUBLE_EQ(got.records[i].start,
                             want.records[i].start);
            EXPECT_DOUBLE_EQ(got.records[i].finish,
                             want.records[i].finish);
            EXPECT_DOUBLE_EQ(got.records[i].activeTime,
                             want.records[i].activeTime);
        }
        EXPECT_DOUBLE_EQ(got.meanLatency, want.meanLatency);
        EXPECT_DOUBLE_EQ(got.makespan, want.makespan);
        EXPECT_EQ(got.verifiedTokens, want.verifiedTokens);
        EXPECT_EQ(got.injectedFaults, 0);
        EXPECT_EQ(got.retries, 0);
        EXPECT_EQ(got.timeouts, 0);
        EXPECT_EQ(got.failedRequests, 0);
        EXPECT_EQ(got.degradedWaves, 0);
        EXPECT_EQ(got.degradedEpisodes, 0);
    }
}

TEST(OnlineServer, TargetedFaultFailsRequestTerminallyWithoutRetry)
{
    // A rate-1.0 rule pinned to request 0 with no retry budget: its
    // first wave faults, the request fails terminally, and everyone
    // else completes untouched.
    const ServingOptions opts = smallOptions(true);
    for (const std::string batching : {"off", "continuous"}) {
        OnlineServerOptions online;
        online.maxInflight = 2;
        online.batching = batching;
        online.faults = "plan";
        online.faultPlan = "{\"rules\": [{\"site\": \"wave_step\", "
                           "\"rate\": 1.0, \"request\": 0}]}";
        OnlineServer server = OnlineServer::create(opts, online).value();
        const auto out = server.serveRequests(faultTrace(4)).value();
        EXPECT_EQ(out.records.size(), 3u) << batching;
        EXPECT_EQ(out.failedRequests, 1) << batching;
        EXPECT_GE(out.injectedFaults, 1l) << batching;
        EXPECT_EQ(out.retries, 0) << batching;
        // The terminal failure carried a (generous) deadline it can
        // no longer meet: attainment counts it as a miss.
        EXPECT_LT(out.sloAttainment, 1.0) << batching;
        EXPECT_DOUBLE_EQ(server.kvLedger().usedBytes(), 0.0);
    }
}

TEST(OnlineServer, RetryRecoversWindowedFault)
{
    // The fault window closes before the backed-off retry re-enters:
    // attempt 1 is killed, attempt 2 runs clean, every request
    // completes.
    const ServingOptions opts = smallOptions(true);
    for (const std::string batching : {"off", "continuous"}) {
        OnlineServerOptions online;
        online.maxInflight = 2;
        online.batching = batching;
        online.faults = "plan";
        online.faultPlan = "{\"rules\": [{\"site\": \"wave_step\", "
                           "\"rate\": 1.0, \"request\": 0, "
                           "\"end\": 1e4}]}";
        online.retryMax = 5;
        online.retryBackoff = 2e4; // Retry lands past the window.
        OnlineServer server = OnlineServer::create(opts, online).value();
        const auto out = server.serveRequests(faultTrace(4)).value();
        EXPECT_EQ(out.records.size(), 4u) << batching;
        EXPECT_EQ(out.failedRequests, 0) << batching;
        EXPECT_GE(out.retries, 1) << batching;
        EXPECT_GE(out.injectedFaults, 1l) << batching;
        // No wasted recompute: the fault strikes before the first
        // wave runs, so the killed attempt had decoded nothing yet.
        EXPECT_EQ(out.faultWastedTokens, 0l) << batching;
        EXPECT_DOUBLE_EQ(server.kvLedger().usedBytes(), 0.0);
    }
}

TEST(OnlineServer, WatchdogTimesOutEveryRequestUnderTinyDeadline)
{
    // An absurdly tight --request-timeout: the watchdog aborts every
    // request (inflight after its first wave, queued before
    // admission), nothing completes, and the books still drain.
    const ServingOptions opts = smallOptions(true);
    for (const std::string batching : {"off", "continuous"}) {
        OnlineServerOptions online;
        online.maxInflight = 2;
        online.batching = batching;
        online.requestTimeout = 1e-6;
        OnlineServer server = OnlineServer::create(opts, online).value();
        const auto out = server.serveRequests(faultTrace(3)).value();
        EXPECT_TRUE(out.records.empty()) << batching;
        EXPECT_EQ(out.timeouts, 3) << batching;
        EXPECT_EQ(out.retries, 0) << batching;
        EXPECT_DOUBLE_EQ(out.sloAttainment, 0.0) << batching;
        EXPECT_DOUBLE_EQ(server.kvLedger().usedBytes(), 0.0);
    }
}

TEST(OnlineServer, SustainedFaultPressureEngagesDegradation)
{
    // A heavy always-on fault rate with retries enabled must push the
    // rolling fault-rate tracker over its enter threshold: the server
    // records degraded waves/time and at least one episode, and the
    // trace still terminates with balanced books.
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions online;
    online.maxInflight = 4;
    online.batching = "continuous";
    online.faults = "plan";
    online.faultPlan =
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.3}]}";
    online.retryMax = 2;
    online.retryBackoff = 0.01;
    OnlineServer server = OnlineServer::create(opts, online).value();
    const auto out = server.serveRequests(faultTrace(8)).value();
    EXPECT_GT(out.injectedFaults, 0l);
    EXPECT_GT(out.degradedWaves, 0l);
    EXPECT_GT(out.degradedTime, 0.0);
    EXPECT_GE(out.degradedEpisodes, 1);
    EXPECT_DOUBLE_EQ(server.kvLedger().usedBytes(), 0.0);

    // Without retries the degradation machinery stays disarmed even
    // under the same fault pressure (fail-fast mode is the control
    // arm of the benchmark).
    OnlineServerOptions fail_fast = online;
    fail_fast.retryMax = 0;
    OnlineServer control = OnlineServer::create(opts, fail_fast).value();
    const auto ctrl = control.serveRequests(faultTrace(8)).value();
    EXPECT_GT(ctrl.injectedFaults, 0l);
    EXPECT_EQ(ctrl.degradedWaves, 0l);
    EXPECT_EQ(ctrl.degradedEpisodes, 0);
}

TEST(OnlineServer, FaultSequencesReplayBitForBitAcrossServers)
{
    // Two servers built from identical options and seeds must inject
    // the identical fault sequence and produce the identical trace —
    // the determinism contract the benchmark's cells rely on.
    const ServingOptions opts = smallOptions(true);
    OnlineServerOptions online;
    online.maxInflight = 3;
    online.batching = "continuous";
    online.faults = "plan";
    online.faultPlan =
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.2}]}";
    online.retryMax = 3;
    online.retryBackoff = 0.05;
    const auto trace = faultTrace(6);
    OnlineServer a = OnlineServer::create(opts, online).value();
    OnlineServer b = OnlineServer::create(opts, online).value();
    const auto ra = a.serveRequests(trace).value();
    const auto rb = b.serveRequests(trace).value();
    EXPECT_EQ(ra.injectedFaults, rb.injectedFaults);
    EXPECT_EQ(ra.retries, rb.retries);
    EXPECT_EQ(ra.failedRequests, rb.failedRequests);
    EXPECT_EQ(ra.faultWastedTokens, rb.faultWastedTokens);
    ASSERT_EQ(ra.records.size(), rb.records.size());
    for (size_t i = 0; i < ra.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(ra.records[i].start, rb.records[i].start);
        EXPECT_DOUBLE_EQ(ra.records[i].finish, rb.records[i].finish);
    }
    EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
}

TEST(OnlineServer, CancelStormDrainsPrefixPinsAndLedger)
{
    // The satellite-1 regression: requests leaving through EVERY
    // abnormal exit — client cancellation while queued, injected
    // wave faults with no retry budget, watchdog timeouts — must
    // release their prefix pins and ledger charges. After the storm
    // the index holds only its permanent root self-reference and the
    // ledger holds only the cache's own resident bytes.
    ServingOptions opts = smallOptions(true);
    opts.numBeams = 4;
    OnlineServerOptions online;
    online.maxInflight = 2;
    online.batching = "continuous";
    online.kvBudgetGiB = 0.5;
    online.prefixCache = "on";
    online.faults = "plan";
    online.faultPlan =
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.4}]}";
    online.requestTimeout = 40.0;
    OnlineServer server = OnlineServer::create(opts, online).value();

    std::vector<OnlineRequest> storm;
    for (int i = 0; i < 10; ++i) {
        OnlineRequest r;
        r.arrival = 0.25 * i;
        r.slo = 1e6;
        // Shared prompt prefix so pins actually land on cached nodes.
        for (int j = 0; j < 64 + 8 * (i % 3); ++j)
            r.promptIds.push_back(static_cast<int32_t>(7000 + j));
        if (i % 3 == 2)
            r.cancelAt = r.arrival + 0.1; // Abandoned while queued.
        storm.push_back(r);
    }
    const auto out = server.serveRequests(storm).value();
    // The storm must actually exercise abnormal exits.
    EXPECT_GT(out.injectedFaults + out.timeouts + out.failedRequests,
              0l);

    const PrefixIndex *index = server.system().prefixIndex();
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->refCount(PrefixIndex::kRoot), 1);
    EXPECT_DOUBLE_EQ(server.kvLedger().usedBytes(),
                     index->residentBytes());
}

// ---------------------------------------------------------------------
// Cost-aware victim ranking (--victim-select cost)
// ---------------------------------------------------------------------

TEST(VictimRanking, OrdersByCheapestRestoreCost)
{
    // Restore cost is min(transfer, recompute): the engine swaps
    // exactly when the copy is strictly cheaper, so that minimum is
    // the price actually paid on re-admission.
    const std::vector<VictimCandidate> candidates = {
        {/*kvBytes=*/100, /*lastRunAt=*/1.0,
         /*transferSeconds=*/5.0, /*recomputeSeconds=*/9.0},  // cost 5
        {/*kvBytes=*/100, /*lastRunAt=*/2.0,
         /*transferSeconds=*/8.0, /*recomputeSeconds=*/2.0},  // cost 2
        {/*kvBytes=*/100, /*lastRunAt=*/3.0,
         /*transferSeconds=*/1.0, /*recomputeSeconds=*/40.0}, // cost 1
    };
    const std::vector<size_t> order = rankEvictionVictims(candidates);
    EXPECT_EQ(order, (std::vector<size_t>{2, 1, 0}));
}

TEST(VictimRanking, MissingTierFallsBackToRecomputeCost)
{
    // Default transferSeconds is infinity (no host tier attached):
    // the ranking degenerates to cheapest-recompute-first.
    std::vector<VictimCandidate> candidates(3);
    candidates[0].recomputeSeconds = 7.0;
    candidates[1].recomputeSeconds = 3.0;
    candidates[2].recomputeSeconds = 5.0;
    const std::vector<size_t> order = rankEvictionVictims(candidates);
    EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
}

TEST(VictimRanking, CostTiesGoToColdestThenAdmissionOrder)
{
    // Equal restore cost: the least-recently-run (coldest) victim is
    // evicted first; a full tie falls back to admission order, which
    // keeps the ranking a strict refinement of the legacy sweep.
    std::vector<VictimCandidate> candidates(4);
    for (auto &c : candidates)
        c.recomputeSeconds = 4.0;
    candidates[0].lastRunAt = 9.0;
    candidates[1].lastRunAt = 2.0;
    candidates[2].lastRunAt = 9.0;
    candidates[3].lastRunAt = 2.0;
    const std::vector<size_t> order = rankEvictionVictims(candidates);
    EXPECT_EQ(order, (std::vector<size_t>{1, 3, 0, 2}));
}

TEST(VictimRanking, EmptyAndSingletonAreTrivial)
{
    EXPECT_TRUE(rankEvictionVictims({}).empty());
    const std::vector<VictimCandidate> one(1);
    EXPECT_EQ(rankEvictionVictims(one), (std::vector<size_t>{0}));
}

} // namespace
} // namespace fasttts
