#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fasttts
{

std::string
formatDouble(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatDouble(v, precision));
    rows_.push_back(std::move(row));
}

void
Table::setCaption(std::string caption)
{
    caption_ = std::move(caption);
}

void
Table::print(std::ostream &os) const
{
    size_t num_cols = header_.size();
    for (const auto &row : rows_)
        num_cols = std::max(num_cols, row.size());

    std::vector<size_t> widths(num_cols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &row : rows_)
        measure(row);

    size_t total = 1;
    for (size_t w : widths)
        total += w + 3;

    os << "\n" << title_ << "\n" << std::string(total, '=') << "\n";

    auto emit = [&](const std::vector<std::string> &row) {
        os << "|";
        for (size_t i = 0; i < num_cols; ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            os << " " << cell << std::string(widths[i] - cell.size(), ' ')
               << " |";
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    os << std::string(total, '=') << "\n";
    if (!caption_.empty())
        os << caption_ << "\n";
}

bool
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ",";
            // Quote cells containing commas.
            if (row[i].find(',') != std::string::npos)
                out << '"' << row[i] << '"';
            else
                out << row[i];
        }
        out << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return true;
}

} // namespace fasttts
