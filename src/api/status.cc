#include "api/status.h"

#include <cstdio>
#include <cstdlib>

namespace fasttts
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::kOk:
        return "ok";
    case StatusCode::kInvalidArgument:
        return "invalid_argument";
    case StatusCode::kNotFound:
        return "not_found";
    case StatusCode::kAlreadyExists:
        return "already_exists";
    case StatusCode::kFailedPrecondition:
        return "failed_precondition";
    case StatusCode::kDeadlineExceeded:
        return "deadline_exceeded";
    case StatusCode::kUnavailable:
        return "unavailable";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

namespace detail
{

void
failStatus(const Status &status)
{
    std::fprintf(stderr, "fasttts: fatal: %s\n",
                 status.toString().c_str());
    std::abort();
}

} // namespace detail
} // namespace fasttts
