// Fixture: pointer-keyed-map rule. Not compiled — linted against the
// golden report in tests/lint/expected/pointer_keyed_map.txt.
#include <map>
#include <set>
#include <string>

struct Node;

std::map<Node *, int> bad_rank;     // finding: address order
std::set<const Node *> bad_marked;  // finding: address order

std::map<int, Node *> good_by_id;   // pointer values are fine
std::map<std::string, int> good_by_name;
