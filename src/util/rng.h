/**
 * @file
 * Deterministic random number generation for the FastTTS simulator.
 *
 * Every stochastic process in the reproduction (step lengths, verifier
 * noise, answer sampling) draws from an explicitly seeded Rng so that all
 * experiments are bit-for-bit reproducible. The generator is
 * xoshiro256++, seeded through SplitMix64 as recommended by its authors.
 */

#ifndef FASTTTS_UTIL_RNG_H
#define FASTTTS_UTIL_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fasttts
{

/**
 * xoshiro256++ pseudo-random generator with convenience distributions.
 *
 * The class is cheap to copy; independent streams are derived with
 * fork(), which hashes a stream identifier into a child seed so that
 * adding a new consumer never perturbs existing streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int uniformInt(int lo, int hi);

    /** Standard normal via Box-Muller (cached second draw). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double sd);

    /** Log-normal with the given parameters of the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Exponential with the given rate (lambda > 0). */
    double exponential(double rate);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /**
     * Categorical draw over unnormalised non-negative weights.
     * @return index in [0, weights.size()), or 0 if all weights are zero.
     */
    int categorical(const std::vector<double> &weights);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(next() % i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /**
     * Derive an independent child stream.
     * @param stream_id Identifier mixed into the seed; equal ids give
     *                  equal streams.
     */
    Rng fork(uint64_t stream_id) const;

    /**
     * Pure seed-mixing function underlying fork(): returns the seed of
     * the child stream derived from (seed, stream_id). Used to derive
     * deterministic per-beam lineage streams.
     */
    static uint64_t mix(uint64_t seed, uint64_t stream_id);

    /** The seed this generator was constructed with. */
    uint64_t seed() const { return seed_; }

  private:
    uint64_t s_[4];
    uint64_t seed_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace fasttts

#endif // FASTTTS_UTIL_RNG_H
