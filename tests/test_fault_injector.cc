/**
 * @file
 * Tests for the deterministic, schedule-driven fault injector.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/fault_injector.h"

namespace fasttts
{
namespace
{

TEST(FaultSiteNames, RoundTripAllSites)
{
    for (int i = 0; i < kNumFaultSites; ++i) {
        const auto site = static_cast<FaultSite>(i);
        const auto parsed = faultSiteFromName(faultSiteName(site));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(*parsed, site);
    }
}

TEST(FaultSiteNames, UnknownNameIsNotFound)
{
    const auto parsed = faultSiteFromName("cosmic_ray");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

TEST(FaultPlan, ParsesFullRule)
{
    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"kv_alloc\", \"rate\": 0.25, "
        "\"start\": 1.5, \"end\": 9.0, \"request\": 7}]}");
    ASSERT_TRUE(plan.ok());
    ASSERT_EQ(plan->rules.size(), 1u);
    const FaultRule &rule = plan->rules[0];
    EXPECT_EQ(rule.site, FaultSite::kKvAlloc);
    EXPECT_EQ(rule.rate, 0.25);
    EXPECT_EQ(rule.windowStart, 1.5);
    EXPECT_EQ(rule.windowEnd, 9.0);
    EXPECT_EQ(rule.requestId, 7);
}

TEST(FaultPlan, OptionalFieldsDefaultToAlwaysAnyRequest)
{
    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.05}]}");
    ASSERT_TRUE(plan.ok());
    ASSERT_EQ(plan->rules.size(), 1u);
    EXPECT_EQ(plan->rules[0].windowStart, 0.0);
    EXPECT_TRUE(std::isinf(plan->rules[0].windowEnd));
    EXPECT_EQ(plan->rules[0].requestId, -1);
}

TEST(FaultPlan, RejectsMalformedSchedules)
{
    const char *bad[] = {
        "not json at all",
        "[1, 2, 3]",                     // Top level must be an object.
        "{\"rule\": []}",                // Unknown top-level key.
        "{\"rules\": 5}",                // rules must be an array.
        "{\"rules\": [5]}",              // Rule must be an object.
        "{\"rules\": [{\"rate\": 0.1}]}",          // Missing site.
        "{\"rules\": [{\"site\": 3, \"rate\": 0.1}]}", // Non-string site.
        "{\"rules\": [{\"site\": \"wave_step\"}]}",    // Missing rate.
        // (A well-formed rule with an unknown site name fails too,
        // surfacing faultSiteFromName's kNotFound — checked below.)
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 1.5}]}",
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": -0.1}]}",
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.1, "
        "\"start\": 5, \"end\": 5}]}",   // Empty window.
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.1, "
        "\"request\": \"seven\"}]}",     // Non-numeric request.
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.1, "
        "\"color\": \"red\"}]}",         // Unknown rule key.
    };
    for (const char *text : bad) {
        const auto plan = FaultPlan::fromJsonText(text);
        EXPECT_FALSE(plan.ok()) << text;
        if (!plan.ok()) {
            EXPECT_EQ(plan.status().code(),
                      StatusCode::kInvalidArgument)
                << text;
        }
    }
    const auto unknown_site = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"bogus\", \"rate\": 0.1}]}");
    ASSERT_FALSE(unknown_site.ok());
    EXPECT_EQ(unknown_site.status().code(), StatusCode::kNotFound);
}

TEST(FaultPlan, UniformArmsEverySite)
{
    const FaultPlan plan = FaultPlan::uniform(1.0);
    ASSERT_EQ(plan.rules.size(),
              static_cast<size_t>(kNumFaultSites));
    FaultInjector injector(plan, 1);
    for (int i = 0; i < kNumFaultSites; ++i)
        EXPECT_TRUE(injector.shouldFault(static_cast<FaultSite>(i)));
}

/** Record one probe sequence: (site, request, decision) per probe. */
std::vector<bool>
probeSequence(FaultInjector &injector, int probes)
{
    std::vector<bool> out;
    out.reserve(static_cast<size_t>(probes));
    for (int i = 0; i < probes; ++i) {
        injector.setNow(0.01 * i);
        out.push_back(injector.shouldFault(
            static_cast<FaultSite>(i % kNumFaultSites), i % 5));
    }
    return out;
}

TEST(FaultInjector, SameSeedReplaysBitForBit)
{
    FaultInjector a(FaultPlan::uniform(0.2), 42);
    FaultInjector b(FaultPlan::uniform(0.2), 42);
    EXPECT_EQ(probeSequence(a, 500), probeSequence(b, 500));
    EXPECT_EQ(a.injectedCount(), b.injectedCount());
    EXPECT_EQ(a.probeCount(), 500);
}

TEST(FaultInjector, DifferentSeedsDivergeSomewhere)
{
    FaultInjector a(FaultPlan::uniform(0.2), 42);
    FaultInjector b(FaultPlan::uniform(0.2), 43);
    EXPECT_NE(probeSequence(a, 500), probeSequence(b, 500));
}

TEST(FaultInjector, UnarmedProbesConsumeNoRandomness)
{
    // Interleaving probes at sites with NO matching rule must not
    // shift the RNG stream the armed site draws from: the wave_step
    // decisions must match an injector that never saw the extras.
    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.3}]}");
    ASSERT_TRUE(plan.ok());
    FaultInjector clean(*plan, 7);
    FaultInjector noisy(*plan, 7);
    std::vector<bool> clean_seq;
    std::vector<bool> noisy_seq;
    for (int i = 0; i < 200; ++i) {
        clean_seq.push_back(clean.shouldFault(FaultSite::kWaveStep, i));
        (void)noisy.shouldFault(FaultSite::kKvAlloc);
        (void)noisy.shouldFault(FaultSite::kPrefixAcquire);
        noisy_seq.push_back(noisy.shouldFault(FaultSite::kWaveStep, i));
    }
    EXPECT_EQ(clean_seq, noisy_seq);
    // The unarmed probes were still counted as probes, never faults.
    EXPECT_EQ(noisy.stats(FaultSite::kKvAlloc).probes, 200);
    EXPECT_EQ(noisy.stats(FaultSite::kKvAlloc).injected, 0);
}

TEST(FaultInjector, SimTimeWindowGatesRules)
{
    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 1.0, "
        "\"start\": 10, \"end\": 20}]}");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(*plan, 3);
    injector.setNow(9.999);
    EXPECT_FALSE(injector.shouldFault(FaultSite::kWaveStep));
    injector.setNow(10.0); // Window start is inclusive.
    EXPECT_TRUE(injector.shouldFault(FaultSite::kWaveStep));
    injector.setNow(19.999);
    EXPECT_TRUE(injector.shouldFault(FaultSite::kWaveStep));
    injector.setNow(20.0); // Window end is exclusive.
    EXPECT_FALSE(injector.shouldFault(FaultSite::kWaveStep));
    EXPECT_EQ(injector.stats(FaultSite::kWaveStep).probes, 4);
    EXPECT_EQ(injector.stats(FaultSite::kWaveStep).injected, 2);
}

TEST(FaultInjector, RequestIdSelectsVictim)
{
    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 1.0, "
        "\"request\": 7}]}");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(*plan, 3);
    EXPECT_TRUE(injector.shouldFault(FaultSite::kWaveStep, 7));
    EXPECT_FALSE(injector.shouldFault(FaultSite::kWaveStep, 8));
    // Deep sites probe without a request id (-1); request-targeted
    // rules never arm them.
    EXPECT_FALSE(injector.shouldFault(FaultSite::kWaveStep, -1));
}

TEST(FaultInjector, OverlappingRulesCombineAsIndependentSources)
{
    // Two rate-0.5 rules at one site: combined p = 1 - 0.5^2 = 0.75.
    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.5}, "
        "{\"site\": \"wave_step\", \"rate\": 0.5}]}");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(*plan, 11);
    const int probes = 4000;
    int faults = 0;
    for (int i = 0; i < probes; ++i)
        faults += injector.shouldFault(FaultSite::kWaveStep) ? 1 : 0;
    const double observed = static_cast<double>(faults) / probes;
    EXPECT_NEAR(observed, 0.75, 0.03);
    // A saturating rule forces every probe regardless of the rest.
    const auto sure = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.1}, "
        "{\"site\": \"wave_step\", \"rate\": 1.0}]}");
    ASSERT_TRUE(sure.ok());
    FaultInjector always(*sure, 11);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(always.shouldFault(FaultSite::kWaveStep));
}

TEST(FaultInjector, ZeroRateRuleArmsButNeverFires)
{
    const auto plan = FaultPlan::fromJsonText(
        "{\"rules\": [{\"site\": \"kv_restore\", \"rate\": 0.0}]}");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(*plan, 5);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(injector.shouldFault(FaultSite::kKvRestore));
    EXPECT_EQ(injector.stats(FaultSite::kKvRestore).probes, 100);
    EXPECT_EQ(injector.injectedCount(), 0);
}

} // namespace
} // namespace fasttts
