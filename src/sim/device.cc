#include "sim/device.h"

#include "util/units.h"

namespace fasttts
{

DeviceSpec
rtx4090()
{
    DeviceSpec d;
    d.name = "RTX4090";
    d.vramBytes = 24.0 * GiB;
    d.peakFlops = 165.0 * TFLOPS;
    d.memBandwidth = 1008.0 * GBps;
    d.pcieBandwidth = 25.0 * GBps; // PCIe 4.0 x16 effective
    d.usableFraction = 0.95;
    return d;
}

DeviceSpec
rtx4070Ti()
{
    DeviceSpec d;
    d.name = "RTX4070Ti";
    d.vramBytes = 12.0 * GiB;
    d.peakFlops = 80.0 * TFLOPS;
    d.memBandwidth = 504.0 * GBps;
    d.pcieBandwidth = 25.0 * GBps;
    d.usableFraction = 0.95;
    return d;
}

DeviceSpec
rtx3070Ti()
{
    DeviceSpec d;
    d.name = "RTX3070Ti";
    d.vramBytes = 8.0 * GiB;
    d.peakFlops = 44.0 * TFLOPS;
    d.memBandwidth = 608.0 * GBps;
    d.pcieBandwidth = 25.0 * GBps;
    d.usableFraction = 0.95;
    return d;
}

DeviceSpec
cloudA100()
{
    DeviceSpec d;
    d.name = "CloudA100";
    d.vramBytes = 80.0 * GiB;
    d.peakFlops = 312.0 * TFLOPS;
    d.memBandwidth = 2039.0 * GBps;
    d.pcieBandwidth = 64.0 * GBps;
    d.usableFraction = 0.95;
    return d;
}

Registry<DeviceSpec> &
deviceRegistry()
{
    static Registry<DeviceSpec> *registry = [] {
        // fasttts-lint: allow(naked-new) leaky registry singleton
        auto *r = new Registry<DeviceSpec>("device");
        checkOk(r->add("RTX4090", rtx4090));
        checkOk(r->add("RTX4070Ti", rtx4070Ti));
        checkOk(r->add("RTX3070Ti", rtx3070Ti));
        checkOk(r->add("CloudA100", cloudA100));
        return r;
    }();
    return *registry;
}

StatusOr<DeviceSpec>
deviceByName(const std::string &name)
{
    return deviceRegistry().create(name);
}

std::vector<DeviceSpec>
allEdgeDevices()
{
    return {rtx4090(), rtx4070Ti(), rtx3070Ti()};
}

} // namespace fasttts
