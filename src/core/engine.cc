#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "kv/kv_session.h"
#include "kv/kv_tier.h"
#include "kv/prefix_index.h"

namespace fasttts
{

/** One speculative child branch being extended (Sec. 4.1). */
struct FastTtsEngine::SpecBranch
{
    int childIdx = 0;    //!< Which child slot this branch speculates.
    int node = -1;       //!< Generator KV node holding its tokens.
    uint64_t segId = 0;  //!< Segment id of that node.
    int verNode = -1;    //!< Verifier KV node (LookAhead only).
    int decoded = 0;     //!< Tokens generated so far.
    int target = 0;      //!< Full step length (from the child's draw).
    bool complete = false;
    bool scored = false; //!< LookAhead-verified.
    double score = 0;    //!< Verifier score when scored.
    bool retained = false; //!< Holds a KV retention on `node`.
    StepDraw draw;       //!< The child step's content.
};

/** Engine-internal beam state. */
struct FastTtsEngine::ActiveBeam
{
    uint64_t id = 0;
    uint64_t seed = 0;     //!< Lineage stream seed.
    int rootIndex = 0;
    int steps = 0;         //!< Completed verified steps.
    double quality = 0;    //!< After last verified step.
    double score = 0.5;    //!< Last verified step's PRM score.
    double prevScore = 0.5;
    long totalTokens = 0;  //!< Verified tokens in the whole path.
    int prevPos = 0;       //!< Schedule position carry-over.
    double spawnTime = 0;

    int leaf = -1;     //!< Generator KV node of last verified segment.
    int verLeaf = -1;  //!< Verifier KV node of last verified segment.

    // --- Current-step state ---
    bool stepPrepared = false;
    StepDraw draw;
    int targetTokens = 0;
    int decoded = 0;
    int curSeg = -1;       //!< Generator KV node of the in-flight step.
    uint64_t curSegId = 0; //!< Segment id (mirrored in verifier tree).
    int headStart = 0;     //!< Tokens inherited from kept speculation.
    bool pinned = false;   //!< Holds a retention on curSeg.
    bool inDecode = false;
    bool finishedGen = false;
    bool forceKilled = false;

    // --- LookAhead-verified step (child adopted a scored branch) ---
    bool pendingStepDone = false;
    double pendingScore = 0;
    int pendingVerSeg = -1;

    // --- Verification scratch ---
    double newScore = 0;
    int newVerSeg = -1;

    // --- Speculation ---
    std::vector<SpecBranch> branches;
    int branchesStarted = 0;
};

/**
 * Everything that belongs to one in-flight request: mounted on the
 * engine between beginRequest() and finishRequest(), or parked inside
 * a SuspendedEngineRequest. Field names keep the engine-member style
 * (trailing underscore) because the engine code reads them through
 * ctx_->.
 */
struct FastTtsEngine::RequestContext
{
    Problem problem_;
    SimClock clock_;
    AllocationPlan plan_;
    Rng systemRng_{0};
    std::vector<std::unique_ptr<ActiveBeam>> active_;
    std::vector<CompletedSolution> completed_;
    std::vector<IterationStats> iterStats_;
    std::vector<std::vector<int>> stepTokens_;
    std::unique_ptr<KvCacheManager> kvGen_;
    std::unique_ptr<KvCacheManager> kvVer_;
    uint64_t nextBeamId_ = 1;
    uint64_t nextSegId_ = 1;
    int iteration_ = 0;
    int forcedTerminations_ = 0;
    int promptNodeGen_ = -1;
    int promptNodeVer_ = -1;
    int promptRemaining_ = 0; //!< Prompt tokens awaiting chunked
                              //!< prefill (deferred-prompt mode).
    int promptChunkTotal_ = 0; //!< Initial chunked-prefill volume
                               //!< (prompt minus mounted prefix);
                               //!< chunking restarts from it when the
                               //!< prompt node is evicted mid-stream.
    bool inRequest_ = false; //!< Between beginRequest and finish.

    // --- Cross-request prefix cache (kv/prefix_index.h) ---
    PrefixIndex *prefixIndex_ = nullptr; //!< Global index (borrowed).
    PrefixIndex::NodeId prefixNode_ = PrefixIndex::kInvalid;
    int prefixHitTokens_ = 0;        //!< Prompt tokens mounted, not
                                     //!< prefilled (saved recompute).
    std::vector<int32_t> promptIds_; //!< Resolved prompt identities.

    /** Drop the pin acquired at beginRequest; idempotent, so both
     *  finishRequest and abandonment (handle destruction) are safe. */
    void
    releasePrefixPin()
    {
        if (prefixIndex_ != nullptr
            && prefixNode_ != PrefixIndex::kInvalid) {
            prefixIndex_->release(prefixNode_);
            prefixNode_ = PrefixIndex::kInvalid;
        }
    }

    RequestContext() = default;
    ~RequestContext() { releasePrefixPin(); }
    RequestContext(const RequestContext &) = delete;
    RequestContext &operator=(const RequestContext &) = delete;

    // Accumulated request metrics.
    long generatedTokens_ = 0;
    long speculativeTokens_ = 0;
    long wastedSpecTokens_ = 0;

    // Generation-phase scratch (valid within one iteration).
    std::vector<size_t> queue_;
    std::vector<size_t> decodeSet_;
    // Running speculative branches as (active_ index, branch index)
    // pairs, kept sorted in beam order and maintained incrementally
    // (added at creation, filtered per event wave, cleared on kill) so
    // the event loop never rescans all beams x branches.
    std::vector<std::pair<size_t, size_t>> specRunning_;
    std::vector<std::pair<size_t, size_t>> specScratch_;
    double meanVerifierSeq_ = 0;  //!< Mean incremental request length.
    double meanVerifierPath_ = 0; //!< Mean full-path length (planning).
    bool specAllowed_ = true;      //!< Memory allows speculation.
    bool lookaheadAllowed_ = true; //!< Verifier cache under pressure.

    // Per-token roofline recompute rates of the two trees, captured at
    // request start so a parked SuspendedEngineRequest can make the
    // swap-vs-recompute call without reaching back into the engine.
    // chunkedRecomputeTime is linear in tokens (max of two
    // through-origin lines plus a fixed step overhead), so the slope
    // is exact.
    double genRecomputePerToken_ = 0;
    double verRecomputePerToken_ = 0;
};

namespace
{

/** Expected step length of a log-normal profile, for planning. */
double
meanProfileStepTokens(const DatasetProfile &p)
{
    const double mean =
        std::exp(p.stepLenMu + 0.5 * p.stepLenSigma * p.stepLenSigma);
    return std::clamp(mean, static_cast<double>(p.minStepTokens),
                      static_cast<double>(p.maxStepTokens));
}

/**
 * Deterministic prompt token identities for problems that carry none
 * (Problem::promptIds empty): a splitmix64 stream keyed by the
 * problem seed. Repeat servings of the same problem therefore share
 * their full prompt in the PrefixIndex, while distinct seeds diverge
 * at the first token.
 */
std::vector<int32_t>
synthesizedPromptIds(const Problem &problem)
{
    std::vector<int32_t> ids;
    ids.reserve(static_cast<size_t>(std::max(0, problem.promptTokens)));
    uint64_t state = problem.seed ^ 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < problem.promptTokens; ++i) {
        state += 0x9E3779B97F4A7C15ull;
        uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        z ^= z >> 31;
        ids.push_back(static_cast<int32_t>(z & 0x7FFFFFFFu));
    }
    return ids;
}

} // namespace

FastTtsEngine::FastTtsEngine(const FastTtsConfig &config,
                             const ModelConfig &models,
                             const DeviceSpec &device,
                             const DatasetProfile &dataset,
                             const SearchAlgorithm &algorithm)
    : config_(config), models_(models), device_(device), dataset_(dataset),
      algorithm_(algorithm), roofline_(device),
      generator_(models.generator, dataset),
      verifier_(models.verifier),
      specPolicy_(algorithm.branchFactor(), config.truncationRatio)
{
    if (config_.asymmetricAllocation) {
        planner_ = config_.offloadEnabled
            ? makeOffloadPlanner(models_.generator, models_.verifier,
                                 roofline_)
            : makeRooflinePlanner(models_.generator, models_.verifier,
                                  roofline_);
    } else {
        planner_ = makeStaticPlanner(models_.generator, models_.verifier,
                                     roofline_);
    }
    scheduler_ = config_.prefixAwareScheduling
        ? makePrefixAwareScheduler()
        : makeScheduler(config_.baselineScheduler);
    // The dataset profile is fixed for the engine's lifetime; the
    // admission loop asks for this every queue pop, so pay the exp()
    // once.
    expectedStepTokens_ = meanProfileStepTokens(dataset_);

    const double usable = device_.usableBytes() * models_.memoryFraction;
    const double weights = models_.generator.weightBytes()
        + models_.verifier.weightBytes();
    kvBudget_ = std::max(64.0 * MiB,
                         usable - weights - config_.reservedBytes);
    ctx_ = std::make_unique<RequestContext>();
}

FastTtsEngine::~FastTtsEngine() = default;

double
FastTtsEngine::promptKvBytesPerToken() const
{
    // A mounted prompt prefix is root tokens of BOTH trees, so one
    // cached token costs the generator's and the verifier's KV.
    return models_.generator.kvBytesPerToken()
        + models_.verifier.kvBytesPerToken();
}

void
FastTtsEngine::resetRequestState(const Problem &problem,
                                 bool defer_prompt_prefill)
{
    ctx_->problem_ = problem;
    ctx_->clock_ = SimClock();
    ctx_->clock_.setTraceEnabled(config_.recordTrace);
    ctx_->systemRng_ = Rng(config_.systemSeed ^ problem.seed);
    ctx_->active_.clear();
    ctx_->completed_.clear();
    ctx_->iterStats_.clear();
    ctx_->queue_.clear();
    ctx_->decodeSet_.clear();
    ctx_->specRunning_.clear();
    ctx_->stepTokens_.assign(static_cast<size_t>(dataset_.maxSteps) + 1, {});
    ctx_->nextBeamId_ = 1;
    ctx_->nextSegId_ = 1;
    ctx_->iteration_ = 0;
    ctx_->forcedTerminations_ = 0;
    ctx_->generatedTokens_ = 0;
    ctx_->speculativeTokens_ = 0;
    ctx_->wastedSpecTokens_ = 0;
    ctx_->meanVerifierSeq_ = 0;
    ctx_->meanVerifierPath_ = 0;

    // Fresh KV managers; the plan resizes their budgets each iteration.
    ctx_->kvGen_ = std::make_unique<KvCacheManager>(
        kvBudget_ * 0.5, models_.generator.kvBytesPerToken(),
        config_.blockTokens);
    ctx_->kvVer_ = std::make_unique<KvCacheManager>(
        kvBudget_ * 0.5, models_.verifier.kvBytesPerToken(),
        config_.blockTokens);
    if (ledger_ != nullptr) {
        ctx_->kvGen_->attachLedger(ledger_);
        ctx_->kvVer_->attachLedger(ledger_);
    }
    // Exact per-token slope: two point evaluations of a linear cost.
    ctx_->genRecomputePerToken_ =
        roofline_.chunkedRecomputeTime(models_.generator, 2)
        - roofline_.chunkedRecomputeTime(models_.generator, 1);
    ctx_->verRecomputePerToken_ =
        roofline_.chunkedRecomputeTime(models_.verifier, 2)
        - roofline_.chunkedRecomputeTime(models_.verifier, 1);
    if (hostTier_ != nullptr) {
        // The per-token rates arm the LRU-path roofline call: victims
        // cheaper to copy out than to re-prefill park on the host.
        ctx_->kvGen_->attachHostTier(hostTier_,
                                     ctx_->genRecomputePerToken_);
        ctx_->kvVer_->attachHostTier(hostTier_,
                                     ctx_->verRecomputePerToken_);
    }

    // Cross-request prefix cache: mount the longest cached prefix of
    // the prompt as root tokens of both trees (the blocks live in the
    // PrefixIndex and stay pinned until finishRequest), so only the
    // unmatched suffix is prefilled.
    ctx_->releasePrefixPin(); // Reused context: drop any stale pin.
    ctx_->prefixIndex_ = prefixIndex_;
    ctx_->prefixHitTokens_ = 0;
    ctx_->promptIds_.clear();
    int prompt_suffix = problem.promptTokens;
    if (prefixIndex_ != nullptr) {
        ctx_->promptIds_ = problem.promptIds.empty()
            ? synthesizedPromptIds(problem)
            : problem.promptIds;
        const PrefixIndex::Match match =
            prefixIndex_->acquire(ctx_->promptIds_);
        ctx_->prefixNode_ = match.node;
        const int mounted =
            std::min(match.matchedTokens, problem.promptTokens);
        ctx_->prefixHitTokens_ = mounted;
        prompt_suffix = problem.promptTokens - mounted;
        ctx_->kvGen_->setRootTokens(mounted);
        ctx_->kvVer_->setRootTokens(mounted);
    }

    // Shared question prompt: prefilled once by the generator; the
    // verifier materialises it lazily at first verification. With a
    // mounted prefix the node holds only the unmatched suffix (and
    // may be empty).
    ctx_->promptNodeGen_ = ctx_->kvGen_->createChild(KvCacheManager::kRoot,
                                         ctx_->nextSegId_, prompt_suffix);
    ctx_->promptNodeVer_ = ctx_->kvVer_->createChild(KvCacheManager::kRoot,
                                         ctx_->nextSegId_, prompt_suffix);
    ++ctx_->nextSegId_;
    ctx_->kvGen_->retain(ctx_->promptNodeGen_);
    ctx_->kvVer_->retain(ctx_->promptNodeVer_);
    ctx_->promptRemaining_ = 0;
    ctx_->promptChunkTotal_ = 0;
    if (defer_prompt_prefill) {
        // Continuous batching: the batch scheduler feeds the prompt
        // in chunks (prefillPromptChunk) from each wave's leftover
        // token budget, so a long prompt never stalls co-resident
        // decoders; the request must not decode until the chunks
        // finish (prefillPending() reaches 0).
        ctx_->promptRemaining_ = prompt_suffix;
        ctx_->promptChunkTotal_ = prompt_suffix;
    } else if (prompt_suffix > 0 || prefixIndex_ == nullptr) {
        // When the shared ledger is exhausted by other in-flight
        // requests the prompt KV cannot be stored yet; charging the
        // prefill now AND the inevitable recompute at first touch
        // would double-count it, so the prefill is deferred to that
        // touch instead.
        const auto prompt_touch =
            ctx_->kvGen_->ensureResident(ctx_->promptNodeGen_, 0);
        if (prompt_touch.ok) {
            ctx_->clock_.advance(
                roofline_.prefillTime(models_.generator, 1,
                                      prompt_suffix),
                Phase::Recompute,
                roofline_.prefillComputeUtil(models_.generator, 1,
                                             prompt_suffix),
                1, 1);
        }
    }

    const int n = algorithm_.beamWidth();
    const int branch = std::max(1, algorithm_.branchFactor());
    ctx_->active_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto beam = std::make_unique<ActiveBeam>();
        beam->id = ctx_->nextBeamId_++;
        beam->seed = rootLineageSeed(problem, i);
        beam->rootIndex = i / branch;
        beam->quality = rootQuality(generator_, problem, i);
        beam->leaf = ctx_->promptNodeGen_;
        beam->verLeaf = ctx_->promptNodeVer_;
        beam->prevPos = i;
        beam->spawnTime = ctx_->clock_.now();
        ctx_->active_.push_back(std::move(beam));
    }
}

void
FastTtsEngine::replan()
{
    WorkloadShape shape;
    // Plan for the full search width n, not the momentarily active
    // count: the speculative phase keeps the execution batch full
    // (Sec. 4.1.2), so capacity must not shrink as paths complete.
    shape.numRequests = algorithm_.beamWidth();
    const int cap = algorithm_.stepTokenCap(ctx_->iteration_);
    shape.decodeLen =
        std::min(expectedStepTokens_, static_cast<double>(cap));
    // The verifier's KV working set is the *full* reasoning path (a
    // discriminative PRM scores the whole path), not the incremental
    // request; plan memory for it.
    shape.verifierSeqLen = ctx_->meanVerifierPath_ > 0
        ? ctx_->meanVerifierPath_
        : ctx_->problem_.promptTokens + (ctx_->iteration_ + 1) * shape.decodeLen;
    shape.verifierReqLen =
        ctx_->meanVerifierSeq_ > 0 ? ctx_->meanVerifierSeq_ : shape.decodeLen;
    double ctx_total = 0;
    for (const auto &b : ctx_->active_)
        ctx_total += ctx_->kvGen_->pathTokens(b->leaf);
    shape.avgCacheLen = shape.decodeLen / 2
        + (ctx_->active_.empty() ? ctx_->problem_.promptTokens
                           : ctx_total / static_cast<double>(
                                 ctx_->active_.size()));
    ctx_->plan_ = planner_->plan(shape, kvBudget_);
    ctx_->kvGen_->setBudgetBytes(ctx_->plan_.generatorKvBytes);
    ctx_->kvVer_->setBudgetBytes(ctx_->plan_.verifierKvBytes);

    // Speculation pays only when memory is not the bottleneck
    // (Sec. 6.5.1): with the working set oversubscribed, speculative
    // KV would displace cache the standard beams still need.
    const double pool_tokens =
        ctx_->plan_.generatorKvBytes / models_.generator.kvBytesPerToken();
    const double working_set =
        shape.numRequests * (shape.avgCacheLen + shape.decodeLen / 2);
    ctx_->specAllowed_ = working_set <= 0.8 * pool_tokens;

    // LookAhead Verification pays when the verifier cache cannot hold
    // the beams' paths between iterations (pre-verifying avoids the
    // full-path re-prefill, Sec. 4.1.3); when the cache comfortably
    // retains prefixes, pre-verifying soon-pruned beams is pure waste.
    const double ver_pool_tokens =
        ctx_->plan_.verifierKvBytes / models_.verifier.kvBytesPerToken();
    const double ver_working_set =
        shape.numRequests * shape.verifierSeqLen;
    ctx_->lookaheadAllowed_ = ver_working_set > ver_pool_tokens;

    // Graceful degradation under fault pressure: the serving layer
    // turns both accelerations off wholesale so transient faults
    // cannot waste speculative work (timing-only; solutions are
    // unchanged by the engine's equivalence design).
    if (degraded_) {
        ctx_->specAllowed_ = false;
        ctx_->lookaheadAllowed_ = false;
    }
}

double
FastTtsEngine::currentAvgContext() const
{
    // Path tokens are cached per node (O(1)) and the running branch
    // set is maintained incrementally, so this is O(batch members)
    // instead of O(beams x branches x depth). The accumulator stays
    // integral, so the mean is bit-identical to the full rescan.
    long total = 0;
    int count = 0;
    for (size_t idx : ctx_->decodeSet_) {
        const ActiveBeam &b = *ctx_->active_[idx];
        total += ctx_->kvGen_->pathTokens(b.curSeg);
        ++count;
    }
    for (const auto &[beam_idx, branch_idx] : ctx_->specRunning_) {
        const SpecBranch &br = ctx_->active_[beam_idx]->branches[branch_idx];
        if (br.node >= 0 && !br.complete && br.retained) {
            total += ctx_->kvGen_->pathTokens(br.node);
            ++count;
        }
    }
    if (count == 0)
        return ctx_->problem_.promptTokens;
    return static_cast<double>(total) / count;
}

void
FastTtsEngine::chargeRecompute(int tokens)
{
    if (tokens <= 0)
        return;
    // Re-prefill of evicted prefixes piggybacks on the running decode
    // batch (chunked prefill): marginal compute + KV writes only.
    ctx_->clock_.advance(
        roofline_.chunkedRecomputeTime(models_.generator, tokens),
        Phase::Recompute, 0.6, 1, 1);
}

void
FastTtsEngine::chargeSwapIn(double bytes)
{
    // Host-tier traffic: restored bytes come back over the host link
    // instead of being re-prefilled, and LRU-path swap-outs since the
    // last charge drain their outbound copy time here too.
    // Phase::Transfer, like offload traffic, so it lands in
    // RequestResult::transferTime.
    if (hostTier_ == nullptr)
        return;
    double seconds = bytes > 0 ? hostTier_->transferSeconds(bytes) : 0;
    if (ctx_->kvGen_ != nullptr)
        seconds += ctx_->kvGen_->takePendingSwapSeconds();
    if (ctx_->kvVer_ != nullptr)
        seconds += ctx_->kvVer_->takePendingSwapSeconds();
    if (seconds > 0)
        ctx_->clock_.advance(seconds, Phase::Transfer);
}

bool
FastTtsEngine::admitBeam(size_t idx)
{
    ActiveBeam &b = *ctx_->active_[idx];
    if (!b.stepPrepared) {
        b.draw = drawStep(generator_, ctx_->problem_, b.seed, b.steps, b.quality,
                          algorithm_.stepTokenCap(b.steps));
        b.targetTokens = b.draw.tokens;
        b.decoded = 0;
        b.stepPrepared = true;
    }
    if (b.curSeg < 0) {
        b.curSegId = ctx_->nextSegId_++;
        b.curSeg = ctx_->kvGen_->createChild(b.leaf, b.curSegId, 0);
    }
    auto touch = ctx_->kvGen_->ensureResident(
        b.curSeg, static_cast<uint64_t>(ctx_->clock_.now() * 1e6));
    if (!touch.ok)
        return false;
    chargeRecompute(touch.recomputeTokens);
    chargeSwapIn(touch.swappedInBytes);
    ctx_->kvGen_->retain(b.curSeg);
    b.pinned = true;
    if (b.pendingStepDone || b.decoded >= b.targetTokens) {
        // Step already materialised (kept speculation); nothing to
        // decode — straight to the finished set.
        b.finishedGen = true;
        b.pinned = false;
        ctx_->kvGen_->release(b.curSeg);
        ctx_->stepTokens_[static_cast<size_t>(
                        std::min(b.steps, dataset_.maxSteps))]
            .push_back(b.targetTokens);
    } else {
        b.inDecode = true;
        ctx_->decodeSet_.push_back(idx);
    }
    return true;
}

void
FastTtsEngine::finishStandardBeam(size_t idx)
{
    ActiveBeam &b = *ctx_->active_[idx];
    b.inDecode = false;
    b.finishedGen = true;
    if (b.pinned) {
        ctx_->kvGen_->release(b.curSeg);
        b.pinned = false;
    }
    ctx_->stepTokens_[static_cast<size_t>(std::min(b.steps, dataset_.maxSteps))]
        .push_back(b.targetTokens);
}

void
FastTtsEngine::releaseBranch(SpecBranch &branch)
{
    if (branch.retained && branch.node >= 0) {
        ctx_->kvGen_->release(branch.node);
        branch.retained = false;
    }
    ctx_->wastedSpecTokens_ += branch.decoded;
    branch.decoded = 0;
    branch.complete = false;
    branch.node = -1;
}

void
FastTtsEngine::killAllSpeculation()
{
    // Branches are only *marked* dead (node = -1); the vector is never
    // resized here because the event loop may hold pointers into it.
    // Only the tracked running set needs visiting: completed branches
    // stay alive for selection, dead ones are already node = -1.
    for (const auto &[beam_idx, branch_idx] : ctx_->specRunning_) {
        SpecBranch &br = ctx_->active_[beam_idx]->branches[branch_idx];
        if (br.node >= 0 && !br.complete)
            releaseBranch(br);
    }
    ctx_->specRunning_.clear();
}

void
FastTtsEngine::fillSpeculativeSlots()
{
    const int capacity = std::max(1, ctx_->plan_.decodeBatch);
    const int running = static_cast<int>(ctx_->specRunning_.size());
    int free_slots =
        capacity - static_cast<int>(ctx_->decodeSet_.size()) - running;
    if (free_slots <= 0)
        return;

    // Memory-headroom gate: speculation must never evict cache the
    // standard beams still need. Only speculate when the generator
    // pool has slack for a typical child step.
    const size_t slack_blocks = ctx_->kvGen_->blocksFor(
        static_cast<int>(expectedStepTokens_) * 4);
    if (ctx_->kvGen_->freeBlocks() < slack_blocks)
        return;

    // Score bins over the active beams' previous-step scores: one
    // O(n) edge scan, then every potential query is O(1). The event
    // loop calls this every wave, so the per-beam potentials are
    // computed exactly once per call instead of per comparison.
    std::vector<double> scores;
    scores.reserve(ctx_->active_.size());
    for (const auto &b : ctx_->active_)
        scores.push_back(b->score);
    const SpeculativePolicy::ScoreBins bins =
        specPolicy_.scoreBins(scores);
    std::vector<int> potentials(ctx_->active_.size(), 0);
    for (size_t i = 0; i < ctx_->active_.size(); ++i) {
        potentials[i] = specPolicy_.binnedPotential(
            ctx_->active_[i]->score, bins);
    }

    // Candidates: finished, non-terminal beams with branch capacity
    // left, highest speculative potential first.
    std::vector<size_t> candidates;
    for (size_t i = 0; i < ctx_->active_.size(); ++i) {
        const ActiveBeam &b = *ctx_->active_[i];
        if (!b.finishedGen || b.forceKilled || b.draw.terminal)
            continue;
        if (b.steps + 1 >= dataset_.maxSteps)
            continue;
        // Speculating from an evicted path would force a recompute
        // prefill — never worth it for speculative work.
        if (b.curSeg < 0
            || ctx_->kvGen_->residentPrefixTokens(b.curSeg)
                != ctx_->kvGen_->pathTokens(b.curSeg)) {
            continue;
        }
        if (b.branchesStarted >= potentials[i])
            continue;
        candidates.push_back(i);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](size_t a, size_t c) {
                  if (potentials[a] != potentials[c])
                      return potentials[a] > potentials[c];
                  if (ctx_->active_[a]->score != ctx_->active_[c]->score)
                      return ctx_->active_[a]->score > ctx_->active_[c]->score;
                  return ctx_->active_[a]->id < ctx_->active_[c]->id;
              });

    for (size_t i = 0; i < candidates.size() && free_slots > 0;) {
        ActiveBeam &b = *ctx_->active_[candidates[i]];
        const int potential = potentials[candidates[i]];
        if (b.branchesStarted >= potential) {
            ++i;
            continue;
        }
        const int j = b.branchesStarted;
        SpecBranch br;
        br.childIdx = j;
        const uint64_t child_seed =
            childLineageSeed(b.seed, b.steps + 1, j);
        br.draw = drawStep(generator_, ctx_->problem_, child_seed, b.steps + 1,
                           b.draw.quality,
                           algorithm_.stepTokenCap(b.steps + 1));
        br.target = br.draw.tokens;
        br.segId = ctx_->nextSegId_++;
        br.node = ctx_->kvGen_->createChild(b.curSeg, br.segId, 0);
        auto touch = ctx_->kvGen_->ensureResident(
            br.node, static_cast<uint64_t>(ctx_->clock_.now() * 1e6));
        if (!touch.ok)
            break; // Memory too tight to speculate at all.
        chargeRecompute(touch.recomputeTokens);
        chargeSwapIn(touch.swappedInBytes);
        ctx_->kvGen_->retain(br.node);
        br.retained = true;
        b.branches.push_back(br);
        ctx_->specRunning_.emplace_back(candidates[i], b.branches.size() - 1);
        ++b.branchesStarted;
        --free_slots;
    }
    // Keep the running set in (beam, branch) order: the event loop
    // applies tokens in this order, and allocation-failure behaviour
    // under memory pressure must match the original full rescan.
    std::sort(ctx_->specRunning_.begin(), ctx_->specRunning_.end());
}

void
FastTtsEngine::runGenerationPhase()
{
    if (ctx_->plan_.offloadActive && ctx_->plan_.offloadOverhead > 0)
        ctx_->clock_.advance(ctx_->plan_.offloadOverhead * 0.5, Phase::Transfer);

    // --- Scheduling (Sec. 4.2) ---
    std::vector<SchedEntry> entries;
    for (size_t i = 0; i < ctx_->active_.size(); ++i) {
        const ActiveBeam &b = *ctx_->active_[i];
        SchedEntry e;
        e.index = i;
        e.beamId = b.id;
        e.parentBeam = b.prevPos >= 0 ? static_cast<uint64_t>(b.prevPos)
                                      : b.id;
        e.leaf = b.leaf;
        e.pathTokens = ctx_->kvGen_->pathTokens(b.leaf);
        e.prevPosition = b.prevPos;
        entries.push_back(e);
    }
    scheduler_->order(entries, *ctx_->kvGen_, ctx_->systemRng_);
    ctx_->queue_.clear();
    for (size_t pos = 0; pos < entries.size(); ++pos) {
        ctx_->active_[entries[pos].index]->prevPos = static_cast<int>(pos);
        ctx_->queue_.push_back(entries[pos].index);
    }
    ctx_->decodeSet_.clear();
    // Selection released every branch of the previous iteration; start
    // the running-set bookkeeping from a clean slate regardless.
    ctx_->specRunning_.clear();

    const int capacity = std::max(1, ctx_->plan_.decodeBatch);
    // Pinned working-set estimate (tokens) for admission control.
    // Capacity is what this request can actually obtain: the local
    // pool capped by the shared ledger's remaining headroom (equal to
    // the local total whenever no ledger binds), so admission waits
    // under cross-request memory pressure instead of admitting beams
    // the ledger will immediately refuse.
    double pinned_tokens = 0;
    const double budget_tokens =
        static_cast<double>(ctx_->kvGen_->allocator().used()
                            + ctx_->kvGen_->freeBlocks())
        * config_.blockTokens;

    size_t q_head = 0;
    bool spec_disabled = false;
    int safety = 0;
    const int safety_cap = static_cast<int>(ctx_->active_.size()) * 4096 + 4096;

    while (true) {
        if (++safety > safety_cap)
            break; // Defensive: never hang a simulation.

        // --- Phase 1: Continuous Beam Batching admission ---
        while (static_cast<int>(ctx_->decodeSet_.size()) < capacity
               && q_head < ctx_->queue_.size()) {
            const size_t idx = ctx_->queue_[q_head];
            ActiveBeam &b = *ctx_->active_[idx];
            if (b.forceKilled) {
                ++q_head;
                continue;
            }
            // Admission control. With Asymmetric Allocation (M) the
            // planner-informed watermark reserves room for the whole
            // step, preventing mid-decode preemption. The naive
            // baseline admits on *current* free memory only — vLLM's
            // behaviour — and pays preemption/recompute churn when
            // running beams outgrow the pool (Sec. 6.5.1).
            const int remaining = b.stepPrepared
                ? b.targetTokens - b.decoded
                : std::min(static_cast<int>(expectedStepTokens_),
                           algorithm_.stepTokenCap(b.steps));
            const double need = ctx_->kvGen_->pathTokens(b.leaf) + b.decoded
                + remaining;
            if (config_.asymmetricAllocation
                && pinned_tokens + need > budget_tokens * 0.95
                && !ctx_->decodeSet_.empty()) {
                break; // Wait for running beams to finish.
            }
            // Baseline (M off): admit whenever blocks can be found now
            // — evictable cache counts as allocatable, exactly vLLM's
            // policy — and eat mid-decode preemptions later.
            if (!admitBeam(idx)) {
                // Could not materialise the path.
                killAllSpeculation();
                spec_disabled = true;
                if (!admitBeam(idx)) {
                    if (ctx_->decodeSet_.empty()) {
                        // Alone it still does not fit: the beam can
                        // never run under this budget.
                        b.forceKilled = true;
                        b.finishedGen = true;
                        ++ctx_->forcedTerminations_;
                        ++q_head;
                    }
                    break;
                }
            }
            if (b.inDecode)
                pinned_tokens += need;
            ++q_head;
        }

        // --- Phase 2: speculative extension (preemptible) ---
        if (config_.speculativeExtension && ctx_->specAllowed_
            && !spec_disabled && q_head >= ctx_->queue_.size()) {
            fillSpeculativeSlots();
        }

        // Snapshot the running members for this wave. Branch vectors
        // may grow (invalidating pointers) only in fillSpeculativeSlots
        // above, so pointers are stable for the rest of the wave.
        ctx_->specScratch_ = ctx_->specRunning_;
        std::vector<SpecBranch *> spec_run;
        spec_run.reserve(ctx_->specScratch_.size());
        for (const auto &[beam_idx, branch_idx] : ctx_->specScratch_) {
            SpecBranch &br = ctx_->active_[beam_idx]->branches[branch_idx];
            if (br.node >= 0 && !br.complete && br.retained)
                spec_run.push_back(&br);
        }
        if (ctx_->decodeSet_.empty() && spec_run.empty()) {
            if (q_head >= ctx_->queue_.size())
                break;
            continue; // More standard beams to admit.
        }

        // --- Next event: smallest remaining token count ---
        int dt = std::numeric_limits<int>::max();
        for (size_t idx : ctx_->decodeSet_) {
            const ActiveBeam &b = *ctx_->active_[idx];
            dt = std::min(dt, b.targetTokens - b.decoded);
        }
        for (SpecBranch *br : spec_run)
            dt = std::min(dt, br->target - br->decoded);
        dt = std::max(dt, 1);

        const int active_total = static_cast<int>(ctx_->decodeSet_.size())
            + static_cast<int>(spec_run.size());
        const double ctx = currentAvgContext() + dt * 0.5;
        const double step_time = roofline_.decodeStepTime(
            models_.generator, active_total, ctx);
        ctx_->clock_.advance(dt * step_time, Phase::Generation,
                       roofline_.decodeComputeUtil(models_.generator,
                                                   active_total, ctx),
                       active_total, capacity);

        const uint64_t tick =
            static_cast<uint64_t>(ctx_->clock_.now() * 1e6);

        // Memory pressure from the standard beams preempts speculation
        // *before* any useful cache gets evicted (Sec. 4.1.2: the
        // speculative phase is fully preemptible).
        if (!spec_run.empty()) {
            const size_t wave_need = ctx_->kvGen_->blocksFor(dt)
                * (ctx_->decodeSet_.size() + spec_run.size());
            if (ctx_->kvGen_->freeBlocks() < wave_need) {
                killAllSpeculation();
                spec_disabled = true;
            }
        }

        // --- Apply dt tokens to every running member ---
        std::vector<size_t> still_running;
        for (size_t idx : ctx_->decodeSet_) {
            ActiveBeam &b = *ctx_->active_[idx];
            if (!ctx_->kvGen_->appendTokens(b.curSeg, dt, tick)) {
                // Memory pressure: stop speculation, then preempt the
                // beam itself if still stuck (vLLM swap semantics).
                killAllSpeculation();
                spec_disabled = true;
                if (!ctx_->kvGen_->appendTokens(b.curSeg, dt, tick)) {
                    ctx_->kvGen_->release(b.curSeg);
                    b.pinned = false;
                    b.inDecode = false;
                    pinned_tokens = std::max(
                        0.0, pinned_tokens
                                 - (ctx_->kvGen_->pathTokens(b.curSeg)
                                    + b.targetTokens - b.decoded));
                    ctx_->queue_.push_back(idx);
                    continue;
                }
            }
            b.decoded += dt;
            ctx_->generatedTokens_ += dt;
            if (b.decoded >= b.targetTokens) {
                pinned_tokens = std::max(
                    0.0, pinned_tokens - ctx_->kvGen_->pathTokens(b.curSeg));
                finishStandardBeam(idx);
            } else {
                still_running.push_back(idx);
            }
        }
        ctx_->decodeSet_ = std::move(still_running);

        for (SpecBranch *br : spec_run) {
            if (br->node < 0 || !br->retained)
                continue; // Killed above.
            // Speculative appends may only take free blocks; they must
            // never evict cache the standard beams will re-touch.
            if (!ctx_->kvGen_->appendTokens(br->node, dt, tick,
                                      /*allow_evict=*/false)) {
                releaseBranch(*br);
                continue;
            }
            br->decoded += dt;
            ctx_->generatedTokens_ += dt;
            ctx_->speculativeTokens_ += dt;
            if (br->decoded >= br->target)
                br->complete = true;
        }

        // Refresh the running set from this wave's snapshot: branches
        // that completed, were preempted, or were killed above drop
        // out; order is preserved.
        ctx_->specRunning_.clear();
        for (const auto &entry : ctx_->specScratch_) {
            const SpecBranch &br =
                ctx_->active_[entry.first]->branches[entry.second];
            if (br.node >= 0 && !br.complete && br.retained)
                ctx_->specRunning_.push_back(entry);
        }

        // Iteration ends when every standard beam finished its step;
        // in-flight speculation is strictly terminated at that point
        // (partial tokens are kept as head starts).
        if (ctx_->decodeSet_.empty() && q_head >= ctx_->queue_.size())
            break;
    }
}

void
FastTtsEngine::runVerificationPhase()
{
    if (ctx_->plan_.offloadActive && ctx_->plan_.offloadOverhead > 0)
        ctx_->clock_.advance(ctx_->plan_.offloadOverhead * 0.5, Phase::Transfer);

    // Requests follow the generation schedule order (ctx_->queue_), which is
    // what lets Prefix-Aware Scheduling help the verifier cache too.
    struct Request
    {
        size_t beamIdx;
        int tokens;
    };
    std::vector<Request> requests;
    const uint64_t tick = static_cast<uint64_t>(ctx_->clock_.now() * 1e6);

    std::vector<size_t> order = ctx_->queue_;
    // Beams that never entered the queue (pendingStepDone) need their
    // state updated but no verifier request. A membership bitmap makes
    // this O(n) instead of the former O(n^2) std::find sweep.
    std::vector<char> queued(ctx_->active_.size(), 0);
    for (size_t idx : ctx_->queue_) {
        if (idx < queued.size())
            queued[idx] = 1;
    }
    for (size_t i = 0; i < ctx_->active_.size(); ++i) {
        if (!queued[i])
            order.push_back(i);
    }

    std::vector<double> lookaheadScores;
    lookaheadScores.reserve(ctx_->active_.size());
    for (const auto &bp : ctx_->active_)
        lookaheadScores.push_back(bp->score);
    const SpeculativePolicy::ScoreBins lookaheadBins =
        specPolicy_.scoreBins(lookaheadScores);

    std::vector<char> seen(ctx_->active_.size(), 0);
    for (size_t idx : order) {
        if (seen[idx])
            continue; // Suspended beams appear twice in ctx_->queue_.
        seen[idx] = 1;
        ActiveBeam &b = *ctx_->active_[idx];
        if (b.forceKilled)
            continue;
        if (b.pendingStepDone) {
            b.newScore = b.pendingScore;
            b.newVerSeg = b.pendingVerSeg;
            continue;
        }
        // Mirror the new segment into the verifier tree.
        int ver_seg = ctx_->kvVer_->childOf(b.verLeaf, b.curSegId);
        if (ver_seg < 0)
            ver_seg = ctx_->kvVer_->createChild(b.verLeaf, b.curSegId,
                                          b.targetTokens);
        b.newVerSeg = ver_seg;
        int touch_leaf = ver_seg;

        // LookAhead Verification (Sec. 4.1.3): a completed speculative
        // step for child 0 is concatenated into this request. Gated to
        // beams in the top score bin — pre-verifying a beam the search
        // is about to prune wastes verifier compute.
        SpecBranch *ahead = nullptr;
        if (config_.lookaheadVerification && ctx_->lookaheadAllowed_
            && specPolicy_.binnedPotential(b.score, lookaheadBins)
                >= specPolicy_.branchFactor()) {
            for (auto &br : b.branches) {
                if (br.childIdx == 0 && br.node >= 0 && br.complete) {
                    ahead = &br;
                    break;
                }
            }
        }
        if (ahead != nullptr) {
            ahead->verNode = ctx_->kvVer_->createChild(
                ver_seg, static_cast<uint64_t>(ahead->node) | (1ULL << 62),
                ahead->decoded);
            touch_leaf = ahead->verNode;
        }
        auto touch = ctx_->kvVer_->ensureResident(touch_leaf, tick);
        const int req_tokens = touch.ok
            ? touch.recomputeTokens
            : ctx_->kvVer_->pathTokens(touch_leaf); // Budget too small to
                                              // cache: full re-prefill.
        // Verifier nodes restored from the host tier are excluded
        // from req_tokens above; pay their link transfer instead.
        if (touch.ok)
            chargeSwapIn(touch.swappedInBytes);
        requests.push_back({idx, std::max(req_tokens, 1)});

        b.newScore =
            drawScore(verifier_, b.seed, b.steps, b.draw.quality);
        if (ahead != nullptr) {
            const uint64_t child_seed =
                childLineageSeed(b.seed, b.steps + 1, 0);
            ahead->score = drawScore(verifier_, child_seed, b.steps + 1,
                                     ahead->draw.quality);
            ahead->scored = true;
        }
    }

    // Observed full-path length feeds the next re-plan (verifier
    // working-set estimate).
    double path_total = 0;
    int path_count = 0;
    for (const auto &bp : ctx_->active_) {
        if (bp->newVerSeg >= 0) {
            path_total += ctx_->kvVer_->pathTokens(bp->newVerSeg);
            ++path_count;
        }
    }
    if (path_count > 0)
        ctx_->meanVerifierPath_ = path_total / path_count;

    // Batch the requests at the planned prefill batch size.
    const int b_pre = std::max(1, ctx_->plan_.prefillBatch);
    double seq_total = 0;
    for (size_t i = 0; i < requests.size();) {
        const size_t count =
            std::min<size_t>(b_pre, requests.size() - i);
        double batch_tokens = 0;
        for (size_t k = 0; k < count; ++k)
            batch_tokens += requests[i + k].tokens;
        const double mean_len = batch_tokens / count;
        ctx_->clock_.advance(
            roofline_.prefillTime(models_.verifier,
                                  static_cast<int>(count), mean_len),
            Phase::Verification,
            roofline_.prefillComputeUtil(models_.verifier,
                                         static_cast<int>(count),
                                         mean_len),
            static_cast<int>(count), b_pre);
        seq_total += batch_tokens;
        i += count;
    }
    if (!requests.empty())
        ctx_->meanVerifierSeq_ = seq_total / requests.size();
}

void
FastTtsEngine::completeBeam(ActiveBeam &beam, double score)
{
    CompletedSolution sol;
    sol.answer = beam.draw.answer;
    sol.score = score;
    sol.tokens = beam.totalTokens;
    sol.finishTime = ctx_->clock_.now();
    ctx_->completed_.push_back(sol);
}

void
FastTtsEngine::pruneBeam(ActiveBeam &beam)
{
    for (auto &br : beam.branches) {
        if (br.node >= 0)
            releaseBranch(br);
    }
    beam.branches.clear();
}

void
FastTtsEngine::runSelectionPhase()
{
    // --- Commit step results ---
    for (auto &bp : ctx_->active_) {
        ActiveBeam &b = *bp;
        if (b.forceKilled) {
            // Unverified forced completion: weak score.
            b.steps += 1;
            b.totalTokens += b.decoded;
            completeBeam(b, 0.05);
            pruneBeam(b);
            continue;
        }
        b.steps += 1;
        b.totalTokens += b.targetTokens;
        b.quality = b.draw.quality;
        b.leaf = b.curSeg;
        b.verLeaf = b.newVerSeg;
        b.prevScore = b.score;
        b.score = b.newScore;
    }

    // --- Collect terminal beams ---
    std::vector<size_t> live;
    for (size_t i = 0; i < ctx_->active_.size(); ++i) {
        ActiveBeam &b = *ctx_->active_[i];
        if (b.forceKilled)
            continue;
        if (b.draw.terminal) {
            completeBeam(b, b.score);
            pruneBeam(b);
        } else {
            live.push_back(i);
        }
    }

    const int target = algorithm_.beamWidth()
        - static_cast<int>(ctx_->completed_.size());

    std::vector<BeamCandidate> candidates;
    for (size_t k = 0; k < live.size(); ++k) {
        const ActiveBeam &b = *ctx_->active_[live[k]];
        BeamCandidate c;
        c.index = k;
        c.score = b.score;
        c.prevScore = b.prevScore;
        c.rootIndex = b.rootIndex;
        c.steps = b.steps;
        c.beamId = b.id;
        candidates.push_back(c);
    }

    std::vector<std::unique_ptr<ActiveBeam>> next;
    if (target > 0 && !candidates.empty()) {
        Rng sel_rng(Rng::mix(ctx_->problem_.seed,
                             0x5e1ec7 + static_cast<uint64_t>(
                                 ctx_->iteration_)));
        const SelectionResult result =
            algorithm_.select(candidates, target, sel_rng);

        std::vector<int> child_count(live.size(), 0);
        for (const auto &[cand_idx, k] : result.expansions)
            child_count[cand_idx] = k;

        for (size_t k = 0; k < live.size(); ++k) {
            ActiveBeam &parent = *ctx_->active_[live[k]];
            const int num_children = child_count[k];
            for (int j = 0; j < num_children; ++j) {
                auto child = std::make_unique<ActiveBeam>();
                child->id = ctx_->nextBeamId_++;
                child->seed =
                    childLineageSeed(parent.seed, parent.steps, j);
                child->rootIndex = parent.rootIndex;
                child->steps = parent.steps;
                child->quality = parent.quality;
                child->score = parent.score;
                child->prevScore = parent.score;
                child->totalTokens = parent.totalTokens;
                child->leaf = parent.leaf;
                child->verLeaf = parent.verLeaf;
                child->prevPos = parent.prevPos;
                child->spawnTime = ctx_->clock_.now();

                // Adopt the matching speculative branch, if any
                // (Algorithm 1: DuplicateThenTruncate — the original,
                // j == 0, keeps everything; duplicates truncate).
                SpecBranch *branch = nullptr;
                for (auto &br : parent.branches) {
                    if (br.childIdx == j && br.node >= 0) {
                        branch = &br;
                        break;
                    }
                }
                if (branch != nullptr) {
                    int keep = branch->decoded;
                    if (j != 0) {
                        keep = specPolicy_.truncationKeep(
                            branch->decoded, ctx_->systemRng_);
                        ctx_->kvGen_->truncateTokens(branch->node, keep);
                        ctx_->wastedSpecTokens_ += branch->decoded - keep;
                    }
                    child->curSeg = branch->node;
                    child->curSegId = branch->segId;
                    child->decoded = keep;
                    child->headStart = keep;
                    child->draw = branch->draw;
                    child->targetTokens = branch->target;
                    child->stepPrepared = true;
                    if (j == 0 && branch->complete && branch->scored) {
                        child->pendingStepDone = true;
                        child->pendingScore = branch->score;
                        child->pendingVerSeg = branch->verNode;
                    } else if (branch->verNode >= 0) {
                        branch->verNode = -1;
                    }
                    // Transfer the branch's KV retention to nobody:
                    // waiting beams hold no pins (evictable), matching
                    // vLLM semantics.
                    if (branch->retained) {
                        ctx_->kvGen_->release(branch->node);
                        branch->retained = false;
                    }
                    branch->node = -1; // Consumed.
                } else {
                    child->curSeg = -1;
                    child->decoded = 0;
                }
                next.push_back(std::move(child));
            }
            // Unconsumed branches are wasted speculation.
            pruneBeam(parent);
        }
    } else {
        // Width exhausted: prune all remaining candidates.
        for (size_t k = 0; k < live.size(); ++k)
            pruneBeam(*ctx_->active_[live[k]]);
    }

    ctx_->active_ = std::move(next);
}

RequestResult
FastTtsEngine::runRequest(const Problem &problem)
{
    beginRequest(problem);
    while (stepRequest()) {
    }
    return finishRequest();
}

void
FastTtsEngine::beginRequest(const Problem &problem,
                            bool defer_prompt_prefill)
{
    resetRequestState(problem, defer_prompt_prefill);
    ctx_->inRequest_ = true;
}

int
FastTtsEngine::prefillPromptChunk(int max_tokens)
{
    if (ctx_->promptRemaining_ <= 0 || max_tokens <= 0)
        return 0;
    const int chunk = std::min(max_tokens, ctx_->promptRemaining_);
    if (ctx_->promptRemaining_ == ctx_->promptChunkTotal_) {
        // First chunk (promptChunkTotal_ is the suffix left after any
        // prefix-cache mount; with the cache off it equals the full
        // prompt): materialise the prompt node. Under shared-ledger
        // exhaustion the prompt cannot be stored yet — fall back to
        // paying it as recompute at first decode touch, exactly like
        // the up-front path's ledger deferral (charging chunks AND
        // the inevitable recompute would double-count). The ledger
        // itself stays symmetric either way: allocateBlocks is
        // all-or-nothing, so a refused charge reserves nothing to
        // leak (tests/test_online_server.cc pins occupancy returning
        // to baseline after a tight-budget storm).
        const auto touch = ctx_->kvGen_->ensureResident(
            ctx_->promptNodeGen_,
            static_cast<uint64_t>(ctx_->clock_.now() * 1e6));
        if (!touch.ok) {
            ctx_->promptRemaining_ = 0;
            return 0;
        }
        // A prompt node parked on the host tier by a mid-prefill
        // preemption copies back here; the remaining chunks below
        // still pay their prefill exactly as before.
        chargeSwapIn(touch.swappedInBytes);
    }
    ctx_->clock_.advance(
        roofline_.prefillTime(models_.generator, 1, chunk),
        Phase::Recompute,
        roofline_.prefillComputeUtil(models_.generator, 1, chunk), 1,
        1);
    ctx_->promptRemaining_ -= chunk;
    return chunk;
}

BatchWaveResult
FastTtsEngine::stepBatch(const std::vector<RequestContext *> &contexts,
                         const BatchPlan &plan)
{
    BatchWaveResult out;
    out.outcomes.resize(contexts.size());
    assert(!hasActiveRequest());

    // Park the engine's own (idle) context; members mount one at a
    // time, borrowed — ownership stays with the caller's handles.
    std::unique_ptr<RequestContext> parked = std::move(ctx_);

    struct DecodeRun
    {
        size_t member = 0;
        double genTime = 0;    //!< Generation+recompute clock delta.
        double serialTime = 0; //!< Everything else (verify, transfer).
        int beams = 1;
        double avgCtx = 0;     //!< Mean resident context (tokens).
    };
    std::vector<DecodeRun> runs;
    runs.reserve(plan.entries.size());

    for (const BatchPlanEntry &entry : plan.entries) {
        if (entry.member >= contexts.size()
            || contexts[entry.member] == nullptr)
            continue;
        ctx_.reset(contexts[entry.member]);
        BatchMemberOutcome &outcome = out.outcomes[entry.member];
        outcome.participated = true;
        if (entry.kind == BatchWorkKind::PrefillChunk) {
            const double before = ctx_->clock_.now();
            outcome.prefilledTokens += prefillPromptChunk(entry.tokens);
            const double delta = ctx_->clock_.now() - before;
            outcome.activeDelta += delta;
            out.waveTime += delta;
            ++out.prefillChunks;
        } else {
            DecodeRun run;
            run.member = entry.member;
            run.beams =
                std::max(1, static_cast<int>(ctx_->active_.size()));
            long path_total = 0;
            for (const auto &b : ctx_->active_)
                path_total += ctx_->kvGen_->pathTokens(b->leaf);
            run.avgCtx = ctx_->active_.empty()
                ? static_cast<double>(ctx_->problem_.promptTokens)
                : static_cast<double>(path_total)
                    / static_cast<double>(ctx_->active_.size());
            const double gen0 =
                ctx_->clock_.phaseTime(Phase::Generation)
                + ctx_->clock_.phaseTime(Phase::Recompute);
            const double t0 = ctx_->clock_.now();
            const long decoded0 = ctx_->generatedTokens_;
            outcome.moreWork = stepRequest();
            run.genTime = ctx_->clock_.phaseTime(Phase::Generation)
                + ctx_->clock_.phaseTime(Phase::Recompute) - gen0;
            run.serialTime = (ctx_->clock_.now() - t0) - run.genTime;
            const long decoded = ctx_->generatedTokens_ - decoded0;
            outcome.decodedTokens += decoded;
            out.tokensDecoded += decoded;
            runs.push_back(run);
        }
        ctx_.release();
    }

    // Fuse the decode members' generation time: one wave of
    // sum(beams) sequences from all members streams the generator
    // weights ONCE, so the fused step is priced by the roofline at
    // the combined batch and the serial per-member sum scales down
    // proportionally (decodeStepTime is sublinear in batch — the
    // physical basis of continuous batching's goodput win). Each
    // member's own clock keeps its solo time: per-request results
    // stay independent of batch composition; only the wall/device
    // attribution (activeDelta, waveTime) is fused.
    if (!runs.empty()) {
        double solo_sum = 0;
        double weighted_ctx = 0;
        int batch_total = 0;
        for (const DecodeRun &run : runs) {
            solo_sum += roofline_.decodeStepTime(models_.generator,
                                                 run.beams, run.avgCtx);
            batch_total += run.beams;
            weighted_ctx +=
                static_cast<double>(run.beams) * run.avgCtx;
        }
        double scale = 1.0;
        if (runs.size() > 1 && solo_sum > 0) {
            const double fused = roofline_.decodeStepTime(
                models_.generator, batch_total,
                weighted_ctx / static_cast<double>(batch_total));
            scale = std::min(1.0, fused / solo_sum);
        }
        for (const DecodeRun &run : runs) {
            const double share = scale * run.genTime + run.serialTime;
            out.outcomes[run.member].activeDelta += share;
            out.waveTime += share;
        }
    }

    ctx_ = std::move(parked);
    return out;
}

int
FastTtsEngine::prefillPending() const
{
    return ctx_->promptRemaining_;
}

long
FastTtsEngine::generatedTokensSoFar() const
{
    return ctx_->generatedTokens_;
}

bool
FastTtsEngine::stepRequest()
{
    const int hard_cap = dataset_.maxSteps + 4;
    if (!ctx_->active_.empty() && ctx_->iteration_ < hard_cap) {
        replan();
        runGenerationPhase();
        runVerificationPhase();

        IterationStats stats;
        stats.iteration = ctx_->iteration_;
        stats.activeBeams = static_cast<int>(ctx_->active_.size());
        stats.residentNodes = ctx_->kvGen_->residentNodeCount();
        stats.residentTokens = ctx_->kvGen_->residentTokens();
        long unshared = 0;
        long unique = 0;
        std::unordered_set<int> visited;
        for (const auto &b : ctx_->active_) {
            const int leaf = b->curSeg >= 0 ? b->curSeg : b->leaf;
            unshared += ctx_->kvGen_->pathTokens(leaf);
            for (int id = leaf; id != KvCacheManager::kInvalid;
                 id = ctx_->kvGen_->parentOf(id)) {
                if (!visited.insert(id).second)
                    break; // Shared ancestors already counted.
                unique += ctx_->kvGen_->nodeTokens(id);
            }
        }
        stats.unsharedTokens = unshared;
        stats.uniqueTokens = unique;
        stats.evictions = ctx_->kvGen_->stats().evictions;
        stats.recomputedTokens = ctx_->kvGen_->stats().recomputedTokens;
        stats.decodeBatch = ctx_->plan_.decodeBatch;
        stats.prefillBatch = ctx_->plan_.prefillBatch;

        runSelectionPhase();
        stats.clock = ctx_->clock_.now();
        ctx_->iterStats_.push_back(stats);
        ++ctx_->iteration_;
    }
    return !ctx_->active_.empty() && ctx_->iteration_ < hard_cap;
}

RequestResult
FastTtsEngine::finishRequest()
{
    // Any beams alive at the hard cap (or at cancellation) are
    // abandoned.
    for (auto &b : ctx_->active_)
        pruneBeam(*b);
    ctx_->active_.clear();

    // Outbound host-link time from swap-outs after the last touch
    // charge still belongs to this request's clock.
    chargeSwapIn(0);

    RequestResult result;
    result.completionTime = ctx_->clock_.now();
    result.generatorTime = ctx_->clock_.phaseTime(Phase::Generation)
        + ctx_->clock_.phaseTime(Phase::Recompute);
    result.verifierTime = ctx_->clock_.phaseTime(Phase::Verification);
    result.transferTime = ctx_->clock_.phaseTime(Phase::Transfer);
    result.generatedTokens = ctx_->generatedTokens_;
    result.speculativeTokens = ctx_->speculativeTokens_;
    result.wastedSpecTokens = ctx_->wastedSpecTokens_;
    result.completedBeams = static_cast<int>(ctx_->completed_.size());
    double token_total = 0;
    double time_total = 0;
    for (const auto &s : ctx_->completed_) {
        token_total += static_cast<double>(s.tokens);
        time_total += s.finishTime;
        result.verifiedTokens += s.tokens;
    }
    if (!ctx_->completed_.empty()) {
        result.avgBeamTokens =
            token_total / static_cast<double>(ctx_->completed_.size());
        result.avgBeamCompletion =
            time_total / static_cast<double>(ctx_->completed_.size());
    }
    result.solutions = ctx_->completed_;
    result.kvStats = ctx_->kvGen_->stats();
    const KvStats &ver = ctx_->kvVer_->stats();
    result.kvStats.evictions += ver.evictions;
    result.kvStats.evictedTokens += ver.evictedTokens;
    result.kvStats.recomputedTokens += ver.recomputedTokens;
    result.kvStats.reprefilledTokens += ver.reprefilledTokens;
    result.kvStats.hitTokens += ver.hitTokens;
    result.kvStats.missTokens += ver.missTokens;
    result.kvStats.preemptEvictions += ver.preemptEvictions;
    result.kvStats.preemptEvictedTokens += ver.preemptEvictedTokens;
    result.kvStats.swappedOutTokens += ver.swappedOutTokens;
    result.kvStats.swappedInTokens += ver.swappedInTokens;
    result.kvStats.swapTransferTime += ver.swapTransferTime;
    result.kvStats.prefixHitTokens =
        static_cast<uint64_t>(ctx_->prefixHitTokens_);
    // Publish the prompt back to the cross-request prefix cache (the
    // next request with a shared prefix mounts it), then drop the pin
    // taken at beginRequest.
    if (ctx_->prefixIndex_ != nullptr) {
        ctx_->prefixIndex_->insert(ctx_->promptIds_);
        ctx_->releasePrefixPin();
    }
    ctx_->inRequest_ = false;
    return result;
}

void
FastTtsEngine::abortRequest()
{
    for (auto &b : ctx_->active_)
        pruneBeam(*b);
    ctx_->active_.clear();
    // Abnormal exit: drop the pin taken at beginRequest WITHOUT
    // publishing the prompt — a cancelled/shed/timed-out request must
    // not advertise a prefix it never finished serving.
    ctx_->releasePrefixPin();
    ctx_->inRequest_ = false;
}

// --- Multi-request contexts ---

SuspendedEngineRequest
FastTtsEngine::suspendRequest()
{
    SuspendedEngineRequest out;
    out.ctx_ = std::move(ctx_);
    ctx_ = std::make_unique<RequestContext>();
    return out;
}

void
FastTtsEngine::resumeRequest(SuspendedEngineRequest suspended)
{
    if (suspended.ctx_ == nullptr)
        return;
    assert(!hasActiveRequest());
    ctx_ = std::move(suspended.ctx_);
}

bool
FastTtsEngine::hasActiveRequest() const
{
    return ctx_->inRequest_;
}

void
FastTtsEngine::releaseFinishedKv()
{
    if (ctx_->inRequest_)
        return;
    // The context destructor drops any prefix pin; the KV managers'
    // destructors refund their remaining ledger charge byte-for-byte.
    ctx_ = std::make_unique<RequestContext>();
}

// --- Context-backed accessors (RequestContext is engine.cc-private,
//     so these cannot be inline in the header) ---

const SimClock &
FastTtsEngine::clock() const
{
    return ctx_->clock_;
}

const AllocationPlan &
FastTtsEngine::currentPlan() const
{
    return ctx_->plan_;
}

const std::vector<IterationStats> &
FastTtsEngine::iterationStats() const
{
    return ctx_->iterStats_;
}

const KvCacheManager &
FastTtsEngine::generatorKv() const
{
    return *ctx_->kvGen_;
}

const KvCacheManager &
FastTtsEngine::verifierKv() const
{
    return *ctx_->kvVer_;
}

const std::vector<std::vector<int>> &
FastTtsEngine::stepTokenSamples() const
{
    return ctx_->stepTokens_;
}

int
FastTtsEngine::forcedTerminations() const
{
    return ctx_->forcedTerminations_;
}

// --- SuspendedEngineRequest ---

SuspendedEngineRequest::SuspendedEngineRequest() = default;
SuspendedEngineRequest::~SuspendedEngineRequest() = default;
SuspendedEngineRequest::SuspendedEngineRequest(
    SuspendedEngineRequest &&) noexcept = default;
SuspendedEngineRequest &
SuspendedEngineRequest::operator=(SuspendedEngineRequest &&) noexcept =
    default;

int
SuspendedEngineRequest::promptTokensPending() const
{
    return ctx_ != nullptr ? ctx_->promptRemaining_ : 0;
}

int
SuspendedEngineRequest::activeBeams() const
{
    return ctx_ != nullptr ? static_cast<int>(ctx_->active_.size())
                           : 0;
}

uint64_t
SuspendedEngineRequest::prefixKey() const
{
    if (ctx_ == nullptr || ctx_->prefixNode_ <= PrefixIndex::kRoot)
        return 0;
    return static_cast<uint64_t>(ctx_->prefixNode_);
}

double
SuspendedEngineRequest::residentKvBytes() const
{
    if (ctx_ == nullptr)
        return 0;
    double bytes = 0;
    if (ctx_->kvGen_ != nullptr)
        bytes += ctx_->kvGen_->residentBytes();
    if (ctx_->kvVer_ != nullptr)
        bytes += ctx_->kvVer_->residentBytes();
    return bytes;
}

long
SuspendedEngineRequest::evictKv()
{
    if (ctx_ == nullptr)
        return 0;
    const uint64_t tick =
        static_cast<uint64_t>(ctx_->clock_.now() * 1e6);
    long dropped = 0;
    // Skip trees that hold no blocks (O(1)): under sustained budget
    // pressure the serving layer retries eviction every time slice,
    // and an already-evicted victim must not pay two full-tree scans
    // per retry.
    //
    // With a host tier attached each tree makes the roofline
    // swap-vs-recompute call (KvSession::suspend with the per-token
    // prefill rate captured at request start); the outbound copy is
    // charged to the parked request's own clock as Phase::Transfer,
    // so tiering shows up in its latency, not just its token counts.
    if (ctx_->kvGen_ != nullptr && ctx_->kvGen_->residentBytes() > 0) {
        KvSession session(*ctx_->kvGen_);
        dropped += session.suspend(tick, ctx_->genRecomputePerToken_);
        if (session.lastSwapOutSeconds() > 0)
            ctx_->clock_.advance(session.lastSwapOutSeconds(),
                                 Phase::Transfer);
    }
    if (ctx_->kvVer_ != nullptr && ctx_->kvVer_->residentBytes() > 0) {
        KvSession session(*ctx_->kvVer_);
        dropped += session.suspend(tick, ctx_->verRecomputePerToken_);
        if (session.lastSwapOutSeconds() > 0)
            ctx_->clock_.advance(session.lastSwapOutSeconds(),
                                 Phase::Transfer);
    }
    return dropped;
}

} // namespace fasttts
