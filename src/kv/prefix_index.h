/**
 * @file
 * Global cross-request radix index over prompt token prefixes.
 *
 * KvCacheManager shares KV *within* one request's beam tree; real
 * serving traffic (shared system prompts, multi-turn sessions, N-best
 * reranking) is dominated by prefixes shared *across* requests. The
 * PrefixIndex is one process-wide radix tree over token sequences —
 * the SGLang/SMART RadixCache design — that lets a new request mount
 * the longest already-cached prefix of its prompt instead of
 * re-prefilling it. Four axes define the design, mirroring the four
 * serving axes of core/online_server.h:
 *
 *  - Match (`acquire`): walk the radix tree over the prompt's token
 *    ids and return the deepest fully-matched node. The whole matched
 *    path is pinned (per-node refcounts), so concurrent eviction can
 *    never drop KV a mounted request still references; `release`
 *    unpins. Matching is full-node only — divergence points become
 *    node boundaries at insert time, so repeat traffic converges to
 *    exact hits.
 *
 *  - Publish (`insert`): on request completion the full prompt is
 *    inserted back. A partial match against an existing edge splits
 *    the node in place: a new prefix node adopts the shared tokens and
 *    the original node keeps the suffix *and its identity*, so
 *    outstanding pins stay valid (the new prefix node inherits the
 *    child's refcount — every pinned path through the child also
 *    passes through it).
 *
 *  - Evict: the index owns a byte budget (tokens x kv bytes/token).
 *    When an insert would exceed it, refcount-zero *leaf* nodes are
 *    evicted LRU (internal monotonic tick, no wall clock) until the
 *    insert fits; inserts degrade gracefully to a prefix of the
 *    remaining tokens when the budget (or ledger) runs dry.
 *
 *  - Charge: with a KvBudgetLedger attached, every resident token is
 *    charged to the same device-wide budget the per-request KV trees
 *    contend for — cached prefixes are real memory, not free capacity.
 *    Eviction refunds the ledger byte-for-byte.
 *
 * Determinism: children are sorted vectors keyed by edge first-token,
 * recency is an internal monotonic counter, and there is no hashing —
 * identical call sequences reproduce identical trees bit-for-bit.
 */

#ifndef FASTTTS_KV_PREFIX_INDEX_H
#define FASTTTS_KV_PREFIX_INDEX_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fasttts
{

class FaultInjector;
class KvBudgetLedger;

/** Aggregate statistics of one PrefixIndex over its lifetime. */
struct PrefixIndexStats
{
    uint64_t lookups = 0;        //!< acquire() calls.
    uint64_t hits = 0;           //!< Lookups that matched > 0 tokens.
    uint64_t hitTokens = 0;      //!< Prompt tokens served from cache.
    uint64_t insertedTokens = 0; //!< Tokens newly made resident.
    uint64_t rejectedTokens = 0; //!< Insert tokens refused (budget).
    uint64_t splits = 0;         //!< Nodes split on partial match.
    uint64_t evictions = 0;      //!< Nodes evicted (LRU).
    uint64_t evictedTokens = 0;  //!< Tokens dropped by eviction.
};

/**
 * Refcounted radix tree over token-id sequences with byte-budget LRU
 * eviction. Owned by ServingSystem; one instance serves every request
 * of the process. Not thread-safe (the simulator is single-threaded).
 */
class PrefixIndex
{
  public:
    using NodeId = int;
    static constexpr NodeId kRoot = 0;
    static constexpr NodeId kInvalid = -1;

    /**
     * @param budget_bytes Device bytes the index may keep resident.
     * @param kv_bytes_per_token KV footprint of one cached prompt
     *        token (generator + verifier when both trees mount it).
     */
    PrefixIndex(double budget_bytes, double kv_bytes_per_token);

    /** Releases any shared-ledger charge still held. */
    ~PrefixIndex();

    PrefixIndex(const PrefixIndex &) = delete;
    PrefixIndex &operator=(const PrefixIndex &) = delete;

    /**
     * Attach a shared byte budget (kv/kv_session.h): every resident
     * token is charged to it and refunded on eviction, so cached
     * prefixes contend with the in-flight requests' own KV. Must be
     * called while the index is empty; the ledger must outlive the
     * index. Pass nullptr to detach (only valid when nothing is
     * resident).
     */
    void attachLedger(KvBudgetLedger *ledger);

    /**
     * Probe `injector` at FaultSite::kPrefixAcquire on every
     * acquire(); an injected fault reports a miss (zero matched
     * tokens, root pinned as usual) as if the cached entry were
     * corrupt, forcing a full prompt prefill. Pass nullptr to detach.
     */
    void attachFaultInjector(FaultInjector *injector)
    {
        faults_ = injector;
    }

    /** Result of one prefix lookup. */
    struct Match
    {
        int matchedTokens = 0;  //!< Longest cached prefix length.
        NodeId node = kRoot;    //!< Deepest matched node (pinned).
    };

    /**
     * Longest fully-cached prefix of `tokens`. The matched path
     * (including the root) is pinned until the caller release()s the
     * returned node — callers must release exactly once, even on a
     * zero-token match.
     */
    [[nodiscard]] Match acquire(const std::vector<int32_t> &tokens);

    /** Unpin the path acquired for `node`. kInvalid is a no-op. */
    void release(NodeId node);

    /**
     * Publish a token sequence (typically a completed request's full
     * prompt). Existing nodes are reused, partial edge matches are
     * split in place, and the novel suffix becomes new nodes —
     * truncated when the byte budget or ledger refuses the tokens
     * (counted in stats().rejectedTokens).
     */
    void insert(const std::vector<int32_t> &tokens);

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /** Active pins on a node (root counts zero-match pins too). */
    [[nodiscard]] int refCount(NodeId node) const;

    /** Live nodes, excluding the root. */
    [[nodiscard]] int nodeCount() const { return liveNodes_; }

    /** Tokens currently resident across the tree. */
    [[nodiscard]] long residentTokens() const { return residentTokens_; }

    /** Bytes currently resident (tokens x kv bytes/token). */
    [[nodiscard]] double residentBytes() const;

    /** Byte budget. */
    [[nodiscard]] double budgetBytes() const { return budgetBytes_; }

    /** KV footprint of one cached token. */
    [[nodiscard]] double kvBytesPerToken() const
    {
        return kvBytesPerToken_;
    }

    /** The attached shared ledger (nullptr when standalone). */
    [[nodiscard]] KvBudgetLedger *ledger() const { return ledger_; }

    /** Running statistics. */
    [[nodiscard]] const PrefixIndexStats &stats() const { return stats_; }

  private:
    struct Node
    {
        NodeId parent = kInvalid;
        std::vector<int32_t> tokens; //!< Edge label from the parent.
        //!< Children as (edge first token, node), kept sorted by
        //!< token so walks are deterministic and O(log fanout).
        std::vector<std::pair<int32_t, NodeId>> children;
        int refCount = 0;
        uint64_t lastUse = 0;
        bool erased = false;
    };

    Node &node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }
    [[nodiscard]] const Node &node(NodeId id) const
    {
        return nodes_[static_cast<size_t>(id)];
    }

    /** Child of `parent` whose edge starts with `token`, or kInvalid. */
    [[nodiscard]] NodeId findChild(NodeId parent, int32_t token) const;
    void linkChild(NodeId parent, NodeId child);
    void unlinkChild(NodeId parent, NodeId child);
    [[nodiscard]] NodeId newNode();
    /** Split `child` so its first `keep` edge tokens become a new
     *  prefix node; `child` keeps the suffix and its identity.
     *  @return The new prefix node. */
    NodeId splitNode(NodeId child, int keep);
    /** Evict the LRU refcount-zero leaf. @return false when none. */
    bool evictOne();
    /** Tokens of `want` the budget + ledger can accept right now,
     *  after LRU eviction; charges the ledger for the grant. */
    [[nodiscard]] int reserveTokens(int want);

    double budgetBytes_;
    double kvBytesPerToken_;
    KvBudgetLedger *ledger_ = nullptr;
    FaultInjector *faults_ = nullptr;
    double ledgerCharged_ = 0; //!< Bytes charged to ledger_.
    std::vector<Node> nodes_;
    std::vector<NodeId> freeList_;
    long residentTokens_ = 0;
    int liveNodes_ = 0;
    uint64_t tick_ = 0; //!< Monotonic recency counter (no wall clock).
    PrefixIndexStats stats_;
};

} // namespace fasttts

#endif // FASTTTS_KV_PREFIX_INDEX_H
