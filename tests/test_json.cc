/**
 * @file
 * Unit tests for the minimal JSON document model (util/json.h):
 * building, serializing, parsing, and round-tripping the structures
 * the benchmark harness emits.
 */

#include "util/json.h"

#include <gtest/gtest.h>

namespace fasttts
{
namespace
{

TEST(Json, DefaultIsNull)
{
    Json value;
    EXPECT_TRUE(value.isNull());
    EXPECT_EQ(value.dump(), "null");
}

TEST(Json, Scalars)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-3.5).dump(), "-3.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json object = Json::object();
    object.set("z", 1);
    object.set("a", 2);
    object.set("m", 3);
    EXPECT_EQ(object.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
    object.set("z", 9); // Overwrite keeps position.
    EXPECT_EQ(object.dump(), "{\"z\":9,\"a\":2,\"m\":3}");
}

TEST(Json, MissingKeyLookupsChainSafely)
{
    Json object = Json::object();
    EXPECT_TRUE(object["nope"]["deeper"].isNull());
    EXPECT_EQ(object["nope"].asNumber(7.0), 7.0);
}

TEST(Json, StringEscaping)
{
    const Json value(std::string("a\"b\\c\n\t\x01"));
    EXPECT_EQ(value.dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
    std::string error;
    const Json back = Json::parse(value.dump(), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.asString(), "a\"b\\c\n\t\x01");
}

TEST(Json, ParseDocument)
{
    std::string error;
    const Json doc = Json::parse(
        R"({"name":"fig01","quick":true,"n":64,"xs":[1,2.5,-3e2],"sub":{"k":null}})",
        &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(doc["name"].asString(), "fig01");
    EXPECT_TRUE(doc["quick"].asBool());
    EXPECT_EQ(doc["n"].asNumber(), 64.0);
    ASSERT_EQ(doc["xs"].size(), 3u);
    EXPECT_EQ(doc["xs"].at(1).asNumber(), 2.5);
    EXPECT_EQ(doc["xs"].at(2).asNumber(), -300.0);
    EXPECT_TRUE(doc["sub"]["k"].isNull());
}

TEST(Json, ParseUnicodeEscape)
{
    std::string error;
    const Json doc = Json::parse(R"("aé中")", &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(doc.asString(), "a\xc3\xa9\xe4\xb8\xad");
}

TEST(Json, ParseErrors)
{
    std::string error;
    EXPECT_TRUE(Json::parse("{", &error).isNull());
    EXPECT_FALSE(error.empty());
    Json::parse("[1,]", &error); // Trailing comma rejected.
    EXPECT_FALSE(error.empty());
    Json::parse("12 34", &error);
    EXPECT_FALSE(error.empty());
    Json::parse("\"unterminated", &error);
    EXPECT_FALSE(error.empty());
}

TEST(Json, RoundTripPrettyPrinted)
{
    Json doc = Json::object();
    doc.set("schema", "fasttts-bench-v1");
    Json latency = Json::object();
    latency.set("p50", 1.25);
    latency.set("p99", 7.5);
    doc.set("latency_s", std::move(latency));
    Json beams = Json::array();
    beams.push(8);
    beams.push(64);
    doc.set("beams", std::move(beams));

    const std::string pretty = doc.dump(2);
    EXPECT_NE(pretty.find("\n  \"latency_s\": {"), std::string::npos);

    std::string error;
    const Json back = Json::parse(pretty, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.dump(), doc.dump());
}

TEST(Json, IntegersRoundTripExactly)
{
    const Json value(static_cast<long>(1234567890123L));
    EXPECT_EQ(value.dump(), "1234567890123");
    std::string error;
    EXPECT_EQ(Json::parse(value.dump(), &error).asNumber(), 1234567890123.0);
    EXPECT_TRUE(error.empty()) << error;
}

} // namespace
} // namespace fasttts
