#include "sim/timeline.h"

#include <algorithm>
#include <cassert>

namespace fasttts
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Generation:
        return "generation";
      case Phase::Verification:
        return "verification";
      case Phase::Recompute:
        return "recompute";
      case Phase::Transfer:
        return "transfer";
      case Phase::Idle:
        return "idle";
    }
    return "unknown";
}

void
SimClock::advance(double duration, Phase phase, double compute_util,
                  int active, int total)
{
    assert(duration >= 0.0);
    if (duration <= 0.0)
        return;
    if (traceEnabled_) {
        TimelineSegment seg;
        seg.start = now_;
        seg.duration = duration;
        seg.phase = phase;
        seg.computeUtil = compute_util;
        seg.activeSlots = active;
        seg.totalSlots = total < 0 ? active : total;
        trace_.push_back(seg);
    }
    phaseTotals_[static_cast<int>(phase)] += duration;
    now_ += duration;
}

double
SimClock::phaseTime(Phase phase) const
{
    return phaseTotals_[static_cast<int>(phase)];
}

std::vector<double>
SimClock::sampleUtilization(double dt, double t_end) const
{
    if (t_end < 0)
        t_end = now_;
    std::vector<double> samples;
    if (dt <= 0 || t_end <= 0)
        return samples;
    samples.reserve(static_cast<size_t>(t_end / dt) + 1);
    size_t seg = 0;
    for (double t = 0; t < t_end; t += dt) {
        while (seg < trace_.size()
               && trace_[seg].start + trace_[seg].duration <= t) {
            ++seg;
        }
        if (seg < trace_.size() && trace_[seg].start <= t)
            samples.push_back(trace_[seg].computeUtil);
        else
            samples.push_back(0.0);
    }
    return samples;
}

void
SimClock::discardTrace()
{
    trace_.clear();
    trace_.shrink_to_fit();
}

} // namespace fasttts
