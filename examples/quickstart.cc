/**
 * @file
 * Quickstart: serve a few math-reasoning requests with FastTTS and
 * compare against the vLLM-style baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/serving.h"
#include "util/table.h"

int
main()
{
    using namespace fasttts;

    ServingOptions options;
    options.models = config1_5Bplus1_5B();
    options.datasetName = "AMC";
    options.algorithmName = "beam_search";
    options.numBeams = 32;

    // Baseline: the same engine with every optimization disabled.
    ServingOptions baseline_options = options;
    baseline_options.config = FastTtsConfig::baseline();

    std::cout << "FastTTS quickstart: " << options.models.label
              << " on " << options.deviceName << ", n=" << options.numBeams
              << ", " << options.datasetName << "\n";

    ServingSystem baseline(baseline_options);
    ServingSystem fast(options);

    const int num_problems = 8;
    BatchResult base = baseline.serveProblems(num_problems);
    BatchResult opt = fast.serveProblems(num_problems);

    Table table("Baseline (vLLM-style) vs FastTTS");
    table.setHeader({"system", "goodput tok/s", "latency s",
                     "generator s", "verifier s", "top-1 acc %"});
    table.addRow("baseline",
                 {base.meanGoodput, base.meanLatency,
                  base.meanGeneratorTime, base.meanVerifierTime,
                  base.top1Accuracy});
    table.addRow("fasttts",
                 {opt.meanGoodput, opt.meanLatency, opt.meanGeneratorTime,
                  opt.meanVerifierTime, opt.top1Accuracy});
    table.setCaption("FastTTS should show higher goodput and lower "
                     "latency at matching accuracy.");
    table.print(std::cout);

    const double speedup = base.meanLatency / opt.meanLatency;
    std::cout << "\nLatency speedup: " << formatDouble(speedup, 2)
              << "x\n";
    return 0;
}
