/**
 * @file
 * Tests for the public API subsystem: Status/StatusOr, the generic
 * Registry, and EngineArgs parsing (argv and JSON) including every
 * error path.
 */

#include <gtest/gtest.h>

#include "api/engine_args.h"
#include "api/registry.h"
#include "api/status.h"
#include "core/serving.h"
#include "util/json.h"

namespace fasttts
{
namespace
{

// ---------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------

TEST(Status, DefaultIsOk)
{
    EXPECT_TRUE(Status().ok());
    EXPECT_TRUE(okStatus().ok());
    EXPECT_EQ(okStatus().toString(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage)
{
    const Status s = Status::notFound("missing thing");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kNotFound);
    EXPECT_EQ(s.message(), "missing thing");
    EXPECT_EQ(s.toString(), "not_found: missing thing");
    EXPECT_EQ(Status::invalidArgument("x").code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(Status::alreadyExists("x").code(),
              StatusCode::kAlreadyExists);
    EXPECT_EQ(Status::failedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
}

TEST(StatusOr, HoldsValueOrStatus)
{
    StatusOr<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, 7);
    EXPECT_TRUE(good.status().ok());

    StatusOr<int> bad(Status::invalidArgument("no"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, SupportsMoveOnlyTypes)
{
    StatusOr<std::unique_ptr<int>> holder(std::make_unique<int>(3));
    ASSERT_TRUE(holder.ok());
    std::unique_ptr<int> taken = *std::move(holder);
    EXPECT_EQ(*taken, 3);
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(Registry, RegisterLookupListRoundTrip)
{
    Registry<int> reg("widget");
    EXPECT_TRUE(reg.add("one", [] { return 1; }).ok());
    EXPECT_TRUE(reg.add("two", [] { return 2; }).ok());

    EXPECT_TRUE(reg.contains("one"));
    EXPECT_FALSE(reg.contains("three"));
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.list(), (std::vector<std::string>{"one", "two"}));
    EXPECT_EQ(*reg.create("two"), 2);
}

TEST(Registry, DuplicateAndEmptyNamesRejected)
{
    Registry<int> reg("widget");
    EXPECT_TRUE(reg.add("one", [] { return 1; }).ok());
    EXPECT_EQ(reg.add("one", [] { return 9; }).code(),
              StatusCode::kAlreadyExists);
    EXPECT_EQ(reg.add("", [] { return 0; }).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(reg.add("null", nullptr).code(),
              StatusCode::kInvalidArgument);
    // The failed registrations must not have changed the contents.
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(*reg.create("one"), 1);
}

TEST(Registry, UnknownNameListsValidNames)
{
    Registry<int> reg("widget");
    checkOk(reg.add("alpha", [] { return 1; }));
    checkOk(reg.add("beta", [] { return 2; }));
    const auto missing = reg.create("gamma");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
    EXPECT_NE(missing.status().message().find("alpha"),
              std::string::npos);
    EXPECT_NE(missing.status().message().find("beta"),
              std::string::npos);
}

TEST(Registry, RemoveDropsEntries)
{
    Registry<int> reg("widget");
    checkOk(reg.add("one", [] { return 1; }));
    EXPECT_TRUE(reg.remove("one").ok());
    EXPECT_FALSE(reg.contains("one"));
    EXPECT_EQ(reg.remove("one").code(), StatusCode::kNotFound);
}

TEST(Registry, FactoryArgumentsForwarded)
{
    Registry<int, int, int> reg("adder");
    checkOk(reg.add("sum", [](int a, int b) { return a + b; }));
    EXPECT_EQ(*reg.create("sum", 3, 4), 7);
}

TEST(Registry, CustomDeviceRegistrationIsServable)
{
    const std::string name = "TestGPU-registry-roundtrip";
    ASSERT_TRUE(deviceRegistry()
                    .add(name,
                         [name] {
                             DeviceSpec d = rtx4090();
                             d.name = name;
                             return d;
                         })
                    .ok());
    EXPECT_EQ(deviceByName(name)->name, name);

    ServingOptions opts;
    opts.deviceName = name;
    opts.numBeams = 4;
    auto system = ServingSystem::create(opts);
    ASSERT_TRUE(system.ok());
    EXPECT_GT(system->serveProblems(1).meanGoodput, 0);

    EXPECT_TRUE(deviceRegistry().remove(name).ok());
    EXPECT_FALSE(deviceByName(name).ok());
}

TEST(Registry, BuiltInsPresent)
{
    EXPECT_GE(deviceRegistry().size(), 4u);
    EXPECT_GE(datasetRegistry().size(), 4u);
    EXPECT_GE(algorithmRegistry().size(), 5u);
    EXPECT_GE(modelConfigRegistry().size(), 3u);
    EXPECT_GE(modelRegistry().size(), 4u);
    EXPECT_EQ((*modelByName("qwen7b")).numLayers, 28);
    EXPECT_FALSE(modelByName("gpt5").ok());
}

// ---------------------------------------------------------------------
// EngineArgs: argv parsing
// ---------------------------------------------------------------------

StatusOr<EngineArgs>
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return EngineArgs::fromArgv(static_cast<int>(argv.size()),
                                argv.data());
}

TEST(EngineArgsArgv, DefaultsSurviveEmptyCommandLine)
{
    const auto args = parse({});
    ASSERT_TRUE(args.ok());
    EXPECT_EQ(args->device, "RTX4090");
    EXPECT_EQ(args->dataset, "AIME");
    EXPECT_EQ(args->algorithm, "beam_search");
    EXPECT_EQ(args->models, "1.5B+1.5B");
    EXPECT_EQ(args->mode, "fasttts");
    EXPECT_EQ(args->numBeams, 32);
    EXPECT_EQ(args->seed, 2026u);
    EXPECT_TRUE(args->validate().ok());
}

TEST(EngineArgsArgv, AllFlagsParse)
{
    const auto args = parse(
        {"--device", "RTX3070Ti", "--dataset", "AMC", "--algorithm",
         "dvts", "--models", "1.5B+7B", "--mode", "baseline", "--beams",
         "64", "--branch-factor", "8", "--problems", "3", "--seed",
         "42", "--offload", "--memory-fraction", "0.5",
         "--reserved-gib", "0.25"});
    ASSERT_TRUE(args.ok());
    EXPECT_EQ(args->device, "RTX3070Ti");
    EXPECT_EQ(args->dataset, "AMC");
    EXPECT_EQ(args->algorithm, "dvts");
    EXPECT_EQ(args->models, "1.5B+7B");
    EXPECT_EQ(args->mode, "baseline");
    EXPECT_EQ(args->numBeams, 64);
    EXPECT_EQ(args->branchFactor, 8);
    EXPECT_EQ(args->numProblems, 3);
    EXPECT_EQ(args->seed, 42u);
    EXPECT_TRUE(args->offload);
    EXPECT_DOUBLE_EQ(args->memoryFraction, 0.5);
    EXPECT_DOUBLE_EQ(args->reservedGiB, 0.25);
    EXPECT_TRUE(args->validate().ok());
}

TEST(EngineArgsArgv, EqualsFormAndNoOffload)
{
    const auto args =
        parse({"--beams=16", "--offload", "--no-offload"});
    ASSERT_TRUE(args.ok());
    EXPECT_EQ(args->numBeams, 16);
    EXPECT_FALSE(args->offload);
}

TEST(EngineArgsArgv, PositionalsAreRejected)
{
    // Bare positionals ([num_problems] [dataset]) completed their
    // one-release deprecation window and are now hard errors that
    // point at the replacement flags.
    const auto args = parse({"7", "MATH500"});
    EXPECT_EQ(args.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(args.status().message().find("--problems"),
              std::string::npos);

    EXPECT_EQ(parse({"7"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"seven"}).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(EngineArgsArgv, HelpShortCircuits)
{
    const auto args = parse({"--help"});
    ASSERT_TRUE(args.ok());
    EXPECT_TRUE(args->helpRequested);
    const auto short_form = parse({"-h"});
    ASSERT_TRUE(short_form.ok());
    EXPECT_TRUE(short_form->helpRequested);
}

TEST(EngineArgsArgv, ErrorPaths)
{
    // Unknown flag.
    EXPECT_EQ(parse({"--bogus"}).status().code(),
              StatusCode::kInvalidArgument);
    // Missing value.
    EXPECT_EQ(parse({"--beams"}).status().code(),
              StatusCode::kInvalidArgument);
    // Non-numeric and out-of-range numbers.
    EXPECT_EQ(parse({"--beams", "ten"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"--beams", "0"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"--beams", "12x"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"--problems", "-1"}).status().code(),
              StatusCode::kInvalidArgument);
    // Seed must be unsigned.
    EXPECT_EQ(parse({"--seed", "-3"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"--seed", "1.5"}).status().code(),
              StatusCode::kInvalidArgument);
    // Malformed doubles.
    EXPECT_EQ(parse({"--memory-fraction", "half"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"--reserved-gib", "1.0gib"}).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(EngineArgsValidate, RegistryMembershipEnforced)
{
    EngineArgs args;
    args.device = "RTX409O";
    EXPECT_EQ(args.validate().code(), StatusCode::kNotFound);

    args = EngineArgs();
    args.dataset = "AIME2025";
    EXPECT_EQ(args.validate().code(), StatusCode::kNotFound);

    args = EngineArgs();
    args.algorithm = "mcts";
    EXPECT_EQ(args.validate().code(), StatusCode::kNotFound);

    args = EngineArgs();
    args.models = "70B+70B";
    EXPECT_EQ(args.validate().code(), StatusCode::kNotFound);

    args = EngineArgs();
    args.mode = "turbo";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.memoryFraction = 1.5;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);
}

TEST(EngineArgsConvert, ToServingOptionsRoundTrip)
{
    EngineArgs args;
    args.device = "RTX4070Ti";
    args.dataset = "AMC";
    args.algorithm = "dvts";
    args.models = "1.5B+7B";
    args.mode = "baseline";
    args.numBeams = 24;
    args.branchFactor = 6;
    args.seed = 777;
    args.offload = true;
    args.memoryFraction = 0.6;
    args.reservedGiB = 2.0;

    const auto opts = args.toServingOptions();
    ASSERT_TRUE(opts.ok());
    EXPECT_EQ(opts->deviceName, "RTX4070Ti");
    EXPECT_EQ(opts->datasetName, "AMC");
    EXPECT_EQ(opts->algorithmName, "dvts");
    EXPECT_EQ(opts->models.label, "1.5B+7B");
    EXPECT_DOUBLE_EQ(opts->models.memoryFraction, 0.6);
    EXPECT_EQ(opts->numBeams, 24);
    EXPECT_EQ(opts->branchFactor, 6);
    EXPECT_EQ(opts->seed, 777u);
    EXPECT_FALSE(opts->config.speculativeExtension); // baseline
    EXPECT_TRUE(opts->config.offloadEnabled);
    EXPECT_DOUBLE_EQ(opts->config.reservedBytes, 2.0 * GiB);

    // Invalid args refuse to convert.
    args.algorithm = "nope";
    EXPECT_FALSE(args.toServingOptions().ok());
}

TEST(EngineArgsConvert, UnsetOverridesKeepDefaults)
{
    const EngineArgs args; // memoryFraction = 0, reservedGiB = -1.
    const auto opts = args.toServingOptions();
    ASSERT_TRUE(opts.ok());
    EXPECT_DOUBLE_EQ(opts->models.memoryFraction,
                     config1_5Bplus1_5B().memoryFraction);
    EXPECT_DOUBLE_EQ(opts->config.reservedBytes,
                     FastTtsConfig().reservedBytes);
}

TEST(EngineArgsHelp, ListsRegistriesAndFlags)
{
    const std::string text = EngineArgs::help("tool");
    for (const char *needle :
         {"--device", "--dataset", "--algorithm", "--models", "--beams",
          "--seed", "RTX4090", "AIME", "beam_search", "1.5B+1.5B"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST(EngineArgsArgv, OffloadRejectsAttachedValue)
{
    EXPECT_EQ(parse({"--offload=false"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"--no-offload=1"}).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(EngineArgsArgv, ParsedFlagsRecorded)
{
    const auto args = parse({"--beams", "16", "--offload",
                             "--problems", "3", "--dataset", "AMC"});
    ASSERT_TRUE(args.ok());
    EXPECT_EQ(args->parsedFlags,
              (std::vector<std::string>{"--beams", "--offload",
                                        "--problems", "--dataset"}));
}

TEST(EngineArgsArgv, UnsupportedFlagsRejected)
{
    const auto args = parse({"--beams", "16", "--problems", "2"});
    ASSERT_TRUE(args.ok());
    EXPECT_TRUE(args->rejectUnsupportedFlags({"--beams", "--problems"})
                    .ok());
    const Status narrow =
        args->rejectUnsupportedFlags({"--problems"});
    EXPECT_EQ(narrow.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(narrow.message().find("--beams"), std::string::npos);
    // A fully fixed tool accepts an empty command line only.
    EXPECT_TRUE(parse({})->rejectUnsupportedFlags({}).ok());
    EXPECT_FALSE(
        parse({"--problems", "4"})->rejectUnsupportedFlags({}).ok());
}

TEST(EngineArgsConvert, ProblemCountGrowsWithNumProblems)
{
    EngineArgs args;
    args.numProblems = 4;
    EXPECT_EQ(args.toServingOptions()->problemCount, 256); // Default.
    args.numProblems = 1000;
    const auto opts = args.toServingOptions();
    ASSERT_TRUE(opts.ok());
    EXPECT_EQ(opts->problemCount, 1000);
    // serveProblems(numProblems) therefore never silently clamps.
    auto system = ServingSystem::create(*opts);
    ASSERT_TRUE(system.ok());
    EXPECT_EQ(system->problems().size(), 1000u);
}

// ---------------------------------------------------------------------
// EngineArgs: JSON parsing
// ---------------------------------------------------------------------

TEST(EngineArgsJson, FullDocumentParses)
{
    const auto args = EngineArgs::fromJsonText(R"({
        "device": "RTX3070Ti",
        "dataset": "HumanEval",
        "algorithm": "best_of_n",
        "models": "7B+1.5B",
        "mode": "fasttts",
        "num_beams": 48,
        "branch_factor": 2,
        "num_problems": 5,
        "seed": 99,
        "offload": true,
        "memory_fraction": 0.8,
        "reserved_gib": 0.5
    })");
    ASSERT_TRUE(args.ok());
    EXPECT_EQ(args->device, "RTX3070Ti");
    EXPECT_EQ(args->dataset, "HumanEval");
    EXPECT_EQ(args->algorithm, "best_of_n");
    EXPECT_EQ(args->models, "7B+1.5B");
    EXPECT_EQ(args->numBeams, 48);
    EXPECT_EQ(args->branchFactor, 2);
    EXPECT_EQ(args->numProblems, 5);
    EXPECT_EQ(args->seed, 99u);
    EXPECT_TRUE(args->offload);
    EXPECT_DOUBLE_EQ(args->memoryFraction, 0.8);
    EXPECT_DOUBLE_EQ(args->reservedGiB, 0.5);
    EXPECT_TRUE(args->validate().ok());
}

TEST(EngineArgsJson, PartialDocumentKeepsDefaults)
{
    const auto args =
        EngineArgs::fromJsonText(R"({"num_beams": 8})");
    ASSERT_TRUE(args.ok());
    EXPECT_EQ(args->numBeams, 8);
    EXPECT_EQ(args->device, "RTX4090");
}

TEST(EngineArgsJson, ErrorPaths)
{
    // Malformed document.
    EXPECT_EQ(EngineArgs::fromJsonText("{nope").status().code(),
              StatusCode::kInvalidArgument);
    // Root must be an object.
    EXPECT_EQ(EngineArgs::fromJsonText("[1,2]").status().code(),
              StatusCode::kInvalidArgument);
    // Unknown key.
    EXPECT_EQ(
        EngineArgs::fromJsonText(R"({"beam_count": 4})").status().code(),
        StatusCode::kInvalidArgument);
    // Type mismatches.
    EXPECT_EQ(
        EngineArgs::fromJsonText(R"({"device": 4090})").status().code(),
        StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"num_beams": "32"})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"num_beams": 2.5})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"offload": "yes"})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"seed": -1})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"num_beams": 0})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// EngineArgs: online serving flags (--policy / --max-inflight / --slo /
// --arrivals)
// ---------------------------------------------------------------------

TEST(EngineArgsOnline, DefaultsMatchLegacyServer)
{
    const EngineArgs args;
    EXPECT_EQ(args.policy, "fifo");
    EXPECT_EQ(args.maxInflight, 1);
    EXPECT_DOUBLE_EQ(args.slo, 0);
    EXPECT_EQ(args.arrivals, "poisson");
    EXPECT_EQ(args.preempt, "slice");
    EXPECT_DOUBLE_EQ(args.kvBudgetGiB, 0);
    EXPECT_FALSE(args.shedDoomed);
    const OnlineServerOptions online = args.toOnlineOptions();
    EXPECT_EQ(online.policy, "fifo");
    EXPECT_EQ(online.maxInflight, 1);
    EXPECT_DOUBLE_EQ(online.slo, 0);
    EXPECT_EQ(online.preempt, "slice");
    EXPECT_DOUBLE_EQ(online.kvBudgetGiB, 0);
    EXPECT_FALSE(online.shedDoomed);
}

TEST(EngineArgsOnline, PreemptionFlagsArgvAndJsonAgree)
{
    const auto via_argv =
        parse({"--preempt", "policy", "--kv-budget", "1.5",
               "--shed-doomed"});
    ASSERT_TRUE(via_argv.ok());
    const auto via_json = EngineArgs::fromJsonText(R"({
        "preempt": "policy",
        "kv_budget_gib": 1.5,
        "shed_doomed": true
    })");
    ASSERT_TRUE(via_json.ok());
    for (const EngineArgs *args : {&*via_argv, &*via_json}) {
        EXPECT_EQ(args->preempt, "policy");
        EXPECT_DOUBLE_EQ(args->kvBudgetGiB, 1.5);
        EXPECT_TRUE(args->shedDoomed);
        EXPECT_TRUE(args->validate().ok());
        const OnlineServerOptions online = args->toOnlineOptions();
        EXPECT_EQ(online.preempt, "policy");
        EXPECT_DOUBLE_EQ(online.kvBudgetGiB, 1.5);
        EXPECT_TRUE(online.shedDoomed);
    }
    // The equals and negation forms work too.
    const auto negated =
        parse({"--preempt=off", "--kv-budget=0", "--no-shed-doomed"});
    ASSERT_TRUE(negated.ok());
    EXPECT_EQ(negated->preempt, "off");
    EXPECT_FALSE(negated->shedDoomed);
    EXPECT_TRUE(negated->wasSet("--shed-doomed"));
    EXPECT_TRUE(negated->wasSet("--preempt"));
}

TEST(EngineArgsOnline, PreemptionFlagValidation)
{
    EngineArgs args;
    args.preempt = "sometimes";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.kvBudgetGiB = -2;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    EXPECT_EQ(parse({"--shed-doomed=yes"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"preempt": 1})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"shed_doomed": "yes"})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"kv_budget_gib": "big"})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
}

TEST(EngineArgsOnline, ArgvAndJsonAgree)
{
    const auto via_argv =
        parse({"--policy", "sjf", "--max-inflight", "8", "--slo",
               "30.5", "--arrivals", "bursty"});
    ASSERT_TRUE(via_argv.ok());
    const auto via_json = EngineArgs::fromJsonText(R"({
        "policy": "sjf",
        "max_inflight": 8,
        "slo": 30.5,
        "arrivals": "bursty"
    })");
    ASSERT_TRUE(via_json.ok());
    for (const EngineArgs *args : {&*via_argv, &*via_json}) {
        EXPECT_EQ(args->policy, "sjf");
        EXPECT_EQ(args->maxInflight, 8);
        EXPECT_DOUBLE_EQ(args->slo, 30.5);
        EXPECT_EQ(args->arrivals, "bursty");
        EXPECT_TRUE(args->validate().ok());
        const OnlineServerOptions online = args->toOnlineOptions();
        EXPECT_EQ(online.policy, "sjf");
        EXPECT_EQ(online.maxInflight, 8);
        EXPECT_DOUBLE_EQ(online.slo, 30.5);
    }
    // The equals form works for the new flags too.
    const auto equals_form =
        parse({"--policy=edf", "--max-inflight=2", "--slo=1.5",
               "--arrivals=poisson"});
    ASSERT_TRUE(equals_form.ok());
    EXPECT_EQ(equals_form->policy, "edf");
    EXPECT_EQ(equals_form->maxInflight, 2);
}

TEST(EngineArgsOnline, UnknownPolicyListsRegisteredNames)
{
    const auto args = parse({"--policy", "round_robin"});
    ASSERT_TRUE(args.ok()); // Names resolve at validate() time.
    const Status status = args->validate();
    EXPECT_EQ(status.code(), StatusCode::kNotFound);
    for (const char *known : {"fifo", "priority", "sjf", "edf"})
        EXPECT_NE(status.message().find(known), std::string::npos)
            << "policy listing should mention " << known;
}

TEST(EngineArgsOnline, RangeAndModeValidation)
{
    // max_inflight range is enforced at parse time for argv/JSON and
    // at validate() time for programmatic construction.
    EXPECT_EQ(parse({"--max-inflight", "0"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"--max-inflight", "65"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"max_inflight": 0})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EngineArgs args;
    args.maxInflight = 100;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.slo = -1;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.arrivals = "steady";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"arrivals": 3})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"slo": "fast"})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
}

TEST(EngineArgsOnline, FixedConfigToolsRejectOnlineFlags)
{
    // A tool whose queueing discipline is figure-fixed must reject the
    // new flags rather than silently ignore them.
    const auto args = parse({"--policy", "sjf"});
    ASSERT_TRUE(args.ok());
    const Status status =
        args->rejectUnsupportedFlags({"--problems", "--seed"});
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("--policy"), std::string::npos);

    // And tools that do support them accept.
    EXPECT_TRUE(args->rejectUnsupportedFlags({"--policy"}).ok());
}

TEST(EngineArgsOnline, WasSetDistinguishesExplicitFromDefault)
{
    const auto args = parse({"--slo", "0", "--problems", "4"});
    ASSERT_TRUE(args.ok());
    EXPECT_TRUE(args->wasSet("--slo"));
    EXPECT_TRUE(args->wasSet("--problems"));
    EXPECT_FALSE(args->wasSet("--policy"));
    EXPECT_FALSE(EngineArgs().wasSet("--slo"));
}

TEST(EngineArgsOnline, HelpAndRegistryListingCoverPolicies)
{
    const std::string help = EngineArgs::help("prog");
    for (const char *needle :
         {"--policy", "--max-inflight", "--slo", "--arrivals"})
        EXPECT_NE(help.find(needle), std::string::npos) << needle;
    const std::string listing = EngineArgs::registryListing();
    EXPECT_NE(listing.find("queue policies"), std::string::npos);
    EXPECT_NE(listing.find("sjf"), std::string::npos);
}

TEST(EngineArgsOnline, BatchingFlagsArgvAndJsonAgree)
{
    const auto via_argv =
        parse({"--batching", "continuous", "--max-batched-tokens",
               "4096", "--prefill-chunk", "256"});
    ASSERT_TRUE(via_argv.ok());
    const auto via_json = EngineArgs::fromJsonText(R"({
        "batching": "continuous",
        "max_batched_tokens": 4096,
        "prefill_chunk": 256
    })");
    ASSERT_TRUE(via_json.ok());
    for (const EngineArgs *args : {&*via_argv, &*via_json}) {
        EXPECT_EQ(args->batching, "continuous");
        EXPECT_EQ(args->maxBatchedTokens, 4096);
        EXPECT_EQ(args->prefillChunk, 256);
        EXPECT_TRUE(args->validate().ok());
        const OnlineServerOptions online = args->toOnlineOptions();
        EXPECT_EQ(online.batching, "continuous");
        EXPECT_EQ(online.maxBatchedTokens, 4096);
        EXPECT_EQ(online.prefillChunk, 256);
    }
    EXPECT_TRUE(via_argv->wasSet("--batching"));
    EXPECT_TRUE(via_argv->wasSet("--max-batched-tokens"));
    EXPECT_TRUE(via_argv->wasSet("--prefill-chunk"));

    // Defaults keep batching off.
    const auto defaults = parse({});
    ASSERT_TRUE(defaults.ok());
    EXPECT_EQ(defaults->batching, "off");
    EXPECT_EQ(defaults->toOnlineOptions().batching, "off");
}

TEST(EngineArgsOnline, BatchingFlagValidation)
{
    EngineArgs args;
    args.batching = "dynamic";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.maxBatchedTokens = 0;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.prefillChunk = -1;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    // The parser rejects out-of-range values up front.
    EXPECT_EQ(parse({"--max-batched-tokens", "0"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parse({"--prefill-chunk", "0"}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"batching": 1})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);

    // Fixed-config tools reject the batching flags too.
    const auto set = parse({"--batching", "continuous"});
    ASSERT_TRUE(set.ok());
    const Status status = set->rejectUnsupportedFlags({"--problems"});
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("--batching"), std::string::npos);
}

TEST(EngineArgsOnline, PrefixCacheFlagsArgvAndJsonAgree)
{
    const auto via_argv = parse(
        {"--prefix-cache", "on", "--prefix-cache-budget", "0.25"});
    ASSERT_TRUE(via_argv.ok());
    const auto via_json = EngineArgs::fromJsonText(R"({
        "prefix_cache": "on",
        "prefix_cache_budget_gib": 0.25
    })");
    ASSERT_TRUE(via_json.ok());
    for (const EngineArgs *args : {&*via_argv, &*via_json}) {
        EXPECT_EQ(args->prefixCache, "on");
        EXPECT_DOUBLE_EQ(args->prefixCacheBudgetGiB, 0.25);
        EXPECT_TRUE(args->validate().ok());
        const OnlineServerOptions online = args->toOnlineOptions();
        EXPECT_EQ(online.prefixCache, "on");
        EXPECT_DOUBLE_EQ(online.prefixCacheBudgetGiB, 0.25);
    }
    EXPECT_TRUE(via_argv->wasSet("--prefix-cache"));
    EXPECT_TRUE(via_argv->wasSet("--prefix-cache-budget"));

    // The equals form parses too.
    const auto equals = parse({"--prefix-cache=on"});
    ASSERT_TRUE(equals.ok());
    EXPECT_EQ(equals->prefixCache, "on");

    // Defaults keep the cache off with the derived (0) budget, so
    // legacy invocations stay bit-identical.
    const auto defaults = parse({});
    ASSERT_TRUE(defaults.ok());
    EXPECT_EQ(defaults->prefixCache, "off");
    EXPECT_DOUBLE_EQ(defaults->prefixCacheBudgetGiB, 0.0);
    EXPECT_FALSE(defaults->wasSet("--prefix-cache"));
    EXPECT_EQ(defaults->toOnlineOptions().prefixCache, "off");
}

TEST(EngineArgsOnline, PrefixCacheFlagValidation)
{
    EngineArgs args;
    args.prefixCache = "maybe";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(args.validate().message().find("off"),
              std::string::npos);

    args = EngineArgs();
    args.prefixCacheBudgetGiB = -0.5;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    // Wrong JSON types are rejected up front.
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"prefix_cache": true})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(
                  R"({"prefix_cache_budget_gib": "big"})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);

    // Fixed-config tools reject the prefix-cache flags too.
    const auto set = parse({"--prefix-cache", "on"});
    ASSERT_TRUE(set.ok());
    const Status status = set->rejectUnsupportedFlags({"--problems"});
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("--prefix-cache"),
              std::string::npos);
}

TEST(EngineArgsOnline, KvTierFlagsArgvAndJsonAgree)
{
    const auto via_argv =
        parse({"--kv-tier", "host", "--host-kv-budget", "1.5",
               "--host-bandwidth", "8", "--victim-select", "cost"});
    ASSERT_TRUE(via_argv.ok());
    const auto via_json = EngineArgs::fromJsonText(R"({
        "kv_tier": "host",
        "host_kv_budget_gib": 1.5,
        "host_bandwidth_gbs": 8,
        "victim_select": "cost"
    })");
    ASSERT_TRUE(via_json.ok());
    for (const EngineArgs *args : {&*via_argv, &*via_json}) {
        EXPECT_EQ(args->kvTier, "host");
        EXPECT_DOUBLE_EQ(args->hostKvBudgetGiB, 1.5);
        EXPECT_DOUBLE_EQ(args->hostBandwidthGBs, 8);
        EXPECT_EQ(args->victimSelect, "cost");
        EXPECT_TRUE(args->validate().ok());
        const OnlineServerOptions online = args->toOnlineOptions();
        EXPECT_EQ(online.kvTier, "host");
        EXPECT_DOUBLE_EQ(online.hostKvBudgetGiB, 1.5);
        EXPECT_DOUBLE_EQ(online.hostBandwidthGBs, 8);
        EXPECT_EQ(online.victimSelect, "cost");
    }
    EXPECT_TRUE(via_argv->wasSet("--kv-tier"));
    EXPECT_TRUE(via_argv->wasSet("--host-kv-budget"));
    EXPECT_TRUE(via_argv->wasSet("--host-bandwidth"));
    EXPECT_TRUE(via_argv->wasSet("--victim-select"));

    // The equals form parses too.
    const auto equals = parse({"--kv-tier=host"});
    ASSERT_TRUE(equals.ok());
    EXPECT_EQ(equals->kvTier, "host");

    // Defaults keep the tier off with the legacy sweep order and the
    // derived (0 => 2x device) host budget, so existing invocations
    // stay bit-identical.
    const auto defaults = parse({});
    ASSERT_TRUE(defaults.ok());
    EXPECT_EQ(defaults->kvTier, "off");
    EXPECT_DOUBLE_EQ(defaults->hostKvBudgetGiB, 0.0);
    EXPECT_DOUBLE_EQ(defaults->hostBandwidthGBs, 16.0);
    EXPECT_EQ(defaults->victimSelect, "admission");
    EXPECT_FALSE(defaults->wasSet("--kv-tier"));
    EXPECT_EQ(defaults->toOnlineOptions().kvTier, "off");
}

TEST(EngineArgsOnline, KvTierFlagValidation)
{
    EngineArgs args;
    args.kvTier = "nvme";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(args.validate().message().find("host"),
              std::string::npos);

    args = EngineArgs();
    args.hostKvBudgetGiB = -1;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.hostBandwidthGBs = 0;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.victimSelect = "random";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    // Wrong JSON types are rejected up front.
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"kv_tier": 1})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(
        EngineArgs::fromJsonText(R"({"host_kv_budget_gib": "lots"})")
            .status()
            .code(),
        StatusCode::kInvalidArgument);
    EXPECT_EQ(
        EngineArgs::fromJsonText(R"({"host_bandwidth_gbs": true})")
            .status()
            .code(),
        StatusCode::kInvalidArgument);

    // Fixed-config tools reject the tiering flags too.
    const auto set = parse({"--kv-tier", "host"});
    ASSERT_TRUE(set.ok());
    const Status status = set->rejectUnsupportedFlags({"--problems"});
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("--kv-tier"), std::string::npos);
}

// ---------------------------------------------------------------------
// Fault tolerance: retryable status codes and the fault flags
// ---------------------------------------------------------------------

TEST(Status, RetryableCodesCarryNamesAndRetryability)
{
    const Status deadline = Status::deadlineExceeded("too slow");
    EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(deadline.toString(), "deadline_exceeded: too slow");
    // Deliberately terminal: the deadline has passed; a retry would
    // just miss it again later.
    EXPECT_FALSE(deadline.isRetryable());

    const Status transient = Status::unavailable("device hiccup");
    EXPECT_EQ(transient.code(), StatusCode::kUnavailable);
    EXPECT_EQ(transient.toString(), "unavailable: device hiccup");
    EXPECT_TRUE(transient.isRetryable());

    // Every other code is non-retryable.
    EXPECT_FALSE(okStatus().isRetryable());
    EXPECT_FALSE(Status::invalidArgument("x").isRetryable());
    EXPECT_FALSE(Status::notFound("x").isRetryable());
    EXPECT_FALSE(Status::alreadyExists("x").isRetryable());
    EXPECT_FALSE(Status::failedPrecondition("x").isRetryable());
}

TEST(EngineArgsOnline, FaultFlagsArgvAndJsonAgree)
{
    const char *kPlan =
        R"({"rules": [{"site": "wave_step", "rate": 0.05}]})";
    const auto via_argv = parse({"--faults", "plan", "--fault-plan",
                                 kPlan, "--retry-max", "3",
                                 "--retry-backoff", "0.125",
                                 "--request-timeout", "90"});
    ASSERT_TRUE(via_argv.ok());
    const auto via_json = EngineArgs::fromJsonText(std::string(R"({
        "faults": "plan",
        "fault_plan": ")")
        + R"({\"rules\": [{\"site\": \"wave_step\", \"rate\": 0.05}]})"
        + R"(",
        "retry_max": 3,
        "retry_backoff": 0.125,
        "request_timeout": 90
    })");
    ASSERT_TRUE(via_json.ok()) << via_json.status().toString();
    for (const EngineArgs *args : {&*via_argv, &*via_json}) {
        EXPECT_EQ(args->faults, "plan");
        EXPECT_EQ(args->faultPlan, kPlan);
        EXPECT_EQ(args->retryMax, 3);
        EXPECT_DOUBLE_EQ(args->retryBackoff, 0.125);
        EXPECT_DOUBLE_EQ(args->requestTimeout, 90.0);
        EXPECT_TRUE(args->validate().ok())
            << args->validate().toString();
        const OnlineServerOptions online = args->toOnlineOptions();
        EXPECT_EQ(online.faults, "plan");
        EXPECT_EQ(online.faultPlan, kPlan);
        EXPECT_EQ(online.retryMax, 3);
        EXPECT_DOUBLE_EQ(online.retryBackoff, 0.125);
        EXPECT_DOUBLE_EQ(online.requestTimeout, 90.0);
    }
    for (const char *flag : {"--faults", "--fault-plan", "--retry-max",
                             "--retry-backoff", "--request-timeout"})
        EXPECT_TRUE(via_argv->wasSet(flag)) << flag;

    // Defaults keep injection off with no retry/watchdog machinery,
    // so legacy invocations stay bit-identical.
    const auto defaults = parse({});
    ASSERT_TRUE(defaults.ok());
    EXPECT_EQ(defaults->faults, "off");
    EXPECT_TRUE(defaults->faultPlan.empty());
    EXPECT_EQ(defaults->retryMax, 0);
    EXPECT_DOUBLE_EQ(defaults->requestTimeout, 0.0);
    EXPECT_EQ(defaults->toOnlineOptions().faults, "off");
}

TEST(EngineArgsOnline, FaultFlagValidation)
{
    EngineArgs args;
    args.faults = "chaos";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(args.validate().message().find("off"),
              std::string::npos);

    // plan mode demands a parseable schedule.
    args = EngineArgs();
    args.faults = "plan";
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);
    args.faultPlan = "{\"rules\": [{\"site\": \"wave_step\"}]}";
    EXPECT_FALSE(args.validate().ok());

    args = EngineArgs();
    args.retryMax = 17;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.retryBackoff = -1.0;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    args = EngineArgs();
    args.requestTimeout = -5.0;
    EXPECT_EQ(args.validate().code(), StatusCode::kInvalidArgument);

    // argv range enforcement and JSON type enforcement.
    EXPECT_FALSE(parse({"--retry-max", "17"}).ok());
    EXPECT_FALSE(parse({"--retry-max", "-1"}).ok());
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"faults": 1})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"retry_max": "three"})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(EngineArgs::fromJsonText(R"({"retry_max": 17})")
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);

    // Fixed-config tools reject the fault flags like any other.
    const auto set = parse({"--request-timeout", "10"});
    ASSERT_TRUE(set.ok());
    const Status status = set->rejectUnsupportedFlags({"--problems"});
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("--request-timeout"),
              std::string::npos);
}

TEST(EngineArgsArgv, HelpNoLongerAdvertisesPositionals)
{
    // The replacement flags keep working, and help() no longer
    // documents the removed positional form.
    const auto flagged =
        parse({"--problems", "7", "--dataset", "MATH500"});
    ASSERT_TRUE(flagged.ok());
    EXPECT_EQ(flagged->numProblems, 7);
    EXPECT_EQ(flagged->dataset, "MATH500");

    const std::string help = EngineArgs::help("prog");
    EXPECT_EQ(help.find("DEPRECATED"), std::string::npos);
    EXPECT_EQ(help.find("positional"), std::string::npos);
}

} // namespace
} // namespace fasttts
