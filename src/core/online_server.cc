#include "core/online_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/rng.h"

namespace fasttts
{

OnlineServer::OnlineServer(ServingSystem system)
    : system_(std::move(system))
{
}

StatusOr<OnlineServer>
OnlineServer::create(const ServingOptions &options)
{
    auto system = ServingSystem::create(options);
    if (!system.ok())
        return system.status();
    return OnlineServer(*std::move(system));
}

OnlineTraceResult
OnlineServer::serveTrace(int num_requests, double arrival_rate,
                         uint64_t seed)
{
    Rng rng = Rng(seed).fork(0xa881);
    std::vector<double> arrivals;
    arrivals.reserve(static_cast<size_t>(std::max(0, num_requests)));
    double t = 0;
    for (int i = 0; i < num_requests; ++i) {
        t += rng.exponential(arrival_rate);
        arrivals.push_back(t);
    }
    return serveArrivals(arrivals);
}

OnlineTraceResult
OnlineServer::serveArrivals(const std::vector<double> &arrivals)
{
    const auto &problems = system_.problems();
    if (arrivals.empty() || problems.empty())
        return aggregateTrace({}, 0.0);

    std::vector<OnlineRequestRecord> records;
    records.reserve(arrivals.size());
    std::vector<RequestId> ids;
    ids.reserve(arrivals.size());
    double device_free_at = 0;
    double busy = 0;

    // FIFO admission: submit in arrival order; completion callbacks
    // convert engine service time into queue-aware wall-clock times.
    for (size_t i = 0; i < arrivals.size(); ++i) {
        const int problem_id =
            static_cast<int>(i % problems.size());
        const double arrival = arrivals[i];
        ids.push_back(system_.submit(
            problems[static_cast<size_t>(problem_id)],
            {/*onStep=*/nullptr,
             /*onComplete=*/[&records, &device_free_at, &busy,
                             problem_id,
                             arrival](RequestId, const RequestResult &r) {
                 OnlineRequestRecord rec;
                 rec.problemId = problem_id;
                 rec.arrival = arrival;
                 rec.start = std::max(arrival, device_free_at);
                 rec.finish = rec.start + r.completionTime;
                 device_free_at = rec.finish;
                 busy += r.completionTime;
                 records.push_back(rec);
             }}));
    }
    system_.drain();
    // The callbacks consumed every result; drop the records so a
    // long-lived server does not accumulate them trace after trace.
    for (const RequestId id : ids)
        system_.release(id);
    return aggregateTrace(std::move(records), busy);
}

OnlineTraceResult
aggregateTrace(std::vector<OnlineRequestRecord> records, double busy_time)
{
    OnlineTraceResult out;
    out.records = std::move(records);
    if (out.records.empty())
        return out;

    std::vector<double> latencies;
    latencies.reserve(out.records.size());
    double lat_total = 0;
    double queue_total = 0;
    for (const auto &rec : out.records) {
        latencies.push_back(rec.latency());
        lat_total += rec.latency();
        queue_total += rec.queueDelay();
    }
    std::sort(latencies.begin(), latencies.end());
    const double n = static_cast<double>(out.records.size());
    out.meanLatency = lat_total / n;
    out.meanQueueDelay = queue_total / n;
    out.p95Latency = latencies[static_cast<size_t>(
        std::min(latencies.size() - 1.0, std::ceil(0.95 * n) - 1))];
    out.makespan = out.records.back().finish;
    out.utilization = out.makespan > 0 ? busy_time / out.makespan : 0;
    return out;
}

} // namespace fasttts
