/**
 * @file
 * Domain example: TTS-served code generation (HumanEval-style).
 *
 * The paper's Sec. 6.4 shows the FastTTS execution patterns transfer
 * to code generation. This example serves HumanEval-profile requests
 * with DVTS (diverse subtrees help avoid committing to one buggy
 * program skeleton) and reports goodput, latency and accuracy across
 * search widths.
 *
 *   ./build/examples/code_generation [num_problems]
 */

#include <cstdlib>
#include <iostream>

#include "core/serving.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace fasttts;
    const int problems = argc > 1 ? std::atoi(argv[1]) : 8;

    std::cout << "Code-generation serving demo: HumanEval profile, "
                 "DVTS search, 1.5B+1.5B on RTX4090\n";

    Table table("HumanEval serving: baseline vs FastTTS across search "
                "widths");
    table.setHeader({"n", "system", "goodput tok/s", "latency s",
                     "top-1 %", "pass@n %"});
    for (int n : {8, 32, 128}) {
        for (const bool fast : {false, true}) {
            ServingOptions opts;
            opts.config = fast ? FastTtsConfig::fastTts()
                               : FastTtsConfig::baseline();
            opts.models = config1_5Bplus1_5B();
            opts.datasetName = "HumanEval";
            opts.algorithmName = "dvts";
            opts.numBeams = n;
            ServingSystem system(opts);
            const BatchResult out = system.serveProblems(problems);
            table.addRow({std::to_string(n),
                          fast ? "fasttts" : "baseline",
                          formatDouble(out.meanGoodput, 1),
                          formatDouble(out.meanLatency, 1),
                          formatDouble(out.top1Accuracy, 1),
                          formatDouble(out.passAtNAccuracy, 1)});
        }
    }
    table.setCaption("FastTTS speeds up code-generation TTS without "
                     "changing which programs the search selects "
                     "(paper Sec. 6.4: 1.3x-1.8x).");
    table.print(std::cout);
    return 0;
}
