/**
 * @file
 * Shared probe-based calibration for the admission-policy sweeps.
 *
 * bench_fig18_scheduling (bottom table) and bench_runner's
 * online_scheduling benchmark must measure the same recipe so the
 * figure mirrors the JSON: probe a few real requests for the mean
 * service time, offer ~3x that rate in heavy-tailed bursts (long
 * silences drain the queue, so the mean rate must sit well past
 * capacity for backlog to build), and hand every request a
 * deterministic priority and SLO-tier mix (a uniform SLO would make
 * edf collapse to arrival order).
 */

#ifndef FASTTTS_BENCH_ONLINE_CALIBRATION_H
#define FASTTTS_BENCH_ONLINE_CALIBRATION_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "api/status.h"
#include "core/online_server.h"
#include "core/serving.h"

namespace fasttts
{

/** One probe-calibrated overload trace, identical across policies. */
struct CalibratedOnlineTrace
{
    std::vector<OnlineRequest> requests;
    double rate = 0;         //!< Offered arrival rate (requests/s).
    double slo = 0;          //!< Base SLO budget (s); requests carry
                             //!< tiered multiples of it.
    double measuredMean = 0; //!< Probe-measured mean service time (s).
};

/**
 * Build the standard policy-sweep trace for one serving
 * configuration.
 * @param arrival_mode "poisson" or "bursty".
 * @param slo_override < 0 derives the base SLO (3x the measured mean
 *        service time), 0 disables SLOs entirely (requests carry no
 *        deadline, matching the flag's documented zero semantics),
 *        > 0 sets the base budget directly.
 */
inline StatusOr<CalibratedOnlineTrace>
calibrateOnlineTrace(const ServingOptions &opts,
                     const std::string &arrival_mode, int num_requests,
                     uint64_t seed, double slo_override = -1.0)
{
    auto probe = ServingSystem::create(opts);
    if (!probe.ok())
        return probe.status();
    const int num_probes = std::min<int>(
        4, static_cast<int>(probe->problems().size()));
    double measured_mean = 0;
    for (int i = 0; i < num_probes; ++i)
        measured_mean +=
            probe->serve(probe->problems()[static_cast<size_t>(i)])
                .completionTime;
    measured_mean /= std::max(1, num_probes);

    CalibratedOnlineTrace out;
    out.measuredMean = measured_mean;
    out.rate = 3.0 / measured_mean;
    out.slo = slo_override < 0 ? 3.0 * measured_mean : slo_override;

    auto trace =
        makeArrivalTrace(arrival_mode, num_requests, out.rate, seed);
    if (!trace.ok())
        return trace.status();
    const double slo_tiers[] = {0.75, 1.5, 3.0, 6.0};
    out.requests.reserve(trace->size());
    for (size_t i = 0; i < trace->size(); ++i) {
        OnlineRequest request;
        request.arrival = (*trace)[i];
        request.priority = static_cast<int>(i % 3) - 1;
        // OnlineRequest::slo == 0 means "no deadline".
        request.slo =
            out.slo > 0 ? out.slo * slo_tiers[i % 4] : 0.0;
        out.requests.push_back(request);
    }
    return out;
}

} // namespace fasttts

#endif // FASTTTS_BENCH_ONLINE_CALIBRATION_H
