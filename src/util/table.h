/**
 * @file
 * ASCII table and CSV emitters used by the bench harnesses.
 *
 * Every bench binary regenerates one paper figure by printing the same
 * rows/series the paper reports; Table gives them a uniform, aligned
 * format, and an optional CSV mirror makes the output easy to re-plot.
 */

#ifndef FASTTTS_UTIL_TABLE_H
#define FASTTTS_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace fasttts
{

/**
 * Column-aligned ASCII table with a title and optional caption.
 */
class Table
{
  public:
    /** @param title Printed above the table body. */
    explicit Table(std::string title);

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a pre-formatted row; short rows are padded with "". */
    void addRow(std::vector<std::string> row);

    /** Append a row of doubles formatted with the given precision. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 2);

    /** Free-text note printed under the table (paper expectation etc.). */
    void setCaption(std::string caption);

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Write a CSV version of the table body to the given path. */
    bool writeCsv(const std::string &path) const;

    /** Number of data rows. */
    size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for bench output). */
std::string formatDouble(double value, int precision = 2);

} // namespace fasttts

#endif // FASTTTS_UTIL_TABLE_H
