#include "metrics/accuracy.h"

#include <algorithm>
#include <map>

namespace fasttts
{

int
majorityVoteAnswer(const std::vector<CompletedSolution> &solutions)
{
    if (solutions.empty())
        return -1;
    // answer -> (count, summed score)
    std::map<int, std::pair<int, double>> votes;
    for (const auto &s : solutions) {
        auto &v = votes[s.answer];
        ++v.first;
        v.second += s.score;
    }
    int best_answer = -1;
    int best_count = -1;
    double best_score = -1;
    for (const auto &[answer, v] : votes) {
        const auto &[count, score] = v;
        if (count > best_count
            || (count == best_count && score > best_score)) {
            best_answer = answer;
            best_count = count;
            best_score = score;
        }
    }
    return best_answer;
}

bool
top1Correct(const std::vector<CompletedSolution> &solutions)
{
    return majorityVoteAnswer(solutions) == 0;
}

bool
passAtN(const std::vector<CompletedSolution> &solutions, size_t n)
{
    std::vector<const CompletedSolution *> ranked;
    ranked.reserve(solutions.size());
    for (const auto &s : solutions)
        ranked.push_back(&s);
    std::sort(ranked.begin(), ranked.end(),
              [](const CompletedSolution *a, const CompletedSolution *b) {
                  return a->score > b->score;
              });
    const size_t limit = std::min(n, ranked.size());
    for (size_t i = 0; i < limit; ++i) {
        if (ranked[i]->answer == 0)
            return true;
    }
    return false;
}

} // namespace fasttts
