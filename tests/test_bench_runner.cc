/**
 * @file
 * Smoke test for the JSON-emitting benchmark harness.
 *
 * Runs the real bench_runner binary (path injected by CMake as
 * FASTTTS_BENCH_RUNNER_PATH): --list must enumerate all 21 registered
 * benchmarks (the figure benchmarks plus the online serving suite),
 * and a --quick run must write BENCH_<name>.json files that
 * parse and carry the throughput / latency-percentile /
 * KV-utilization / SLO-attainment contract every optimisation PR is
 * judged against.
 */

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace fasttts
{
namespace
{

/** Run a command, capture stdout, and return its exit status. */
int
runCommand(const std::string &command, std::string *output)
{
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return -1;
    char buffer[4096];
    output->clear();
    size_t read = 0;
    while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0)
        output->append(buffer, read);
    const int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

TEST(BenchRunner, ListEnumeratesAllFigureBenchmarks)
{
    std::string output;
    const int status =
        runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH) + " --list",
                   &output);
    ASSERT_EQ(status, 0);

    const std::vector<std::string> names = splitLines(output);
    EXPECT_EQ(names.size(), 22u);
    for (const char *expected :
         {"fig01_frontier", "fig03_patterns", "fig04_utilization",
          "fig05_prefix_sharing", "fig06_kv_throughput", "fig10_allocation",
          "fig11_variants", "fig12_goodput", "fig13_latency",
          "fig14_accuracy", "fig15_hardware", "fig16_ablation",
          "fig17_speculative", "fig18_scheduling", "micro",
          "online_responsiveness", "online_scheduling",
          "online_preemption", "online_batching",
          "online_prefix_reuse", "online_fault_tolerance",
          "online_kv_tiering"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing benchmark: " << expected;
    }
}

TEST(BenchRunner, QuickRunEmitsParsableJson)
{
    const std::filesystem::path outDir =
        std::filesystem::path(testing::TempDir()) / "fasttts_bench_smoke";
    std::filesystem::remove_all(outDir);

    std::string output;
    const int status =
        runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH) +
                       " --quick --out-dir " + outDir.string() + " micro",
                   &output);
    ASSERT_EQ(status, 0) << output;

    const std::filesystem::path jsonPath = outDir / "BENCH_micro.json";
    ASSERT_TRUE(std::filesystem::exists(jsonPath));

    std::ifstream file(jsonPath);
    std::stringstream contents;
    contents << file.rdbuf();

    std::string error;
    const Json doc = Json::parse(contents.str(), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(doc["schema"].asString(), "fasttts-bench-v1");
    EXPECT_EQ(doc["benchmark"].asString(), "micro");
    EXPECT_TRUE(doc["quick"].asBool());

    for (const char *variant : {"baseline", "fasttts"}) {
        const Json &v = doc["variants"][variant];
        EXPECT_GT(v["throughput"]["precise_goodput_tok_s"].asNumber(), 0.0)
            << variant;
        EXPECT_GT(v["latency_s"]["p50"].asNumber(), 0.0) << variant;
        EXPECT_LE(v["latency_s"]["p50"].asNumber(),
                  v["latency_s"]["p99"].asNumber())
            << variant;
        EXPECT_GE(v["kv"]["hit_rate"].asNumber(), 0.0) << variant;
        EXPECT_LE(v["kv"]["hit_rate"].asNumber(), 1.0) << variant;
        EXPECT_GT(v["kv"]["budget_gib"].asNumber(), 0.0) << variant;
    }
    EXPECT_GT(doc["speedup"]["goodput"].asNumber(), 0.0);

    std::filesystem::remove_all(outDir);
}

/** Whole-file read used by the byte-identity differential. */
std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream file(path, std::ios::binary);
    std::stringstream contents;
    contents << file.rdbuf();
    return contents.str();
}

TEST(BenchRunner, ParallelJobsAreByteIdenticalToSerial)
{
    const std::filesystem::path base =
        std::filesystem::path(testing::TempDir()) / "fasttts_bench_jobs";
    const std::filesystem::path serialDir = base / "serial";
    const std::filesystem::path parallelDir = base / "parallel";
    std::filesystem::remove_all(base);

    const std::string subset = " micro online_scheduling";
    std::string output;
    ASSERT_EQ(runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH)
                             + " --quick --jobs 1 --out-dir "
                             + serialDir.string() + subset,
                         &output),
              0)
        << output;
    ASSERT_EQ(runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH)
                             + " --quick --jobs 4 --out-dir "
                             + parallelDir.string() + subset,
                         &output),
              0)
        << output;

    for (const char *name :
         {"BENCH_micro.json", "BENCH_online_scheduling.json"}) {
        const std::string serial = readFile(serialDir / name);
        const std::string parallel = readFile(parallelDir / name);
        ASSERT_FALSE(serial.empty()) << name;
        EXPECT_EQ(serial, parallel)
            << name << " differs between --jobs 1 and --jobs 4";
    }
    std::filesystem::remove_all(base);
}

TEST(BenchRunner, EmitsSelfTimingHarnessDocument)
{
    const std::filesystem::path outDir =
        std::filesystem::path(testing::TempDir())
        / "fasttts_bench_harness";
    std::filesystem::remove_all(outDir);

    std::string output;
    ASSERT_EQ(runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH)
                             + " --quick --jobs 2 --out-dir "
                             + outDir.string()
                             + " micro online_scheduling",
                         &output),
              0)
        << output;

    const std::filesystem::path path = outDir / "BENCH_harness.json";
    ASSERT_TRUE(std::filesystem::exists(path));
    std::string error;
    const Json doc = Json::parse(readFile(path), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(doc["schema"].asString(), "fasttts-harness-v1");
    EXPECT_EQ(static_cast<int>(doc["jobs"].asNumber()), 2);
    EXPECT_TRUE(doc["quick"].asBool());
    EXPECT_GT(doc["total_wall_ms"].asNumber(), 0.0);

    const Json &benchmarks = doc["benchmarks"];
    ASSERT_TRUE(benchmarks.isArray());
    ASSERT_EQ(benchmarks.size(), 2u);
    EXPECT_EQ(benchmarks.at(0)["name"].asString(), "micro");
    EXPECT_EQ(benchmarks.at(1)["name"].asString(), "online_scheduling");
    for (size_t i = 0; i < benchmarks.size(); ++i) {
        EXPECT_GT(benchmarks.at(i)["wall_ms"].asNumber(), 0.0);
        EXPECT_GE(benchmarks.at(i)["simulated_tokens"].asNumber(), 0.0);
        EXPECT_GE(benchmarks.at(i)["simulated_tokens_per_s"].asNumber(),
                  0.0);
    }
    // The figure benchmark simulates real tokens; tokens/s must be
    // consistent with the recorded wall time.
    EXPECT_GT(benchmarks.at(0)["simulated_tokens"].asNumber(), 0.0);
    EXPECT_GT(benchmarks.at(0)["simulated_tokens_per_s"].asNumber(), 0.0);

    std::filesystem::remove_all(outDir);
}

TEST(BenchRunner, RejectsInvalidJobs)
{
    std::string output;
    EXPECT_NE(runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH)
                             + " --jobs 0 --list 2>&1",
                         &output),
              0);
    EXPECT_NE(runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH)
                             + " --jobs banana --list 2>&1",
                         &output),
              0);
}

TEST(BenchRunner, OnlineSchedulingSweepsPoliciesOnOneTrace)
{
    const std::filesystem::path outDir =
        std::filesystem::path(testing::TempDir())
        / "fasttts_bench_sched_smoke";
    std::filesystem::remove_all(outDir);

    std::string output;
    const int status =
        runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH)
                       + " --quick --out-dir " + outDir.string()
                       + " online_scheduling",
                   &output);
    ASSERT_EQ(status, 0) << output;

    const std::filesystem::path jsonPath =
        outDir / "BENCH_online_scheduling.json";
    ASSERT_TRUE(std::filesystem::exists(jsonPath));

    std::ifstream file(jsonPath);
    std::stringstream contents;
    contents << file.rdbuf();
    std::string error;
    const Json doc = Json::parse(contents.str(), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(doc["schema"].asString(), "fasttts-bench-v1");
    EXPECT_EQ(doc["benchmark"].asString(), "online_scheduling");
    EXPECT_EQ(doc["config"]["arrivals"].asString(), "bursty");
    EXPECT_GT(doc["config"]["slo_s"].asNumber(), 0.0);

    const int requests =
        static_cast<int>(doc["config"]["requests"].asNumber());
    for (const char *policy : {"fifo", "priority", "sjf", "edf"}) {
        const Json &p = doc["policies"][policy];
        EXPECT_GE(p["slo_attainment"].asNumber(), 0.0) << policy;
        EXPECT_LE(p["slo_attainment"].asNumber(), 1.0) << policy;
        EXPECT_GE(p["deadline_misses"].asNumber(), 0.0) << policy;
        EXPECT_GT(p["latency_s"]["mean"].asNumber(), 0.0) << policy;
        EXPECT_LE(p["latency_s"]["p50"].asNumber(),
                  p["latency_s"]["p99"].asNumber())
            << policy;
        EXPECT_GT(p["utilization"].asNumber(), 0.0) << policy;
        EXPECT_LE(p["utilization"].asNumber(), 1.0) << policy;
        // Every policy serves the identical trace to completion.
        EXPECT_EQ(static_cast<int>(p["completed"].asNumber()),
                  requests)
            << policy;
    }

    std::filesystem::remove_all(outDir);
}

TEST(BenchRunner, FaultToleranceSweepsRatesAndSurvivalModes)
{
    const std::filesystem::path outDir =
        std::filesystem::path(testing::TempDir())
        / "fasttts_bench_fault_smoke";
    std::filesystem::remove_all(outDir);

    std::string output;
    const int status =
        runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH)
                       + " --quick --out-dir " + outDir.string()
                       + " online_fault_tolerance",
                   &output);
    ASSERT_EQ(status, 0) << output;

    std::string error;
    const Json doc = Json::parse(
        readFile(outDir / "BENCH_online_fault_tolerance.json"), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(doc["schema"].asString(), "fasttts-bench-v1");
    EXPECT_EQ(doc["benchmark"].asString(), "online_fault_tolerance");
    EXPECT_EQ(doc["config"]["arrivals"].asString(), "bursty");
    EXPECT_EQ(doc["config"]["fault_site"].asString(), "wave_step");

    for (const char *rate : {"0%", "1%", "5%"}) {
        const Json &cell = doc["rates"][rate];
        for (const char *arm : {"no_retry", "retry_degrade"}) {
            const Json &run = cell[arm];
            EXPECT_GE(run["slo_attainment"].asNumber(), 0.0)
                << rate << "/" << arm;
            EXPECT_LE(run["slo_attainment"].asNumber(), 1.0)
                << rate << "/" << arm;
            EXPECT_GE(run["completed"].asNumber(), 0.0)
                << rate << "/" << arm;
            EXPECT_GE(run["injected_faults"].asNumber(), 0.0)
                << rate << "/" << arm;
            EXPECT_GE(run["wasted_recompute_tokens"].asNumber(), 0.0)
                << rate << "/" << arm;
        }
        // The clean cells inject nothing; the 5% cells certainly do.
        if (std::string(rate) == "0%") {
            for (const char *arm : {"no_retry", "retry_degrade"})
                EXPECT_EQ(cell[arm]["injected_faults"].asNumber(), 0.0)
                    << arm;
        }
        if (std::string(rate) == "5%") {
            for (const char *arm : {"no_retry", "retry_degrade"})
                EXPECT_GT(cell[arm]["injected_faults"].asNumber(), 0.0)
                    << arm;
        }
        // The fail-fast arm never retries or degrades.
        EXPECT_EQ(cell["no_retry"]["retries"].asNumber(), 0.0) << rate;
        EXPECT_EQ(cell["no_retry"]["degraded_waves"].asNumber(), 0.0)
            << rate;
    }

    // The headline criterion: retry+degrade recovers at least 25
    // points of SLO attainment over fail-fast at the 5% fault rate.
    EXPECT_GE(doc["summary"]["slo_recovery_points_at_5pct"].asNumber(),
              25.0);

    std::filesystem::remove_all(outDir);
}

} // namespace
} // namespace fasttts
