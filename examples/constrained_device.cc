/**
 * @file
 * Domain example: reasoning on a severely memory-constrained device.
 *
 * Runs the same AIME workload on an RTX 3070 Ti (8 GB), where the two
 * 1.5B models' weights leave almost no KV budget. Demonstrates the
 * Sec. 4.3.2 offloading strategy: the allocator compares the shared-
 * budget plan against offloading the inactive model's KV to host
 * memory, and picks the faster option per iteration.
 *
 *   ./build/examples/example_constrained_device [--problems N] [--help]
 */

#include <iostream>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace fasttts;

    EngineArgs defaults;
    defaults.device = "RTX3070Ti";
    defaults.numProblems = 6;
    // The two 1.5B models' weights occupy 6.2 of the card's 8 GiB:
    // grant the run the whole device and slim the reserve, as the
    // paper's constrained-hardware study does.
    defaults.memoryFraction = 0.95;
    defaults.reservedGiB = 0.5;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Constrained-device demo: baseline vs FastTTS vs "
        "FastTTS+offload on an 8 GB card");

    std::cout << "Constrained-device demo: " << args.dataset << " on "
              << args.device << ", 1.5B generator + 1.5B PRM\n";

    Table table("RTX 3070 Ti: baseline vs FastTTS vs FastTTS+offload");
    table.setHeader({"system", "goodput tok/s", "latency s",
                     "transfer s", "top-1 %"});
    for (int mode = 0; mode < 3; ++mode) {
        EngineArgs variant = args;
        variant.mode = mode == 0 ? "baseline" : "fasttts";
        variant.offload = mode == 2;
        ServingSystem system =
            ServingSystem::create(variant.toServingOptions().value())
                .value();
        const BatchResult out = system.serveProblems(args.numProblems);
        double transfer = 0;
        for (const auto &r : out.requests)
            transfer += r.transferTime;
        transfer /= out.requests.empty() ? 1 : out.requests.size();
        const char *label = mode == 0 ? "baseline"
            : mode == 1              ? "fasttts"
                                     : "fasttts+offload";
        table.addRow({label, formatDouble(out.meanGoodput, 1),
                      formatDouble(out.meanLatency, 1),
                      formatDouble(transfer, 2),
                      formatDouble(out.top1Accuracy, 1)});
    }
    table.setCaption("Offloading trades PCIe transfer time for a "
                     "larger per-phase KV budget; the dual-strategy "
                     "allocator only activates it when it wins "
                     "(paper Sec. 4.3.2).");
    table.print(std::cout);
    return 0;
}
