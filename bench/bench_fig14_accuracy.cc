/**
 * @file
 * Reproduces paper Fig. 14: algorithm accuracy under FastTTS vs. the
 * baseline.
 *
 * (a) Top-1 accuracy (majority voting) at n = 512 for the three model
 *     configurations on AIME and AMC — FastTTS matches the baseline
 *     (algorithmic equivalence).
 * (b) Pass@N accuracy vs. the number of attempts N — matching at
 *     large N.
 */

#include <iostream>
#include <string>
#include <vector>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    EngineArgs defaults;
    defaults.numProblems = 16;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Fig.14 accuracy preservation (datasets and model configs "
        "swept by the figure)",
        {"--problems", "--seed"});
    const int problems = args.numProblems;

    // --- (a) Top-1 accuracy at n = 512. ---
    for (const std::string dataset : {"AIME", "AMC"}) {
        Table table("Fig.14a Top-1 accuracy (%) at n=512 - " + dataset);
        table.setHeader({"config", "baseline", "fasttts"});
        for (const auto &models : allModelConfigs()) {
            double acc[2] = {0, 0};
            for (int pass = 0; pass < 2; ++pass) {
                ServingOptions opts;
                opts.config = pass ? FastTtsConfig::fastTts()
                                   : FastTtsConfig::baseline();
                opts.models = models;
                opts.datasetName = dataset;
                opts.numBeams = 512;
                opts.seed = args.seed;
                ServingSystem system =
                    ServingSystem::create(opts).value();
                acc[pass] = system.serveProblems(problems).top1Accuracy;
            }
            table.addRow(models.label, {acc[0], acc[1]}, 1);
        }
        table.setCaption("Paper: FastTTS matches (or slightly exceeds) "
                         "the baseline — algorithmic equivalence.");
        table.print(std::cout);
    }

    // --- (b) Pass@N on AIME and AMC (1.5B+1.5B). ---
    for (const std::string dataset : {"AIME", "AMC"}) {
        Table table("Fig.14b Pass@N accuracy (%) - " + dataset
                    + " 1.5B+1.5B, n=512");
        table.setHeader({"N", "baseline", "fasttts"});
        BatchResult out[2];
        for (int pass = 0; pass < 2; ++pass) {
            ServingOptions opts;
            opts.config = pass ? FastTtsConfig::fastTts()
                               : FastTtsConfig::baseline();
            opts.models = config1_5Bplus1_5B();
            opts.datasetName = dataset;
            opts.numBeams = 512;
            opts.seed = args.seed;
            ServingSystem system = ServingSystem::create(opts).value();
            out[pass] = system.serveProblems(problems);
        }
        auto pass_at = [&](const BatchResult &r, size_t n) {
            int hits = 0;
            for (const auto &req : r.requests)
                hits += passAtN(req.solutions, n) ? 1 : 0;
            return 100.0 * hits / r.requests.size();
        };
        for (size_t n : {8u, 32u, 128u, 512u}) {
            table.addRow(std::to_string(n),
                         {pass_at(out[0], n), pass_at(out[1], n)}, 1);
        }
        table.setCaption("Paper: matches at large N; may slightly "
                         "exceed the baseline at small N (scheduler "
                         "side effect).");
        table.print(std::cout);
    }
    return 0;
}
