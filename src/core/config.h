/**
 * @file
 * Engine configuration: the FastTTS optimization toggles.
 *
 * The same engine serves as the vLLM-style baseline (all optimizations
 * off) and as FastTTS (all on); the ablation benches (Fig. 16, 18)
 * toggle P / M / S individually. Mirrors the configurable interface of
 * the paper's implementation (Sec. 5).
 */

#ifndef FASTTTS_CORE_CONFIG_H
#define FASTTTS_CORE_CONFIG_H

#include <string>

#include "util/units.h"

namespace fasttts
{

/**
 * All knobs of one serving run.
 */
struct FastTtsConfig
{
    // --- Speculative Beam Extension (S, Sec. 4.1) ---
    bool speculativeExtension = true;
    bool lookaheadVerification = true; //!< Sec. 4.1.3 (needs S).
    double truncationRatio = 0.85;     //!< R: kept fraction on duplicate.

    // --- Dynamic Prefix-Aware Scheduling (P, Sec. 4.2) ---
    bool prefixAwareScheduling = true;
    std::string baselineScheduler = "random"; //!< Order when P is off.

    // --- Asymmetric Multi-Model Memory Allocation (M, Sec. 4.3) ---
    bool asymmetricAllocation = true;
    bool offloadEnabled = false; //!< Sec. 4.3.2 extended search space.

    // --- Substrate parameters ---
    int blockTokens = 16;           //!< Paged KV block size.
    double reservedBytes = 1.0 * GiB; //!< CUDA graphs + activations.
    bool recordTrace = false;       //!< Keep utilization timeline.
    uint64_t systemSeed = 0x5eed;   //!< Timing-only randomness
                                    //!< (truncation draws, baseline
                                    //!< random scheduling).

    /** The naive vLLM-style baseline (Sec. 6.1). */
    [[nodiscard]] static FastTtsConfig
    baseline()
    {
        FastTtsConfig c;
        c.speculativeExtension = false;
        c.lookaheadVerification = false;
        c.prefixAwareScheduling = false;
        c.asymmetricAllocation = false;
        return c;
    }

    /** Full FastTTS. */
    [[nodiscard]] static FastTtsConfig fastTts()
    {
        return FastTtsConfig();
    }
};

} // namespace fasttts

#endif // FASTTTS_CORE_CONFIG_H
