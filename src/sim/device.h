/**
 * @file
 * Edge-GPU device descriptions for the roofline substrate.
 *
 * The paper evaluates on consumer GPUs (RTX 4090 24 GB primary platform,
 * RTX 4070 Ti 12 GB and RTX 3070 Ti 8 GB for Sec. 6.4). The simulator
 * replaces the physical device with a parameterised roofline: peak
 * tensor compute, HBM bandwidth, VRAM capacity, and PCIe bandwidth for
 * the offloading strategy of Sec. 4.3.2.
 */

#ifndef FASTTTS_SIM_DEVICE_H
#define FASTTTS_SIM_DEVICE_H

#include <string>
#include <vector>

#include "api/registry.h"
#include "api/status.h"

namespace fasttts
{

/**
 * A roofline description of one accelerator.
 *
 * All fields are in SI base units (bytes, FLOP/s, bytes/s). The
 * usableFraction models the memory the serving stack may actually
 * allocate after CUDA context / framework overhead, mirroring the
 * paper's gpu_memory_utilization knob.
 */
struct DeviceSpec
{
    std::string name;          //!< Marketing name, e.g. "RTX4090".
    double vramBytes = 0;      //!< Total device memory.
    double peakFlops = 0;      //!< Peak dense FP16 tensor throughput.
    double memBandwidth = 0;   //!< Peak DRAM bandwidth.
    double pcieBandwidth = 0;  //!< Host<->device transfer bandwidth.
    double usableFraction = 1; //!< Fraction of VRAM usable by serving.

    /** Bytes the serving system may allocate (weights + KV + reserve). */
    double usableBytes() const { return vramBytes * usableFraction; }

    /** Machine balance point (FLOP per byte) of the roofline. */
    double ridgeFlopsPerByte() const { return peakFlops / memBandwidth; }
};

/** NVIDIA GeForce RTX 4090: 24 GB, ~165 TFLOPS FP16, ~1 TB/s. */
DeviceSpec rtx4090();

/** NVIDIA GeForce RTX 4070 Ti: 12 GB, ~80 TFLOPS FP16, ~504 GB/s. */
DeviceSpec rtx4070Ti();

/** NVIDIA GeForce RTX 3070 Ti: 8 GB, ~44 TFLOPS FP16, ~608 GB/s. */
DeviceSpec rtx3070Ti();

/** A cloud-class reference accelerator (A100-like), for Fig. 1b. */
DeviceSpec cloudA100();

/**
 * The device registry. Ships with "RTX4090", "RTX4070Ti", "RTX3070Ti"
 * and "CloudA100"; register additional accelerators here to make them
 * available to ServingOptions/EngineArgs without touching core code:
 *
 *   deviceRegistry().add("MyGPU", [] { DeviceSpec d; ...; return d; });
 */
Registry<DeviceSpec> &deviceRegistry();

/**
 * Look up a device by registered name. Unknown names are a kNotFound
 * error listing the valid names — never a silent default.
 */
StatusOr<DeviceSpec> deviceByName(const std::string &name);

/** All edge devices the evaluation sweeps over. */
std::vector<DeviceSpec> allEdgeDevices();

} // namespace fasttts

#endif // FASTTTS_SIM_DEVICE_H
