/**
 * @file
 * Smoke test for the JSON-emitting benchmark harness.
 *
 * Runs the real bench_runner binary (path injected by CMake as
 * FASTTTS_BENCH_RUNNER_PATH): --list must enumerate all 17 registered
 * benchmarks (16 figure benchmarks plus the online_scheduling policy
 * sweep), and a --quick run must write BENCH_<name>.json files that
 * parse and carry the throughput / latency-percentile /
 * KV-utilization / SLO-attainment contract every optimisation PR is
 * judged against.
 */

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace fasttts
{
namespace
{

/** Run a command, capture stdout, and return its exit status. */
int
runCommand(const std::string &command, std::string *output)
{
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return -1;
    char buffer[4096];
    output->clear();
    size_t read = 0;
    while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0)
        output->append(buffer, read);
    const int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

TEST(BenchRunner, ListEnumeratesAllFigureBenchmarks)
{
    std::string output;
    const int status =
        runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH) + " --list",
                   &output);
    ASSERT_EQ(status, 0);

    const std::vector<std::string> names = splitLines(output);
    EXPECT_EQ(names.size(), 17u);
    for (const char *expected :
         {"fig01_frontier", "fig03_patterns", "fig04_utilization",
          "fig05_prefix_sharing", "fig06_kv_throughput", "fig10_allocation",
          "fig11_variants", "fig12_goodput", "fig13_latency",
          "fig14_accuracy", "fig15_hardware", "fig16_ablation",
          "fig17_speculative", "fig18_scheduling", "micro",
          "online_responsiveness", "online_scheduling"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing benchmark: " << expected;
    }
}

TEST(BenchRunner, QuickRunEmitsParsableJson)
{
    const std::filesystem::path outDir =
        std::filesystem::path(testing::TempDir()) / "fasttts_bench_smoke";
    std::filesystem::remove_all(outDir);

    std::string output;
    const int status =
        runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH) +
                       " --quick --out-dir " + outDir.string() + " micro",
                   &output);
    ASSERT_EQ(status, 0) << output;

    const std::filesystem::path jsonPath = outDir / "BENCH_micro.json";
    ASSERT_TRUE(std::filesystem::exists(jsonPath));

    std::ifstream file(jsonPath);
    std::stringstream contents;
    contents << file.rdbuf();

    std::string error;
    const Json doc = Json::parse(contents.str(), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(doc["schema"].asString(), "fasttts-bench-v1");
    EXPECT_EQ(doc["benchmark"].asString(), "micro");
    EXPECT_TRUE(doc["quick"].asBool());

    for (const char *variant : {"baseline", "fasttts"}) {
        const Json &v = doc["variants"][variant];
        EXPECT_GT(v["throughput"]["precise_goodput_tok_s"].asNumber(), 0.0)
            << variant;
        EXPECT_GT(v["latency_s"]["p50"].asNumber(), 0.0) << variant;
        EXPECT_LE(v["latency_s"]["p50"].asNumber(),
                  v["latency_s"]["p99"].asNumber())
            << variant;
        EXPECT_GE(v["kv"]["hit_rate"].asNumber(), 0.0) << variant;
        EXPECT_LE(v["kv"]["hit_rate"].asNumber(), 1.0) << variant;
        EXPECT_GT(v["kv"]["budget_gib"].asNumber(), 0.0) << variant;
    }
    EXPECT_GT(doc["speedup"]["goodput"].asNumber(), 0.0);

    std::filesystem::remove_all(outDir);
}

TEST(BenchRunner, OnlineSchedulingSweepsPoliciesOnOneTrace)
{
    const std::filesystem::path outDir =
        std::filesystem::path(testing::TempDir())
        / "fasttts_bench_sched_smoke";
    std::filesystem::remove_all(outDir);

    std::string output;
    const int status =
        runCommand(std::string(FASTTTS_BENCH_RUNNER_PATH)
                       + " --quick --out-dir " + outDir.string()
                       + " online_scheduling",
                   &output);
    ASSERT_EQ(status, 0) << output;

    const std::filesystem::path jsonPath =
        outDir / "BENCH_online_scheduling.json";
    ASSERT_TRUE(std::filesystem::exists(jsonPath));

    std::ifstream file(jsonPath);
    std::stringstream contents;
    contents << file.rdbuf();
    std::string error;
    const Json doc = Json::parse(contents.str(), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(doc["schema"].asString(), "fasttts-bench-v1");
    EXPECT_EQ(doc["benchmark"].asString(), "online_scheduling");
    EXPECT_EQ(doc["config"]["arrivals"].asString(), "bursty");
    EXPECT_GT(doc["config"]["slo_s"].asNumber(), 0.0);

    const int requests =
        static_cast<int>(doc["config"]["requests"].asNumber());
    for (const char *policy : {"fifo", "priority", "sjf", "edf"}) {
        const Json &p = doc["policies"][policy];
        EXPECT_GE(p["slo_attainment"].asNumber(), 0.0) << policy;
        EXPECT_LE(p["slo_attainment"].asNumber(), 1.0) << policy;
        EXPECT_GE(p["deadline_misses"].asNumber(), 0.0) << policy;
        EXPECT_GT(p["latency_s"]["mean"].asNumber(), 0.0) << policy;
        EXPECT_LE(p["latency_s"]["p50"].asNumber(),
                  p["latency_s"]["p99"].asNumber())
            << policy;
        EXPECT_GT(p["utilization"].asNumber(), 0.0) << policy;
        EXPECT_LE(p["utilization"].asNumber(), 1.0) << policy;
        // Every policy serves the identical trace to completion.
        EXPECT_EQ(static_cast<int>(p["completed"].asNumber()),
                  requests)
            << policy;
    }

    std::filesystem::remove_all(outDir);
}

} // namespace
} // namespace fasttts
