/**
 * @file
 * Roofline latency model for transformer prefill and decode.
 *
 * Sec. 4.3.1 of the paper estimates per-batch latency as
 * T = max(FLOPs / P, Bytes / BW). We use the same model as the
 * simulation substrate, so the Asymmetric Memory Allocation search and
 * the simulated engine agree by construction on single-batch latency,
 * while end-to-end effects (stragglers, eviction recompute, phase
 * interleaving) emerge from the event loop built on top.
 *
 * The key property the model must reproduce (paper Fig. 6): prefill is
 * compute-bound and saturates with little KV memory, while decode is
 * bandwidth-bound and needs 5-10x more memory to reach the same
 * relative throughput. Both follow directly from the FLOP and byte
 * counts of the two phases.
 */

#ifndef FASTTTS_SIM_ROOFLINE_H
#define FASTTTS_SIM_ROOFLINE_H

#include "model/model_spec.h"
#include "sim/device.h"

namespace fasttts
{

/**
 * Roofline cost model bound to one device.
 */
class RooflineModel
{
  public:
    /**
     * @param device Device roofline parameters.
     * @param compute_eff Fraction of peak FLOPs dense kernels achieve.
     * @param bw_eff Fraction of peak bandwidth streaming achieves.
     * @param step_overhead Fixed per-kernel-launch overhead (seconds),
     *        charged once per decode step / prefill pass.
     */
    explicit RooflineModel(const DeviceSpec &device,
                           double compute_eff = 0.55,
                           double bw_eff = 0.80,
                           double step_overhead = 2e-4);

    /** The device this model is bound to. */
    const DeviceSpec &device() const { return device_; }

    /** FLOPs of one decode step for a batch (weights + attention). */
    double decodeFlops(const ModelSpec &m, int batch, double avg_ctx) const;

    /** Bytes moved by one decode step (weights + KV read/write). */
    double decodeBytes(const ModelSpec &m, int batch, double avg_ctx) const;

    /**
     * Wall time of one decode step: every sequence in the batch emits
     * one token.
     * @param avg_ctx Average context length whose KV must be read.
     */
    double decodeStepTime(const ModelSpec &m, int batch,
                          double avg_ctx) const;

    /** FLOPs of a full prefill pass over batch x seq_len tokens. */
    double prefillFlops(const ModelSpec &m, int batch, double seq_len) const;

    /** Bytes moved by a prefill pass (weights + KV write). */
    double prefillBytes(const ModelSpec &m, int batch, double seq_len) const;

    /** Wall time of one prefill pass of batch sequences of seq_len. */
    double prefillTime(const ModelSpec &m, int batch, double seq_len) const;

    /**
     * Marginal time to re-prefill evicted KV piggybacked on a running
     * decode batch (vLLM chunked prefill): the weights are already
     * being streamed every decode step, so the recompute pays only its
     * compute and its KV writes.
     */
    double chunkedRecomputeTime(const ModelSpec &m, double tokens) const;

    /**
     * Compute (tensor-core) utilization during a decode step: the
     * fraction of peak FLOPs the active batch keeps busy. Mirrors the
     * Nsight metric of paper Fig. 4 / Fig. 17.
     */
    double decodeComputeUtil(const ModelSpec &m, int batch,
                             double avg_ctx) const;

    /** Compute utilization during a prefill pass. */
    double prefillComputeUtil(const ModelSpec &m, int batch,
                              double seq_len) const;

    /** Host<->device transfer time for the offloading strategy. */
    double transferTime(double bytes) const;

    /** Effective sustained compute rate (FLOP/s). */
    double effectiveFlops() const { return device_.peakFlops * computeEff_; }

    /** Effective sustained bandwidth (bytes/s). */
    double
    effectiveBandwidth() const
    {
        return device_.memBandwidth * bwEff_;
    }

    /**
     * Decode-kernel occupancy: small batches cannot saturate HBM
     * (latency-bound lanes, launch gaps), which is exactly why a
     * draining batch wastes the GPU (paper Fig. 4) and why keeping the
     * batch full with speculative work pays (Sec. 4.1). Returns the
     * achieved fraction of effective bandwidth, in (0, 1].
     */
    static double
    decodeOccupancy(int batch)
    {
        return batch <= 0 ? 1.0
                          : static_cast<double>(batch) / (batch + 3.0);
    }

  private:
    DeviceSpec device_;
    double computeEff_;
    double bwEff_;
    double stepOverhead_;
};

} // namespace fasttts

#endif // FASTTTS_SIM_ROOFLINE_H
