#include "util/rng.h"

#include <cmath>

namespace fasttts
{

namespace
{

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed) : seed_(seed)
{
    uint64_t state = seed;
    for (auto &s : s_)
        s = splitMix64(state);
    // Avoid the theoretically possible all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa construction gives uniform doubles in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double sd)
{
    return mean + sd * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    double u = uniform();
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

int
Rng::categorical(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return 0;
    double target = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
}

uint64_t
Rng::mix(uint64_t seed, uint64_t stream_id)
{
    uint64_t state = seed ^ (0xd1342543de82ef95ULL * (stream_id + 1));
    return splitMix64(state);
}

Rng
Rng::fork(uint64_t stream_id) const
{
    return Rng(mix(seed_, stream_id));
}

} // namespace fasttts
