/**
 * @file
 * Domain example: choosing a TTS method for an accuracy/latency
 * target.
 *
 * Sweeps all five search methods (Fig. 2) under FastTTS serving on a
 * mixed AIME workload, printing the accuracy/latency/token-cost
 * trade-off — the decision a practitioner deploying edge reasoning
 * actually faces (paper Sec. 3.1).
 *
 *   ./build/examples/method_comparison [num_problems]
 */

#include <cstdlib>
#include <iostream>

#include "core/serving.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace fasttts;
    const int problems = argc > 1 ? std::atoi(argv[1]) : 10;

    std::cout << "TTS method comparison under FastTTS serving: AMC, "
                 "1.5B+1.5B, n=64\n";

    Table table("Accuracy / latency / token cost by search method");
    table.setHeader({"method", "top-1 %", "pass@n %", "latency s",
                     "goodput tok/s", "tokens/request"});
    for (const std::string method :
         {"best_of_n", "beam_search", "dvts", "dynamic_branching",
          "varying_granularity"}) {
        ServingOptions opts;
        opts.config = FastTtsConfig::fastTts();
        opts.models = config1_5Bplus1_5B();
        opts.datasetName = "AMC";
        opts.algorithmName = method;
        opts.numBeams = 64;
        ServingSystem system(opts);
        const BatchResult out = system.serveProblems(problems);
        double tokens = 0;
        for (const auto &r : out.requests)
            tokens += static_cast<double>(r.generatedTokens);
        tokens /= out.requests.empty() ? 1 : out.requests.size();
        table.addRow({method, formatDouble(out.top1Accuracy, 1),
                      formatDouble(out.passAtNAccuracy, 1),
                      formatDouble(out.meanLatency, 1),
                      formatDouble(out.meanGoodput, 1),
                      formatDouble(tokens, 0)});
    }
    table.setCaption("Verifier-guided tree methods trade latency for "
                     "accuracy over Best-of-N (paper Fig. 3); FastTTS "
                     "narrows the latency cost.");
    table.print(std::cout);
    return 0;
}
