/**
 * @file
 * Reproduces paper Fig. 18.
 *
 * Left: effectiveness of Dynamic Prefix-Aware Scheduling — KV cache
 * consumption as the batch grows, for prefix-aware, random and
 * worst-case orders over final-iteration beam traces (1.5B+1.5B,
 * AIME). Prefix-aware grows slowest, so a fixed budget admits a
 * substantially larger batch.
 *
 * Right: impact of memory availability on the P and M+P gains —
 * largest under tight KV budgets (1.5 GB), vanishing when memory is
 * abundant (14 GB).
 *
 * Bottom (beyond the paper): online admission-policy sweep — the
 * registry-backed QueuePolicy axis (fifo / priority / sjf / edf) on
 * one identical heavy-tailed arrival trace, with --max-inflight
 * requests interleaved, reporting latency percentiles and SLO
 * attainment per policy.
 */

#include <algorithm>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "api/engine_args.h"
#include "core/engine.h"
#include "core/online_server.h"
#include "core/serving.h"
#include "online_calibration.h"
#include "sched/queue_policy.h"
#include "sched/scheduler.h"
#include "util/table.h"
#include "util/units.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    EngineArgs defaults;
    defaults.numProblems = 4;
    defaults.maxInflight = 4;
    defaults.arrivals = "bursty";
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Fig.18 prefix-aware scheduling study (beam policies, KV "
        "budgets and admission policies swept by the figure)",
        {"--problems", "--seed", "--max-inflight", "--slo",
         "--arrivals"});
    const int problems = args.numProblems;

    // --- Left: KV growth by scheduling order on a final-iteration
    //     trace. ---
    // Build a beam-search-shaped final iteration: 128 leaves in
    // sibling groups of 4 under a deep shared trunk.
    KvCacheManager tree(1 << 30, 1.0, 16);
    Rng rng(2026);
    std::vector<SchedEntry> entries;
    size_t index = 0;
    for (int g = 0; g < 8; ++g) {
        const int trunk = tree.createChild(
            KvCacheManager::kRoot, 1 + static_cast<uint64_t>(g),
            rng.uniformInt(300, 700));
        for (int p = 0; p < 4; ++p) {
            const int parent = tree.createChild(
                trunk, 100 + index, rng.uniformInt(150, 450));
            for (int c = 0; c < 4; ++c) {
                const int leaf = tree.createChild(
                    parent, 1000 + index, rng.uniformInt(40, 250));
                SchedEntry e;
                e.index = index;
                e.beamId = ++index;
                e.parentBeam = static_cast<uint64_t>(g * 4 + p);
                e.prevPosition = g * 4 + p;
                e.leaf = leaf;
                e.pathTokens = tree.pathTokens(leaf);
                entries.push_back(e);
            }
        }
    }

    Table growth("Fig.18 (left) cumulative unique KV (k tokens) vs "
                 "batch growth by scheduling order");
    growth.setHeader({"batch size", "prefix-aware", "random",
                      "worst-case"});
    const std::vector<std::string> policies = {"prefix_aware", "random",
                                               "worst_case"};
    std::vector<std::vector<double>> cumulative(policies.size());
    for (size_t p = 0; p < policies.size(); ++p) {
        auto order = entries;
        Rng policy_rng(7);
        makeScheduler(policies[p])->order(order, tree, policy_rng);
        // Cumulative unique tokens touched as the batch grows in
        // schedule order — a proxy for KV cache consumption.
        std::set<int> seen;
        double unique = 0;
        for (const auto &e : order) {
            for (int id = e.leaf; id != KvCacheManager::kInvalid;
                 id = tree.parentOf(id)) {
                if (!seen.insert(id).second)
                    break;
                unique += tree.nodeTokens(id);
            }
            cumulative[p].push_back(unique / 1000.0);
        }
    }
    for (size_t b = 7; b < entries.size(); b += 16) {
        growth.addRow(std::to_string(b + 1),
                      {cumulative[0][b], cumulative[1][b],
                       cumulative[2][b]},
                      1);
    }
    growth.setCaption("Paper: KV grows much more slowly under "
                      "prefix-aware scheduling, so a fixed budget "
                      "supports a substantially larger batch.");
    growth.print(std::cout);

    // --- Right: optimization gain vs available KV memory. ---
    // Scale the 1.5B+1.5B memory fraction so the engine's KV budget
    // lands at roughly the paper's 1.5 / 2 / 14 GB points.
    Table gains("Fig.18 (right) goodput gain (%) vs available KV "
                "memory - AIME, n=512");
    gains.setHeader({"KV budget", "P %", "M+P %"});
    struct MemPoint
    {
        const char *label;
        double fraction;
    };
    for (const auto &[label, fraction] :
         {MemPoint{"~1.5 GB", 0.355}, MemPoint{"~2 GB", 0.38},
          MemPoint{"~14 GB", 0.88}}) {
        double goodput[3] = {0, 0, 0};
        for (int pass = 0; pass < 3; ++pass) {
            ServingOptions opts;
            opts.config = FastTtsConfig::baseline();
            if (pass >= 1)
                opts.config.prefixAwareScheduling = true;
            if (pass >= 2)
                opts.config.asymmetricAllocation = true;
            opts.models = config1_5Bplus1_5B();
            opts.models.memoryFraction = fraction;
            opts.datasetName = "AIME";
            opts.numBeams = 512;
            opts.seed = args.seed;
            ServingSystem system = ServingSystem::create(opts).value();
            goodput[pass] = system.serveProblems(problems).meanGoodput;
        }
        auto gain = [&](double g) {
            return goodput[0] > 0 ? 100.0 * (g - goodput[0]) / goodput[0]
                                  : 0.0;
        };
        gains.addRow({label, formatDouble(gain(goodput[1]), 1),
                      formatDouble(gain(goodput[2]), 1)});
    }
    gains.setCaption("Paper: 58% (P) and 145% (M+P) at 1.5 GB, "
                     "shrinking to ~5% / 24% at 14 GB — both "
                     "optimizations matter most under tight memory.");
    gains.print(std::cout);

    // --- Bottom: admission-policy sweep on one identical arrival
    //     trace (the QueuePolicy axis). ---
    ServingOptions online_opts;
    online_opts.config = FastTtsConfig::fastTts();
    online_opts.models = config1_5Bplus1_5B();
    online_opts.datasetName = "AIME";
    online_opts.numBeams = 32;
    online_opts.seed = args.seed;

    // Probe-calibrated overload trace with tiered priorities/SLOs —
    // the same recipe as bench_runner's online_scheduling benchmark,
    // so the figure mirrors the JSON (bench/online_calibration.h).
    // --slo keeps its documented semantics: unset derives a budget
    // from the measured mean, 0 disables deadlines, > 0 overrides.
    const bool slo_set = args.wasSet("--slo");
    const int num_requests = std::max(16, 6 * problems);
    const CalibratedOnlineTrace calibrated =
        calibrateOnlineTrace(online_opts, args.arrivals, num_requests,
                             args.seed, slo_set ? args.slo : -1.0)
            .value();
    const double slo = calibrated.slo;

    Table sched("Fig.18 (bottom) admission policies on one identical "
                + args.arrivals + " trace - AIME, n=32, K="
                + std::to_string(args.maxInflight) + ", SLO="
                + (slo > 0 ? formatDouble(slo, 0) + "s"
                           : std::string("off")));
    sched.setHeader({"policy", "mean lat s", "p50 s", "p95 s", "p99 s",
                     "mean queue s", "slo att %", "misses", "util"});
    for (const std::string policy_name :
         {"fifo", "priority", "sjf", "edf"}) {
        OnlineServerOptions online;
        online.policy = policy_name;
        online.maxInflight = args.maxInflight;
        online.slo = slo;
        OnlineServer server =
            OnlineServer::create(online_opts, online).value();
        const auto out = server.serveRequests(calibrated.requests).value();
        sched.addRow({policy_name, formatDouble(out.meanLatency, 1),
                      formatDouble(out.p50Latency, 1),
                      formatDouble(out.p95Latency, 1),
                      formatDouble(out.p99Latency, 1),
                      formatDouble(out.meanQueueDelay, 1),
                      slo > 0
                          ? formatDouble(100.0 * out.sloAttainment, 1)
                          : "-",
                      slo > 0 ? std::to_string(out.deadlineMisses)
                              : "-",
                      formatDouble(out.utilization, 2)});
    }
    sched.setCaption("Expectation: under heavy-tailed overload, sjf "
                     "cuts the median by letting short jobs jump long "
                     "ones (at the cost of the tail), edf reorders by "
                     "urgency tier, and fifo pays head-of-line "
                     "blocking; past saturation no policy can save "
                     "every deadline.");
    sched.print(std::cout);
    return 0;
}
