/**
 * @file
 * Tests for the simulated clock and utilization timeline.
 */

#include <gtest/gtest.h>

#include "sim/timeline.h"

namespace fasttts
{
namespace
{

TEST(SimClock, StartsAtZero)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0.0);
    EXPECT_TRUE(clock.segments().empty());
}

TEST(SimClock, AdvanceAccumulates)
{
    SimClock clock;
    clock.advance(1.5, Phase::Generation, 0.4, 8, 8);
    clock.advance(0.5, Phase::Verification, 0.9, 4, 8);
    EXPECT_DOUBLE_EQ(clock.now(), 2.0);
    EXPECT_DOUBLE_EQ(clock.phaseTime(Phase::Generation), 1.5);
    EXPECT_DOUBLE_EQ(clock.phaseTime(Phase::Verification), 0.5);
    EXPECT_DOUBLE_EQ(clock.phaseTime(Phase::Transfer), 0.0);
    ASSERT_EQ(clock.segments().size(), 2u);
    EXPECT_EQ(clock.segments()[0].phase, Phase::Generation);
    EXPECT_DOUBLE_EQ(clock.segments()[1].start, 1.5);
}

TEST(SimClock, ZeroAdvanceIsNoop)
{
    SimClock clock;
    clock.advance(0.0, Phase::Generation);
    EXPECT_EQ(clock.now(), 0.0);
    EXPECT_TRUE(clock.segments().empty());
}

TEST(SimClock, SampleUtilization)
{
    SimClock clock;
    clock.advance(1.0, Phase::Generation, 0.5, 4, 4);
    clock.advance(1.0, Phase::Verification, 0.9, 4, 4);
    const auto samples = clock.sampleUtilization(0.25);
    ASSERT_EQ(samples.size(), 8u);
    EXPECT_DOUBLE_EQ(samples[0], 0.5);
    EXPECT_DOUBLE_EQ(samples[3], 0.5);
    EXPECT_DOUBLE_EQ(samples[4], 0.9);
    EXPECT_DOUBLE_EQ(samples[7], 0.9);
}

TEST(SimClock, SampleBeyondTraceIsZero)
{
    SimClock clock;
    clock.advance(0.5, Phase::Generation, 0.7, 1, 1);
    const auto samples = clock.sampleUtilization(0.2, 1.0);
    ASSERT_EQ(samples.size(), 5u);
    EXPECT_DOUBLE_EQ(samples[4], 0.0);
}

TEST(SimClock, TraceDisabledStillAdvances)
{
    SimClock clock;
    clock.setTraceEnabled(false);
    clock.advance(2.0, Phase::Generation, 0.5, 1, 1);
    EXPECT_DOUBLE_EQ(clock.now(), 2.0);
    EXPECT_TRUE(clock.segments().empty());
    EXPECT_DOUBLE_EQ(clock.phaseTime(Phase::Generation), 2.0);
}

TEST(SimClock, DiscardTraceKeepsClock)
{
    SimClock clock;
    clock.advance(1.0, Phase::Recompute, 0.2, 1, 1);
    clock.discardTrace();
    EXPECT_TRUE(clock.segments().empty());
    EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(SimClock, PhaseNames)
{
    EXPECT_STREQ(phaseName(Phase::Generation), "generation");
    EXPECT_STREQ(phaseName(Phase::Verification), "verification");
    EXPECT_STREQ(phaseName(Phase::Recompute), "recompute");
    EXPECT_STREQ(phaseName(Phase::Transfer), "transfer");
    EXPECT_STREQ(phaseName(Phase::Idle), "idle");
}

TEST(SimClock, DefaultTotalSlotsEqualsActive)
{
    SimClock clock;
    clock.advance(1.0, Phase::Generation, 0.5, 6);
    EXPECT_EQ(clock.segments()[0].totalSlots, 6);
}

} // namespace
} // namespace fasttts
