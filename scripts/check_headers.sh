#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must
# compile standalone (all of its includes reachable from the header
# itself, no hidden ordering dependencies).
#
# Usage:
#   scripts/check_headers.sh [compiler]
#
# The optional argument selects the compiler (default: c++).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
compiler="${1:-c++}"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

failures=0
checked=0
while IFS= read -r header; do
    rel="${header#"${repo_root}/src/"}"
    tu="${tmp_dir}/check.cc"
    printf '#include "%s"\n#include "%s"\n' "${rel}" "${rel}" >"${tu}"
    checked=$((checked + 1))
    if ! "${compiler}" -std=c++17 -fsyntax-only -Wall -Wextra -Werror \
        -I "${repo_root}/src" "${tu}" 2>"${tmp_dir}/err"; then
        echo "NOT SELF-CONTAINED: src/${rel}" >&2
        sed 's/^/    /' "${tmp_dir}/err" >&2
        failures=$((failures + 1))
    fi
done < <(find "${repo_root}/src" -name '*.h' | sort)

# tools/ holds Python today, but any C++ helper headers added there
# must meet the same bar; the loop is a no-op while none exist.
while IFS= read -r header; do
    rel="${header#"${repo_root}/"}"
    tu="${tmp_dir}/check.cc"
    printf '#include "%s"\n#include "%s"\n' "${header}" "${header}" >"${tu}"
    checked=$((checked + 1))
    if ! "${compiler}" -std=c++17 -fsyntax-only -Wall -Wextra -Werror \
        -I "${repo_root}/src" -I "${repo_root}/tools" "${tu}" \
        2>"${tmp_dir}/err"; then
        echo "NOT SELF-CONTAINED: ${rel}" >&2
        sed 's/^/    /' "${tmp_dir}/err" >&2
        failures=$((failures + 1))
    fi
done < <(find "${repo_root}/tools" -name '*.h' 2>/dev/null | sort)

if [[ ${failures} -gt 0 ]]; then
    echo "-- ${failures}/${checked} headers failed the self-containment check" >&2
    exit 1
fi
echo "-- all ${checked} headers are self-contained"
