/**
 * @file
 * Answer aggregation metrics (paper Sec. 6.3).
 *
 * Top-1 accuracy selects the final answer by majority voting over the
 * completed solutions; Pass@N asks whether any of the N highest
 * verifier-scored solutions is correct. Answer value 0 denotes the
 * correct answer (see SyntheticGenerator::sampleAnswer).
 */

#ifndef FASTTTS_METRICS_ACCURACY_H
#define FASTTTS_METRICS_ACCURACY_H

#include <cstddef>
#include <vector>

namespace fasttts
{

/** One completed reasoning path, as the aggregator sees it. */
struct CompletedSolution
{
    int answer = -1;     //!< 0 = correct, >0 = a distinct wrong answer.
    double score = 0;    //!< Verifier score of the final step.
    long tokens = 0;     //!< Verified tokens in the path.
    double finishTime = 0; //!< Completion clock (seconds).
};

/**
 * Majority-vote answer: most frequent answer value; ties broken by the
 * higher summed verifier score, then by the smaller answer value.
 * @return The winning answer, or -1 when solutions is empty.
 */
int majorityVoteAnswer(const std::vector<CompletedSolution> &solutions);

/** Whether majority voting yields the correct answer (== 0). */
bool top1Correct(const std::vector<CompletedSolution> &solutions);

/**
 * Pass@N: true when at least one of the top-N solutions by verifier
 * score is correct.
 */
bool passAtN(const std::vector<CompletedSolution> &solutions, size_t n);

} // namespace fasttts

#endif // FASTTTS_METRICS_ACCURACY_H
