/**
 * @file
 * The verifier-guided search abstraction (paper Sec. 3.1).
 *
 * All mainstream TTS methods share a two-stage loop — Generation of a
 * thinking step per active beam, then Verification and selection — and
 * differ only in the heuristics applied at each stage. SearchAlgorithm
 * captures exactly those two hooks: select() implements the
 * Verification-stage policy (which beams replicate, which are pruned)
 * and stepTokenCap() the Generation-stage policy (verification
 * granularity).
 */

#ifndef FASTTTS_SEARCH_SEARCH_ALGORITHM_H
#define FASTTTS_SEARCH_SEARCH_ALGORITHM_H

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/status.h"
#include "search/beam.h"
#include "util/rng.h"

namespace fasttts
{

/**
 * Interface every TTS search method implements.
 */
class SearchAlgorithm
{
  public:
    virtual ~SearchAlgorithm() = default;

    /** Human-readable method name (used in bench output). */
    virtual std::string name() const = 0;

    /** Search width n: target number of concurrently active beams. */
    virtual int beamWidth() const = 0;

    /**
     * Branching factor B used for score-bin construction in
     * Speculative Candidate Selection (Sec. 4.1.1). Methods without a
     * static factor report their typical value.
     */
    virtual int branchFactor() const = 0;

    /**
     * Verification-stage policy: given the scored, non-terminal
     * candidates, choose survivors and per-survivor child counts.
     * Candidates arrive in engine order; implementations must be
     * deterministic given (candidates, rng state).
     * @param target_width Children to produce in total (engine shrinks
     *        this as paths complete).
     */
    virtual SelectionResult select(
        const std::vector<BeamCandidate> &candidates, int target_width,
        Rng &rng) const = 0;

    /**
     * Generation-stage policy: maximum tokens a thinking step may emit
     * at the given step index (varying verification granularity,
     * VG-Search). Unlimited by default.
     */
    virtual int
    stepTokenCap(int step_index) const
    {
        (void)step_index;
        return std::numeric_limits<int>::max();
    }
};

/** Factory helpers (definitions in algorithms.cc). */
std::unique_ptr<SearchAlgorithm> makeBestOfN(int n);
std::unique_ptr<SearchAlgorithm> makeBeamSearch(int n, int branch_factor);
std::unique_ptr<SearchAlgorithm> makeDvts(int n, int branch_factor);
std::unique_ptr<SearchAlgorithm> makeDynamicBranching(int n,
                                                      int max_branch);
std::unique_ptr<SearchAlgorithm> makeVaryingGranularity(int n,
                                                        int branch_factor);

/**
 * The search-algorithm registry. Ships with "best_of_n",
 * "beam_search", "dvts", "dynamic_branching" and
 * "varying_granularity"; factories take the search width n and the
 * branch factor B. Register custom TTS methods here:
 *
 *   algorithmRegistry().add("my_search", [](int n, int b) {
 *       return std::unique_ptr<SearchAlgorithm>(new MySearch(n, b));
 *   });
 */
Registry<std::unique_ptr<SearchAlgorithm>, int, int> &algorithmRegistry();

/**
 * Construct a registered algorithm by name. Unknown names are a
 * kNotFound error listing the valid names — never a silent default.
 */
StatusOr<std::unique_ptr<SearchAlgorithm>>
makeAlgorithm(const std::string &name, int n, int branch_factor = 4);

} // namespace fasttts

#endif // FASTTTS_SEARCH_SEARCH_ALGORITHM_H
