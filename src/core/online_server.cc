#include "core/online_server.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace fasttts
{

OnlineServer::OnlineServer(const ServingOptions &options)
    : system_(options)
{
}

OnlineTraceResult
OnlineServer::serveTrace(int num_requests, double arrival_rate,
                         uint64_t seed)
{
    Rng rng = Rng(seed).fork(0xa881);
    std::vector<double> arrivals;
    arrivals.reserve(static_cast<size_t>(num_requests));
    double t = 0;
    for (int i = 0; i < num_requests; ++i) {
        t += rng.exponential(arrival_rate);
        arrivals.push_back(t);
    }
    return serveArrivals(arrivals);
}

OnlineTraceResult
OnlineServer::serveArrivals(const std::vector<double> &arrivals)
{
    OnlineTraceResult out;
    const auto &problems = system_.problems();
    double device_free_at = 0;
    double busy = 0;

    for (size_t i = 0; i < arrivals.size(); ++i) {
        OnlineRequestRecord rec;
        rec.problemId = static_cast<int>(i % problems.size());
        rec.arrival = arrivals[i];
        rec.start = std::max(rec.arrival, device_free_at);
        const RequestResult r =
            system_.serve(problems[static_cast<size_t>(rec.problemId)]);
        rec.finish = rec.start + r.completionTime;
        device_free_at = rec.finish;
        busy += r.completionTime;
        out.records.push_back(rec);
    }

    if (out.records.empty())
        return out;

    std::vector<double> latencies;
    double lat_total = 0;
    double queue_total = 0;
    for (const auto &rec : out.records) {
        latencies.push_back(rec.latency());
        lat_total += rec.latency();
        queue_total += rec.queueDelay();
    }
    std::sort(latencies.begin(), latencies.end());
    const double n = static_cast<double>(out.records.size());
    out.meanLatency = lat_total / n;
    out.meanQueueDelay = queue_total / n;
    out.p95Latency = latencies[static_cast<size_t>(
        std::min(latencies.size() - 1.0, std::ceil(0.95 * n) - 1))];
    out.makespan = out.records.back().finish;
    out.utilization = out.makespan > 0 ? busy / out.makespan : 0;
    return out;
}

} // namespace fasttts
