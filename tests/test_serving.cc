/**
 * @file
 * Tests for the ServingSystem facade and batch aggregation.
 */

#include <gtest/gtest.h>

#include "core/serving.h"

namespace fasttts
{
namespace
{

TEST(ServingSystem, ServesProblemsAndAggregates)
{
    ServingOptions opts;
    opts.numBeams = 8;
    ServingSystem system = ServingSystem::create(opts).value();
    const auto out = system.serveProblems(3);
    EXPECT_EQ(out.requests.size(), 3u);
    EXPECT_GT(out.meanGoodput, 0);
    EXPECT_GT(out.meanLatency, 0);
    EXPECT_GE(out.top1Accuracy, 0);
    EXPECT_LE(out.top1Accuracy, 100);
    EXPECT_GE(out.passAtNAccuracy, out.passAt1);
}

TEST(ServingSystem, ProblemSetIsDeterministic)
{
    ServingOptions opts;
    ServingSystem a = ServingSystem::create(opts).value();
    ServingSystem b = ServingSystem::create(opts).value();
    ASSERT_FALSE(a.problems().empty());
    EXPECT_EQ(a.problems()[0].seed, b.problems()[0].seed);
}

TEST(ServingSystem, SeedChangesProblems)
{
    ServingOptions a;
    a.seed = 1;
    ServingOptions b;
    b.seed = 2;
    EXPECT_NE(ServingSystem::create(a)->problems()[0].seed,
              ServingSystem::create(b)->problems()[0].seed);
}

TEST(ServingSystem, OptionsRoundTrip)
{
    ServingOptions opts;
    opts.deviceName = "RTX4070Ti";
    opts.datasetName = "AMC";
    opts.algorithmName = "dvts";
    opts.numBeams = 12;
    ServingSystem system = ServingSystem::create(opts).value();
    EXPECT_EQ(system.options().deviceName, "RTX4070Ti");
    EXPECT_EQ(system.options().numBeams, 12);
}

TEST(ServingSystem, ServeSingleProblem)
{
    ServingOptions opts;
    opts.numBeams = 8;
    ServingSystem system = ServingSystem::create(opts).value();
    const auto r = system.serve(system.problems()[0]);
    EXPECT_EQ(r.completedBeams, 8);
}

TEST(AggregateResults, AccuracyPercentages)
{
    // Two requests: one solved (answer 0 majority), one not.
    RequestResult solved;
    solved.completedBeams = 2;
    solved.avgBeamTokens = 100;
    solved.avgBeamCompletion = 10;
    solved.solutions = {{0, 0.9, 100, 1.0}, {0, 0.8, 100, 2.0}};
    RequestResult failed;
    failed.completedBeams = 2;
    failed.avgBeamTokens = 100;
    failed.avgBeamCompletion = 10;
    failed.solutions = {{3, 0.9, 100, 1.0}, {3, 0.8, 100, 2.0}};
    const auto out = aggregateResults({solved, failed}, 2);
    EXPECT_DOUBLE_EQ(out.top1Accuracy, 50.0);
    EXPECT_DOUBLE_EQ(out.passAtNAccuracy, 50.0);
}

TEST(ServingSystem, CreateRejectsUnknownNames)
{
    ServingOptions opts;
    opts.deviceName = "RTX409O"; // Typo: letter O, not zero.
    const auto bad_device = ServingSystem::create(opts);
    ASSERT_FALSE(bad_device.ok());
    EXPECT_EQ(bad_device.status().code(), StatusCode::kNotFound);
    EXPECT_NE(bad_device.status().message().find("RTX4090"),
              std::string::npos);

    opts = ServingOptions();
    opts.datasetName = "AIMEE";
    EXPECT_EQ(ServingSystem::create(opts).status().code(),
              StatusCode::kNotFound);

    opts = ServingOptions();
    opts.algorithmName = "beam_serach";
    EXPECT_EQ(ServingSystem::create(opts).status().code(),
              StatusCode::kNotFound);
}

TEST(ServingSystem, CreateRejectsBadWidths)
{
    ServingOptions opts;
    opts.numBeams = 0;
    EXPECT_EQ(ServingSystem::create(opts).status().code(),
              StatusCode::kInvalidArgument);

    opts = ServingOptions();
    opts.branchFactor = 0;
    EXPECT_EQ(ServingSystem::create(opts).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(AggregateResults, EmptyIsSafe)
{
    const auto out = aggregateResults({}, 8);
    EXPECT_TRUE(out.requests.empty());
    EXPECT_DOUBLE_EQ(out.meanGoodput, 0.0);
}

} // namespace
} // namespace fasttts
