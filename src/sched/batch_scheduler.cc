#include "sched/batch_scheduler.h"

#include <algorithm>

namespace fasttts
{

int
BatchPlan::decodeMembers() const
{
    int count = 0;
    for (const BatchPlanEntry &entry : entries) {
        if (entry.kind == BatchWorkKind::Decode)
            ++count;
    }
    return count;
}

BatchScheduler::BatchScheduler(int max_batched_tokens, int prefill_chunk)
    : maxBatchedTokens_(std::max(1, max_batched_tokens)),
      prefillChunk_(std::max(1, prefill_chunk))
{
}

namespace
{

/** Whether two candidates share a nonzero prefix-affinity key. */
bool
anySharedPrefixKey(const std::vector<BatchCandidate> &candidates)
{
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].prefixKey == 0)
            continue;
        for (size_t j = i + 1; j < candidates.size(); ++j) {
            if (candidates[j].prefixKey == candidates[i].prefixKey)
                return true;
        }
    }
    return false;
}

/**
 * Stable regroup: candidates with equal nonzero prefixKey move up to
 * sit directly behind the first occurrence of their key; everything
 * else keeps its relative order. Identity when no key repeats.
 */
std::vector<BatchCandidate>
groupByPrefixKey(const std::vector<BatchCandidate> &candidates)
{
    std::vector<BatchCandidate> grouped;
    grouped.reserve(candidates.size());
    std::vector<bool> taken(candidates.size(), false);
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (taken[i])
            continue;
        taken[i] = true;
        grouped.push_back(candidates[i]);
        if (candidates[i].prefixKey == 0)
            continue;
        for (size_t j = i + 1; j < candidates.size(); ++j) {
            if (!taken[j]
                && candidates[j].prefixKey == candidates[i].prefixKey) {
                taken[j] = true;
                grouped.push_back(candidates[j]);
            }
        }
    }
    return grouped;
}

} // namespace

BatchPlan
BatchScheduler::plan(const std::vector<BatchCandidate> &candidates) const
{
    BatchPlan out;
    long budget = maxBatchedTokens_;

    // Prefix-affinity tiebreak (see header): only rewrite the order
    // when some nonzero key actually repeats, so the common path (no
    // prefix cache, or all-distinct keys) is untouched.
    std::vector<BatchCandidate> grouped;
    const bool regroup = anySharedPrefixKey(candidates);
    if (regroup)
        grouped = groupByPrefixKey(candidates);
    const std::vector<BatchCandidate> &order =
        regroup ? grouped : candidates;

    // --- Decode phase: requests past their prompt keep decoding. ---
    for (const BatchCandidate &candidate : order) {
        if (candidate.promptRemaining > 0 || candidate.decodeTokens <= 0)
            continue;
        const long need = std::max(1, candidate.decodeTokens);
        // Progress guarantee: the first decoder is admitted even when
        // its demand alone exceeds the wave budget.
        if (need > budget && !out.entries.empty())
            continue;
        BatchPlanEntry entry;
        entry.member = candidate.member;
        entry.kind = BatchWorkKind::Decode;
        entry.tokens = static_cast<int>(need);
        out.entries.push_back(entry);
        out.plannedTokens += need;
        budget -= need;
        if (budget <= 0)
            break;
    }

    // --- Prefill phase: leftover budget becomes prompt chunks, one
    //     per prefilling request per wave (chunked prefill). ---
    for (const BatchCandidate &candidate : order) {
        if (candidate.promptRemaining <= 0)
            continue;
        long chunk = std::min<long>(
            std::min<long>(prefillChunk_, candidate.promptRemaining),
            std::max<long>(budget, 0));
        if (chunk <= 0) {
            // An empty plan would deadlock the server: when nothing
            // else was scheduled, the first prefiller still gets its
            // full chunk; otherwise it waits for the next wave.
            if (!out.entries.empty())
                continue;
            chunk = std::min<long>(prefillChunk_,
                                   candidate.promptRemaining);
        }
        BatchPlanEntry entry;
        entry.member = candidate.member;
        entry.kind = BatchWorkKind::PrefillChunk;
        entry.tokens = static_cast<int>(chunk);
        out.entries.push_back(entry);
        out.plannedTokens += chunk;
        budget -= chunk;
        if (budget <= 0)
            break;
    }
    return out;
}

} // namespace fasttts
