#include "kv/prefix_index.h"

#include <algorithm>
#include <cassert>

#include "kv/kv_session.h"
#include "util/fault_injector.h"

namespace fasttts
{

PrefixIndex::PrefixIndex(double budget_bytes, double kv_bytes_per_token)
    : budgetBytes_(std::max(0.0, budget_bytes)),
      kvBytesPerToken_(std::max(1.0, kv_bytes_per_token))
{
    Node root;
    root.refCount = 1; // Permanent self-reference: never evictable.
    nodes_.push_back(root);
}

PrefixIndex::~PrefixIndex()
{
    if (ledger_ != nullptr && ledgerCharged_ > 0)
        ledger_->release(ledgerCharged_);
}

void
PrefixIndex::attachLedger(KvBudgetLedger *ledger)
{
    assert(residentTokens_ == 0 && ledgerCharged_ == 0);
    ledger_ = ledger;
}

double
PrefixIndex::residentBytes() const
{
    return static_cast<double>(residentTokens_) * kvBytesPerToken_;
}

int
PrefixIndex::refCount(NodeId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= nodes_.size())
        return 0;
    return node(id).refCount;
}

PrefixIndex::NodeId
PrefixIndex::findChild(NodeId parent, int32_t token) const
{
    const auto &kids = node(parent).children;
    const auto it = std::lower_bound(
        kids.begin(), kids.end(), token,
        [](const std::pair<int32_t, NodeId> &e, int32_t t) {
            return e.first < t;
        });
    if (it != kids.end() && it->first == token)
        return it->second;
    return kInvalid;
}

void
PrefixIndex::linkChild(NodeId parent, NodeId child)
{
    auto &kids = node(parent).children;
    const int32_t token = node(child).tokens.front();
    const auto it = std::lower_bound(
        kids.begin(), kids.end(), token,
        [](const std::pair<int32_t, NodeId> &e, int32_t t) {
            return e.first < t;
        });
    kids.insert(it, {token, child});
    node(child).parent = parent;
}

void
PrefixIndex::unlinkChild(NodeId parent, NodeId child)
{
    auto &kids = node(parent).children;
    for (size_t i = 0; i < kids.size(); ++i) {
        if (kids[i].second == child) {
            kids.erase(kids.begin() + static_cast<long>(i));
            return;
        }
    }
    assert(false && "child not linked under parent");
}

PrefixIndex::NodeId
PrefixIndex::newNode()
{
    if (!freeList_.empty()) {
        const NodeId id = freeList_.back();
        freeList_.pop_back();
        node(id) = Node();
        return id;
    }
    nodes_.emplace_back();
    return static_cast<NodeId>(nodes_.size() - 1);
}

PrefixIndex::NodeId
PrefixIndex::splitNode(NodeId child, int keep)
{
    assert(keep > 0
           && keep < static_cast<int>(node(child).tokens.size()));
    const NodeId parent = node(child).parent;
    const NodeId prefix = newNode();
    Node &c = node(child);
    Node &p = node(prefix);
    p.tokens.assign(c.tokens.begin(), c.tokens.begin() + keep);
    c.tokens.erase(c.tokens.begin(), c.tokens.begin() + keep);
    // Every pinned path through `child` also passes through the new
    // prefix node, so it inherits the refcount — outstanding release()
    // walks stay balanced.
    p.refCount = c.refCount;
    p.lastUse = c.lastUse;
    unlinkChild(parent, child);
    linkChild(parent, prefix);
    linkChild(prefix, child);
    ++liveNodes_;
    ++stats_.splits;
    // No byte change: the same tokens are resident, just re-noded.
    return prefix;
}

bool
PrefixIndex::evictOne()
{
    NodeId victim = kInvalid;
    for (NodeId id = 1; id < static_cast<NodeId>(nodes_.size()); ++id) {
        const Node &n = node(id);
        if (n.erased || n.refCount != 0 || !n.children.empty())
            continue;
        if (victim == kInvalid || n.lastUse < node(victim).lastUse
            || (n.lastUse == node(victim).lastUse && id < victim))
            victim = id;
    }
    if (victim == kInvalid)
        return false;
    Node &v = node(victim);
    const long tokens = static_cast<long>(v.tokens.size());
    unlinkChild(v.parent, victim);
    const double bytes =
        static_cast<double>(tokens) * kvBytesPerToken_;
    if (ledger_ != nullptr) {
        ledger_->release(bytes);
        ledgerCharged_ -= bytes;
    }
    residentTokens_ -= tokens;
    v.erased = true;
    v.tokens.clear();
    v.tokens.shrink_to_fit();
    freeList_.push_back(victim);
    --liveNodes_;
    ++stats_.evictions;
    stats_.evictedTokens += static_cast<uint64_t>(tokens);
    return true;
}

int
PrefixIndex::reserveTokens(int want)
{
    if (want <= 0)
        return 0;
    const auto affordable = [this]() {
        double free_bytes = budgetBytes_ - residentBytes();
        if (ledger_ != nullptr)
            free_bytes = std::min(free_bytes, ledger_->freeBytes());
        return static_cast<int>(
            std::max(0.0, free_bytes / kvBytesPerToken_));
    };
    while (affordable() < want && evictOne()) {
    }
    const int grant = std::min(want, affordable());
    if (grant <= 0)
        return 0;
    const double bytes = static_cast<double>(grant) * kvBytesPerToken_;
    if (ledger_ != nullptr) {
        if (!ledger_->charge(bytes))
            return 0; // affordable() capped by freeBytes; defensive.
        ledgerCharged_ += bytes;
    }
    residentTokens_ += grant;
    return grant;
}

PrefixIndex::Match
PrefixIndex::acquire(const std::vector<int32_t> &tokens)
{
    ++tick_;
    ++stats_.lookups;
    NodeId cur = kRoot;
    size_t pos = 0;
    // An injected corruption fault reports a miss without walking:
    // the caller pins the root (released as usual) and re-prefills
    // the whole prompt, exactly like a genuinely cold cache.
    const bool corrupted =
        faults_ != nullptr
        && faults_->shouldFault(FaultSite::kPrefixAcquire);
    while (!corrupted && pos < tokens.size()) {
        const NodeId next = findChild(cur, tokens[pos]);
        if (next == kInvalid)
            break;
        const Node &n = node(next);
        // Full-node matches only: a partially matched edge cannot be
        // mounted (the request would still have to recompute its
        // tail), so the walk stops at the last whole node.
        if (n.tokens.size() > tokens.size() - pos)
            break;
        if (!std::equal(n.tokens.begin(), n.tokens.end(),
                        tokens.begin() + static_cast<long>(pos)))
            break;
        pos += n.tokens.size();
        cur = next;
    }
    for (NodeId id = cur; id != kInvalid; id = node(id).parent) {
        ++node(id).refCount;
        node(id).lastUse = tick_;
    }
    Match out;
    out.matchedTokens = static_cast<int>(pos);
    out.node = cur;
    if (pos > 0) {
        ++stats_.hits;
        stats_.hitTokens += pos;
    }
    return out;
}

void
PrefixIndex::release(NodeId id)
{
    if (id == kInvalid)
        return;
    assert(static_cast<size_t>(id) < nodes_.size()
           && !node(id).erased);
    for (NodeId cur = id; cur != kInvalid; cur = node(cur).parent) {
        assert(node(cur).refCount > 0);
        --node(cur).refCount;
    }
}

void
PrefixIndex::insert(const std::vector<int32_t> &tokens)
{
    ++tick_;
    NodeId cur = kRoot;
    size_t pos = 0;
    while (pos < tokens.size()) {
        const NodeId next = findChild(cur, tokens[pos]);
        if (next == kInvalid) {
            // Novel suffix: one new leaf holds whatever the budget
            // accepts; the rest is rejected (graceful truncation).
            const int want =
                static_cast<int>(tokens.size() - pos);
            // Walk-path guard: `cur` may itself be a refcount-zero
            // leaf, which the LRU sweep inside reserveTokens() must
            // not evict out from under the link below.
            ++node(cur).refCount;
            const int grant = reserveTokens(want);
            --node(cur).refCount;
            stats_.rejectedTokens +=
                static_cast<uint64_t>(want - grant);
            if (grant <= 0)
                return;
            const NodeId leaf = newNode();
            node(leaf).tokens.assign(
                tokens.begin() + static_cast<long>(pos),
                tokens.begin() + static_cast<long>(pos) + grant);
            node(leaf).lastUse = tick_;
            linkChild(cur, leaf);
            ++liveNodes_;
            stats_.insertedTokens += static_cast<uint64_t>(grant);
            return;
        }
        Node &n = node(next);
        const size_t limit =
            std::min(n.tokens.size(), tokens.size() - pos);
        size_t common = 0;
        while (common < limit
               && n.tokens[common]
                   == tokens[pos + common])
            ++common;
        if (common == n.tokens.size()) {
            // Whole edge matched: descend.
            n.lastUse = tick_;
            pos += common;
            cur = next;
            continue;
        }
        // Partial edge match: split so the shared tokens become a
        // node boundary, then continue from the new prefix node (the
        // next round either descends into a novel-suffix leaf or
        // terminates when the insert ends exactly at the boundary).
        cur = splitNode(next, static_cast<int>(common));
        node(cur).lastUse = tick_;
        pos += common;
    }
}

} // namespace fasttts
