#!/usr/bin/env bash
# Run the FastTTS figure benchmark suite and emit BENCH_<fig>.json files.
#
# Usage:
#   scripts/run_benchmarks.sh [--quick] [--jobs N] [--build-dir DIR]
#                             [--out-dir DIR] [name...]
#
# Configures and builds the bench_runner target if the build directory
# does not contain it yet, then runs the requested benchmarks (all 17
# by default). --quick shrinks each benchmark so the whole suite
# finishes in seconds; --jobs N runs benchmarks on N threads
# (bit-identical output to --jobs 1); extra positional names select a
# subset (see bench_runner --list). Every run also writes
# BENCH_harness.json with per-benchmark wall-clock timings.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
out_dir="${repo_root}/bench-results"
runner_args=()

while [[ $# -gt 0 ]]; do
    case "$1" in
    --quick)
        runner_args+=(--quick)
        shift
        ;;
    --jobs)
        runner_args+=(--jobs "$2")
        shift 2
        ;;
    --build-dir)
        build_dir="$2"
        shift 2
        ;;
    --out-dir)
        out_dir="$2"
        shift 2
        ;;
    --help | -h)
        sed -n '2,14p' "${BASH_SOURCE[0]}" | sed 's/^# \{0,1\}//'
        exit 0
        ;;
    *)
        runner_args+=("$1")
        shift
        ;;
    esac
done

runner="${build_dir}/bench/bench_runner"
if [[ ! -x ${runner} ]]; then
    echo "-- bench_runner not built yet; building in ${build_dir}" >&2
    cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
    cmake --build "${build_dir}" --target bench_runner -j >/dev/null
fi

mkdir -p "${out_dir}"
"${runner}" --out-dir "${out_dir}" "${runner_args[@]+"${runner_args[@]}"}"
echo "-- benchmark results in ${out_dir}"
