/**
 * @file
 * Domain example: choosing a TTS method for an accuracy/latency
 * target.
 *
 * Sweeps all five search methods (Fig. 2) under FastTTS serving on a
 * mixed AIME workload, printing the accuracy/latency/token-cost
 * trade-off — the decision a practitioner deploying edge reasoning
 * actually faces (paper Sec. 3.1).
 *
 *   ./build/examples/example_method_comparison [--problems N] [--help]
 */

#include <iostream>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace fasttts;

    EngineArgs defaults;
    defaults.dataset = "AMC";
    defaults.numBeams = 64;
    defaults.numProblems = 10;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "TTS method comparison under FastTTS serving (every registered "
        "algorithm is swept)");

    std::cout << "TTS method comparison under FastTTS serving: "
              << args.dataset << ", 1.5B+1.5B, n=" << args.numBeams
              << "\n";

    Table table("Accuracy / latency / token cost by search method");
    table.setHeader({"method", "top-1 %", "pass@n %", "latency s",
                     "goodput tok/s", "tokens/request"});
    // Sweep whatever is registered — a custom algorithm registered
    // before this loop shows up automatically.
    for (const std::string &method : algorithmRegistry().list()) {
        EngineArgs cell = args;
        cell.algorithm = method;
        ServingSystem system =
            ServingSystem::create(cell.toServingOptions().value())
                .value();
        const BatchResult out = system.serveProblems(args.numProblems);
        double tokens = 0;
        for (const auto &r : out.requests)
            tokens += static_cast<double>(r.generatedTokens);
        tokens /= out.requests.empty() ? 1 : out.requests.size();
        table.addRow({method, formatDouble(out.top1Accuracy, 1),
                      formatDouble(out.passAtNAccuracy, 1),
                      formatDouble(out.meanLatency, 1),
                      formatDouble(out.meanGoodput, 1),
                      formatDouble(tokens, 0)});
    }
    table.setCaption("Verifier-guided tree methods trade latency for "
                     "accuracy over Best-of-N (paper Fig. 3); FastTTS "
                     "narrows the latency cost.");
    table.print(std::cout);
    return 0;
}
