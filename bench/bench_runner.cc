/**
 * @file
 * Machine-readable benchmark harness.
 *
 * Each paper-figure bench binary prints a human-oriented ASCII table;
 * this runner executes the same serving configurations programmatically
 * and writes one BENCH_<name>.json per benchmark with the numbers every
 * optimisation PR is judged against: throughput (Precise Goodput and
 * wall-clock tokens/s), end-to-end latency percentiles, KV-cache
 * utilization, and accuracy — for the vLLM-style baseline and for
 * FastTTS, plus the derived speedups.
 *
 * Usage:
 *   bench_runner --list                 # enumerate benchmark names
 *   bench_runner [--quick] [--jobs N] [--out-dir D] [--seed S] [name...]
 *
 * --quick shrinks beam widths and problem counts so the full suite
 * finishes in seconds (used by CI and scripts/run_benchmarks.sh).
 *
 * --jobs N runs the selected benchmarks on a pool of N threads. Every
 * benchmark is deterministic and self-contained (its own ServingSystem,
 * seeded RNGs), so the emitted BENCH_<name>.json bytes are identical
 * for any N; files and stdout lines are still written in registration
 * order by the main thread after all runs finish.
 *
 * The harness also times itself: BENCH_harness.json (schema
 * fasttts-harness-v1) records per-benchmark wall_ms and simulated
 * tokens per wall-second, so optimisation PRs are judged against a
 * real harness-performance trajectory (see scripts/compare_harness.py).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine_args.h"
#include "core/online_server.h"
#include "core/serving.h"
#include "metrics/request_metrics.h"
#include "online_calibration.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"

namespace fasttts
{
namespace
{

/** One registered figure benchmark: name + serving configuration. */
struct BenchSpec
{
    const char *name;
    const char *description;
    const char *dataset;
    const char *device;
    const char *algorithm;
    const char *models; //!< Model-config registry label.
    int numBeams;    //!< Search width in full mode.
    int numProblems; //!< Problems served in full mode.
};

/**
 * The figure suite. Names match the bench_<name> binaries; the configs
 * mirror each figure's headline setting (scaled to finish quickly —
 * the per-figure binaries remain the faithful reproductions).
 */
const BenchSpec kBenchmarks[] = {
    {"fig01_frontier", "Latency vs. accuracy frontier (Fig. 1b)", "AIME",
     "RTX4090", "beam_search", "1.5B+1.5B", 64, 6},
    {"fig03_patterns", "TTS workload patterns (Fig. 3)", "MATH500", "RTX4090",
     "beam_search", "1.5B+1.5B", 64, 6},
    {"fig04_utilization", "GPU utilization timeline (Fig. 4)", "AIME",
     "RTX4090", "beam_search", "1.5B+1.5B", 64, 4},
    {"fig05_prefix_sharing", "Prefix sharing working set (Fig. 5)", "AIME",
     "RTX4090", "beam_search", "1.5B+1.5B", 64, 4},
    {"fig06_kv_throughput", "KV pressure vs. throughput (Fig. 6)", "AIME",
     "RTX4090", "beam_search", "1.5B+1.5B", 64, 6},
    {"fig10_allocation", "Asymmetric memory allocation (Fig. 10)", "AIME",
     "RTX4090", "beam_search", "1.5B+7B", 48, 4},
    {"fig11_variants", "Search method variants (Fig. 11)", "AIME", "RTX4090",
     "dvts", "1.5B+1.5B", 64, 6},
    {"fig12_goodput", "Precise Goodput comparison (Fig. 12)", "MATH500",
     "RTX4090", "beam_search", "1.5B+1.5B", 96, 6},
    {"fig13_latency", "Latency breakdown (Fig. 13)", "AMC", "RTX4090",
     "beam_search", "1.5B+1.5B", 64, 6},
    {"fig14_accuracy", "Accuracy preservation (Fig. 14)", "MATH500",
     "RTX4090", "beam_search", "1.5B+1.5B", 96, 8},
    {"fig15_hardware", "Hardware sensitivity (Fig. 15)", "AIME", "RTX3070Ti",
     "beam_search", "1.5B+1.5B", 48, 4},
    {"fig16_ablation", "P/M/S ablation (Fig. 16)", "AIME", "RTX4090",
     "beam_search", "1.5B+1.5B", 64, 6},
    {"fig17_speculative", "Speculative beam extension (Fig. 17)", "AMC",
     "RTX4090", "beam_search", "1.5B+1.5B", 64, 6},
    {"fig18_scheduling", "Prefix-aware scheduling (Fig. 18)", "AIME",
     "RTX4090", "beam_search", "1.5B+1.5B", 96, 4},
    {"micro", "Engine micro cost sanity run", "AMC", "RTX4090", "beam_search",
     "1.5B+1.5B", 16, 2},
    {"online_responsiveness", "Online serving responsiveness", "AMC",
     "RTX4090", "beam_search", "1.5B+1.5B", 32, 6},
};

/** Metrics of one (benchmark, engine-variant) measurement. */
Json
measureVariant(const BenchSpec &spec, bool fast, int num_beams,
               int num_problems, uint64_t seed)
{
    // The registered configuration goes through the string-friendly
    // EngineArgs front door, so every name is registry-validated.
    EngineArgs args;
    args.device = spec.device;
    args.dataset = spec.dataset;
    args.algorithm = spec.algorithm;
    args.models = spec.models;
    args.mode = fast ? "fasttts" : "baseline";
    args.numBeams = num_beams;
    args.seed = seed;
    ServingOptions opts = args.toServingOptions().value();
    if (opts.deviceName != "RTX4090") {
        // On 8-12 GB cards the model weights leave little headroom:
        // grant the run the full device and a slimmer reserve, and let
        // FastTTS offload, as bench_fig15_hardware (and the paper's
        // constrained-hardware study) do.
        opts.models.memoryFraction = 0.95;
        opts.config.reservedBytes = 0.5 * GiB;
        opts.config.offloadEnabled = fast;
    }

    ServingSystem system = ServingSystem::create(opts).value();
    const BatchResult out = system.serveProblems(num_problems);

    std::vector<double> latencies;
    double wallSeconds = 0;
    long verifiedTokens = 0;
    long generatedTokens = 0;
    long wastedSpecTokens = 0;
    KvStats kv;
    for (const RequestResult &request : out.requests) {
        latencies.push_back(request.completionTime);
        wallSeconds += request.completionTime;
        verifiedTokens += request.verifiedTokens;
        generatedTokens += request.generatedTokens;
        wastedSpecTokens += request.wastedSpecTokens;
        kv.evictions += request.kvStats.evictions;
        kv.evictedTokens += request.kvStats.evictedTokens;
        kv.recomputedTokens += request.kvStats.recomputedTokens;
        kv.hitTokens += request.kvStats.hitTokens;
        kv.missTokens += request.kvStats.missTokens;
    }

    Json throughput = Json::object();
    throughput.set("precise_goodput_tok_s", out.meanGoodput);
    throughput.set("wall_tok_s",
                   wallSeconds > 0
                       ? static_cast<double>(verifiedTokens) / wallSeconds
                       : 0.0);
    throughput.set("verified_tokens", verifiedTokens);
    throughput.set("generated_tokens", generatedTokens);
    throughput.set("wasted_speculative_tokens", wastedSpecTokens);

    Json latency = Json::object();
    latency.set("mean", out.meanLatency);
    latency.set("p50", sampleQuantile(latencies, 0.50));
    latency.set("p90", sampleQuantile(latencies, 0.90));
    latency.set("p99", sampleQuantile(latencies, 0.99));
    latency.set("max", sampleQuantile(latencies, 1.0));
    latency.set("generator_mean", out.meanGeneratorTime);
    latency.set("verifier_mean", out.meanVerifierTime);

    const double touched =
        static_cast<double>(kv.hitTokens) + static_cast<double>(kv.missTokens);
    Json kvJson = Json::object();
    kvJson.set("hit_rate",
               touched > 0 ? static_cast<double>(kv.hitTokens) / touched
                           : 0.0);
    kvJson.set("evictions", kv.evictions);
    kvJson.set("evicted_tokens", kv.evictedTokens);
    kvJson.set("recomputed_tokens", kv.recomputedTokens);
    kvJson.set("budget_gib", toGiB(system.engine().kvBudgetBytes()));

    Json accuracy = Json::object();
    accuracy.set("top1", out.top1Accuracy);
    accuracy.set("pass_at_1", out.passAt1);
    accuracy.set("pass_at_n", out.passAtNAccuracy);

    Json variant = Json::object();
    variant.set("throughput", std::move(throughput));
    variant.set("latency_s", std::move(latency));
    variant.set("kv", std::move(kvJson));
    variant.set("accuracy", std::move(accuracy));
    return variant;
}

Json
runBenchmark(const BenchSpec &spec, bool quick, uint64_t seed)
{
    Json doc = Json::object();
    doc.set("schema", "fasttts-bench-v1");
    doc.set("benchmark", spec.name);
    doc.set("description", spec.description);
    doc.set("quick", quick);

    // Quick mode shrinks each run; computed once so the emitted config
    // always matches what was actually measured.
    const int numBeams = quick ? std::min(spec.numBeams, 16) : spec.numBeams;
    const int numProblems =
        quick ? std::min(spec.numProblems, 2) : spec.numProblems;

    Json config = Json::object();
    config.set("dataset", spec.dataset);
    config.set("device", spec.device);
    config.set("algorithm", spec.algorithm);
    config.set("models", spec.models);
    config.set("num_beams", numBeams);
    config.set("num_problems", numProblems);
    config.set("seed", seed);
    doc.set("config", std::move(config));

    Json variants = Json::object();
    variants.set("baseline",
                 measureVariant(spec, false, numBeams, numProblems, seed));
    variants.set("fasttts",
                 measureVariant(spec, true, numBeams, numProblems, seed));

    const double baseGoodput =
        variants["baseline"]["throughput"]["precise_goodput_tok_s"].asNumber();
    const double fastGoodput =
        variants["fasttts"]["throughput"]["precise_goodput_tok_s"].asNumber();
    const double baseLatency =
        variants["baseline"]["latency_s"]["mean"].asNumber();
    const double fastLatency =
        variants["fasttts"]["latency_s"]["mean"].asNumber();

    Json speedup = Json::object();
    speedup.set("goodput", baseGoodput > 0 ? fastGoodput / baseGoodput : 0.0);
    speedup.set("latency", fastLatency > 0 ? baseLatency / fastLatency : 0.0);

    doc.set("variants", std::move(variants));
    doc.set("speedup", std::move(speedup));
    return doc;
}

/**
 * The admission-policy benchmark is not BenchSpec-shaped: it measures
 * the online queueing front-end (OnlineServer) across queue policies
 * on one identical heavy-tailed arrival trace, instead of batch
 * serving across engine variants.
 */
constexpr const char *kOnlineSchedulingName = "online_scheduling";

Json
runOnlineSchedulingBenchmark(bool quick, uint64_t seed)
{
    EngineArgs args;
    args.dataset = "AMC";
    args.numBeams = quick ? 8 : 32;
    args.seed = seed;
    const int numRequests = quick ? 8 : 32;
    const int maxInflight = 4;
    const std::string arrivalMode = "bursty";
    ServingOptions opts = args.toServingOptions().value();

    // Probe-calibrated overload trace with tiered priorities/SLOs —
    // the same recipe as bench_fig18_scheduling's bottom table, so
    // the JSON mirrors the figure (bench/online_calibration.h).
    const CalibratedOnlineTrace calibrated =
        calibrateOnlineTrace(opts, arrivalMode, numRequests, seed)
            .value();

    Json doc = Json::object();
    doc.set("schema", "fasttts-bench-v1");
    doc.set("benchmark", kOnlineSchedulingName);
    doc.set("description",
            "Online admission-policy sweep (SLO attainment)");
    doc.set("quick", quick);

    Json config = Json::object();
    config.set("dataset", args.dataset);
    config.set("device", args.device);
    config.set("models", args.models);
    config.set("num_beams", args.numBeams);
    config.set("requests", numRequests);
    config.set("max_inflight", maxInflight);
    config.set("arrivals", arrivalMode);
    config.set("arrival_rate_per_s", calibrated.rate);
    config.set("slo_s", calibrated.slo);
    config.set("seed", seed);
    doc.set("config", std::move(config));

    Json policies = Json::object();
    for (const std::string &name :
         queuePolicyRegistry().list()) {
        OnlineServerOptions online;
        online.policy = name;
        online.maxInflight = maxInflight;
        online.slo = calibrated.slo;
        OnlineServer server =
            OnlineServer::create(opts, online).value();
        const OnlineTraceResult out =
            server.serveRequests(calibrated.requests).value();

        Json latency = Json::object();
        latency.set("mean", out.meanLatency);
        latency.set("p50", out.p50Latency);
        latency.set("p95", out.p95Latency);
        latency.set("p99", out.p99Latency);

        Json policy = Json::object();
        policy.set("latency_s", std::move(latency));
        policy.set("mean_queue_delay_s", out.meanQueueDelay);
        policy.set("slo_attainment", out.sloAttainment);
        policy.set("deadline_misses", out.deadlineMisses);
        policy.set("utilization", out.utilization);
        policy.set("makespan_s", out.makespan);
        policy.set("completed",
                   static_cast<long>(out.records.size()));
        policies.set(name, std::move(policy));
    }
    doc.set("policies", std::move(policies));
    return doc;
}

/**
 * The preemption benchmark sweeps the shared KV budget and compares
 * non-preemptive time slicing against policy-driven preemption
 * (preemptive EDF with doomed-request shedding) on one identical
 * bursty overload trace: shed rate, recompute volume and SLO
 * attainment versus memory — the honest-cost serving study the
 * shared-engine refactor enables.
 */
constexpr const char *kOnlinePreemptionName = "online_preemption";

Json
measurePreemptionRun(const ServingOptions &opts,
                     const CalibratedOnlineTrace &calibrated,
                     const std::string &preempt, double kv_budget_gib,
                     int max_inflight)
{
    OnlineServerOptions online;
    online.policy = "edf";
    online.maxInflight = max_inflight;
    online.slo = calibrated.slo;
    online.preempt = preempt;
    online.kvBudgetGiB = kv_budget_gib;
    online.shedDoomed = true;
    OnlineServer server = OnlineServer::create(opts, online).value();
    const OnlineTraceResult out =
        server.serveRequests(calibrated.requests).value();

    Json latency = Json::object();
    latency.set("mean", out.meanLatency);
    latency.set("p50", out.p50Latency);
    latency.set("p95", out.p95Latency);
    latency.set("p99", out.p99Latency);

    const int total = static_cast<int>(out.records.size())
        + out.shedRequests + out.cancelled;
    Json run = Json::object();
    run.set("latency_s", std::move(latency));
    run.set("slo_attainment", out.sloAttainment);
    run.set("deadline_misses", out.deadlineMisses);
    run.set("completed", static_cast<long>(out.records.size()));
    run.set("shed_requests", out.shedRequests);
    run.set("shed_rate",
            total > 0 ? static_cast<double>(out.shedRequests) / total
                      : 0.0);
    run.set("context_switches", out.contextSwitches);
    run.set("preemptions", out.preemptions);
    run.set("recomputed_tokens", out.recomputedTokens);
    run.set("preempt_evicted_tokens", out.preemptEvictedTokens);
    run.set("kv_peak_gib", toGiB(server.kvLedger().peakUsedBytes()));
    run.set("utilization", out.utilization);
    return run;
}

Json
runOnlinePreemptionBenchmark(bool quick, uint64_t seed)
{
    EngineArgs args;
    args.dataset = "AMC";
    args.numBeams = quick ? 8 : 16;
    args.seed = seed;
    const int numRequests = quick ? 10 : 24;
    const int maxInflight = 4;
    ServingOptions opts = args.toServingOptions().value();

    // One identical probe-calibrated bursty overload trace with
    // tiered SLOs for every (budget, preemption-mode) cell.
    const CalibratedOnlineTrace calibrated =
        calibrateOnlineTrace(opts, "bursty", numRequests, seed)
            .value();

    Json doc = Json::object();
    doc.set("schema", "fasttts-bench-v1");
    doc.set("benchmark", kOnlinePreemptionName);
    doc.set("description",
            "Preemptive vs sliced serving under a shared KV budget");
    doc.set("quick", quick);

    // Budget tiers relative to the engine's device budget; 0 is the
    // legacy accounting (every in-flight slot a full budget).
    const double engine_budget_gib = [&] {
        ServingSystem probe = ServingSystem::create(opts).value();
        return probe.engine().kvBudgetBytes() / GiB;
    }();

    Json config = Json::object();
    config.set("dataset", args.dataset);
    config.set("device", args.device);
    config.set("models", args.models);
    config.set("num_beams", args.numBeams);
    config.set("requests", numRequests);
    config.set("max_inflight", maxInflight);
    config.set("policy", "edf");
    config.set("arrivals", "bursty");
    config.set("arrival_rate_per_s", calibrated.rate);
    config.set("slo_s", calibrated.slo);
    config.set("engine_kv_budget_gib", engine_budget_gib);
    config.set("shed_doomed", true);
    config.set("seed", seed);
    doc.set("config", std::move(config));

    struct Tier
    {
        const char *label;
        double fraction; //!< Of the engine budget; 0 = legacy.
    };
    const Tier tiers[] = {
        {"legacy", 0.0}, {"1.00x", 1.0}, {"0.50x", 0.5}, {"0.25x", 0.25}};

    Json budgets = Json::object();
    for (const Tier &tier : tiers) {
        const double budget_gib = tier.fraction * engine_budget_gib;
        Json cell = Json::object();
        cell.set("kv_budget_gib", budget_gib);
        for (const char *preempt : {"slice", "policy"}) {
            cell.set(preempt,
                     measurePreemptionRun(opts, calibrated, preempt,
                                          budget_gib, maxInflight));
        }
        budgets.set(tier.label, std::move(cell));
    }
    doc.set("budgets", std::move(budgets));
    return doc;
}

/**
 * The continuous-batching benchmark pits co-scheduled decode
 * (--batching continuous) against round-robin time slicing
 * (--preempt slice) on one identical probe-calibrated bursty overload
 * trace at equal shared KV budgets: trace goodput, latency
 * percentiles, SLO attainment and batch occupancy — the serving study
 * behind the unified BatchPlan API.
 */
constexpr const char *kOnlineBatchingName = "online_batching";

Json
measureBatchingRun(const ServingOptions &opts,
                   const CalibratedOnlineTrace &calibrated,
                   const std::string &batching, double kv_budget_gib,
                   int max_inflight, int max_batched_tokens)
{
    OnlineServerOptions online;
    online.policy = "edf";
    online.maxInflight = max_inflight;
    online.slo = calibrated.slo;
    online.preempt = "slice"; // Ignored under continuous batching.
    online.kvBudgetGiB = kv_budget_gib;
    online.shedDoomed = true;
    online.batching = batching;
    online.maxBatchedTokens = max_batched_tokens;
    OnlineServer server = OnlineServer::create(opts, online).value();
    const OnlineTraceResult out =
        server.serveRequests(calibrated.requests).value();

    Json latency = Json::object();
    latency.set("mean", out.meanLatency);
    latency.set("p50", out.p50Latency);
    latency.set("p95", out.p95Latency);
    latency.set("p99", out.p99Latency);

    Json run = Json::object();
    run.set("latency_s", std::move(latency));
    run.set("goodput_tokens_per_s",
            out.makespan > 0
                ? static_cast<double>(out.verifiedTokens) / out.makespan
                : 0.0);
    run.set("verified_tokens", out.verifiedTokens);
    run.set("makespan_s", out.makespan);
    run.set("slo_attainment", out.sloAttainment);
    run.set("deadline_misses", out.deadlineMisses);
    run.set("completed", static_cast<long>(out.records.size()));
    run.set("shed_requests", out.shedRequests);
    run.set("batch_occupancy", out.batchOccupancy);
    run.set("context_switches", out.contextSwitches);
    run.set("recomputed_tokens", out.recomputedTokens);
    run.set("kv_peak_gib", toGiB(server.kvLedger().peakUsedBytes()));
    run.set("utilization", out.utilization);
    return run;
}

Json
runOnlineBatchingBenchmark(bool quick, uint64_t seed)
{
    EngineArgs args;
    args.dataset = "AMC";
    args.numBeams = quick ? 8 : 16;
    args.seed = seed;
    const int numRequests = quick ? 10 : 24;
    const int maxInflight = 4;
    ServingOptions opts = args.toServingOptions().value();

    // One identical probe-calibrated bursty overload trace with
    // tiered SLOs for every (budget, batching-mode) cell.
    const CalibratedOnlineTrace calibrated =
        calibrateOnlineTrace(opts, "bursty", numRequests, seed)
            .value();

    Json doc = Json::object();
    doc.set("schema", "fasttts-bench-v1");
    doc.set("benchmark", kOnlineBatchingName);
    doc.set("description",
            "Continuous batching vs time-sliced serving on one "
            "bursty trace");
    doc.set("quick", quick);

    double engine_budget_gib = 0;
    int maxBatchedTokens = 0;
    {
        ServingSystem probe = ServingSystem::create(opts).value();
        engine_budget_gib = probe.engine().kvBudgetBytes() / GiB;
        // Size the wave budget to fuse every in-flight request's
        // decode work (README's sizing rule of thumb), so occupancy
        // is limited by arrivals and memory, not the token knob.
        maxBatchedTokens = maxInflight * args.numBeams
            * std::max(1, static_cast<int>(
                              probe.engine().expectedStepTokens() + 1));
    }

    Json config = Json::object();
    config.set("dataset", args.dataset);
    config.set("device", args.device);
    config.set("models", args.models);
    config.set("num_beams", args.numBeams);
    config.set("requests", numRequests);
    config.set("max_inflight", maxInflight);
    config.set("policy", "edf");
    config.set("arrivals", "bursty");
    config.set("arrival_rate_per_s", calibrated.rate);
    config.set("slo_s", calibrated.slo);
    config.set("engine_kv_budget_gib", engine_budget_gib);
    config.set("max_batched_tokens", maxBatchedTokens);
    config.set("prefill_chunk", OnlineServerOptions().prefillChunk);
    config.set("shed_doomed", true);
    config.set("seed", seed);
    doc.set("config", std::move(config));

    struct Tier
    {
        const char *label;
        double fraction; //!< Of the engine budget.
    };
    const Tier tiers[] = {{"1.00x", 1.0}, {"0.50x", 0.5}};

    Json budgets = Json::object();
    for (const Tier &tier : tiers) {
        const double budget_gib = tier.fraction * engine_budget_gib;
        Json cell = Json::object();
        cell.set("kv_budget_gib", budget_gib);
        cell.set("sliced",
                 measureBatchingRun(opts, calibrated, "off", budget_gib,
                                    maxInflight, maxBatchedTokens));
        cell.set("continuous",
                 measureBatchingRun(opts, calibrated, "continuous",
                                    budget_gib, maxInflight,
                                    maxBatchedTokens));
        budgets.set(tier.label, std::move(cell));
    }
    doc.set("budgets", std::move(budgets));
    return doc;
}

/**
 * The prefix-reuse benchmark serves one multi-turn session trace with
 * zipfian session popularity twice — --prefix-cache off vs on — and
 * reports hit rate, saved recompute tokens and goodput. Turn k of a
 * session prefix-extends turn k-1's prompt (position-keyed token
 * identities), the cross-request sharing shape the global radix index
 * (kv/prefix_index.h) exists for.
 */
constexpr const char *kOnlinePrefixReuseName = "online_prefix_reuse";

Json
measurePrefixReuseRun(const ServingOptions &opts,
                      const std::vector<OnlineRequest> &requests,
                      long total_prompt_tokens,
                      const std::string &prefix_cache,
                      double kv_budget_gib, int max_inflight)
{
    OnlineServerOptions online;
    online.policy = "fifo";
    online.maxInflight = max_inflight;
    online.kvBudgetGiB = kv_budget_gib;
    online.batching = "continuous";
    online.prefixCache = prefix_cache;
    OnlineServer server = OnlineServer::create(opts, online).value();
    const OnlineTraceResult out =
        server.serveRequests(requests).value();

    Json latency = Json::object();
    latency.set("mean", out.meanLatency);
    latency.set("p50", out.p50Latency);
    latency.set("p95", out.p95Latency);
    latency.set("p99", out.p99Latency);

    Json run = Json::object();
    run.set("latency_s", std::move(latency));
    run.set("goodput_tokens_per_s",
            out.makespan > 0
                ? static_cast<double>(out.verifiedTokens) / out.makespan
                : 0.0);
    run.set("verified_tokens", out.verifiedTokens);
    run.set("makespan_s", out.makespan);
    run.set("completed", static_cast<long>(out.records.size()));
    run.set("batch_occupancy", out.batchOccupancy);
    run.set("recomputed_tokens", out.recomputedTokens);
    run.set("prompt_tokens_total", total_prompt_tokens);
    run.set("prefix_hit_tokens", out.prefixHitTokens);
    run.set("saved_recompute_fraction",
            total_prompt_tokens > 0
                ? static_cast<double>(out.prefixHitTokens)
                    / static_cast<double>(total_prompt_tokens)
                : 0.0);
    run.set("kv_peak_gib", toGiB(server.kvLedger().peakUsedBytes()));
    run.set("utilization", out.utilization);
    return run;
}

Json
runOnlinePrefixReuseBenchmark(bool quick, uint64_t seed)
{
    EngineArgs args;
    args.dataset = "AMC";
    args.numBeams = quick ? 8 : 16;
    args.seed = seed;
    const int numRequests = quick ? 10 : 24;
    const int maxInflight = 4;
    const int numSessions = quick ? 3 : 6;
    const int basePromptTokens = 96;
    const int turnGrowthTokens = 48;
    const double arrivalRate = 0.08; // Mostly-serialised sessions.
    ServingOptions opts = args.toServingOptions().value();

    // Zipfian session popularity: most requests are follow-up turns
    // of a few hot sessions (the multi-turn chat shape). Turn k of
    // session s carries position-keyed token identities, so its
    // prompt exactly prefix-extends turn k-1's.
    std::vector<double> weights;
    weights.reserve(static_cast<size_t>(numSessions));
    for (int s = 0; s < numSessions; ++s)
        weights.push_back(1.0 / static_cast<double>(s + 1));
    Rng rng = Rng(seed).fork(0x9ef1);
    const std::vector<double> arrivals =
        poissonArrivalTrace(numRequests, arrivalRate, seed);
    std::vector<int> turnOf(static_cast<size_t>(numSessions), 0);
    std::vector<OnlineRequest> requests;
    requests.reserve(static_cast<size_t>(numRequests));
    long totalPromptTokens = 0;
    for (int i = 0; i < numRequests; ++i) {
        const int session = rng.categorical(weights);
        const int turn = ++turnOf[static_cast<size_t>(session)];
        const int promptTokens =
            basePromptTokens + (turn - 1) * turnGrowthTokens;
        OnlineRequest request;
        request.problemId = 0;
        request.arrival = arrivals[static_cast<size_t>(i)];
        request.promptIds.reserve(
            static_cast<size_t>(promptTokens));
        for (int j = 0; j < promptTokens; ++j)
            request.promptIds.push_back(static_cast<int32_t>(
                ((static_cast<int64_t>(session) + 1) * 1000003
                 + j)
                & 0x7FFFFFFF));
        totalPromptTokens += promptTokens;
        requests.push_back(std::move(request));
    }

    const double engine_budget_gib = [&] {
        ServingSystem probe = ServingSystem::create(opts).value();
        return probe.engine().kvBudgetBytes() / GiB;
    }();

    Json doc = Json::object();
    doc.set("schema", "fasttts-bench-v1");
    doc.set("benchmark", kOnlinePrefixReuseName);
    doc.set("description",
            "Cross-request prefix caching on a multi-turn zipfian "
            "session trace");
    doc.set("quick", quick);

    Json config = Json::object();
    config.set("dataset", args.dataset);
    config.set("device", args.device);
    config.set("models", args.models);
    config.set("num_beams", args.numBeams);
    config.set("requests", numRequests);
    config.set("sessions", numSessions);
    config.set("base_prompt_tokens", basePromptTokens);
    config.set("turn_growth_tokens", turnGrowthTokens);
    config.set("max_inflight", maxInflight);
    config.set("policy", "fifo");
    config.set("batching", "continuous");
    config.set("arrivals", "poisson");
    config.set("arrival_rate_per_s", arrivalRate);
    config.set("kv_budget_gib", engine_budget_gib);
    config.set("seed", seed);
    doc.set("config", std::move(config));

    Json modes = Json::object();
    for (const char *mode : {"off", "on"}) {
        modes.set(mode,
                  measurePrefixReuseRun(opts, requests,
                                        totalPromptTokens, mode,
                                        engine_budget_gib,
                                        maxInflight));
    }
    const double off_goodput =
        modes["off"]["goodput_tokens_per_s"].asNumber();
    const double on_goodput =
        modes["on"]["goodput_tokens_per_s"].asNumber();
    Json summary = Json::object();
    summary.set("saved_recompute_fraction",
                modes["on"]["saved_recompute_fraction"].asNumber());
    summary.set("goodput_ratio",
                off_goodput > 0 ? on_goodput / off_goodput : 0.0);
    doc.set("modes", std::move(modes));
    doc.set("summary", std::move(summary));
    return doc;
}

/**
 * The fault-tolerance benchmark serves ONE identical probe-calibrated
 * bursty trace under deterministic wave-step fault injection at
 * {0%, 1%, 5%} per-wave rates, twice per rate: no-retry (a fault
 * terminally fails its request) versus retry+degrade (capped
 * exponential backoff plus graceful degradation under sustained fault
 * pressure). Reported per cell: SLO attainment, goodput, wasted
 * recompute and time-to-recovery — the survival study behind the
 * retry/timeout/degradation machinery.
 */
constexpr const char *kOnlineFaultToleranceName = "online_fault_tolerance";

Json
measureFaultToleranceRun(const ServingOptions &opts,
                         const CalibratedOnlineTrace &calibrated,
                         double fault_rate, int retry_max,
                         double retry_backoff, int max_inflight)
{
    OnlineServerOptions online;
    online.policy = "edf";
    online.maxInflight = max_inflight;
    online.slo = calibrated.slo;
    online.batching = "continuous";
    if (fault_rate > 0) {
        online.faults = "plan";
        online.faultPlan = "{\"rules\": [{\"site\": \"wave_step\", "
                           "\"rate\": "
            + std::to_string(fault_rate) + "}]}";
        online.retryMax = retry_max;
        online.retryBackoff = retry_backoff;
    }
    OnlineServer server = OnlineServer::create(opts, online).value();
    const OnlineTraceResult out =
        server.serveRequests(calibrated.requests).value();

    Json latency = Json::object();
    latency.set("mean", out.meanLatency);
    latency.set("p50", out.p50Latency);
    latency.set("p95", out.p95Latency);
    latency.set("p99", out.p99Latency);

    Json run = Json::object();
    run.set("latency_s", std::move(latency));
    run.set("slo_attainment", out.sloAttainment);
    run.set("deadline_misses", out.deadlineMisses);
    run.set("completed", static_cast<long>(out.records.size()));
    run.set("goodput_tokens_per_s",
            out.makespan > 0
                ? static_cast<double>(out.verifiedTokens) / out.makespan
                : 0.0);
    run.set("verified_tokens", out.verifiedTokens);
    run.set("makespan_s", out.makespan);
    run.set("injected_faults", out.injectedFaults);
    run.set("retries", out.retries);
    run.set("failed_requests", out.failedRequests);
    run.set("timeouts", out.timeouts);
    run.set("wasted_recompute_tokens", out.faultWastedTokens);
    run.set("degraded_waves", out.degradedWaves);
    run.set("degraded_time_s", out.degradedTime);
    // Mean sim-time from degradation entry until the fault window
    // cleared (or the trace ended still degraded).
    run.set("time_to_recovery_s",
            out.degradedEpisodes > 0
                ? out.degradedTime / out.degradedEpisodes
                : 0.0);
    run.set("utilization", out.utilization);
    return run;
}

Json
runOnlineFaultToleranceBenchmark(bool quick, uint64_t seed)
{
    EngineArgs args;
    args.dataset = "AMC";
    // Quick keeps the full beam width: fault probes are per wave per
    // request, so narrowing the beams shrinks each request's fault
    // exposure and washes out the no-retry collapse the summary keys
    // on. Quick trims the request count instead.
    args.numBeams = 16;
    args.seed = seed;
    const int numRequests = quick ? 10 : 24;
    const int maxInflight = 4;
    const int retryMax = 5;
    ServingOptions opts = args.toServingOptions().value();

    // One identical probe-calibrated bursty trace for every
    // (fault-rate, survival-mode) cell; the fault plan is the ONLY
    // thing that varies, so differences are attributable to it.
    // Unlike the scheduling/preemption sweeps this is a SURVIVAL
    // study, not an overload study: the trace must be feasible when
    // clean (every deadline attainable, ~zero queueing), otherwise
    // retried attempts fight the backlog and attainment measures
    // queueing collapse instead of fault handling. Stretching the
    // calibrated overload trace keeps its bursty shape while dropping
    // the offered load well under capacity and making deadlines
    // generous enough that a few re-serves still meet them.
    CalibratedOnlineTrace calibrated =
        calibrateOnlineTrace(opts, "bursty", numRequests, seed)
            .value();
    constexpr double kArrivalStretch = 4.0; // 3x capacity -> 0.75x.
    constexpr double kSloStretch = 4.0;     // Tiers 9x-72x the mean.
    calibrated.rate /= kArrivalStretch;
    calibrated.slo *= kSloStretch;
    for (OnlineRequest &request : calibrated.requests) {
        request.arrival *= kArrivalStretch;
        request.slo *= kSloStretch;
    }
    const double retryBackoff = 0.25 * calibrated.measuredMean;

    Json doc = Json::object();
    doc.set("schema", "fasttts-bench-v1");
    doc.set("benchmark", kOnlineFaultToleranceName);
    doc.set("description",
            "Retry + degradation vs fail-fast under deterministic "
            "fault injection");
    doc.set("quick", quick);

    Json config = Json::object();
    config.set("dataset", args.dataset);
    config.set("device", args.device);
    config.set("models", args.models);
    config.set("num_beams", args.numBeams);
    config.set("requests", numRequests);
    config.set("max_inflight", maxInflight);
    config.set("policy", "edf");
    config.set("batching", "continuous");
    config.set("arrivals", "bursty");
    config.set("arrival_rate_per_s", calibrated.rate);
    config.set("slo_s", calibrated.slo);
    config.set("retry_max", retryMax);
    config.set("retry_backoff_s", retryBackoff);
    config.set("fault_site", "wave_step");
    config.set("seed", seed);
    doc.set("config", std::move(config));

    struct RateTier
    {
        const char *label;
        double rate;
    };
    const RateTier tiers[] = {{"0%", 0.0}, {"1%", 0.01}, {"5%", 0.05}};

    Json rates = Json::object();
    for (const RateTier &tier : tiers) {
        Json cell = Json::object();
        cell.set("fault_rate", tier.rate);
        cell.set("no_retry",
                 measureFaultToleranceRun(opts, calibrated, tier.rate,
                                          /*retry_max=*/0, retryBackoff,
                                          maxInflight));
        cell.set("retry_degrade",
                 measureFaultToleranceRun(opts, calibrated, tier.rate,
                                          retryMax, retryBackoff,
                                          maxInflight));
        rates.set(tier.label, std::move(cell));
    }

    const double noRetryAt5 =
        rates["5%"]["no_retry"]["slo_attainment"].asNumber();
    const double retryAt5 =
        rates["5%"]["retry_degrade"]["slo_attainment"].asNumber();
    Json summary = Json::object();
    summary.set("slo_attainment_no_retry_at_5pct", noRetryAt5);
    summary.set("slo_attainment_retry_at_5pct", retryAt5);
    summary.set("slo_recovery_points_at_5pct",
                100.0 * (retryAt5 - noRetryAt5));
    doc.set("rates", std::move(rates));
    doc.set("summary", std::move(summary));
    return doc;
}

/**
 * The KV-tiering benchmark reruns the preemption storm (EDF, policy
 * preemption, 0.25x device KV budget — the regime where suspended
 * requests are constantly force-evicted) with the host tier off, fast
 * and slow, crossed with admission-order vs cost-aware victim
 * selection: recomputed vs swapped token volume and SLO attainment on
 * one identical trace — the roofline swap-vs-recompute study behind
 * --kv-tier.
 */
constexpr const char *kOnlineKvTieringName = "online_kv_tiering";

Json
measureKvTieringRun(const ServingOptions &opts,
                    const CalibratedOnlineTrace &calibrated,
                    const std::string &kv_tier, double bandwidth_gbs,
                    const std::string &victim_select,
                    double kv_budget_gib, int max_inflight)
{
    OnlineServerOptions online;
    online.policy = "edf";
    online.maxInflight = max_inflight;
    online.slo = calibrated.slo;
    online.preempt = "slice";
    online.kvBudgetGiB = kv_budget_gib;
    online.shedDoomed = true;
    online.kvTier = kv_tier;
    online.hostBandwidthGBs = bandwidth_gbs;
    online.victimSelect = victim_select;
    OnlineServer server = OnlineServer::create(opts, online).value();
    const OnlineTraceResult out =
        server.serveRequests(calibrated.requests).value();

    Json latency = Json::object();
    latency.set("mean", out.meanLatency);
    latency.set("p50", out.p50Latency);
    latency.set("p95", out.p95Latency);
    latency.set("p99", out.p99Latency);

    Json run = Json::object();
    run.set("latency_s", std::move(latency));
    run.set("slo_attainment", out.sloAttainment);
    run.set("deadline_misses", out.deadlineMisses);
    run.set("completed", static_cast<long>(out.records.size()));
    run.set("shed_requests", out.shedRequests);
    run.set("context_switches", out.contextSwitches);
    run.set("preemptions", out.preemptions);
    run.set("recomputed_tokens", out.recomputedTokens);
    run.set("reprefilled_tokens", out.reprefilledTokens);
    run.set("preempt_evicted_tokens", out.preemptEvictedTokens);
    run.set("swapped_out_tokens", out.swappedOutTokens);
    run.set("swapped_in_tokens", out.swappedInTokens);
    run.set("swap_transfer_time_s", out.swapTransferTime);
    run.set("kv_peak_gib", toGiB(server.kvLedger().peakUsedBytes()));
    if (server.hostTier() != nullptr) {
        const HostKvTierStats &tier = server.hostTier()->stats();
        run.set("host_peak_gib", toGiB(server.hostTier()->peakBytes()));
        run.set("host_swapped_out_nodes",
                static_cast<double>(tier.swappedOutNodes));
        run.set("host_swapped_in_nodes",
                static_cast<double>(tier.swappedInNodes));
        run.set("host_rejected_nodes",
                static_cast<double>(tier.rejectedNodes));
        run.set("host_evicted_nodes",
                static_cast<double>(tier.evictedNodes));
        run.set("host_stale_nodes",
                static_cast<double>(tier.staleNodes));
    }
    run.set("utilization", out.utilization);
    run.set("makespan_s", out.makespan);
    return run;
}

Json
runOnlineKvTieringBenchmark(bool quick, uint64_t seed)
{
    EngineArgs args;
    args.dataset = "AMC";
    args.numBeams = quick ? 8 : 16;
    args.seed = seed;
    const int numRequests = quick ? 10 : 24;
    const int maxInflight = 4;
    ServingOptions opts = args.toServingOptions().value();

    // The identical probe-calibrated bursty storm the preemption
    // benchmark serves, under round-robin slicing with the device
    // budget pinned between one request's working set and the sum of
    // the in-flight sets: every rotation force-evicts suspended
    // victims (tier-eligible), while the mounted run itself never
    // self-reclaims — so preemption evictions dominate the recompute
    // bill and the tier can absorb them.
    const CalibratedOnlineTrace calibrated =
        calibrateOnlineTrace(opts, "bursty", numRequests, seed)
            .value();
    const double engine_budget_gib = [&] {
        ServingSystem probe = ServingSystem::create(opts).value();
        return probe.engine().kvBudgetBytes() / GiB;
    }();
    const double budget_gib = 0.3 * engine_budget_gib;
    constexpr double kFastGBs = 16.0; //!< PCIe-class host link.
    constexpr double kSlowGBs = 0.5;  //!< Link where recompute can win.

    Json doc = Json::object();
    doc.set("schema", "fasttts-bench-v1");
    doc.set("benchmark", kOnlineKvTieringName);
    doc.set("description",
            "Host KV tiering: swap-vs-recompute under a preemption "
            "storm");
    doc.set("quick", quick);

    Json config = Json::object();
    config.set("dataset", args.dataset);
    config.set("device", args.device);
    config.set("models", args.models);
    config.set("num_beams", args.numBeams);
    config.set("requests", numRequests);
    config.set("max_inflight", maxInflight);
    config.set("policy", "edf");
    config.set("preempt", "slice");
    config.set("arrivals", "bursty");
    config.set("arrival_rate_per_s", calibrated.rate);
    config.set("slo_s", calibrated.slo);
    config.set("engine_kv_budget_gib", engine_budget_gib);
    config.set("kv_budget_gib", budget_gib);
    config.set("host_bandwidth_fast_gbs", kFastGBs);
    config.set("host_bandwidth_slow_gbs", kSlowGBs);
    config.set("shed_doomed", true);
    config.set("seed", seed);
    doc.set("config", std::move(config));

    struct Arm
    {
        const char *label;
        const char *kvTier;
        double bandwidthGBs;
    };
    const Arm arms[] = {{"off", "off", kFastGBs},
                        {"host_fast", "host", kFastGBs},
                        {"host_slow", "host", kSlowGBs}};

    Json tiers = Json::object();
    for (const Arm &arm : arms) {
        Json cell = Json::object();
        cell.set("kv_tier", arm.kvTier);
        cell.set("host_bandwidth_gbs", arm.bandwidthGBs);
        for (const char *victims : {"admission", "cost"}) {
            cell.set(victims,
                     measureKvTieringRun(opts, calibrated, arm.kvTier,
                                         arm.bandwidthGBs, victims,
                                         budget_gib, maxInflight));
        }
        tiers.set(arm.label, std::move(cell));
    }

    // Headline: cost-aware fast-link tiering vs the legacy
    // force-evict-recompute server at the identical device budget.
    // The reduction is over re-prefilled tokens — the post-eviction
    // recompute tiering can absorb — not raw recomputed_tokens, which
    // also counts every node's first prefill (KvStats doc).
    const double recompute_base =
        tiers["off"]["admission"]["reprefilled_tokens"].asNumber();
    const double recompute_tiered =
        tiers["host_fast"]["cost"]["reprefilled_tokens"].asNumber();
    const double slo_base =
        tiers["off"]["admission"]["slo_attainment"].asNumber();
    const double slo_tiered =
        tiers["host_fast"]["cost"]["slo_attainment"].asNumber();
    Json summary = Json::object();
    summary.set("reprefilled_tokens_baseline", recompute_base);
    summary.set("reprefilled_tokens_tiered", recompute_tiered);
    summary.set("recompute_reduction",
                recompute_base > 0
                    ? 1.0 - recompute_tiered / recompute_base
                    : 0.0);
    summary.set("slo_attainment_baseline", slo_base);
    summary.set("slo_attainment_tiered", slo_tiered);
    summary.set("swapped_in_tokens_tiered",
                tiers["host_fast"]["cost"]["swapped_in_tokens"]
                    .asNumber());
    doc.set("tiers", std::move(tiers));
    doc.set("summary", std::move(summary));
    return doc;
}

/**
 * Wall-clock and simulated-token volume of one benchmark run, for the
 * fasttts-harness-v1 self-timing document.
 */
struct HarnessSample
{
    double wallMs = 0;
    long simulatedTokens = 0;
};

/** Simulated tokens generated by one benchmark, read back from its
 *  emitted document (0 for documents without token counts). */
long
simulatedTokensOf(const Json &doc)
{
    long tokens = 0;
    const Json &variants = doc["variants"];
    for (const char *variant : {"baseline", "fasttts"}) {
        tokens += static_cast<long>(
            variants[variant]["throughput"]["generated_tokens"]
                .asNumber());
    }
    return tokens;
}

Json
buildHarnessDoc(const std::vector<std::string> &names,
                const std::vector<HarnessSample> &samples, int jobs,
                bool quick, uint64_t seed, double total_wall_ms)
{
    Json doc = Json::object();
    doc.set("schema", "fasttts-harness-v1");
    doc.set("jobs", jobs);
    doc.set("quick", quick);
    doc.set("seed", seed);
    doc.set("total_wall_ms", total_wall_ms);
    Json list = Json::array();
    for (size_t i = 0; i < names.size(); ++i) {
        Json entry = Json::object();
        entry.set("name", names[i]);
        entry.set("wall_ms", samples[i].wallMs);
        entry.set("simulated_tokens", samples[i].simulatedTokens);
        entry.set("simulated_tokens_per_s",
                  samples[i].wallMs > 0
                      ? static_cast<double>(samples[i].simulatedTokens)
                          / (samples[i].wallMs / 1000.0)
                      : 0.0);
        list.push(std::move(entry));
    }
    doc.set("benchmarks", std::move(list));
    return doc;
}

int
usage(std::ostream &os, int exit_code)
{
    os << "usage: bench_runner [--list] [--quick] [--jobs N]\n"
          "                    [--out-dir DIR] [--seed N] [name...]\n"
          "\n"
          "Runs the registered benchmarks (all by default, or the named\n"
          "subset: the figure suite plus the online_scheduling policy\n"
          "sweep, the online_preemption kv-budget sweep, the\n"
          "online_batching continuous-vs-sliced study, the\n"
          "online_prefix_reuse cross-request caching study, the\n"
          "online_fault_tolerance retry/degradation study and the\n"
          "online_kv_tiering swap-vs-recompute study) and writes\n"
          "BENCH_<name>.json into --out-dir\n"
          "(default: current directory). --list prints the benchmark\n"
          "names, one per line, and exits. --jobs N runs benchmarks on\n"
          "N threads; output is bit-identical to --jobs 1. Every run\n"
          "also writes BENCH_harness.json (schema fasttts-harness-v1)\n"
          "with per-benchmark wall_ms and simulated tokens/s.\n"
          "\n"
          "Registered serving names (see api/engine_args.h):\n";
    os << EngineArgs::registryListing();
    return exit_code;
}

int
runnerMain(int argc, char **argv)
{
    bool list = false;
    bool quick = false;
    uint64_t seed = 2026;
    int jobs = 1;
    std::string outDir = ".";
    std::vector<std::string> selected;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            list = true;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            char *end = nullptr;
            const long value = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || value < 1
                || value > 1024) {
                std::cerr << "bench_runner: --jobs expects an integer "
                             "in [1, 1024], got '"
                          << argv[i] << "'\n";
                return 2;
            }
            jobs = static_cast<int>(value);
        } else if (arg == "--out-dir" && i + 1 < argc) {
            outDir = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            // Reuse the EngineArgs number grammar for the seed flag.
            const char *fake[] = {"bench_runner", "--seed", argv[++i]};
            auto parsed = EngineArgs::fromArgv(3, fake);
            if (!parsed.ok()) {
                std::cerr << "bench_runner: "
                          << parsed.status().toString() << "\n";
                return 2;
            }
            seed = parsed->seed;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "bench_runner: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            selected.push_back(arg);
        }
    }

    // The online serving benchmarks are not BenchSpec-shaped; they
    // register as (name, runner) pairs instead.
    struct OnlineBench
    {
        const char *name;
        Json (*run)(bool quick, uint64_t seed);
    };
    static constexpr OnlineBench kOnlineBenchmarks[] = {
        {kOnlineSchedulingName, runOnlineSchedulingBenchmark},
        {kOnlinePreemptionName, runOnlinePreemptionBenchmark},
        {kOnlineBatchingName, runOnlineBatchingBenchmark},
        {kOnlinePrefixReuseName, runOnlinePrefixReuseBenchmark},
        {kOnlineFaultToleranceName, runOnlineFaultToleranceBenchmark},
        {kOnlineKvTieringName, runOnlineKvTieringBenchmark},
    };

    if (list) {
        for (const BenchSpec &spec : kBenchmarks)
            std::cout << spec.name << "\n";
        for (const OnlineBench &bench : kOnlineBenchmarks)
            std::cout << bench.name << "\n";
        return 0;
    }

    // Exactly one of spec/run is set; `name` is always authoritative.
    struct RunEntry
    {
        const BenchSpec *spec;
        Json (*run)(bool quick, uint64_t seed);
        const char *name;
    };
    std::vector<RunEntry> toRun;
    if (selected.empty()) {
        for (const BenchSpec &spec : kBenchmarks)
            toRun.push_back({&spec, nullptr, spec.name});
        for (const OnlineBench &bench : kOnlineBenchmarks)
            toRun.push_back({nullptr, bench.run, bench.name});
    } else {
        for (const std::string &name : selected) {
            const BenchSpec *found = nullptr;
            for (const BenchSpec &spec : kBenchmarks)
                if (name == spec.name)
                    found = &spec;
            const OnlineBench *online = nullptr;
            for (const OnlineBench &bench : kOnlineBenchmarks)
                if (name == bench.name)
                    online = &bench;
            if (found == nullptr && online == nullptr) {
                std::cerr << "bench_runner: unknown benchmark '" << name
                          << "' (see --list)\n";
                return 2;
            }
            toRun.push_back({found,
                             online != nullptr ? online->run : nullptr,
                             found != nullptr ? found->name
                                              : online->name});
        }
    }

    std::error_code ec;
    std::filesystem::create_directories(outDir, ec);
    if (ec) {
        std::cerr << "bench_runner: cannot create out-dir '" << outDir
                  << "': " << ec.message() << "\n";
        return 1;
    }

    // Touch every registry once on the main thread: the function-local
    // registries initialise lazily, and worker threads must only ever
    // read them.
    (void)EngineArgs::registryListing();

    // Run the benchmarks — on a thread pool when --jobs > 1. Each
    // benchmark is deterministic and owns all of its state, so results
    // are bit-identical for any job count; docs are collected in
    // memory and written in registration order below.
    using Clock = std::chrono::steady_clock;
    std::vector<Json> docs(toRun.size());
    std::vector<HarnessSample> samples(toRun.size());
    const auto suiteStart = Clock::now();
    {
        std::atomic<size_t> nextTask{0};
        auto worker = [&]() {
            for (size_t i = nextTask.fetch_add(1); i < toRun.size();
                 i = nextTask.fetch_add(1)) {
                const RunEntry &entry = toRun[i];
                const auto start = Clock::now();
                docs[i] = entry.spec != nullptr
                    ? runBenchmark(*entry.spec, quick, seed)
                    : entry.run(quick, seed);
                samples[i].wallMs =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - start)
                        .count();
                samples[i].simulatedTokens = simulatedTokensOf(docs[i]);
            }
        };
        const int poolSize = std::min<int>(
            jobs, static_cast<int>(toRun.size()) > 0
                ? static_cast<int>(toRun.size())
                : 1);
        if (poolSize <= 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(static_cast<size_t>(poolSize));
            for (int t = 0; t < poolSize; ++t)
                pool.emplace_back(worker);
            for (std::thread &thread : pool)
                thread.join();
        }
    }
    const double totalWallMs =
        std::chrono::duration<double, std::milli>(Clock::now()
                                                  - suiteStart)
            .count();

    std::vector<std::string> names;
    names.reserve(toRun.size());
    for (size_t i = 0; i < toRun.size(); ++i) {
        const std::string name = toRun[i].name;
        names.push_back(name);
        const Json &doc = docs[i];
        const std::filesystem::path path =
            std::filesystem::path(outDir) / ("BENCH_" + name + ".json");
        std::ofstream file(path);
        if (!file) {
            std::cerr << "bench_runner: cannot write " << path << "\n";
            return 1;
        }
        file << doc.dump(2);
        if (toRun[i].spec != nullptr) {
            std::cout
                << name << ": goodput x"
                << formatDouble(doc["speedup"]["goodput"].asNumber(), 2)
                << ", latency x"
                << formatDouble(doc["speedup"]["latency"].asNumber(), 2)
                << " -> " << path.string() << "\n";
        } else if (name == kOnlineSchedulingName) {
            std::cout << name << ": slo attainment fifo "
                      << formatDouble(
                             100.0
                                 * doc["policies"]["fifo"]
                                      ["slo_attainment"]
                                          .asNumber(),
                             0)
                      << "% vs edf "
                      << formatDouble(
                             100.0
                                 * doc["policies"]["edf"]
                                      ["slo_attainment"]
                                          .asNumber(),
                             0)
                      << "% -> " << path.string() << "\n";
        } else if (name == kOnlineBatchingName) {
            const Json &full = doc["budgets"]["1.00x"];
            std::cout
                << name << ": goodput sliced "
                << formatDouble(full["sliced"]["goodput_tokens_per_s"]
                                    .asNumber(),
                                0)
                << " vs continuous "
                << formatDouble(
                       full["continuous"]["goodput_tokens_per_s"]
                           .asNumber(),
                       0)
                << " tok/s, occupancy "
                << formatDouble(
                       full["continuous"]["batch_occupancy"].asNumber(),
                       2)
                << " -> " << path.string() << "\n";
        } else if (name == kOnlineFaultToleranceName) {
            std::cout
                << name << ": slo at 5% faults no-retry "
                << formatDouble(
                       100.0
                           * doc["summary"]
                                ["slo_attainment_no_retry_at_5pct"]
                                    .asNumber(),
                       0)
                << "% vs retry+degrade "
                << formatDouble(
                       100.0
                           * doc["summary"]
                                ["slo_attainment_retry_at_5pct"]
                                    .asNumber(),
                       0)
                << "% (recovered "
                << formatDouble(
                       doc["summary"]["slo_recovery_points_at_5pct"]
                           .asNumber(),
                       0)
                << " pts) -> " << path.string() << "\n";
        } else if (name == kOnlineKvTieringName) {
            std::cout
                << name << ": recompute -"
                << formatDouble(
                       100.0
                           * doc["summary"]["recompute_reduction"]
                                 .asNumber(),
                       0)
                << "% (host_fast/cost), slo "
                << formatDouble(
                       100.0
                           * doc["summary"]["slo_attainment_baseline"]
                                 .asNumber(),
                       0)
                << "% -> "
                << formatDouble(
                       100.0
                           * doc["summary"]["slo_attainment_tiered"]
                                 .asNumber(),
                       0)
                << "% -> " << path.string() << "\n";
        } else if (name == kOnlinePrefixReuseName) {
            std::cout
                << name << ": saved recompute "
                << formatDouble(
                       100.0
                           * doc["summary"]["saved_recompute_fraction"]
                                 .asNumber(),
                       0)
                << "% of prompt tokens, goodput off "
                << formatDouble(doc["modes"]["off"]
                                   ["goodput_tokens_per_s"]
                                       .asNumber(),
                                0)
                << " vs on "
                << formatDouble(doc["modes"]["on"]
                                   ["goodput_tokens_per_s"]
                                       .asNumber(),
                                0)
                << " tok/s -> " << path.string() << "\n";
        } else {
            const Json &tight = doc["budgets"]["0.25x"];
            std::cout << name << ": slo (0.25x budget) slice "
                      << formatDouble(
                             100.0
                                 * tight["slice"]["slo_attainment"]
                                       .asNumber(),
                             0)
                      << "% vs policy "
                      << formatDouble(
                             100.0
                                 * tight["policy"]["slo_attainment"]
                                       .asNumber(),
                             0)
                      << "%, shed "
                      << formatDouble(
                             100.0
                                 * tight["policy"]["shed_rate"]
                                       .asNumber(),
                             0)
                      << "% -> " << path.string() << "\n";
        }
    }

    // Self-timing document: the harness-performance trajectory future
    // perf PRs are judged against.
    const Json harness = buildHarnessDoc(names, samples, jobs, quick,
                                         seed, totalWallMs);
    const std::filesystem::path harnessPath =
        std::filesystem::path(outDir) / "BENCH_harness.json";
    std::ofstream harnessFile(harnessPath);
    if (!harnessFile) {
        std::cerr << "bench_runner: cannot write " << harnessPath
                  << "\n";
        return 1;
    }
    harnessFile << harness.dump(2);
    std::cout << "harness: " << names.size() << " benchmark"
              << (names.size() == 1 ? "" : "s") << " in "
              << formatDouble(totalWallMs, 1) << " ms (--jobs " << jobs
              << ") -> " << harnessPath.string() << "\n";
    return 0;
}

} // namespace
} // namespace fasttts

int
main(int argc, char **argv)
{
    return fasttts::runnerMain(argc, argv);
}
