#include "kv/block_allocator.h"

#include <algorithm>
#include <cassert>

namespace fasttts
{

BlockAllocator::BlockAllocator(size_t total_blocks) : total_(total_blocks) {}

bool
BlockAllocator::allocate(size_t n)
{
    if (used_ + n > total_) {
        ++failed_;
        return false;
    }
    used_ += n;
    peakUsed_ = std::max(peakUsed_, used_);
    return true;
}

void
BlockAllocator::release(size_t n)
{
    assert(n <= used_);
    used_ -= std::min(n, used_);
}

void
BlockAllocator::resize(size_t total_blocks)
{
    total_ = std::max(total_blocks, used_);
}

} // namespace fasttts
