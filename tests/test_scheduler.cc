/**
 * @file
 * Tests for the generation-phase schedulers, the shared-prefix cost
 * model, and the Sec. 4.2 / Appendix A greedy-optimality property.
 */

#include <gtest/gtest.h>

#include "sched/scheduler.h"

namespace fasttts
{
namespace
{

/** Fixture building the paper's Fig. 8 style tree:
 *  root -> A -> {B -> {D -> {G, H}, E -> I}, C -> F -> J}. */
class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest() : kv_(1 << 20, 1.0, 16)
    {
        a_ = kv_.createChild(KvCacheManager::kRoot, 'A', 10);
        b_ = kv_.createChild(a_, 'B', 10);
        c_ = kv_.createChild(a_, 'C', 10);
        d_ = kv_.createChild(b_, 'D', 10);
        e_ = kv_.createChild(b_, 'E', 10);
        f_ = kv_.createChild(c_, 'F', 10);
        g_ = kv_.createChild(d_, 'G', 10);
        h_ = kv_.createChild(d_, 'H', 10);
        i_ = kv_.createChild(e_, 'I', 10);
        j_ = kv_.createChild(f_, 'J', 10);
    }

    SchedEntry
    entry(size_t index, int leaf, uint64_t parent, int prev_pos = 0)
    {
        SchedEntry e;
        e.index = index;
        e.beamId = index + 1;
        e.parentBeam = parent;
        e.leaf = leaf;
        e.pathTokens = kv_.pathTokens(leaf);
        e.prevPosition = prev_pos;
        return e;
    }

    /** The four leaf paths of Fig. 8: ABDG, ABDH, ABEI, ACFJ. */
    std::vector<SchedEntry>
    fig8Entries()
    {
        return {entry(0, g_, 100), entry(1, h_, 100), entry(2, i_, 101),
                entry(3, j_, 102)};
    }

    KvCacheManager kv_;
    int a_, b_, c_, d_, e_, f_, g_, h_, i_, j_;
};

TEST_F(SchedulerTest, SharedPrefixMapMatchesPairwiseQueries)
{
    // The anchor map (built once, queried many times — the greedy
    // scheduler's fast path) must agree with the pairwise helper for
    // every (anchor, other) combination, including anchor == other.
    const std::vector<int> leaves = {a_, b_, c_, d_, e_,
                                     f_, g_, h_, i_, j_};
    SharedPrefixMap anchor;
    for (int leaf_a : leaves) {
        anchor.build(kv_, leaf_a);
        for (int leaf_b : leaves) {
            EXPECT_EQ(anchor.sharedWith(kv_, leaf_b),
                      sharedPrefixTokens(kv_, leaf_a, leaf_b))
                << "anchor " << leaf_a << " vs " << leaf_b;
        }
    }
}

TEST_F(SchedulerTest, SharedPrefixTokens)
{
    // ABDG vs ABDH share A+B+D = 30 tokens.
    EXPECT_EQ(sharedPrefixTokens(kv_, g_, h_), 30);
    // ABDG vs ABEI share A+B = 20.
    EXPECT_EQ(sharedPrefixTokens(kv_, g_, i_), 20);
    // ABDG vs ACFJ share A = 10.
    EXPECT_EQ(sharedPrefixTokens(kv_, g_, j_), 10);
    // A path shares its whole length with itself.
    EXPECT_EQ(sharedPrefixTokens(kv_, g_, g_), 40);
    // Symmetry.
    EXPECT_EQ(sharedPrefixTokens(kv_, j_, g_),
              sharedPrefixTokens(kv_, g_, j_));
}

TEST_F(SchedulerTest, ScheduleCostMatchesDefinition)
{
    auto entries = fig8Entries();
    // Order ABDG, ABDH, ABEI, ACFJ: shared = 30 + 20 + 10 = 60.
    EXPECT_EQ(scheduleSharedPrefixSum(kv_, entries), 60);
    // Cost = total tokens (4 x 40) - shared.
    EXPECT_EQ(scheduleEvictionCost(kv_, entries), 160 - 60);
}

TEST_F(SchedulerTest, GreedyBeatsWorstCase)
{
    auto greedy_order = fig8Entries();
    auto worst_order = fig8Entries();
    Rng rng(1);
    makeGreedyPrefixScheduler()->order(greedy_order, kv_, rng);
    makeWorstCaseScheduler()->order(worst_order, kv_, rng);
    EXPECT_GE(scheduleSharedPrefixSum(kv_, greedy_order),
              scheduleSharedPrefixSum(kv_, worst_order));
    // On Fig. 8 the greedy order achieves the maximum (60).
    EXPECT_EQ(scheduleSharedPrefixSum(kv_, greedy_order), 60);
}

TEST_F(SchedulerTest, PrefixAwareGroupsSiblings)
{
    // Interleave siblings; prefix-aware must re-group them by parent.
    std::vector<SchedEntry> entries = {
        entry(0, g_, 100, 0), entry(1, j_, 102, 2),
        entry(2, h_, 100, 0), entry(3, i_, 101, 1)};
    Rng rng(1);
    makePrefixAwareScheduler()->order(entries, kv_, rng);
    // Order by prevPosition: the two parent-100 children first.
    EXPECT_EQ(entries[0].parentBeam, 100u);
    EXPECT_EQ(entries[1].parentBeam, 100u);
    EXPECT_EQ(entries[2].parentBeam, 101u);
    EXPECT_EQ(entries[3].parentBeam, 102u);
}

TEST_F(SchedulerTest, FifoOrdersById)
{
    std::vector<SchedEntry> entries = {entry(2, i_, 1), entry(0, g_, 1),
                                       entry(1, h_, 1)};
    Rng rng(1);
    makeFifoScheduler()->order(entries, kv_, rng);
    EXPECT_EQ(entries[0].beamId, 1u);
    EXPECT_EQ(entries[1].beamId, 2u);
    EXPECT_EQ(entries[2].beamId, 3u);
}

TEST_F(SchedulerTest, RandomIsAPermutationAndSeedDeterministic)
{
    auto entries = fig8Entries();
    Rng r1(7);
    Rng r2(7);
    auto a = entries;
    auto b = entries;
    makeRandomScheduler()->order(a, kv_, r1);
    makeRandomScheduler()->order(b, kv_, r2);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].beamId, b[i].beamId);
    std::set<uint64_t> ids;
    for (const auto &e : a)
        ids.insert(e.beamId);
    EXPECT_EQ(ids.size(), entries.size());
}

TEST_F(SchedulerTest, FactoryByName)
{
    EXPECT_EQ(makeScheduler("fifo")->name(), "fifo");
    EXPECT_EQ(makeScheduler("random")->name(), "random");
    EXPECT_EQ(makeScheduler("worst_case")->name(), "worst_case");
    EXPECT_EQ(makeScheduler("prefix_aware")->name(), "prefix_aware");
    EXPECT_EQ(makeScheduler("greedy_prefix")->name(), "greedy_prefix");
    EXPECT_EQ(makeScheduler("bogus")->name(), "fifo");
}

/**
 * Appendix A.2 property: the greedy schedule is locally optimal — no
 * single swap of two elements improves the shared-prefix sum.
 */
class GreedyOptimality : public ::testing::TestWithParam<int>
{
};

TEST_P(GreedyOptimality, NoSingleSwapImproves)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    KvCacheManager kv(1 << 20, 1.0, 16);

    // Random reasoning tree with 24 leaves.
    std::vector<int> frontier = {KvCacheManager::kRoot};
    std::vector<int> leaves;
    uint64_t seg = 1;
    for (int step = 0; step < 4; ++step) {
        std::vector<int> next;
        for (int node : frontier) {
            const int kids = rng.uniformInt(1, 3);
            for (int k = 0; k < kids; ++k) {
                next.push_back(
                    kv.createChild(node, seg++, rng.uniformInt(5, 60)));
            }
        }
        frontier = next;
    }
    leaves = frontier;
    if (leaves.size() > 24)
        leaves.resize(24);

    std::vector<SchedEntry> entries;
    for (size_t i = 0; i < leaves.size(); ++i) {
        SchedEntry e;
        e.index = i;
        e.beamId = i + 1;
        e.leaf = leaves[i];
        e.parentBeam = static_cast<uint64_t>(kv.parentOf(leaves[i]));
        e.pathTokens = kv.pathTokens(leaves[i]);
        entries.push_back(e);
    }
    rng.shuffle(entries);
    makeGreedyPrefixScheduler()->order(entries, kv, rng);

    const long base = scheduleSharedPrefixSum(kv, entries);
    for (size_t i = 0; i < entries.size(); ++i) {
        for (size_t j = i + 1; j < entries.size(); ++j) {
            auto swapped = entries;
            std::swap(swapped[i], swapped[j]);
            EXPECT_LE(scheduleSharedPrefixSum(kv, swapped), base)
                << "swap (" << i << "," << j << ") improved the greedy "
                << "schedule";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOptimality,
                         ::testing::Range(1, 9));

/** The production sibling-grouping policy should be close to the
 *  greedy argmax on beam-search-shaped trees. */
TEST(PrefixAwareQuality, CloseToGreedyOnSiblingGroups)
{
    Rng rng(123);
    KvCacheManager kv(1 << 20, 1.0, 16);
    // One parent generation of 8 beams, each spawning 4 children —
    // the structure the engine produces.
    std::vector<SchedEntry> entries;
    uint64_t seg = 1;
    size_t index = 0;
    for (int p = 0; p < 8; ++p) {
        const int parent = kv.createChild(KvCacheManager::kRoot, seg++,
                                          rng.uniformInt(50, 200));
        for (int c = 0; c < 4; ++c) {
            const int leaf =
                kv.createChild(parent, seg++, rng.uniformInt(20, 100));
            SchedEntry e;
            e.index = index++;
            e.beamId = index;
            e.parentBeam = static_cast<uint64_t>(p);
            e.leaf = leaf;
            e.pathTokens = kv.pathTokens(leaf);
            e.prevPosition = p;
            entries.push_back(e);
        }
    }
    rng.shuffle(entries);

    auto grouped = entries;
    auto greedy = entries;
    makePrefixAwareScheduler()->order(grouped, kv, rng);
    makeGreedyPrefixScheduler()->order(greedy, kv, rng);
    const long grouped_sum = scheduleSharedPrefixSum(kv, grouped);
    const long greedy_sum = scheduleSharedPrefixSum(kv, greedy);
    EXPECT_GE(grouped_sum, static_cast<long>(0.95 * greedy_sum));

    auto random_order = entries;
    makeRandomScheduler()->order(random_order, kv, rng);
    EXPECT_GT(grouped_sum, scheduleSharedPrefixSum(kv, random_order));
}

} // namespace
} // namespace fasttts
