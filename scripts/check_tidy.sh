#!/usr/bin/env bash
# Run the curated clang-tidy gate (.clang-tidy at the repo root).
#
# Usage:
#   scripts/check_tidy.sh [--all | BASE_REF] [--report FILE]
#
#   --all          Check every C++ translation unit in src/, bench/,
#                  tests/ and examples/ (the CI full-tree mode).
#   BASE_REF       Check only files changed since BASE_REF (default:
#                  HEAD~1) — the fast pre-push mode.
#   --report FILE  Also write the raw clang-tidy output to FILE (CI
#                  uploads it as the lint-report artifact).
#
# The gate needs a compile database; it configures a throwaway build
# tree under build-tidy/ if compile_commands.json is not already
# there. Hosts without clang-tidy (the pinned version or any
# fallback) skip with a notice and exit 0 so local workflows degrade
# gracefully; CI installs clang-tidy-15 and runs for real.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

mode="changed"
base="HEAD~1"
report=""
while [[ $# -gt 0 ]]; do
    case "$1" in
    --all)
        mode="all"
        ;;
    --report)
        report="$2"
        shift
        ;;
    *)
        base="$1"
        ;;
    esac
    shift
done

clang_tidy=""
# clang-tidy-15 first: it is the version CI installs, and newer major
# versions add checks the curated list has not been audited against.
for candidate in clang-tidy-15 clang-tidy-16 clang-tidy; do
    if command -v "${candidate}" >/dev/null 2>&1; then
        clang_tidy="${candidate}"
        break
    fi
done
if [[ -z ${clang_tidy} ]]; then
    echo "check_tidy: clang-tidy not found; skipping" >&2
    exit 0
fi

if [[ ${mode} == all ]]; then
    files=$(find src bench tests examples -name '*.cc' | sort)
else
    files=$(git diff --name-only --diff-filter=ACMR "${base}"...HEAD \
            -- 'src/*.cc' 'bench/*.cc' 'tests/*.cc' 'examples/*.cc' \
            || true)
fi
if [[ -z ${files} ]]; then
    echo "check_tidy: no C++ sources to check"
    exit 0
fi

# clang-tidy needs compile_commands.json. Reuse the main build tree's
# database when present; otherwise configure a dedicated one (tests
# included so tests/*.cc have entries).
build_dir=""
for candidate_dir in build build-tidy; do
    if [[ -f ${candidate_dir}/compile_commands.json ]]; then
        build_dir="${candidate_dir}"
        break
    fi
done
if [[ -z ${build_dir} ]]; then
    build_dir="build-tidy"
    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        >/dev/null
fi

status=0
output=$(echo "${files}" \
    | xargs "${clang_tidy}" -p "${build_dir}" --quiet 2>&1) \
    || status=$?
if [[ -n ${report} ]]; then
    printf '%s\n' "${output}" >"${report}"
fi
if [[ ${status} -ne 0 ]]; then
    printf '%s\n' "${output}" >&2
    echo "check_tidy: FAILED" >&2
    exit "${status}"
fi
# --quiet still narrates suppressed-warning counts on stderr; show
# them for transparency but only fail on real findings (exit status).
printf '%s\n' "${output}" | grep -v '^$' || true
echo "check_tidy: OK ($(echo "${files}" | wc -l) files, mode=${mode})"
