/**
 * @file
 * The TTS serving engine: baseline vLLM-style loop + FastTTS
 * optimizations.
 *
 * One engine implements the paper's generalized two-stage loop
 * (Sec. 3.1): a Generation phase that decodes one thinking step per
 * active beam, and a Verification phase that scores the new steps and
 * selects/branches survivors. The FastTtsConfig toggles:
 *
 *  - S: Speculative Beam Extension (Algorithm 1) — freed decode slots
 *    are filled with speculative child branches of finished beams,
 *    chosen by the SelectSPEC score-bin policy; LookAhead Verification
 *    merges a completed speculative step into the current verifier
 *    request. Duplicates truncate speculative tokens ~ N(R*len).
 *  - P: Dynamic Prefix-Aware Scheduling — generation (and hence
 *    verification) order groups sibling beams to minimise KV eviction.
 *  - M: Asymmetric Multi-Model Memory Allocation — roofline-guided
 *    split of the KV budget between generator and verifier, with the
 *    optional offloading strategy.
 *
 * Speculation and scheduling affect only *when* tokens materialise,
 * never *what* a beam samples (see trajectory.h), so the engine is
 * algorithmically equivalent to the baseline by construction.
 */

#ifndef FASTTTS_CORE_ENGINE_H
#define FASTTTS_CORE_ENGINE_H

#include <memory>
#include <vector>

#include "alloc/memory_planner.h"
#include "core/config.h"
#include "core/speculative.h"
#include "core/trajectory.h"
#include "kv/kv_cache.h"
#include "metrics/request_metrics.h"
#include "model/generator.h"
#include "model/model_spec.h"
#include "model/verifier.h"
#include "model/workload.h"
#include "sched/batch_scheduler.h"
#include "sched/scheduler.h"
#include "search/beam.h"
#include "search/search_algorithm.h"
#include "sim/roofline.h"
#include "sim/timeline.h"

namespace fasttts
{

class SuspendedEngineRequest;
class PrefixIndex;

/** Per-iteration snapshot for the cache/scheduling figures (5, 18). */
struct IterationStats
{
    int iteration = 0;
    int activeBeams = 0;
    long residentNodes = 0;    //!< Unique resident segments (shared).
    long residentTokens = 0;   //!< Unique resident tokens.
    long uniqueTokens = 0;     //!< Active working set with sharing.
    long unsharedTokens = 0;   //!< Footprint without prefix sharing.
    uint64_t evictions = 0;    //!< Cumulative generator evictions.
    uint64_t recomputedTokens = 0; //!< Cumulative recompute volume.
    double clock = 0;          //!< Time at iteration end.
    int decodeBatch = 0;       //!< Planned B_dec this iteration.
    int prefillBatch = 0;      //!< Planned B_pre this iteration.
};

/** One request's share of a fused batch wave (see stepBatch()). */
struct BatchMemberOutcome
{
    bool participated = false; //!< The plan scheduled this member.
    bool moreWork = true;      //!< stepRequest()'s verdict after a
                               //!< decode turn (prefill leaves true).
    long decodedTokens = 0;    //!< Tokens decoded this wave.
    int prefilledTokens = 0;   //!< Prompt tokens prefilled this wave.
    double activeDelta = 0;    //!< Device time attributed to this
                               //!< member under the fused wave clock.
};

/** What one fused engine wave did across all planned members. */
struct BatchWaveResult
{
    double waveTime = 0;    //!< Shared device-clock advance (s): the
                            //!< fused decode time plus the serial
                            //!< verification/transfer/prefill parts.
    long tokensDecoded = 0; //!< Decode tokens across members.
    int prefillChunks = 0;  //!< Prompt chunks prefilled.
    std::vector<BatchMemberOutcome> outcomes; //!< One per context
                                              //!< passed to stepBatch.
};

/**
 * Serving engine for one generator+verifier pair on one device.
 *
 * runRequest() simulates one TTS request end-to-end and returns its
 * metrics; the engine is reusable across requests (the clock and KV
 * state reset each run).
 *
 * Every piece of per-request state — beams, speculative running set,
 * clocks, KV trees, counters — lives in a RequestContext, and exactly
 * one context is mounted on the engine at a time. suspendRequest()
 * unmounts the live context into a SuspendedEngineRequest handle
 * (cheap: no KV movement) and resumeRequest() mounts it back, so one
 * engine serves many interleaved requests with true preemption; a
 * suspended request's KV can additionally be force-evicted to the
 * shared pool (SuspendedEngineRequest::evictKv) and is then rebuilt
 * lazily — charged as recompute — when the request next runs.
 *
 * stepBatch() is the continuous-batching entry point: it advances
 * every request named by a BatchPlan in ONE fused device wave —
 * decode work from different requests shares the weight-read so the
 * wave is sublinear in the member count (RooflineModel::decodeStepTime
 * is sublinear in batch), while each member's beams, KV trees,
 * counters and RNG streams stay fully isolated in its own context.
 */
class FastTtsEngine
{
  public:
    /** All per-request engine state (opaque; defined in engine.cc). */
    struct RequestContext;
    /**
     * @param config Optimization toggles and substrate knobs.
     * @param models Generator/verifier pair + memory fraction.
     * @param device Edge GPU.
     * @param dataset Workload profile the requests come from.
     * @param algorithm Search method (not owned; must outlive engine).
     */
    FastTtsEngine(const FastTtsConfig &config, const ModelConfig &models,
                  const DeviceSpec &device, const DatasetProfile &dataset,
                  const SearchAlgorithm &algorithm);

    ~FastTtsEngine();

    FastTtsEngine(const FastTtsEngine &) = delete;
    FastTtsEngine &operator=(const FastTtsEngine &) = delete;

    /** Serve one problem with search width algorithm().beamWidth(). */
    [[nodiscard]] RequestResult runRequest(const Problem &problem);

    // --- Incremental request lifecycle (the async serving facade in
    //     core/serving.h drives these; runRequest() is begin + step
    //     loop + finish) ---

    /**
     * Reset engine state and admit the problem's initial beams.
     * @param defer_prompt_prefill Leave the prompt unprefilled so a
     *        batch scheduler can feed it in chunks (prefillPending();
     *        stepBatch()'s PrefillChunk entries); false reproduces
     *        the legacy pay-the-whole-prompt-up-front behaviour
     *        bit-for-bit.
     */
    void beginRequest(const Problem &problem,
                      bool defer_prompt_prefill = false);

    /**
     * Advance the in-flight request by one TTS iteration (replan,
     * generation, verification, selection).
     * @return true while further iterations remain; false once every
     *         beam completed (or the step hard cap was reached), after
     *         which finishRequest() collects the result.
     */
    [[nodiscard]] bool stepRequest();

    /**
     * Abandon any still-active beams and build the request's metrics.
     * Also serves as cancellation: callable after any number of
     * stepRequest() calls.
     */
    RequestResult finishRequest();

    /**
     * Abandon the mounted request WITHOUT publishing its prompt to
     * the prefix cache: beams are pruned, the prefix pin is dropped,
     * and no result is built. This is the abnormal-exit counterpart
     * of finishRequest() — cancellation, shedding and watchdog
     * timeouts must not advertise a prompt the request never finished
     * serving. KV trees stay mounted until releaseFinishedKv() or the
     * next beginRequest(), exactly like finishRequest().
     */
    void abortRequest();

    /**
     * Advance every request the plan names in one fused device wave
     * (continuous batching). Decode entries run one full TTS
     * iteration of their context; PrefillChunk entries prefill up to
     * `tokens` prompt tokens. The generation-side time of all decode
     * members is re-priced as ONE fused decode batch (sublinear in
     * the member count); verification and transfer stay serial, as do
     * prefill chunks. Per-member KV trees, beams, counters and RNG
     * streams are untouched by batch composition, so each member's
     * results are identical to a solo run.
     *
     * The engine must be idle (no mounted in-flight request); the
     * contexts are borrowed for the call and returned untouched in
     * ownership terms. Plan entries whose member index is out of
     * range or whose context is null are skipped.
     */
    [[nodiscard]] BatchWaveResult
    stepBatch(const std::vector<RequestContext *> &contexts,
              const BatchPlan &plan);

    /** Prompt tokens of the mounted request still awaiting chunked
     *  prefill (0 unless beginRequest deferred the prompt). */
    [[nodiscard]] int prefillPending() const;

    /** Tokens the mounted request has decoded so far (cumulative). */
    [[nodiscard]] long generatedTokensSoFar() const;

    /** Expected decode tokens per step of this engine's dataset (the
     *  planning estimate batch schedulers budget with). */
    [[nodiscard]] double expectedStepTokens() const
    {
        return expectedStepTokens_;
    }

    // --- Multi-request contexts (preemption) ---

    /**
     * Unmount the live request context — beams, clocks, KV trees and
     * all — into a movable handle, leaving the engine idle with a
     * fresh empty context. The parked request's KV stays resident
     * (and keeps its shared-ledger charge) until evictKv() is called
     * on the handle or the handle is destroyed.
     */
    [[nodiscard]] SuspendedEngineRequest suspendRequest();

    /**
     * Mount a previously suspended context back on the engine; the
     * request continues exactly where stepRequest() left off (its
     * clock included). The engine must be idle (no in-flight request).
     * Invalid (moved-from) handles are ignored.
     */
    void resumeRequest(SuspendedEngineRequest suspended);

    /** Whether a request is mounted and unfinished (between
     *  beginRequest() and the end of its finishRequest()). */
    [[nodiscard]] bool hasActiveRequest() const;

    /**
     * Drop the idle engine context. After finishRequest() the last
     * request's KV trees stay mounted (and keep their shared-ledger
     * charge) until the next beginRequest()/resumeRequest() replaces
     * them; a serving loop that has drained its trace calls this so a
     * finished request never squats on the shared budget afterwards
     * (the ledger returns to its pre-trace occupancy). Also resets
     * the context-backed accessors (clock(), iterationStats(), ...).
     * No-op while a request is mounted.
     */
    void releaseFinishedKv();

    /**
     * Attach a shared KV byte budget (kv/kv_session.h): the KV trees
     * of every subsequent request charge it, so concurrent contexts
     * on one device genuinely contend for memory. Affects requests
     * begun after the call; the ledger must outlive the engine.
     */
    void attachKvLedger(KvBudgetLedger *ledger) { ledger_ = ledger; }

    /**
     * Attach a host-side KV swap tier (kv/kv_tier.h). Requests begun
     * afterwards may park their KV on the host when preempted instead
     * of recomputing it — SuspendedEngineRequest::evictKv() makes the
     * roofline swap-vs-recompute call per tree, and touches restore
     * parked nodes for transfer time (Phase::Transfer). The tier must
     * outlive the engine and every suspended request handle; pass
     * nullptr to detach. Serving with a tier attached but never
     * preempting is byte-identical to serving without one.
     */
    void attachHostTier(HostKvTier *tier) { hostTier_ = tier; }

    /** The attached host tier (nullptr when untiered). */
    [[nodiscard]] HostKvTier *hostTier() const { return hostTier_; }

    /**
     * Attach the global cross-request prefix cache
     * (kv/prefix_index.h). Requests begun afterwards look their
     * prompt up first and mount the longest cached prefix instead of
     * prefilling it (saved tokens land in KvStats::prefixHitTokens);
     * finishRequest() publishes the prompt back for later requests.
     * The index must outlive the engine and every suspended request
     * handle. Pass nullptr to detach.
     */
    void attachPrefixIndex(PrefixIndex *index) { prefixIndex_ = index; }

    /** The attached prefix cache (nullptr when disabled). */
    [[nodiscard]] PrefixIndex *prefixIndex() const { return prefixIndex_; }

    /** Combined generator+verifier KV footprint of one cached prompt
     *  token (bytes) — the per-token cost of a mounted prefix. */
    [[nodiscard]] double promptKvBytesPerToken() const;

    /** KV budget shared by the two models (bytes). */
    [[nodiscard]] double kvBudgetBytes() const { return kvBudget_; }

    /** Clock of the last run (utilization trace when recordTrace). */
    [[nodiscard]] const SimClock &clock() const;

    /** Allocation plan of the last iteration. */
    [[nodiscard]] const AllocationPlan &currentPlan() const;

    /** Per-iteration snapshots of the last run. */
    [[nodiscard]] const std::vector<IterationStats> &
    iterationStats() const;

    /** Generator-side KV cache (introspection for benches/tests). */
    [[nodiscard]] const KvCacheManager &generatorKv() const;

    /** Verifier-side KV cache. */
    [[nodiscard]] const KvCacheManager &verifierKv() const;

    /** Step-length histogram access: samples recorded per step index
     *  of the last run (for Fig. 3 right). */
    [[nodiscard]] const std::vector<std::vector<int>> &
    stepTokenSamples() const;

    /** Beams forcibly terminated because they could never fit. */
    [[nodiscard]] int forcedTerminations() const;

    /**
     * Graceful-degradation override (serving layer, fault pressure):
     * while set, replan() disables speculative beam extension and
     * LookAhead verification regardless of the memory heuristics.
     * Speculation and scheduling affect only *when* tokens
     * materialise, never *what* a beam samples, so degraded waves
     * keep producing identical solutions — they just stop spending
     * device time on work that transient faults would waste.
     */
    void setDegraded(bool degraded) { degraded_ = degraded; }

    /** Whether the degradation override is active. */
    [[nodiscard]] bool degraded() const { return degraded_; }

  private:
    struct ActiveBeam;
    struct SpecBranch;

    // --- Request lifecycle ---
    void resetRequestState(const Problem &problem,
                           bool defer_prompt_prefill);
    void replan();
    int prefillPromptChunk(int max_tokens);
    void runGenerationPhase();
    void runVerificationPhase();
    void runSelectionPhase();

    // --- Generation helpers ---
    bool admitBeam(size_t idx);
    void fillSpeculativeSlots();
    void finishStandardBeam(size_t idx);
    void killAllSpeculation();
    void chargeRecompute(int tokens);
    void chargeSwapIn(double bytes);
    double currentAvgContext() const;

    // --- Bookkeeping ---
    void completeBeam(ActiveBeam &beam, double score);
    void pruneBeam(ActiveBeam &beam);
    void releaseBranch(SpecBranch &branch);

    FastTtsConfig config_;
    ModelConfig models_;
    DeviceSpec device_;
    DatasetProfile dataset_;
    const SearchAlgorithm &algorithm_;

    RooflineModel roofline_;
    SyntheticGenerator generator_;
    SyntheticVerifier verifier_;
    SpeculativePolicy specPolicy_;
    std::unique_ptr<MemoryPlanner> planner_;
    std::unique_ptr<BeamScheduler> scheduler_;

    double kvBudget_ = 0;
    double expectedStepTokens_ = 0; //!< Cached mean step length.
    bool degraded_ = false; //!< Fault-pressure degradation override.
    KvBudgetLedger *ledger_ = nullptr; //!< Shared KV budget (optional).
    HostKvTier *hostTier_ = nullptr;   //!< Host swap tier (optional).
    PrefixIndex *prefixIndex_ = nullptr; //!< Cross-request prefix
                                         //!< cache (optional).

    // All per-request state lives here; exactly one context is
    // mounted at a time (suspendRequest/resumeRequest swap it).
    std::unique_ptr<RequestContext> ctx_;
};

/**
 * A request context unmounted from its engine by suspendRequest().
 *
 * Move-only owner of the parked request's entire engine state. The
 * request's KV trees keep their device blocks (and shared-ledger
 * charge) while parked; evictKv() drops them back to the pool, after
 * which the next resume rebuilds resident paths lazily, charged as
 * recompute. Destroying the handle abandons the request and frees
 * everything.
 */
class SuspendedEngineRequest
{
  public:
    SuspendedEngineRequest();
    ~SuspendedEngineRequest();
    SuspendedEngineRequest(SuspendedEngineRequest &&) noexcept;
    SuspendedEngineRequest &operator=(SuspendedEngineRequest &&) noexcept;

    /** Whether this handle holds a parked request. */
    [[nodiscard]] bool valid() const { return ctx_ != nullptr; }

    /** Device bytes the parked request's KV trees still hold. */
    [[nodiscard]] double residentKvBytes() const;

    /** Prompt tokens still awaiting chunked prefill (0 when the
     *  request began with an up-front prompt prefill). */
    [[nodiscard]] int promptTokensPending() const;

    /** Beams still active in the parked request (batch schedulers
     *  budget decode waves with this). */
    [[nodiscard]] int activeBeams() const;

    /** PrefixIndex node the request mounted at beginRequest (0 when
     *  no prefix matched or the cache is off) — requests with equal
     *  nonzero keys share resident prefix KV, which the batch
     *  scheduler uses as a co-scheduling affinity tiebreak. */
    [[nodiscard]] uint64_t prefixKey() const;

    /**
     * Borrow the parked context for FastTtsEngine::stepBatch().
     * Ownership stays with the handle; the pointer is valid until the
     * handle is moved-from, reset or destroyed. Null when !valid().
     */
    [[nodiscard]] FastTtsEngine::RequestContext *context() const
    {
        return ctx_.get();
    }

    /**
     * Force-evict the parked request's KV state (KvSession::suspend
     * on both trees): every block returns to the allocator and shared
     * ledger; the request's beams keep logical references and
     * recompute their paths — counted in KvStats — when next run.
     * @return Tokens whose KV was dropped.
     */
    long evictKv();

  private:
    friend class FastTtsEngine;
    std::unique_ptr<FastTtsEngine::RequestContext> ctx_;
};

} // namespace fasttts

#endif // FASTTTS_CORE_ENGINE_H
