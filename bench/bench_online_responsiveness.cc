/**
 * @file
 * Online responsiveness under load (not a single paper figure; it
 * quantifies the Sec. 4.1.2 deployment claim that FastTTS keeps the
 * edge device responsive for interactive agentic use).
 *
 * A stream of TTS requests (Poisson or heavy-tailed bursty arrivals)
 * is served by one device under a pluggable admission policy with up
 * to --max-inflight requests interleaved; we report mean/p50/p95/p99
 * end-to-end latency, queueing delay and SLO attainment for the
 * baseline and FastTTS at increasing arrival rates. Shorter service
 * times compound through the queue, so FastTTS's advantage grows with
 * load.
 */

#include <iostream>
#include <string>
#include <vector>

#include "api/engine_args.h"
#include "core/online_server.h"
#include "util/table.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    EngineArgs defaults;
    defaults.numProblems = 10;
    defaults.dataset = "AMC";
    defaults.numBeams = 32;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Online serving responsiveness under load (arrival rates swept; "
        "--problems sets the request count, --policy/--max-inflight/"
        "--slo/--arrivals/--preempt/--kv-budget/--shed-doomed/"
        "--batching/--prefix-cache the queueing discipline, "
        "--faults/--retry-max the fault-tolerance machinery, "
        "--kv-tier/--victim-select the KV offload hierarchy)",
        {"--problems", "--dataset", "--seed", "--beams", "--policy",
         "--max-inflight", "--slo", "--arrivals", "--preempt",
         "--kv-budget", "--shed-doomed", "--batching",
         "--max-batched-tokens", "--prefill-chunk", "--prefix-cache",
         "--prefix-cache-budget", "--faults", "--fault-plan",
         "--retry-max", "--retry-backoff", "--request-timeout",
         "--kv-tier", "--host-kv-budget", "--host-bandwidth",
         "--victim-select"});
    const int requests = args.numProblems;
    const OnlineServerOptions online = args.toOnlineOptions();

    Table table("Online serving under " + args.arrivals + " load - "
                + args.dataset + " 1.5B+1.5B n="
                + std::to_string(args.numBeams) + ", RTX4090, policy="
                + online.policy + ", K="
                + std::to_string(online.maxInflight));
    table.setHeader({"arrival rate /s", "system", "mean latency s",
                     "p50 s", "p95 s", "p99 s", "mean queue s",
                     "slo att %", "device util"});
    for (double rate : {0.01, 0.05, 0.2}) {
        const std::vector<double> arrivals =
            makeArrivalTrace(args.arrivals, requests, rate, args.seed)
                .value();
        for (const bool fast : {false, true}) {
            ServingOptions opts = args.toServingOptions().value();
            opts.config = fast ? FastTtsConfig::fastTts()
                               : FastTtsConfig::baseline();
            OnlineServer server =
                OnlineServer::create(opts, online).value();
            const auto out = server.serveArrivals(arrivals);
            table.addRow({formatDouble(rate, 2),
                          fast ? "fasttts" : "baseline",
                          formatDouble(out.meanLatency, 1),
                          formatDouble(out.p50Latency, 1),
                          formatDouble(out.p95Latency, 1),
                          formatDouble(out.p99Latency, 1),
                          formatDouble(out.meanQueueDelay, 1),
                          online.slo > 0
                              ? formatDouble(100.0 * out.sloAttainment, 1)
                              : "-",
                          formatDouble(out.utilization, 2)});
        }
    }
    table.setCaption("Expectation: FastTTS's shorter service times "
                     "compound through the queue, widening the latency "
                     "gap as the arrival rate approaches saturation.");
    table.print(std::cout);
    return 0;
}
