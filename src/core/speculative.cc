#include "core/speculative.h"

#include <algorithm>
#include <cmath>

namespace fasttts
{

SpeculativePolicy::SpeculativePolicy(int branch_factor,
                                     double truncation_ratio)
    : branchFactor_(std::max(1, branch_factor)),
      truncationRatio_(std::clamp(truncation_ratio, 0.0, 1.0))
{
}

SpeculativePolicy::ScoreBins
SpeculativePolicy::scoreBins(const std::vector<double> &scores) const
{
    ScoreBins bins;
    if (scores.empty())
        return bins;
    bins.empty = false;
    bins.lo = scores[0];
    bins.hi = scores[0];
    for (double s : scores) {
        bins.lo = std::min(bins.lo, s);
        bins.hi = std::max(bins.hi, s);
    }
    return bins;
}

int
SpeculativePolicy::speculativePotential(
    double prev_score, const std::vector<double> &scores) const
{
    return binnedPotential(prev_score, scoreBins(scores));
}

int
SpeculativePolicy::binnedPotential(double prev_score,
                                   const ScoreBins &bins) const
{
    if (bins.empty)
        return 1;
    if (bins.hi <= bins.lo)
        return branchFactor_; // All equal: everyone is in the top bin.
    // Bin j (1-based, C_1 highest): equal-width partition of [lo, hi].
    const double frac = (prev_score - bins.lo) / (bins.hi - bins.lo);
    const int from_top = static_cast<int>((1.0 - frac) * branchFactor_);
    const int j = std::clamp(from_top + 1, 1, branchFactor_);
    return branchFactor_ - j + 1;
}

int
SpeculativePolicy::truncationKeep(int spec_len, Rng &rng) const
{
    if (spec_len <= 0)
        return 0;
    const double mean = truncationRatio_ * spec_len;
    const double sd = 0.1 * spec_len;
    const int keep = static_cast<int>(std::lround(rng.normal(mean, sd)));
    return std::clamp(keep, 0, spec_len);
}

} // namespace fasttts
