/**
 * @file
 * Paged KV-cache block accounting.
 *
 * vLLM's PagedAttention removes fragmentation by allocating KV memory
 * in fixed-size token blocks; what remains observable to the scheduler
 * is the block *count*. The simulator therefore models the pool as a
 * counted resource with high-water-mark statistics rather than tracking
 * individual page addresses.
 */

#ifndef FASTTTS_KV_BLOCK_ALLOCATOR_H
#define FASTTTS_KV_BLOCK_ALLOCATOR_H

#include <cstddef>
#include <cstdint>

namespace fasttts
{

/**
 * Fixed pool of KV blocks.
 */
class BlockAllocator
{
  public:
    /**
     * @param total_blocks Pool capacity in blocks.
     */
    explicit BlockAllocator(size_t total_blocks);

    /** Try to allocate n blocks; returns false (no change) on failure. */
    [[nodiscard]] bool allocate(size_t n);

    /** Return n blocks to the pool. Releasing more than used() is a
     *  caller accounting bug: the release is clamped to used() and
     *  counted in clampedReleases() — identically in all build modes. */
    void release(size_t n);

    /** Pool capacity. */
    [[nodiscard]] size_t total() const { return total_; }

    /** Blocks currently allocated. */
    [[nodiscard]] size_t used() const { return used_; }

    /** Blocks currently free. */
    [[nodiscard]] size_t free() const { return total_ - used_; }

    /** Highest simultaneous usage seen. */
    [[nodiscard]] size_t peakUsed() const { return peakUsed_; }

    /** Number of allocation calls that failed for lack of space. */
    [[nodiscard]] uint64_t failedAllocations() const { return failed_; }

    /** Number of release calls clamped because they exceeded used(). */
    [[nodiscard]] uint64_t clampedReleases() const
    {
        return clampedReleases_;
    }

    /** Grow or shrink the pool (re-planning by the memory allocator).
     *  Shrinking below used() clamps capacity to used(). */
    void resize(size_t total_blocks);

  private:
    size_t total_;
    size_t used_ = 0;
    size_t peakUsed_ = 0;
    uint64_t failed_ = 0;
    uint64_t clampedReleases_ = 0;
};

} // namespace fasttts

#endif // FASTTTS_KV_BLOCK_ALLOCATOR_H
