/**
 * @file
 * Reproduces paper Fig. 6: normalized throughput vs. KV cache size for
 * the prefill and decoding stages.
 *
 * For each KV budget, the achievable batch is budget / KV-per-sequence
 * and throughput follows the roofline. Expectation: prefill reaches
 * 80% of peak with well under 1 GB of KV; decoding needs roughly
 * 5-10x more memory for the same relative throughput.
 */

#include <iostream>
#include <vector>

#include "api/engine_args.h"
#include "model/model_spec.h"
#include "sim/roofline.h"
#include "util/table.h"
#include "util/units.h"

using namespace fasttts;

namespace
{

double
prefillThroughput(const RooflineModel &roofline, const ModelSpec &model,
                  double kv_bytes, double seq)
{
    const int batch =
        std::max(1, static_cast<int>(kv_bytes / model.kvBytes(seq)));
    return batch * seq / roofline.prefillTime(model, batch, seq);
}

double
decodeThroughput(const RooflineModel &roofline, const ModelSpec &model,
                 double kv_bytes, double seq)
{
    const int batch =
        std::max(1, static_cast<int>(kv_bytes / model.kvBytes(seq)));
    return batch / roofline.decodeStepTime(model, batch, seq / 2);
}

} // namespace

int
main(int argc, char **argv)
{
    // Fixed configuration: parsed only for --help and to reject
    // unsupported flags; the parsed values are deliberately unused.
    (void)EngineArgs::parseOrExit(
        argc, argv, EngineArgs(),
        "Fig.6 normalized throughput vs KV size (analytic roofline "
        "sweep; the figure's configuration is fixed)",
        {});

    RooflineModel roofline(rtx4090());
    const ModelSpec model = qwen25Math1_5B();
    const std::vector<double> budgets_gib = {0.05,  0.1, 0.2, 0.39, 0.5,
                                             0.98,  1.5, 3.06, 5.18, 8.0,
                                             12.0};

    for (const bool prefill : {true, false}) {
        Table table(prefill
                        ? "Fig.6 prefill: normalized throughput vs KV "
                          "size (seq 640 / 1152)"
                        : "Fig.6 decoding: normalized throughput vs KV "
                          "size (seq 512 / 1024)");
        const double seq_a = prefill ? 640 : 512;
        const double seq_b = prefill ? 1152 : 1024;
        table.setHeader({"KV GiB", "norm tp % (short seq)",
                         "norm tp % (long seq)"});
        const double peak_a = prefill
            ? prefillThroughput(roofline, model, 64 * GiB, seq_a)
            : decodeThroughput(roofline, model, 64 * GiB, seq_a);
        const double peak_b = prefill
            ? prefillThroughput(roofline, model, 64 * GiB, seq_b)
            : decodeThroughput(roofline, model, 64 * GiB, seq_b);
        double cross80_a = -1;
        for (double gib : budgets_gib) {
            const double tp_a = prefill
                ? prefillThroughput(roofline, model, gib * GiB, seq_a)
                : decodeThroughput(roofline, model, gib * GiB, seq_a);
            const double tp_b = prefill
                ? prefillThroughput(roofline, model, gib * GiB, seq_b)
                : decodeThroughput(roofline, model, gib * GiB, seq_b);
            if (cross80_a < 0 && tp_a >= 0.8 * peak_a)
                cross80_a = gib;
            table.addRow({formatDouble(gib, 2),
                          formatDouble(100 * tp_a / peak_a, 1),
                          formatDouble(100 * tp_b / peak_b, 1)});
        }
        table.setCaption(
            std::string("80% of peak first reached at ~")
            + formatDouble(cross80_a, 2) + " GiB.  Paper: prefill "
            "saturates at 0.39-0.98 GiB; decoding needs 3.06-5.18 GiB "
            "(5-10x more).");
        table.print(std::cout);
    }
    return 0;
}
