/**
 * @file
 * ServingSystem: the request-level public API of the library.
 *
 * Mirrors the paper's deployment model (Sec. 5): pick a device, a
 * generator+verifier configuration, a dataset workload and a TTS
 * search strategy, then serve requests. Construction is fallible and
 * exception-free: ServingSystem::create() resolves every name through
 * the extensible registries (deviceRegistry(), datasetRegistry(),
 * algorithmRegistry(), modelConfigRegistry()) and returns a Status
 * with the valid names on any unknown name — never a silent default.
 *
 * Two serving styles share one engine:
 *
 *  - Batch: serve(problem) runs one request to completion;
 *    serveProblems(n) serves a prefix of the dataset's deterministic
 *    problem set and aggregates metrics.
 *  - Request-level async: submit(problem, callbacks) enqueues a
 *    request and returns a RequestId; each step() call advances the
 *    in-flight request by one TTS iteration, firing per-request
 *    onStep/onComplete callbacks; cancel(id) aborts a queued or
 *    running request. Queueing policy (e.g. OnlineServer's FIFO
 *    arrival queue) is thereby decoupled from engine pumping.
 *    suspend(id)/resume(id) give true request-level preemption: the
 *    running request's whole engine state is parked (beams, clocks,
 *    KV trees) so another request can take the engine, and
 *    evictSuspendedKv(id) drops a parked request's KV back to the
 *    shared pool (rebuilt lazily as recompute) — the mechanism
 *    OnlineServer time-shares one device with.
 *
 * Typical use (see examples/quickstart.cc; string-friendly
 * configuration via EngineArgs in api/engine_args.h):
 *
 *   ServingOptions opts;
 *   opts.algorithmName = "beam_search";
 *   opts.numBeams = 32;
 *   auto system = ServingSystem::create(opts);
 *   if (!system.ok()) { ... system.status().message() ... }
 *   BatchResult out = system->serveProblems(8);
 */

#ifndef FASTTTS_CORE_SERVING_H
#define FASTTTS_CORE_SERVING_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/status.h"
#include "core/config.h"
#include "core/engine.h"
#include "kv/prefix_index.h"
#include "metrics/request_metrics.h"
#include "model/model_spec.h"
#include "model/workload.h"
#include "sim/device.h"

namespace fasttts
{

class FaultInjector;

/** Everything needed to stand up one serving stack. */
struct ServingOptions
{
    FastTtsConfig config = FastTtsConfig::fastTts();
    ModelConfig models = config1_5Bplus1_5B();
    std::string deviceName = "RTX4090";
    std::string datasetName = "AIME";
    std::string algorithmName = "beam_search";
    int numBeams = 32;       //!< Search width n.
    int branchFactor = 4;    //!< B for tree-search methods.
    uint64_t seed = 2026;    //!< Master seed for the problem set.
    int problemCount = 256;  //!< Size of the generated problem set.
};

/** Batch-level aggregation over served problems. */
struct BatchResult
{
    std::vector<RequestResult> requests;

    double meanGoodput = 0;        //!< Precise Goodput (tokens/s).
    double meanLatency = 0;        //!< Completion time (s).
    double meanGeneratorTime = 0;
    double meanVerifierTime = 0;
    double top1Accuracy = 0;       //!< Majority-vote accuracy.
    double passAt1 = 0;
    double passAtNHalf = 0;        //!< Pass@(n/2).
    double passAtNAccuracy = 0;    //!< Pass@n.
};

/** Identity of one submitted request (process-unique, never reused). */
using RequestId = uint64_t;

/** Lifecycle state of a submitted request. */
enum class RequestState {
    Queued,    //!< Submitted, not yet started.
    Running,   //!< In flight on the engine.
    Suspended, //!< Preempted mid-flight; resume() continues it.
    Completed, //!< Finished; result() is available.
    Cancelled, //!< Aborted by cancel(); no result.
};

/** Progress notification delivered after each engine iteration. */
struct StepEvent
{
    RequestId id = 0;
    int iteration = 0;   //!< Iterations completed so far (1-based).
    int activeBeams = 0; //!< Beams still active after the iteration.
    double clock = 0;    //!< Engine-internal time (s) so far.
};

/** Per-request observers; default-constructed means "no callbacks". */
struct RequestCallbacks
{
    /** Fired after every engine iteration of this request. */
    std::function<void(const StepEvent &)> onStep;

    /** Fired once when the request completes (not when cancelled). */
    std::function<void(RequestId, const RequestResult &)> onComplete;
};

/**
 * What one wave advance accomplished — the first-class result of
 * ServingSystem::step()/stepBatch() so callers no longer re-derive
 * progress from engine counters. Contextually convertible to bool
 * ("is there more work?"), so `while (system.step())` keeps working.
 */
struct ScheduleOutcome
{
    bool moreWork = false;    //!< Queued or running work remains.
    int requestsAdvanced = 0; //!< Requests that ran this wave.
    int requestsSuspended = 0; //!< Wave participants still parked
                               //!< (continuous batching; 0 for step()).
    long tokensDecoded = 0;   //!< Generator tokens drawn this wave.
    int prefillChunks = 0;    //!< Chunked-prefill slices executed.
    double waveTime = 0;      //!< Device time consumed by the wave (s).

    explicit operator bool() const { return moreWork; }
};

/** Result of one co-scheduled batch wave (stepBatch). */
struct BatchStepOutcome
{
    ScheduleOutcome schedule;
    /** Per-member outcome, parallel to the id list passed in. */
    std::vector<BatchMemberOutcome> members;
};

/** Batch-planning view of a suspended request (suspendedInfo()). */
struct SuspendedRequestInfo
{
    int promptTokensPending = 0; //!< Prompt left to chunk-prefill.
    int activeBeams = 0;         //!< Beams a decode wave advances.
    double residentKvBytes = 0;  //!< Device bytes its KV still holds.
    uint64_t prefixKey = 0;      //!< PrefixIndex node mounted at
                                 //!< admission (0 = none): equal
                                 //!< nonzero keys share prefix KV
                                 //!< (scheduler affinity tiebreak).
};

/**
 * One configured serving stack (device + models + search).
 *
 * Move-only; obtain instances through create().
 */
class ServingSystem
{
  public:
    /**
     * Build a serving stack, resolving every name in the options
     * through the registries. Unknown names and out-of-range widths
     * are errors (kNotFound / kInvalidArgument).
     */
    static StatusOr<ServingSystem> create(const ServingOptions &options);

    ~ServingSystem();

    ServingSystem(const ServingSystem &) = delete;
    ServingSystem &operator=(const ServingSystem &) = delete;
    ServingSystem(ServingSystem &&) = default;
    ServingSystem &operator=(ServingSystem &&) = default;

    // --- Batch serving ---

    /**
     * Serve one problem to completion (synchronous). The engine runs
     * one request at a time, so any pending async work is drained
     * first — a sync call can never corrupt an in-flight request.
     */
    [[nodiscard]] RequestResult serve(const Problem &problem);

    /**
     * Serve the first num_problems of the dataset's problem set
     * (implemented on the async submit/step path) and aggregate.
     */
    [[nodiscard]] BatchResult serveProblems(int num_problems);

    // --- Request-level async serving ---

    /**
     * Enqueue a request. Requests start in submission order; the
     * engine serves one request at a time (a TTS request is itself a
     * device-filling parallel job).
     */
    [[nodiscard]] RequestId submit(const Problem &problem,
                     RequestCallbacks callbacks = {});

    /**
     * Advance serving by one engine iteration: admit the next queued
     * request if none is running, run one iteration, fire callbacks.
     * @return A ScheduleOutcome that is truthy while queued or
     *         running work remains, carrying what the wave did.
     */
    ScheduleOutcome step();

    /**
     * Start a queued request directly into the Suspended state: the
     * engine begins it (prompt KV node created) and immediately parks
     * the context, leaving the engine idle. Continuous batching mounts
     * such parked contexts wave by wave via stepBatch(). With
     * defer_prompt true the prompt prefill is NOT charged up front —
     * the batch scheduler feeds it in chunks instead.
     * @return kNotFound for unknown ids, kFailedPrecondition unless
     *         the request is queued and the engine is idle.
     */
    Status startSuspended(RequestId id, bool defer_prompt);

    /**
     * Advance every listed suspended request in one fused engine wave
     * according to `plan` (sched/batch_scheduler.h). Members that
     * finish are completed (onComplete fires; per-iteration onStep
     * callbacks do NOT fire from batched waves); the rest stay
     * Suspended. Plan entries index into `ids`.
     * @return kFailedPrecondition unless every id is Suspended.
     */
    StatusOr<BatchStepOutcome>
    stepBatch(const std::vector<RequestId> &ids, const BatchPlan &plan);

    /**
     * Scheduling view of a suspended request — what a batch scheduler
     * needs to build its BatchCandidate.
     * @return kNotFound for unknown ids, kFailedPrecondition unless
     *         the request is suspended.
     */
    StatusOr<SuspendedRequestInfo> suspendedInfo(RequestId id) const;

    /** step() until no submitted request remains unfinished. */
    void drain();

    /**
     * Preempt the running request: its entire engine state (beams,
     * clock, KV trees) is parked and the engine becomes free for
     * another request. The parked KV stays resident — and keeps its
     * shared-budget charge — until the serving layer evicts it
     * (evictSuspendedKv) or the request is resumed/cancelled.
     * @return kNotFound for unknown ids, kFailedPrecondition unless
     *         the request is the one currently running.
     */
    Status suspend(RequestId id);

    /**
     * Continue a suspended request where it left off. The engine must
     * be idle (suspend or finish the current request first); the
     * resumed request runs on the next step().
     * @return kNotFound for unknown ids, kFailedPrecondition when the
     *         request is not suspended or another request is running.
     */
    Status resume(RequestId id);

    /**
     * Drop a suspended request's KV from the device (both trees),
     * returning every block to the allocator and shared ledger. The
     * request remains resumable: evicted paths are re-prefilled
     * lazily when next touched, counted as recompute in its KvStats.
     * @return Tokens whose KV was dropped; kFailedPrecondition unless
     *         the request is suspended.
     */
    StatusOr<long> evictSuspendedKv(RequestId id);

    /**
     * Abort a queued, running or suspended request. Running requests
     * abandon their active beams immediately; no onComplete fires.
     * The prompt is NOT published to the prefix cache and the
     * request's prefix pin is released on every path, so an aborted
     * request never leaves pinned (uncollectable) index nodes behind.
     * @return kNotFound for unknown ids, kFailedPrecondition when the
     *         request already completed.
     */
    Status cancel(RequestId id);

    /**
     * cancel() with an attributed failure: `reason` (non-ok, e.g.
     * kDeadlineExceeded for a watchdog abort or kUnavailable for an
     * injected device error) is stored and surfaced by result() in
     * place of the generic was-cancelled error, so callers can branch
     * on Status::isRetryable().
     */
    Status cancelWith(RequestId id, Status reason);

    /** Lifecycle state of a submitted request (kNotFound if unknown). */
    StatusOr<RequestState> requestState(RequestId id) const;

    /**
     * Result of a completed request (kFailedPrecondition while it is
     * queued/running, kNotFound for unknown or cancelled ids; a
     * request aborted via cancelWith() returns its stored reason).
     */
    StatusOr<RequestResult> result(RequestId id) const;

    /** Submitted requests not yet completed or cancelled. */
    [[nodiscard]] size_t pendingRequests() const;

    /**
     * Drop the record of a completed or cancelled request (its result
     * becomes unavailable). Long-lived systems should release
     * requests they are done with; records are otherwise kept so
     * result() stays answerable. kFailedPrecondition while the
     * request is still queued/running (cancel it first), kNotFound
     * for unknown ids.
     */
    Status release(RequestId id);

    // --- Introspection ---

    /**
     * Attach a shared KV byte budget (kv/kv_session.h) that every
     * subsequently started request charges — the single-device memory
     * model OnlineServer serves under. The ledger must outlive the
     * system.
     */
    void attachKvLedger(KvBudgetLedger *ledger)
    {
        engine_->attachKvLedger(ledger);
    }

    /**
     * Attach a host-side KV swap tier (kv/kv_tier.h) that preempted
     * requests may park their KV on instead of recomputing it — the
     * device->host hierarchy behind --kv-tier host. The tier must
     * outlive the system; pass nullptr to detach.
     */
    void attachHostTier(HostKvTier *tier)
    {
        engine_->attachHostTier(tier);
    }

    /**
     * Enable the global cross-request prefix cache
     * (kv/prefix_index.h): one radix index, owned by this system,
     * that every subsequently started request queries (mounting the
     * longest cached prompt prefix instead of prefilling it) and
     * publishes back to on completion. `budget_bytes` caps the
     * index's resident KV; with `ledger` non-null the cached bytes
     * are additionally charged to that shared budget, so cached
     * prefixes and in-flight KV contend for the same device memory.
     * Call at most once, before any request starts; the ledger must
     * outlive this system.
     */
    void enablePrefixCache(double budget_bytes, KvBudgetLedger *ledger);

    /**
     * Thread a deterministic fault injector
     * (util/fault_injector.h) through the system's layers: currently
     * the prefix index (FaultSite::kPrefixAcquire). Call order with
     * enablePrefixCache() does not matter; the injector must outlive
     * the system. Pass nullptr to detach.
     */
    void attachFaultInjector(FaultInjector *injector);

    /** The prefix cache (nullptr when not enabled). */
    [[nodiscard]] const PrefixIndex *prefixIndex() const
    {
        return prefixIndex_.get();
    }

    /** The options the system was built with. */
    [[nodiscard]] const ServingOptions &options() const
    {
        return options_;
    }

    /** Underlying engine (introspection for benches). */
    FastTtsEngine &engine() { return *engine_; }
    const FastTtsEngine &engine() const { return *engine_; }

    /** The deterministic problem set this system serves. */
    [[nodiscard]] const std::vector<Problem> &problems() const
    {
        return problems_;
    }

  private:
    struct Request
    {
        Problem problem;
        RequestCallbacks callbacks;
        RequestState state = RequestState::Queued;
        RequestResult result;
        Status failure; //!< Abort reason (cancelWith); ok otherwise.
        int iterations = 0;
        SuspendedEngineRequest suspended; //!< Parked engine context
                                          //!< while state==Suspended.
    };

    ServingSystem(const ServingOptions &options, DatasetProfile dataset,
                  std::unique_ptr<SearchAlgorithm> algorithm,
                  const DeviceSpec &device);

    /** Pop cancelled entries and begin the next queued request. */
    void admitNext();

    ServingOptions options_;
    DatasetProfile dataset_;
    std::unique_ptr<SearchAlgorithm> algorithm_;
    //!< Declared before engine_ and requests_: suspended contexts
    //!< release their prefix pins on destruction, so the index must
    //!< be destroyed last.
    std::unique_ptr<PrefixIndex> prefixIndex_;
    std::unique_ptr<FastTtsEngine> engine_;
    std::vector<Problem> problems_;
    FaultInjector *faultInjector_ = nullptr; //!< Borrowed (optional).

    // --- Async state ---
    std::unordered_map<RequestId, Request> requests_;
    std::deque<RequestId> queue_;
    RequestId running_ = 0; //!< 0 = none (ids start at 1).
    RequestId nextId_ = 1;
};

/** Aggregate a set of request results into a BatchResult. Safe on an
 *  empty set: every aggregate field stays zero. */
[[nodiscard]] BatchResult
aggregateResults(std::vector<RequestResult> requests, int num_beams);

} // namespace fasttts

#endif // FASTTTS_CORE_SERVING_H
