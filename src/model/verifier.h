/**
 * @file
 * Synthetic discriminative Process Reward Model (PRM).
 *
 * The paper's verifiers (Math-Shepherd-7B, Skywork-1.5B) are sequence
 * classifiers: one forward pass over a reasoning path yields a score
 * per intermediate step (Sec. 2.2). The simulator models the score as
 * a noisy sigmoid observation of the path's latent quality; verifier
 * scale controls the noise, so a 7B PRM ranks candidates more reliably
 * than a 1.5B one. Consecutive-step score correlation — the property
 * Speculative Candidate Selection exploits (Sec. 4.1.1) — arises
 * naturally because quality is a random walk.
 */

#ifndef FASTTTS_MODEL_VERIFIER_H
#define FASTTTS_MODEL_VERIFIER_H

#include "model/model_spec.h"
#include "util/rng.h"

namespace fasttts
{

/**
 * Noisy observer of latent path quality.
 */
class SyntheticVerifier
{
  public:
    explicit SyntheticVerifier(const ModelSpec &spec);

    /** Model architecture backing this verifier. */
    const ModelSpec &spec() const { return spec_; }

    /**
     * Score one newly generated step.
     * @param quality Latent quality of the path after the step.
     * @param rng The beam's verifier RNG stream.
     * @return PRM score in (0, 1); higher is better.
     */
    double scoreStep(double quality, Rng &rng) const;

    /** Observation noise (sd); smaller for larger verifiers. */
    double noiseSd() const { return noiseSd_; }

  private:
    ModelSpec spec_;
    double noiseSd_;
};

} // namespace fasttts

#endif // FASTTTS_MODEL_VERIFIER_H
