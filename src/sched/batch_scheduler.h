/**
 * @file
 * Wave-level batch scheduler for continuous cross-request batching.
 *
 * PR 5's shared-engine refactor made every in-flight request's state
 * co-resident on one engine, but the server still time-slices: exactly
 * one request decodes per engine wave. This scheduler produces the
 * BatchPlan that fuses decode work from *different* requests into one
 * wave under a token budget — the omniserve/vLLM continuous-batching
 * design (max_num_batched_tokens with a prefill/decode phase split):
 *
 *  - Decode first: requests already past their prompt always keep
 *    decoding, so a long prompt can never stall resident decoders.
 *  - Chunked prefill second: leftover token budget is handed to
 *    requests still prefilling their prompt, at most one chunk of
 *    `prefillChunk` tokens per request per wave.
 *  - Progress guarantee: the plan is never empty while any candidate
 *    has work, even when a single request's demand exceeds the
 *    budget (a budget that admits nobody would deadlock the server).
 *
 * The scheduler is a pure, deterministic function of its candidate
 * list — policy questions (admission order, preemption, shedding)
 * stay in OnlineServer/QueuePolicy; this class only packs one wave.
 */

#ifndef FASTTTS_SCHED_BATCH_SCHEDULER_H
#define FASTTTS_SCHED_BATCH_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fasttts
{

/** What one BatchPlan entry tells the engine to do for a member. */
enum class BatchWorkKind
{
    Decode,       //!< One full TTS iteration (all active beams).
    PrefillChunk, //!< Prefill up to `tokens` prompt tokens.
};

/** One request's share of a wave. */
struct BatchPlanEntry
{
    size_t member = 0; //!< Caller-defined candidate index.
    BatchWorkKind kind = BatchWorkKind::Decode;
    int tokens = 0;    //!< Budgeted tokens (decode estimate or chunk).
};

/** The work of one fused engine wave. */
struct BatchPlan
{
    std::vector<BatchPlanEntry> entries;
    long plannedTokens = 0; //!< Sum of entry token budgets.

    [[nodiscard]] bool empty() const { return entries.empty(); }

    /** Planned decode members (the wave's batch occupancy). */
    [[nodiscard]] int decodeMembers() const;
};

/** What the scheduler knows about one schedulable request. */
struct BatchCandidate
{
    size_t member = 0;      //!< Index the plan refers back to.
    int promptRemaining = 0; //!< Prompt tokens still to prefill;
                             //!< > 0 means the request cannot decode.
    int decodeTokens = 0;   //!< Predicted tokens one decode iteration
                            //!< emits (active beams x expected step).
    uint64_t prefixKey = 0; //!< Shared-prefix affinity key (0 = none):
                            //!< candidates with equal nonzero keys
                            //!< mount the same PrefixIndex node, so
                            //!< co-scheduling them keeps the shared
                            //!< KV hot within one wave. Tiebreak
                            //!< only — never changes admission
                            //!< eligibility, and all-zero keys
                            //!< reproduce the unkeyed plan exactly.
};

/**
 * Packs one wave under --max-batched-tokens. Stateless and
 * deterministic: identical candidates yield identical plans, so
 * batched traces replay bit-for-bit.
 */
class BatchScheduler
{
  public:
    /**
     * @param max_batched_tokens Per-wave token budget (>= 1).
     * @param prefill_chunk Largest prompt slice per request per wave
     *        (>= 1).
     */
    BatchScheduler(int max_batched_tokens, int prefill_chunk);

    /**
     * Pack one wave: decode members in the given candidate order
     * while the budget lasts, then prefill chunks from the leftover
     * budget. Candidates with no work (no prompt left and
     * decodeTokens <= 0) are skipped. The first admissible candidate
     * is always admitted even when its demand alone exceeds the
     * budget (progress guarantee).
     *
     * Prefix-affinity tiebreak: before packing, candidates that share
     * a nonzero prefixKey are stably regrouped behind the first
     * occurrence of their key, so waves co-schedule requests whose
     * prompts mount the same cached prefix. With no duplicate nonzero
     * keys (in particular, the cache off) the order — and therefore
     * the plan — is bit-identical to the unkeyed scheduler.
     */
    [[nodiscard]] BatchPlan
    plan(const std::vector<BatchCandidate> &candidates) const;

    [[nodiscard]] int maxBatchedTokens() const { return maxBatchedTokens_; }
    [[nodiscard]] int prefillChunk() const { return prefillChunk_; }

  private:
    int maxBatchedTokens_;
    int prefillChunk_;
};

} // namespace fasttts

#endif // FASTTTS_SCHED_BATCH_SCHEDULER_H
