#include "core/serving.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/fault_injector.h"

namespace fasttts
{

StatusOr<ServingSystem>
ServingSystem::create(const ServingOptions &options)
{
    if (options.numBeams < 1)
        return Status::invalidArgument(
            "numBeams must be >= 1, got "
            + std::to_string(options.numBeams));
    if (options.branchFactor < 1)
        return Status::invalidArgument(
            "branchFactor must be >= 1, got "
            + std::to_string(options.branchFactor));
    if (options.problemCount < 0)
        return Status::invalidArgument(
            "problemCount must be >= 0, got "
            + std::to_string(options.problemCount));

    auto dataset = datasetByName(options.datasetName);
    if (!dataset.ok())
        return dataset.status();
    auto device = deviceByName(options.deviceName);
    if (!device.ok())
        return device.status();
    auto algorithm = makeAlgorithm(options.algorithmName,
                                   options.numBeams,
                                   options.branchFactor);
    if (!algorithm.ok())
        return algorithm.status();

    return ServingSystem(options, *std::move(dataset),
                         std::move(*algorithm), *device);
}

ServingSystem::ServingSystem(const ServingOptions &options,
                             DatasetProfile dataset,
                             std::unique_ptr<SearchAlgorithm> algorithm,
                             const DeviceSpec &device)
    : options_(options), dataset_(std::move(dataset)),
      algorithm_(std::move(algorithm))
{
    engine_ = std::make_unique<FastTtsEngine>(options.config,
                                              options.models, device,
                                              dataset_, *algorithm_);
    problems_ =
        makeProblems(dataset_, options.problemCount, options.seed);
}

ServingSystem::~ServingSystem() = default;

void
ServingSystem::enablePrefixCache(double budget_bytes,
                                 KvBudgetLedger *ledger)
{
    assert(prefixIndex_ == nullptr);
    prefixIndex_ = std::make_unique<PrefixIndex>(
        budget_bytes, engine_->promptKvBytesPerToken());
    if (ledger != nullptr)
        prefixIndex_->attachLedger(ledger);
    if (faultInjector_ != nullptr)
        prefixIndex_->attachFaultInjector(faultInjector_);
    engine_->attachPrefixIndex(prefixIndex_.get());
}

void
ServingSystem::attachFaultInjector(FaultInjector *injector)
{
    faultInjector_ = injector;
    if (prefixIndex_ != nullptr)
        prefixIndex_->attachFaultInjector(injector);
}

RequestResult
ServingSystem::serve(const Problem &problem)
{
    // The engine serves one request at a time: finish pending async
    // work before taking it over, so the in-flight request's state is
    // never clobbered mid-run.
    drain();
    return engine_->runRequest(problem);
}

BatchResult
ServingSystem::serveProblems(int num_problems)
{
    const int count =
        std::min<int>(num_problems, static_cast<int>(problems_.size()));

    std::vector<RequestResult> results;
    results.reserve(static_cast<size_t>(std::max(0, count)));
    std::vector<RequestId> ids;
    ids.reserve(static_cast<size_t>(std::max(0, count)));
    for (int i = 0; i < count; ++i)
        ids.push_back(submit(problems_[static_cast<size_t>(i)]));
    drain();
    for (const RequestId id : ids) {
        results.push_back(*result(id));
        checkOk(release(id)); // Batch-owned records; don't accumulate.
    }
    return aggregateResults(std::move(results), options_.numBeams);
}

RequestId
ServingSystem::submit(const Problem &problem, RequestCallbacks callbacks)
{
    const RequestId id = nextId_++;
    Request request;
    request.problem = problem;
    request.callbacks = std::move(callbacks);
    requests_.emplace(id, std::move(request));
    queue_.push_back(id);
    return id;
}

void
ServingSystem::admitNext()
{
    while (running_ == 0 && !queue_.empty()) {
        const RequestId id = queue_.front();
        queue_.pop_front();
        auto it = requests_.find(id);
        // Cancelled while queued (possibly already released); skip.
        if (it == requests_.end()
            || it->second.state == RequestState::Cancelled)
            continue;
        it->second.state = RequestState::Running;
        engine_->beginRequest(it->second.problem);
        running_ = id;
    }
}

ScheduleOutcome
ServingSystem::step()
{
    ScheduleOutcome outcome;
    admitNext();
    if (running_ == 0)
        return outcome;

    const RequestId id = running_;
    const double clock0 = engine_->clock().now();
    const long decoded0 = engine_->generatedTokensSoFar();
    const bool more = engine_->stepRequest();
    outcome.requestsAdvanced = 1;
    outcome.tokensDecoded = engine_->generatedTokensSoFar() - decoded0;
    outcome.waveTime = engine_->clock().now() - clock0;
    const int iterations = ++requests_.at(id).iterations;

    // Copy the callback out of the map: the callback itself may
    // cancel() and even release() this request, erasing the map node
    // (and with it the std::function) while it executes.
    const auto on_step = requests_.at(id).callbacks.onStep;
    if (on_step) {
        StepEvent event;
        event.id = id;
        event.iteration = iterations;
        event.activeBeams = engine_->iterationStats().empty()
            ? 0
            : engine_->iterationStats().back().activeBeams;
        event.clock = engine_->clock().now();
        on_step(event);
    }

    // Re-find after the callback: cancel() may have finished the
    // request on the engine, release() may have erased its record.
    auto it = requests_.find(id);
    if (it != requests_.end()
        && it->second.state == RequestState::Running && !more) {
        it->second.result = engine_->finishRequest();
        it->second.state = RequestState::Completed;
        running_ = 0;
        const auto on_complete = it->second.callbacks.onComplete;
        if (on_complete) {
            // Copied so the callback may release(id) its own record.
            const RequestResult result = it->second.result;
            on_complete(id, result);
        }
    }

    outcome.moreWork = running_ != 0 || !queue_.empty();
    return outcome;
}

void
ServingSystem::drain()
{
    while (step()) {
    }
}

Status
ServingSystem::startSuspended(RequestId id, bool defer_prompt)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    if (it->second.state != RequestState::Queued)
        return Status::failedPrecondition(
            "request " + std::to_string(id) + " is not queued");
    if (running_ != 0)
        return Status::failedPrecondition(
            "request " + std::to_string(running_)
            + " is running; suspend or finish it first");
    engine_->beginRequest(it->second.problem, defer_prompt);
    it->second.suspended = engine_->suspendRequest();
    it->second.state = RequestState::Suspended;
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                 queue_.end());
    return okStatus();
}

StatusOr<BatchStepOutcome>
ServingSystem::stepBatch(const std::vector<RequestId> &ids,
                         const BatchPlan &plan)
{
    if (running_ != 0)
        return Status::failedPrecondition(
            "request " + std::to_string(running_)
            + " is running; suspend or finish it first");

    std::vector<FastTtsEngine::RequestContext *> contexts;
    contexts.reserve(ids.size());
    for (const RequestId id : ids) {
        auto it = requests_.find(id);
        if (it == requests_.end())
            return Status::notFound("unknown request id "
                                    + std::to_string(id));
        if (it->second.state != RequestState::Suspended)
            return Status::failedPrecondition(
                "request " + std::to_string(id) + " is not suspended");
        contexts.push_back(it->second.suspended.context());
    }

    BatchStepOutcome out;
    BatchWaveResult wave = engine_->stepBatch(contexts, plan);
    out.schedule.tokensDecoded = wave.tokensDecoded;
    out.schedule.prefillChunks = wave.prefillChunks;
    out.schedule.waveTime = wave.waveTime;

    // A Decode entry is one TTS iteration of its member.
    for (const BatchPlanEntry &entry : plan.entries) {
        if (entry.kind == BatchWorkKind::Decode
            && entry.member < ids.size())
            ++requests_.at(ids[entry.member]).iterations;
    }

    for (size_t i = 0; i < ids.size(); ++i) {
        const BatchMemberOutcome &member = wave.outcomes[i];
        if (!member.participated)
            continue;
        ++out.schedule.requestsAdvanced;
        const RequestId id = ids[i];
        Request &request = requests_.at(id);
        if (!member.moreWork) {
            // Finished this wave: mount, collect, complete.
            engine_->resumeRequest(std::move(request.suspended));
            request.result = engine_->finishRequest();
            request.state = RequestState::Completed;
            const auto on_complete = request.callbacks.onComplete;
            if (on_complete) {
                // Copied so the callback may release(id) its record.
                const RequestResult result = request.result;
                on_complete(id, result);
            }
        } else {
            ++out.schedule.requestsSuspended;
        }
    }

    out.schedule.moreWork = pendingRequests() > 0;
    out.members = std::move(wave.outcomes);
    return out;
}

Status
ServingSystem::suspend(RequestId id)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    if (it->second.state != RequestState::Running || running_ != id)
        return Status::failedPrecondition(
            "request " + std::to_string(id)
            + " is not the running request");
    it->second.suspended = engine_->suspendRequest();
    it->second.state = RequestState::Suspended;
    running_ = 0;
    return okStatus();
}

Status
ServingSystem::resume(RequestId id)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    if (it->second.state != RequestState::Suspended)
        return Status::failedPrecondition(
            "request " + std::to_string(id) + " is not suspended");
    if (running_ != 0)
        return Status::failedPrecondition(
            "request " + std::to_string(running_)
            + " is running; suspend or finish it first");
    engine_->resumeRequest(std::move(it->second.suspended));
    it->second.state = RequestState::Running;
    running_ = id;
    return okStatus();
}

StatusOr<SuspendedRequestInfo>
ServingSystem::suspendedInfo(RequestId id) const
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    if (it->second.state != RequestState::Suspended)
        return Status::failedPrecondition(
            "request " + std::to_string(id) + " is not suspended");
    SuspendedRequestInfo info;
    info.promptTokensPending = it->second.suspended.promptTokensPending();
    info.activeBeams = it->second.suspended.activeBeams();
    info.residentKvBytes = it->second.suspended.residentKvBytes();
    info.prefixKey = it->second.suspended.prefixKey();
    return info;
}

StatusOr<long>
ServingSystem::evictSuspendedKv(RequestId id)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    if (it->second.state != RequestState::Suspended)
        return Status::failedPrecondition(
            "request " + std::to_string(id) + " is not suspended");
    return it->second.suspended.evictKv();
}

Status
ServingSystem::cancel(RequestId id)
{
    return cancelWith(id, okStatus());
}

Status
ServingSystem::cancelWith(RequestId id, Status reason)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    Request &request = it->second;
    switch (request.state) {
    case RequestState::Completed:
        return Status::failedPrecondition(
            "request " + std::to_string(id) + " already completed");
    case RequestState::Cancelled:
        return Status::failedPrecondition(
            "request " + std::to_string(id) + " already cancelled");
    case RequestState::Running:
        // Abandon the in-flight beams and the partial result WITHOUT
        // publishing the prompt — abortRequest also drops the prefix
        // pin, so a cancel storm leaves the index fully unpinned.
        engine_->abortRequest();
        running_ = 0;
        request.failure = std::move(reason);
        request.state = RequestState::Cancelled;
        return okStatus();
    case RequestState::Suspended:
        // Drop the parked context; its KV blocks (and any shared-
        // ledger charge, and its prefix pin) are freed with it.
        request.suspended = SuspendedEngineRequest();
        request.failure = std::move(reason);
        request.state = RequestState::Cancelled;
        return okStatus();
    case RequestState::Queued:
        request.failure = std::move(reason);
        request.state = RequestState::Cancelled;
        return okStatus();
    }
    return Status::failedPrecondition("unreachable request state");
}

StatusOr<RequestState>
ServingSystem::requestState(RequestId id) const
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    return it->second.state;
}

StatusOr<RequestResult>
ServingSystem::result(RequestId id) const
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    switch (it->second.state) {
    case RequestState::Completed:
        return it->second.result;
    case RequestState::Cancelled:
        if (!it->second.failure.ok())
            return it->second.failure;
        return Status::notFound("request " + std::to_string(id)
                                + " was cancelled");
    default:
        return Status::failedPrecondition(
            "request " + std::to_string(id) + " has not completed");
    }
}

Status
ServingSystem::release(RequestId id)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        return Status::notFound("unknown request id "
                                + std::to_string(id));
    const RequestState state = it->second.state;
    if (state == RequestState::Queued || state == RequestState::Running
        || state == RequestState::Suspended)
        return Status::failedPrecondition(
            "request " + std::to_string(id)
            + " is still pending; cancel it first");
    requests_.erase(it);
    return okStatus();
}

size_t
ServingSystem::pendingRequests() const
{
    size_t pending = 0;
    // fasttts-lint: allow(unordered-iter) order-independent count
    for (const auto &[id, request] : requests_) {
        if (request.state == RequestState::Queued
            || request.state == RequestState::Running
            || request.state == RequestState::Suspended)
            ++pending;
    }
    return pending;
}

BatchResult
aggregateResults(std::vector<RequestResult> requests, int num_beams)
{
    BatchResult out;
    out.requests = std::move(requests);
    if (out.requests.empty())
        return out;

    out.meanGoodput = meanGoodput(out.requests);
    out.meanLatency = meanCompletionTime(out.requests);
    out.meanGeneratorTime = meanGeneratorTime(out.requests);
    out.meanVerifierTime = meanVerifierTime(out.requests);

    int top1 = 0;
    int pass1 = 0;
    int pass_half = 0;
    int pass_n = 0;
    for (const auto &r : out.requests) {
        top1 += top1Correct(r.solutions) ? 1 : 0;
        pass1 += passAtN(r.solutions, 1) ? 1 : 0;
        pass_half += passAtN(r.solutions,
                             static_cast<size_t>(std::max(1, num_beams / 2)))
            ? 1
            : 0;
        pass_n +=
            passAtN(r.solutions, static_cast<size_t>(num_beams)) ? 1 : 0;
    }
    const double total = static_cast<double>(out.requests.size());
    out.top1Accuracy = 100.0 * top1 / total;
    out.passAt1 = 100.0 * pass1 / total;
    out.passAtNHalf = 100.0 * pass_half / total;
    out.passAtNAccuracy = 100.0 * pass_n / total;
    return out;
}

} // namespace fasttts
