/**
 * @file
 * Reproduces paper Fig. 16: breakdown of the goodput gain from the
 * three optimizations, applied cumulatively:
 *   P     = Dynamic Prefix-Aware Scheduling
 *   M+P   = + Asymmetric Multi-Model Memory Allocation
 *   S+M+P = + Speculative Beam Extension (full FastTTS)
 *
 * Paper expectation: S is usually the largest single contribution; P
 * matters most when memory is tight (1.5B+1.5B at 40%); M grows
 * with n.
 */

#include <iostream>
#include <string>
#include <vector>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

using namespace fasttts;

namespace
{

double
runGoodput(const FastTtsConfig &config, const ModelConfig &models, int n,
           int problems, const std::string &dataset, uint64_t seed)
{
    ServingOptions opts;
    opts.config = config;
    opts.models = models;
    opts.datasetName = dataset;
    opts.algorithmName = "beam_search";
    opts.numBeams = n;
    opts.seed = seed;
    ServingSystem system = ServingSystem::create(opts).value();
    return system.serveProblems(problems).meanGoodput;
}

} // namespace

int
main(int argc, char **argv)
{
    EngineArgs defaults;
    defaults.numProblems = 5;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Fig.16 cumulative P/M/S ablation (--dataset selects the "
        "workload; model configs and n swept by the figure)",
        {"--problems", "--dataset", "--seed"});
    const int problems = args.numProblems;
    const std::string dataset = args.dataset;
    const std::vector<int> beam_counts = {8, 32, 128, 512};

    for (const auto &models : allModelConfigs()) {
        Table table("Fig.16 cumulative goodput gain (%) - " + dataset + " "
                    + models.label);
        table.setHeader({"n", "P %", "M+P %", "S+M+P %"});
        for (int n : beam_counts) {
            FastTtsConfig base = FastTtsConfig::baseline();

            FastTtsConfig p = base;
            p.prefixAwareScheduling = true;

            FastTtsConfig mp = p;
            mp.asymmetricAllocation = true;

            FastTtsConfig smp = mp;
            smp.speculativeExtension = true;
            smp.lookaheadVerification = true;

            const double g0 =
                runGoodput(base, models, n, problems, dataset, args.seed);
            const double g1 =
                runGoodput(p, models, n, problems, dataset, args.seed);
            const double g2 =
                runGoodput(mp, models, n, problems, dataset, args.seed);
            const double g3 =
                runGoodput(smp, models, n, problems, dataset, args.seed);

            auto gain = [g0](double g) {
                return g0 > 0 ? 100.0 * (g - g0) / g0 : 0.0;
            };
            table.addRow(std::to_string(n),
                         {gain(g1), gain(g2), gain(g3)});
        }
        table.setCaption("Paper: cumulative gains; S largest in most "
                         "configs, P strongest under tight memory, M "
                         "grows with n.");
        table.print(std::cout);
    }
    return 0;
}
