// Fixture: fault-rand rule. Not compiled — linted against the golden
// report in tests/lint/expected/fault_rand.txt. The file name contains
// "fault", so it is treated as fault-path code: every randomness
// source other than the injector's seeded Rng stream is a finding
// (rand()/std::random_device additionally trip the raw-rand rule).
#include <cstdlib>
#include <random>

int
bad_fault_coin()
{
    std::random_device rd; // finding (raw-rand AND fault-rand)
    std::mt19937 gen(rd()); // finding
    std::bernoulli_distribution coin(0.05); // finding
    return coin(gen) ? 1 : 0;
}

int
bad_fault_rate()
{
    return std::rand() % 100; // finding (raw-rand AND fault-rand)
}

double
bad_fault_backoff()
{
    std::uniform_real_distribution<double> jitter(0.0, 1.0); // finding
    std::minstd_rand engine(7); // finding
    return jitter(engine);
}

// A deliberately exempt site carries the allow marker:
int
tolerated(int seed)
{
    // fasttts-lint: allow(fault-rand) documentation example only
    std::mt19937 doc_example(static_cast<unsigned>(seed));
    return static_cast<int>(doc_example());
}

// Identifiers merely containing the substrings are fine:
int
default_fault_randomness_free(int operands)
{
    return operands;
}
