/**
 * @file
 * Tests for the request-level async serving facade: submit / step /
 * per-request callbacks / cancellation, and its equivalence with the
 * synchronous batch path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/serving.h"

namespace fasttts
{
namespace
{

ServingSystem
smallSystem(int beams = 8)
{
    ServingOptions opts;
    opts.numBeams = beams;
    return ServingSystem::create(opts).value();
}

TEST(AsyncServing, SubmitStepCompleteLifecycle)
{
    ServingSystem system = smallSystem();

    std::vector<StepEvent> steps;
    RequestResult completed;
    bool complete_fired = false;

    RequestCallbacks callbacks;
    callbacks.onStep = [&steps](const StepEvent &e) {
        steps.push_back(e);
    };
    callbacks.onComplete = [&](RequestId, const RequestResult &r) {
        complete_fired = true;
        completed = r;
    };

    const RequestId id =
        system.submit(system.problems()[0], callbacks);
    EXPECT_EQ(*system.requestState(id), RequestState::Queued);
    EXPECT_EQ(system.pendingRequests(), 1u);
    // No result while queued.
    EXPECT_EQ(system.result(id).status().code(),
              StatusCode::kFailedPrecondition);

    system.drain();

    EXPECT_TRUE(complete_fired);
    EXPECT_EQ(*system.requestState(id), RequestState::Completed);
    EXPECT_EQ(system.pendingRequests(), 0u);
    ASSERT_TRUE(system.result(id).ok());
    EXPECT_EQ(system.result(id)->completedBeams, 8);
    EXPECT_GT(completed.completionTime, 0);

    // onStep fired once per engine iteration, with monotone clock and
    // 1-based iteration numbers.
    ASSERT_FALSE(steps.empty());
    for (size_t i = 0; i < steps.size(); ++i) {
        EXPECT_EQ(steps[i].id, id);
        EXPECT_EQ(steps[i].iteration, static_cast<int>(i) + 1);
        if (i > 0) {
            EXPECT_GE(steps[i].clock, steps[i - 1].clock);
        }
    }
}

TEST(AsyncServing, MatchesSynchronousServe)
{
    ServingSystem async_system = smallSystem();
    ServingSystem sync_system = smallSystem();

    const Problem problem = async_system.problems()[0];
    const RequestId id = async_system.submit(problem);
    async_system.drain();
    const RequestResult sync = sync_system.serve(problem);
    const RequestResult async = *async_system.result(id);

    EXPECT_DOUBLE_EQ(async.completionTime, sync.completionTime);
    EXPECT_EQ(async.verifiedTokens, sync.verifiedTokens);
    EXPECT_EQ(async.generatedTokens, sync.generatedTokens);
    ASSERT_EQ(async.solutions.size(), sync.solutions.size());
    for (size_t i = 0; i < sync.solutions.size(); ++i)
        EXPECT_EQ(async.solutions[i].answer, sync.solutions[i].answer);
}

TEST(AsyncServing, RequestsRunFifo)
{
    ServingSystem system = smallSystem();
    std::vector<RequestId> completion_order;
    RequestCallbacks callbacks;
    callbacks.onComplete =
        [&completion_order](RequestId id, const RequestResult &) {
            completion_order.push_back(id);
        };

    std::vector<RequestId> submitted;
    for (int i = 0; i < 3; ++i)
        submitted.push_back(
            system.submit(system.problems()[static_cast<size_t>(i)],
                          callbacks));
    system.drain();
    EXPECT_EQ(completion_order, submitted);
}

TEST(AsyncServing, StepReturnsFalseWhenIdle)
{
    ServingSystem system = smallSystem();
    EXPECT_FALSE(system.step());
    (void)system.submit(system.problems()[0]);
    EXPECT_TRUE(system.step()); // At least one more iteration coming.
    system.drain();
    EXPECT_FALSE(system.step());
}

TEST(AsyncServing, CancelQueuedRequestNeverRuns)
{
    ServingSystem system = smallSystem();
    bool first_completed = false;
    bool second_completed = false;
    RequestCallbacks first_cb;
    first_cb.onComplete = [&](RequestId, const RequestResult &) {
        first_completed = true;
    };
    RequestCallbacks second_cb;
    second_cb.onComplete = [&](RequestId, const RequestResult &) {
        second_completed = true;
    };

    (void)system.submit(system.problems()[0], first_cb);
    const RequestId doomed =
        system.submit(system.problems()[1], second_cb);

    EXPECT_TRUE(system.cancel(doomed).ok());
    EXPECT_EQ(*system.requestState(doomed), RequestState::Cancelled);
    system.drain();

    EXPECT_TRUE(first_completed);
    EXPECT_FALSE(second_completed);
    EXPECT_EQ(system.result(doomed).status().code(),
              StatusCode::kNotFound);
}

TEST(AsyncServing, CancelRunningRequestMidFlight)
{
    ServingSystem system = smallSystem();
    int iterations_before_cancel = 0;
    bool completed = false;
    RequestCallbacks callbacks;
    callbacks.onStep = [&](const StepEvent &e) {
        iterations_before_cancel = e.iteration;
        if (e.iteration == 2) {
            EXPECT_TRUE(system.cancel(e.id).ok());
        }
    };
    callbacks.onComplete = [&](RequestId, const RequestResult &) {
        completed = true;
    };

    const RequestId id = system.submit(system.problems()[0], callbacks);
    // A follow-up request proves the engine recovers after the abort.
    bool next_completed = false;
    RequestCallbacks next_cb;
    next_cb.onComplete = [&](RequestId, const RequestResult &) {
        next_completed = true;
    };
    const RequestId next =
        system.submit(system.problems()[1], next_cb);

    system.drain();

    EXPECT_EQ(iterations_before_cancel, 2);
    EXPECT_FALSE(completed);
    EXPECT_EQ(*system.requestState(id), RequestState::Cancelled);
    EXPECT_TRUE(next_completed);
    EXPECT_EQ(*system.requestState(next), RequestState::Completed);
    EXPECT_EQ(system.result(next)->completedBeams, 8);
}

TEST(AsyncServing, CancelErrorPaths)
{
    ServingSystem system = smallSystem();
    EXPECT_EQ(system.cancel(999).code(), StatusCode::kNotFound);

    const RequestId id = system.submit(system.problems()[0]);
    system.drain();
    EXPECT_EQ(system.cancel(id).code(),
              StatusCode::kFailedPrecondition); // Already completed.

    const RequestId queued = system.submit(system.problems()[1]);
    EXPECT_TRUE(system.cancel(queued).ok());
    EXPECT_EQ(system.cancel(queued).code(),
              StatusCode::kFailedPrecondition); // Already cancelled.

    EXPECT_EQ(system.requestState(31337).status().code(),
              StatusCode::kNotFound);
    EXPECT_EQ(system.result(31337).status().code(),
              StatusCode::kNotFound);
}

TEST(AsyncServing, ServeProblemsMatchesManualSubmission)
{
    ServingSystem batch = smallSystem();
    ServingSystem manual = smallSystem();

    const BatchResult via_batch = batch.serveProblems(3);

    std::vector<RequestId> ids;
    for (int i = 0; i < 3; ++i)
        ids.push_back(
            manual.submit(manual.problems()[static_cast<size_t>(i)]));
    manual.drain();
    std::vector<RequestResult> results;
    for (const RequestId id : ids)
        results.push_back(*manual.result(id));
    const BatchResult via_manual =
        aggregateResults(std::move(results), 8);

    EXPECT_DOUBLE_EQ(via_batch.meanGoodput, via_manual.meanGoodput);
    EXPECT_DOUBLE_EQ(via_batch.meanLatency, via_manual.meanLatency);
    EXPECT_DOUBLE_EQ(via_batch.top1Accuracy, via_manual.top1Accuracy);
}

TEST(AsyncServing, ReleaseDropsCompletedRecords)
{
    ServingSystem system = smallSystem();
    const RequestId id = system.submit(system.problems()[0]);

    // Pending requests cannot be released.
    EXPECT_EQ(system.release(id).code(),
              StatusCode::kFailedPrecondition);
    system.drain();

    EXPECT_TRUE(system.result(id).ok());
    EXPECT_TRUE(system.release(id).ok());
    EXPECT_EQ(system.result(id).status().code(), StatusCode::kNotFound);
    EXPECT_EQ(system.release(id).code(), StatusCode::kNotFound);
}

TEST(AsyncServing, ReleaseCancelledQueuedRequestIsSafe)
{
    ServingSystem system = smallSystem();
    (void)system.submit(system.problems()[0]);
    const RequestId doomed = system.submit(system.problems()[1]);
    EXPECT_TRUE(system.cancel(doomed).ok());
    // Released while its id still sits in the admission queue.
    EXPECT_TRUE(system.release(doomed).ok());
    system.drain(); // Must not trip over the released id.
    EXPECT_EQ(system.pendingRequests(), 0u);
}

TEST(AsyncServing, ServeProblemsDoesNotAccumulateRecords)
{
    ServingSystem system = smallSystem();
    (void)system.serveProblems(2);
    (void)system.serveProblems(2);
    // Batch-serving owns its records; nothing lingers afterwards.
    EXPECT_EQ(system.pendingRequests(), 0u);
    EXPECT_EQ(system.result(1).status().code(), StatusCode::kNotFound);
}

TEST(AsyncServing, SyncServeDrainsPendingAsyncWorkFirst)
{
    ServingSystem system = smallSystem();
    RequestResult async_result;
    bool completed = false;
    RequestCallbacks callbacks;
    callbacks.onComplete = [&](RequestId, const RequestResult &r) {
        completed = true;
        async_result = r;
    };
    const RequestId id = system.submit(system.problems()[0], callbacks);
    system.step(); // Request is now mid-flight on the engine.

    // A sync serve must not clobber it: the pending request finishes
    // first with its own, correct result.
    const RequestResult sync = system.serve(system.problems()[1]);
    EXPECT_TRUE(completed);
    EXPECT_EQ(*system.requestState(id), RequestState::Completed);
    EXPECT_EQ(async_result.completedBeams, 8);
    EXPECT_GT(sync.completionTime, 0);

    // And the async result matches a clean run of the same problem.
    ServingSystem fresh = smallSystem();
    const RequestResult expected = fresh.serve(fresh.problems()[0]);
    EXPECT_DOUBLE_EQ(async_result.completionTime,
                     expected.completionTime);
    EXPECT_EQ(async_result.verifiedTokens, expected.verifiedTokens);
}

TEST(AsyncServing, ReleaseFromOnStepCallbackIsSafe)
{
    // The callback cancels AND releases its own running request —
    // step() must not touch the freed record afterwards.
    ServingSystem system = smallSystem();
    RequestCallbacks callbacks;
    callbacks.onStep = [&system](const StepEvent &e) {
        if (e.iteration == 1) {
            EXPECT_TRUE(system.cancel(e.id).ok());
            EXPECT_TRUE(system.release(e.id).ok());
        }
    };
    const RequestId id = system.submit(system.problems()[0], callbacks);
    system.drain();
    EXPECT_EQ(system.requestState(id).status().code(),
              StatusCode::kNotFound);

    // The engine is reusable afterwards.
    const RequestId next = system.submit(system.problems()[1]);
    system.drain();
    EXPECT_EQ(*system.requestState(next), RequestState::Completed);
}

TEST(AsyncServing, ReleaseFromOnCompleteCallbackIsSafe)
{
    ServingSystem system = smallSystem();
    int beams_seen = 0;
    RequestCallbacks callbacks;
    callbacks.onComplete = [&](RequestId id, const RequestResult &r) {
        EXPECT_TRUE(system.release(id).ok());
        beams_seen = r.completedBeams; // Still valid: passed by copy.
    };
    const RequestId id = system.submit(system.problems()[0], callbacks);
    system.drain();
    EXPECT_EQ(beams_seen, 8);
    EXPECT_EQ(system.requestState(id).status().code(),
              StatusCode::kNotFound);
}

TEST(AsyncServing, ServeProblemsEmptyIsSafe)
{
    ServingSystem system = smallSystem();
    const BatchResult out = system.serveProblems(0);
    EXPECT_TRUE(out.requests.empty());
    EXPECT_EQ(out.meanGoodput, 0);
    EXPECT_EQ(out.top1Accuracy, 0);
}

// --- Suspension: one engine time-shared between requests ---

TEST(AsyncServing, SuspendResumeInterleavesTwoRequests)
{
    ServingSystem system = smallSystem();
    const RequestId a = system.submit(system.problems()[0]);
    const RequestId b = system.submit(system.problems()[1]);

    ASSERT_TRUE(system.step()); // Starts a.
    EXPECT_EQ(*system.requestState(a), RequestState::Running);
    ASSERT_TRUE(system.suspend(a).ok());
    EXPECT_EQ(*system.requestState(a), RequestState::Suspended);
    EXPECT_EQ(system.pendingRequests(), 2u);

    // With a parked, stepping starts (and can finish) b.
    while (*system.requestState(b) != RequestState::Completed)
        system.step();
    EXPECT_EQ(*system.requestState(a), RequestState::Suspended);

    // Resume a; it finishes where it left off.
    ASSERT_TRUE(system.resume(a).ok());
    EXPECT_EQ(*system.requestState(a), RequestState::Running);
    system.drain();
    EXPECT_EQ(*system.requestState(a), RequestState::Completed);
    EXPECT_GT(system.result(a)->completionTime, 0);
}

TEST(AsyncServing, SuspendResumeIsTimingTransparent)
{
    // Parking a request (without KV eviction) must not change its
    // result at all: same completion time, same solutions.
    ServingSystem plain = smallSystem();
    ServingSystem preempted = smallSystem();

    const RequestId p = plain.submit(plain.problems()[0]);
    plain.drain();
    const RequestResult want = *plain.result(p);

    const RequestId id = preempted.submit(preempted.problems()[0]);
    int steps = 0;
    while (*preempted.requestState(id) != RequestState::Completed) {
        preempted.step();
        if (++steps % 3 == 0
            && *preempted.requestState(id) == RequestState::Running) {
            ASSERT_TRUE(preempted.suspend(id).ok());
            ASSERT_TRUE(preempted.resume(id).ok());
        }
    }
    const RequestResult got = *preempted.result(id);
    EXPECT_DOUBLE_EQ(got.completionTime, want.completionTime);
    EXPECT_EQ(got.generatedTokens, want.generatedTokens);
    ASSERT_EQ(got.solutions.size(), want.solutions.size());
    for (size_t i = 0; i < got.solutions.size(); ++i) {
        EXPECT_EQ(got.solutions[i].answer, want.solutions[i].answer);
        EXPECT_DOUBLE_EQ(got.solutions[i].score,
                         want.solutions[i].score);
    }
}

TEST(AsyncServing, EvictSuspendedKvForcesRecomputeButSameAnswers)
{
    // Evicting a suspended request's KV costs recompute time but can
    // never change what the beams sample (trajectory separation).
    ServingSystem plain = smallSystem();
    ServingSystem evicted = smallSystem();

    const RequestId p = plain.submit(plain.problems()[0]);
    plain.drain();
    const RequestResult want = *plain.result(p);

    const RequestId id = evicted.submit(evicted.problems()[0]);
    evicted.step();
    evicted.step();
    ASSERT_TRUE(evicted.suspend(id).ok());
    const auto dropped = evicted.evictSuspendedKv(id);
    ASSERT_TRUE(dropped.ok());
    EXPECT_GT(*dropped, 0);
    ASSERT_TRUE(evicted.resume(id).ok());
    evicted.drain();

    const RequestResult got = *evicted.result(id);
    EXPECT_GE(got.completionTime, want.completionTime);
    EXPECT_GT(got.kvStats.preemptEvictedTokens, 0u);
    ASSERT_EQ(got.solutions.size(), want.solutions.size());
    for (size_t i = 0; i < got.solutions.size(); ++i) {
        EXPECT_EQ(got.solutions[i].answer, want.solutions[i].answer);
        EXPECT_DOUBLE_EQ(got.solutions[i].score,
                         want.solutions[i].score);
    }
}

TEST(AsyncServing, SuspendResumeErrorPaths)
{
    ServingSystem system = smallSystem();
    const RequestId a = system.submit(system.problems()[0]);
    const RequestId b = system.submit(system.problems()[1]);

    // Nothing is running yet.
    EXPECT_EQ(system.suspend(a).code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(system.suspend(999).code(), StatusCode::kNotFound);
    EXPECT_EQ(system.resume(a).code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(system.evictSuspendedKv(a).status().code(),
              StatusCode::kFailedPrecondition);

    system.step(); // a running.
    EXPECT_EQ(system.suspend(b).code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(system.suspend(a).ok());
    system.step(); // b running.
    // Cannot resume while another request holds the engine.
    EXPECT_EQ(system.resume(a).code(), StatusCode::kFailedPrecondition);
    // Cannot release a suspended (still pending) request.
    EXPECT_EQ(system.release(a).code(), StatusCode::kFailedPrecondition);

    // Cancelling a suspended request frees it without resuming.
    ASSERT_TRUE(system.cancel(a).ok());
    EXPECT_EQ(*system.requestState(a), RequestState::Cancelled);
    system.drain();
    EXPECT_EQ(*system.requestState(b), RequestState::Completed);
    EXPECT_EQ(system.pendingRequests(), 0u);
}

TEST(AsyncServing, StepReturnsScheduleOutcome)
{
    ServingSystem system = smallSystem(4);

    const ScheduleOutcome idle = system.step();
    EXPECT_FALSE(idle);
    EXPECT_EQ(idle.requestsAdvanced, 0);
    EXPECT_EQ(idle.tokensDecoded, 0);
    EXPECT_EQ(idle.waveTime, 0.0);

    (void)system.submit(system.problems()[0]);
    const ScheduleOutcome first = system.step();
    EXPECT_EQ(first.requestsAdvanced, 1);
    EXPECT_GT(first.tokensDecoded, 0);
    EXPECT_GT(first.waveTime, 0.0);
    EXPECT_EQ(first.requestsSuspended, 0); // No batched parking here.

    // The outcome stays truthy until the last iteration completes.
    long decoded = first.tokensDecoded;
    ScheduleOutcome last = first;
    while (last) {
        last = system.step();
        decoded += last.tokensDecoded;
    }
    EXPECT_FALSE(last.moreWork);
    EXPECT_GT(decoded, first.tokensDecoded);
    EXPECT_EQ(system.pendingRequests(), 0u);
}

TEST(AsyncServing, StartSuspendedAndStepBatchPreconditions)
{
    ServingSystem system = smallSystem(4);

    EXPECT_EQ(system.startSuspended(999, true).code(),
              StatusCode::kNotFound);
    EXPECT_EQ(system.suspendedInfo(999).status().code(),
              StatusCode::kNotFound);

    const RequestId a = system.submit(system.problems()[0]);
    const RequestId b = system.submit(system.problems()[1]);
    EXPECT_EQ(system.suspendedInfo(a).status().code(),
              StatusCode::kFailedPrecondition);

    // stepBatch demands every member be suspended.
    EXPECT_EQ(system.stepBatch({a}, BatchPlan()).status().code(),
              StatusCode::kFailedPrecondition);

    ASSERT_TRUE(system.startSuspended(a, /*defer_prompt=*/true).ok());
    EXPECT_EQ(*system.requestState(a), RequestState::Suspended);
    // Deferred prompt: the whole prompt awaits chunked prefill.
    const SuspendedRequestInfo info = system.suspendedInfo(a).value();
    EXPECT_EQ(info.promptTokensPending,
              system.problems()[0].promptTokens);
    EXPECT_GT(info.activeBeams, 0);

    // Already suspended — not queued any more.
    EXPECT_EQ(system.startSuspended(a, true).code(),
              StatusCode::kFailedPrecondition);

    // Up-front prefill leaves nothing pending.
    ASSERT_TRUE(system.startSuspended(b, /*defer_prompt=*/false).ok());
    EXPECT_EQ(system.suspendedInfo(b).value().promptTokensPending, 0);

    ASSERT_TRUE(system.cancel(a).ok());
    ASSERT_TRUE(system.cancel(b).ok());
}

TEST(AsyncServing, BatchedResultsMatchSoloRuns)
{
    // The continuous-batching property: batch composition must not
    // leak across members — every per-request result (answers,
    // scores, token counts, even the request's own clock) is
    // identical to a solo run of the same problem. The fused wave
    // only changes the *device* attribution, never request content.
    constexpr int kRequests = 3;

    ServingSystem solo = smallSystem(8);
    std::vector<RequestResult> want;
    for (int i = 0; i < kRequests; ++i)
        want.push_back(solo.serve(solo.problems()[static_cast<size_t>(i)]));

    ServingSystem system = smallSystem(8);
    std::vector<RequestId> ids;
    for (int i = 0; i < kRequests; ++i)
        ids.push_back(
            system.submit(system.problems()[static_cast<size_t>(i)]));
    for (const RequestId id : ids)
        ASSERT_TRUE(system.startSuspended(id, /*defer_prompt=*/true).ok());

    // Ample budget: the prompt lands in one chunk, so even the
    // per-request clocks match the solo runs bit-for-bit.
    const BatchScheduler scheduler(1 << 20, 1 << 20);
    std::vector<RequestId> live = ids;
    int guard = 0;
    while (!live.empty() && ++guard < 10000) {
        std::vector<BatchCandidate> candidates;
        for (size_t i = 0; i < live.size(); ++i) {
            const SuspendedRequestInfo info =
                system.suspendedInfo(live[i]).value();
            BatchCandidate candidate;
            candidate.member = i;
            candidate.promptRemaining = info.promptTokensPending;
            candidate.decodeTokens = std::max(1, info.activeBeams);
            candidates.push_back(candidate);
        }
        const auto outcome =
            system.stepBatch(live, scheduler.plan(candidates));
        ASSERT_TRUE(outcome.ok());
        EXPECT_GT(outcome->schedule.waveTime, 0.0);
        std::vector<RequestId> next;
        for (const RequestId id : live) {
            if (*system.requestState(id) != RequestState::Completed)
                next.push_back(id);
        }
        live = std::move(next);
    }
    ASSERT_TRUE(live.empty()) << "batched serving did not converge";

    for (size_t i = 0; i < ids.size(); ++i) {
        const RequestResult got = system.result(ids[i]).value();
        EXPECT_EQ(got.verifiedTokens, want[i].verifiedTokens);
        EXPECT_EQ(got.generatedTokens, want[i].generatedTokens);
        EXPECT_EQ(got.completedBeams, want[i].completedBeams);
        EXPECT_DOUBLE_EQ(got.completionTime, want[i].completionTime);
        ASSERT_EQ(got.solutions.size(), want[i].solutions.size());
        for (size_t j = 0; j < got.solutions.size(); ++j) {
            EXPECT_EQ(got.solutions[j].answer,
                      want[i].solutions[j].answer);
            EXPECT_DOUBLE_EQ(got.solutions[j].score,
                             want[i].solutions[j].score);
            EXPECT_EQ(got.solutions[j].tokens,
                      want[i].solutions[j].tokens);
        }
    }
}

TEST(AsyncServing, FusedWaveIsCheaperThanSerialSlices)
{
    // Co-scheduling N decode members in one wave must cost less
    // device time than running the same members serially (the
    // roofline's decode step is sublinear in batch).
    constexpr int kRequests = 3;
    ServingSystem system = smallSystem(8);
    std::vector<RequestId> ids;
    for (int i = 0; i < kRequests; ++i)
        ids.push_back(
            system.submit(system.problems()[static_cast<size_t>(i)]));
    for (const RequestId id : ids)
        ASSERT_TRUE(system.startSuspended(id, /*defer_prompt=*/false).ok());

    BatchPlan plan;
    for (size_t i = 0; i < ids.size(); ++i) {
        BatchPlanEntry entry;
        entry.member = i;
        entry.kind = BatchWorkKind::Decode;
        entry.tokens = 1;
        plan.entries.push_back(entry);
    }
    const auto outcome = system.stepBatch(ids, plan);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->schedule.requestsAdvanced, kRequests);

    double serial = 0;
    for (const BatchMemberOutcome &member : outcome->members) {
        EXPECT_TRUE(member.participated);
        EXPECT_GT(member.decodedTokens, 0);
        serial += member.activeDelta;
    }
    // waveTime is the sum of fused member shares.
    EXPECT_NEAR(outcome->schedule.waveTime, serial, 1e-9);

    // Re-run the same iteration solo on fresh systems; the fused wave
    // must be strictly cheaper than the serial sum of solo steps.
    double solo_sum = 0;
    for (int i = 0; i < kRequests; ++i) {
        ServingSystem one = smallSystem(8);
        (void)one.submit(one.problems()[static_cast<size_t>(i)]);
        solo_sum += one.step().waveTime;
    }
    EXPECT_LT(outcome->schedule.waveTime, solo_sum);

    for (const RequestId id : ids)
        ASSERT_TRUE(system.cancel(id).ok());
}

} // namespace
} // namespace fasttts
