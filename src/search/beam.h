/**
 * @file
 * Reasoning-beam state shared by the search algorithms and the engine.
 *
 * A beam is one active reasoning path in the verifier-guided search
 * tree (paper Sec. 3.1). Beams carry deterministic RNG stream seeds
 * derived from their lineage so that a baseline run and a FastTTS run
 * with the same seeds sample identical step lengths, qualities,
 * terminal decisions and answers — the paper's *algorithmic
 * equivalence* guarantee, which the property tests verify.
 */

#ifndef FASTTTS_SEARCH_BEAM_H
#define FASTTTS_SEARCH_BEAM_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fasttts
{

/**
 * One reasoning path.
 */
struct Beam
{
    uint64_t id = 0;          //!< Globally unique beam id.
    uint64_t streamSeed = 0;  //!< Deterministic RNG lineage seed.
    int rootIndex = 0;        //!< Initial-beam index (DVTS subtree id).
    int leaf = -1;            //!< KvCacheManager node of the newest step.
    int steps = 0;            //!< Completed (verified) thinking steps.

    double quality = 0;       //!< Latent quality after last step.
    double score = 0.5;       //!< PRM score of the last verified step.
    double prevScore = 0.5;   //!< Score one step earlier (spec bins).

    bool terminal = false;    //!< Reached a final answer.
    int answer = -1;          //!< Sampled answer (0 = correct).

    long totalTokens = 0;     //!< Verified tokens generated so far.

    // --- Speculative Beam Extension state (Sec. 4.1) ---
    int specTokens = 0;       //!< Tokens generated beyond the verified
                              //!< frontier by speculation.
    bool specComplete = false; //!< Speculation finished a whole step.
    double specQuality = 0;   //!< Quality of the speculated step.
    bool specTerminal = false; //!< Speculated step ended the path.
    int headStartTokens = 0;  //!< Tokens of the next step already
                              //!< materialised (from kept speculation).

    // --- Timing (for Precise Goodput) ---
    double spawnTime = 0;     //!< Clock when the beam became active.
    double finishTime = 0;    //!< Clock when it completed.
};

/**
 * Read-only view of a candidate the search algorithm selects over.
 * Deliberately excludes speculative state: selection must not observe
 * speculation (algorithmic equivalence).
 */
struct BeamCandidate
{
    size_t index = 0;     //!< Position in the engine's active list.
    double score = 0;     //!< PRM score of the newest verified step.
    double prevScore = 0; //!< Previous step's score.
    int rootIndex = 0;    //!< Subtree identity (DVTS grouping).
    int steps = 0;        //!< Completed steps.
    uint64_t beamId = 0;  //!< Stable id for deterministic tie-breaks.
};

/**
 * Outcome of the verification/selection stage: which candidates
 * survive and how many children each spawns.
 */
struct SelectionResult
{
    /** (candidate index, number of children >= 1) per survivor. */
    std::vector<std::pair<size_t, int>> expansions;

    /** Total children across all survivors. */
    int
    totalChildren() const
    {
        int total = 0;
        for (const auto &[idx, k] : expansions)
            total += k;
        return total;
    }
};

} // namespace fasttts

#endif // FASTTTS_SEARCH_BEAM_H
