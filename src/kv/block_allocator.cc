#include "kv/block_allocator.h"

#include <algorithm>

namespace fasttts
{

BlockAllocator::BlockAllocator(size_t total_blocks) : total_(total_blocks) {}

bool
BlockAllocator::allocate(size_t n)
{
    if (used_ + n > total_) {
        ++failed_;
        return false;
    }
    used_ += n;
    peakUsed_ = std::max(peakUsed_, used_);
    return true;
}

void
BlockAllocator::release(size_t n)
{
    // Releasing more than is allocated indicates a caller accounting
    // bug; clamp identically in every build mode and surface it as a
    // counted event instead of asserting in debug only.
    if (n > used_) {
        ++clampedReleases_;
        n = used_;
    }
    used_ -= n;
}

void
BlockAllocator::resize(size_t total_blocks)
{
    total_ = std::max(total_blocks, used_);
}

} // namespace fasttts
