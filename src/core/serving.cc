#include "core/serving.h"

#include <algorithm>

namespace fasttts
{

ServingSystem::ServingSystem(const ServingOptions &options)
    : options_(options), dataset_(datasetByName(options.datasetName))
{
    algorithm_ = makeAlgorithm(options.algorithmName, options.numBeams,
                               options.branchFactor);
    engine_ = std::make_unique<FastTtsEngine>(
        options.config, options.models, deviceByName(options.deviceName),
        dataset_, *algorithm_);
    problems_ = makeProblems(dataset_, 256, options.seed);
}

ServingSystem::~ServingSystem() = default;

RequestResult
ServingSystem::serve(const Problem &problem)
{
    return engine_->runRequest(problem);
}

BatchResult
ServingSystem::serveProblems(int num_problems)
{
    std::vector<RequestResult> results;
    const int count =
        std::min<int>(num_problems, static_cast<int>(problems_.size()));
    results.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        results.push_back(serve(problems_[static_cast<size_t>(i)]));
    return aggregateResults(std::move(results), options_.numBeams);
}

BatchResult
aggregateResults(std::vector<RequestResult> requests, int num_beams)
{
    BatchResult out;
    out.requests = std::move(requests);
    if (out.requests.empty())
        return out;

    out.meanGoodput = meanGoodput(out.requests);
    out.meanLatency = meanCompletionTime(out.requests);
    out.meanGeneratorTime = meanGeneratorTime(out.requests);
    out.meanVerifierTime = meanVerifierTime(out.requests);

    int top1 = 0;
    int pass1 = 0;
    int pass_half = 0;
    int pass_n = 0;
    for (const auto &r : out.requests) {
        top1 += top1Correct(r.solutions) ? 1 : 0;
        pass1 += passAtN(r.solutions, 1) ? 1 : 0;
        pass_half += passAtN(r.solutions,
                             static_cast<size_t>(std::max(1, num_beams / 2)))
            ? 1
            : 0;
        pass_n +=
            passAtN(r.solutions, static_cast<size_t>(num_beams)) ? 1 : 0;
    }
    const double total = static_cast<double>(out.requests.size());
    out.top1Accuracy = 100.0 * top1 / total;
    out.passAt1 = 100.0 * pass1 / total;
    out.passAtNHalf = 100.0 * pass_half / total;
    out.passAtNAccuracy = 100.0 * pass_n / total;
    return out;
}

} // namespace fasttts
