/**
 * @file
 * Synthetic workload profiles standing in for the paper's datasets.
 *
 * The evaluation uses AIME-2024, AMC-2023, MATH-500 and HumanEval. The
 * serving system only observes a dataset through (i) the distribution
 * of thinking-step lengths it induces (paper Fig. 3 right: heavy-tailed,
 * avg ~150 tokens, outliers >1000 on AIME), (ii) how many reasoning
 * steps solutions take, and (iii) how hard problems are (the latent
 * difficulty that determines answer correctness). Each profile encodes
 * exactly those three aspects; everything else about the text is
 * irrelevant to system behaviour and is not modelled.
 */

#ifndef FASTTTS_MODEL_WORKLOAD_H
#define FASTTTS_MODEL_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/status.h"

namespace fasttts
{

/**
 * Distributional description of one benchmark dataset.
 */
struct DatasetProfile
{
    std::string name;

    // --- Thinking-step length process (log-normal, clamped) ---
    double stepLenMu = 4.8;     //!< log-space mean of step tokens.
    double stepLenSigma = 0.8;  //!< log-space sd (tail heaviness).
    int minStepTokens = 8;      //!< Shortest step.
    int maxStepTokens = 1200;   //!< EOS-forced cap per step.

    // --- Reasoning-depth process ---
    int maxSteps = 12;            //!< Hard cap on steps per path.
    double terminalBase = 0.04;   //!< P(terminal) after first step.
    double terminalGrowth = 0.10; //!< Added per subsequent step.

    // --- Difficulty / answer process ---
    double difficultyMean = 1.0; //!< Mean latent difficulty.
    double difficultySd = 0.6;   //!< Across-problem spread.
    int numAnswers = 64;         //!< Distinct answer values (vote space).
    int promptTokens = 160;      //!< Question prompt length.
};

/** AIME 2024: hard competition math, long heavy-tailed steps. */
DatasetProfile aime2024();

/** AMC 2023: broader difficulty range, shorter reasoning. */
DatasetProfile amc2023();

/** MATH-500: the Sec. 3.1 motivation dataset. */
DatasetProfile math500();

/** HumanEval: code generation (Sec. 6.4 generality study). */
DatasetProfile humanEval();

/**
 * The dataset registry. Ships with "AIME", "AMC", "MATH500" and
 * "HumanEval"; register custom workload profiles here to serve new
 * domains without touching core code:
 *
 *   datasetRegistry().add("MyBench", [] { DatasetProfile p; ...; return p; });
 */
Registry<DatasetProfile> &datasetRegistry();

/**
 * Look up a dataset by registered name. Unknown names are a kNotFound
 * error listing the valid names — never a silent default.
 */
StatusOr<DatasetProfile> datasetByName(const std::string &name);

/**
 * One problem instance drawn from a dataset.
 */
struct Problem
{
    int id = 0;             //!< Index within the generated set.
    double difficulty = 0;  //!< Latent difficulty (higher = harder).
    uint64_t seed = 0;      //!< Per-problem RNG stream seed.
    int promptTokens = 0;   //!< Question prompt length in tokens.
    //!< Prompt token identities for cross-request prefix caching
    //!< (kv/prefix_index.h). Empty means "opaque prompt": when the
    //!< prefix cache is enabled the engine synthesizes a
    //!< deterministic sequence from `seed`, so repeat servings of
    //!< the same problem still share their full prompt. When set,
    //!< size() must equal promptTokens.
    std::vector<int32_t> promptIds;
};

/**
 * Draw a deterministic problem set from a profile.
 * @param profile Dataset distribution.
 * @param count Number of problems.
 * @param seed Master seed; same (profile, count, seed) gives the same
 *             problems.
 */
std::vector<Problem> makeProblems(const DatasetProfile &profile, int count,
                                  uint64_t seed);

} // namespace fasttts

#endif // FASTTTS_MODEL_WORKLOAD_H
