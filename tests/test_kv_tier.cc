/**
 * @file
 * Tests for the host KV tier (kv/kv_tier.h) and the roofline-guided
 * swap-vs-recompute decision built on it: store semantics (budget,
 * LRU, stale entries, owner isolation), the exact decision boundary
 * at which a faster host link flips recompute into swap, and the twin
 * property — a tiered engine run decides bit-identically to an
 * untiered one, differing only in timing and KV statistics.
 */

#include <gtest/gtest.h>

#include "core/engine.h"
#include "kv/kv_cache.h"
#include "kv/kv_session.h"
#include "kv/kv_tier.h"
#include "util/units.h"

namespace fasttts
{
namespace
{

// 1 byte per token, 16-token blocks: budgets and entry sizes read as
// token counts.
constexpr double kTokenByte = 1.0;
constexpr int kBlockTokens = 16;

// --- HostKvTier store semantics ---

TEST(HostKvTier, SwapOutTakeRoundTrip)
{
    HostKvTier tier(1024, 8.0);
    const uint64_t owner = tier.registerOwner();
    ASSERT_TRUE(tier.swapOut(owner, 7, 96, 96));
    EXPECT_TRUE(tier.contains(owner, 7));
    EXPECT_EQ(tier.entryCount(), 1);
    EXPECT_DOUBLE_EQ(tier.residentBytes(), 96);

    // take() consumes the entry: the second restore must miss.
    EXPECT_TRUE(tier.take(owner, 7, 96));
    EXPECT_FALSE(tier.contains(owner, 7));
    EXPECT_FALSE(tier.take(owner, 7, 96));
    EXPECT_DOUBLE_EQ(tier.residentBytes(), 0);
    EXPECT_EQ(tier.stats().swappedInNodes, 1u);
    EXPECT_EQ(tier.stats().swappedInTokens, 96u);
}

TEST(HostKvTier, TakeMissesAndDropsStaleEntryOnTokenMismatch)
{
    HostKvTier tier(1024, 8.0);
    const uint64_t owner = tier.registerOwner();
    ASSERT_TRUE(tier.swapOut(owner, 3, 64, 64));

    // The node regrew after its snapshot: restoring 64 tokens of KV
    // for an 80-token node would resurrect wrong-length state.
    EXPECT_FALSE(tier.take(owner, 3, 80));
    EXPECT_EQ(tier.stats().staleNodes, 1u);
    // The stale entry is gone entirely — not even the original token
    // count can restore it now.
    EXPECT_FALSE(tier.contains(owner, 3));
    EXPECT_FALSE(tier.take(owner, 3, 64));
}

TEST(HostKvTier, BudgetEvictsLeastRecentlySwappedFirst)
{
    HostKvTier tier(256, 8.0);
    const uint64_t owner = tier.registerOwner();
    ASSERT_TRUE(tier.swapOut(owner, 1, 100, 100));
    ASSERT_TRUE(tier.swapOut(owner, 2, 100, 100));
    // Admitting a third 100-byte entry exceeds the 256-byte budget;
    // the oldest swap (node 1) is evicted to make room.
    ASSERT_TRUE(tier.swapOut(owner, 3, 100, 100));
    EXPECT_FALSE(tier.contains(owner, 1));
    EXPECT_TRUE(tier.contains(owner, 2));
    EXPECT_TRUE(tier.contains(owner, 3));
    EXPECT_EQ(tier.stats().evictedNodes, 1u);
    EXPECT_DOUBLE_EQ(tier.residentBytes(), 200);
    EXPECT_DOUBLE_EQ(tier.peakBytes(), 200);
}

TEST(HostKvTier, OversizedOfferIsRefusedOutright)
{
    HostKvTier tier(128, 8.0);
    const uint64_t owner = tier.registerOwner();
    ASSERT_TRUE(tier.swapOut(owner, 1, 64, 64));
    // An entry larger than the whole budget is refused without
    // disturbing what is already stored.
    EXPECT_FALSE(tier.swapOut(owner, 2, 200, 200));
    EXPECT_EQ(tier.stats().rejectedNodes, 1u);
    EXPECT_TRUE(tier.contains(owner, 1));
    EXPECT_DOUBLE_EQ(tier.residentBytes(), 64);
}

TEST(HostKvTier, ReofferReplacesLiveEntry)
{
    HostKvTier tier(1024, 8.0);
    const uint64_t owner = tier.registerOwner();
    ASSERT_TRUE(tier.swapOut(owner, 5, 32, 32));
    ASSERT_TRUE(tier.swapOut(owner, 5, 48, 48));
    EXPECT_EQ(tier.entryCount(), 1);
    EXPECT_DOUBLE_EQ(tier.residentBytes(), 48);
    // Only the latest snapshot restores.
    EXPECT_FALSE(tier.take(owner, 5, 32));
    EXPECT_FALSE(tier.contains(owner, 5)); // Stale miss dropped it.
}

TEST(HostKvTier, ReleaseOwnerIsolatesManagers)
{
    HostKvTier tier(1024, 8.0);
    const uint64_t a = tier.registerOwner();
    const uint64_t b = tier.registerOwner();
    ASSERT_NE(a, b);
    ASSERT_TRUE(tier.swapOut(a, 1, 50, 50));
    ASSERT_TRUE(tier.swapOut(b, 1, 60, 60));
    tier.releaseOwner(a);
    // Owner a's entry is gone; owner b's identically-numbered node is
    // untouched.
    EXPECT_FALSE(tier.contains(a, 1));
    EXPECT_TRUE(tier.contains(b, 1));
    EXPECT_DOUBLE_EQ(tier.residentBytes(), 60);
}

TEST(HostKvTier, TransferSecondsIsBytesOverBandwidth)
{
    HostKvTier tier(1 * GiB, 16.0 * GBps);
    EXPECT_DOUBLE_EQ(tier.transferSeconds(16e9), 1.0);
    EXPECT_DOUBLE_EQ(tier.transferSeconds(0), 0.0);
}

// --- The roofline decision boundary ---
//
// With T resident tokens of B bytes and a recompute rate of r seconds
// per token, suspend() swaps iff B / bandwidth < r * T — so the
// boundary bandwidth is exactly B / (r * T), and crossing it must
// flip the decision while landing on it must not (ties go to
// recompute).

class TierDecisionBoundary : public ::testing::Test
{
  protected:
    // 96 resident tokens at 1 byte/token, rate 1 s/token: recompute
    // costs 96 s, so the boundary bandwidth is exactly 1 byte/s.
    static constexpr int kTokens = 96;
    static constexpr double kRate = 1.0;

    long runSuspend(double bandwidth_bytes_per_s, KvSessionStats *out)
    {
        KvCacheManager kv(1024, kTokenByte, kBlockTokens);
        HostKvTier tier(1 * GiB, bandwidth_bytes_per_s);
        kv.attachHostTier(&tier);
        const int a = kv.createChild(KvCacheManager::kRoot, 1, 64);
        const int b = kv.createChild(a, 2, 32);
        kv.retain(b);
        EXPECT_TRUE(kv.ensureResident(b, 1).ok);
        EXPECT_EQ(kv.residentTokens(), kTokens);

        KvSession session(kv);
        const long evicted = session.suspend(2, kRate);
        const long resumed = session.resume(3);
        (void)resumed;
        *out = session.stats();
        return evicted;
    }
};

TEST_F(TierDecisionBoundary, FasterLinkSwapsAndRestores)
{
    KvSessionStats stats;
    // Just above the boundary: transfer 95.99… s < recompute 96 s.
    const long evicted = runSuspend(1.0 + 1e-6, &stats);
    EXPECT_EQ(evicted, kTokens);
    EXPECT_EQ(stats.swappedOutTokens, kTokens);
    EXPECT_EQ(stats.restoredTokens, kTokens);
    EXPECT_EQ(stats.recomputedTokens, 0);
}

TEST_F(TierDecisionBoundary, BoundaryTieChoosesRecompute)
{
    KvSessionStats stats;
    // Exactly on the boundary: transfer == recompute == 96 s. The
    // strict inequality must leave the legacy evict-and-recompute
    // path byte-identical.
    const long evicted = runSuspend(1.0, &stats);
    EXPECT_EQ(evicted, kTokens);
    EXPECT_EQ(stats.swappedOutTokens, 0);
    EXPECT_EQ(stats.restoredTokens, 0);
    EXPECT_EQ(stats.recomputedTokens, kTokens);
}

TEST_F(TierDecisionBoundary, SlowerLinkChoosesRecompute)
{
    KvSessionStats stats;
    const long evicted = runSuspend(1.0 - 1e-6, &stats);
    EXPECT_EQ(evicted, kTokens);
    EXPECT_EQ(stats.swappedOutTokens, 0);
    EXPECT_EQ(stats.recomputedTokens, kTokens);
}

TEST(TierDecision, NegativeRateKeepsLegacyBehaviour)
{
    KvCacheManager kv(1024, kTokenByte, kBlockTokens);
    HostKvTier tier(1 * GiB, 1e12); // Effectively instant link.
    kv.attachHostTier(&tier);
    const int a = kv.createChild(KvCacheManager::kRoot, 1, 48);
    kv.retain(a);
    ASSERT_TRUE(kv.ensureResident(a, 1).ok);

    // The default rate (-1) means "no roofline information": suspend
    // must not swap even over an infinitely fast link.
    KvSession session(kv);
    session.suspend(2);
    EXPECT_EQ(session.stats().swappedOutTokens, 0);
    EXPECT_EQ(tier.entryCount(), 0);
}

// --- Twin property: tiering never changes what the search decides ---

TEST(TierTwinProperty, TieredRunDecidesIdenticallyToUntiered)
{
    const DatasetProfile profile = *datasetByName("AMC");
    ModelConfig models = *modelConfigByLabel("1.5B+1.5B");
    // Squeeze the KV budget to the engine floor so the run evicts and
    // re-prefills constantly — the regime where a tier, if it could
    // change decisions, would.
    models.memoryFraction =
        (models.generator.weightBytes() + models.verifier.weightBytes())
        / rtx4090().usableBytes();

    for (uint64_t seed : {11u, 23u, 47u}) {
        const Problem problem = makeProblems(profile, 1, seed)[0];
        auto algo = *makeAlgorithm("beam_search", 8, 4);

        FastTtsEngine plain(FastTtsConfig::fastTts(), models, rtx4090(),
                            profile, *algo);
        const RequestResult base = plain.runRequest(problem);

        HostKvTier tier(1 * GiB, 16.0 * GBps);
        auto algo2 = *makeAlgorithm("beam_search", 8, 4);
        FastTtsEngine tiered(FastTtsConfig::fastTts(), models,
                             rtx4090(), profile, *algo2);
        tiered.attachHostTier(&tier);
        const RequestResult swap = tiered.runRequest(problem);

        // The tier must actually have engaged, or this proves nothing.
        ASSERT_GT(base.kvStats.reprefilledTokens, 0u) << "seed " << seed;
        ASSERT_GT(swap.kvStats.swappedOutTokens, 0u) << "seed " << seed;
        ASSERT_GT(swap.kvStats.swappedInTokens, 0u) << "seed " << seed;

        // Bit-identical decisions: same solutions, same tokens.
        ASSERT_EQ(base.solutions.size(), swap.solutions.size())
            << "seed " << seed;
        for (size_t i = 0; i < base.solutions.size(); ++i) {
            EXPECT_EQ(base.solutions[i].answer, swap.solutions[i].answer);
            EXPECT_DOUBLE_EQ(base.solutions[i].score,
                             swap.solutions[i].score);
            EXPECT_EQ(base.solutions[i].tokens, swap.solutions[i].tokens);
        }
        EXPECT_EQ(base.verifiedTokens, swap.verifiedTokens);
        EXPECT_EQ(base.generatedTokens, swap.generatedTokens);

        // Only timing and KV statistics may differ: the tiered run
        // replaced recompute with transfers.
        EXPECT_LT(swap.kvStats.reprefilledTokens,
                  base.kvStats.reprefilledTokens)
            << "seed " << seed;
        EXPECT_GT(swap.transferTime, base.transferTime) << "seed " << seed;
    }
}

} // namespace
} // namespace fasttts
