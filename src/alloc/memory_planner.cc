#include "alloc/memory_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fasttts
{

namespace
{

/** ceil(a / b) for positive ints. */
int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

/** Largest batch whose KV for seq_len-token sequences fits in bytes. */
int
maxBatchFor(double bytes, const ModelSpec &model, double seq_len)
{
    if (seq_len <= 0)
        return 1;
    const double per_seq = model.kvBytes(seq_len);
    if (per_seq <= 0)
        return 1;
    return std::max(1, static_cast<int>(bytes / per_seq));
}

} // namespace

double
predictedTotalTime(const AllocationPlan &plan, const WorkloadShape &shape,
                   const ModelSpec &generator, const ModelSpec &verifier,
                   const RooflineModel &roofline)
{
    const int n = std::max(1, shape.numRequests);
    const int b_pre = std::max(1, plan.prefillBatch);
    const int b_dec = std::max(1, plan.decodeBatch);
    // When the verifier's KV allocation covers at least one full path
    // it caches prefixes and each request only prefills the new step;
    // below that, every request re-prefills the whole path.
    double req_len = shape.verifierSeqLen;
    if (shape.verifierReqLen > 0
        && plan.verifierKvBytes
            >= verifier.kvBytes(shape.verifierSeqLen)) {
        req_len = shape.verifierReqLen;
    }
    const double t_pre = ceilDiv(n, b_pre)
        * roofline.prefillTime(verifier, std::min(b_pre, n), req_len);
    const double t_dec = ceilDiv(n, b_dec) * shape.decodeLen
        * roofline.decodeStepTime(generator, std::min(b_dec, n),
                                  shape.avgCacheLen);
    return t_pre + t_dec + plan.offloadOverhead;
}

namespace
{

class StaticPlanner : public MemoryPlanner
{
  public:
    StaticPlanner(const ModelSpec &generator, const ModelSpec &verifier,
                  const RooflineModel &roofline)
        : gen_(generator), ver_(verifier), roofline_(roofline)
    {}

    std::string name() const override { return "static_50_50"; }

    AllocationPlan
    plan(const WorkloadShape &shape, double kv_budget_bytes) const override
    {
        AllocationPlan p;
        p.generatorKvBytes = kv_budget_bytes * 0.5;
        p.verifierKvBytes = kv_budget_bytes * 0.5;
        p.decodeBatch = std::min(
            std::max(1, shape.numRequests),
            maxBatchFor(p.generatorKvBytes, gen_, shape.avgCacheLen));
        p.prefillBatch = std::min(
            std::max(1, shape.numRequests),
            maxBatchFor(p.verifierKvBytes, ver_, shape.verifierSeqLen));
        p.predictedTime =
            predictedTotalTime(p, shape, gen_, ver_, roofline_);
        return p;
    }

  private:
    ModelSpec gen_;
    ModelSpec ver_;
    RooflineModel roofline_;
};

class RooflinePlanner : public MemoryPlanner
{
  public:
    RooflinePlanner(const ModelSpec &generator, const ModelSpec &verifier,
                    const RooflineModel &roofline)
        : gen_(generator), ver_(verifier), roofline_(roofline)
    {}

    std::string name() const override { return "roofline_guided"; }

    AllocationPlan
    plan(const WorkloadShape &shape, double kv_budget_bytes) const override
    {
        const int n = std::max(1, shape.numRequests);
        const double kv_pre = ver_.kvBytes(shape.verifierSeqLen);
        const double kv_dec =
            gen_.kvBytes(std::max(shape.avgCacheLen, 1.0));

        AllocationPlan best;
        best.predictedTime = std::numeric_limits<double>::max();

        // Linear search over feasible prefill batch sizes; the optimum
        // lies on the budget boundary (Sec. 4.3.1), so B_dec takes all
        // remaining memory (Eq. 1). Ties resolve toward larger B_dec,
        // i.e. smaller B_pre.
        const int b_pre_max =
            std::min(n, maxBatchFor(kv_budget_bytes - kv_dec, ver_,
                                    shape.verifierSeqLen));
        for (int b_pre = 1; b_pre <= std::max(1, b_pre_max); ++b_pre) {
            AllocationPlan p;
            p.prefillBatch = b_pre;
            p.verifierKvBytes = b_pre * kv_pre;
            p.generatorKvBytes =
                std::max(0.0, kv_budget_bytes - p.verifierKvBytes);
            p.decodeBatch =
                std::min(n, std::max(1, static_cast<int>(
                                            p.generatorKvBytes / kv_dec)));
            p.predictedTime =
                predictedTotalTime(p, shape, gen_, ver_, roofline_);
            if (p.predictedTime < best.predictedTime
                || (p.predictedTime == best.predictedTime
                    && p.decodeBatch > best.decodeBatch)) {
                best = p;
            }
        }
        return best;
    }

  private:
    ModelSpec gen_;
    ModelSpec ver_;
    RooflineModel roofline_;
};

class OffloadPlanner : public MemoryPlanner
{
  public:
    OffloadPlanner(const ModelSpec &generator, const ModelSpec &verifier,
                   const RooflineModel &roofline)
        : gen_(generator), ver_(verifier), roofline_(roofline),
          inner_(generator, verifier, roofline)
    {}

    std::string name() const override { return "roofline_offload"; }

    AllocationPlan
    plan(const WorkloadShape &shape, double kv_budget_bytes) const override
    {
        // Strategy i: shared-budget roofline allocation.
        AllocationPlan shared = inner_.plan(shape, kv_budget_bytes);

        // Strategy ii: offload the inactive model's KV; each stage gets
        // the whole budget (two independent constraints).
        const int n = std::max(1, shape.numRequests);
        AllocationPlan off;
        off.offloadActive = true;
        off.generatorKvBytes = kv_budget_bytes;
        off.verifierKvBytes = kv_budget_bytes;
        off.prefillBatch = std::min(
            n, maxBatchFor(kv_budget_bytes, ver_, shape.verifierSeqLen));
        off.decodeBatch = std::min(
            n, maxBatchFor(kv_budget_bytes, gen_,
                           std::max(shape.avgCacheLen, 1.0)));
        // Each phase switch moves the switched-in model's working set
        // across PCIe; two switches per iteration.
        const double moved =
            std::min(kv_budget_bytes,
                     off.decodeBatch * gen_.kvBytes(shape.avgCacheLen))
            + std::min(kv_budget_bytes,
                       off.prefillBatch
                           * ver_.kvBytes(shape.verifierSeqLen));
        off.offloadOverhead = roofline_.transferTime(moved);
        off.predictedTime =
            predictedTotalTime(off, shape, gen_, ver_, roofline_);

        return off.predictedTime < shared.predictedTime ? off : shared;
    }

  private:
    ModelSpec gen_;
    ModelSpec ver_;
    RooflineModel roofline_;
    RooflinePlanner inner_;
};

} // namespace

std::unique_ptr<MemoryPlanner>
makeStaticPlanner(const ModelSpec &generator, const ModelSpec &verifier,
                  const RooflineModel &roofline)
{
    return std::make_unique<StaticPlanner>(generator, verifier, roofline);
}

std::unique_ptr<MemoryPlanner>
makeRooflinePlanner(const ModelSpec &generator, const ModelSpec &verifier,
                    const RooflineModel &roofline)
{
    return std::make_unique<RooflinePlanner>(generator, verifier, roofline);
}

std::unique_ptr<MemoryPlanner>
makeOffloadPlanner(const ModelSpec &generator, const ModelSpec &verifier,
                   const RooflineModel &roofline)
{
    return std::make_unique<OffloadPlanner>(generator, verifier, roofline);
}

} // namespace fasttts
