#include "sched/scheduler.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace fasttts
{

void
SharedPrefixMap::build(const KvCacheManager &kv, int anchor_leaf)
{
    // Depth-tokens of every ancestor of the anchor; the first hit
    // walking up from another leaf is their lowest common ancestor.
    depthOf_.clear();
    int depth = kv.pathTokens(anchor_leaf);
    for (int id = anchor_leaf; id != KvCacheManager::kInvalid;
         id = kv.parentOf(id)) {
        depthOf_[id] = depth;
        depth -= kv.nodeTokens(id);
    }
}

int
SharedPrefixMap::sharedWith(const KvCacheManager &kv, int leaf_b) const
{
    for (int id = leaf_b; id != KvCacheManager::kInvalid;
         id = kv.parentOf(id)) {
        auto it = depthOf_.find(id);
        if (it != depthOf_.end())
            return it->second;
    }
    return 0;
}

int
sharedPrefixTokens(const KvCacheManager &kv, int leaf_a, int leaf_b)
{
    SharedPrefixMap anchor;
    anchor.build(kv, leaf_a);
    return anchor.sharedWith(kv, leaf_b);
}

long
scheduleSharedPrefixSum(const KvCacheManager &kv,
                        const std::vector<SchedEntry> &order)
{
    long total = 0;
    SharedPrefixMap anchor;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
        anchor.build(kv, order[i].leaf);
        total += anchor.sharedWith(kv, order[i + 1].leaf);
    }
    return total;
}

long
scheduleEvictionCost(const KvCacheManager &kv,
                     const std::vector<SchedEntry> &order)
{
    long total = 0;
    for (const auto &e : order)
        total += e.pathTokens;
    return total - scheduleSharedPrefixSum(kv, order);
}

namespace
{

class FifoScheduler : public BeamScheduler
{
  public:
    std::string name() const override { return "fifo"; }

    void
    order(std::vector<SchedEntry> &entries, const KvCacheManager &kv,
          Rng &rng) const override
    {
        (void)kv;
        (void)rng;
        std::sort(entries.begin(), entries.end(),
                  [](const SchedEntry &a, const SchedEntry &b) {
                      return a.beamId < b.beamId;
                  });
    }
};

class RandomScheduler : public BeamScheduler
{
  public:
    std::string name() const override { return "random"; }

    void
    order(std::vector<SchedEntry> &entries, const KvCacheManager &kv,
          Rng &rng) const override
    {
        (void)kv;
        rng.shuffle(entries);
    }
};

/**
 * Round-robin across sibling groups so adjacent entries almost never
 * share a parent — close to the minimum achievable prefix sum.
 */
class WorstCaseScheduler : public BeamScheduler
{
  public:
    std::string name() const override { return "worst_case"; }

    void
    order(std::vector<SchedEntry> &entries, const KvCacheManager &kv,
          Rng &rng) const override
    {
        (void)kv;
        (void)rng;
        std::map<uint64_t, std::vector<SchedEntry>> groups;
        for (auto &e : entries)
            groups[e.parentBeam].push_back(e);
        entries.clear();
        bool any = true;
        size_t round = 0;
        while (any) {
            any = false;
            for (auto &[parent, list] : groups) {
                if (round < list.size()) {
                    entries.push_back(list[round]);
                    any = true;
                }
            }
            ++round;
        }
    }
};

/**
 * The paper's production policy: beams spawned from the same parent
 * are contiguous, and parent groups keep the parents' relative order
 * from the previous iteration (Sec. 4.2, last paragraph). This is
 * O(n log n) and empirically matches the greedy argmax.
 */
class PrefixAwareScheduler : public BeamScheduler
{
  public:
    std::string name() const override { return "prefix_aware"; }

    void
    order(std::vector<SchedEntry> &entries, const KvCacheManager &kv,
          Rng &rng) const override
    {
        (void)kv;
        (void)rng;
        std::stable_sort(entries.begin(), entries.end(),
                         [](const SchedEntry &a, const SchedEntry &b) {
                             if (a.prevPosition != b.prevPosition)
                                 return a.prevPosition < b.prevPosition;
                             if (a.parentBeam != b.parentBeam)
                                 return a.parentBeam < b.parentBeam;
                             return a.beamId < b.beamId;
                         });
    }
};

/**
 * Literal greedy solution of the Sec. 4.2 optimisation problem:
 * repeatedly append the unscheduled path with the largest shared
 * prefix with the last scheduled one (ties: smaller beam id).
 */
class GreedyPrefixScheduler : public BeamScheduler
{
  public:
    std::string name() const override { return "greedy_prefix"; }

    void
    order(std::vector<SchedEntry> &entries, const KvCacheManager &kv,
          Rng &rng) const override
    {
        (void)rng;
        if (entries.size() <= 2)
            return;
        std::vector<SchedEntry> pending = entries;
        std::vector<SchedEntry> scheduled;
        scheduled.reserve(entries.size());
        // Deterministic anchor: smallest beam id first.
        size_t first = 0;
        for (size_t i = 1; i < pending.size(); ++i) {
            if (pending[i].beamId < pending[first].beamId)
                first = i;
        }
        scheduled.push_back(pending[first]);
        pending.erase(pending.begin() + static_cast<long>(first));
        // One ancestor map per scheduled anchor (not per candidate
        // pair): O(n depth) map builds for the whole schedule.
        SharedPrefixMap anchor;
        while (!pending.empty()) {
            anchor.build(kv, scheduled.back().leaf);
            size_t best = 0;
            int best_shared = -1;
            for (size_t i = 0; i < pending.size(); ++i) {
                const int shared = anchor.sharedWith(kv, pending[i].leaf);
                if (shared > best_shared
                    || (shared == best_shared
                        && pending[i].beamId < pending[best].beamId)) {
                    best = i;
                    best_shared = shared;
                }
            }
            scheduled.push_back(pending[best]);
            pending.erase(pending.begin() + static_cast<long>(best));
        }
        entries = std::move(scheduled);
    }
};

} // namespace

std::unique_ptr<BeamScheduler>
makeFifoScheduler()
{
    return std::make_unique<FifoScheduler>();
}

std::unique_ptr<BeamScheduler>
makeRandomScheduler()
{
    return std::make_unique<RandomScheduler>();
}

std::unique_ptr<BeamScheduler>
makeWorstCaseScheduler()
{
    return std::make_unique<WorstCaseScheduler>();
}

std::unique_ptr<BeamScheduler>
makePrefixAwareScheduler()
{
    return std::make_unique<PrefixAwareScheduler>();
}

std::unique_ptr<BeamScheduler>
makeGreedyPrefixScheduler()
{
    return std::make_unique<GreedyPrefixScheduler>();
}

std::unique_ptr<BeamScheduler>
makeScheduler(const std::string &name)
{
    if (name == "random")
        return makeRandomScheduler();
    if (name == "worst_case")
        return makeWorstCaseScheduler();
    if (name == "prefix_aware")
        return makePrefixAwareScheduler();
    if (name == "greedy_prefix")
        return makeGreedyPrefixScheduler();
    return makeFifoScheduler();
}

} // namespace fasttts
