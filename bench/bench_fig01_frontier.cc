/**
 * @file
 * Reproduces paper Fig. 1b: the latency/accuracy frontier of edge TTS.
 *
 * Sweeps the search width n for the baseline and FastTTS on AIME
 * (1.5B generator + 1.5B PRM, RTX 4090) and prints the frontier next
 * to the paper's cloud reference points (GPT-o1-preview accuracy;
 * o3-pro / GPT-5 first-answer latency, from the paper's Fig. 1b).
 *
 * Expectation: FastTTS reaches the same accuracy as the baseline at
 * substantially lower latency, moving the edge frontier toward the
 * cloud reference.
 */

#include <iostream>
#include <vector>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    EngineArgs defaults;
    defaults.numProblems = 12;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Fig.1b latency vs. accuracy frontier (n swept; --beams/--mode "
        "fixed by the figure)",
        {"--problems", "--dataset", "--seed"});
    const int problems = args.numProblems;

    Table table("Fig.1b latency vs. accuracy frontier - " + args.dataset
                + ", 1.5B+1.5B on RTX4090");
    table.setHeader({"system", "n", "latency s", "top-1 acc %"});

    for (const bool fast : {false, true}) {
        for (int n : {8, 32, 128, 512}) {
            ServingOptions opts;
            opts.config = fast ? FastTtsConfig::fastTts()
                               : FastTtsConfig::baseline();
            opts.models = config1_5Bplus1_5B();
            opts.datasetName = args.dataset;
            opts.numBeams = n;
            opts.seed = args.seed;
            ServingSystem system = ServingSystem::create(opts).value();
            const BatchResult out = system.serveProblems(problems);
            table.addRow({fast ? "fasttts" : "baseline",
                          std::to_string(n),
                          formatDouble(out.meanLatency, 1),
                          formatDouble(out.top1Accuracy, 1)});
        }
    }
    // Cloud reference points quoted by the paper's Fig. 1b.
    table.addRow({"cloud o3-pro (ref)", "-", "~112", "-"});
    table.addRow({"cloud GPT-5 (ref)", "-", "~95", "-"});
    table.setCaption(
        "Paper: naive edge TTS needs ~200 s to match cloud accuracy "
        "(~2x cloud latency); FastTTS pushes latency below the cloud "
        "reference at matched accuracy.");
    table.print(std::cout);
    return 0;
}
