/**
 * @file
 * Unit tests for the paged block allocator.
 */

#include <gtest/gtest.h>

#include "kv/block_allocator.h"

namespace fasttts
{
namespace
{

TEST(BlockAllocator, StartsEmpty)
{
    BlockAllocator alloc(100);
    EXPECT_EQ(alloc.total(), 100u);
    EXPECT_EQ(alloc.used(), 0u);
    EXPECT_EQ(alloc.free(), 100u);
    EXPECT_EQ(alloc.peakUsed(), 0u);
}

TEST(BlockAllocator, AllocateAndRelease)
{
    BlockAllocator alloc(10);
    EXPECT_TRUE(alloc.allocate(4));
    EXPECT_EQ(alloc.used(), 4u);
    EXPECT_EQ(alloc.free(), 6u);
    alloc.release(2);
    EXPECT_EQ(alloc.used(), 2u);
    EXPECT_EQ(alloc.peakUsed(), 4u);
}

TEST(BlockAllocator, FailedAllocationLeavesStateUnchanged)
{
    BlockAllocator alloc(5);
    EXPECT_TRUE(alloc.allocate(5));
    EXPECT_FALSE(alloc.allocate(1));
    EXPECT_EQ(alloc.used(), 5u);
    EXPECT_EQ(alloc.failedAllocations(), 1u);
}

TEST(BlockAllocator, ZeroAllocationAlwaysSucceeds)
{
    BlockAllocator alloc(0);
    EXPECT_TRUE(alloc.allocate(0));
    EXPECT_FALSE(alloc.allocate(1));
}

TEST(BlockAllocator, OverReleaseClampsAndIsCounted)
{
    BlockAllocator alloc(10);
    ASSERT_TRUE(alloc.allocate(4));
    // Releasing more than is allocated clamps to used() — identically
    // in every build mode — and the accounting bug is counted.
    alloc.release(6);
    EXPECT_EQ(alloc.used(), 0u);
    EXPECT_EQ(alloc.free(), 10u);
    EXPECT_EQ(alloc.clampedReleases(), 1u);
    alloc.release(1);
    EXPECT_EQ(alloc.used(), 0u);
    EXPECT_EQ(alloc.clampedReleases(), 2u);
}

TEST(BlockAllocator, ExactReleaseIsNotCounted)
{
    BlockAllocator alloc(10);
    ASSERT_TRUE(alloc.allocate(4));
    alloc.release(4);
    alloc.release(0);
    EXPECT_EQ(alloc.clampedReleases(), 0u);
}

TEST(BlockAllocator, PeakTracksHighWaterMark)
{
    BlockAllocator alloc(100);
    ASSERT_TRUE(alloc.allocate(30));
    alloc.release(30);
    ASSERT_TRUE(alloc.allocate(60));
    alloc.release(10);
    EXPECT_EQ(alloc.peakUsed(), 60u);
}

TEST(BlockAllocator, ResizeGrow)
{
    BlockAllocator alloc(10);
    ASSERT_TRUE(alloc.allocate(10));
    alloc.resize(20);
    EXPECT_EQ(alloc.total(), 20u);
    EXPECT_TRUE(alloc.allocate(10));
}

TEST(BlockAllocator, ResizeShrinkClampsToUsed)
{
    BlockAllocator alloc(20);
    ASSERT_TRUE(alloc.allocate(15));
    alloc.resize(5);
    // Cannot shrink below what is already allocated.
    EXPECT_EQ(alloc.total(), 15u);
    EXPECT_EQ(alloc.free(), 0u);
    alloc.release(15);
    alloc.resize(5);
    EXPECT_EQ(alloc.total(), 5u);
}

} // namespace
} // namespace fasttts
