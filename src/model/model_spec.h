/**
 * @file
 * Architecture descriptions of the generator and verifier models.
 *
 * The paper evaluates Qwen2.5-Math-1.5B / 7B generators against
 * Math-Shepherd-Mistral-7B and Skywork-o1-Open-PRM-1.5B verifiers. The
 * simulator only needs the quantities that determine roofline time and
 * memory footprint: parameter count, per-token KV bytes, and weight
 * bytes. These are derived from the published architectures (layer
 * count, KV head count, head dim, GQA).
 */

#ifndef FASTTTS_MODEL_MODEL_SPEC_H
#define FASTTTS_MODEL_MODEL_SPEC_H

#include <string>
#include <vector>

#include "api/registry.h"
#include "api/status.h"

namespace fasttts
{

/**
 * Static architecture parameters of one transformer model.
 */
struct ModelSpec
{
    std::string name;      //!< HuggingFace-style identifier.
    double numParams = 0;  //!< Total parameter count.
    int numLayers = 0;     //!< Transformer blocks.
    int numKvHeads = 0;    //!< Grouped-query KV heads.
    int headDim = 0;       //!< Per-head dimension.
    int hiddenSize = 0;    //!< Model width (for attention FLOPs).
    double bytesPerParam = 2.0; //!< FP16 by default.

    /** Bytes occupied by the weights when resident on device. */
    double weightBytes() const { return numParams * bytesPerParam; }

    /**
     * Bytes of KV cache one token occupies:
     * 2 (K and V) x layers x kvHeads x headDim x bytesPerParam.
     */
    double
    kvBytesPerToken() const
    {
        return 2.0 * numLayers * numKvHeads * headDim * bytesPerParam;
    }

    /** KV bytes for a sequence of the given length. */
    double kvBytes(double tokens) const { return kvBytesPerToken() * tokens; }
};

/** Qwen2.5-Math-1.5B-Instruct (generator, 1.5B+* configs). */
ModelSpec qwen25Math1_5B();

/** Qwen2.5-Math-7B-Instruct (generator, 7B+1.5B config). */
ModelSpec qwen25Math7B();

/** Math-Shepherd-Mistral-7B-PRM (verifier, 1.5B+7B config). */
ModelSpec mathShepherd7B();

/** Skywork-o1-Open-PRM-Qwen-2.5-1.5B (verifier, *+1.5B configs). */
ModelSpec skywork1_5B();

/**
 * The model registry ("qwen1.5b", "qwen7b", "shepherd7b",
 * "skywork1.5b"); register custom architectures here.
 */
Registry<ModelSpec> &modelRegistry();

/**
 * Look up a model by registered short name. Unknown names are a
 * kNotFound error listing the valid names.
 */
StatusOr<ModelSpec> modelByName(const std::string &name);

/**
 * One generator+verifier pairing from the paper's evaluation, together
 * with the GPU memory fraction the experiment grants (Sec. 6.1).
 */
struct ModelConfig
{
    std::string label;      //!< e.g. "1.5B+1.5B".
    ModelSpec generator;    //!< Policy model producing thinking steps.
    ModelSpec verifier;     //!< Discriminative PRM scoring each step.
    double memoryFraction;  //!< Fraction of GPU memory the run may use.
};

/** Memory-constrained 1.5B generator + 1.5B verifier (40 % memory). */
ModelConfig config1_5Bplus1_5B();

/** Verifier-heavy 1.5B generator + 7B verifier (90 % memory). */
ModelConfig config1_5Bplus7B();

/** Generator-heavy 7B generator + 1.5B verifier (90 % memory). */
ModelConfig config7Bplus1_5B();

/** The three configurations of Sec. 6.1, in paper order. */
std::vector<ModelConfig> allModelConfigs();

/**
 * The model-configuration registry ("1.5B+1.5B", "1.5B+7B",
 * "7B+1.5B"); register custom generator+verifier pairings here to make
 * them selectable through EngineArgs.
 */
Registry<ModelConfig> &modelConfigRegistry();

/**
 * Look up a configuration by registered label. Unknown labels are a
 * kNotFound error listing the valid labels.
 */
StatusOr<ModelConfig> modelConfigByLabel(const std::string &label);

} // namespace fasttts

#endif // FASTTTS_MODEL_MODEL_SPEC_H
