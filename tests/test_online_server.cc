/**
 * @file
 * Tests for the online (queued) serving front-end.
 */

#include <gtest/gtest.h>

#include "core/online_server.h"

namespace fasttts
{
namespace
{

ServingOptions
smallOptions(bool fast)
{
    ServingOptions opts;
    opts.config =
        fast ? FastTtsConfig::fastTts() : FastTtsConfig::baseline();
    opts.numBeams = 8;
    return opts;
}

TEST(OnlineServer, EmptyTraceIsSafe)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    const auto out = server.serveArrivals({});
    EXPECT_TRUE(out.records.empty());
    EXPECT_EQ(out.meanLatency, 0);
}

TEST(OnlineServer, RecordsAreCausal)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    const auto out = server.serveTrace(6, 0.05, 7);
    ASSERT_EQ(out.records.size(), 6u);
    double prev_finish = 0;
    double prev_arrival = 0;
    for (const auto &rec : out.records) {
        EXPECT_GE(rec.arrival, prev_arrival);   // Sorted arrivals.
        EXPECT_GE(rec.start, rec.arrival);      // No time travel.
        EXPECT_GE(rec.start, prev_finish - 1e-9); // FIFO device.
        EXPECT_GT(rec.finish, rec.start);
        prev_finish = rec.finish;
        prev_arrival = rec.arrival;
    }
}

TEST(OnlineServer, QueueDelayGrowsWithArrivalRate)
{
    OnlineServer slow = OnlineServer::create(smallOptions(true)).value();
    OnlineServer fast_arrivals =
        OnlineServer::create(smallOptions(true)).value();
    const auto relaxed = slow.serveTrace(8, 0.01, 7);
    const auto saturated = fast_arrivals.serveTrace(8, 10.0, 7);
    EXPECT_GT(saturated.meanQueueDelay, relaxed.meanQueueDelay);
    EXPECT_GT(saturated.utilization, relaxed.utilization);
}

TEST(OnlineServer, FastTtsImprovesOnlineLatency)
{
    // Under the same saturated arrival trace, FastTTS's shorter
    // service times compound through the queue.
    OnlineServer baseline =
        OnlineServer::create(smallOptions(false)).value();
    OnlineServer fast = OnlineServer::create(smallOptions(true)).value();
    const auto b = baseline.serveTrace(6, 1.0, 11);
    const auto f = fast.serveTrace(6, 1.0, 11);
    EXPECT_LT(f.meanLatency, b.meanLatency);
    EXPECT_LE(f.p95Latency, b.p95Latency * 1.001);
    EXPECT_LE(f.makespan, b.makespan);
}

TEST(OnlineServer, DeterministicTraces)
{
    OnlineServer a = OnlineServer::create(smallOptions(true)).value();
    OnlineServer b = OnlineServer::create(smallOptions(true)).value();
    const auto ra = a.serveTrace(5, 0.5, 3);
    const auto rb = b.serveTrace(5, 0.5, 3);
    ASSERT_EQ(ra.records.size(), rb.records.size());
    for (size_t i = 0; i < ra.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(ra.records[i].arrival, rb.records[i].arrival);
        EXPECT_DOUBLE_EQ(ra.records[i].finish, rb.records[i].finish);
    }
}

TEST(OnlineServer, UtilizationInUnitRange)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    const auto out = server.serveTrace(5, 0.2, 9);
    EXPECT_GT(out.utilization, 0.0);
    EXPECT_LE(out.utilization, 1.0);
}

TEST(OnlineServer, P95AtLeastMean)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    const auto out = server.serveTrace(10, 0.5, 13);
    EXPECT_GE(out.p95Latency, out.meanLatency * 0.5);
    EXPECT_GE(out.p95Latency,
              out.records.front().latency() * 0.01);
}

TEST(OnlineServer, EmptyProblemSetIsSafe)
{
    // problemCount = 0 must not reach the modulo in serveArrivals.
    ServingOptions opts = smallOptions(true);
    opts.problemCount = 0;
    OnlineServer server = OnlineServer::create(opts).value();
    const auto out = server.serveTrace(3, 0.5, 7);
    EXPECT_TRUE(out.records.empty());
    EXPECT_EQ(out.meanLatency, 0);
}

TEST(OnlineServer, TracesDoNotAccumulateRequestRecords)
{
    OnlineServer server = OnlineServer::create(smallOptions(true)).value();
    server.serveTrace(3, 0.5, 7);
    server.serveTrace(3, 0.5, 7);
    EXPECT_EQ(server.system().pendingRequests(), 0u);
    // Records were released after each trace; early ids are gone.
    EXPECT_EQ(server.system().result(1).status().code(),
              StatusCode::kNotFound);
}

TEST(AggregateTrace, EmptyRecordSetIsAllZero)
{
    const auto out = aggregateTrace({}, 0.0);
    EXPECT_TRUE(out.records.empty());
    EXPECT_EQ(out.meanLatency, 0);
    EXPECT_EQ(out.p95Latency, 0);
    EXPECT_EQ(out.meanQueueDelay, 0);
    EXPECT_EQ(out.makespan, 0);
    EXPECT_EQ(out.utilization, 0);
}

TEST(AggregateTrace, ZeroMakespanDoesNotDivide)
{
    // A degenerate record finishing at t=0 must not produce NaN.
    OnlineRequestRecord rec;
    const auto out = aggregateTrace({rec}, 0.0);
    EXPECT_EQ(out.utilization, 0);
    EXPECT_EQ(out.meanLatency, 0);
}

TEST(OnlineServer, CreateRejectsUnknownDataset)
{
    ServingOptions opts;
    opts.datasetName = "nope";
    EXPECT_FALSE(OnlineServer::create(opts).ok());
}

} // namespace
} // namespace fasttts
