#include "core/online_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/rng.h"

namespace fasttts
{

OnlineServer::OnlineServer(std::vector<ServingSystem> slots,
                           OnlineServerOptions online,
                           std::unique_ptr<QueuePolicy> policy,
                           RooflineModel roofline, DatasetProfile profile)
    : slots_(std::move(slots)), online_(std::move(online)),
      policy_(std::move(policy)), roofline_(std::move(roofline)),
      profile_(std::move(profile))
{
}

StatusOr<OnlineServer>
OnlineServer::create(const ServingOptions &options)
{
    return create(options, OnlineServerOptions());
}

StatusOr<OnlineServer>
OnlineServer::create(const ServingOptions &options,
                     const OnlineServerOptions &online)
{
    if (online.maxInflight < 1 || online.maxInflight > 64)
        return Status::invalidArgument(
            "max_inflight must be in [1, 64], got "
            + std::to_string(online.maxInflight));
    if (!(online.slo >= 0) || !std::isfinite(online.slo))
        return Status::invalidArgument("slo must be >= 0 seconds");

    auto policy = makeQueuePolicy(online.policy);
    if (!policy.ok())
        return policy.status();

    // One ServingSystem per in-flight slot: each slot pumps its own
    // request through the async facade, so interleaving never touches
    // another request's engine state. Only slot 0 owns the problem
    // set (requests reach the other slots as Problem values), so the
    // extra slots skip generating duplicates.
    std::vector<ServingSystem> slots;
    slots.reserve(static_cast<size_t>(online.maxInflight));
    ServingOptions slot_options = options;
    slot_options.problemCount = 0;
    for (int i = 0; i < online.maxInflight; ++i) {
        auto system =
            ServingSystem::create(i == 0 ? options : slot_options);
        if (!system.ok())
            return system.status();
        slots.push_back(*std::move(system));
    }

    // The SJF predictor's inputs; names were just validated by
    // ServingSystem::create, so the lookups cannot fail.
    auto device = deviceByName(options.deviceName);
    auto profile = datasetByName(options.datasetName);
    return OnlineServer(std::move(slots), online, *std::move(policy),
                        RooflineModel(*device), *std::move(profile));
}

OnlineTraceResult
OnlineServer::serveTrace(int num_requests, double arrival_rate,
                         uint64_t seed)
{
    return serveArrivals(
        poissonArrivalTrace(num_requests, arrival_rate, seed));
}

OnlineTraceResult
OnlineServer::serveArrivals(const std::vector<double> &arrivals)
{
    std::vector<OnlineRequest> requests;
    requests.reserve(arrivals.size());
    for (const double arrival : arrivals) {
        OnlineRequest request;
        request.arrival = arrival;
        requests.push_back(request);
    }
    // Problem ids are in range by construction, so the only way
    // serveRequests can reject this input is a non-finite arrival
    // time; degrade that to the empty trace instead of serving
    // garbage timings.
    auto result = serveRequests(requests);
    if (!result.ok())
        return aggregateTrace({}, 0.0);
    return *std::move(result);
}

StatusOr<OnlineTraceResult>
OnlineServer::serveRequests(const std::vector<OnlineRequest> &requests)
{
    const std::vector<Problem> &problems = slots_.front().problems();
    if (requests.empty() || problems.empty())
        return aggregateTrace({}, 0.0);

    constexpr double kInfinity = std::numeric_limits<double>::infinity();

    // --- Build and validate tickets in submission order. ---
    struct Ticket
    {
        QueuedRequest meta;
        double cancelAt = -1;
    };
    std::vector<Ticket> tickets;
    tickets.reserve(requests.size());
    // predictServiceTime is a pure function of the problem for a
    // fixed server; memoize it so long traces over a small problem
    // set don't recompute it per request.
    std::vector<double> predicted(problems.size(), -1.0);
    for (size_t i = 0; i < requests.size(); ++i) {
        const OnlineRequest &request = requests[i];
        // Negative arrivals are served as "queued since before the
        // trace began" (legacy max(arrival, device_free) semantics);
        // only non-finite times are meaningless.
        if (!std::isfinite(request.arrival))
            return Status::invalidArgument(
                "request arrival times must be finite");
        int problem_id = request.problemId;
        if (problem_id < 0)
            problem_id = static_cast<int>(i % problems.size());
        if (problem_id >= static_cast<int>(problems.size()))
            return Status::invalidArgument(
                "problemId " + std::to_string(problem_id)
                + " is out of range; the problem set has "
                + std::to_string(problems.size()) + " problems");

        Ticket ticket;
        ticket.meta.id = static_cast<uint64_t>(i);
        ticket.meta.problemId = problem_id;
        ticket.meta.arrival = request.arrival;
        ticket.meta.priority = request.priority;
        const double slo =
            request.slo < 0 ? online_.slo : request.slo;
        ticket.meta.deadline =
            slo > 0 ? request.arrival + slo : kInfinity;
        double &cost = predicted[static_cast<size_t>(problem_id)];
        if (cost < 0)
            cost = predictServiceTime(
                roofline_, slots_.front().options().models, profile_,
                problems[static_cast<size_t>(problem_id)],
                slots_.front().options().numBeams);
        ticket.meta.predictedCost = cost;
        ticket.cancelAt = request.cancelAt;
        tickets.push_back(ticket);
    }
    std::stable_sort(tickets.begin(), tickets.end(),
                     [](const Ticket &a, const Ticket &b) {
                         return a.meta.arrival < b.meta.arrival;
                     });

    // --- Per-slot progress boxes. Callbacks capture their addresses,
    //     so this storage must stay stable for the whole trace. ---
    struct SlotProgress
    {
        double clock = 0; //!< Engine clock after the last iteration.
        bool finished = false;
        RequestResult result;
    };
    std::vector<SlotProgress> progress(slots_.size());

    struct InFlight
    {
        Ticket ticket;
        size_t slot = 0;
        RequestId sysId = 0;
        double wallBase = 0; //!< Wall time of the request's engine
                             //!< clock zero: start + slices the device
                             //!< spent on other requests since.
        OnlineRequestRecord rec;
    };

    std::vector<Ticket> queued;
    std::vector<InFlight> inflight;
    std::vector<size_t> free_slots;
    for (size_t s = slots_.size(); s > 0; --s)
        free_slots.push_back(s - 1);

    std::vector<OnlineRequestRecord> records;
    records.reserve(tickets.size());
    std::vector<QueuedRequest> view; // pick() scratch.
    size_t next_ticket = 0;
    size_t rr = 0; //!< Round-robin cursor into inflight.
    double now = 0;
    double busy = 0;
    int cancelled = 0;

    while (true) {
        // Requests whose arrival has passed join the policy's queue.
        while (next_ticket < tickets.size()
               && tickets[next_ticket].meta.arrival <= now)
            queued.push_back(tickets[next_ticket++]);

        // Clients that gave up while queued leave it.
        for (size_t i = queued.size(); i > 0; --i) {
            const double cancel_at = queued[i - 1].cancelAt;
            if (cancel_at >= 0 && cancel_at <= now) {
                queued.erase(queued.begin()
                             + static_cast<long>(i - 1));
                ++cancelled;
            }
        }

        // The policy fills free slots (work conservation: the device
        // never idles while a request is queued).
        while (!queued.empty() && !free_slots.empty()) {
            view.clear();
            for (const Ticket &ticket : queued)
                view.push_back(ticket.meta);
            size_t pick = policy_->pick(view, now);
            if (pick >= queued.size())
                pick = 0; // Defensive against custom policies.

            const Ticket ticket = queued[pick];
            queued.erase(queued.begin() + static_cast<long>(pick));
            const size_t slot = free_slots.back();
            free_slots.pop_back();
            progress[slot] = SlotProgress();

            RequestCallbacks callbacks;
            callbacks.onStep =
                [box = &progress[slot]](const StepEvent &event) {
                    box->clock = event.clock;
                };
            callbacks.onComplete = [box = &progress[slot]](
                                       RequestId,
                                       const RequestResult &result) {
                box->finished = true;
                box->result = result;
            };

            InFlight flight;
            flight.ticket = ticket;
            flight.slot = slot;
            flight.sysId = slots_[slot].submit(
                problems[static_cast<size_t>(ticket.meta.problemId)],
                std::move(callbacks));
            flight.wallBase = std::max(ticket.meta.arrival, now);
            flight.rec.problemId = ticket.meta.problemId;
            flight.rec.arrival = ticket.meta.arrival;
            flight.rec.start = flight.wallBase;
            flight.rec.priority = ticket.meta.priority;
            flight.rec.deadline = ticket.meta.deadline;
            inflight.push_back(flight);
        }

        if (inflight.empty()) {
            // All slots are free, so the admission loop above drained
            // the queue; the device idles until the next arrival.
            if (next_ticket >= tickets.size())
                break; // Trace drained.
            now = std::max(now, tickets[next_ticket].meta.arrival);
            continue;
        }

        // Round-robin: one engine iteration of one in-flight request
        // per turn (continuous batching at the request level).
        if (rr >= inflight.size())
            rr = 0;
        InFlight &flight = inflight[rr];
        SlotProgress &box = progress[flight.slot];
        slots_[flight.slot].step();

        // The request's wall clock is its engine clock offset by every
        // slice the device spent elsewhere; computed this way (rather
        // than by accumulating deltas) the fifo/maxInflight=1 path
        // reproduces the legacy run-to-completion times bit-for-bit.
        const double slice_end = flight.wallBase
            + (box.finished ? box.result.completionTime : box.clock);
        for (InFlight &other : inflight) {
            if (&other != &flight)
                other.wallBase += slice_end - now;
        }
        now = slice_end;

        if (box.finished) {
            flight.rec.finish = now;
            busy += box.result.completionTime;
            records.push_back(flight.rec);
            slots_[flight.slot].release(flight.sysId);
            free_slots.push_back(flight.slot);
            inflight.erase(inflight.begin() + static_cast<long>(rr));
            if (rr >= inflight.size())
                rr = 0;
        } else {
            rr = (rr + 1) % inflight.size();
        }
    }

    OnlineTraceResult out = aggregateTrace(std::move(records), busy);
    out.cancelled = cancelled;
    return out;
}

OnlineTraceResult
aggregateTrace(std::vector<OnlineRequestRecord> records, double busy_time)
{
    OnlineTraceResult out;
    out.records = std::move(records);
    if (out.records.empty())
        return out;

    std::vector<double> latencies;
    latencies.reserve(out.records.size());
    double lat_total = 0;
    double queue_total = 0;
    int with_deadline = 0;
    int missed = 0;
    for (const auto &rec : out.records) {
        latencies.push_back(rec.latency());
        lat_total += rec.latency();
        queue_total += rec.queueDelay();
        if (rec.hasDeadline()) {
            ++with_deadline;
            if (rec.missedDeadline())
                ++missed;
        }
    }
    std::sort(latencies.begin(), latencies.end());
    const double n = static_cast<double>(out.records.size());
    out.meanLatency = lat_total / n;
    out.meanQueueDelay = queue_total / n;
    out.p50Latency = ceilRankPercentile(latencies, 0.50);
    out.p95Latency = ceilRankPercentile(latencies, 0.95);
    out.p99Latency = ceilRankPercentile(latencies, 0.99);
    out.deadlineMisses = missed;
    out.sloAttainment = with_deadline > 0
        ? 1.0 - static_cast<double>(missed) / with_deadline
        : 1.0;
    double makespan = 0;
    for (const auto &rec : out.records)
        makespan = std::max(makespan, rec.finish);
    out.makespan = makespan;
    out.utilization = out.makespan > 0 ? busy_time / out.makespan : 0;
    return out;
}

std::vector<double>
poissonArrivalTrace(int n, double rate, uint64_t seed)
{
    Rng rng = Rng(seed).fork(0xa881);
    std::vector<double> arrivals;
    arrivals.reserve(static_cast<size_t>(std::max(0, n)));
    double t = 0;
    for (int i = 0; i < n; ++i) {
        t += rng.exponential(rate);
        arrivals.push_back(t);
    }
    return arrivals;
}

std::vector<double>
burstyArrivalTrace(int n, double rate, uint64_t seed)
{
    // Pareto(alpha, xm) inter-arrival gaps with mean 1/rate: the
    // shape keeps most gaps tiny (bursts) and a heavy tail of long
    // silences, unlike the memoryless exponential.
    constexpr double kAlpha = 1.5;
    const double xm = (kAlpha - 1.0) / (kAlpha * rate);
    Rng rng = Rng(seed).fork(0xb117);
    std::vector<double> arrivals;
    arrivals.reserve(static_cast<size_t>(std::max(0, n)));
    double t = 0;
    for (int i = 0; i < n; ++i) {
        const double u = 1.0 - rng.uniform(); // (0, 1].
        t += xm * std::pow(u, -1.0 / kAlpha);
        arrivals.push_back(t);
    }
    return arrivals;
}

StatusOr<std::vector<double>>
makeArrivalTrace(const std::string &mode, int n, double rate,
                 uint64_t seed)
{
    if (n < 0)
        return Status::invalidArgument(
            "arrival trace length must be >= 0, got "
            + std::to_string(n));
    if (!(rate > 0) || !std::isfinite(rate))
        return Status::invalidArgument(
            "arrival rate must be a positive, finite number");
    if (mode == "poisson")
        return poissonArrivalTrace(n, rate, seed);
    if (mode == "bursty")
        return burstyArrivalTrace(n, rate, seed);
    return Status::invalidArgument(
        "unknown arrival mode '" + mode
        + "'; valid modes: poisson, bursty");
}

} // namespace fasttts
