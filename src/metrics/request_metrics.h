/**
 * @file
 * Per-request serving metrics (paper Sec. 6.1, Metrics).
 *
 * Precise Goodput := average verified token length per beam divided by
 * average beam completion time — robust to straggler paths and to text
 * copied during branching. Completion latency is end-to-end per
 * request, broken down into generator and verifier components
 * (Fig. 13).
 */

#ifndef FASTTTS_METRICS_REQUEST_METRICS_H
#define FASTTTS_METRICS_REQUEST_METRICS_H

#include <vector>

#include "kv/kv_cache.h"
#include "metrics/accuracy.h"

namespace fasttts
{

/** Everything the engine reports for one TTS request. */
struct RequestResult
{
    // --- Timing ---
    double completionTime = 0;  //!< End-to-end wall time (seconds).
    double generatorTime = 0;   //!< Decode + recompute time.
    double verifierTime = 0;    //!< Verifier prefill time.
    double transferTime = 0;    //!< Offload traffic time.

    // --- Tokens ---
    long verifiedTokens = 0;    //!< Tokens surviving in verified paths.
    long generatedTokens = 0;   //!< All decoded tokens incl. speculation.
    long speculativeTokens = 0; //!< Decoded speculatively.
    long wastedSpecTokens = 0;  //!< Speculative tokens later discarded.

    // --- Beams ---
    int completedBeams = 0;
    double avgBeamTokens = 0;     //!< Mean verified tokens per beam.
    double avgBeamCompletion = 0; //!< Mean beam completion time.

    // --- Solutions (for accuracy metrics) ---
    std::vector<CompletedSolution> solutions;

    // --- Cache behaviour ---
    KvStats kvStats;

    /**
     * Precise Goodput (tokens/s): avg token length per beam over avg
     * beam completion time. Zero when no beam completed.
     */
    double
    preciseGoodput() const
    {
        if (completedBeams == 0 || avgBeamCompletion <= 0)
            return 0.0;
        return avgBeamTokens / avgBeamCompletion;
    }
};

/** Mean of a field across request results. */
double meanGoodput(const std::vector<RequestResult> &results);
double meanCompletionTime(const std::vector<RequestResult> &results);
double meanGeneratorTime(const std::vector<RequestResult> &results);
double meanVerifierTime(const std::vector<RequestResult> &results);

/**
 * Exact sample quantile with linear interpolation between ranks — the
 * latency-percentile definition of the fasttts-bench-v1 JSON schema.
 * Returns 0 on an empty sample set.
 */
double sampleQuantile(std::vector<double> samples, double p);

/**
 * Ceil-rank percentile over an ascending-sorted sample set: the value
 * at index ceil(p*n)-1 (clamped), i.e. the smallest sample such that
 * at least a fraction p of the set is <= it. No interpolation — the
 * online-trace percentile definition (p50/p95/p99 of
 * OnlineTraceResult). Returns 0 on an empty set.
 */
double ceilRankPercentile(const std::vector<double> &sorted, double p);

} // namespace fasttts

#endif // FASTTTS_METRICS_REQUEST_METRICS_H
