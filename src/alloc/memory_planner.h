/**
 * @file
 * Asymmetric Multi-Model Memory Allocation (paper Sec. 4.3).
 *
 * The generator and verifier share one KV budget M. Statically
 * partitioning it is suboptimal because the verifier's prefill is
 * compute-bound (saturates with little KV) while the generator's
 * decode is bandwidth-bound and memory-hungry (Fig. 6). The
 * RooflinePlanner performs the paper's linear search over feasible
 * prefill batch sizes B_pre, deriving B_dec from the budget boundary
 * (Eq. 1) and minimising total roofline time; the OffloadPlanner adds
 * the Sec. 4.3.2 dual strategy, which relaxes the coupled constraint
 * by swapping the inactive model's KV to host memory.
 */

#ifndef FASTTTS_ALLOC_MEMORY_PLANNER_H
#define FASTTTS_ALLOC_MEMORY_PLANNER_H

#include <memory>
#include <string>

#include "model/model_spec.h"
#include "sim/roofline.h"

namespace fasttts
{

/** Workload parameters the allocator plans for (the paper's N, S,
 *  S_dec and the derived average cache length). */
struct WorkloadShape
{
    int numRequests = 0;       //!< N: sequences per iteration.
    double verifierSeqLen = 0; //!< S: full reasoning-path length — the
                               //!< verifier's KV *memory* footprint.
    double verifierReqLen = 0; //!< Incremental tokens actually
                               //!< prefilled per request when the
                               //!< verifier cache holds the prefix
                               //!< (0: assume full re-prefill).
    double decodeLen = 0;      //!< S_dec: tokens decoded per step.
    double avgCacheLen = 0;    //!< Mean KV length read per decode step.
};

/** The planner's decision. */
struct AllocationPlan
{
    double generatorKvBytes = 0; //!< KV budget granted to the generator.
    double verifierKvBytes = 0;  //!< KV budget granted to the verifier.
    int decodeBatch = 1;         //!< B_dec: generator batch size.
    int prefillBatch = 1;        //!< B_pre: verifier batch size.
    bool offloadActive = false;  //!< Sec. 4.3.2 strategy selected.
    double offloadOverhead = 0;  //!< Per-iteration transfer time (s).
    double predictedTime = 0;    //!< T_tot the plan minimised.
};

/**
 * Planner interface. Implementations are bound to the generator and
 * verifier specs and a device roofline at construction.
 */
class MemoryPlanner
{
  public:
    virtual ~MemoryPlanner() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Compute an allocation for the given workload under the KV budget.
     * @param shape Current workload shape (re-planned on state change).
     * @param kv_budget_bytes Total KV memory across both models.
     */
    virtual AllocationPlan plan(const WorkloadShape &shape,
                                double kv_budget_bytes) const = 0;
};

/**
 * Baseline: even 50/50 split between generator and verifier, batch
 * sizes derived from whatever fits — what running two independent vLLM
 * instances with fixed memory fractions does.
 */
std::unique_ptr<MemoryPlanner>
makeStaticPlanner(const ModelSpec &generator, const ModelSpec &verifier,
                  const RooflineModel &roofline);

/** Roofline-guided linear search (Sec. 4.3.1). */
std::unique_ptr<MemoryPlanner>
makeRooflinePlanner(const ModelSpec &generator, const ModelSpec &verifier,
                    const RooflineModel &roofline);

/** Roofline search extended with the offloading strategy (Sec. 4.3.2). */
std::unique_ptr<MemoryPlanner>
makeOffloadPlanner(const ModelSpec &generator, const ModelSpec &verifier,
                   const RooflineModel &roofline);

/**
 * Predicted total iteration time of a plan under the paper's cost
 * model: ceil(N/B_pre) * T_pre + ceil(N/B_dec) * S_dec * T_dec
 * (+ offload overhead when active). Exposed for tests and Fig. 10.
 */
double predictedTotalTime(const AllocationPlan &plan,
                          const WorkloadShape &shape,
                          const ModelSpec &generator,
                          const ModelSpec &verifier,
                          const RooflineModel &roofline);

} // namespace fasttts

#endif // FASTTTS_ALLOC_MEMORY_PLANNER_H
