/**
 * @file
 * Reproduces paper Fig. 11: Precise Goodput of FastTTS vs. the vLLM
 * baseline across four search-algorithm variants (Beam Search, DVTS,
 * Dynamic Branching, Varying Granularity), 1.5B+1.5B on AIME,
 * n = 8..512.
 *
 * In dynamic branching each beam branches proportionally to its
 * verifier score; in varying granularity the step cap is 64 tokens for
 * the first 3 steps and 2048 after — both as in the paper's setup.
 *
 * Expectation: FastTTS improves goodput for every variant, 1.2x-3.9x.
 */

#include <iostream>
#include <string>
#include <vector>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    EngineArgs defaults;
    defaults.numProblems = 5;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Fig.11 goodput across search-method variants (methods and n "
        "swept by the figure)",
        {"--problems", "--seed"});
    const int problems = args.numProblems;
    const std::vector<int> beam_counts = {8, 16, 32, 64, 128, 256, 512};

    double gain_min = 1e9;
    double gain_max = 0;
    for (const std::string method :
         {"beam_search", "dvts", "dynamic_branching",
          "varying_granularity"}) {
        Table table("Fig.11 goodput (tokens/s) - " + method
                    + ", AIME 1.5B+1.5B");
        table.setHeader({"n", "baseline", "fasttts", "gain x"});
        for (int n : beam_counts) {
            double goodput[2] = {0, 0};
            for (int pass = 0; pass < 2; ++pass) {
                ServingOptions opts;
                opts.config = pass ? FastTtsConfig::fastTts()
                                   : FastTtsConfig::baseline();
                opts.models = config1_5Bplus1_5B();
                opts.datasetName = "AIME";
                opts.algorithmName = method;
                opts.numBeams = n;
                opts.seed = args.seed;
                ServingSystem system =
                    ServingSystem::create(opts).value();
                goodput[pass] =
                    system.serveProblems(problems).meanGoodput;
            }
            const double gain =
                goodput[0] > 0 ? goodput[1] / goodput[0] : 0;
            gain_min = std::min(gain_min, gain);
            gain_max = std::max(gain_max, gain);
            table.addRow(std::to_string(n),
                         {goodput[0], goodput[1], gain});
        }
        table.setCaption("Paper: FastTTS consistently above baseline "
                         "for this variant.");
        table.print(std::cout);
    }
    std::cout << "\nGain range across variants: "
              << formatDouble(gain_min, 2) << "x-"
              << formatDouble(gain_max, 2)
              << "x  (paper: 1.2x-3.9x)\n";
    return 0;
}
