/**
 * @file
 * Domain example: TTS-served code generation (HumanEval-style).
 *
 * The paper's Sec. 6.4 shows the FastTTS execution patterns transfer
 * to code generation. This example serves HumanEval-profile requests
 * with DVTS (diverse subtrees help avoid committing to one buggy
 * program skeleton) and reports goodput, latency and accuracy across
 * search widths.
 *
 *   ./build/examples/example_code_generation [--problems N] [--help]
 */

#include <iostream>

#include "api/engine_args.h"
#include "core/serving.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace fasttts;

    EngineArgs defaults;
    defaults.dataset = "HumanEval";
    defaults.algorithm = "dvts";
    defaults.numProblems = 8;
    const EngineArgs args = EngineArgs::parseOrExit(
        argc, argv, defaults,
        "Code-generation serving demo (search widths swept)");

    std::cout << "Code-generation serving demo: " << args.dataset
              << " profile, " << args.algorithm
              << " search, 1.5B+1.5B on RTX4090\n";

    Table table("HumanEval serving: baseline vs FastTTS across search "
                "widths");
    table.setHeader({"n", "system", "goodput tok/s", "latency s",
                     "top-1 %", "pass@n %"});
    for (int n : {8, 32, 128}) {
        for (const bool fast : {false, true}) {
            EngineArgs cell = args;
            cell.mode = fast ? "fasttts" : "baseline";
            cell.numBeams = n;
            ServingSystem system =
                ServingSystem::create(cell.toServingOptions().value())
                    .value();
            const BatchResult out =
                system.serveProblems(args.numProblems);
            table.addRow({std::to_string(n),
                          fast ? "fasttts" : "baseline",
                          formatDouble(out.meanGoodput, 1),
                          formatDouble(out.meanLatency, 1),
                          formatDouble(out.top1Accuracy, 1),
                          formatDouble(out.passAtNAccuracy, 1)});
        }
    }
    table.setCaption("FastTTS speeds up code-generation TTS without "
                     "changing which programs the search selects "
                     "(paper Sec. 6.4: 1.3x-1.8x).");
    table.print(std::cout);
    return 0;
}
