#include "core/speculative.h"

#include <algorithm>
#include <cmath>

namespace fasttts
{

SpeculativePolicy::SpeculativePolicy(int branch_factor,
                                     double truncation_ratio)
    : branchFactor_(std::max(1, branch_factor)),
      truncationRatio_(std::clamp(truncation_ratio, 0.0, 1.0))
{
}

int
SpeculativePolicy::speculativePotential(
    double prev_score, const std::vector<double> &scores) const
{
    if (scores.empty())
        return 1;
    double lo = scores[0];
    double hi = scores[0];
    for (double s : scores) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    if (hi <= lo)
        return branchFactor_; // All equal: everyone is in the top bin.
    // Bin j (1-based, C_1 highest): equal-width partition of [lo, hi].
    const double frac = (prev_score - lo) / (hi - lo);
    const int from_top = static_cast<int>((1.0 - frac) * branchFactor_);
    const int j = std::clamp(from_top + 1, 1, branchFactor_);
    return branchFactor_ - j + 1;
}

int
SpeculativePolicy::truncationKeep(int spec_len, Rng &rng) const
{
    if (spec_len <= 0)
        return 0;
    const double mean = truncationRatio_ * spec_len;
    const double sd = 0.1 * spec_len;
    const int keep = static_cast<int>(std::lround(rng.normal(mean, sd)));
    return std::clamp(keep, 0, spec_len);
}

} // namespace fasttts
