/**
 * @file
 * Speculative Candidate Selection policy (paper Sec. 4.1.1).
 *
 * When standard beams in the generation batch complete, the freed
 * slots are filled with speculative branches of already-finished
 * beams. Priority uses the previous step's verifier score as a
 * zero-overhead proxy for retention probability: scores are
 * partitioned into B bins {C_1..C_B} (C_1 highest) and a beam in bin
 * C_j may speculate at most M = B - j + 1 branches. The policy also
 * draws the duplicate truncation length ~ N(R * len, sd) of
 * Algorithm 1's DuplicateThenTruncate.
 */

#ifndef FASTTTS_CORE_SPECULATIVE_H
#define FASTTTS_CORE_SPECULATIVE_H

#include <vector>

#include "util/rng.h"

namespace fasttts
{

/**
 * Stateless SelectSPEC policy.
 */
class SpeculativePolicy
{
  public:
    /**
     * @param branch_factor B: the search's branching factor, which is
     *        both the number of score bins and the max speculative
     *        potential.
     * @param truncation_ratio R: mean kept fraction for duplicates.
     */
    SpeculativePolicy(int branch_factor, double truncation_ratio);

    /** Branching factor B. */
    [[nodiscard]] int branchFactor() const { return branchFactor_; }

    /** Truncation ratio R. */
    [[nodiscard]] double truncationRatio() const
    {
        return truncationRatio_;
    }

    /**
     * Bin edges of one iteration's score set: the [lo, hi] range that
     * the equal-width partition divides. Computing this once per
     * iteration and reusing it for every beam turns the per-beam
     * potential query into O(1) (the engine's event loop queries every
     * candidate every wave).
     */
    struct ScoreBins
    {
        double lo = 0;
        double hi = 0;
        bool empty = true;
    };

    /** Scan the score set once for its bin edges. */
    [[nodiscard]] ScoreBins
    scoreBins(const std::vector<double> &scores) const;

    /**
     * Speculative potential M_i of a beam: the maximum number of
     * branches it may speculate.
     * @param prev_score The beam's previous-step verifier score.
     * @param scores All active beams' previous-step scores (defines
     *        the bin edges for this iteration).
     * @return M_i in [1, B].
     */
    [[nodiscard]] int
    speculativePotential(double prev_score,
                         const std::vector<double> &scores) const;

    /** O(1) variant against pre-computed bin edges; identical result
     *  to speculativePotential(prev_score, scores) for
     *  bins = scoreBins(scores). */
    [[nodiscard]] int
    binnedPotential(double prev_score, const ScoreBins &bins) const;

    /**
     * Tokens a duplicate keeps from a speculated segment of spec_len
     * tokens: round(N(R * spec_len, 0.1 * spec_len)), clamped to
     * [0, spec_len]. Timing-only randomness (does not affect search
     * decisions).
     */
    [[nodiscard]] int truncationKeep(int spec_len, Rng &rng) const;

  private:
    int branchFactor_;
    double truncationRatio_;
};

} // namespace fasttts

#endif // FASTTTS_CORE_SPECULATIVE_H
