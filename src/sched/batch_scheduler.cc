#include "sched/batch_scheduler.h"

#include <algorithm>

namespace fasttts
{

int
BatchPlan::decodeMembers() const
{
    int count = 0;
    for (const BatchPlanEntry &entry : entries) {
        if (entry.kind == BatchWorkKind::Decode)
            ++count;
    }
    return count;
}

BatchScheduler::BatchScheduler(int max_batched_tokens, int prefill_chunk)
    : maxBatchedTokens_(std::max(1, max_batched_tokens)),
      prefillChunk_(std::max(1, prefill_chunk))
{
}

BatchPlan
BatchScheduler::plan(const std::vector<BatchCandidate> &candidates) const
{
    BatchPlan out;
    long budget = maxBatchedTokens_;

    // --- Decode phase: requests past their prompt keep decoding. ---
    for (const BatchCandidate &candidate : candidates) {
        if (candidate.promptRemaining > 0 || candidate.decodeTokens <= 0)
            continue;
        const long need = std::max(1, candidate.decodeTokens);
        // Progress guarantee: the first decoder is admitted even when
        // its demand alone exceeds the wave budget.
        if (need > budget && !out.entries.empty())
            continue;
        BatchPlanEntry entry;
        entry.member = candidate.member;
        entry.kind = BatchWorkKind::Decode;
        entry.tokens = static_cast<int>(need);
        out.entries.push_back(entry);
        out.plannedTokens += need;
        budget -= need;
        if (budget <= 0)
            break;
    }

    // --- Prefill phase: leftover budget becomes prompt chunks, one
    //     per prefilling request per wave (chunked prefill). ---
    for (const BatchCandidate &candidate : candidates) {
        if (candidate.promptRemaining <= 0)
            continue;
        long chunk = std::min<long>(
            std::min<long>(prefillChunk_, candidate.promptRemaining),
            std::max<long>(budget, 0));
        if (chunk <= 0) {
            // An empty plan would deadlock the server: when nothing
            // else was scheduled, the first prefiller still gets its
            // full chunk; otherwise it waits for the next wave.
            if (!out.entries.empty())
                continue;
            chunk = std::min<long>(prefillChunk_,
                                   candidate.promptRemaining);
        }
        BatchPlanEntry entry;
        entry.member = candidate.member;
        entry.kind = BatchWorkKind::PrefillChunk;
        entry.tokens = static_cast<int>(chunk);
        out.entries.push_back(entry);
        out.plannedTokens += chunk;
        budget -= chunk;
        if (budget <= 0)
            break;
    }
    return out;
}

} // namespace fasttts
