/**
 * @file
 * Synthetic reasoning generator: the policy model's observable behaviour.
 *
 * The real generator (Qwen2.5-Math) affects the serving system through
 * three channels, all modelled here:
 *   1. how many tokens each thinking step emits (the irregularity that
 *      causes stragglers, Sec. 3.2.1);
 *   2. when a reasoning path terminates;
 *   3. the latent quality of a path, which drives verifier scores and
 *      final-answer correctness.
 *
 * Quality follows a per-path random walk whose drift depends on model
 * scale, so larger generators reach correct answers more often; the
 * verifier observes quality through noise (see verifier.h). This is
 * the standard latent-skill abstraction for search-over-LLM studies
 * and preserves exactly the accuracy/selection dynamics the paper's
 * algorithms exploit.
 */

#ifndef FASTTTS_MODEL_GENERATOR_H
#define FASTTTS_MODEL_GENERATOR_H

#include "model/model_spec.h"
#include "model/workload.h"
#include "util/rng.h"

namespace fasttts
{

/**
 * Stochastic generator bound to one model and one dataset profile.
 *
 * All sampling goes through caller-provided Rng streams, so two engines
 * replaying the same seeds observe identical step lengths, terminal
 * decisions and answers — the foundation of the algorithmic-equivalence
 * property tests.
 */
class SyntheticGenerator
{
  public:
    SyntheticGenerator(const ModelSpec &spec,
                       const DatasetProfile &profile);

    /** Model architecture backing this generator. */
    const ModelSpec &spec() const { return spec_; }

    /** Dataset profile backing this generator. */
    const DatasetProfile &profile() const { return profile_; }

    /**
     * Sample the token length of the next thinking step.
     * @param step_index 0-based reasoning-step index.
     * @param rng The beam's RNG stream.
     */
    int sampleStepTokens(int step_index, Rng &rng) const;

    /**
     * Whether the path terminates after completing the given step.
     * Always true at profile().maxSteps - 1.
     */
    bool sampleTerminal(int step_index, Rng &rng) const;

    /** Initial quality of a fresh path on a problem. */
    double initialQuality(const Problem &problem, Rng &rng) const;

    /** Quality of a child step given its parent's quality. */
    double evolveQuality(double parent_quality, Rng &rng) const;

    /**
     * Sample the final answer of a terminal path.
     * @return 0 for the correct answer; 1..numAnswers-1 are distinct
     *         wrong answers with a Zipf-like popularity skew (wrong
     *         answers cluster, as they do in practice).
     */
    int sampleAnswer(double quality, const Problem &problem,
                     Rng &rng) const;

    /** Probability a terminal path with this quality answers correctly. */
    double correctProbability(double quality, const Problem &problem) const;

    /** Scale-dependent skill bonus added to the quality drift. */
    double skill() const { return skill_; }

  private:
    ModelSpec spec_;
    DatasetProfile profile_;
    double skill_;
};

} // namespace fasttts

#endif // FASTTTS_MODEL_GENERATOR_H
