#!/usr/bin/env python3
"""Fail when the benchmark harness got slower than a committed baseline.

Usage:
    scripts/compare_harness.py BASELINE CURRENT [--threshold X]
                               [--min-delta-ms D]

Both arguments are fasttts-harness-v1 documents (BENCH_harness.json,
emitted by every bench_runner invocation). A benchmark present in both
documents is a regression when its current wall_ms exceeds
threshold * baseline wall_ms (default 2.0) AND grew by at least
--min-delta-ms (default 5.0 ms, an absolute guard so microsecond-scale
noise on quick runs cannot trip the ratio). Benchmarks present in only
one document are reported but never fail the check.

Exit status: 0 when no benchmark regressed, 1 otherwise, 2 on bad
input. CI runs this against the committed bench/harness_baseline.json;
after an intentional change of machine or workload, refresh the
baseline by copying the new quick-mode BENCH_harness.json over it.
"""

import argparse
import json
import os
import sys


def load_harness(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as err:
        sys.exit(f"compare_harness: cannot read {path}: {err}")
    if doc.get("schema") != "fasttts-harness-v1":
        sys.exit(
            f"compare_harness: {path}: expected schema "
            f"fasttts-harness-v1, got {doc.get('schema')!r}"
        )
    return doc


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare two fasttts-harness-v1 documents."
    )
    parser.add_argument("baseline", help="committed BENCH_harness.json")
    parser.add_argument("current", help="freshly produced BENCH_harness.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current wall_ms > threshold * baseline (default 2.0)",
    )
    parser.add_argument(
        "--min-delta-ms",
        type=float,
        default=5.0,
        help="ignore regressions smaller than this absolute growth "
        "(default 5.0 ms)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    baseline_doc = load_harness(args.baseline)
    current_doc = load_harness(args.current)
    if baseline_doc.get("quick") != current_doc.get("quick"):
        message = (
            "quick flags differ "
            f"(baseline quick={baseline_doc.get('quick')}, current "
            f"quick={current_doc.get('quick')}); wall times are not "
            "comparable across modes"
        )
        # In CI a mode mismatch means the perf gate is comparing
        # apples to oranges — the committed baseline drifted or the
        # workflow invoked the wrong mode. Fail hard there; warn
        # locally where ad-hoc comparisons are legitimate.
        if os.environ.get("CI"):
            sys.exit(f"compare_harness: ERROR: {message}")
        print(f"compare_harness: WARNING: {message}", file=sys.stderr)
    baseline = {
        b["name"]: float(b["wall_ms"])
        for b in baseline_doc.get("benchmarks", [])
    }
    current = {
        b["name"]: float(b["wall_ms"])
        for b in current_doc.get("benchmarks", [])
    }

    regressions = []
    for name in sorted(set(baseline) & set(current)):
        base_ms, cur_ms = baseline[name], current[name]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        marker = ""
        if ratio > args.threshold and cur_ms - base_ms >= args.min_delta_ms:
            regressions.append(name)
            marker = "  <-- REGRESSION"
        print(f"{name:28s} {base_ms:10.2f} ms -> {cur_ms:10.2f} ms "
              f"(x{ratio:.2f}){marker}")

    for name in sorted(set(baseline) - set(current)):
        print(f"{name:28s} only in baseline (skipped)")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:28s} only in current (skipped)")

    if regressions:
        print(
            f"compare_harness: {len(regressions)} benchmark(s) regressed "
            f">{args.threshold}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print("compare_harness: no wall-clock regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
