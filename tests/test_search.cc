/**
 * @file
 * Tests for the five TTS search algorithms (paper Fig. 2 / Fig. 11).
 */

#include <gtest/gtest.h>

#include "search/search_algorithm.h"

namespace fasttts
{
namespace
{

std::vector<BeamCandidate>
makeCandidates(const std::vector<double> &scores, int group_size = 4)
{
    std::vector<BeamCandidate> out;
    for (size_t i = 0; i < scores.size(); ++i) {
        BeamCandidate c;
        c.index = i;
        c.score = scores[i];
        c.prevScore = scores[i];
        c.rootIndex = static_cast<int>(i) / group_size;
        c.beamId = i + 1;
        out.push_back(c);
    }
    return out;
}

TEST(BeamSearch, KeepsTopCandidatesAndSpreadsWidth)
{
    auto algo = makeBeamSearch(8, 4);
    Rng rng(1);
    const auto cands =
        makeCandidates({0.9, 0.1, 0.8, 0.2, 0.5, 0.3, 0.4, 0.6});
    const auto result = algo->select(cands, 8, rng);
    EXPECT_EQ(result.totalChildren(), 8);
    // keep = ceil(8/4) = 2 survivors: indices 0 (0.9) and 2 (0.8).
    ASSERT_EQ(result.expansions.size(), 2u);
    EXPECT_EQ(result.expansions[0].first, 0u);
    EXPECT_EQ(result.expansions[1].first, 2u);
    EXPECT_EQ(result.expansions[0].second, 4);
    EXPECT_EQ(result.expansions[1].second, 4);
}

TEST(BeamSearch, UnevenWidthDistributed)
{
    auto algo = makeBeamSearch(8, 4);
    Rng rng(1);
    const auto cands = makeCandidates({0.9, 0.8, 0.7, 0.1});
    const auto result = algo->select(cands, 7, rng);
    EXPECT_EQ(result.totalChildren(), 7);
    // ceil(7/4) = 2 survivors; 4 + 3 children.
    ASSERT_EQ(result.expansions.size(), 2u);
    EXPECT_EQ(result.expansions[0].second, 4);
    EXPECT_EQ(result.expansions[1].second, 3);
}

TEST(BeamSearch, TieBrokenByBeamId)
{
    auto algo = makeBeamSearch(4, 4);
    Rng rng(1);
    const auto cands = makeCandidates({0.5, 0.5, 0.5, 0.5});
    const auto result = algo->select(cands, 4, rng);
    ASSERT_EQ(result.expansions.size(), 1u);
    EXPECT_EQ(result.expansions[0].first, 0u); // Smallest beam id wins.
}

TEST(BeamSearch, EmptyInputsAreSafe)
{
    auto algo = makeBeamSearch(8, 4);
    Rng rng(1);
    EXPECT_TRUE(algo->select({}, 8, rng).expansions.empty());
    EXPECT_TRUE(algo->select(makeCandidates({0.5}), 0, rng)
                    .expansions.empty());
}

TEST(Dvts, SelectsBestPerSubtree)
{
    auto algo = makeDvts(8, 4);
    Rng rng(1);
    // Two subtrees of 4; best of subtree 0 is index 1, best of
    // subtree 1 is index 6.
    const auto cands =
        makeCandidates({0.3, 0.9, 0.1, 0.2, 0.4, 0.5, 0.8, 0.6}, 4);
    const auto result = algo->select(cands, 8, rng);
    ASSERT_EQ(result.expansions.size(), 2u);
    EXPECT_EQ(result.expansions[0].first, 1u);
    EXPECT_EQ(result.expansions[1].first, 6u);
    EXPECT_EQ(result.totalChildren(), 8);
}

TEST(Dvts, MaintainsDiversityUnlikeBeamSearch)
{
    // All strong candidates in one subtree: beam search collapses to
    // it, DVTS keeps one survivor per subtree.
    auto dvts = makeDvts(8, 4);
    auto beam = makeBeamSearch(8, 4);
    Rng rng(1);
    const auto cands =
        makeCandidates({0.9, 0.95, 0.99, 0.98, 0.1, 0.2, 0.15, 0.12}, 4);
    const auto dr = dvts->select(cands, 8, rng);
    const auto br = beam->select(cands, 8, rng);
    std::set<int> dvts_roots;
    for (const auto &[idx, k] : dr.expansions)
        dvts_roots.insert(cands[idx].rootIndex);
    std::set<int> beam_roots;
    for (const auto &[idx, k] : br.expansions)
        beam_roots.insert(cands[idx].rootIndex);
    EXPECT_EQ(dvts_roots.size(), 2u);
    EXPECT_EQ(beam_roots.size(), 1u);
}

TEST(DynamicBranching, ChildrenProportionalToScore)
{
    auto algo = makeDynamicBranching(16, 4);
    Rng rng(1);
    const auto cands = makeCandidates({0.9, 0.5, 0.1});
    const auto result = algo->select(cands, 16, rng);
    EXPECT_EQ(result.totalChildren(), 16);
    int by_index[3] = {0, 0, 0};
    for (const auto &[idx, k] : result.expansions)
        by_index[idx] = k;
    EXPECT_GT(by_index[0], by_index[1]);
    EXPECT_GT(by_index[1], by_index[2]);
}

TEST(DynamicBranching, ExactTotalWithLargestRemainder)
{
    auto algo = makeDynamicBranching(8, 4);
    Rng rng(1);
    for (int target : {1, 3, 7, 8, 13}) {
        const auto cands =
            makeCandidates({0.61, 0.59, 0.6, 0.58, 0.62});
        const auto result = algo->select(cands, target, rng);
        EXPECT_EQ(result.totalChildren(), target);
    }
}

TEST(BestOfN, EveryChainContinuesIndependently)
{
    auto algo = makeBestOfN(8);
    Rng rng(1);
    const auto cands = makeCandidates({0.9, 0.1, 0.5});
    const auto result = algo->select(cands, 3, rng);
    ASSERT_EQ(result.expansions.size(), 3u);
    for (const auto &[idx, k] : result.expansions)
        EXPECT_EQ(k, 1);
}

TEST(VaryingGranularity, StepCapSchedule)
{
    auto algo = makeVaryingGranularity(8, 4);
    // Fig. 11 config: 64 tokens for the first 3 steps, 2048 after.
    EXPECT_EQ(algo->stepTokenCap(0), 64);
    EXPECT_EQ(algo->stepTokenCap(2), 64);
    EXPECT_EQ(algo->stepTokenCap(3), 2048);
    EXPECT_EQ(algo->stepTokenCap(11), 2048);
}

TEST(VaryingGranularity, SelectsLikeBeamSearch)
{
    auto vg = makeVaryingGranularity(8, 4);
    auto bs = makeBeamSearch(8, 4);
    Rng rng(1);
    const auto cands =
        makeCandidates({0.9, 0.1, 0.8, 0.2, 0.5, 0.3, 0.4, 0.6});
    const auto a = vg->select(cands, 8, rng);
    const auto b = bs->select(cands, 8, rng);
    EXPECT_EQ(a.expansions, b.expansions);
}

TEST(AlgorithmFactory, ByName)
{
    EXPECT_EQ(makeAlgorithm("best_of_n", 8)->get()->name(), "best_of_n");
    EXPECT_EQ(makeAlgorithm("beam_search", 8)->get()->name(),
              "beam_search");
    EXPECT_EQ(makeAlgorithm("dvts", 8)->get()->name(), "dvts");
    EXPECT_EQ(makeAlgorithm("dynamic_branching", 8)->get()->name(),
              "dynamic_branching");
    EXPECT_EQ(makeAlgorithm("varying_granularity", 8)->get()->name(),
              "varying_granularity");
    // Unknown names are a hard error that lists the valid names.
    const auto bogus = makeAlgorithm("bogus", 8);
    ASSERT_FALSE(bogus.ok());
    EXPECT_EQ(bogus.status().code(), StatusCode::kNotFound);
    EXPECT_NE(bogus.status().message().find("beam_search"),
              std::string::npos);
}

TEST(AlgorithmFactory, WidthAndBranchFactorStored)
{
    auto algo = *makeAlgorithm("beam_search", 128, 8);
    EXPECT_EQ(algo->beamWidth(), 128);
    EXPECT_EQ(algo->branchFactor(), 8);
}

/** Property sweep: every algorithm is deterministic and respects the
 *  target width (except Best-of-N, which continues all chains). */
class AlgorithmSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(AlgorithmSweep, DeterministicAndWidthRespecting)
{
    const auto &[name, n] = GetParam();
    auto algo = *makeAlgorithm(name, n, 4);
    Rng rng_seed(99);
    std::vector<double> scores;
    for (int i = 0; i < n; ++i)
        scores.push_back(rng_seed.uniform());
    const auto cands = makeCandidates(scores);

    Rng r1(5);
    Rng r2(5);
    const auto a = algo->select(cands, n, r1);
    const auto b = algo->select(cands, n, r2);
    EXPECT_EQ(a.expansions, b.expansions);

    if (name != "best_of_n") {
        EXPECT_EQ(a.totalChildren(), n);
    }
    for (const auto &[idx, k] : a.expansions) {
        EXPECT_LT(idx, cands.size());
        EXPECT_GE(k, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmSweep,
    ::testing::Combine(::testing::Values("best_of_n", "beam_search",
                                         "dvts", "dynamic_branching",
                                         "varying_granularity"),
                       ::testing::Values(4, 8, 32, 128)));

} // namespace
} // namespace fasttts
