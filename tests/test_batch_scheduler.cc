/**
 * @file
 * Tests for the wave-level batch scheduler (continuous batching).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sched/batch_scheduler.h"

namespace fasttts
{
namespace
{

BatchCandidate
decoder(size_t member, int decode_tokens)
{
    BatchCandidate c;
    c.member = member;
    c.decodeTokens = decode_tokens;
    return c;
}

BatchCandidate
prefiller(size_t member, int prompt_remaining)
{
    BatchCandidate c;
    c.member = member;
    c.promptRemaining = prompt_remaining;
    return c;
}

TEST(BatchScheduler, PacksDecodersInOrderUnderBudget)
{
    const BatchScheduler scheduler(250, 512);
    const BatchPlan plan = scheduler.plan(
        {decoder(0, 100), decoder(1, 100), decoder(2, 100)});
    // Two decoders fit; the third exceeds the leftover 50.
    ASSERT_EQ(plan.entries.size(), 2u);
    EXPECT_EQ(plan.entries[0].member, 0u);
    EXPECT_EQ(plan.entries[1].member, 1u);
    EXPECT_EQ(plan.entries[0].kind, BatchWorkKind::Decode);
    EXPECT_EQ(plan.decodeMembers(), 2);
    EXPECT_EQ(plan.plannedTokens, 200);
}

TEST(BatchScheduler, ProgressGuaranteeAdmitsOversizedDecoder)
{
    // A single decoder whose demand alone exceeds the budget must
    // still run — an empty plan would deadlock the server.
    const BatchScheduler scheduler(64, 512);
    const BatchPlan plan = scheduler.plan({decoder(0, 4096)});
    ASSERT_EQ(plan.entries.size(), 1u);
    EXPECT_EQ(plan.entries[0].tokens, 4096);
    EXPECT_FALSE(plan.empty());
}

TEST(BatchScheduler, PrefillersOnlyGetLeftoverBudget)
{
    // Decode demand is packed first; the prefiller's chunk shrinks to
    // the leftover budget (chunked prefill never stalls decoders).
    const BatchScheduler scheduler(300, 512);
    const BatchPlan plan =
        scheduler.plan({decoder(0, 250), prefiller(1, 1000)});
    ASSERT_EQ(plan.entries.size(), 2u);
    EXPECT_EQ(plan.entries[1].kind, BatchWorkKind::PrefillChunk);
    EXPECT_EQ(plan.entries[1].tokens, 50);
    EXPECT_EQ(plan.decodeMembers(), 1);
}

TEST(BatchScheduler, PrefillChunkCapsThePromptSlice)
{
    const BatchScheduler scheduler(10000, 128);
    const BatchPlan plan =
        scheduler.plan({prefiller(0, 1000), prefiller(1, 50)});
    ASSERT_EQ(plan.entries.size(), 2u);
    EXPECT_EQ(plan.entries[0].tokens, 128); // Chunk cap.
    EXPECT_EQ(plan.entries[1].tokens, 50);  // Remaining prompt.
    EXPECT_EQ(plan.decodeMembers(), 0);
}

TEST(BatchScheduler, PrefillingRequestsNeverDecode)
{
    // promptRemaining > 0 means the request cannot decode yet even if
    // its decodeTokens estimate is stale.
    const BatchScheduler scheduler(1000, 100);
    BatchCandidate mixed = prefiller(0, 40);
    mixed.decodeTokens = 500;
    const BatchPlan plan = scheduler.plan({mixed});
    ASSERT_EQ(plan.entries.size(), 1u);
    EXPECT_EQ(plan.entries[0].kind, BatchWorkKind::PrefillChunk);
    EXPECT_EQ(plan.entries[0].tokens, 40);
}

TEST(BatchScheduler, SkipsCandidatesWithNoWork)
{
    const BatchScheduler scheduler(1000, 100);
    const BatchPlan plan =
        scheduler.plan({decoder(0, 0), prefiller(1, 0), decoder(2, 10)});
    ASSERT_EQ(plan.entries.size(), 1u);
    EXPECT_EQ(plan.entries[0].member, 2u);
}

TEST(BatchScheduler, EmptyCandidatesYieldEmptyPlan)
{
    const BatchScheduler scheduler(1000, 100);
    EXPECT_TRUE(scheduler.plan({}).empty());
    EXPECT_EQ(scheduler.plan({}).plannedTokens, 0);
}

TEST(BatchScheduler, PlansAreDeterministic)
{
    const BatchScheduler scheduler(777, 99);
    const std::vector<BatchCandidate> candidates = {
        decoder(0, 300), prefiller(1, 450), decoder(2, 600),
        prefiller(3, 20)};
    const BatchPlan a = scheduler.plan(candidates);
    const BatchPlan b = scheduler.plan(candidates);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].member, b.entries[i].member);
        EXPECT_EQ(a.entries[i].kind, b.entries[i].kind);
        EXPECT_EQ(a.entries[i].tokens, b.entries[i].tokens);
    }
    EXPECT_EQ(a.plannedTokens, b.plannedTokens);
}

TEST(BatchScheduler, PrefixAffinityGroupsSharedKeysBehindTheFirst)
{
    // Candidates 0, 2 and 4 mount the same cached prefix: the stable
    // regroup pulls 2 and 4 up behind 0, so one wave co-schedules
    // them while the shared KV is hot. Unkeyed members keep their
    // relative order after the group.
    const BatchScheduler scheduler(10000, 512);
    auto keyed = [](size_t member, uint64_t key) {
        BatchCandidate c;
        c.member = member;
        c.decodeTokens = 10;
        c.prefixKey = key;
        return c;
    };
    const BatchPlan plan = scheduler.plan(
        {keyed(0, 7), keyed(1, 0), keyed(2, 7), keyed(3, 5),
         keyed(4, 7)});
    ASSERT_EQ(plan.entries.size(), 5u);
    EXPECT_EQ(plan.entries[0].member, 0u);
    EXPECT_EQ(plan.entries[1].member, 2u);
    EXPECT_EQ(plan.entries[2].member, 4u);
    EXPECT_EQ(plan.entries[3].member, 1u);
    EXPECT_EQ(plan.entries[4].member, 3u);
}

TEST(BatchScheduler, PrefixAffinityNeverPromotesPrefillersOverDecoders)
{
    // Affinity is a tiebreak within the candidate order, not a phase
    // change: a prefiller sharing the decoder's key still waits for
    // the decode phase to pack first.
    const BatchScheduler scheduler(300, 512);
    BatchCandidate lead = decoder(0, 100);
    lead.prefixKey = 7;
    BatchCandidate tail = prefiller(1, 1000);
    tail.prefixKey = 7;
    BatchCandidate other = decoder(2, 100);
    const BatchPlan plan = scheduler.plan({lead, tail, other});
    ASSERT_EQ(plan.entries.size(), 3u);
    EXPECT_EQ(plan.entries[0].kind, BatchWorkKind::Decode);
    EXPECT_EQ(plan.entries[0].member, 0u);
    EXPECT_EQ(plan.entries[1].kind, BatchWorkKind::Decode);
    EXPECT_EQ(plan.entries[1].member, 2u);
    EXPECT_EQ(plan.entries[2].kind, BatchWorkKind::PrefillChunk);
    EXPECT_EQ(plan.entries[2].member, 1u);
    EXPECT_EQ(plan.entries[2].tokens, 100); // Leftover budget.
}

TEST(BatchScheduler, DistinctOrZeroKeysReproduceTheUnkeyedPlan)
{
    // Without a repeated nonzero key the tiebreak is the identity:
    // the plan is bit-identical to the same candidates with no keys
    // at all (the --prefix-cache off determinism contract).
    const BatchScheduler scheduler(777, 99);
    std::vector<BatchCandidate> unkeyed = {
        decoder(0, 300), prefiller(1, 450), decoder(2, 600),
        prefiller(3, 20)};
    std::vector<BatchCandidate> keyed = unkeyed;
    keyed[0].prefixKey = 11;
    keyed[2].prefixKey = 13;
    // keyed[1]/keyed[3] stay 0 (no affinity).
    const BatchPlan want = scheduler.plan(unkeyed);
    const BatchPlan got = scheduler.plan(keyed);
    ASSERT_EQ(got.entries.size(), want.entries.size());
    for (size_t i = 0; i < got.entries.size(); ++i) {
        EXPECT_EQ(got.entries[i].member, want.entries[i].member);
        EXPECT_EQ(got.entries[i].kind, want.entries[i].kind);
        EXPECT_EQ(got.entries[i].tokens, want.entries[i].tokens);
    }
    EXPECT_EQ(got.plannedTokens, want.plannedTokens);
}

TEST(BatchScheduler, NonPositiveKnobsClampToOne)
{
    const BatchScheduler scheduler(0, -5);
    EXPECT_EQ(scheduler.maxBatchedTokens(), 1);
    EXPECT_EQ(scheduler.prefillChunk(), 1);
    // Still makes progress: budget 1 admits the first decoder.
    const BatchPlan plan = scheduler.plan({decoder(0, 10)});
    ASSERT_EQ(plan.entries.size(), 1u);
}

} // namespace
} // namespace fasttts
