#include "core/online_server.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "util/rng.h"
#include "util/units.h"

namespace fasttts
{

namespace
{

/** Preemption modes of OnlineServerOptions::preempt. */
enum class PreemptMode { Off, Slice, Policy };

/** Parse a preempt-mode name; nullopt-style via ok flag. */
bool
parsePreemptMode(const std::string &name, PreemptMode *mode)
{
    if (name == "off")
        *mode = PreemptMode::Off;
    else if (name == "slice")
        *mode = PreemptMode::Slice;
    else if (name == "policy")
        *mode = PreemptMode::Policy;
    else
        return false;
    return true;
}

/**
 * Rolling fault-rate window driving graceful degradation. Every
 * wave-step probe outcome (fault or clean) is recorded; when the rate
 * over the last kWindow probes crosses kEnter (with at least
 * kMinSamples observed, so one early fault cannot trip it) the server
 * degrades — speculation off, admission halved — and it recovers only
 * when the rate falls below kExit. The enter/exit gap is hysteresis:
 * without it a rate hovering at the threshold would toggle the engine
 * mode every few waves.
 */
class DegradeTracker
{
  public:
    void record(bool fault)
    {
        if (count_ == kWindow)
            faults_ -= window_[head_] ? 1 : 0;
        else
            ++count_;
        window_[head_] = fault;
        faults_ += fault ? 1 : 0;
        head_ = (head_ + 1) % kWindow;
    }

    /** Re-evaluate the degraded state after a batch of record()s. */
    bool update()
    {
        const double rate = count_ > 0
            ? static_cast<double>(faults_) / count_
            : 0.0;
        if (!degraded_ && count_ >= kMinSamples && rate >= kEnter)
            degraded_ = true;
        else if (degraded_ && rate < kExit)
            degraded_ = false;
        return degraded_;
    }

    [[nodiscard]] bool degraded() const { return degraded_; }

    static constexpr int kWindow = 64;
    static constexpr int kMinSamples = 32;
    static constexpr double kEnter = 0.03;
    static constexpr double kExit = 0.015;

  private:
    bool window_[kWindow] = {};
    int head_ = 0;
    int count_ = 0;
    int faults_ = 0;
    bool degraded_ = false;
};

} // namespace

OnlineServer::OnlineServer(ServingSystem system,
                           std::unique_ptr<KvBudgetLedger> ledger,
                           std::unique_ptr<HostKvTier> tier,
                           std::unique_ptr<FaultInjector> faults,
                           OnlineServerOptions online,
                           std::unique_ptr<QueuePolicy> policy,
                           RooflineModel roofline, DatasetProfile profile)
    : faults_(std::move(faults)), ledger_(std::move(ledger)),
      hostTier_(std::move(tier)), system_(std::move(system)),
      online_(std::move(online)), policy_(std::move(policy)),
      roofline_(std::move(roofline)), profile_(std::move(profile))
{
}

StatusOr<OnlineServer>
OnlineServer::create(const ServingOptions &options)
{
    return create(options, OnlineServerOptions());
}

StatusOr<OnlineServer>
OnlineServer::create(const ServingOptions &options,
                     const OnlineServerOptions &online)
{
    if (online.maxInflight < 1 || online.maxInflight > 64)
        return Status::invalidArgument(
            "max_inflight must be in [1, 64], got "
            + std::to_string(online.maxInflight));
    if (!(online.slo >= 0) || !std::isfinite(online.slo))
        return Status::invalidArgument("slo must be >= 0 seconds");
    PreemptMode mode;
    if (!parsePreemptMode(online.preempt, &mode))
        return Status::invalidArgument(
            "unknown preempt mode '" + online.preempt
            + "'; valid modes: off, slice, policy");
    if (!(online.kvBudgetGiB >= 0) || !std::isfinite(online.kvBudgetGiB))
        return Status::invalidArgument(
            "kv_budget must be >= 0 GiB (0 keeps the legacy "
            "per-slot accounting)");
    if (online.kvTier != "off" && online.kvTier != "host")
        return Status::invalidArgument(
            "unknown kv-tier mode '" + online.kvTier
            + "'; valid modes: off, host");
    if (!(online.hostKvBudgetGiB >= 0)
        || !std::isfinite(online.hostKvBudgetGiB))
        return Status::invalidArgument(
            "host_kv_budget must be >= 0 GiB (0 defaults to twice "
            "the device KV budget)");
    if (!(online.hostBandwidthGBs > 0)
        || !std::isfinite(online.hostBandwidthGBs))
        return Status::invalidArgument(
            "host_bandwidth must be a positive, finite GB/s figure");
    if (online.victimSelect != "admission"
        && online.victimSelect != "cost")
        return Status::invalidArgument(
            "unknown victim-select mode '" + online.victimSelect
            + "'; valid modes: admission, cost");
    if (online.batching != "off" && online.batching != "continuous")
        return Status::invalidArgument(
            "unknown batching mode '" + online.batching
            + "'; valid modes: off, continuous");
    if (online.maxBatchedTokens < 1)
        return Status::invalidArgument(
            "max_batched_tokens must be >= 1, got "
            + std::to_string(online.maxBatchedTokens));
    if (online.prefillChunk < 1)
        return Status::invalidArgument(
            "prefill_chunk must be >= 1, got "
            + std::to_string(online.prefillChunk));
    if (online.prefixCache != "off" && online.prefixCache != "on")
        return Status::invalidArgument(
            "unknown prefix-cache mode '" + online.prefixCache
            + "'; valid modes: off, on");
    if (!(online.prefixCacheBudgetGiB >= 0)
        || !std::isfinite(online.prefixCacheBudgetGiB))
        return Status::invalidArgument(
            "prefix_cache_budget must be >= 0 GiB (0 defaults to "
            "1/8 of the shared KV budget)");
    if (online.faults != "off" && online.faults != "plan")
        return Status::invalidArgument(
            "unknown faults mode '" + online.faults
            + "'; valid modes: off, plan");
    if (online.retryMax < 0 || online.retryMax > 16)
        return Status::invalidArgument(
            "retry_max must be in [0, 16], got "
            + std::to_string(online.retryMax));
    if (!(online.retryBackoff >= 0) || !std::isfinite(online.retryBackoff))
        return Status::invalidArgument(
            "retry_backoff must be >= 0 seconds");
    if (!(online.requestTimeout >= 0)
        || !std::isfinite(online.requestTimeout))
        return Status::invalidArgument(
            "request_timeout must be >= 0 seconds (0 disables the "
            "watchdog)");
    FaultPlan fault_plan;
    if (online.faults == "plan") {
        if (online.faultPlan.empty())
            return Status::invalidArgument(
                "faults=plan requires a fault-plan JSON schedule "
                "(--fault-plan)");
        auto parsed = FaultPlan::fromJsonText(online.faultPlan);
        if (!parsed.ok())
            return parsed.status();
        fault_plan = *std::move(parsed);
    }

    auto policy = makeQueuePolicy(online.policy);
    if (!policy.ok())
        return policy.status();

    // ONE serving system — engine, device, KV — shared by every
    // in-flight request; interleaving goes through suspend/resume.
    auto system = ServingSystem::create(options);
    if (!system.ok())
        return system.status();

    // The shared KV budget. An explicit --kv-budget is the honest
    // single-device pool all in-flight requests contend for; 0 keeps
    // the legacy PR3 accounting where every in-flight slot enjoyed a
    // full engine budget (2x covers the offload planner, which grants
    // each model the whole budget), so pre-existing traces replay
    // bit-for-bit.
    const double budget_bytes = online.kvBudgetGiB > 0
        ? online.kvBudgetGiB * GiB
        : 2.0 * online.maxInflight * system->engine().kvBudgetBytes();
    auto ledger = std::make_unique<KvBudgetLedger>(budget_bytes);
    system->attachKvLedger(ledger.get());

    // Host KV tier: a budgeted host-side store behind a finite-
    // bandwidth link. Attaching alone changes nothing — the engine
    // only offers KV to the tier on the preemption-eviction path, so
    // a trace that never preempts replays bit-identically.
    std::unique_ptr<HostKvTier> tier;
    if (online.kvTier == "host") {
        const double host_budget = online.hostKvBudgetGiB > 0
            ? online.hostKvBudgetGiB * GiB
            : 2.0 * budget_bytes;
        tier = std::make_unique<HostKvTier>(
            host_budget, online.hostBandwidthGBs * GBps);
        system->attachHostTier(tier.get());
    }

    // Cross-request prefix cache: cached bytes are charged to the
    // SAME ledger as in-flight KV, so a full cache shows up as
    // admission pressure instead of invisible extra memory.
    if (online.prefixCache == "on") {
        const double cache_budget = online.prefixCacheBudgetGiB > 0
            ? online.prefixCacheBudgetGiB * GiB
            : 0.125 * budget_bytes;
        system->enablePrefixCache(cache_budget, ledger.get());
    }

    // The fault injector exists ONLY under faults == "plan": with it
    // absent no site holds a pointer, no probe consumes randomness and
    // every trace replays bit-identically to a fault-free build. The
    // injector derives its stream from the serving seed, so reruns at
    // the same seed inject the same fault sequence.
    std::unique_ptr<FaultInjector> injector;
    if (online.faults == "plan") {
        injector = std::make_unique<FaultInjector>(
            std::move(fault_plan), options.seed);
        ledger->attachFaultInjector(injector.get());
        system->attachFaultInjector(injector.get());
    }

    // The SJF predictor's inputs; names were just validated by
    // ServingSystem::create, so the lookups cannot fail.
    auto device = deviceByName(options.deviceName);
    auto profile = datasetByName(options.datasetName);
    return OnlineServer(*std::move(system), std::move(ledger),
                        std::move(tier), std::move(injector), online,
                        *std::move(policy), RooflineModel(*device),
                        *std::move(profile));
}

OnlineTraceResult
OnlineServer::serveTrace(int num_requests, double arrival_rate,
                         uint64_t seed)
{
    return serveArrivals(
        poissonArrivalTrace(num_requests, arrival_rate, seed));
}

OnlineTraceResult
OnlineServer::serveArrivals(const std::vector<double> &arrivals)
{
    std::vector<OnlineRequest> requests;
    requests.reserve(arrivals.size());
    for (const double arrival : arrivals) {
        OnlineRequest request;
        request.arrival = arrival;
        requests.push_back(request);
    }
    // Problem ids are in range by construction, so the only way
    // serveRequests can reject this input is a non-finite arrival
    // time; degrade that to the empty trace instead of serving
    // garbage timings.
    auto result = serveRequests(requests);
    if (!result.ok())
        return aggregateTrace({}, 0.0);
    return *std::move(result);
}

StatusOr<OnlineTraceResult>
OnlineServer::serveRequests(const std::vector<OnlineRequest> &requests)
{
    return serveRequestsImpl(requests, nullptr);
}

BatchResult
OnlineServer::serveProblems(int num_problems)
{
    const int count = std::min<int>(
        num_problems, static_cast<int>(system_.problems().size()));
    std::vector<OnlineRequest> requests;
    requests.reserve(static_cast<size_t>(std::max(0, count)));
    for (int i = 0; i < count; ++i) {
        OnlineRequest request;
        request.problemId = i;
        request.arrival = 0;
        request.slo = 0; // Batch serving carries no deadline.
        requests.push_back(request);
    }
    std::vector<RequestResult> results;
    // Arrivals are finite and ids in range by construction, so the
    // one serve loop cannot reject this input.
    auto trace = serveRequestsImpl(requests, &results);
    (void)trace;
    return aggregateResults(std::move(results),
                            system_.options().numBeams);
}

StatusOr<OnlineTraceResult>
OnlineServer::serveRequestsImpl(const std::vector<OnlineRequest> &requests,
                                std::vector<RequestResult> *results_sink)
{
    const std::vector<Problem> &problems = system_.problems();
    if (requests.empty() || problems.empty())
        return aggregateTrace({}, 0.0);

    constexpr double kInfinity = std::numeric_limits<double>::infinity();
    PreemptMode mode = PreemptMode::Slice;
    parsePreemptMode(online_.preempt, &mode); // Validated at create().
    const bool memory_aware = online_.kvBudgetGiB > 0;

    // --- Tiering / cost-aware victim state. All of it is inert at
    //     the defaults (kvTier "off", victimSelect "admission"):
    //     tier is null, cost_victims is false and kv_scale stays
    //     pinned at 1.0, so the legacy sweeps and admission gate run
    //     bit-for-bit. ---
    const HostKvTier *tier = hostTier_.get();
    const bool cost_victims = online_.victimSelect == "cost";
    // Restore-cost model of the cost-aware sweep: re-prefill is
    // exactly linear in tokens (chunkedRecomputeTime is a max of two
    // linear terms plus a constant), so seconds-per-byte is the
    // generator's per-token slope over its per-token KV footprint — a
    // ranking heuristic that treats a victim's bytes as generator KV
    // (the dominant tree).
    const ModelSpec &gen_model = system_.options().models.generator;
    const double recompute_per_byte =
        (roofline_.chunkedRecomputeTime(gen_model, 2)
         - roofline_.chunkedRecomputeTime(gen_model, 1))
        / gen_model.kvBytesPerToken();
    // Working-set calibration: predictKvWorkingSetBytes is a
    // pre-serving heuristic; under tiering or cost-aware eviction the
    // admission gate steers real memory decisions, so its predictions
    // are rescaled by a rolling EWMA of observed/predicted residency
    // across this trace's completions.
    const bool calibrate_kv = tier != nullptr || cost_victims;
    double kv_scale = 1.0;
    const auto effectiveKv = [&](double predicted_bytes) {
        return calibrate_kv ? predicted_bytes * kv_scale
                            : predicted_bytes;
    };
    const auto calibrateKv = [&](double predicted_bytes,
                                 double observed_bytes) {
        if (!calibrate_kv || predicted_bytes <= 0
            || observed_bytes <= 0)
            return;
        kv_scale = 0.8 * kv_scale
            + 0.2 * (observed_bytes / predicted_bytes);
    };
    // Victim cost estimate from a suspended request's actual resident
    // bytes: restoring costs the host-link copy when a tier is
    // attached (and the engine chose to swap), the re-prefill
    // otherwise.
    const auto victimCost = [&](double resident_bytes,
                                double last_run_at) {
        VictimCandidate candidate;
        candidate.kvBytes = resident_bytes;
        candidate.lastRunAt = last_run_at;
        candidate.recomputeSeconds =
            recompute_per_byte * resident_bytes;
        if (tier != nullptr)
            candidate.transferSeconds =
                tier->transferSeconds(resident_bytes);
        return candidate;
    };

    // --- Build and validate tickets in submission order. ---
    struct Ticket
    {
        QueuedRequest meta;
        double cancelAt = -1;
        double kvBytes = 0; //!< Predicted working set (admission).
        int attempts = 0;   //!< Fault-killed attempts so far (retry).
        std::vector<int32_t> promptIds; //!< Per-request prompt
                                        //!< override (empty = none).
    };
    std::vector<Ticket> tickets;
    tickets.reserve(requests.size());
    // predictServiceTime is a pure function of the problem for a
    // fixed server; memoize it so long traces over a small problem
    // set don't recompute it per request.
    std::vector<double> predicted(problems.size(), -1.0);
    std::vector<double> predicted_kv(problems.size(), -1.0);
    for (size_t i = 0; i < requests.size(); ++i) {
        const OnlineRequest &request = requests[i];
        // Negative arrivals are served as "queued since before the
        // trace began" (legacy max(arrival, device_free) semantics);
        // only non-finite times are meaningless.
        if (!std::isfinite(request.arrival))
            return Status::invalidArgument(
                "request arrival times must be finite");
        int problem_id = request.problemId;
        if (problem_id < 0)
            problem_id = static_cast<int>(i % problems.size());
        if (problem_id >= static_cast<int>(problems.size()))
            return Status::invalidArgument(
                "problemId " + std::to_string(problem_id)
                + " is out of range; the problem set has "
                + std::to_string(problems.size()) + " problems");

        Ticket ticket;
        ticket.meta.id = static_cast<uint64_t>(i);
        ticket.meta.problemId = problem_id;
        ticket.meta.arrival = request.arrival;
        ticket.meta.priority = request.priority;
        const double slo =
            request.slo < 0 ? online_.slo : request.slo;
        ticket.meta.deadline =
            slo > 0 ? request.arrival + slo : kInfinity;
        if (!request.promptIds.empty()) {
            // A prompt override changes the problem's shape, so the
            // memoized per-problem predictions do not apply.
            Problem shaped =
                problems[static_cast<size_t>(problem_id)];
            shaped.promptIds = request.promptIds;
            shaped.promptTokens =
                static_cast<int>(request.promptIds.size());
            ticket.meta.predictedCost = predictServiceTime(
                roofline_, system_.options().models, profile_,
                shaped, system_.options().numBeams);
            ticket.kvBytes = predictKvWorkingSetBytes(
                system_.options().models, profile_, shaped,
                system_.options().numBeams);
            ticket.promptIds = request.promptIds;
        } else {
            double &cost = predicted[static_cast<size_t>(problem_id)];
            if (cost < 0)
                cost = predictServiceTime(
                    roofline_, system_.options().models, profile_,
                    problems[static_cast<size_t>(problem_id)],
                    system_.options().numBeams);
            ticket.meta.predictedCost = cost;
            double &kv =
                predicted_kv[static_cast<size_t>(problem_id)];
            if (kv < 0)
                kv = predictKvWorkingSetBytes(
                    system_.options().models, profile_,
                    problems[static_cast<size_t>(problem_id)],
                    system_.options().numBeams);
            ticket.kvBytes = kv;
        }
        ticket.cancelAt = request.cancelAt;
        tickets.push_back(ticket);
    }
    std::stable_sort(tickets.begin(), tickets.end(),
                     [](const Ticket &a, const Ticket &b) {
                         return a.meta.arrival < b.meta.arrival;
                     });

    // The problem a ticket is actually served against: the request's
    // prompt override (multi-turn prefix-cache traces) reshapes a
    // copy; without one the stored problem is used unchanged.
    const auto ticketProblem = [&problems](const Ticket &ticket) {
        Problem problem =
            problems[static_cast<size_t>(ticket.meta.problemId)];
        if (!ticket.promptIds.empty()) {
            problem.promptIds = ticket.promptIds;
            problem.promptTokens =
                static_cast<int>(ticket.promptIds.size());
        }
        return problem;
    };

    // --- Fault-tolerance state shared by both serve loops. All of it
    //     is inert when faults == "off": the injector is null, the
    //     watchdog is disabled by default and the retry queue never
    //     gains an entry, so the loops run their legacy schedules
    //     bit-for-bit. ---
    FaultInjector *injector = faults_.get();
    const long faults_before =
        injector != nullptr ? injector->injectedCount() : 0;
    struct RetryEntry
    {
        Ticket ticket;
        double eligibleAt = 0; //!< Backoff expiry (sim seconds).
    };
    std::vector<RetryEntry> retry_queue;
    int retries = 0;
    int timeouts = 0;
    int failed = 0;
    int failed_with_deadline = 0; //!< Never-completed requests that
                                  //!< carried a deadline (SLO misses).
    long fault_wasted = 0;
    long degraded_waves = 0;
    double degraded_time = 0;
    int degraded_episodes = 0;
    DegradeTracker degrade;
    // Degradation trades speculation throughput for stability, which
    // only pays off when kills are survivable — without a retry budget
    // the fault already failed the request, so there is nothing left
    // to protect (and the bench's no-retry arm measures exactly that).
    const bool degrade_enabled =
        injector != nullptr && online_.retryMax > 0;
    const double watchdog = online_.requestTimeout;

    // Kill verdict for a retryable fault: re-queue the attempt after
    // a capped exponential backoff, or fail the request for good once
    // its retry budget is spent.
    const auto scheduleRetry = [&](const Ticket &ticket, double at) {
        if (ticket.attempts >= online_.retryMax) {
            ++failed;
            if (std::isfinite(ticket.meta.deadline))
                ++failed_with_deadline;
            return;
        }
        RetryEntry entry;
        entry.ticket = ticket;
        ++entry.ticket.attempts;
        const int shift = std::min(entry.ticket.attempts - 1, 3);
        entry.eligibleAt =
            at + online_.retryBackoff * static_cast<double>(1 << shift);
        retry_queue.push_back(std::move(entry));
        ++retries;
    };

    // Backed-off attempts whose timer expired rejoin the policy queue
    // (their original arrival intact, so backoff reads as queueing).
    const auto drainRetryQueue = [&](std::vector<Ticket> &queued,
                                     double at) {
        for (size_t i = 0; i < retry_queue.size();) {
            if (retry_queue[i].eligibleAt <= at) {
                queued.push_back(std::move(retry_queue[i].ticket));
                retry_queue.erase(retry_queue.begin()
                                  + static_cast<long>(i));
            } else {
                ++i;
            }
        }
    };

    // Watchdog sweep over requests not yet in flight: queued and
    // backing-off requests older than the timeout are dropped (their
    // in-flight counterparts are swept by each loop, which must also
    // unwind engine state).
    const auto sweepWaiting = [&](std::vector<Ticket> &queued,
                                  double at) {
        if (watchdog <= 0)
            return;
        for (size_t i = queued.size(); i > 0; --i) {
            const Ticket &ticket = queued[i - 1];
            if (at - ticket.meta.arrival <= watchdog)
                continue;
            ++timeouts;
            if (std::isfinite(ticket.meta.deadline))
                ++failed_with_deadline;
            queued.erase(queued.begin() + static_cast<long>(i - 1));
        }
        for (size_t i = retry_queue.size(); i > 0; --i) {
            const Ticket &ticket = retry_queue[i - 1].ticket;
            if (at - ticket.meta.arrival <= watchdog)
                continue;
            ++timeouts;
            if (std::isfinite(ticket.meta.deadline))
                ++failed_with_deadline;
            retry_queue.erase(retry_queue.begin()
                              + static_cast<long>(i - 1));
        }
    };

    // Flip the engine's degraded mode on a window-state change.
    const auto updateDegraded = [&]() {
        if (!degrade_enabled)
            return;
        const bool was = degrade.degraded();
        const bool is = degrade.update();
        if (is == was)
            return;
        system_.engine().setDegraded(is);
        if (is)
            ++degraded_episodes;
    };

    // Fold fault accounting into the aggregated trace. Completed-only
    // population stands for latency statistics, but SLO attainment
    // must charge deadline-bearing requests that never completed as
    // misses — a fault that silently removed its victim from the
    // denominator would otherwise IMPROVE attainment.
    const auto stampFaultStats = [&](OnlineTraceResult &out) {
        if (injector != nullptr)
            out.injectedFaults =
                injector->injectedCount() - faults_before;
        out.retries = retries;
        out.timeouts = timeouts;
        out.failedRequests = failed;
        out.faultWastedTokens = fault_wasted;
        out.degradedWaves = degraded_waves;
        out.degradedTime = degraded_time;
        out.degradedEpisodes = degraded_episodes;
        if (failed_with_deadline > 0) {
            int completed_with_deadline = 0;
            for (const OnlineRequestRecord &rec : out.records)
                if (rec.hasDeadline())
                    ++completed_with_deadline;
            const int met =
                completed_with_deadline - out.deadlineMisses;
            out.deadlineMisses += failed_with_deadline;
            out.sloAttainment = static_cast<double>(met)
                / (completed_with_deadline + failed_with_deadline);
        }
        // The degraded engine mode must not leak into the next trace
        // served by this server.
        if (degrade_enabled)
            system_.engine().setDegraded(false);
    };

    // --- Continuous batching: every wave co-schedules decode across
    //     ALL in-flight requests in one fused engine wave
    //     (sched/batch_scheduler.h); the time-slicing loop below is
    //     bypassed entirely. Admission (policy pick, doomed shedding,
    //     memory gate) is identical to the time-sliced path. ---
    if (online_.batching == "continuous") {
        const BatchScheduler scheduler(online_.maxBatchedTokens,
                                       online_.prefillChunk);
        const double step_tokens =
            std::max(1.0, system_.engine().expectedStepTokens());

        struct BatchFlight
        {
            Ticket ticket;
            RequestId sysId = 0;
            bool started = false; //!< rec.start stamped at the first
                                  //!< wave that scheduled the request.
            bool benched = false; //!< Force-evicted under memory
                                  //!< pressure; sits waves out until
                                  //!< the ledger can hold its
                                  //!< predicted working set again.
            long decoded = 0;     //!< Decode tokens this attempt has
                                  //!< produced (wasted if killed).
            double lastRunAt = 0; //!< Wave end of its last decode
                                  //!< (cost-aware victim recency).
            double peakKvBytes = 0; //!< Largest observed residency
                                    //!< (EWMA calibration).
            OnlineRequestRecord rec;
        };

        std::vector<Ticket> queued;
        std::vector<BatchFlight> inflight;
        std::vector<OnlineRequestRecord> records;
        records.reserve(tickets.size());
        std::vector<QueuedRequest> view; // pick() scratch.
        size_t next_ticket = 0;
        double now = 0;
        double busy = 0;
        int cancelled = 0;
        int shed = 0;
        long recomputed_tokens = 0;
        long reprefilled_tokens = 0;
        long preempt_evicted = 0;
        long verified_tokens = 0;
        long prefix_hit_tokens = 0;
        long swapped_out_tokens = 0;
        long swapped_in_tokens = 0;
        double swap_transfer_time = 0;
        long waves = 0;
        long decode_members = 0;
        const size_t max_inflight =
            static_cast<size_t>(online_.maxInflight);

        while (true) {
            if (injector != nullptr)
                injector->setNow(now);
            while (next_ticket < tickets.size()
                   && tickets[next_ticket].meta.arrival <= now)
                queued.push_back(tickets[next_ticket++]);
            drainRetryQueue(queued, now);

            for (size_t i = queued.size(); i > 0; --i) {
                const double cancel_at = queued[i - 1].cancelAt;
                if (cancel_at >= 0 && cancel_at <= now) {
                    queued.erase(queued.begin()
                                 + static_cast<long>(i - 1));
                    ++cancelled;
                }
            }

            // Watchdog: abort requests older than the timeout.
            // In-flight members are unwound through cancelWith, which
            // refunds their KV charge and prefix pins exactly (the
            // abnormal-exit path never publishes their prompt).
            sweepWaiting(queued, now);
            if (watchdog > 0) {
                for (size_t i = inflight.size(); i > 0; --i) {
                    BatchFlight &flight = inflight[i - 1];
                    if (now - flight.rec.arrival <= watchdog)
                        continue;
                    ++timeouts;
                    if (std::isfinite(flight.rec.deadline))
                        ++failed_with_deadline;
                    fault_wasted += flight.decoded;
                    checkOk(system_.cancelWith(
                        flight.sysId,
                        Status::deadlineExceeded(
                            "request exceeded --request-timeout")));
                    checkOk(system_.release(flight.sysId));
                    inflight.erase(inflight.begin()
                                   + static_cast<long>(i - 1));
                }
            }

            // Degraded mode halves the admission ceiling: fewer
            // co-resident requests means each kill wastes less decode
            // work and retries re-enter a calmer batch.
            const size_t effective_inflight =
                degrade_enabled && degrade.degraded()
                    ? std::max<size_t>(1, max_inflight / 2)
                    : max_inflight;
            while (!queued.empty()
                   && inflight.size() < effective_inflight) {
                view.clear();
                for (const Ticket &ticket : queued)
                    view.push_back(ticket.meta);
                size_t pick = policy_->pick(view, now);
                if (pick >= queued.size())
                    pick = 0; // Defensive against custom policies.
                const Ticket ticket = queued[pick];
                if (online_.shedDoomed
                    && std::isfinite(ticket.meta.deadline)
                    && now + ticket.meta.predictedCost
                        > ticket.meta.deadline) {
                    queued.erase(queued.begin()
                                 + static_cast<long>(pick));
                    ++shed;
                    continue;
                }
                if (memory_aware && !inflight.empty()) {
                    double inflight_kv = 0;
                    for (const BatchFlight &f : inflight)
                        inflight_kv += effectiveKv(f.ticket.kvBytes);
                    if (inflight_kv + effectiveKv(ticket.kvBytes)
                        > ledger_->totalBytes())
                        break; // Wait for completions.
                }
                queued.erase(queued.begin() + static_cast<long>(pick));
                BatchFlight flight;
                flight.ticket = ticket;
                flight.lastRunAt = now;
                flight.rec.problemId = ticket.meta.problemId;
                flight.rec.arrival = ticket.meta.arrival;
                flight.rec.priority = ticket.meta.priority;
                flight.rec.deadline = ticket.meta.deadline;
                flight.sysId = system_.submit(ticketProblem(ticket));
                // Park it immediately with a deferred prompt: the
                // scheduler feeds the prompt in chunks so it never
                // stalls the decoders already in the batch.
                checkOk(system_.startSuspended(flight.sysId,
                                               /*defer_prompt=*/true));
                inflight.push_back(std::move(flight));
            }

            if (inflight.empty()) {
                if (next_ticket >= tickets.size()
                    && retry_queue.empty() && queued.empty())
                    break; // Trace drained.
                // Idle until the next arrival OR the next retry
                // becomes eligible, whichever is sooner.
                double next_event = kInfinity;
                if (next_ticket < tickets.size())
                    next_event = tickets[next_ticket].meta.arrival;
                for (const RetryEntry &entry : retry_queue)
                    next_event = std::min(next_event, entry.eligibleAt);
                if (!std::isfinite(next_event))
                    break; // Defensive: nothing can ever run.
                now = std::max(now, next_event);
                continue;
            }

            // Under budget pressure the later-admitted members are
            // force-evicted and benched. Benching is sticky with
            // hysteresis: a member returns only when the ledger can
            // hold its predicted working set on top of double the
            // pressure threshold — re-admitting it the moment its own
            // eviction freed the room would lazily re-prefill its KV,
            // re-create the pressure and evict it again, paying the
            // recompute forever. The oldest member always runs (a
            // benched member that becomes oldest after a completion
            // is released), so a thrashing batch degenerates to the
            // time-sliced server's one-resident-working-set shape
            // instead of deadlocking or ping-ponging.
            if (memory_aware) {
                const double headroom = 0.10 * ledger_->totalBytes();
                // A benched member that became front after a
                // completion is force-returned (the progress
                // guarantee: the oldest member always runs, so nobody
                // starves). Remembered so the hysteresis rule below
                // cannot clear the same flag twice.
                const bool front_returned = inflight.front().benched;
                inflight.front().benched = false;
                if (!cost_victims) {
                    // Legacy sweep: youngest-admitted member first.
                    for (size_t i = inflight.size();
                         i > 1 && ledger_->freeBytes() < headroom;
                         --i) {
                        if (inflight[i - 1].benched)
                            continue;
                        auto evicted = system_.evictSuspendedKv(
                            inflight[i - 1].sysId);
                        if (evicted.ok()) {
                            preempt_evicted += *evicted;
                            inflight[i - 1].benched = true;
                        }
                    }
                } else if (ledger_->freeBytes() < headroom) {
                    // Cost-aware sweep: bench the members whose KV is
                    // cheapest to bring back (the front never benches
                    // — it is the progress guarantee).
                    std::vector<size_t> members;
                    std::vector<VictimCandidate> candidates;
                    for (size_t i = 1; i < inflight.size(); ++i) {
                        if (inflight[i].benched)
                            continue;
                        auto info =
                            system_.suspendedInfo(inflight[i].sysId);
                        if (!info.ok() || info->residentKvBytes <= 0)
                            continue;
                        members.push_back(i);
                        candidates.push_back(
                            victimCost(info->residentKvBytes,
                                       inflight[i].lastRunAt));
                    }
                    for (const size_t k :
                         rankEvictionVictims(candidates)) {
                        if (ledger_->freeBytes() >= headroom)
                            break;
                        BatchFlight &victim = inflight[members[k]];
                        auto evicted =
                            system_.evictSuspendedKv(victim.sysId);
                        if (evicted.ok()) {
                            preempt_evicted += *evicted;
                            victim.benched = true;
                        }
                    }
                }
                // At most one return per wave, oldest benched first
                // (pickBenchReturn holds the unit-tested contract).
                std::vector<std::pair<bool, double>> wave;
                wave.reserve(inflight.size());
                for (const BatchFlight &flight : inflight)
                    wave.emplace_back(flight.benched,
                                      effectiveKv(flight.ticket.kvBytes));
                const int back = pickBenchReturn(
                    wave, ledger_->freeBytes(), headroom,
                    front_returned);
                if (back >= 0)
                    inflight[static_cast<size_t>(back)].benched =
                        false;
            }

            // Wave-step fault sweep: every member about to decode
            // this wave probes the injector (benched members sit the
            // wave out and are not at risk). A faulted member's
            // attempt dies before the wave runs — it consumes no
            // device time, its partial decode is wasted recompute and
            // its KV/ledger/prefix pins are refunded by cancelWith.
            if (injector != nullptr) {
                for (size_t i = inflight.size(); i > 0; --i) {
                    BatchFlight &flight = inflight[i - 1];
                    if (flight.benched)
                        continue;
                    const bool fault = injector->shouldFault(
                        FaultSite::kWaveStep,
                        static_cast<long>(flight.ticket.meta.id));
                    if (degrade_enabled)
                        degrade.record(fault);
                    if (!fault)
                        continue;
                    fault_wasted += flight.decoded;
                    checkOk(system_.cancelWith(
                        flight.sysId,
                        Status::unavailable(
                            "injected transient device error")));
                    checkOk(system_.release(flight.sysId));
                    scheduleRetry(flight.ticket, now);
                    inflight.erase(inflight.begin()
                                   + static_cast<long>(i - 1));
                }
                updateDegraded();
                if (inflight.empty())
                    continue; // Loop top re-admits / idles.
            }

            std::vector<RequestId> ids;
            ids.reserve(inflight.size());
            std::vector<BatchCandidate> candidates;
            candidates.reserve(inflight.size());
            for (size_t i = 0; i < inflight.size(); ++i) {
                ids.push_back(inflight[i].sysId);
                if (inflight[i].benched)
                    continue;
                const auto info =
                    system_.suspendedInfo(inflight[i].sysId);
                if (calibrate_kv)
                    inflight[i].peakKvBytes =
                        std::max(inflight[i].peakKvBytes,
                                 info->residentKvBytes);
                BatchCandidate candidate;
                candidate.member = i;
                candidate.promptRemaining = info->promptTokensPending;
                candidate.prefixKey = info->prefixKey;
                candidate.decodeTokens = std::max(
                    1, static_cast<int>(
                           std::max(1, info->activeBeams)
                           * step_tokens));
                candidates.push_back(candidate);
            }

            const BatchPlan plan = scheduler.plan(candidates);
            auto outcome = system_.stepBatch(ids, plan);
            if (!outcome.ok())
                return outcome.status(); // Unreachable: all suspended.

            ++waves;
            decode_members += plan.decodeMembers();
            const double wave_start = now;
            now += outcome->schedule.waveTime;
            busy += outcome->schedule.waveTime;
            if (degrade_enabled && degrade.degraded()) {
                ++degraded_waves;
                degraded_time += outcome->schedule.waveTime;
            }

            for (size_t i = inflight.size(); i > 0; --i) {
                const size_t idx = i - 1;
                const BatchMemberOutcome &member =
                    outcome->members[idx];
                if (!member.participated)
                    continue;
                BatchFlight &flight = inflight[idx];
                if (!flight.started) {
                    flight.rec.start = wave_start;
                    flight.started = true;
                }
                flight.rec.activeTime += member.activeDelta;
                flight.decoded += member.decodedTokens;
                flight.lastRunAt = now;
                if (member.moreWork)
                    continue;
                // Finished this wave (stepBatch completed it).
                flight.rec.finish = now;
                auto result = system_.result(flight.sysId);
                if (result.ok()) {
                    verified_tokens += result->verifiedTokens;
                    recomputed_tokens += static_cast<long>(
                        result->kvStats.recomputedTokens);
                    reprefilled_tokens += static_cast<long>(
                        result->kvStats.reprefilledTokens);
                    prefix_hit_tokens += static_cast<long>(
                        result->kvStats.prefixHitTokens);
                    swapped_out_tokens += static_cast<long>(
                        result->kvStats.swappedOutTokens);
                    swapped_in_tokens += static_cast<long>(
                        result->kvStats.swappedInTokens);
                    swap_transfer_time +=
                        result->kvStats.swapTransferTime;
                    calibrateKv(flight.ticket.kvBytes,
                                flight.peakKvBytes);
                    if (results_sink)
                        results_sink->push_back(*std::move(result));
                }
                records.push_back(flight.rec);
                checkOk(system_.release(flight.sysId));
                inflight.erase(inflight.begin()
                               + static_cast<long>(idx));
            }
        }

        // Trace drained: drop the engine's idle context so the last
        // finished request's KV charge leaves the shared ledger (only
        // the prefix cache's own residency may remain).
        system_.engine().releaseFinishedKv();

        OnlineTraceResult out =
            aggregateTrace(std::move(records), busy);
        out.cancelled = cancelled;
        out.shedRequests = shed;
        out.recomputedTokens = recomputed_tokens;
    out.reprefilledTokens = reprefilled_tokens;
        out.reprefilledTokens = reprefilled_tokens;
        out.preemptEvictedTokens = preempt_evicted;
        out.verifiedTokens = verified_tokens;
        out.prefixHitTokens = prefix_hit_tokens;
        out.swappedOutTokens = swapped_out_tokens;
        out.swappedInTokens = swapped_in_tokens;
        out.swapTransferTime = swap_transfer_time;
        out.batchOccupancy = waves > 0
            ? static_cast<double>(decode_members)
                / static_cast<double>(waves)
            : 0.0;
        stampFaultStats(out);
        return out;
    }

    // --- In-flight bookkeeping. Callbacks capture their box's
    //     address, so boxes live behind stable unique_ptrs. ---
    struct FlightBox
    {
        double clock = 0; //!< Engine clock after the last iteration.
        bool finished = false;
        RequestResult result;
    };

    struct InFlight
    {
        Ticket ticket;
        RequestId sysId = 0; //!< 0 until first mounted on the engine.
        double wallBase = 0; //!< Wall time of the request's engine
                             //!< clock zero: start + slices the device
                             //!< spent on other requests since.
        double lastRunAt = 0; //!< End of its last engine slice
                              //!< (cost-aware victim recency).
        double peakKvBytes = 0; //!< Largest observed residency
                                //!< (EWMA calibration).
        OnlineRequestRecord rec;
        std::unique_ptr<FlightBox> box;
    };

    constexpr size_t kNone = static_cast<size_t>(-1);
    std::vector<Ticket> queued;
    std::vector<InFlight> inflight;
    std::vector<OnlineRequestRecord> records;
    records.reserve(tickets.size());
    std::vector<QueuedRequest> view; // pick() scratch.
    size_t next_ticket = 0;
    size_t rr = 0;        //!< Round-robin cursor (slice mode).
    size_t current = kNone; //!< In-flight index mounted on the engine.
    double now = 0;
    double busy = 0;
    int cancelled = 0;
    int shed = 0;
    int context_switches = 0;
    int preemptions = 0;
    long recomputed_tokens = 0;
    long reprefilled_tokens = 0;
    long preempt_evicted = 0;
    long verified_tokens = 0;
    long prefix_hit_tokens = 0;
    long swapped_out_tokens = 0;
    long swapped_in_tokens = 0;
    double swap_transfer_time = 0;
    const size_t max_inflight =
        static_cast<size_t>(online_.maxInflight);

    while (true) {
        if (injector != nullptr)
            injector->setNow(now);
        // Requests whose arrival has passed join the policy's queue.
        while (next_ticket < tickets.size()
               && tickets[next_ticket].meta.arrival <= now)
            queued.push_back(tickets[next_ticket++]);
        drainRetryQueue(queued, now);

        // Clients that gave up while queued leave it.
        for (size_t i = queued.size(); i > 0; --i) {
            const double cancel_at = queued[i - 1].cancelAt;
            if (cancel_at >= 0 && cancel_at <= now) {
                queued.erase(queued.begin()
                             + static_cast<long>(i - 1));
                ++cancelled;
            }
        }

        // Watchdog: abort requests older than the timeout. Mounted
        // and suspended victims alike are unwound through cancelWith,
        // which refunds KV charges and prefix pins exactly; a victim
        // admitted but never mounted (sysId 0) has no engine state.
        sweepWaiting(queued, now);
        if (watchdog > 0) {
            for (size_t i = inflight.size(); i > 0; --i) {
                const size_t idx = i - 1;
                InFlight &victim = inflight[idx];
                if (now - victim.rec.arrival <= watchdog)
                    continue;
                ++timeouts;
                if (std::isfinite(victim.rec.deadline))
                    ++failed_with_deadline;
                if (victim.sysId != 0) {
                    if (idx == current)
                        fault_wasted +=
                            system_.engine().generatedTokensSoFar();
                    checkOk(system_.cancelWith(
                        victim.sysId,
                        Status::deadlineExceeded(
                            "request exceeded --request-timeout")));
                    checkOk(system_.release(victim.sysId));
                }
                inflight.erase(inflight.begin()
                               + static_cast<long>(idx));
                if (current != kNone) {
                    if (idx == current)
                        current = kNone;
                    else if (idx < current)
                        --current;
                }
                if (idx < rr)
                    --rr;
            }
            if (rr >= inflight.size())
                rr = 0;
        }

        // Degraded mode halves the admission ceiling (see the
        // continuous loop for rationale).
        const size_t effective_inflight =
            degrade_enabled && degrade.degraded()
                ? std::max<size_t>(1, max_inflight / 2)
                : max_inflight;
        // The policy fills free in-flight slots (work conservation:
        // the device never idles while a request is queued).
        while (!queued.empty() && inflight.size() < effective_inflight) {
            view.clear();
            for (const Ticket &ticket : queued)
                view.push_back(ticket.meta);
            size_t pick = policy_->pick(view, now);
            if (pick >= queued.size())
                pick = 0; // Defensive against custom policies.

            const Ticket ticket = queued[pick];

            // Doomed-request shedding: when the predicted finish
            // already exceeds the deadline, admitting it only burns
            // device time another request could meet its SLO with.
            if (online_.shedDoomed && std::isfinite(ticket.meta.deadline)
                && now + ticket.meta.predictedCost
                    > ticket.meta.deadline) {
                queued.erase(queued.begin() + static_cast<long>(pick));
                ++shed;
                continue;
            }

            // Memory-aware admission: never admit a request the
            // shared budget cannot hold alongside the in-flight
            // working sets (an always-thrashing mix helps nobody).
            // A lone request is always admitted — the engine degrades
            // gracefully under budget pressure.
            if (memory_aware && !inflight.empty()) {
                double inflight_kv = 0;
                for (const InFlight &f : inflight)
                    inflight_kv += effectiveKv(f.ticket.kvBytes);
                if (inflight_kv + effectiveKv(ticket.kvBytes)
                    > ledger_->totalBytes())
                    break; // Wait for completions.
            }

            queued.erase(queued.begin() + static_cast<long>(pick));
            InFlight flight;
            flight.ticket = ticket;
            flight.box = std::make_unique<FlightBox>();
            flight.wallBase = std::max(ticket.meta.arrival, now);
            flight.lastRunAt = flight.wallBase;
            flight.rec.problemId = ticket.meta.problemId;
            flight.rec.arrival = ticket.meta.arrival;
            flight.rec.start = flight.wallBase;
            flight.rec.priority = ticket.meta.priority;
            flight.rec.deadline = ticket.meta.deadline;
            inflight.push_back(std::move(flight));
        }

        if (inflight.empty()) {
            // All slots are free, so the admission loop above drained
            // the queue; the device idles until the next arrival OR
            // the next retry becomes eligible, whichever is sooner.
            if (next_ticket >= tickets.size() && retry_queue.empty()
                && queued.empty())
                break; // Trace drained.
            double next_event = kInfinity;
            if (next_ticket < tickets.size())
                next_event = tickets[next_ticket].meta.arrival;
            for (const RetryEntry &entry : retry_queue)
                next_event = std::min(next_event, entry.eligibleAt);
            if (!std::isfinite(next_event))
                break; // Defensive: nothing can ever run.
            now = std::max(now, next_event);
            continue;
        }

        // --- Choose which in-flight request runs this time slice. ---
        size_t chosen;
        switch (mode) {
        case PreemptMode::Off:
            // Run-to-completion: stick with the mounted request;
            // otherwise take the earliest admitted.
            chosen = current != kNone ? current : 0;
            break;
        case PreemptMode::Slice:
            // Round-robin, one engine iteration per turn (continuous
            // batching at the request level).
            if (rr >= inflight.size())
                rr = 0;
            chosen = rr;
            break;
        case PreemptMode::Policy:
        default: {
            // The policy ranks the in-flight set every slice; it may
            // take the engine from the running victim, but only when
            // its preemption predicate says the challenger is
            // strictly more urgent (no thrash on ties). predictedCost
            // is discounted by the device time each request has
            // already consumed, so "sjf" preempts on *remaining* work
            // (SRPT) rather than yanking a nearly finished victim for
            // a shorter total job.
            view.clear();
            for (const InFlight &f : inflight) {
                QueuedRequest meta = f.ticket.meta;
                meta.predictedCost = std::max(
                    0.0, meta.predictedCost - f.box->clock);
                view.push_back(meta);
            }
            size_t best = policy_->pick(view, now);
            if (best >= inflight.size())
                best = 0;
            if (current == kNone)
                chosen = best;
            else if (best != current
                     && policy_->shouldPreempt(view[current],
                                               view[best], now))
                chosen = best;
            else
                chosen = current;
            break;
        }
        }

        // --- Mount the chosen request on the engine. ---
        if (current != chosen) {
            if (current != kNone) {
                checkOk(system_.suspend(inflight[current].sysId));
                if (calibrate_kv) {
                    // A freshly suspended victim's residency is the
                    // trace's only honest observation of its real
                    // working set.
                    auto info = system_.suspendedInfo(
                        inflight[current].sysId);
                    if (info.ok())
                        inflight[current].peakKvBytes = std::max(
                            inflight[current].peakKvBytes,
                            info->residentKvBytes);
                }
                ++inflight[current].rec.preemptions;
                ++context_switches;
                // Mid-run switches only happen through slice-mode
                // rotation or the policy's shouldPreempt; only the
                // latter is a preemption in the scheduling sense.
                if (mode == PreemptMode::Policy)
                    ++preemptions;
            }
            InFlight &f = inflight[chosen];
            if (f.sysId == 0) {
                // In the non-slicing modes an admitted request may sit
                // unmounted behind run-to-completion predecessors (or
                // a policy that ranks it low); that wait is queueing,
                // not service, so service starts at first mount.
                // wallBase has been advanced by every intervening
                // slice, so it equals "now" here. Slice mode keeps the
                // admission stamp: rotation reaches a new request
                // within one round, and the legacy traces are defined
                // that way.
                if (mode != PreemptMode::Slice)
                    f.rec.start = f.wallBase;
                RequestCallbacks callbacks;
                callbacks.onStep =
                    [box = f.box.get()](const StepEvent &event) {
                        box->clock = event.clock;
                    };
                callbacks.onComplete =
                    [box = f.box.get()](RequestId,
                                        const RequestResult &result) {
                        box->finished = true;
                        box->result = result;
                    };
                f.sysId = system_.submit(ticketProblem(f.ticket),
                                         std::move(callbacks));
            } else {
                checkOk(system_.resume(f.sysId));
            }
            current = chosen;
        }

        // Under an explicit shared budget, make room for the running
        // request by force-evicting suspended victims — in admission
        // order by default, cheapest-to-restore first under
        // --victim-select cost — before their caches squeeze it into
        // thrashing.
        if (memory_aware) {
            const double headroom = 0.10 * ledger_->totalBytes();
            if (!cost_victims) {
                for (size_t i = 0;
                     i < inflight.size()
                     && ledger_->freeBytes() < headroom;
                     ++i) {
                    if (i == current || inflight[i].sysId == 0)
                        continue;
                    auto evicted =
                        system_.evictSuspendedKv(inflight[i].sysId);
                    if (evicted.ok())
                        preempt_evicted += *evicted;
                }
            } else if (ledger_->freeBytes() < headroom) {
                std::vector<size_t> victims;
                std::vector<VictimCandidate> candidates;
                for (size_t i = 0; i < inflight.size(); ++i) {
                    if (i == current || inflight[i].sysId == 0)
                        continue;
                    auto info =
                        system_.suspendedInfo(inflight[i].sysId);
                    if (!info.ok() || info->residentKvBytes <= 0)
                        continue;
                    victims.push_back(i);
                    candidates.push_back(
                        victimCost(info->residentKvBytes,
                                   inflight[i].lastRunAt));
                }
                for (const size_t k :
                     rankEvictionVictims(candidates)) {
                    if (ledger_->freeBytes() >= headroom)
                        break;
                    auto evicted = system_.evictSuspendedKv(
                        inflight[victims[k]].sysId);
                    if (evicted.ok())
                        preempt_evicted += *evicted;
                }
            }
        }

        InFlight &flight = inflight[current];
        FlightBox &box = *flight.box;

        // Wave-step fault probe: the mounted request is the one about
        // to decode, so it alone is at risk this slice. A fault kills
        // the attempt before the wave runs — no device time passes,
        // the partial decode is wasted recompute and cancelWith
        // refunds every KV charge and prefix pin.
        if (injector != nullptr) {
            const bool fault = injector->shouldFault(
                FaultSite::kWaveStep,
                static_cast<long>(flight.ticket.meta.id));
            if (degrade_enabled)
                degrade.record(fault);
            updateDegraded();
            if (fault) {
                fault_wasted +=
                    system_.engine().generatedTokensSoFar();
                checkOk(system_.cancelWith(
                    flight.sysId,
                    Status::unavailable(
                        "injected transient device error")));
                checkOk(system_.release(flight.sysId));
                scheduleRetry(flight.ticket, now);
                const size_t killed = current;
                inflight.erase(inflight.begin()
                               + static_cast<long>(killed));
                current = kNone;
                if (killed < rr)
                    --rr;
                if (rr >= inflight.size())
                    rr = 0;
                continue;
            }
        }

        system_.step();

        // The request's wall clock is its engine clock offset by every
        // slice the device spent elsewhere; computed this way (rather
        // than by accumulating deltas) the fifo/maxInflight=1 path
        // reproduces the legacy run-to-completion times bit-for-bit.
        const double slice_end = flight.wallBase
            + (box.finished ? box.result.completionTime : box.clock);
        for (InFlight &other : inflight) {
            if (&other != &flight)
                other.wallBase += slice_end - now;
        }
        if (degrade_enabled && degrade.degraded()) {
            ++degraded_waves;
            degraded_time += slice_end - now;
        }
        now = slice_end;
        flight.lastRunAt = now;

        if (box.finished) {
            flight.rec.finish = now;
            // The engine clock is cumulative device time for this
            // request (it survives suspend/resume and includes any
            // post-eviction recompute), so it IS the active time.
            flight.rec.activeTime = box.result.completionTime;
            busy += box.result.completionTime;
            recomputed_tokens += static_cast<long>(
                box.result.kvStats.recomputedTokens);
            reprefilled_tokens += static_cast<long>(
                box.result.kvStats.reprefilledTokens);
            prefix_hit_tokens += static_cast<long>(
                box.result.kvStats.prefixHitTokens);
            swapped_out_tokens += static_cast<long>(
                box.result.kvStats.swappedOutTokens);
            swapped_in_tokens += static_cast<long>(
                box.result.kvStats.swappedInTokens);
            swap_transfer_time += box.result.kvStats.swapTransferTime;
            calibrateKv(flight.ticket.kvBytes, flight.peakKvBytes);
            verified_tokens += box.result.verifiedTokens;
            if (results_sink)
                results_sink->push_back(box.result);
            records.push_back(flight.rec);
            checkOk(system_.release(flight.sysId));
            const size_t finished = current;
            inflight.erase(inflight.begin()
                           + static_cast<long>(finished));
            current = kNone;
            if (finished < rr)
                --rr;
            if (rr >= inflight.size())
                rr = 0;
        } else if (mode == PreemptMode::Slice) {
            rr = (rr + 1) % inflight.size();
        }
    }

    // Trace drained: drop the engine's idle context so the last
    // finished request's KV charge leaves the shared ledger (only the
    // prefix cache's own residency may remain).
    system_.engine().releaseFinishedKv();

    OnlineTraceResult out = aggregateTrace(std::move(records), busy);
    out.cancelled = cancelled;
    out.shedRequests = shed;
    out.contextSwitches = context_switches;
    out.preemptions = preemptions;
    out.recomputedTokens = recomputed_tokens;
    out.reprefilledTokens = reprefilled_tokens;
    out.preemptEvictedTokens = preempt_evicted;
    out.verifiedTokens = verified_tokens;
    out.prefixHitTokens = prefix_hit_tokens;
    out.swappedOutTokens = swapped_out_tokens;
    out.swappedInTokens = swapped_in_tokens;
    out.swapTransferTime = swap_transfer_time;
    // Time-slicing decodes exactly one request per engine wave.
    out.batchOccupancy = out.records.empty() ? 0.0 : 1.0;
    stampFaultStats(out);
    return out;
}

std::vector<size_t>
rankEvictionVictims(const std::vector<VictimCandidate> &candidates)
{
    std::vector<size_t> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    // min(transfer, recompute) is the restore price actually paid:
    // the engine swaps exactly when the host-link copy is strictly
    // cheaper than re-prefill, so whichever is smaller is what the
    // victim's next run costs. stable_sort keeps the admission-order
    // tiebreak after recency.
    std::stable_sort(
        order.begin(), order.end(), [&](size_t a, size_t b) {
            const double cost_a =
                std::min(candidates[a].transferSeconds,
                         candidates[a].recomputeSeconds);
            const double cost_b =
                std::min(candidates[b].transferSeconds,
                         candidates[b].recomputeSeconds);
            if (cost_a != cost_b)
                return cost_a < cost_b;
            return candidates[a].lastRunAt < candidates[b].lastRunAt;
        });
    return order;
}

int
pickBenchReturn(const std::vector<std::pair<bool, double>> &members,
                double free_bytes, double headroom, bool front_returned)
{
    // When the front entered the wave benched (the oldest member
    // completed and promoted it), its forced return is the progress
    // guarantee, NOT a hysteresis return — but its flag must be
    // cleared exactly once, so the hysteresis rule below must never
    // pick the front again.
    for (size_t i = front_returned ? 1 : 0; i < members.size(); ++i) {
        if (!members[i].first)
            continue;
        // Only the OLDEST benched member is considered — a younger
        // one skipping ahead would starve it behind perpetual
        // re-eviction (the eviction sweep walks youngest-first) —
        // and it returns at most once per wave, only with restore
        // headroom to spare.
        if (free_bytes >= members[i].second + 2 * headroom)
            return static_cast<int>(i);
        return -1;
    }
    return -1;
}

OnlineTraceResult
aggregateTrace(std::vector<OnlineRequestRecord> records, double busy_time)
{
    OnlineTraceResult out;
    out.records = std::move(records);
    if (out.records.empty())
        return out;

    std::vector<double> latencies;
    latencies.reserve(out.records.size());
    double lat_total = 0;
    double queue_total = 0;
    int with_deadline = 0;
    int missed = 0;
    for (const auto &rec : out.records) {
        latencies.push_back(rec.latency());
        lat_total += rec.latency();
        queue_total += rec.queueDelay();
        if (rec.hasDeadline()) {
            ++with_deadline;
            if (rec.missedDeadline())
                ++missed;
        }
    }
    std::sort(latencies.begin(), latencies.end());
    const double n = static_cast<double>(out.records.size());
    out.meanLatency = lat_total / n;
    out.meanQueueDelay = queue_total / n;
    out.p50Latency = ceilRankPercentile(latencies, 0.50);
    out.p95Latency = ceilRankPercentile(latencies, 0.95);
    out.p99Latency = ceilRankPercentile(latencies, 0.99);
    out.deadlineMisses = missed;
    out.sloAttainment = with_deadline > 0
        ? 1.0 - static_cast<double>(missed) / with_deadline
        : 1.0;
    double makespan = 0;
    for (const auto &rec : out.records)
        makespan = std::max(makespan, rec.finish);
    out.makespan = makespan;
    out.utilization = out.makespan > 0 ? busy_time / out.makespan : 0;
    return out;
}

std::vector<double>
poissonArrivalTrace(int n, double rate, uint64_t seed)
{
    Rng rng = Rng(seed).fork(0xa881);
    std::vector<double> arrivals;
    arrivals.reserve(static_cast<size_t>(std::max(0, n)));
    double t = 0;
    for (int i = 0; i < n; ++i) {
        t += rng.exponential(rate);
        arrivals.push_back(t);
    }
    return arrivals;
}

std::vector<double>
burstyArrivalTrace(int n, double rate, uint64_t seed)
{
    // Pareto(alpha, xm) inter-arrival gaps with mean 1/rate: the
    // shape keeps most gaps tiny (bursts) and a heavy tail of long
    // silences, unlike the memoryless exponential.
    constexpr double kAlpha = 1.5;
    const double xm = (kAlpha - 1.0) / (kAlpha * rate);
    Rng rng = Rng(seed).fork(0xb117);
    std::vector<double> arrivals;
    arrivals.reserve(static_cast<size_t>(std::max(0, n)));
    double t = 0;
    for (int i = 0; i < n; ++i) {
        const double u = 1.0 - rng.uniform(); // (0, 1].
        t += xm * std::pow(u, -1.0 / kAlpha);
        arrivals.push_back(t);
    }
    return arrivals;
}

StatusOr<std::vector<double>>
makeArrivalTrace(const std::string &mode, int n, double rate,
                 uint64_t seed)
{
    if (n < 0)
        return Status::invalidArgument(
            "arrival trace length must be >= 0, got "
            + std::to_string(n));
    if (!(rate > 0) || !std::isfinite(rate))
        return Status::invalidArgument(
            "arrival rate must be a positive, finite number");
    if (mode == "poisson")
        return poissonArrivalTrace(n, rate, seed);
    if (mode == "bursty")
        return burstyArrivalTrace(n, rate, seed);
    return Status::invalidArgument(
        "unknown arrival mode '" + mode
        + "'; valid modes: poisson, bursty");
}

} // namespace fasttts
