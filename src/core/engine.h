/**
 * @file
 * The TTS serving engine: baseline vLLM-style loop + FastTTS
 * optimizations.
 *
 * One engine implements the paper's generalized two-stage loop
 * (Sec. 3.1): a Generation phase that decodes one thinking step per
 * active beam, and a Verification phase that scores the new steps and
 * selects/branches survivors. The FastTtsConfig toggles:
 *
 *  - S: Speculative Beam Extension (Algorithm 1) — freed decode slots
 *    are filled with speculative child branches of finished beams,
 *    chosen by the SelectSPEC score-bin policy; LookAhead Verification
 *    merges a completed speculative step into the current verifier
 *    request. Duplicates truncate speculative tokens ~ N(R*len).
 *  - P: Dynamic Prefix-Aware Scheduling — generation (and hence
 *    verification) order groups sibling beams to minimise KV eviction.
 *  - M: Asymmetric Multi-Model Memory Allocation — roofline-guided
 *    split of the KV budget between generator and verifier, with the
 *    optional offloading strategy.
 *
 * Speculation and scheduling affect only *when* tokens materialise,
 * never *what* a beam samples (see trajectory.h), so the engine is
 * algorithmically equivalent to the baseline by construction.
 */

#ifndef FASTTTS_CORE_ENGINE_H
#define FASTTTS_CORE_ENGINE_H

#include <memory>
#include <vector>

#include "alloc/memory_planner.h"
#include "core/config.h"
#include "core/speculative.h"
#include "core/trajectory.h"
#include "kv/kv_cache.h"
#include "metrics/request_metrics.h"
#include "model/generator.h"
#include "model/model_spec.h"
#include "model/verifier.h"
#include "model/workload.h"
#include "sched/scheduler.h"
#include "search/beam.h"
#include "search/search_algorithm.h"
#include "sim/roofline.h"
#include "sim/timeline.h"

namespace fasttts
{

/** Per-iteration snapshot for the cache/scheduling figures (5, 18). */
struct IterationStats
{
    int iteration = 0;
    int activeBeams = 0;
    long residentNodes = 0;    //!< Unique resident segments (shared).
    long residentTokens = 0;   //!< Unique resident tokens.
    long uniqueTokens = 0;     //!< Active working set with sharing.
    long unsharedTokens = 0;   //!< Footprint without prefix sharing.
    uint64_t evictions = 0;    //!< Cumulative generator evictions.
    uint64_t recomputedTokens = 0; //!< Cumulative recompute volume.
    double clock = 0;          //!< Time at iteration end.
    int decodeBatch = 0;       //!< Planned B_dec this iteration.
    int prefillBatch = 0;      //!< Planned B_pre this iteration.
};

/**
 * Serving engine for one generator+verifier pair on one device.
 *
 * runRequest() simulates one TTS request end-to-end and returns its
 * metrics; the engine is reusable across requests (the clock and KV
 * state reset each run).
 */
class FastTtsEngine
{
  public:
    /**
     * @param config Optimization toggles and substrate knobs.
     * @param models Generator/verifier pair + memory fraction.
     * @param device Edge GPU.
     * @param dataset Workload profile the requests come from.
     * @param algorithm Search method (not owned; must outlive engine).
     */
    FastTtsEngine(const FastTtsConfig &config, const ModelConfig &models,
                  const DeviceSpec &device, const DatasetProfile &dataset,
                  const SearchAlgorithm &algorithm);

    ~FastTtsEngine();

    FastTtsEngine(const FastTtsEngine &) = delete;
    FastTtsEngine &operator=(const FastTtsEngine &) = delete;

    /** Serve one problem with search width algorithm().beamWidth(). */
    RequestResult runRequest(const Problem &problem);

    // --- Incremental request lifecycle (the async serving facade in
    //     core/serving.h drives these; runRequest() is begin + step
    //     loop + finish) ---

    /** Reset engine state and admit the problem's initial beams. */
    void beginRequest(const Problem &problem);

    /**
     * Advance the in-flight request by one TTS iteration (replan,
     * generation, verification, selection).
     * @return true while further iterations remain; false once every
     *         beam completed (or the step hard cap was reached), after
     *         which finishRequest() collects the result.
     */
    bool stepRequest();

    /**
     * Abandon any still-active beams and build the request's metrics.
     * Also serves as cancellation: callable after any number of
     * stepRequest() calls.
     */
    RequestResult finishRequest();

    /** KV budget shared by the two models (bytes). */
    double kvBudgetBytes() const { return kvBudget_; }

    /** Clock of the last run (utilization trace when recordTrace). */
    const SimClock &clock() const { return clock_; }

    /** Allocation plan of the last iteration. */
    const AllocationPlan &currentPlan() const { return plan_; }

    /** Per-iteration snapshots of the last run. */
    const std::vector<IterationStats> &iterationStats() const
    {
        return iterStats_;
    }

    /** Generator-side KV cache (introspection for benches/tests). */
    const KvCacheManager &generatorKv() const { return *kvGen_; }

    /** Verifier-side KV cache. */
    const KvCacheManager &verifierKv() const { return *kvVer_; }

    /** Step-length histogram access: samples recorded per step index
     *  of the last run (for Fig. 3 right). */
    const std::vector<std::vector<int>> &stepTokenSamples() const
    {
        return stepTokens_;
    }

    /** Beams forcibly terminated because they could never fit. */
    int forcedTerminations() const { return forcedTerminations_; }

  private:
    struct ActiveBeam;
    struct SpecBranch;

    // --- Request lifecycle ---
    void resetRequestState(const Problem &problem);
    void replan();
    void runGenerationPhase();
    void runVerificationPhase();
    void runSelectionPhase();

    // --- Generation helpers ---
    bool admitBeam(size_t idx);
    void fillSpeculativeSlots();
    void finishStandardBeam(size_t idx);
    void killAllSpeculation();
    void chargeRecompute(int tokens);
    double currentAvgContext() const;

    // --- Bookkeeping ---
    void completeBeam(ActiveBeam &beam, double score);
    void pruneBeam(ActiveBeam &beam);
    void releaseBranch(SpecBranch &branch);

    FastTtsConfig config_;
    ModelConfig models_;
    DeviceSpec device_;
    DatasetProfile dataset_;
    const SearchAlgorithm &algorithm_;

    RooflineModel roofline_;
    SyntheticGenerator generator_;
    SyntheticVerifier verifier_;
    SpeculativePolicy specPolicy_;
    std::unique_ptr<MemoryPlanner> planner_;
    std::unique_ptr<BeamScheduler> scheduler_;

    double kvBudget_ = 0;
    double expectedStepTokens_ = 0; //!< Cached mean step length.
    std::unique_ptr<KvCacheManager> kvGen_;
    std::unique_ptr<KvCacheManager> kvVer_;

    // --- Per-request state ---
    Problem problem_;
    SimClock clock_;
    AllocationPlan plan_;
    Rng systemRng_{0};
    std::vector<std::unique_ptr<ActiveBeam>> active_;
    std::vector<CompletedSolution> completed_;
    std::vector<IterationStats> iterStats_;
    std::vector<std::vector<int>> stepTokens_;
    uint64_t nextBeamId_ = 1;
    uint64_t nextSegId_ = 1;
    int iteration_ = 0;
    int forcedTerminations_ = 0;
    int promptNodeGen_ = -1;
    int promptNodeVer_ = -1;

    // Accumulated request metrics.
    long generatedTokens_ = 0;
    long speculativeTokens_ = 0;
    long wastedSpecTokens_ = 0;

    // Generation-phase scratch (valid within one iteration).
    std::vector<size_t> queue_;
    std::vector<size_t> decodeSet_;
    // Running speculative branches as (active_ index, branch index)
    // pairs, kept sorted in beam order and maintained incrementally
    // (added at creation, filtered per event wave, cleared on kill) so
    // the event loop never rescans all beams x branches.
    std::vector<std::pair<size_t, size_t>> specRunning_;
    std::vector<std::pair<size_t, size_t>> specScratch_;
    double meanVerifierSeq_ = 0;  //!< Mean incremental request length.
    double meanVerifierPath_ = 0; //!< Mean full-path length (planning).
    bool specAllowed_ = true;      //!< Memory allows speculation.
    bool lookaheadAllowed_ = true; //!< Verifier cache under pressure.
};

} // namespace fasttts

#endif // FASTTTS_CORE_ENGINE_H
