/**
 * @file
 * Reproduces paper Fig. 5: the dynamic prefix-sharing opportunity.
 *
 * Left: beams-in-memory (token footprint) across iterations with and
 * without prefix caching, for Beam Search and DVTS — sharing saves a
 * large, growing fraction of memory.
 *
 * Right: prefix-sharing structure under naive (random) scheduling —
 * adjacent scheduled beams rarely share prefixes, quantified as the
 * adjacent shared-prefix sum vs. the prefix-aware order.
 *
 * Extended (beyond the paper figure): INTER-request sharing through
 * the global radix prefix index (kv/prefix_index.h) — a multi-turn
 * session whose every prompt prefix-extends the previous turn mounts the
 * cached prefix instead of re-prefilling it.
 */

#include <iostream>
#include <string>

#include "api/engine_args.h"
#include "core/engine.h"
#include "core/serving.h"
#include "kv/prefix_index.h"
#include "sched/scheduler.h"
#include "util/table.h"
#include "util/units.h"

using namespace fasttts;

int
main(int argc, char **argv)
{
    // Fixed configuration: parsed only for --help and to reject
    // unsupported flags; the parsed values are deliberately unused.
    (void)EngineArgs::parseOrExit(
        argc, argv, EngineArgs(),
        "Fig.5 prefix-sharing working set (single-request traces; the "
        "figure's configuration is fixed)",
        {});

    const DatasetProfile profile = aime2024();

    // --- Left: footprint with vs without prefix cache. ---
    for (const std::string method : {"beam_search", "dvts"}) {
        auto algo = makeAlgorithm(method, 128, 4).value();
        FastTtsEngine engine(FastTtsConfig::baseline(),
                             config1_5Bplus1_5B(), rtx4090(), profile,
                             *algo);
        // Run for iterationStats() only; the result is unused.
        (void)engine.runRequest(makeProblems(profile, 1, 2026)[0]);

        Table table("Fig.5 (left) active working set (k tokens) - "
                    + method + ", n=128");
        table.setHeader({"iteration", "w/ prefix cache",
                         "w/o prefix cache", "savings x"});
        for (const auto &s : engine.iterationStats()) {
            const double shared = s.uniqueTokens / 1000.0;
            const double unshared = s.unsharedTokens / 1000.0;
            table.addRow(
                {std::to_string(s.iteration + 1), formatDouble(shared, 1),
                 formatDouble(unshared, 1),
                 shared > 0 ? formatDouble(unshared / shared, 2) : "-"});
        }
        table.setCaption("Paper: prefix caching keeps the in-memory "
                         "footprint several times below the unshared "
                         "footprint, and the gap widens as the tree "
                         "deepens.");
        table.print(std::cout);
    }

    // --- Right: scheduling locality under naive vs prefix-aware
    //     order, measured on the final iteration's beams. ---
    auto algo = makeBeamSearch(128, 4);
    FastTtsEngine engine(FastTtsConfig::baseline(), config1_5Bplus1_5B(),
                         rtx4090(), profile, *algo);
    // Run for the final iteration's beams only; result unused.
    (void)engine.runRequest(makeProblems(profile, 1, 2026)[0]);

    Table right("Fig.5 (right) adjacent prefix sharing by scheduling "
                "policy (relative units)");
    right.setHeader({"policy", "adjacent shared-prefix sum"});
    // Rebuild a representative beam population from the KV tree is
    // engine-internal; instead measure on a synthetic final-iteration
    // population with the same branching structure.
    KvCacheManager kv(1 << 30, 1.0, 16);
    Rng rng(7);
    std::vector<SchedEntry> entries;
    size_t index = 0;
    for (int p = 0; p < 32; ++p) {
        const int parent = kv.createChild(KvCacheManager::kRoot,
                                          static_cast<uint64_t>(p) + 1,
                                          rng.uniformInt(400, 1200));
        for (int c = 0; c < 4; ++c) {
            const int leaf = kv.createChild(
                parent, 1000 + index, rng.uniformInt(50, 300));
            SchedEntry e;
            e.index = index;
            e.beamId = ++index;
            e.parentBeam = static_cast<uint64_t>(p);
            e.prevPosition = p;
            e.leaf = leaf;
            e.pathTokens = kv.pathTokens(leaf);
            entries.push_back(e);
        }
    }
    for (const std::string policy :
         {"random", "worst_case", "prefix_aware", "greedy_prefix"}) {
        auto order = entries;
        Rng policy_rng(11);
        makeScheduler(policy)->order(order, kv, policy_rng);
        right.addRow({policy,
                      std::to_string(scheduleSharedPrefixSum(kv, order))});
    }
    right.setCaption("Paper: naive scheduling does not group similar "
                     "beams; the prefix-aware order maximises adjacent "
                     "sharing (heatmap block-diagonal).");
    right.print(std::cout);

    // --- Extended: INTER-request sharing through the global radix
    //     prefix index — a multi-turn session where each turn's
    //     prompt prefix-extends the previous one. ---
    {
        ServingOptions opts;
        opts.numBeams = 16;
        ServingSystem system = ServingSystem::create(opts).value();
        system.enablePrefixCache(1.0 * GiB, nullptr);
        const Problem base = makeProblems(aime2024(), 1, 2026)[0];

        Table inter("Fig.5 (extended) inter-request prefix sharing - "
                    "one multi-turn session, n=16");
        inter.setHeader({"turn", "prompt tokens", "mounted from cache",
                         "prefilled suffix"});
        constexpr int kBasePrompt = 96;
        constexpr int kTurnGrowth = 64;
        constexpr int kTurns = 4;
        for (int turn = 1; turn <= kTurns; ++turn) {
            Problem problem = base;
            problem.promptTokens =
                kBasePrompt + (turn - 1) * kTurnGrowth;
            problem.promptIds.clear();
            // Position-keyed token identities: turn k's prompt is
            // exactly turn k-1's plus kTurnGrowth fresh tokens.
            for (int j = 0; j < problem.promptTokens; ++j)
                problem.promptIds.push_back(
                    static_cast<int32_t>(1000003 + j));
            const RequestResult result = system.serve(problem);
            const long mounted =
                static_cast<long>(result.kvStats.prefixHitTokens);
            inter.addRow({std::to_string(turn),
                          std::to_string(problem.promptTokens),
                          std::to_string(mounted),
                          std::to_string(problem.promptTokens
                                         - mounted)});
        }
        const PrefixIndexStats stats = system.prefixIndex()->stats();
        inter.setCaption(
            "Each turn mounts the longest cached prefix of its prompt "
            "from the global radix index (kv/prefix_index.h) instead "
            "of re-prefilling it: "
            + std::to_string(stats.hitTokens)
            + " prompt tokens served from cache across "
            + std::to_string(stats.lookups) + " lookups ("
            + std::to_string(stats.splits) + " node splits).");
        inter.print(std::cout);
    }
    return 0;
}
