/**
 * @file
 * Lightweight error propagation without exceptions.
 *
 * Every fallible operation in the public API returns a Status (or a
 * StatusOr<T> when it produces a value): registry lookups, EngineArgs
 * parsing/validation, ServingSystem construction, request
 * cancellation. A Status carries a machine-checkable code plus a
 * human-readable message; callers either branch on ok() or use
 * StatusOr<T>::value(), which terminates the process with the error
 * message on failure (the CHECK-style escape hatch for call sites
 * whose inputs are known-valid, e.g. benches running built-in
 * configurations).
 */

#ifndef FASTTTS_API_STATUS_H
#define FASTTTS_API_STATUS_H

#include <optional>
#include <string>
#include <utility>

namespace fasttts
{

/** Machine-checkable failure category of a Status. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument, //!< Malformed input (bad flag, bad JSON, range).
    kNotFound,        //!< Unknown name in a registry lookup.
    kAlreadyExists,   //!< Duplicate registration.
    kFailedPrecondition, //!< Operation invalid in the current state.
    kDeadlineExceeded,   //!< Request exceeded its watchdog deadline.
    kUnavailable, //!< Transient failure; retrying may succeed.
};

/** The name of a status code ("ok", "invalid_argument", ...). */
const char *statusCodeName(StatusCode code);

/**
 * Result of a fallible operation: kOk, or a code plus message.
 */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() : code_(StatusCode::kOk) {}

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status
    invalidArgument(std::string message)
    {
        return Status(StatusCode::kInvalidArgument, std::move(message));
    }

    static Status
    notFound(std::string message)
    {
        return Status(StatusCode::kNotFound, std::move(message));
    }

    static Status
    alreadyExists(std::string message)
    {
        return Status(StatusCode::kAlreadyExists, std::move(message));
    }

    static Status
    failedPrecondition(std::string message)
    {
        return Status(StatusCode::kFailedPrecondition,
                      std::move(message));
    }

    static Status
    deadlineExceeded(std::string message)
    {
        return Status(StatusCode::kDeadlineExceeded,
                      std::move(message));
    }

    static Status
    unavailable(std::string message)
    {
        return Status(StatusCode::kUnavailable, std::move(message));
    }

    [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
    [[nodiscard]] StatusCode code() const { return code_; }
    [[nodiscard]] const std::string &message() const { return message_; }

    /** "ok" or "<code>: <message>", for logs and CLI errors. */
    [[nodiscard]] std::string toString() const;

    /**
     * Whether retrying the failed operation may succeed. Only
     * kUnavailable is retryable: it marks transient conditions
     * (injected device error, allocation brownout) that clear on
     * their own. kDeadlineExceeded is deliberately NOT retryable —
     * the request already consumed its time budget.
     */
    [[nodiscard]] bool
    isRetryable() const
    {
        return code_ == StatusCode::kUnavailable;
    }

  private:
    StatusCode code_;
    std::string message_;
};

/** The success Status (named constructor; Status() is equivalent). */
inline Status
okStatus()
{
    return Status();
}

namespace detail
{
/** Print the status and abort; the non-inline slow path of value(). */
[[noreturn]] void failStatus(const Status &status);
} // namespace detail

/**
 * Terminate with the error message unless `status` is ok — the
 * CHECK-style escape hatch for call sites whose success is a class
 * invariant (built-in registrations, releasing a request id the same
 * function created). Everything else should branch on ok(); Status and
 * StatusOr are [[nodiscard]], so silently dropping an error does not
 * compile.
 */
inline void
checkOk(const Status &status)
{
    if (!status.ok())
        detail::failStatus(status);
}

/**
 * A Status or a value of type T (exactly one of the two).
 *
 * Converts implicitly from T and from a non-ok Status, so factory
 * functions can `return Status::notFound(...)` and `return value`
 * interchangeably. T must be movable; copy-only use is supported when
 * T is copyable.
 */
template <typename T>
class [[nodiscard]] StatusOr
{
  public:
    /** From a failure; must not be kOk. */
    StatusOr(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            detail::failStatus(Status::failedPrecondition(
                "StatusOr constructed from an ok Status"));
    }

    /** From a value. */
    StatusOr(T value) : value_(std::move(value)) {}

    [[nodiscard]] bool ok() const { return value_.has_value(); }

    /** The status: ok() when a value is present. */
    [[nodiscard]] const Status &status() const { return status_; }

    /** The value; terminates with the error message when !ok(). */
    T &
    value() &
    {
        if (!ok())
            detail::failStatus(status_);
        return *value_;
    }

    const T &
    value() const &
    {
        if (!ok())
            detail::failStatus(status_);
        return *value_;
    }

    T &&
    value() &&
    {
        if (!ok())
            detail::failStatus(status_);
        return *std::move(value_);
    }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_; //!< kOk iff value_ holds a value.
    std::optional<T> value_;
};

} // namespace fasttts

#endif // FASTTTS_API_STATUS_H
