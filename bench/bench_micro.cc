/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot data structures: the
 * radix-tree KV cache, the schedulers, and the allocation search. Not
 * a paper figure — documents that the runtime components are cheap
 * enough for per-iteration invocation (the paper quotes <1 ms for the
 * allocation search).
 */

#include <benchmark/benchmark.h>

#include "alloc/memory_planner.h"
#include "core/engine.h"
#include "core/online_server.h"
#include "kv/kv_cache.h"
#include "kv/kv_session.h"
#include "kv/kv_tier.h"
#include "model/model_spec.h"
#include "model/workload.h"
#include "sched/scheduler.h"
#include "search/search_algorithm.h"
#include "sim/device.h"
#include "util/rng.h"
#include "util/units.h"

namespace fasttts
{
namespace
{

/** Build a beam-search-shaped tree with the given number of leaves. */
std::vector<SchedEntry>
buildEntries(KvCacheManager &kv, int leaves, Rng &rng)
{
    std::vector<SchedEntry> entries;
    size_t index = 0;
    const int parents = std::max(1, leaves / 4);
    for (int p = 0; p < parents; ++p) {
        const int parent =
            kv.createChild(KvCacheManager::kRoot,
                           static_cast<uint64_t>(p) + 1,
                           rng.uniformInt(200, 1000));
        for (int c = 0; c < 4 && static_cast<int>(index) < leaves; ++c) {
            const int leaf = kv.createChild(
                parent, 10000 + index, rng.uniformInt(30, 300));
            SchedEntry e;
            e.index = index;
            e.beamId = ++index;
            e.parentBeam = static_cast<uint64_t>(p);
            e.prevPosition = p;
            e.leaf = leaf;
            e.pathTokens = kv.pathTokens(leaf);
            entries.push_back(e);
        }
    }
    return entries;
}

void
BM_RadixTouch(benchmark::State &state)
{
    KvCacheManager kv(64 * MiB, 28672, 16);
    Rng rng(1);
    auto entries = buildEntries(kv, static_cast<int>(state.range(0)),
                                rng);
    uint64_t tick = 0;
    for (auto _ : state) {
        for (const auto &e : entries)
            benchmark::DoNotOptimize(kv.ensureResident(e.leaf, ++tick));
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_RadixTouch)->Arg(64)->Arg(256)->Arg(1024);

void
BM_RadixAppend(benchmark::State &state)
{
    KvCacheManager kv(1024 * MiB, 28672, 16);
    const int leaf = kv.createChild(KvCacheManager::kRoot, 1, 0);
    (void)kv.ensureResident(leaf, 0);
    uint64_t tick = 0;
    for (auto _ : state) {
        if (!kv.appendTokens(leaf, 1, ++tick)) {
            state.PauseTiming();
            kv.truncateTokens(leaf, 0);
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RadixAppend);

void
BM_PrefixAwareScheduler(benchmark::State &state)
{
    KvCacheManager kv(1 << 30, 1.0, 16);
    Rng rng(2);
    auto entries = buildEntries(kv, static_cast<int>(state.range(0)),
                                rng);
    auto scheduler = makePrefixAwareScheduler();
    for (auto _ : state) {
        auto copy = entries;
        scheduler->order(copy, kv, rng);
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_PrefixAwareScheduler)->Arg(64)->Arg(512);

void
BM_GreedyPrefixScheduler(benchmark::State &state)
{
    KvCacheManager kv(1 << 30, 1.0, 16);
    Rng rng(3);
    auto entries = buildEntries(kv, static_cast<int>(state.range(0)),
                                rng);
    auto scheduler = makeGreedyPrefixScheduler();
    for (auto _ : state) {
        auto copy = entries;
        scheduler->order(copy, kv, rng);
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_GreedyPrefixScheduler)->Arg(64)->Arg(256);

/**
 * pathTokens on the leaf of a deep root->leaf chain. The cached prefix
 * sums make this O(1) regardless of depth; the pre-cache
 * implementation walked the whole chain (O(depth) per call), so this
 * is the headline microbenchmark for the KV accounting overhaul.
 */
void
BM_PathTokensDeepChain(benchmark::State &state)
{
    KvCacheManager kv(1 << 30, 1.0, 16);
    Rng rng(4);
    const int depth = static_cast<int>(state.range(0));
    int leaf = KvCacheManager::kRoot;
    for (int d = 0; d < depth; ++d) {
        leaf = kv.createChild(leaf, static_cast<uint64_t>(d) + 1,
                              rng.uniformInt(20, 200));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(kv.pathTokens(leaf));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathTokensDeepChain)->Arg(8)->Arg(64)->Arg(512);

/**
 * Full KV session save/restore round trip over a beam-search-shaped
 * tree: suspend snapshots the resident frontier and force-evicts
 * every block; resume re-materialises it. This is the per-preemption
 * cost of the online server's whole-request eviction path, so it must
 * stay far below one engine iteration.
 */
void
BM_KvSessionSuspendResume(benchmark::State &state)
{
    KvCacheManager kv(1 << 30, 1.0, 16);
    Rng rng(6);
    std::vector<SchedEntry> entries =
        buildEntries(kv, static_cast<int>(state.range(0)), rng);
    for (const auto &e : entries) {
        kv.retain(e.leaf);
        (void)kv.ensureResident(e.leaf, 1);
    }
    KvSession session(kv);
    uint64_t tick = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.suspend(tick++));
        benchmark::DoNotOptimize(session.resume(tick++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvSessionSuspendResume)->Arg(64)->Arg(256)->Arg(1024);

/**
 * Host-tier swap round trip: park every resident node of a beam-
 * search-shaped tree on the host tier, force-evict the device copy,
 * then restore the full frontier via ensureResident take() hits. This
 * is the bookkeeping cost of one preemption that chooses transfer
 * over recompute — the tier store itself must stay negligible next to
 * the simulated link time it models.
 */
void
BM_KvSwapOutIn(benchmark::State &state)
{
    KvCacheManager kv(1 << 30, 1.0, 16);
    HostKvTier tier(1 << 30, 16.0 * GBps);
    kv.attachHostTier(&tier, 1.0);
    Rng rng(7);
    std::vector<SchedEntry> entries =
        buildEntries(kv, static_cast<int>(state.range(0)), rng);
    for (const auto &e : entries) {
        kv.retain(e.leaf);
        (void)kv.ensureResident(e.leaf, 1);
    }
    uint64_t tick = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kv.swapOutResident());
        benchmark::DoNotOptimize(kv.forceEvictAll());
        for (const auto &e : entries)
            benchmark::DoNotOptimize(kv.ensureResident(e.leaf, tick));
        ++tick;
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_KvSwapOutIn)->Arg(8)->Arg(64)->Arg(512);

/**
 * Cost-aware victim ranking over one preemption sweep's candidate
 * set: the online server calls this under memory pressure each time
 * slice, so sorting the suspended set must stay trivial against an
 * engine wave.
 */
void
BM_VictimRankCostAware(benchmark::State &state)
{
    Rng rng(8);
    std::vector<VictimCandidate> candidates;
    const int count = static_cast<int>(state.range(0));
    candidates.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        VictimCandidate c;
        c.kvBytes = rng.uniform(1.0 * MiB, 512.0 * MiB);
        c.lastRunAt = rng.uniform(0.0, 100.0);
        c.transferSeconds = c.kvBytes / (16.0 * GBps);
        c.recomputeSeconds = rng.uniform(0.001, 0.5);
        candidates.push_back(c);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(rankEvictionVictims(candidates));
    state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_VictimRankCostAware)->Arg(4)->Arg(16)->Arg(64);

/**
 * retain/release round trip over a deep path: still O(depth) for the
 * refcount walk, but the unshared-token accounting is now counter
 * updates instead of full-tree scans on read.
 */
void
BM_RetainReleaseDeepPath(benchmark::State &state)
{
    KvCacheManager kv(1 << 30, 1.0, 16);
    Rng rng(5);
    const int depth = static_cast<int>(state.range(0));
    int leaf = KvCacheManager::kRoot;
    for (int d = 0; d < depth; ++d) {
        leaf = kv.createChild(leaf, static_cast<uint64_t>(d) + 1,
                              rng.uniformInt(20, 200));
    }
    for (auto _ : state) {
        kv.retain(leaf);
        benchmark::DoNotOptimize(kv.unsharedTokens());
        kv.release(leaf);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RetainReleaseDeepPath)->Arg(64)->Arg(512);

/**
 * One full engine event-loop step (replan + generation + verification
 * + selection) on a small beam-search request — the per-iteration cost
 * every serving benchmark pays, now free of beams x branches rescans.
 */
void
BM_EngineEventLoopStep(benchmark::State &state)
{
    const DeviceSpec device = deviceByName("RTX4090").value();
    const DatasetProfile dataset = datasetByName("AMC").value();
    const ModelConfig models = modelConfigByLabel("1.5B+1.5B").value();
    const auto algorithm =
        makeAlgorithm("beam_search", static_cast<int>(state.range(0)))
            .value();
    FastTtsConfig config;
    const std::vector<Problem> problems = makeProblems(dataset, 1, 7);
    FastTtsEngine engine(config, models, device, dataset, *algorithm);
    engine.beginRequest(problems[0]);
    for (auto _ : state) {
        if (!engine.stepRequest()) {
            state.PauseTiming();
            engine.finishRequest();
            engine.beginRequest(problems[0]);
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineEventLoopStep)->Arg(16)->Arg(64);

/**
 * Greedy prefix-aware order() over a wide beam set with deep shared
 * paths. One ancestor map per scheduled anchor (O(n depth) builds)
 * instead of one per candidate pair (O(n^2 depth)).
 */
void
BM_WideBeamGreedyOrder(benchmark::State &state)
{
    KvCacheManager kv(1 << 30, 1.0, 16);
    Rng rng(6);
    // Deep trunks: chains of 8 segments under the root, then 4 leaves
    // per trunk, so LCA walks traverse real depth.
    const int leaves = static_cast<int>(state.range(0));
    const int trunks = std::max(1, leaves / 4);
    std::vector<SchedEntry> entries;
    size_t index = 0;
    for (int t = 0; t < trunks; ++t) {
        int trunk = KvCacheManager::kRoot;
        for (int d = 0; d < 8; ++d) {
            trunk = kv.createChild(
                trunk,
                static_cast<uint64_t>(t) * 100 + static_cast<uint64_t>(d)
                    + 1,
                rng.uniformInt(50, 400));
        }
        for (int c = 0; c < 4 && static_cast<int>(index) < leaves; ++c) {
            const int leaf = kv.createChild(
                trunk, 1000000 + index, rng.uniformInt(30, 300));
            SchedEntry e;
            e.index = index;
            e.beamId = ++index;
            e.parentBeam = static_cast<uint64_t>(t);
            e.prevPosition = t;
            e.leaf = leaf;
            e.pathTokens = kv.pathTokens(leaf);
            entries.push_back(e);
        }
    }
    auto scheduler = makeGreedyPrefixScheduler();
    for (auto _ : state) {
        auto copy = entries;
        scheduler->order(copy, kv, rng);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_WideBeamGreedyOrder)->Arg(64)->Arg(256)->Arg(512);

void
BM_RooflineAllocationSearch(benchmark::State &state)
{
    RooflineModel roofline(rtx4090());
    auto planner = makeRooflinePlanner(qwen25Math1_5B(), skywork1_5B(),
                                       roofline);
    WorkloadShape shape;
    shape.numRequests = static_cast<int>(state.range(0));
    shape.verifierSeqLen = 1100;
    shape.verifierReqLen = 190;
    shape.decodeLen = 180;
    shape.avgCacheLen = 900;
    for (auto _ : state)
        benchmark::DoNotOptimize(planner->plan(shape, 2 * GiB));
    // The paper quotes < 1 ms per invocation on one CPU thread.
}
BENCHMARK(BM_RooflineAllocationSearch)->Arg(64)->Arg(512);

} // namespace
} // namespace fasttts

BENCHMARK_MAIN();
