/**
 * @file
 * Generation-phase beam ordering policies (paper Sec. 4.2).
 *
 * At each TTS iteration the engine hands the scheduler the list of
 * active reasoning paths; the scheduler's output order determines how
 * the list is partitioned into KV-budget-sized batches, and therefore
 * how much prefix-sharing locality consecutive batches enjoy. The
 * eviction cost model and the greedy max-shared-prefix policy follow
 * Sec. 4.2; Random is what vLLM's baseline does (Fig. 18), WorstCase
 * is the adversarial lower bound.
 */

#ifndef FASTTTS_SCHED_SCHEDULER_H
#define FASTTTS_SCHED_SCHEDULER_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kv/kv_cache.h"
#include "util/rng.h"

namespace fasttts
{

/** What the scheduler knows about one active beam. */
struct SchedEntry
{
    size_t index = 0;        //!< Position in the engine's active list.
    uint64_t beamId = 0;     //!< Stable beam identity.
    uint64_t parentBeam = 0; //!< Beam this one was branched from.
    int leaf = -1;           //!< KV radix-tree leaf node.
    int pathTokens = 0;      //!< Context length.
    int prevPosition = 0;    //!< Parent's position in the previous
                             //!< iteration's schedule (order carry-over).
};

/**
 * Shared-prefix size in tokens between two leaves' root paths — the
 * P(c_i, c_j) of the paper's objective.
 */
[[nodiscard]] int
sharedPrefixTokens(const KvCacheManager &kv, int leaf_a, int leaf_b);

/**
 * Ancestor depth map of one anchor leaf, built once and queried
 * against many other leaves. Callers that compare one anchor to n
 * candidates (the greedy argmax of Sec. 4.2) pay one O(depth) build
 * plus n O(depth) walks instead of n map builds — the difference
 * between O(n^2 depth) and O(n depth) per schedule.
 */
class SharedPrefixMap
{
  public:
    /** Record the path depth of every ancestor of anchor_leaf. */
    void build(const KvCacheManager &kv, int anchor_leaf);

    /** Shared-prefix tokens between the anchor and leaf_b; equals
     *  sharedPrefixTokens(kv, anchor, leaf_b). */
    [[nodiscard]] int
    sharedWith(const KvCacheManager &kv, int leaf_b) const;

  private:
    std::unordered_map<int, int> depthOf_;
};

/**
 * Total eviction-cost surrogate of a schedule: sum over adjacent pairs
 * of (tokens(T_i) - P(T_i, T_i+1)); lower is better. Used by tests and
 * the Fig. 18 bench.
 */
[[nodiscard]] long
scheduleEvictionCost(const KvCacheManager &kv,
                     const std::vector<SchedEntry> &order);

/** Sum of adjacent shared prefixes (the maximisation objective). */
[[nodiscard]] long
scheduleSharedPrefixSum(const KvCacheManager &kv,
                        const std::vector<SchedEntry> &order);

/**
 * Ordering policy interface.
 */
class BeamScheduler
{
  public:
    virtual ~BeamScheduler() = default;

    /** Policy name for reports. */
    [[nodiscard]] virtual std::string name() const = 0;

    /** Reorder entries in place. */
    virtual void order(std::vector<SchedEntry> &entries,
                       const KvCacheManager &kv, Rng &rng) const = 0;
};

/** Arrival-order (beam id) scheduling. */
[[nodiscard]] std::unique_ptr<BeamScheduler> makeFifoScheduler();

/** Uniform random order — the vLLM baseline of Fig. 18. */
[[nodiscard]] std::unique_ptr<BeamScheduler> makeRandomScheduler();

/** Adversarial order minimising adjacent prefix sharing. */
[[nodiscard]] std::unique_ptr<BeamScheduler> makeWorstCaseScheduler();

/**
 * Dynamic Prefix-Aware Scheduling: greedy argmax of the shared prefix
 * with the previously scheduled path (Sec. 4.2), implemented — as in
 * the paper — by grouping beams spawned from the same parent while
 * preserving the parents' relative order across iterations.
 */
[[nodiscard]] std::unique_ptr<BeamScheduler> makePrefixAwareScheduler();

/**
 * The literal greedy argmax policy (O(n^2) reference implementation);
 * used by tests to validate that the grouping fast path matches it.
 */
[[nodiscard]] std::unique_ptr<BeamScheduler>
makeGreedyPrefixScheduler();

/** Construct by name: "fifo", "random", "worst_case", "prefix_aware",
 *  "greedy_prefix". */
[[nodiscard]] std::unique_ptr<BeamScheduler>
makeScheduler(const std::string &name);

} // namespace fasttts

#endif // FASTTTS_SCHED_SCHEDULER_H
