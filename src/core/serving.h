/**
 * @file
 * ServingSystem: the plug-and-play public API of the library.
 *
 * Mirrors the paper's deployment model (Sec. 5): pick a device, a
 * generator+verifier configuration, a dataset workload and a TTS
 * search strategy, then serve requests. A ServingOptions struct
 * gathers everything; serveProblems() runs a batch of problems and
 * returns per-request metrics plus aggregates.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   ServingOptions opts;
 *   opts.config = FastTtsConfig::fastTts();
 *   opts.models = config1_5Bplus1_5B();
 *   opts.algorithmName = "beam_search";
 *   opts.numBeams = 32;
 *   ServingSystem system(opts);
 *   BatchResult out = system.serveProblems(8);
 */

#ifndef FASTTTS_CORE_SERVING_H
#define FASTTTS_CORE_SERVING_H

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/engine.h"
#include "metrics/request_metrics.h"
#include "model/model_spec.h"
#include "model/workload.h"
#include "sim/device.h"

namespace fasttts
{

/** Everything needed to stand up one serving stack. */
struct ServingOptions
{
    FastTtsConfig config = FastTtsConfig::fastTts();
    ModelConfig models = config1_5Bplus1_5B();
    std::string deviceName = "RTX4090";
    std::string datasetName = "AIME";
    std::string algorithmName = "beam_search";
    int numBeams = 32;       //!< Search width n.
    int branchFactor = 4;    //!< B for tree-search methods.
    uint64_t seed = 2026;    //!< Master seed for the problem set.
};

/** Batch-level aggregation over served problems. */
struct BatchResult
{
    std::vector<RequestResult> requests;

    double meanGoodput = 0;        //!< Precise Goodput (tokens/s).
    double meanLatency = 0;        //!< Completion time (s).
    double meanGeneratorTime = 0;
    double meanVerifierTime = 0;
    double top1Accuracy = 0;       //!< Majority-vote accuracy.
    double passAt1 = 0;
    double passAtNHalf = 0;        //!< Pass@(n/2).
    double passAtNAccuracy = 0;    //!< Pass@n.
};

/**
 * One configured serving stack (device + models + search).
 */
class ServingSystem
{
  public:
    explicit ServingSystem(const ServingOptions &options);
    ~ServingSystem();

    ServingSystem(const ServingSystem &) = delete;
    ServingSystem &operator=(const ServingSystem &) = delete;

    /** Serve one problem. */
    RequestResult serve(const Problem &problem);

    /** Serve the first num_problems of the dataset's problem set. */
    BatchResult serveProblems(int num_problems);

    /** The options the system was built with. */
    const ServingOptions &options() const { return options_; }

    /** Underlying engine (introspection for benches). */
    FastTtsEngine &engine() { return *engine_; }
    const FastTtsEngine &engine() const { return *engine_; }

    /** The deterministic problem set this system serves. */
    const std::vector<Problem> &problems() const { return problems_; }

  private:
    ServingOptions options_;
    DatasetProfile dataset_;
    std::unique_ptr<SearchAlgorithm> algorithm_;
    std::unique_ptr<FastTtsEngine> engine_;
    std::vector<Problem> problems_;
};

/** Aggregate a set of request results into a BatchResult. */
BatchResult aggregateResults(std::vector<RequestResult> requests,
                             int num_beams);

} // namespace fasttts

#endif // FASTTTS_CORE_SERVING_H
