/**
 * @file
 * Online serving front-end: queued TTS requests on one edge device.
 *
 * The paper's deployment model is interactive (batch size 1,
 * Sec. 6.1), but the serving system must stay responsive when new
 * requests arrive: the two-phase scheduler's speculative phase is
 * fully preemptible, so pending work never waits behind speculation
 * (Sec. 4.1.2). This front-end simulates a request queue with a
 * deterministic arrival process and reports per-request queueing
 * delay, device time, end-to-end latency and SLO attainment — the
 * level at which a downstream user would deploy the library.
 *
 * The server owns exactly ONE ServingSystem — one engine, one device,
 * one shared KV budget — no matter how many requests are in flight.
 * In-flight requests time-share the engine through the async facade's
 * suspend()/resume(): switching requests parks the victim's entire
 * engine state (beams, clocks, KV trees) in a SuspendedEngineRequest
 * and mounts the next one. All resident KV is charged to one shared
 * KvBudgetLedger, so concurrent requests genuinely contend for device
 * memory; under pressure a suspended request's KV is force-evicted
 * back to the pool and re-prefilled (counted as recompute) when it
 * next runs.
 *
 * Four axes are pluggable without touching the engine:
 *
 *  - Admission order: a registry-backed QueuePolicy
 *    (sched/queue_policy.h) decides which queued request takes the
 *    next free in-flight slot — "fifo", "priority" (with aging),
 *    "sjf" (roofline-predicted cost) and "edf" (SLO deadlines) ship
 *    built-in. With shedDoomed, a request whose predicted finish
 *    already exceeds its deadline is shed at admission instead of
 *    served doomed.
 *  - Preemption mode (OnlineServerOptions::preempt): "off" runs each
 *    admitted request to completion; "slice" round-robins in-flight
 *    requests one engine iteration at a time (continuous batching at
 *    the request level); "policy" lets the QueuePolicy preempt the
 *    running victim whenever a higher-urgency request is in flight
 *    (QueuePolicy::shouldPreempt — preemptive EDF/SJF/priority).
 *  - Memory budget (OnlineServerOptions::kvBudgetGiB): the shared KV
 *    budget all in-flight requests contend for; also enables
 *    memory-aware admission (a request is not admitted while the
 *    in-flight working sets already fill the budget). 0 keeps the
 *    legacy PR3 accounting (every in-flight slot enjoys a full
 *    engine budget) so existing traces replay bit-for-bit.
 *  - KV tiering (OnlineServerOptions::kvTier): "off" keeps the
 *    device-only evict-and-recompute hierarchy; "host" attaches a
 *    budgeted host-side tier (kv/kv_tier.h) behind a finite-bandwidth
 *    link, and every preemption eviction makes the roofline
 *    swap-vs-recompute call per victim. victimSelect switches the
 *    memory-pressure sweep from admission order to cost-aware
 *    ranking (cheapest-to-restore first; rankEvictionVictims()).
 *  - Batching (OnlineServerOptions::batching): "off" time-slices —
 *    exactly one request decodes per engine wave, rotated by the
 *    preempt mode above; "continuous" co-schedules decode across ALL
 *    in-flight requests in fused engine waves under a
 *    maxBatchedTokens budget (sched/batch_scheduler.h), with long
 *    prompts fed in prefillChunk-token slices so they never stall
 *    resident decoders. Admission policy, doomed-request shedding and
 *    the shared KV budget compose unchanged; under memory pressure a
 *    batch member's KV is force-evicted, it sits out the wave, and it
 *    re-enters via lazy restore (recompute on next touch).
 *
 * With the defaults ("fifo", maxInflight 1, batching "off") the
 * server is exactly the legacy run-to-completion FIFO queue.
 */

#ifndef FASTTTS_CORE_ONLINE_SERVER_H
#define FASTTTS_CORE_ONLINE_SERVER_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "api/status.h"
#include "core/serving.h"
#include "kv/kv_session.h"
#include "kv/kv_tier.h"
#include "sched/queue_policy.h"
#include "util/fault_injector.h"

namespace fasttts
{

/** One served request's timing record. */
struct OnlineRequestRecord
{
    int problemId = 0;
    double arrival = 0;   //!< Arrival time (s).
    double start = 0;     //!< Service start (s): first time slice in
                          //!< "off"/"policy" preempt modes; admission
                          //!< into the round-robin in "slice" mode
                          //!< (the legacy definition).
    double finish = 0;    //!< Completion (s).
    int priority = 0;     //!< Admission priority the request carried.
    double deadline = std::numeric_limits<double>::infinity();
                          //!< Absolute SLO deadline (s); infinity when
                          //!< the request carried no SLO.

    /** Engine time actually spent on this request (decode, verify,
     *  recompute — including re-prefill after a preemption eviction).
     *  Unlike serviceTime(), never counts slices the device spent on
     *  other requests, so utilization and cost models built on it do
     *  not over-count under interleaving. */
    double activeTime = 0;

    /** Times this request was suspended off the engine mid-run —
     *  every context switch counts, including routine "slice"-mode
     *  round-robin rotation, not only policy-driven preemption. */
    int preemptions = 0;

    [[nodiscard]] double queueDelay() const { return start - arrival; }

    /** Wall time between service start and completion. Under
     *  interleaving this includes slices the device spent on other
     *  requests — use activeTime for device-time accounting. */
    [[nodiscard]] double serviceTime() const { return finish - start; }

    [[nodiscard]] double latency() const { return finish - arrival; }

    [[nodiscard]] bool hasDeadline() const
    {
        return std::isfinite(deadline);
    }
    [[nodiscard]] bool missedDeadline() const
    {
        return hasDeadline() && finish > deadline;
    }
};

/** Aggregate results of an online trace. */
struct OnlineTraceResult
{
    std::vector<OnlineRequestRecord> records; //!< Completion order.
    double meanLatency = 0;
    double p50Latency = 0;
    double p95Latency = 0;
    double p99Latency = 0;
    double meanQueueDelay = 0;
    double makespan = 0;     //!< Finish time of the last request.
    double utilization = 0;  //!< Busy fraction of the makespan.

    /**
     * Fraction of deadline-bearing requests that finished within
     * their SLO; 1 when no request carried a deadline (vacuous).
     * Under fault injection the serve loops fold deadline-bearing
     * requests that never completed (fault-failed or timed out) into
     * the denominator as misses, so a fault cannot improve attainment
     * by removing its victim from the population.
     */
    double sloAttainment = 1.0;
    int deadlineMisses = 0;  //!< Requests that blew their deadline.
    int cancelled = 0;       //!< Requests abandoned while queued.
    int shedRequests = 0;    //!< Doomed requests shed at admission.
    int contextSwitches = 0; //!< Mid-run suspensions across the trace
                             //!< (any cause, slice rotation included).
    int preemptions = 0;     //!< Policy-driven takeovers only: the
                             //!< QueuePolicy displaced the running
                             //!< victim for a more urgent request
                             //!< ("policy" preempt mode).
    long recomputedTokens = 0; //!< KV tokens re-prefilled (all causes,
                               //!< preemption eviction included).
    long preemptEvictedTokens = 0; //!< KV tokens force-evicted from
                                   //!< suspended requests.
    long verifiedTokens = 0; //!< Tokens surviving in verified paths
                             //!< across completed requests; divided by
                             //!< the makespan this is trace goodput.
    long prefixHitTokens = 0; //!< Prompt tokens served from the
                              //!< cross-request prefix cache instead
                              //!< of being prefilled (0 with
                              //!< --prefix-cache off): the trace's
                              //!< saved recompute volume.
    double batchOccupancy = 0; //!< Mean decode members per engine wave
                               //!< (1 under time-slicing, > 1 when
                               //!< continuous batching fuses requests).

    long reprefilledTokens = 0; //!< Subset of recomputedTokens that is
                                //!< genuine re-prefill after an
                                //!< eviction — the volume host tiering
                                //!< can absorb (KvStats doc).

    // --- Host KV tiering (all zero when kvTier == "off"). Summed
    //     over completed requests, like recomputedTokens. ---
    long swappedOutTokens = 0; //!< KV tokens preemption parked on the
                               //!< host tier instead of dropping.
    long swappedInTokens = 0;  //!< KV tokens restored over the host
                               //!< link instead of being recomputed.
    double swapTransferTime = 0; //!< Sim seconds of host-link copies
                                 //!< (both directions).

    // --- Fault tolerance (all zero when faults == "off"). ---
    long injectedFaults = 0; //!< Faults the injector fired this trace,
                             //!< summed across all sites.
    int retries = 0;         //!< Attempt re-queues after retryable
                             //!< fault kills (each backoff counted).
    int timeouts = 0;        //!< Requests aborted by the watchdog
                             //!< (kDeadlineExceeded; never retried).
    int failedRequests = 0;  //!< Requests terminally failed by faults
                             //!< after exhausting their retry budget.
    long faultWastedTokens = 0; //!< Decode tokens of killed attempts —
                                //!< the trace's wasted recompute.
    long degradedWaves = 0;  //!< Engine waves run in degraded mode
                             //!< (speculation disabled, admission
                             //!< halved).
    double degradedTime = 0; //!< Sim seconds spent degraded.
    int degradedEpisodes = 0; //!< Times degradation engaged; with
                              //!< degradedTime this yields mean
                              //!< time-to-recovery.
};

/**
 * Aggregate per-request records into trace statistics.
 * @param busy_time Total device-busy seconds across the records.
 * Safe on an empty record set: every statistic stays zero (no NaN or
 * division by zero). The cancelled count is the caller's to fill in.
 *
 * Population contract: latency statistics (mean, p50/p95/p99, queue
 * delay, SLO attainment) are computed over COMPLETED requests only —
 * `records` must contain one entry per completion, and neither serve
 * loop ever creates a record for a shed or cancelled request, in
 * either batching mode. Shed/cancelled volumes are reported solely
 * through the shedRequests/cancelled counters, so a trace that sheds
 * cannot skew its percentiles.
 */
[[nodiscard]] OnlineTraceResult
aggregateTrace(std::vector<OnlineRequestRecord> records, double busy_time);

/**
 * Benching hysteresis rule of the continuous-batching loop, exposed
 * as a pure function so the "at most one return per wave" contract is
 * unit-testable. `members` is the oldest-first in-flight wave as
 * (benched, required KV bytes) pairs. The front member always runs:
 * when `front_returned` is true (the front entered the wave benched —
 * the oldest member completed and promoted it — and was
 * force-returned) that forced return is the progress guarantee, NOT a
 * hysteresis return, and the front's flag must be cleared exactly
 * once — this function never picks index 0 again in that wave.
 * Beyond it, at most ONE member returns per wave: the OLDEST benched
 * one, and only with restore headroom to spare (its KV demand plus
 * twice the benching headroom), the hysteresis gap that stops
 * bench/unbench thrash. An ineligible oldest blocks younger benched
 * members from skipping ahead of it.
 * @return Index of the member to unbench, or -1 for none.
 */
[[nodiscard]] int
pickBenchReturn(const std::vector<std::pair<bool, double>> &members,
                double free_bytes, double headroom, bool front_returned);

/** One suspended request the memory-pressure sweep may evict:
 *  everything the cost-aware victim ranking sees. */
struct VictimCandidate
{
    double kvBytes = 0;   //!< Resident device KV the eviction frees.
    double lastRunAt = 0; //!< Sim time the victim last held the engine.

    /** Cost of restoring the working set by host-link copy (seconds);
     *  infinity when no host tier is attached. */
    double transferSeconds = std::numeric_limits<double>::infinity();

    /** Cost of restoring the working set by re-prefill (seconds). */
    double recomputeSeconds = 0;
};

/**
 * Cost-aware eviction order of the memory-pressure sweep
 * (--victim-select cost), exposed as a pure function so the ranking
 * contract is unit-testable. Victims are ordered cheapest-to-restore
 * first — by min(transferSeconds, recomputeSeconds) ascending, the
 * price actually paid when the victim next runs (the engine swaps
 * exactly when the copy is strictly cheaper) — so the sweep frees
 * memory where re-admission costs least. Ties go to the
 * least-recently-run victim (coldest KV first), then to the smaller
 * index (admission order, the legacy sweep).
 * @return Indices into `candidates` in eviction order.
 */
[[nodiscard]] std::vector<size_t>
rankEvictionVictims(const std::vector<VictimCandidate> &candidates);

/** Queueing/scheduling configuration of an OnlineServer. */
struct OnlineServerOptions
{
    std::string policy = "fifo"; //!< queuePolicyRegistry() name.
    int maxInflight = 1;         //!< Interleaved requests (1-64).
    double slo = 0;              //!< Default per-request latency budget
                                 //!< (s); 0 disables SLO tracking.

    /** Preemption mode: "off" (run-to-completion), "slice"
     *  (round-robin time slices; the default, and the legacy PR3
     *  interleaving), or "policy" (QueuePolicy::shouldPreempt decides
     *  when a higher-urgency in-flight request takes the engine). */
    std::string preempt = "slice";

    /** Shared KV budget (GiB) all in-flight requests contend for;
     *  also enables memory-aware admission. 0 = legacy accounting
     *  (each in-flight slot gets a full engine budget). */
    double kvBudgetGiB = 0;

    /** Host KV tier: "off" (the default — device-only KV, preemption
     *  evicts and recomputes, bit-identical to the pre-tier server)
     *  or "host" (a budgeted host-side store behind a finite-
     *  bandwidth link; every preemption eviction makes the roofline
     *  swap-vs-recompute call per victim, kv/kv_tier.h). */
    std::string kvTier = "off";

    /** Byte budget of the host tier in GiB; <= 0 defaults to twice
     *  the device KV budget. Ignored when kvTier == "off". */
    double hostKvBudgetGiB = 0;

    /** Host link bandwidth in GB/s (decimal, vendor-style): the rate
     *  swapped KV moves in either direction. Ignored when
     *  kvTier == "off". */
    double hostBandwidthGBs = 16;

    /** Memory-pressure victim order: "admission" (the legacy sweep —
     *  earliest-admitted suspended request evicted first) or "cost"
     *  (cheapest-to-restore first via rankEvictionVictims(), with
     *  EWMA-calibrated working-set prediction for admission). */
    std::string victimSelect = "admission";

    /** Shed queued requests whose predicted finish already exceeds
     *  their deadline instead of serving them doomed (counted in
     *  OnlineTraceResult::shedRequests). */
    bool shedDoomed = false;

    /** Wave scheduling: "off" time-slices (one request decodes per
     *  engine wave, rotated by `preempt`); "continuous" co-schedules
     *  decode across all in-flight requests in fused waves under
     *  maxBatchedTokens. `preempt` is ignored under "continuous" —
     *  every in-flight request advances every wave it is planned
     *  into, so there is no victim to rotate off the engine. */
    std::string batching = "off";

    /** Per-wave token budget for continuous batching: decode demand
     *  is packed first, leftover budget becomes prompt-prefill
     *  chunks. Ignored when batching == "off". */
    int maxBatchedTokens = 2048;

    /** Largest prompt slice one request prefills per wave under
     *  continuous batching (chunked prefill). Ignored when
     *  batching == "off". */
    int prefillChunk = 512;

    /** Cross-request prefix cache (kv/prefix_index.h): "off" (the
     *  default; bit-identical to a server without the cache) or "on"
     *  (requests mount the longest cached prompt prefix instead of
     *  prefilling it, and publish their prompt back on completion;
     *  saved tokens land in OnlineTraceResult::prefixHitTokens). */
    std::string prefixCache = "off";

    /** Byte budget of the prefix cache in GiB; <= 0 defaults to 1/8
     *  of the shared KV budget. Cached bytes are charged to the same
     *  ledger as in-flight KV (they contend with --kv-budget).
     *  Ignored when prefixCache == "off". */
    double prefixCacheBudgetGiB = 0;

    /** Fault injection: "off" (the default — the injector is never
     *  constructed and no site consumes randomness, so every trace
     *  replays bit-identically to a build without faults) or "plan"
     *  (deterministic schedule-driven faults per faultPlan). */
    std::string faults = "off";

    /** Fault plan JSON (schema in util/fault_injector.h). Required
     *  non-empty when faults == "plan"; ignored otherwise. */
    std::string faultPlan;

    /** Retry budget per request: how many times an attempt killed by
     *  a retryable fault (kUnavailable) is re-queued, in [0, 16].
     *  0 fails the request on its first fault. */
    int retryMax = 0;

    /** Base retry backoff in sim seconds: attempt k re-queues
     *  retryBackoff * min(2^(k-1), 8) after its kill (capped
     *  exponential). The retried request keeps its original arrival
     *  time, so backoff shows up as queue delay. */
    double retryBackoff = 0.05;

    /** Watchdog deadline in sim seconds: any request older than this
     *  (queued, backing off or in flight) is aborted with
     *  kDeadlineExceeded and its KV/ledger/prefix pins refunded
     *  exactly. Timeouts are terminal — kDeadlineExceeded is not
     *  retryable (the request already burned its time budget).
     *  0 disables the watchdog. */
    double requestTimeout = 0;
};

/** One request of an explicit online trace (serveRequests()). */
struct OnlineRequest
{
    int problemId = -1;  //!< Index into the system's problem set;
                         //!< -1 cycles through it by submission order.
    double arrival = 0;  //!< Arrival time (s); must be finite.
    int priority = 0;    //!< Higher = more important ("priority").
    double slo = -1;     //!< Latency budget (s): < 0 uses the server
                         //!< default, 0 means none, > 0 sets
                         //!< deadline = arrival + slo.
    double cancelAt = -1; //!< Client abandons the request if it is
                          //!< still queued at this time; < 0 = never.
    //!< Per-request prompt override for prefix-cache traces
    //!< (multi-turn sessions): when non-empty the request is served
    //!< against a copy of its problem with these token identities
    //!< (promptTokens = size()). Empty = use the problem as-is.
    std::vector<int32_t> promptIds;
};

/**
 * Policy-driven online server multiplexing one simulated device.
 *
 * Requests are admitted by the configured QueuePolicy into up to
 * maxInflight in-flight slots that time-share ONE engine through
 * suspend/resume, under one shared KV budget. Move-only; obtain
 * instances through create().
 */
class OnlineServer
{
  public:
    /** Legacy construction: FIFO admission, one request in flight. */
    static StatusOr<OnlineServer> create(const ServingOptions &options);

    /**
     * Build the shared serving system and resolve the queue policy;
     * fails on invalid options, unknown policy/preempt names
     * (kNotFound, listing the registered names) and maxInflight
     * outside [1, 64].
     */
    static StatusOr<OnlineServer> create(const ServingOptions &options,
                                         const OnlineServerOptions &online);

    /**
     * Serve a Poisson-arrival trace of num_requests problems.
     * @param arrival_rate Requests per second (lambda).
     * @param seed Arrival-process seed.
     */
    [[nodiscard]] OnlineTraceResult
    serveTrace(int num_requests, double arrival_rate, uint64_t seed);

    /** Serve requests with explicit arrival times (sorted ascending),
     *  cycling through the problem set with the server-default SLO.
     *  Non-finite arrival times yield the empty trace. */
    [[nodiscard]] OnlineTraceResult
    serveArrivals(const std::vector<double> &arrivals);

    /**
     * Serve an explicit request trace (the most general entry point:
     * per-request problems, priorities, SLOs and client cancellation).
     * Requests may be given in any order; they are served by arrival
     * time (negative arrivals queue from the trace start).
     * kInvalidArgument on non-finite arrivals or out-of-range problem
     * ids.
     */
    StatusOr<OnlineTraceResult>
    serveRequests(const std::vector<OnlineRequest> &requests);

    /**
     * Serve the first num_problems of the system's problem set as an
     * all-arrive-at-zero online trace and aggregate their results —
     * a thin adapter over serveRequests(), so batch-style serving and
     * online serving share ONE serve loop (admission policy, batching
     * mode and KV budget all apply).
     */
    [[nodiscard]] BatchResult serveProblems(int num_problems);

    /** The single shared serving system (all in-flight requests). */
    ServingSystem &system() { return system_; }

    /** The shared KV budget every in-flight request charges. */
    [[nodiscard]] const KvBudgetLedger &kvLedger() const
    {
        return *ledger_;
    }

    /** The queueing/scheduling configuration. */
    [[nodiscard]] const OnlineServerOptions &onlineOptions() const
    {
        return online_;
    }

    /** The admission policy instance. */
    [[nodiscard]] const QueuePolicy &policy() const { return *policy_; }

    /** The host KV tier (nullptr when kvTier == "off"). */
    [[nodiscard]] const HostKvTier *hostTier() const
    {
        return hostTier_.get();
    }

  private:
    OnlineServer(ServingSystem system,
                 std::unique_ptr<KvBudgetLedger> ledger,
                 std::unique_ptr<HostKvTier> tier,
                 std::unique_ptr<FaultInjector> faults,
                 OnlineServerOptions online,
                 std::unique_ptr<QueuePolicy> policy,
                 RooflineModel roofline, DatasetProfile profile);

    /** The one serve loop; results_sink (optional) collects each
     *  completed request's engine result in completion order. */
    StatusOr<OnlineTraceResult>
    serveRequestsImpl(const std::vector<OnlineRequest> &requests,
                      std::vector<RequestResult> *results_sink);

    // Declared before ledger_ and system_: both hold borrowed
    // pointers to the injector, so it must outlive them (members
    // destruct in reverse declaration order). Null when
    // online_.faults == "off".
    std::unique_ptr<FaultInjector> faults_;
    // Declared before system_: the engine's KV managers release their
    // ledger charge on destruction, so the ledger must outlive the
    // system (members destruct in reverse declaration order).
    std::unique_ptr<KvBudgetLedger> ledger_;
    // Declared before system_ for the same reason: the engine's KV
    // managers release their tier entries on destruction. Null when
    // online_.kvTier == "off".
    std::unique_ptr<HostKvTier> hostTier_;
    ServingSystem system_; //!< The one engine + device + problem set.
    OnlineServerOptions online_;
    std::unique_ptr<QueuePolicy> policy_;
    RooflineModel roofline_;   //!< For SJF cost prediction.
    DatasetProfile profile_;
};

/**
 * Poisson arrival process: n exponential inter-arrival gaps of rate
 * `rate` (the stream serveTrace() serves).
 */
[[nodiscard]] std::vector<double> poissonArrivalTrace(int n, double rate,
                                                      uint64_t seed);

/**
 * Heavy-tailed (bursty) arrival process: Pareto inter-arrival gaps
 * (alpha = 1.5) with the same mean rate — long silences separating
 * bursts of closely spaced requests, the regime where admission
 * policy choice matters most.
 */
[[nodiscard]] std::vector<double> burstyArrivalTrace(int n, double rate,
                                                     uint64_t seed);

/**
 * Arrival-process factory by mode name: "poisson" or "bursty".
 * Unknown modes, n < 0 and non-positive rates are kInvalidArgument.
 */
StatusOr<std::vector<double>>
makeArrivalTrace(const std::string &mode, int n, double rate,
                 uint64_t seed);

} // namespace fasttts

#endif // FASTTTS_CORE_ONLINE_SERVER_H
