#include "metrics/request_metrics.h"

namespace fasttts
{

namespace
{

template <typename Getter>
double
meanOf(const std::vector<RequestResult> &results, Getter get)
{
    if (results.empty())
        return 0.0;
    double total = 0;
    for (const auto &r : results)
        total += get(r);
    return total / static_cast<double>(results.size());
}

} // namespace

double
meanGoodput(const std::vector<RequestResult> &results)
{
    return meanOf(results,
                  [](const RequestResult &r) { return r.preciseGoodput(); });
}

double
meanCompletionTime(const std::vector<RequestResult> &results)
{
    return meanOf(results,
                  [](const RequestResult &r) { return r.completionTime; });
}

double
meanGeneratorTime(const std::vector<RequestResult> &results)
{
    return meanOf(results,
                  [](const RequestResult &r) { return r.generatorTime; });
}

double
meanVerifierTime(const std::vector<RequestResult> &results)
{
    return meanOf(results,
                  [](const RequestResult &r) { return r.verifierTime; });
}

} // namespace fasttts
