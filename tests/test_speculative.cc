/**
 * @file
 * Tests for the SelectSPEC policy (Sec. 4.1.1) and the duplicate
 * truncation draw (Algorithm 1).
 */

#include <gtest/gtest.h>

#include "core/speculative.h"

namespace fasttts
{
namespace
{

TEST(SpeculativePolicy, TopBinGetsFullPotential)
{
    SpeculativePolicy policy(4, 0.85);
    const std::vector<double> scores = {0.1, 0.4, 0.7, 0.9};
    EXPECT_EQ(policy.speculativePotential(0.9, scores), 4);
    EXPECT_EQ(policy.speculativePotential(0.1, scores), 1);
}

TEST(SpeculativePolicy, PotentialMonotoneInScore)
{
    SpeculativePolicy policy(4, 0.85);
    const std::vector<double> scores = {0.0, 0.25, 0.5, 0.75, 1.0};
    int prev = 0;
    for (double s : {0.05, 0.3, 0.6, 0.95}) {
        const int m = policy.speculativePotential(s, scores);
        EXPECT_GE(m, prev);
        EXPECT_GE(m, 1);
        EXPECT_LE(m, 4);
        prev = m;
    }
}

TEST(SpeculativePolicy, EqualScoresAllTopBin)
{
    SpeculativePolicy policy(4, 0.85);
    const std::vector<double> scores = {0.5, 0.5, 0.5};
    EXPECT_EQ(policy.speculativePotential(0.5, scores), 4);
}

TEST(SpeculativePolicy, EmptyScoresGiveMinimum)
{
    SpeculativePolicy policy(4, 0.85);
    EXPECT_EQ(policy.speculativePotential(0.9, {}), 1);
}

TEST(SpeculativePolicy, BinCountMatchesBranchFactor)
{
    // With B bins over [0,1], score 1.0 gives B and score 0.0 gives 1.
    for (int b : {1, 2, 4, 8}) {
        SpeculativePolicy policy(b, 0.85);
        std::vector<double> scores = {0.0, 1.0};
        EXPECT_EQ(policy.speculativePotential(1.0, scores), b);
        EXPECT_EQ(policy.speculativePotential(0.0, scores), 1);
    }
}

TEST(SpeculativePolicy, TruncationMeanTracksRatio)
{
    SpeculativePolicy policy(4, 0.85);
    Rng rng(17);
    double total = 0;
    const int len = 200;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        total += policy.truncationKeep(len, rng);
    EXPECT_NEAR(total / trials, 0.85 * len, 2.0);
}

TEST(SpeculativePolicy, TruncationClampedToSegment)
{
    SpeculativePolicy policy(4, 0.85);
    Rng rng(18);
    for (int i = 0; i < 5000; ++i) {
        const int keep = policy.truncationKeep(50, rng);
        EXPECT_GE(keep, 0);
        EXPECT_LE(keep, 50);
    }
    EXPECT_EQ(policy.truncationKeep(0, rng), 0);
}

TEST(SpeculativePolicy, ZeroRatioDropsMostTokens)
{
    SpeculativePolicy policy(4, 0.0);
    Rng rng(19);
    double total = 0;
    for (int i = 0; i < 5000; ++i)
        total += policy.truncationKeep(100, rng);
    EXPECT_LT(total / 5000, 10.0);
}

TEST(SpeculativePolicy, RatioClampedToUnitInterval)
{
    SpeculativePolicy policy(4, 1.7);
    EXPECT_DOUBLE_EQ(policy.truncationRatio(), 1.0);
    SpeculativePolicy negative(4, -0.5);
    EXPECT_DOUBLE_EQ(negative.truncationRatio(), 0.0);
}

} // namespace
} // namespace fasttts
